// Command proofcheck independently validates UNSAT certificate streams
// emitted by the solver stack (ufdiverify -proof, synthsec -proof, or the
// smt package's Options.Proof). It replays every derivation: learnt clauses
// must pass reverse unit propagation (RUP, with a RAT fallback), theory
// lemmas must carry valid Farkas coefficients over the recorded atom and
// slack definitions, and every recorded Unsat verdict must close under unit
// propagation. The checker shares no search code with the solver — only the
// exact-arithmetic kernel — so a bug in the CDCL or simplex engines cannot
// vouch for itself.
//
// Usage:
//
//	proofcheck file.proof [more.proof ...]
//
// Flags:
//
//	-q  quiet: suppress per-file reports, print only failures
//
// Exit codes:
//
//	0  every certificate is valid
//	1  at least one certificate is invalid or unreadable
package main

import (
	"flag"
	"fmt"
	"os"

	"segrid/internal/proof"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("proofcheck", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	quiet := fs.Bool("q", false, "suppress per-file reports, print only failures")
	if err := fs.Parse(args); err != nil {
		return 1 // flag package already printed the problem
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: proofcheck file.proof [more.proof ...]")
		return 1
	}
	bad := 0
	for _, path := range fs.Args() {
		rep, err := proof.CheckFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proofcheck: %s: INVALID: %v\n", path, err)
			bad++
			continue
		}
		if !*quiet {
			fmt.Printf("%s: valid — %s\n", path, rep)
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}
