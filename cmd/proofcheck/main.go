// Command proofcheck independently validates UNSAT certificate streams
// emitted by the solver stack (ufdiverify -proof, synthsec -proof, or the
// smt package's Options.Proof). It replays every derivation: learnt clauses
// must pass reverse unit propagation (RUP, with a RAT fallback), theory
// lemmas must carry valid Farkas coefficients over the recorded atom and
// slack definitions, Tseitin and cardinality definitional clauses are
// re-derived from their provenance records through the shared encoding
// kernel (never taken on faith from the solver), and every recorded Unsat
// verdict must close under unit propagation. The checker shares no search
// code with the solver — only the encoding kernel and the exact-arithmetic
// layer — so a bug in the CDCL, simplex, or clause-emission paths cannot
// vouch for itself.
//
// Usage:
//
//	proofcheck file.proof [more.proof ...]
//
// Flags:
//
//	-q     quiet: suppress per-file reports, print only failures
//	-trim  after validating, rewrite each certificate in place keeping only
//	       the records reachable from its Unsat answers (DRAT-trim style
//	       backward pass); the trimmed stream is re-verified before it
//	       replaces the original
//
// Exit codes:
//
//	0  every certificate is valid
//	1  at least one certificate is invalid or unreadable
//	2  at least one certificate uses a different format version (and none
//	   was otherwise invalid) — upgrade the checker or regenerate the proof
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"segrid/internal/proof"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("proofcheck", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	quiet := fs.Bool("q", false, "suppress per-file reports, print only failures")
	trim := fs.Bool("trim", false, "rewrite certificates in place, keeping only records reachable from their Unsat answers")
	if err := fs.Parse(args); err != nil {
		return 1 // flag package already printed the problem
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: proofcheck [-q] [-trim] file.proof [more.proof ...]")
		return 1
	}
	bad, versionSkew := 0, 0
	for _, path := range fs.Args() {
		rep, err := proof.CheckFile(path)
		if err != nil {
			if errors.Is(err, proof.ErrVersion) {
				fmt.Fprintf(os.Stderr, "proofcheck: %s: VERSION MISMATCH: %v\n", path, err)
				versionSkew++
			} else {
				fmt.Fprintf(os.Stderr, "proofcheck: %s: INVALID: %v\n", path, err)
				bad++
			}
			continue
		}
		if *trim {
			st, err := proof.TrimFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "proofcheck: %s: TRIM FAILED: %v\n", path, err)
				bad++
				continue
			}
			if !*quiet {
				fmt.Printf("%s: valid — %s\n", path, rep)
				fmt.Printf("%s: trimmed %d → %d records, %d → %d bytes (%.1f×)\n",
					path, st.RecordsBefore, st.RecordsAfter, st.BytesBefore, st.BytesAfter, st.Ratio())
			}
			continue
		}
		if !*quiet {
			fmt.Printf("%s: valid — %s\n", path, rep)
		}
	}
	if bad > 0 {
		return 1
	}
	if versionSkew > 0 {
		return 2
	}
	return 0
}
