// Command segridd is the long-running attack-analytics service: attack
// verification, countermeasure synthesis and certificate re-checking as
// HTTP endpoints over the paper's analysis stack, built for sustained
// operation — warm encoder pooling, bounded admission with load shedding,
// per-request deadlines and crash-safe certificate publication (see
// internal/service).
//
// Usage:
//
//	segridd [flags]
//
// Flags:
//
//	-addr host:port   listen address (default 127.0.0.1:8547)
//	-concurrency n    admitted requests solving at once; also the default
//	                  scheduler worker count (default 4)
//	-sched-workers n  solver threads draining the shared work-unit queue; all
//	                  requests' units (verify checks, sweep groups, portfolio
//	                  forks) share these workers under deficit-round-robin
//	                  fairness (0 = -concurrency)
//	-queue n          admission queue depth; excess sheds 429 (default 16)
//	-queue-wait d     max wait for a solve slot; past it sheds 503 (default 2s)
//	-timeout d        default per-request deadline (default 30s)
//	-max-timeout d    hard cap on client-requested deadlines (default 2m)
//	-max-conflicts n  per-check CDCL conflict budget (0 = unlimited)
//	-max-pivots n     per-check simplex pivot budget (0 = unlimited)
//	-proof-dir dir    enable UNSAT certificates: verify/synthesize requests
//	                  may ask for per-request certificate files under dir,
//	                  and POST /v1/proofcheck re-checks them independently
//	-pool-live n      warm-encoder pool size cap (default 64)
//	-pool-idle n      warm encoders kept per (topology, shape) key (default 2)
//	-pool-idle-total n   idle warm encoders kept across all keys; past it the
//	                  globally least-recently-used encoder is evicted and torn
//	                  down (default: the -pool-live cap)
//	-pool-idle-bytes n   idle warm-pool memory budget in bytes, enforced by the
//	                  same global LRU order (0 = unlimited)
//	-sweep-max-items n   per-request item cap for POST /v1/sweep (default 256)
//	-portfolio n      default portfolio width for verification: > 1 races
//	                  that many diversified solver instances per check, 1
//	                  answers sequentially, -1 picks the host default
//	                  (GOMAXPROCS, clamped); requests may override per call.
//	                  The width is a fairness weight on the shared scheduler
//	                  workers, not a private goroutine fleet
//	-cube-workers n   default cube-and-conquer width for bus-granular
//	                  synthesis (same convention; measurement-granular
//	                  synthesis always runs sequentially)
//	-max-workers n    hard per-request cap on either width (default 8)
//	-screen           enable the LP-relaxation screening tier: verify and
//	                  sweep items the screen decides definitively are
//	                  answered without an encoder or SMT solve ("screened":
//	                  true in the response); requests override per call with
//	                  their "screen" field
//	-screen-cache n   screen-verdict cache entries: definitive and
//	                  inconclusive screen outcomes are memoized by (topology,
//	                  goal, overlay) and re-served without re-screening
//	                  (0 = default 1024, negative disables)
//
// Endpoints:
//
//	POST /v1/verify      {"attack": <scenariofile attack spec>, ...}
//	POST /v1/sweep       {"attack": <base spec>, "items": [<per-item deltas>]}
//	POST /v1/synthesize  {"synthesis": <scenariofile synthesis spec>, ...}
//	POST /v1/proofcheck  {"path": "<certificate relative to -proof-dir>"}
//	GET  /healthz        liveness
//	GET  /metrics        request/pool counters as JSON
//
// Answer contract: every verify answer is "feasible", "infeasible" or
// "inconclusive" (with a machine-readable reason); overload is refused with
// 429/503 plus Retry-After. The server never converts a failure into a
// verdict.
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests finish (up
// to their deadlines), then the warm pool is drained.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"segrid/internal/service"
	"segrid/internal/smt"
)

func main() {
	fs := flag.NewFlagSet("segridd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8547", "listen address")
	concurrency := fs.Int("concurrency", 4, "simultaneous solves")
	schedWorkers := fs.Int("sched-workers", 0, "solver threads draining the shared work-unit queue (0 = -concurrency)")
	queue := fs.Int("queue", 16, "admission queue depth")
	queueWait := fs.Duration("queue-wait", 2*time.Second, "max wait for a solve slot")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
	maxConflicts := fs.Int64("max-conflicts", 0, "per-check CDCL conflict budget (0 = unlimited)")
	maxPivots := fs.Int64("max-pivots", 0, "per-check simplex pivot budget (0 = unlimited)")
	proofDir := fs.String("proof-dir", "", "enable per-request UNSAT certificates under this directory")
	poolLive := fs.Int("pool-live", 0, "warm-encoder pool size cap (0 = default)")
	poolIdle := fs.Int("pool-idle", 0, "warm encoders kept per key (0 = default)")
	poolIdleTotal := fs.Int("pool-idle-total", 0, "idle warm encoders kept across all keys, LRU-evicted past it (0 = pool-live cap)")
	poolIdleBytes := fs.Int64("pool-idle-bytes", 0, "idle warm-pool memory budget in bytes, LRU-enforced (0 = unlimited)")
	sweepMaxItems := fs.Int("sweep-max-items", 0, "per-request item cap for POST /v1/sweep (0 = default 256)")
	portfolio := fs.Int("portfolio", 0, "default portfolio workers for verification (1 = sequential, -1 = host default)")
	cubeWorkers := fs.Int("cube-workers", 0, "default cube-and-conquer workers for synthesis (1 = sequential, -1 = host default)")
	maxWorkers := fs.Int("max-workers", 0, "per-request cap on worker counts (0 = default 8)")
	screenTier := fs.Bool("screen", false, "enable the LP-relaxation screening tier ahead of the SMT pipeline")
	screenCache := fs.Int("screen-cache", 0, "screen-verdict cache entries (0 = default 1024, negative disables)")
	_ = fs.Parse(os.Args[1:])

	if *proofDir != "" {
		if st, err := os.Stat(*proofDir); err != nil || !st.IsDir() {
			log.Fatalf("segridd: -proof-dir %s is not a directory", *proofDir)
		}
	}
	svc, err := service.New(service.Config{
		MaxConcurrent:        *concurrency,
		SchedWorkers:         *schedWorkers,
		MaxQueue:             *queue,
		QueueWait:            *queueWait,
		DefaultTimeout:       *timeout,
		MaxTimeout:           *maxTimeout,
		Budget:               smt.Budget{MaxConflicts: *maxConflicts, MaxPivots: *maxPivots},
		ProofDir:             *proofDir,
		PoolMaxLive:          *poolLive,
		PoolMaxIdlePerKey:    *poolIdle,
		PoolMaxIdle:          *poolIdleTotal,
		PoolMaxIdleBytes:     *poolIdleBytes,
		MaxSweepItems:        *sweepMaxItems,
		Portfolio:            *portfolio,
		CubeWorkers:          *cubeWorkers,
		MaxWorkersPerRequest: *maxWorkers,
		Screen:               *screenTier,
		ScreenCacheSize:      *screenCache,
	})
	if err != nil {
		log.Fatalf("segridd: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("segridd: listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("segridd: serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("segridd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *maxTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "segridd: shutdown: %v\n", err)
	}
	svc.Close()
	log.Printf("segridd: stopped")
}
