// Command synthsec synthesizes a security architecture — the set of buses
// whose measurements need data-integrity protection — that makes state
// estimation resistant to the attacker profile in a JSON requirements file
// (paper Section IV, Algorithm 1).
//
// Usage:
//
//	synthsec requirements.json
//
// See internal/scenariofile for the file format; examples live under
// examples/scenarios/.
package main

import (
	"errors"
	"fmt"
	"os"

	"segrid/internal/scenariofile"
	"segrid/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "synthsec:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: synthsec requirements.json")
	}
	spec, err := scenariofile.LoadSynthesis(args[0])
	if err != nil {
		return err
	}
	if spec.MeasurementGranular() {
		return runMeasurementGranular(spec)
	}
	req, err := spec.Requirements()
	if err != nil {
		return err
	}
	sys := req.Attack.System()
	fmt.Printf("system: %s (%d buses, %d lines), operator budget %d buses\n",
		sys.Name, sys.Buses, sys.NumLines(), req.MaxSecuredBuses)
	arch, err := synth.Synthesize(req)
	if errors.Is(err, synth.ErrNoArchitecture) {
		fmt.Println("result: no security architecture satisfies the requirements")
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Printf("result: secure buses %v\n", arch.SecuredBuses)
	fmt.Printf("  all measurements homed at those buses get data-integrity protection\n")
	fmt.Printf("  Algorithm 1 iterations: %d\n", arch.Iterations)
	fmt.Printf("  candidate selection time: %s, verification time: %s\n",
		arch.SelectTime.Round(1e5), arch.VerifyTime.Round(1e5))
	return nil
}

func runMeasurementGranular(spec *scenariofile.SynthesisSpec) error {
	req, err := spec.MeasurementRequirements()
	if err != nil {
		return err
	}
	sys := req.Attack.System()
	fmt.Printf("system: %s (%d buses, %d lines), operator budget %d measurements\n",
		sys.Name, sys.Buses, sys.NumLines(), req.MaxSecuredMeasurements)
	arch, err := synth.SynthesizeMeasurements(req)
	if errors.Is(err, synth.ErrNoArchitecture) {
		fmt.Println("result: no security architecture satisfies the requirements")
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Printf("result: secure measurements %v\n", arch.SecuredMeasurements)
	fmt.Printf("  Algorithm 1 iterations: %d\n", arch.Iterations)
	fmt.Printf("  candidate selection time: %s, verification time: %s\n",
		arch.SelectTime.Round(1e5), arch.VerifyTime.Round(1e5))
	return nil
}
