// Command synthsec synthesizes a security architecture — the set of buses
// (or individual measurements) whose data needs integrity protection — that
// makes state estimation resistant to the attacker profile in a JSON
// requirements file (paper Section IV, Algorithm 1).
//
// Usage:
//
//	synthsec [flags] requirements.json
//
// Flags:
//
//	-timeout d        wall-clock budget for the whole run (e.g. 5s; 0 = none)
//	-max-conflicts n  initial per-verification CDCL conflict budget, escalated
//	                  on Unknown results (0 = unlimited)
//	-max-pivots n     initial per-verification simplex pivot budget (0 = unlimited)
//	-fresh-encode     re-encode from scratch on every Check instead of reusing
//	                  the incremental solver instances (ablation/debug knob)
//	-no-screen        disable the LP-relaxation screening pre-filter that, by
//	                  default, resolves candidate checks the relaxation can
//	                  decide without an SMT solve (ablation knob; bus-granular
//	                  synthesis only — proof-logging runs skip the screen
//	                  automatically)
//	-proof dir        stream per-attack-model UNSAT certificates to
//	                  dir/attack-<i>.proof (internal/proof format); every
//	                  candidate an architecture must resist is then
//	                  independently re-checkable with cmd/proofcheck
//	-check-proof      emit the certificates (to -proof, or a temp directory
//	                  when -proof is unset) and verify each with the
//	                  independent checker; an invalid certificate exits 1
//	-trim-proof       rewrite each closed certificate in place, keeping only
//	                  the records its Unsat answers depend on (each trimmed
//	                  stream is re-verified before it replaces the original);
//	                  -check-proof then checks the trimmed files
//
// Exit codes classify the outcome for scripted sweeps:
//
//	0  architecture found (printed)
//	1  error — bad usage, unreadable requirements, malformed model, invalid
//	   proof
//	2  no architecture — proven impossible under the requirements
//	3  budget exhausted — timeout/iteration/solver budget hit before a
//	   verdict; the best unverified candidate so far is printed
//
// See internal/scenariofile for the file format; examples live under
// examples/scenarios/.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"segrid/internal/proof"
	"segrid/internal/scenariofile"
	"segrid/internal/smt"
	"segrid/internal/synth"
)

// Exit codes, shared vocabulary with cmd/ufdiverify (EXPERIMENTS.md).
const (
	exitFound     = 0
	exitError     = 1
	exitNoArch    = 2
	exitExhausted = 3
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthsec:", err)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("synthsec", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
	maxConflicts := fs.Int64("max-conflicts", 0, "initial per-verification CDCL conflict budget (0 = unlimited)")
	maxPivots := fs.Int64("max-pivots", 0, "initial per-verification simplex pivot budget (0 = unlimited)")
	freshEncode := fs.Bool("fresh-encode", false, "re-encode on every Check instead of solving incrementally (ablation)")
	noScreen := fs.Bool("no-screen", false, "disable the LP-relaxation screening pre-filter (ablation)")
	proofDir := fs.String("proof", "", "directory for per-attack-model UNSAT certificate streams")
	checkProof := fs.Bool("check-proof", false, "emit the certificates and verify each with the independent checker (temp directory when -proof is unset)")
	trimProof := fs.Bool("trim-proof", false, "trim each closed certificate in place before any -check-proof verification")
	if err := fs.Parse(args); err != nil {
		return exitError, nil // flag package already printed the problem
	}
	if fs.NArg() != 1 {
		return exitError, fmt.Errorf("usage: synthsec [flags] requirements.json")
	}
	limits := synth.Limits{Timeout: *timeout}
	if *maxConflicts > 0 || *maxPivots > 0 {
		limits.InitialBudget = &smt.Budget{
			MaxConflicts: *maxConflicts,
			MaxPivots:    *maxPivots,
		}
	}
	pc := proofConfig{dir: *proofDir, check: *checkProof, trim: *trimProof}
	if pc.trim && pc.dir == "" && !pc.check {
		return exitError, fmt.Errorf("-trim-proof needs certificates to act on: set -proof (or -check-proof)")
	}
	if pc.check && pc.dir == "" {
		tmp, err := os.MkdirTemp("", "synthsec-proof-")
		if err != nil {
			return exitError, err
		}
		pc.dir = tmp
		defer os.RemoveAll(tmp)
	}
	spec, err := scenariofile.LoadSynthesis(fs.Arg(0))
	if err != nil {
		return exitError, err
	}
	if spec.MeasurementGranular() {
		return runMeasurementGranular(spec, limits, *freshEncode, pc)
	}
	req, err := spec.Requirements()
	if err != nil {
		return exitError, err
	}
	req.Limits = limits
	req.ProofDir = pc.dir
	req.NoScreen = *noScreen
	if *freshEncode {
		opts := freshOptions(req.Options)
		req.Options = opts
		req.Attack.Options = opts
	}
	sys := req.Attack.System()
	fmt.Printf("system: %s (%d buses, %d lines), operator budget %d buses\n",
		sys.Name, sys.Buses, sys.NumLines(), req.MaxSecuredBuses)
	arch, err := synth.Synthesize(req)
	if err == nil || errors.Is(err, synth.ErrNoArchitecture) || errors.Is(err, synth.ErrBudgetExhausted) {
		if perr := reportProofs(pc); perr != nil {
			return exitError, perr
		}
	}
	switch {
	case errors.Is(err, synth.ErrNoArchitecture):
		fmt.Println("result: no security architecture satisfies the requirements")
		return exitNoArch, nil
	case errors.Is(err, synth.ErrBudgetExhausted):
		return reportExhausted(err, "buses"), nil
	case err != nil:
		return exitError, err
	}
	fmt.Printf("result: secure buses %v\n", arch.SecuredBuses)
	fmt.Printf("  all measurements homed at those buses get data-integrity protection\n")
	printIterations(arch.Iterations, arch.SelectTime, arch.VerifyTime)
	return exitFound, nil
}

// proofConfig carries the -proof/-check-proof/-trim-proof settings through
// both synthesis granularities.
type proofConfig struct {
	dir   string
	check bool
	trim  bool
}

// reportProofs lists the certificate files the run streamed, with -trim-proof
// rewrites each in place keeping only the records its Unsat answers depend
// on, and with -check-proof verifies each with the independent checker. An
// invalid certificate is an error: the run's unsat verdicts are then
// untrusted.
func reportProofs(pc proofConfig) error {
	if pc.dir == "" {
		return nil
	}
	files, err := filepath.Glob(filepath.Join(pc.dir, "attack-*.proof"))
	if err != nil {
		return err
	}
	sort.Strings(files)
	for _, f := range files {
		if pc.trim {
			st, err := proof.TrimFile(f)
			if err != nil {
				return fmt.Errorf("trimming %s: %w", f, err)
			}
			fmt.Printf("proof: %s trimmed %d → %d records, %d → %d bytes (%.1f×)\n",
				f, st.RecordsBefore, st.RecordsAfter, st.BytesBefore, st.BytesAfter, st.Ratio())
		}
		if !pc.check {
			if !pc.trim {
				fmt.Printf("proof: certificate streamed to %s\n", f)
			}
			continue
		}
		rep, err := proof.CheckFile(f)
		if err != nil {
			return fmt.Errorf("certificate %s INVALID: %w", f, err)
		}
		fmt.Printf("proof: %s verified — %s\n", f, rep)
	}
	return nil
}

// freshOptions copies base (or the defaults) with FreshPerCheck set, for the
// -fresh-encode ablation.
func freshOptions(base *smt.Options) *smt.Options {
	opts := smt.DefaultOptions()
	if base != nil {
		opts = *base
	}
	opts.FreshPerCheck = true
	return &opts
}

func runMeasurementGranular(spec *scenariofile.SynthesisSpec, limits synth.Limits, freshEncode bool, pc proofConfig) (int, error) {
	req, err := spec.MeasurementRequirements()
	if err != nil {
		return exitError, err
	}
	req.Limits = limits
	req.ProofDir = pc.dir
	if freshEncode {
		opts := freshOptions(req.Options)
		req.Options = opts
		req.Attack.Options = opts
	}
	sys := req.Attack.System()
	fmt.Printf("system: %s (%d buses, %d lines), operator budget %d measurements\n",
		sys.Name, sys.Buses, sys.NumLines(), req.MaxSecuredMeasurements)
	arch, err := synth.SynthesizeMeasurements(req)
	if err == nil || errors.Is(err, synth.ErrNoArchitecture) || errors.Is(err, synth.ErrBudgetExhausted) {
		if perr := reportProofs(pc); perr != nil {
			return exitError, perr
		}
	}
	switch {
	case errors.Is(err, synth.ErrNoArchitecture):
		fmt.Println("result: no security architecture satisfies the requirements")
		return exitNoArch, nil
	case errors.Is(err, synth.ErrBudgetExhausted):
		return reportExhausted(err, "measurements"), nil
	case err != nil:
		return exitError, err
	}
	fmt.Printf("result: secure measurements %v\n", arch.SecuredMeasurements)
	printIterations(arch.Iterations, arch.SelectTime, arch.VerifyTime)
	return exitFound, nil
}

// reportExhausted prints the graceful-degradation summary for a run that ran
// out of budget: the cause, the iteration stats, and — crucially for long
// sweeps — the best (unverified) candidate the search had converged on.
func reportExhausted(err error, granularity string) int {
	var be *synth.BudgetExhaustedError
	if !errors.As(err, &be) {
		fmt.Printf("result: budget exhausted (%v)\n", err)
		return exitExhausted
	}
	fmt.Println("result: budget exhausted before a verdict")
	if be.Reason != nil {
		fmt.Printf("  cause: %v\n", be.Reason)
	}
	if len(be.BestCandidate) > 0 {
		fmt.Printf("  best unverified candidate (%s): %v\n", granularity, be.BestCandidate)
	} else {
		fmt.Println("  no candidate was selected before the budget ran out")
	}
	printIterations(be.Iterations, be.SelectTime, be.VerifyTime)
	return exitExhausted
}

func printIterations(iters int, sel, ver time.Duration) {
	fmt.Printf("  Algorithm 1 iterations: %d\n", iters)
	fmt.Printf("  candidate selection time: %s, verification time: %s\n",
		sel.Round(100*time.Microsecond), ver.Round(100*time.Microsecond))
}
