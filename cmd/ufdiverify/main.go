// Command ufdiverify decides the feasibility of an undetected false data
// injection attack described by a JSON scenario file and, when feasible,
// prints the attack vector — the measurements to alter, the substations to
// compromise, the topology poisoning and the resulting state corruption.
//
// Usage:
//
//	ufdiverify [flags] scenario.json
//
// Flags:
//
//	-timeout d        wall-clock budget for the check (e.g. 30s; 0 = none)
//	-max-conflicts n  CDCL conflict budget (0 = unlimited)
//	-max-pivots n     simplex pivot budget (0 = unlimited)
//	-fresh-encode     re-encode from scratch on every Check instead of reusing
//	                  the incremental solver instance (ablation/debug knob)
//	-screen           run the LP-relaxation screening tier first (default
//	                  true): a definitive relaxation verdict — certified
//	                  unsat or an exactly replayed attack vector — answers
//	                  without the SMT solver; inconclusive screens fall
//	                  through silently. Skipped when a certificate is
//	                  requested (-proof/-check-proof), which needs the
//	                  solver's stream
//	-no-screen        disable the screening tier (ablation; -screen=false)
//	-proof path       stream an UNSAT certificate to path (internal/proof
//	                  format); on unsat the verdict is then independently
//	                  re-checkable with cmd/proofcheck
//	-check-proof      emit the certificate (to -proof, or a temp file when
//	                  -proof is unset) and verify it with the independent
//	                  checker before exiting; an invalid certificate exits 1
//	-trim-proof       after the certificate is closed, rewrite it in place
//	                  keeping only the records its Unsat answers depend on
//	                  (the trimmed stream is re-verified before it replaces
//	                  the original); -check-proof then checks the trimmed file
//
// Exit codes classify the outcome for scripted sweeps:
//
//	0  sat — an attack vector exists (printed)
//	1  error — bad usage, unreadable scenario, malformed model, invalid proof
//	2  unsat — no attack vector satisfies the constraints
//	3  unknown — a budget or the timeout was exhausted before a verdict
//
// See internal/scenariofile for the file format; examples live under
// examples/scenarios/.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"segrid/internal/core"
	"segrid/internal/grid"
	"segrid/internal/proof"
	"segrid/internal/scenariofile"
	"segrid/internal/screen"
	"segrid/internal/smt"
)

// Exit codes, shared vocabulary with cmd/synthsec (EXPERIMENTS.md).
const (
	exitSat     = 0
	exitError   = 1
	exitUnsat   = 2
	exitUnknown = 3
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "ufdiverify:", err)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("ufdiverify", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the check (0 = none)")
	maxConflicts := fs.Int64("max-conflicts", 0, "CDCL conflict budget (0 = unlimited)")
	maxPivots := fs.Int64("max-pivots", 0, "simplex pivot budget (0 = unlimited)")
	freshEncode := fs.Bool("fresh-encode", false, "re-encode on every Check instead of solving incrementally (ablation)")
	screenTier := fs.Bool("screen", true, "run the LP-relaxation screening tier before the SMT solve")
	noScreen := fs.Bool("no-screen", false, "disable the screening tier (ablation; same as -screen=false)")
	proofPath := fs.String("proof", "", "stream an UNSAT certificate to this file")
	checkProof := fs.Bool("check-proof", false, "emit the certificate and verify it with the independent checker (temp file when -proof is unset)")
	trimProof := fs.Bool("trim-proof", false, "trim the closed certificate in place before any -check-proof verification")
	if err := fs.Parse(args); err != nil {
		return exitError, nil // flag package already printed the problem
	}
	if fs.NArg() != 1 {
		return exitError, fmt.Errorf("usage: ufdiverify [flags] scenario.json")
	}
	spec, err := scenariofile.LoadAttack(fs.Arg(0))
	if err != nil {
		return exitError, err
	}
	sc, err := spec.Scenario()
	if err != nil {
		return exitError, err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *screenTier && !*noScreen && *proofPath == "" && !*checkProof {
		code, done, err := runScreen(ctx, sc)
		if done {
			return code, err
		}
	}
	if *trimProof && *proofPath == "" && !*checkProof {
		return exitError, fmt.Errorf("-trim-proof needs a certificate to act on: set -proof (or -check-proof)")
	}
	if *checkProof && *proofPath == "" {
		tmp, err := os.CreateTemp("", "ufdiverify-*.proof")
		if err != nil {
			return exitError, err
		}
		tmp.Close()
		*proofPath = tmp.Name()
		defer os.Remove(tmp.Name())
	}
	var pw *proof.Writer
	if *proofPath != "" {
		pw, err = proof.Create(*proofPath)
		if err != nil {
			return exitError, err
		}
	}
	if *maxConflicts > 0 || *maxPivots > 0 || *freshEncode || pw != nil {
		opts := smt.DefaultOptions()
		if sc.Options != nil {
			opts = *sc.Options
		}
		if *maxConflicts > 0 {
			opts.Budget.MaxConflicts = *maxConflicts
		}
		if *maxPivots > 0 {
			opts.Budget.MaxPivots = *maxPivots
		}
		if *freshEncode {
			opts.FreshPerCheck = true
		}
		if pw != nil {
			opts.Proof = pw
		}
		sc.Options = &opts
	}

	res, err := core.VerifyContext(ctx, sc)
	if err != nil {
		return exitError, err
	}
	sys := sc.System()
	fmt.Printf("system: %s (%d buses, %d lines, %d potential measurements)\n",
		sys.Name, sys.Buses, sys.NumLines(), sys.NumMeasurements())
	if pw != nil {
		if cerr := pw.Close(); cerr != nil {
			return exitError, fmt.Errorf("writing proof: %w", cerr)
		}
		fmt.Printf("proof: certificate streamed to %s\n", pw.Path())
		if *trimProof {
			st, err := proof.TrimFile(pw.Path())
			if err != nil {
				return exitError, fmt.Errorf("trimming proof: %w", err)
			}
			fmt.Printf("proof: trimmed %d → %d records, %d → %d bytes (%.1f×)\n",
				st.RecordsBefore, st.RecordsAfter, st.BytesBefore, st.BytesAfter, st.Ratio())
		}
		if *checkProof {
			rep, err := proof.CheckFile(pw.Path())
			if err != nil {
				return exitError, fmt.Errorf("certificate INVALID: %w", err)
			}
			fmt.Printf("proof: certificate verified — %s\n", rep)
		}
	}
	if res.Inconclusive {
		fmt.Printf("result: unknown — solver stopped early (%v)\n", res.Why)
		printSolverStats(res.Stats)
		return exitUnknown, nil
	}
	if !res.Feasible {
		fmt.Println("result: unsat — no attack vector satisfies the constraints")
		printSolverStats(res.Stats)
		return exitUnsat, nil
	}
	fmt.Println("result: sat — attack vector found")
	printAttack(sys, res)
	printSolverStats(res.Stats)
	return exitSat, nil
}

// runScreen tries to answer the scenario with the LP-relaxation screening
// tier. done reports whether the screen decided (code then carries the
// normal exit code); an inconclusive screen returns done=false and the
// caller falls through to the SMT pipeline.
func runScreen(ctx context.Context, sc *core.Scenario) (code int, done bool, err error) {
	res, err := core.ScreenScenario(ctx, sc, screen.Options{MaxPivots: screen.DefaultMaxPivots})
	if err != nil {
		return exitError, true, err
	}
	if !res.Verdict.Definitive() {
		return 0, false, nil
	}
	sys := sc.System()
	fmt.Printf("system: %s (%d buses, %d lines, %d potential measurements)\n",
		sys.Name, sys.Buses, sys.NumLines(), sys.NumMeasurements())
	st := res.Stats
	fmt.Printf("screen: LP relaxation decided without the SMT solver — %d vars, %d rows, %d pivots, %d probes, %s\n",
		st.Vars, st.Rows, st.Pivots, st.Probes, st.Elapsed.Round(10*time.Microsecond))
	if res.Verdict == screen.Infeasible {
		fmt.Printf("screen: %d rational Farkas certificate(s) carried on the verdict\n", len(res.Certificates))
		fmt.Println("result: unsat — no attack vector satisfies the constraints")
		return exitUnsat, true, nil
	}
	fmt.Println("result: sat — attack vector found")
	printAttack(sys, core.ResultFromScreen(res))
	return exitSat, true, nil
}

// printAttack renders a feasible verdict's concrete attack vector.
func printAttack(sys *grid.System, res *core.Result) {
	fmt.Printf("  measurements to alter (%d): %v\n",
		len(res.AlteredMeasurements), res.AlteredMeasurements)
	fmt.Printf("  substations to compromise (%d): %v\n",
		len(res.CompromisedBuses), res.CompromisedBuses)
	if len(res.ExcludedLines) > 0 {
		fmt.Printf("  lines to exclude from topology: %v\n", res.ExcludedLines)
	}
	if len(res.IncludedLines) > 0 {
		fmt.Printf("  lines to include in topology: %v\n", res.IncludedLines)
	}
	fmt.Println("  state corruption (Δθ):")
	for bus := 1; bus <= sys.Buses; bus++ {
		if c, ok := res.StateChanges[bus]; ok {
			f, _ := c.Float64()
			fmt.Printf("    bus %3d: %+.6f rad\n", bus, f)
		}
	}
}

func printSolverStats(st smt.Stats) {
	fmt.Printf("solver: %d bool vars, %d clauses, %d arithmetic atoms, %d conflicts, %d pivots, %s\n",
		st.BoolVars, st.Clauses, st.Atoms, st.Conflicts, st.Pivots,
		st.Duration.Round(100*time.Microsecond))
}
