// Command ufdiverify decides the feasibility of an undetected false data
// injection attack described by a JSON scenario file and, when feasible,
// prints the attack vector — the measurements to alter, the substations to
// compromise, the topology poisoning and the resulting state corruption.
//
// Usage:
//
//	ufdiverify scenario.json
//
// See internal/scenariofile for the file format; examples live under
// examples/scenarios/.
package main

import (
	"fmt"
	"os"

	"segrid/internal/core"
	"segrid/internal/scenariofile"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ufdiverify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: ufdiverify scenario.json")
	}
	spec, err := scenariofile.LoadAttack(args[0])
	if err != nil {
		return err
	}
	sc, err := spec.Scenario()
	if err != nil {
		return err
	}
	res, err := core.Verify(sc)
	if err != nil {
		return err
	}
	sys := sc.System()
	fmt.Printf("system: %s (%d buses, %d lines, %d potential measurements)\n",
		sys.Name, sys.Buses, sys.NumLines(), sys.NumMeasurements())
	if !res.Feasible {
		fmt.Println("result: unsat — no attack vector satisfies the constraints")
		return nil
	}
	fmt.Println("result: sat — attack vector found")
	fmt.Printf("  measurements to alter (%d): %v\n",
		len(res.AlteredMeasurements), res.AlteredMeasurements)
	fmt.Printf("  substations to compromise (%d): %v\n",
		len(res.CompromisedBuses), res.CompromisedBuses)
	if len(res.ExcludedLines) > 0 {
		fmt.Printf("  lines to exclude from topology: %v\n", res.ExcludedLines)
	}
	if len(res.IncludedLines) > 0 {
		fmt.Printf("  lines to include in topology: %v\n", res.IncludedLines)
	}
	fmt.Println("  state corruption (Δθ):")
	for bus := 1; bus <= sys.Buses; bus++ {
		if c, ok := res.StateChanges[bus]; ok {
			f, _ := c.Float64()
			fmt.Printf("    bus %3d: %+.6f rad\n", bus, f)
		}
	}
	fmt.Printf("solver: %d bool vars, %d clauses, %d arithmetic atoms, %d conflicts, %s\n",
		res.Stats.BoolVars, res.Stats.Clauses, res.Stats.Atoms,
		res.Stats.Conflicts, res.Stats.Duration.Round(1e5))
	return nil
}
