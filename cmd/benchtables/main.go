// Command benchtables regenerates every table and figure of the paper's
// evaluation section on this machine and prints paper-style rows.
//
// Usage:
//
//	benchtables [-exp all|casestudy|synthesis|fig4a|fig4b|fig4c|fig4d|fig5a|fig5b|fig5c|fig5d|tableiv|actransfer] [-large] [-parallel N]
//	benchtables -bench-json BENCH.json [-bench-baseline PREV.json]
//
// -large includes the IEEE 300-bus runs (minutes of extra runtime).
// -parallel runs the sweep experiments (Fig 4(b)-(d), Fig 5(b)-(d)) on N
// workers; the scaling figures stay sequential for timing fidelity.
// -bench-json runs the benchmark trajectory set instead of the tables and
// writes one JSON entry per workload (ns/op, allocs/op, solver counters).
// -bench-baseline embeds a previous trajectory file's workloads as the new
// file's "baseline" block, so the committed snapshot carries its own
// comparison point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"segrid/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	large := flag.Bool("large", false, "include the IEEE 300-bus system")
	parallel := flag.Int("parallel", 1, "sweep worker count (<2 = sequential)")
	benchJSON := flag.String("bench-json", "", "run the benchmark set and write JSON to this file")
	benchBaseline := flag.String("bench-baseline", "", "previous BENCH_<n>.json whose workloads become the new file's baseline block")
	flag.Parse()
	if err := run(*exp, *large, *parallel, *benchJSON, *benchBaseline); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(exp string, large bool, parallel int, benchJSON, benchBaseline string) error {
	cfg := experiments.Config{Out: os.Stdout, Large: large, Parallel: parallel}
	if benchJSON != "" {
		entries, err := experiments.BenchSet(cfg)
		if err != nil {
			return err
		}
		// The object form leaves room for extra top-level keys in committed
		// snapshots; trajectory tooling reads only "workloads". With
		// -bench-baseline, the previous trajectory file's workloads are
		// embedded as this file's "baseline" so the snapshot is
		// self-contained.
		doc := map[string]any{"workloads": entries}
		if benchBaseline != "" {
			base, err := loadBaseline(benchBaseline)
			if err != nil {
				return err
			}
			doc["baseline"] = base
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(benchJSON, append(data, '\n'), 0o644)
	}
	type step struct {
		name string
		fn   func() error
	}
	steps := []step{
		{"casestudy", func() error { return experiments.CaseStudyAttacks(cfg) }},
		{"synthesis", func() error { return experiments.CaseStudySynthesis(cfg) }},
		{"fig4a", func() error { _, err := experiments.Fig4a(cfg); return err }},
		{"fig4b", func() error { _, err := experiments.Fig4b(cfg); return err }},
		{"fig4c", func() error { _, err := experiments.Fig4c(cfg); return err }},
		{"fig4d", func() error { _, err := experiments.Fig4d(cfg); return err }},
		{"fig5a", func() error { _, err := experiments.Fig5a(cfg); return err }},
		{"fig5b", func() error { _, err := experiments.Fig5b(cfg); return err }},
		{"fig5c", func() error { _, err := experiments.Fig5c(cfg); return err }},
		{"fig5d", func() error { _, err := experiments.Fig5d(cfg); return err }},
		{"tableiv", func() error { _, err := experiments.TableIV(cfg); return err }},
		{"actransfer", func() error { _, err := experiments.ACTransfer(cfg); return err }},
	}
	ran := false
	for _, s := range steps {
		if exp != "all" && exp != s.name {
			continue
		}
		ran = true
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Println()
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// loadBaseline reads a previous trajectory file and returns its workloads
// tagged with their origin, for embedding as the next file's baseline block.
func loadBaseline(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench-baseline: %w", err)
	}
	var prev struct {
		Workloads []experiments.BenchEntry `json:"workloads"`
	}
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil, fmt.Errorf("bench-baseline %s: %w", path, err)
	}
	if len(prev.Workloads) == 0 {
		return nil, fmt.Errorf("bench-baseline %s: no workloads", path)
	}
	return map[string]any{
		"source":    fmt.Sprintf("workloads of %s, same machine", path),
		"workloads": prev.Workloads,
	}, nil
}
