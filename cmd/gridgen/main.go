// Command gridgen prints the registered IEEE test systems or generates
// deterministic synthetic grids, in the paper's Table II layout.
//
// Usage:
//
//	gridgen -case ieee57
//	gridgen -buses 40 -lines 60 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"segrid/internal/grid"
)

func main() {
	caseName := flag.String("case", "", "registered test case (ieee14, ieee30, ieee57, ieee118, ieee300)")
	buses := flag.Int("buses", 0, "bus count for a synthetic system")
	lines := flag.Int("lines", 0, "line count for a synthetic system")
	seed := flag.Uint64("seed", 1, "synthetic generator seed")
	flag.Parse()
	if err := run(*caseName, *buses, *lines, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "gridgen:", err)
		os.Exit(1)
	}
}

func run(caseName string, buses, lines int, seed uint64) error {
	var sys *grid.System
	var err error
	switch {
	case caseName != "" && buses == 0 && lines == 0:
		sys, err = grid.Case(caseName)
	case caseName == "" && buses > 0 && lines > 0:
		sys, err = grid.Synthetic(fmt.Sprintf("synthetic-%d-%d", buses, lines), buses, lines, seed)
	default:
		return fmt.Errorf("give either -case, or -buses and -lines")
	}
	if err != nil {
		return err
	}
	fmt.Printf("# %s: %d buses, %d lines, %d potential measurements, average degree %.2f\n",
		sys.Name, sys.Buses, sys.NumLines(), sys.NumMeasurements(), sys.AverageDegree())
	fmt.Printf("%-6s %-8s %-7s %-10s\n", "line", "from", "to", "admittance")
	for _, ln := range sys.Lines {
		fmt.Printf("%-6d %-8d %-7d %-10.4f\n", ln.ID, ln.From, ln.To, ln.Admittance)
	}
	return nil
}
