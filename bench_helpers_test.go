package segrid

import "math/big"

// ratInt builds an integer rational for benchmark formulas.
func ratInt(n int64) *big.Rat { return big.NewRat(n, 1) }
