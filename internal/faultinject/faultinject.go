// Package faultinject is the deterministic fault-injection harness for the
// long-running analytics service: it manufactures, from a seed, the failure
// modes a persistent verification process meets in production — mid-check
// cancellation, encoder poisoning, slow-solver stalls and proof-stream write
// errors — so robustness tests replay the exact same failure sequence on
// every run.
//
// It extends the smt.Interrupter hook from the interruptible-solving stack:
// a Schedule deterministically draws one Decision per check, and an Injector
// applies that decision through the solver's poll points. Proof-sink faults
// are applied by wrapping the certificate stream in a FlakyWriter. The
// underlying solver is deterministic, so a given (seed, workload) pair fails
// byte-for-byte identically across runs.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"segrid/internal/smt"
)

// Kind enumerates the injectable fault classes.
type Kind int8

const (
	// None injects nothing; the check runs clean.
	None Kind = iota
	// Cancel aborts the check mid-solve exactly as an expired or cancelled
	// request context would: the injector fires context.Canceled from a poll
	// point.
	Cancel
	// Poison aborts the check with ErrPoisoned, modeling an encoder whose
	// internal state can no longer be trusted (a panic swallowed by a
	// recover, a torn incremental update). The encoder's owner must
	// quarantine it.
	Poison
	// Stall simulates a pathologically slow solver: once triggered, every
	// poll point sleeps, so only a wall-clock budget or deadline ends the
	// check. Exercises tail-latency enforcement.
	Stall
	// ProofWriteErr makes the request's certificate sink fail after a byte
	// budget (see Decision.Wrap); the check itself runs clean, but the
	// proof stream is poisoned and must not publish.
	ProofWriteErr
)

// String names the kind for logs and test output.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Cancel:
		return "cancel"
	case Poison:
		return "poison"
	case Stall:
		return "stall"
	case ProofWriteErr:
		return "proof-write-error"
	default:
		return fmt.Sprintf("Kind(%d)", int8(k))
	}
}

// ErrPoisoned marks a check aborted because the encoder state is no longer
// trustworthy. It wraps smt.ErrInterrupted, so smt classifies the Unknown as
// ReasonInterrupted (retryable on a fresh encoder).
var ErrPoisoned = fmt.Errorf("faultinject: encoder state poisoned: %w", smt.ErrInterrupted)

// ErrProofSink is the write error a scheduled ProofWriteErr fault injects
// into the certificate stream.
var ErrProofSink = errors.New("faultinject: injected proof-sink write failure")

// Decision is one check's fault plan, drawn deterministically from a
// Schedule.
type Decision struct {
	// Kind selects the fault (None for a clean check).
	Kind Kind
	// AfterPolls is the interrupter poll count at which the fault triggers;
	// solver polling is deterministic, so the trigger lands at the same
	// point of the search on every run.
	AfterPolls int64
	// StallFor is the per-poll sleep once a Stall has triggered.
	StallFor time.Duration
	// AfterBytes is the proof-sink byte budget for ProofWriteErr.
	AfterBytes int64
}

// Config shapes the fault mix a Schedule draws from. Probabilities are per
// check and must sum to at most 1; the remainder is the clean-check
// probability.
type Config struct {
	PCancel   float64
	PPoison   float64
	PStall    float64
	PProofErr float64
	// MaxAfterPolls bounds the uniformly drawn trigger point (default 512).
	MaxAfterPolls int64
	// StallFor is the per-poll stall duration (default 200µs).
	StallFor time.Duration
	// MaxAfterBytes bounds the uniformly drawn proof-sink byte budget
	// (default 8192).
	MaxAfterBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxAfterPolls <= 0 {
		c.MaxAfterPolls = 512
	}
	if c.StallFor <= 0 {
		c.StallFor = 200 * time.Microsecond
	}
	if c.MaxAfterBytes <= 0 {
		c.MaxAfterBytes = 8192
	}
	return c
}

// Schedule is a seeded, deterministic source of fault Decisions. The decision
// sequence is a pure function of (seed, config): the i-th call to Next always
// returns the same Decision. It is safe for concurrent use; under concurrency
// the sequence itself stays fixed while the assignment of decisions to
// requests follows arrival order.
type Schedule struct {
	mu    sync.Mutex
	rng   splitmix
	cfg   Config
	draws uint64
}

// New returns a schedule drawing from cfg with the given seed.
func New(seed uint64, cfg Config) *Schedule {
	return &Schedule{rng: splitmix{state: seed}, cfg: cfg.withDefaults()}
}

// Draws returns how many decisions have been handed out.
func (s *Schedule) Draws() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draws
}

// Next draws the next Decision in the deterministic sequence.
func (s *Schedule) Next() Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draws++
	// Three fixed draws per decision keep the sequence aligned regardless of
	// which kind is selected.
	u := float64(s.rng.next()>>11) / (1 << 53)
	polls := int64(s.rng.next() % uint64(s.cfg.MaxAfterPolls))
	bytes := int64(s.rng.next() % uint64(s.cfg.MaxAfterBytes))
	d := Decision{AfterPolls: polls, StallFor: s.cfg.StallFor, AfterBytes: bytes}
	switch {
	case u < s.cfg.PCancel:
		d.Kind = Cancel
	case u < s.cfg.PCancel+s.cfg.PPoison:
		d.Kind = Poison
	case u < s.cfg.PCancel+s.cfg.PPoison+s.cfg.PStall:
		d.Kind = Stall
	case u < s.cfg.PCancel+s.cfg.PPoison+s.cfg.PStall+s.cfg.PProofErr:
		d.Kind = ProofWriteErr
	default:
		d.Kind = None
	}
	return d
}

// Injector returns an Injector for the next scheduled decision, ready to be
// installed as a check's smt.Interrupter.
func (s *Schedule) Injector() *Injector {
	return NewInjector(s.Next())
}

// Injector applies one Decision to one check through the solver's
// interruption points. Like all Interrupters it is polled from a single
// goroutine and needs no locking. A zero or None injector is a no-op.
type Injector struct {
	d     Decision
	polls int64
	fired bool
	// sleep is a test seam; nil means time.Sleep.
	sleep func(time.Duration)
}

var _ smt.Interrupter = (*Injector)(nil)

// NewInjector returns an injector applying d.
func NewInjector(d Decision) *Injector { return &Injector{d: d} }

// Decision returns the plan this injector applies.
func (i *Injector) Decision() Decision { return i.d }

// Fired reports whether the fault has triggered.
func (i *Injector) Fired() bool { return i.fired }

// Interrupt implements smt.Interrupter.
func (i *Injector) Interrupt(point string) error {
	i.polls++
	if i.polls <= i.d.AfterPolls {
		return nil
	}
	switch i.d.Kind {
	case Cancel:
		i.fired = true
		return context.Canceled
	case Poison:
		i.fired = true
		return ErrPoisoned
	case Stall:
		i.fired = true
		if i.sleep != nil {
			i.sleep(i.d.StallFor)
		} else {
			time.Sleep(i.d.StallFor)
		}
	}
	return nil
}

// FlakyWriter wraps a proof sink and injects ErrProofSink once FailAfter
// bytes have been accepted, modeling a torn certificate stream (full disk,
// broken pipe). proof.Writer errors are sticky, so one injected failure
// poisons the whole stream — exactly the production failure.
type FlakyWriter struct {
	W         io.Writer
	FailAfter int64

	written int64
	failed  bool
}

// Written returns the bytes accepted before failure.
func (f *FlakyWriter) Written() int64 { return f.written }

// Failed reports whether the injected failure has triggered.
func (f *FlakyWriter) Failed() bool { return f.failed }

// Write implements io.Writer.
func (f *FlakyWriter) Write(p []byte) (int, error) {
	if f.failed || f.written+int64(len(p)) > f.FailAfter {
		f.failed = true
		return 0, ErrProofSink
	}
	n, err := f.W.Write(p)
	f.written += int64(n)
	return n, err
}

// Wrap applies d to a proof sink: ProofWriteErr decisions wrap w in a
// FlakyWriter with the scheduled byte budget; every other kind returns w
// unchanged.
func (d Decision) Wrap(w io.Writer) io.Writer {
	if d.Kind != ProofWriteErr {
		return w
	}
	return &FlakyWriter{W: w, FailAfter: d.AfterBytes}
}

// splitmix is splitmix64, chosen over math/rand for bit-stable output across
// Go releases: reproducibility of a seeded failure schedule is part of the
// harness contract.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
