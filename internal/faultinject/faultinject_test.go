package faultinject

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"segrid/internal/sat"
	"segrid/internal/smt"

	"segrid/internal/proof"
)

var mixedConfig = Config{PCancel: 0.2, PPoison: 0.2, PStall: 0.1, PProofErr: 0.1}

// TestScheduleDeterminism pins the harness contract: the decision sequence
// is a pure function of (seed, config), byte-for-byte across runs.
func TestScheduleDeterminism(t *testing.T) {
	a, b := New(42, mixedConfig), New(42, mixedConfig)
	var seqA, seqB bytes.Buffer
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&seqA, "%+v\n", a.Next())
		fmt.Fprintf(&seqB, "%+v\n", b.Next())
	}
	if seqA.String() != seqB.String() {
		t.Fatalf("same seed produced diverging schedules")
	}
	c := New(43, mixedConfig)
	var seqC bytes.Buffer
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&seqC, "%+v\n", c.Next())
	}
	if seqA.String() == seqC.String() {
		t.Fatalf("different seeds produced identical schedules")
	}
	if a.Draws() != 500 {
		t.Fatalf("Draws = %d, want 500", a.Draws())
	}
}

// TestScheduleMixCoverage checks every configured kind actually appears: a
// schedule that never injects is a robustness test that tests nothing.
func TestScheduleMixCoverage(t *testing.T) {
	s := New(7, mixedConfig)
	got := make(map[Kind]int)
	for i := 0; i < 2000; i++ {
		got[s.Next().Kind]++
	}
	for _, k := range []Kind{None, Cancel, Poison, Stall, ProofWriteErr} {
		if got[k] == 0 {
			t.Fatalf("kind %v never drawn in 2000 decisions: %v", k, got)
		}
	}
}

// assertUnsatCore builds a small conflict-rich unsat instance.
func assertUnsatCore(s *smt.Solver) {
	n := 7
	vs := make([][]smt.BoolVar, n+1)
	for p := range vs {
		vs[p] = make([]smt.BoolVar, n)
		for h := range vs[p] {
			vs[p][h] = s.BoolVar(fmt.Sprintf("p%d_h%d", p, h))
		}
	}
	for p := 0; p <= n; p++ {
		fs := make([]smt.Formula, n)
		for h := 0; h < n; h++ {
			fs[h] = smt.B(vs[p][h])
		}
		s.Assert(smt.Or(fs...))
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.Assert(smt.Or(smt.Not(smt.B(vs[p1][h])), smt.Not(smt.B(vs[p2][h]))))
			}
		}
	}
}

// TestInjectorCancelAndPoison drives injected faults through a real check
// and asserts the solver reports the exact fault class, machine-readably.
func TestInjectorCancelAndPoison(t *testing.T) {
	cases := []struct {
		kind Kind
		want smt.UnknownReason
		why  error
	}{
		{Cancel, smt.ReasonCancelled, context.Canceled},
		{Poison, smt.ReasonInterrupted, ErrPoisoned},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			s := smt.NewSolver(smt.DefaultOptions())
			assertUnsatCore(s)
			inj := NewInjector(Decision{Kind: tc.kind, AfterPolls: 10})
			s.SetInterrupter(inj)
			res, err := s.Check()
			if err != nil {
				t.Fatalf("injected fault must not be an error, got %v", err)
			}
			if res.Status != smt.Unknown {
				t.Fatalf("Status = %v, want Unknown", res.Status)
			}
			if !inj.Fired() {
				t.Fatalf("injector never fired")
			}
			if !errors.Is(res.Why, tc.why) {
				t.Fatalf("Why = %v, want %v", res.Why, tc.why)
			}
			if res.Stats.Unknown != tc.want {
				t.Fatalf("Stats.Unknown = %v, want %v", res.Stats.Unknown, tc.want)
			}
		})
	}
}

// TestInjectorStallHitsDeadline checks a stalled solver is reaped by the
// wall-clock budget rather than hanging: the tail-latency guard the service
// relies on.
func TestInjectorStallHitsDeadline(t *testing.T) {
	s := smt.NewSolver(smt.DefaultOptions())
	assertUnsatCore(s)
	s.SetBudget(smt.Budget{MaxDuration: 20 * time.Millisecond})
	inj := NewInjector(Decision{Kind: Stall, AfterPolls: 5, StallFor: time.Millisecond})
	s.SetInterrupter(inj)
	start := time.Now()
	res, err := s.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != smt.Unknown {
		t.Fatalf("Status = %v, want Unknown", res.Status)
	}
	if res.Stats.Unknown != smt.ReasonWallClockBudget {
		t.Fatalf("Stats.Unknown = %v (why %v), want wall-clock budget", res.Stats.Unknown, res.Why)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled check ran %s, deadline did not bite", elapsed)
	}
}

// TestInjectorReproducible checks the same decision interrupts the same
// deterministic solve at the identical point — the byte-for-byte replay
// property tests depend on.
func TestInjectorReproducible(t *testing.T) {
	run := func() smt.Stats {
		s := smt.NewSolver(smt.DefaultOptions())
		assertUnsatCore(s)
		s.SetInterrupter(NewInjector(Decision{Kind: Cancel, AfterPolls: 40}))
		res, err := s.Check()
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		st.Duration, st.AllocBytes = 0, 0 // wall-clock noise
		return st
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("replay %d diverged:\n got %+v\nwant %+v", i, got, first)
		}
	}
}

// TestFlakyWriterPoisonsProofStream checks an injected sink failure is
// sticky in the proof writer and surfaces at Close — a torn certificate is
// always detected, never silently published.
func TestFlakyWriterPoisonsProofStream(t *testing.T) {
	var sink bytes.Buffer
	d := Decision{Kind: ProofWriteErr, AfterBytes: 16}
	fw := d.Wrap(&sink).(*FlakyWriter)
	w := proof.NewWriter(fw)
	for i := 0; i < 64; i++ {
		w.LogInput([]sat.Lit{sat.PosLit(sat.Var(i)), sat.NegLit(sat.Var(i + 1))})
	}
	w.EndUnsat(nil)
	if err := w.Close(); !errors.Is(err, ErrProofSink) {
		t.Fatalf("Close = %v, want injected sink failure", err)
	}
	if !fw.Failed() {
		t.Fatalf("flaky writer never triggered")
	}
	if fw.Written() > 16 {
		t.Fatalf("sink accepted %d bytes past the %d budget", fw.Written(), 16)
	}
	// Non-proof-fault decisions leave the sink untouched.
	if out := (Decision{Kind: Cancel}).Wrap(&sink); out != &sink {
		t.Fatalf("non-proof decision wrapped the sink")
	}
}
