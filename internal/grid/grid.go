// Package grid models power transmission networks at the level the DC power
// flow model needs: buses, lines with admittances, and the measurement
// configuration of a SCADA-based state estimator.
//
// Conventions follow the reproduced paper exactly. Buses and lines are
// 1-based. For a system with l lines and b buses there are m = 2l + b
// potential measurements, numbered:
//
//	i        (1 ≤ i ≤ l)   forward power flow of line i (metered at the from-bus)
//	l + i    (1 ≤ i ≤ l)   backward power flow of line i (metered at the to-bus)
//	2l + j   (1 ≤ j ≤ b)   power consumption at bus j
package grid

import (
	"errors"
	"fmt"
)

// Line is a transmission line (branch). Admittance is the DC-model line
// susceptance magnitude, the reciprocal of the line reactance (per unit).
type Line struct {
	ID         int // 1-based, dense
	From, To   int // 1-based bus IDs
	Admittance float64
}

// System is a transmission network.
type System struct {
	Name  string
	Buses int
	Lines []Line

	// Derived incidence indexes, built by Validate/finish.
	inLines  [][]int // per bus (1-based): line IDs with To = bus
	outLines [][]int // per bus: line IDs with From = bus
}

// NewSystem builds a system and validates it. Lines must be numbered 1..l
// in order.
func NewSystem(name string, buses int, lines []Line) (*System, error) {
	s := &System{Name: name, Buses: buses, Lines: append([]Line(nil), lines...)}
	if err := s.validate(); err != nil {
		return nil, err
	}
	s.buildIndexes()
	return s, nil
}

func (s *System) validate() error {
	if s.Buses < 2 {
		return errors.New("grid: system needs at least two buses")
	}
	if len(s.Lines) == 0 {
		return errors.New("grid: system needs at least one line")
	}
	seen := make(map[[2]int]bool, len(s.Lines))
	for i, ln := range s.Lines {
		if ln.ID != i+1 {
			return fmt.Errorf("grid: line at position %d has ID %d, want %d", i, ln.ID, i+1)
		}
		if ln.From < 1 || ln.From > s.Buses || ln.To < 1 || ln.To > s.Buses {
			return fmt.Errorf("grid: line %d endpoints (%d,%d) out of range 1..%d", ln.ID, ln.From, ln.To, s.Buses)
		}
		if ln.From == ln.To {
			return fmt.Errorf("grid: line %d is a self-loop at bus %d", ln.ID, ln.From)
		}
		if ln.Admittance <= 0 {
			return fmt.Errorf("grid: line %d has non-positive admittance %v", ln.ID, ln.Admittance)
		}
		key := [2]int{min(ln.From, ln.To), max(ln.From, ln.To)}
		if seen[key] {
			return fmt.Errorf("grid: parallel line %d between buses %d and %d", ln.ID, ln.From, ln.To)
		}
		seen[key] = true
	}
	return nil
}

func (s *System) buildIndexes() {
	s.inLines = make([][]int, s.Buses+1)
	s.outLines = make([][]int, s.Buses+1)
	for _, ln := range s.Lines {
		s.outLines[ln.From] = append(s.outLines[ln.From], ln.ID)
		s.inLines[ln.To] = append(s.inLines[ln.To], ln.ID)
	}
}

// NumLines returns l.
func (s *System) NumLines() int { return len(s.Lines) }

// NumMeasurements returns the number of potential measurements, 2l + b.
func (s *System) NumMeasurements() int { return 2*len(s.Lines) + s.Buses }

// Line returns the line with the given 1-based ID.
func (s *System) Line(id int) Line { return s.Lines[id-1] }

// InLines returns the IDs of lines whose to-bus is j.
func (s *System) InLines(j int) []int { return s.inLines[j] }

// OutLines returns the IDs of lines whose from-bus is j.
func (s *System) OutLines(j int) []int { return s.outLines[j] }

// LinesAt returns all line IDs incident to bus j.
func (s *System) LinesAt(j int) []int {
	out := make([]int, 0, len(s.inLines[j])+len(s.outLines[j]))
	out = append(out, s.outLines[j]...)
	out = append(out, s.inLines[j]...)
	return out
}

// Neighbors returns the buses adjacent to j.
func (s *System) Neighbors(j int) []int {
	out := make([]int, 0, len(s.inLines[j])+len(s.outLines[j]))
	for _, id := range s.outLines[j] {
		out = append(out, s.Line(id).To)
	}
	for _, id := range s.inLines[j] {
		out = append(out, s.Line(id).From)
	}
	return out
}

// Connected reports whether the subgraph restricted to the given mapped
// lines (1-based, nil means all) spans all buses.
func (s *System) Connected(mapped []bool) bool {
	adj := make([][]int, s.Buses+1)
	for _, ln := range s.Lines {
		if mapped != nil && !mapped[ln.ID] {
			continue
		}
		adj[ln.From] = append(adj[ln.From], ln.To)
		adj[ln.To] = append(adj[ln.To], ln.From)
	}
	seen := make([]bool, s.Buses+1)
	stack := []int{1}
	seen[1] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == s.Buses
}

// AverageDegree returns 2l/b, the structural property the paper's
// scalability argument relies on (≈ 3 for real grids).
func (s *System) AverageDegree() float64 {
	return 2 * float64(len(s.Lines)) / float64(s.Buses)
}

// --- measurement numbering ---------------------------------------------

// ForwardFlowMeas returns the measurement ID of line i's forward flow.
func (s *System) ForwardFlowMeas(lineID int) int { return lineID }

// BackwardFlowMeas returns the measurement ID of line i's backward flow.
func (s *System) BackwardFlowMeas(lineID int) int { return len(s.Lines) + lineID }

// InjectionMeas returns the measurement ID of bus j's power consumption.
func (s *System) InjectionMeas(busID int) int { return 2*len(s.Lines) + busID }

// MeasKind describes what a measurement ID refers to.
type MeasKind int8

// Measurement kinds.
const (
	MeasForwardFlow MeasKind = iota + 1
	MeasBackwardFlow
	MeasInjection
)

// DecodeMeas splits a measurement ID into its kind and the line or bus it
// refers to.
func (s *System) DecodeMeas(measID int) (MeasKind, int, error) {
	l := len(s.Lines)
	switch {
	case measID >= 1 && measID <= l:
		return MeasForwardFlow, measID, nil
	case measID > l && measID <= 2*l:
		return MeasBackwardFlow, measID - l, nil
	case measID > 2*l && measID <= 2*l+s.Buses:
		return MeasInjection, measID - 2*l, nil
	default:
		return 0, 0, fmt.Errorf("grid: measurement ID %d out of range 1..%d", measID, s.NumMeasurements())
	}
}

// HomeBus returns the substation (bus) where a measurement physically
// resides: the from-bus for forward flows, the to-bus for backward flows,
// and the bus itself for consumption measurements.
func (s *System) HomeBus(measID int) (int, error) {
	kind, ref, err := s.DecodeMeas(measID)
	if err != nil {
		return 0, err
	}
	switch kind {
	case MeasForwardFlow:
		return s.Line(ref).From, nil
	case MeasBackwardFlow:
		return s.Line(ref).To, nil
	default:
		return ref, nil
	}
}

// MeasAtBus returns all measurement IDs homed at bus j.
func (s *System) MeasAtBus(j int) []int {
	out := make([]int, 0, len(s.outLines[j])+len(s.inLines[j])+1)
	for _, id := range s.outLines[j] {
		out = append(out, s.ForwardFlowMeas(id))
	}
	for _, id := range s.inLines[j] {
		out = append(out, s.BackwardFlowMeas(id))
	}
	out = append(out, s.InjectionMeas(j))
	return out
}
