package grid

import (
	"fmt"
	"math"
)

// QuantizeAdmittance rounds an admittance to four decimals. All embedded
// and generated cases use quantized admittances so that the formal model's
// exact-rational view of a line (internal/core) and the floating-point
// estimator's view (internal/se) coincide; the paper's Table II data has at
// most two decimals anyway.
func QuantizeAdmittance(y float64) float64 {
	return math.Round(y*1e4) / 1e4
}

// IEEE14 returns the IEEE 14-bus test system with the exact line admittances
// printed in the paper's Table II (which are the reciprocals of the standard
// case's branch reactances).
func IEEE14() *System {
	lines := []Line{
		{1, 1, 2, 16.90},
		{2, 1, 5, 4.48},
		{3, 2, 3, 5.05},
		{4, 2, 4, 5.67},
		{5, 2, 5, 5.75},
		{6, 3, 4, 5.85},
		{7, 4, 5, 23.75},
		{8, 4, 7, 4.78},
		{9, 4, 9, 1.80},
		{10, 5, 6, 3.97},
		{11, 6, 11, 5.03},
		{12, 6, 12, 3.91},
		{13, 6, 13, 7.68},
		{14, 7, 8, 5.68},
		{15, 7, 9, 9.09},
		{16, 9, 10, 11.83},
		{17, 9, 14, 3.70},
		{18, 10, 11, 5.21},
		{19, 12, 13, 5.00},
		{20, 13, 14, 2.87},
	}
	s, err := NewSystem("ieee14", 14, lines)
	if err != nil {
		panic("grid: embedded IEEE 14-bus case invalid: " + err.Error())
	}
	return s
}

// ieee30Branches is the standard IEEE 30-bus branch list as (from, to,
// reactance) triples; admittances are the reciprocals.
var ieee30Branches = [][3]float64{
	{1, 2, 0.0575}, {1, 3, 0.1652}, {2, 4, 0.1737}, {3, 4, 0.0379},
	{2, 5, 0.1983}, {2, 6, 0.1763}, {4, 6, 0.0414}, {5, 7, 0.1160},
	{6, 7, 0.0820}, {6, 8, 0.0420}, {6, 9, 0.2080}, {6, 10, 0.5560},
	{9, 11, 0.2080}, {9, 10, 0.1100}, {4, 12, 0.2560}, {12, 13, 0.1400},
	{12, 14, 0.2559}, {12, 15, 0.1304}, {12, 16, 0.1987}, {14, 15, 0.1997},
	{16, 17, 0.1923}, {15, 18, 0.2185}, {18, 19, 0.1292}, {19, 20, 0.0680},
	{10, 20, 0.2090}, {10, 17, 0.0845}, {10, 21, 0.0749}, {10, 22, 0.1499},
	{21, 22, 0.0236}, {15, 23, 0.2020}, {22, 24, 0.1790}, {23, 24, 0.2700},
	{24, 25, 0.3292}, {25, 26, 0.3800}, {25, 27, 0.2087}, {28, 27, 0.3960},
	{27, 29, 0.4153}, {27, 30, 0.6027}, {29, 30, 0.4533}, {8, 28, 0.2000},
	{6, 28, 0.0599},
}

// IEEE30 returns the IEEE 30-bus test system (41 branches, standard
// reactances).
func IEEE30() *System {
	lines := make([]Line, len(ieee30Branches))
	for i, b := range ieee30Branches {
		lines[i] = Line{
			ID:         i + 1,
			From:       int(b[0]),
			To:         int(b[1]),
			Admittance: QuantizeAdmittance(1 / b[2]),
		}
	}
	s, err := NewSystem("ieee30", 30, lines)
	if err != nil {
		panic("grid: embedded IEEE 30-bus case invalid: " + err.Error())
	}
	return s
}

// Synthetic builds a deterministic IEEE-like test system with the given bus
// and line counts: a connected ring backbone plus pseudo-random chords,
// reactances in the realistic 0.03–0.35 p.u. range. The paper evaluates on
// the standard IEEE 57/118/300-bus cases; their full branch tables are
// external data, so the scalability experiments here run on these
// structural stand-ins, which preserve the property the paper's argument
// rests on (connected grid, average nodal degree ≈ 3). See DESIGN.md.
func Synthetic(name string, buses, lines int, seed uint64) (*System, error) {
	if lines < buses {
		return nil, fmt.Errorf("grid: synthetic case needs lines ≥ buses (ring backbone), got %d < %d", lines, buses)
	}
	maxLines := buses * (buses - 1) / 2
	if lines > maxLines {
		return nil, fmt.Errorf("grid: %d lines exceed simple-graph maximum %d for %d buses", lines, maxLines, buses)
	}
	rng := seed
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 11
	}
	reactance := func() float64 {
		return 0.03 + float64(next()%3200)/10000 // 0.03 .. 0.3499
	}
	used := make(map[[2]int]bool, lines)
	ls := make([]Line, 0, lines)
	add := func(a, b int) {
		key := [2]int{min(a, b), max(a, b)}
		used[key] = true
		ls = append(ls, Line{ID: len(ls) + 1, From: a, To: b, Admittance: QuantizeAdmittance(1 / reactance())})
	}
	for i := 1; i <= buses; i++ {
		j := i + 1
		if j > buses {
			j = 1
		}
		add(i, j)
	}
	for len(ls) < lines {
		a := int(next()%uint64(buses)) + 1
		b := int(next()%uint64(buses)) + 1
		if a == b {
			continue
		}
		if used[[2]int{min(a, b), max(a, b)}] {
			continue
		}
		add(a, b)
	}
	return NewSystem(name, buses, ls)
}

// Case returns a registered test system by name: ieee14, ieee30, ieee57,
// ieee118, ieee300. The latter three are deterministic synthetic stand-ins
// with the standard cases' exact bus and line counts (see Synthetic).
func Case(name string) (*System, error) {
	switch name {
	case "ieee14":
		return IEEE14(), nil
	case "ieee30":
		return IEEE30(), nil
	case "ieee57":
		return Synthetic("ieee57", 57, 80, 57)
	case "ieee118":
		return Synthetic("ieee118", 118, 186, 118)
	case "ieee300":
		return Synthetic("ieee300", 300, 411, 300)
	default:
		return nil, fmt.Errorf("grid: unknown test case %q", name)
	}
}

// CaseNames lists the registered test systems in increasing size order.
func CaseNames() []string {
	return []string{"ieee14", "ieee30", "ieee57", "ieee118", "ieee300"}
}
