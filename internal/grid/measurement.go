package grid

import "fmt"

// MeasurementConfig records, per potential measurement, whether it is taken
// (recorded and reported to the estimator), secured (data-integrity
// protected) and accessible to the attacker. Index 0 is unused so that
// measurement IDs match the paper's 1-based numbering.
type MeasurementConfig struct {
	system     *System
	Taken      []bool
	Secured    []bool
	Accessible []bool
}

// NewMeasurementConfig returns a configuration for sys with every potential
// measurement taken, accessible and unsecured — the paper's default before a
// scenario restricts it.
func NewMeasurementConfig(sys *System) *MeasurementConfig {
	m := sys.NumMeasurements()
	c := &MeasurementConfig{
		system:     sys,
		Taken:      make([]bool, m+1),
		Secured:    make([]bool, m+1),
		Accessible: make([]bool, m+1),
	}
	for i := 1; i <= m; i++ {
		c.Taken[i] = true
		c.Accessible[i] = true
	}
	return c
}

// System returns the configured network.
func (c *MeasurementConfig) System() *System { return c.system }

// Clone returns a deep copy.
func (c *MeasurementConfig) Clone() *MeasurementConfig {
	out := &MeasurementConfig{
		system:     c.system,
		Taken:      append([]bool(nil), c.Taken...),
		Secured:    append([]bool(nil), c.Secured...),
		Accessible: append([]bool(nil), c.Accessible...),
	}
	return out
}

func (c *MeasurementConfig) check(ids []int) error {
	m := c.system.NumMeasurements()
	for _, id := range ids {
		if id < 1 || id > m {
			return fmt.Errorf("grid: measurement ID %d out of range 1..%d", id, m)
		}
	}
	return nil
}

// Untake marks the given measurements as not taken.
func (c *MeasurementConfig) Untake(ids ...int) error {
	if err := c.check(ids); err != nil {
		return err
	}
	for _, id := range ids {
		c.Taken[id] = false
	}
	return nil
}

// Secure marks the given measurements as data-integrity protected.
func (c *MeasurementConfig) Secure(ids ...int) error {
	if err := c.check(ids); err != nil {
		return err
	}
	for _, id := range ids {
		c.Secured[id] = true
	}
	return nil
}

// Unsecure clears the secured flag on the given measurements.
func (c *MeasurementConfig) Unsecure(ids ...int) error {
	if err := c.check(ids); err != nil {
		return err
	}
	for _, id := range ids {
		c.Secured[id] = false
	}
	return nil
}

// Restrict marks the given measurements as inaccessible to the attacker.
func (c *MeasurementConfig) Restrict(ids ...int) error {
	if err := c.check(ids); err != nil {
		return err
	}
	for _, id := range ids {
		c.Accessible[id] = false
	}
	return nil
}

// SecureBus secures every taken measurement homed at bus j — the paper's
// substation-level protection (e.g. by deploying a secured PMU).
func (c *MeasurementConfig) SecureBus(j int) error {
	if j < 1 || j > c.system.Buses {
		return fmt.Errorf("grid: bus %d out of range 1..%d", j, c.system.Buses)
	}
	for _, id := range c.system.MeasAtBus(j) {
		c.Secured[id] = true
	}
	return nil
}

// NumTaken counts taken measurements.
func (c *MeasurementConfig) NumTaken() int {
	n := 0
	for i := 1; i < len(c.Taken); i++ {
		if c.Taken[i] {
			n++
		}
	}
	return n
}

// TakenIDs returns the IDs of taken measurements in ascending order.
func (c *MeasurementConfig) TakenIDs() []int {
	out := make([]int, 0, c.NumTaken())
	for i := 1; i < len(c.Taken); i++ {
		if c.Taken[i] {
			out = append(out, i)
		}
	}
	return out
}

// KeepFraction untakes measurements until only about frac (0..1] of the
// potential set remains taken, removing evenly across the ID space but
// never dropping below a spanning set chosen greedily: forward line flows
// are kept preferentially so the system stays observable. Used by the
// "% of taken measurements" sweeps in the evaluation.
func (c *MeasurementConfig) KeepFraction(frac float64) error {
	if frac <= 0 || frac > 1 {
		return fmt.Errorf("grid: fraction %v out of (0,1]", frac)
	}
	m := c.system.NumMeasurements()
	target := int(frac * float64(m))
	if target < c.system.NumLines() {
		target = c.system.NumLines() // keep at least the forward flows
	}
	// Keep all forward flows (they span the network when it is connected),
	// then keep every k-th of the rest.
	for i := 1; i <= m; i++ {
		c.Taken[i] = i <= c.system.NumLines()
	}
	kept := c.system.NumLines()
	rest := m - kept
	need := target - kept
	if need <= 0 {
		return nil
	}
	// Spread the remaining kept measurements uniformly over backward flows
	// and injections.
	step := float64(rest) / float64(need)
	for k := 0; k < need; k++ {
		id := c.system.NumLines() + 1 + int(float64(k)*step)
		if id > m {
			id = m
		}
		c.Taken[id] = true
	}
	return nil
}
