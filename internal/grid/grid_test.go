package grid

import (
	"math"
	"testing"
)

func TestIEEE14Structure(t *testing.T) {
	s := IEEE14()
	if s.Buses != 14 || s.NumLines() != 20 {
		t.Fatalf("ieee14 = %d buses / %d lines, want 14/20", s.Buses, s.NumLines())
	}
	if s.NumMeasurements() != 54 {
		t.Fatalf("NumMeasurements = %d, want 54 (paper Section III-I)", s.NumMeasurements())
	}
	if !s.Connected(nil) {
		t.Fatalf("ieee14 not connected")
	}
	// Spot-check against the paper's Table II.
	l1 := s.Line(1)
	if l1.From != 1 || l1.To != 2 || math.Abs(l1.Admittance-16.90) > 1e-9 {
		t.Fatalf("line 1 = %+v, want 1→2 @16.90", l1)
	}
	l13 := s.Line(13)
	if l13.From != 6 || l13.To != 13 || math.Abs(l13.Admittance-7.68) > 1e-9 {
		t.Fatalf("line 13 = %+v, want 6→13 @7.68", l13)
	}
	l20 := s.Line(20)
	if l20.From != 13 || l20.To != 14 || math.Abs(l20.Admittance-2.87) > 1e-9 {
		t.Fatalf("line 20 = %+v, want 13→14 @2.87", l20)
	}
}

func TestIEEE30Structure(t *testing.T) {
	s := IEEE30()
	if s.Buses != 30 || s.NumLines() != 41 {
		t.Fatalf("ieee30 = %d buses / %d lines, want 30/41", s.Buses, s.NumLines())
	}
	if !s.Connected(nil) {
		t.Fatalf("ieee30 not connected")
	}
	if d := s.AverageDegree(); d < 2.5 || d > 3.0 {
		t.Fatalf("ieee30 average degree %v outside realistic range", d)
	}
}

func TestSyntheticCases(t *testing.T) {
	for _, tc := range []struct {
		name  string
		buses int
		lines int
	}{
		{"ieee57", 57, 80},
		{"ieee118", 118, 186},
		{"ieee300", 300, 411},
	} {
		s, err := Case(tc.name)
		if err != nil {
			t.Fatalf("Case(%s): %v", tc.name, err)
		}
		if s.Buses != tc.buses || s.NumLines() != tc.lines {
			t.Fatalf("%s = %d/%d, want %d/%d", tc.name, s.Buses, s.NumLines(), tc.buses, tc.lines)
		}
		if !s.Connected(nil) {
			t.Fatalf("%s not connected", tc.name)
		}
		if d := s.AverageDegree(); d < 2.3 || d > 3.5 {
			t.Fatalf("%s average degree %v outside grid-like range", tc.name, d)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic("x", 40, 60, 9)
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	b, err := Synthetic("x", 40, 60, 9)
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	for i := range a.Lines {
		if a.Lines[i] != b.Lines[i] {
			t.Fatalf("synthetic generator not deterministic at line %d", i+1)
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := Synthetic("x", 10, 5, 1); err == nil {
		t.Fatalf("lines < buses accepted")
	}
	if _, err := Synthetic("x", 4, 100, 1); err == nil {
		t.Fatalf("too many lines accepted")
	}
}

func TestUnknownCase(t *testing.T) {
	if _, err := Case("ieee9999"); err == nil {
		t.Fatalf("unknown case accepted")
	}
}

func TestNewSystemValidation(t *testing.T) {
	tests := []struct {
		name  string
		buses int
		lines []Line
	}{
		{"no buses", 1, []Line{{1, 1, 1, 1}}},
		{"no lines", 3, nil},
		{"bad id", 3, []Line{{5, 1, 2, 1}}},
		{"out of range", 3, []Line{{1, 1, 9, 1}}},
		{"self loop", 3, []Line{{1, 2, 2, 1}}},
		{"bad admittance", 3, []Line{{1, 1, 2, 0}}},
		{"parallel", 3, []Line{{1, 1, 2, 1}, {2, 2, 1, 2}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewSystem("bad", tc.buses, tc.lines); err == nil {
				t.Fatalf("invalid system accepted")
			}
		})
	}
}

func TestMeasurementNumbering(t *testing.T) {
	s := IEEE14()
	// Per the paper's Fig. 1 numbering: measurement 12 is the forward flow
	// of line 12 (6→12), 32 its backward flow, 46 bus 6's consumption, 53
	// bus 13's consumption.
	if s.ForwardFlowMeas(12) != 12 || s.BackwardFlowMeas(12) != 32 {
		t.Fatalf("line 12 measurements = %d/%d, want 12/32",
			s.ForwardFlowMeas(12), s.BackwardFlowMeas(12))
	}
	if s.InjectionMeas(6) != 46 || s.InjectionMeas(13) != 53 {
		t.Fatalf("injection measurements wrong")
	}
	kind, ref, err := s.DecodeMeas(32)
	if err != nil || kind != MeasBackwardFlow || ref != 12 {
		t.Fatalf("DecodeMeas(32) = %v,%v,%v", kind, ref, err)
	}
	kind, ref, err = s.DecodeMeas(46)
	if err != nil || kind != MeasInjection || ref != 6 {
		t.Fatalf("DecodeMeas(46) = %v,%v,%v", kind, ref, err)
	}
	if _, _, err := s.DecodeMeas(55); err == nil {
		t.Fatalf("out-of-range measurement decoded")
	}
	if _, _, err := s.DecodeMeas(0); err == nil {
		t.Fatalf("measurement 0 decoded")
	}
}

func TestHomeBus(t *testing.T) {
	s := IEEE14()
	// Forward flow of line 12 (6→12) is metered at bus 6; backward at 12.
	if hb, err := s.HomeBus(12); err != nil || hb != 6 {
		t.Fatalf("HomeBus(12) = %d,%v; want 6", hb, err)
	}
	if hb, err := s.HomeBus(32); err != nil || hb != 12 {
		t.Fatalf("HomeBus(32) = %d,%v; want 12", hb, err)
	}
	if hb, err := s.HomeBus(46); err != nil || hb != 6 {
		t.Fatalf("HomeBus(46) = %d,%v; want 6", hb, err)
	}
	if _, err := s.HomeBus(99); err == nil {
		t.Fatalf("out-of-range home bus accepted")
	}
}

func TestMeasAtBus(t *testing.T) {
	s := IEEE14()
	// Bus 6: out-lines 11,12,13; in-line 10; injection 46.
	got := map[int]bool{}
	for _, id := range s.MeasAtBus(6) {
		got[id] = true
	}
	for _, want := range []int{11, 12, 13, 30, 46} {
		if !got[want] {
			t.Fatalf("MeasAtBus(6) = %v missing %d", s.MeasAtBus(6), want)
		}
	}
	if len(got) != 5 {
		t.Fatalf("MeasAtBus(6) has %d entries, want 5", len(got))
	}
}

func TestIncidence(t *testing.T) {
	s := IEEE14()
	in := s.InLines(5)
	out := s.OutLines(5)
	// Bus 5: lines 2 (1→5), 5 (2→5), 7 (4→5) incoming; line 10 (5→6) outgoing.
	if len(in) != 3 || len(out) != 1 {
		t.Fatalf("bus 5 incidence %v / %v, want 3 in / 1 out", in, out)
	}
	if out[0] != 10 {
		t.Fatalf("OutLines(5) = %v, want [10]", out)
	}
	nb := s.Neighbors(5)
	if len(nb) != 4 {
		t.Fatalf("Neighbors(5) = %v, want 4 entries", nb)
	}
}

func TestConnectedWithMapping(t *testing.T) {
	s := IEEE14()
	mapped := make([]bool, s.NumLines()+1)
	for i := 1; i <= s.NumLines(); i++ {
		mapped[i] = true
	}
	// Removing line 17 (9→14) keeps connectivity via 20 (13→14); removing
	// both isolates bus 14.
	mapped[17] = false
	if !s.Connected(mapped) {
		t.Fatalf("removing line 17 should keep grid connected")
	}
	mapped[20] = false
	if s.Connected(mapped) {
		t.Fatalf("removing lines 17 and 20 must disconnect bus 14")
	}
}

func TestMeasurementConfig(t *testing.T) {
	s := IEEE14()
	c := NewMeasurementConfig(s)
	if c.NumTaken() != 54 {
		t.Fatalf("NumTaken = %d, want 54", c.NumTaken())
	}
	if err := c.Untake(5, 10, 14); err != nil {
		t.Fatalf("Untake: %v", err)
	}
	if c.NumTaken() != 51 || c.Taken[5] || !c.Taken[6] {
		t.Fatalf("Untake wrong")
	}
	if err := c.Secure(1, 2); err != nil {
		t.Fatalf("Secure: %v", err)
	}
	if !c.Secured[1] || c.Secured[3] {
		t.Fatalf("Secure wrong")
	}
	if err := c.Unsecure(1); err != nil || c.Secured[1] {
		t.Fatalf("Unsecure wrong")
	}
	if err := c.Restrict(7); err != nil || c.Accessible[7] {
		t.Fatalf("Restrict wrong")
	}
	if err := c.Untake(99); err == nil {
		t.Fatalf("out-of-range Untake accepted")
	}
	clone := c.Clone()
	clone.Taken[6] = false
	if !c.Taken[6] {
		t.Fatalf("Clone shares storage")
	}
}

func TestSecureBus(t *testing.T) {
	s := IEEE14()
	c := NewMeasurementConfig(s)
	if err := c.SecureBus(6); err != nil {
		t.Fatalf("SecureBus: %v", err)
	}
	for _, id := range []int{11, 12, 13, 30, 46} {
		if !c.Secured[id] {
			t.Fatalf("measurement %d not secured by SecureBus(6)", id)
		}
	}
	if c.Secured[1] {
		t.Fatalf("unrelated measurement secured")
	}
	if err := c.SecureBus(99); err == nil {
		t.Fatalf("out-of-range bus accepted")
	}
}

func TestKeepFraction(t *testing.T) {
	s := IEEE30()
	c := NewMeasurementConfig(s)
	if err := c.KeepFraction(0.7); err != nil {
		t.Fatalf("KeepFraction: %v", err)
	}
	m := s.NumMeasurements()
	got := c.NumTaken()
	want := int(0.7 * float64(m))
	if got < want-2 || got > want+2 {
		t.Fatalf("NumTaken = %d, want ≈ %d", got, want)
	}
	// All forward flows stay taken (observability).
	for i := 1; i <= s.NumLines(); i++ {
		if !c.Taken[i] {
			t.Fatalf("forward flow %d dropped by KeepFraction", i)
		}
	}
	if err := c.KeepFraction(0); err == nil {
		t.Fatalf("fraction 0 accepted")
	}
	if err := c.KeepFraction(1.5); err == nil {
		t.Fatalf("fraction > 1 accepted")
	}
}
