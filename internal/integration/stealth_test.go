// Package integration replays attack vectors produced by the formal model
// (internal/core) against the real WLS estimator and bad data detector
// (internal/se), closing the loop the paper's threat model asserts: vectors
// the model calls feasible are genuinely stealthy, and the residual test
// that catches gross errors stays silent.
package integration

import (
	"math"
	"testing"

	"segrid/internal/core"
	"segrid/internal/dcflow"
	"segrid/internal/grid"
	"segrid/internal/se"
	"segrid/internal/stat"
)

// baseCase sets up a plausible operating point on the given system.
func baseCase(t *testing.T, sys *grid.System) []float64 {
	t.Helper()
	cons := make([]float64, sys.Buses+1)
	total := 0.0
	for j := 2; j <= sys.Buses; j++ {
		load := 0.1 + 0.02*float64(j%7)
		cons[j] = load
		total += load
	}
	cons[1] = -total
	angles, err := dcflow.SolveFlow(sys, cons, 1)
	if err != nil {
		t.Fatalf("SolveFlow: %v", err)
	}
	return angles
}

// supportOfTaken returns the taken-measurement IDs whose delta is nonzero.
func supportOfTaken(meas *grid.MeasurementConfig, deltas []float64, tol float64) []int {
	var out []int
	for id := 1; id < len(deltas); id++ {
		if meas.Taken[id] && math.Abs(deltas[id]) > tol {
			out = append(out, id)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runStealthCheck verifies a non-topology attack end to end.
func runStealthCheck(t *testing.T, sc *core.Scenario, res *core.Result, noisy bool) {
	t.Helper()
	sys := sc.System()
	angles := baseCase(t, sys)
	z, err := dcflow.MeasureAll(sys, nil, angles)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	const sigma = 0.01
	if noisy {
		sampler := stat.NewNormalSampler(11)
		for id := 1; id < len(z); id++ {
			z[id] += sampler.Sample(0, sigma)
		}
	}
	est, err := se.NewEstimator(sc.Meas, se.Config{RefBus: sc.RefBus, Sigma: sigma})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	det, err := se.NewDetector(est, 0.05)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	before, err := est.Estimate(z)
	if err != nil {
		t.Fatalf("Estimate(before): %v", err)
	}
	if det.BadDataDetected(before) {
		t.Fatalf("clean measurements flagged as bad data")
	}

	deltas, err := core.FloatMeasurementDeltas(sc, res)
	if err != nil {
		t.Fatalf("FloatMeasurementDeltas: %v", err)
	}
	// Invariant: the support of the exact deltas on taken measurements is
	// the model's attack vector.
	support := supportOfTaken(sc.Meas, deltas, 1e-12)
	if !equalInts(support, res.AlteredMeasurements) {
		t.Fatalf("delta support %v != model attack vector %v", support, res.AlteredMeasurements)
	}

	attacked := make([]float64, len(z))
	copy(attacked, z)
	for id := 1; id < len(z); id++ {
		attacked[id] += deltas[id]
	}
	after, err := est.Estimate(attacked)
	if err != nil {
		t.Fatalf("Estimate(after): %v", err)
	}
	if det.BadDataDetected(after) {
		t.Fatalf("attack detected: J=%v > τ=%v", after.J, det.Threshold())
	}
	if math.Abs(after.J-before.J) > 1e-6*(1+before.J) {
		t.Fatalf("residual changed: %v → %v; attack not stealthy", before.J, after.J)
	}
	// The estimate must actually be corrupted by the model's Δθ.
	for bus, change := range res.StateChanges {
		want, _ := change.Float64()
		got := after.Angles[bus] - before.Angles[bus]
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("bus %d estimate shifted by %v, want %v", bus, got, want)
		}
	}
}

func TestObjective2AttackIsStealthy(t *testing.T) {
	sc := core.NewScenario(grid.IEEE14())
	sc.Meas = core.CaseStudyMeasurements(false)
	sc.TargetStates = []int{12}
	sc.OnlyTargets = true
	res, err := core.Verify(sc)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("objective 2 infeasible")
	}
	runStealthCheck(t, sc, res, false)
	runStealthCheck(t, sc, res, true)
}

func TestObjective1AttacksAreStealthy(t *testing.T) {
	for _, distinct := range []bool{true, false} {
		sc := core.NewScenario(grid.IEEE14())
		sc.Meas = core.CaseStudyMeasurements(true)
		sc.Knowledge = core.CaseStudyKnowledge()
		sc.TargetStates = []int{9, 10}
		if distinct {
			sc.MaxAlteredMeasurements = 16
			sc.MaxCompromisedBuses = 7
			sc.DistinctPairs = [][2]int{{9, 10}}
		} else {
			sc.MaxAlteredMeasurements = 15
			sc.MaxCompromisedBuses = 6
		}
		res, err := core.Verify(sc)
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if !res.Feasible {
			t.Fatalf("objective 1 (distinct=%v) infeasible", distinct)
		}
		runStealthCheck(t, sc, res, true)
	}
}

func TestRandomTargetAttacksAreStealthy(t *testing.T) {
	// Across systems and target choices, every feasible vector must pass
	// the end-to-end stealth check.
	for _, name := range []string{"ieee14", "ieee30"} {
		sys, err := grid.Case(name)
		if err != nil {
			t.Fatalf("Case: %v", err)
		}
		for _, target := range []int{2, sys.Buses / 2, sys.Buses} {
			if target == 1 {
				continue
			}
			sc := core.NewScenario(sys)
			sc.TargetStates = []int{target}
			res, err := core.Verify(sc)
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if !res.Feasible {
				t.Fatalf("%s target %d infeasible without constraints", name, target)
			}
			runStealthCheck(t, sc, res, false)
		}
	}
}

// TestTopologyPoisoningStealthy replays the paper's Objective 2 topology
// attack with a base-case-consistent magnitude: the attacker excludes line
// 13 and scales Δθ12 so bus 6's injection (the secured measurement 46)
// stays untouched. The estimator, fed the poisoned topology, must see no
// bad data while its state estimate for bus 12 is corrupted.
func TestTopologyPoisoningStealthy(t *testing.T) {
	sys := grid.IEEE14()
	meas := core.CaseStudyMeasurements(false)
	if err := meas.Secure(46); err != nil {
		t.Fatalf("Secure: %v", err)
	}
	angles := baseCase(t, sys)
	z, err := dcflow.MeasureAll(sys, nil, angles)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}

	// Pre-attack estimator on the true topology: clean.
	const sigma = 0.01
	estTrue, err := se.NewEstimator(meas, se.Config{RefBus: 1, Sigma: sigma})
	if err != nil {
		t.Fatalf("NewEstimator(true): %v", err)
	}
	detTrue, err := se.NewDetector(estTrue, 0.05)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	before, err := estTrue.Estimate(z)
	if err != nil {
		t.Fatalf("Estimate(before): %v", err)
	}
	if detTrue.BadDataDetected(before) {
		t.Fatalf("clean measurements flagged")
	}

	// The attack: poison topology to exclude line 13 and choose
	// Δθ12 = PL0_13 / Y12 so that bus 6's consumption reading stays exact:
	// ΔPB_6 = −Y12·Δθ12·(−1) ... with paper conventions the line-12 flow
	// delta (−Y12·Δθ12, line 12 leaves bus 6) and the vanished line-13
	// flow (−PL0_13 leaving bus 6) must cancel.
	y12 := sys.Line(12).Admittance
	y13 := sys.Line(13).Admittance
	pl013 := y13 * (angles[6] - angles[13])
	dtheta12 := -pl013 / y12

	mapped := dcflow.AllMapped(sys)
	mapped[13] = false
	attackedAngles := make([]float64, len(angles))
	copy(attackedAngles, angles)
	attackedAngles[12] += dtheta12

	// The attacker rewrites every taken measurement to be consistent with
	// the poisoned topology and corrupted state.
	zWant, err := dcflow.MeasureAll(sys, mapped, attackedAngles)
	if err != nil {
		t.Fatalf("MeasureAll(poisoned): %v", err)
	}
	attacked := make([]float64, len(z))
	copy(attacked, z)
	var altered []int
	for id := 1; id < len(z); id++ {
		if !meas.Taken[id] {
			continue
		}
		if math.Abs(zWant[id]-z[id]) > 1e-9 {
			attacked[id] = zWant[id]
			altered = append(altered, id)
		}
	}
	// The altered set matches the paper's topology-poisoning vector; in
	// particular the secured measurement 46 is untouched.
	want := []int{12, 13, 32, 33, 39, 53}
	if !equalInts(altered, want) {
		t.Fatalf("altered = %v, want %v", altered, want)
	}

	// The estimator — believing the poisoned topology — sees no bad data
	// and reports the corrupted state.
	estPoisoned, err := se.NewEstimator(meas, se.Config{RefBus: 1, Sigma: sigma, Mapped: mapped})
	if err != nil {
		t.Fatalf("NewEstimator(poisoned): %v", err)
	}
	detPoisoned, err := se.NewDetector(estPoisoned, 0.05)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	after, err := estPoisoned.Estimate(attacked)
	if err != nil {
		t.Fatalf("Estimate(after): %v", err)
	}
	if detPoisoned.BadDataDetected(after) {
		t.Fatalf("topology-poisoning attack detected: J=%v τ=%v", after.J, detPoisoned.Threshold())
	}
	if math.Abs(after.Angles[12]-before.Angles[12]-dtheta12) > 1e-6 {
		t.Fatalf("bus 12 estimate shifted by %v, want %v",
			after.Angles[12]-before.Angles[12], dtheta12)
	}
}
