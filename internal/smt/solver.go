package smt

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"time"

	"segrid/internal/lra"
	"segrid/internal/proof"
	"segrid/internal/sat"
)

// Status is the outcome of a Check call.
type Status int8

const (
	// Unknown means the solver gave up (e.g. budget exhausted).
	Unknown Status = iota
	// Sat means the assertions are satisfiable; a model is available.
	Sat
	// Unsat means the assertions are unsatisfiable.
	Unsat
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Options configure a Solver.
type Options struct {
	// TheoryCheckAtFixpoint enables the eager DPLL(T) integration: the
	// simplex consistency check runs at every unit-propagation fixpoint.
	// When false it runs only on full Boolean assignments (ablation knob).
	TheoryCheckAtFixpoint bool
	// MaxConflicts bounds the SAT search per Check; ≤ 0 means unlimited.
	// Exhaustion yields a Result with Status Unknown and populated Stats
	// (never an error, never a hang).
	//
	// Deprecated: set Budget.MaxConflicts instead. When both are set,
	// Budget.MaxConflicts wins.
	MaxConflicts int64
	// NaiveCardinality switches the at-most-k constraint encoding from the
	// sequential counter to the quadratic pairwise encoding (only practical
	// for very small k·n; ablation knob).
	NaiveCardinality bool
	// Budget bounds the resources of each Check/CheckContext call; the zero
	// value means unlimited. See Budget for the exhaustion contract.
	Budget Budget
	// Interrupter, if non-nil, is a deterministic fault-injection hook
	// polled at every solver interruption point; a non-nil return aborts
	// the check with Status Unknown. Intended for tests.
	Interrupter Interrupter
	// FreshPerCheck disables incremental solving: every Check lowers the
	// whole assertion stack into a brand-new SAT instance and simplex
	// tableau, discarding learnt clauses and theory state. By default one
	// persistent instance stays alive across Checks, with scopes realized
	// as selector literals passed to the SAT core as assumptions. Ablation
	// and differential-testing knob.
	FreshPerCheck bool
	// Proof, if non-nil, streams a machine-checkable certificate of every
	// Unsat answer: DRAT-style clausal records from the SAT core plus
	// Farkas-certified theory lemmas and the atom/slack definitions needed
	// to check them (see package proof). One writer captures the solver's
	// whole lifetime; each Unsat Check appends an assumption-annotated check
	// record and is reported through Result.Proof. Leave nil (the default)
	// to skip all logging work.
	Proof *proof.Writer
}

// DefaultOptions returns the configuration used throughout the paper
// reproduction.
func DefaultOptions() Options {
	return Options{TheoryCheckAtFixpoint: true}
}

// Stats describes the size of the encoded problem and the work done by one
// Check call. It backs the paper's Table IV (model memory/size) and the
// timing figures.
type Stats struct {
	BoolVars     int
	Clauses      int
	RealVars     int
	Atoms        int
	SlackVars    int
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	TheoryChecks int64
	Pivots       int64
	// FastOps and BigOps count simplex rational operations on the
	// machine-word fast path versus promoted big.Rat arithmetic; their ratio
	// is the hybrid rational's observable promotion rate.
	FastOps int64
	BigOps  int64
	// AllocBytes is the total heap allocated while encoding and solving,
	// the reproduction's analogue of the paper's solver memory usage.
	AllocBytes uint64
	Duration   time.Duration
	// Workers is the effective parallel worker count that produced this
	// result: 0 for plain sequential checks, ≥ 1 when the answer came from
	// CheckPortfolio (1 means a portfolio degenerated to a single instance).
	Workers int
	// Exported/Imported count learnt clauses shared through the portfolio
	// exchange (this instance's side of the traffic).
	Exported int64
	Imported int64
	// Unknown classifies an Unknown result (budget kind, cancellation,
	// deadline, injected interruption); ReasonNone on Sat/Unsat. It is the
	// machine-readable twin of Result.Why, letting retry policies decide
	// whether another attempt can help without inspecting error chains.
	Unknown UnknownReason
}

// cardKind distinguishes cardinality assertion directions.
type cardKind int8

const (
	cardAtMost cardKind = iota + 1
	cardAtLeast
)

type cardConstraint struct {
	fs   []Formula
	k    int
	kind cardKind
}

type scope struct {
	asserts []Formula
	cards   []cardConstraint

	// Incremental-encoding progress: the prefix of asserts/cards already
	// lowered into the persistent encoder, and the scope's selector literal,
	// allocated the first time the scope contributes a guarded clause. The
	// base scope never has a selector (its clauses are unconditional).
	doneAsserts int
	doneCards   int
	sel         sat.Lit
	hasSel      bool
}

// Solver is an SMT solver with push/pop scopes. Checks are incremental: one
// SAT instance and simplex tableau persist across Check calls, keeping the
// atom/slack maps and all learnt clauses alive. Assertions are encoded once,
// when first seen by a Check; a non-base scope's clauses carry a selector
// literal that is assumed while the scope is live and permanently negated by
// Pop. Options.FreshPerCheck restores the old rebuild-per-Check behavior.
// The zero value is not usable; construct with NewSolver.
type Solver struct {
	opts      Options
	boolNames []string
	realNames []string
	scopes    []*scope
	enc       *encoder
	lastStats Stats

	// tuning and exPort diversify the underlying SAT core and connect it to
	// a portfolio clause exchange. They are set only on the per-worker forks
	// CheckPortfolio builds; a directly constructed Solver keeps the zero
	// values (sequential behavior, no sharing).
	tuning sat.Tuning
	exPort *sat.ExchangePort
}

// NewSolver constructs a solver.
func NewSolver(opts Options) *Solver {
	return &Solver{
		opts:   opts,
		scopes: []*scope{{}},
	}
}

// BoolVar creates a fresh Boolean variable. The name is used only for
// diagnostics.
func (s *Solver) BoolVar(name string) BoolVar {
	s.boolNames = append(s.boolNames, name)
	return BoolVar(len(s.boolNames) - 1)
}

// RealVar creates a fresh real variable.
func (s *Solver) RealVar(name string) RealVar {
	s.realNames = append(s.realNames, name)
	return RealVar(len(s.realNames) - 1)
}

// BoolName returns the diagnostic name of v.
func (s *Solver) BoolName(v BoolVar) string { return s.boolNames[v] }

// RealName returns the diagnostic name of v.
func (s *Solver) RealName(v RealVar) string { return s.realNames[v] }

// NumBoolVars returns the number of Boolean variables created.
func (s *Solver) NumBoolVars() int { return len(s.boolNames) }

// Assert adds f to the current scope.
func (s *Solver) Assert(f Formula) {
	top := s.scopes[len(s.scopes)-1]
	top.asserts = append(top.asserts, f)
}

// AssertAtMostK asserts that at most k of the given formulas are true.
func (s *Solver) AssertAtMostK(fs []Formula, k int) {
	top := s.scopes[len(s.scopes)-1]
	top.cards = append(top.cards, cardConstraint{fs: cloneFormulas(fs), k: k, kind: cardAtMost})
}

// AssertAtLeastK asserts that at least k of the given formulas are true.
func (s *Solver) AssertAtLeastK(fs []Formula, k int) {
	top := s.scopes[len(s.scopes)-1]
	top.cards = append(top.cards, cardConstraint{fs: cloneFormulas(fs), k: k, kind: cardAtLeast})
}

func cloneFormulas(fs []Formula) []Formula {
	out := make([]Formula, len(fs))
	copy(out, fs)
	return out
}

// Push opens a new assertion scope.
func (s *Solver) Push() { s.scopes = append(s.scopes, &scope{}) }

// Pop discards the most recent scope. Popping the base scope is an error.
// With a live persistent encoder, Pop retracts the scope's assertion and
// cardinality clauses by unit-asserting the negated selector; Tseitin
// definitions, atom bindings and slack rows introduced while encoding the
// scope stay (they are pure equivalences), as do learnt clauses (any learnt
// derived from a guarded clause carries the scope's negated selector and is
// satisfied the moment the unit lands).
func (s *Solver) Pop() error {
	if len(s.scopes) <= 1 {
		return fmt.Errorf("smt: Pop on base scope")
	}
	top := s.scopes[len(s.scopes)-1]
	if s.enc != nil && top.hasSel {
		s.enc.mustAdd(top.sel.Not())
	}
	s.scopes = s.scopes[:len(s.scopes)-1]
	return nil
}

// resetEncoding drops the persistent SAT+simplex instance; the next Check
// rebuilds it from the assertion stack. FreshPerCheck routes every Check
// through this, which keeps the ablation on the exact same encode path.
func (s *Solver) resetEncoding() {
	s.enc = nil
	for _, sc := range s.scopes {
		sc.doneAsserts, sc.doneCards = 0, 0
		sc.sel, sc.hasSel = sat.LitUndef, false
	}
}

// ResetPhases clears the persistent SAT core's saved phases back to the
// default polarity. Model-enumeration loops (assert blocking clause, Check
// again) call this between Checks: on a persistent instance, phase saving
// otherwise re-proposes a near neighbor of the just-blocked model, which can
// multiply the number of enumeration rounds. No-op before the first Check or
// under FreshPerCheck, where every Check already starts from default phases.
func (s *Solver) ResetPhases() {
	if s.enc != nil {
		s.enc.sat.ResetPhases()
	}
}

// NumScopes returns the current scope depth (≥ 1).
func (s *Solver) NumScopes() int { return len(s.scopes) }

// LastStats returns statistics of the most recent Check.
func (s *Solver) LastStats() Stats { return s.lastStats }

// Result carries the outcome of a Check and, on Sat, the model.
type Result struct {
	Status Status
	Stats  Stats

	// Why explains an Unknown status: a *BudgetError naming the exhausted
	// resource, context.Canceled/DeadlineExceeded for cancellation, or the
	// error an Interrupter fired with. It is nil on Sat and Unsat.
	Why error

	// Proof locates this answer's certificate when the solver was
	// configured with Options.Proof: the proof stream and the 1-based index
	// of the Unsat check record within it. It is nil on Sat/Unknown results
	// and when proof logging is off.
	Proof *proof.Handle

	boolVals []bool
	realVals []*big.Rat
}

// Bool returns v's value in the model. It must only be called on a Sat
// result.
func (r *Result) Bool(v BoolVar) bool {
	if r.Status != Sat {
		panic("smt: model access on non-sat result")
	}
	return r.boolVals[v]
}

// Real returns v's value in the model. It must only be called on a Sat
// result. The returned rational must not be mutated.
func (r *Result) Real(v RealVar) *big.Rat {
	if r.Status != Sat {
		panic("smt: model access on non-sat result")
	}
	return r.realVals[v]
}

// SetBudget replaces the solver's resource budget. Budgets are applied per
// Check: the SAT core baselines its conflict/propagation counters at every
// call and the simplex pivot bound is offset by the pivots already spent, so
// changing the budget between checks is safe even though the underlying
// instance persists; retry-with-escalating-budget policies rely on this.
func (s *Solver) SetBudget(b Budget) { s.opts.Budget = b }

// SetInterrupter replaces the fault-injection hook (nil clears it).
func (s *Solver) SetInterrupter(i Interrupter) { s.opts.Interrupter = i }

// effectiveBudget folds the deprecated MaxConflicts field into Budget.
func (s *Solver) effectiveBudget() Budget {
	b := s.opts.Budget
	if b.MaxConflicts == 0 && s.opts.MaxConflicts > 0 {
		b.MaxConflicts = s.opts.MaxConflicts
	}
	return b
}

// Check solves the current assertion stack. It is CheckContext with a
// background context: uninterruptible from outside, but still subject to
// the configured Budget and Interrupter.
func (s *Solver) Check() (*Result, error) {
	return s.CheckContext(context.Background())
}

// CheckContext solves the current assertion stack under ctx. Cancellation
// is polled inside the CDCL search loop, the simplex pivot loop and the
// encoding pass, so even checks that would otherwise spin unboundedly
// return promptly. An interrupted or budget-exhausted check is not an
// error: it returns a Result with Status Unknown, Stats describing the
// partial work, and Why carrying the cause. A non-nil error is reserved
// for genuinely broken inputs (malformed formulas).
func (s *Solver) CheckContext(ctx context.Context) (*Result, error) {
	start := time.Now()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	budget := s.effectiveBudget()
	ctrl := newController(ctx, budget, s.opts.Interrupter, memBefore.TotalAlloc)
	if s.opts.FreshPerCheck {
		s.resetEncoding()
	}
	if s.enc == nil {
		s.enc = newEncoder(s)
	}
	enc := s.enc
	enc.beginCheck(budget, ctrl)

	finish := func(res *Result) *Result {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		res.Stats.AllocBytes = memAfter.TotalAlloc - memBefore.TotalAlloc
		res.Stats.Duration = time.Since(start)
		if res.Status == Unknown {
			res.Stats.Unknown = ClassifyUnknown(res.Why)
		}
		s.lastStats = res.Stats
		return res
	}
	interrupted := func(why error) *Result {
		return finish(&Result{Status: Unknown, Why: why, Stats: enc.statsSnapshot()})
	}

	// Encode only what previous checks have not: each scope remembers its
	// encoded prefix, and the done counters advance after a successful
	// lowering, so an interrupted encode resumes exactly where it stopped.
	// An encode error (malformed input) still snapshots stats so LastStats
	// reflects this check's partial work, not the previous check's.
	encodePoll := ctrl.stopFunc(PointEncode)
	for i, sc := range s.scopes {
		enc.curSel = sat.LitUndef
		if i > 0 {
			if !sc.hasSel && (sc.doneAsserts < len(sc.asserts) || sc.doneCards < len(sc.cards)) {
				sc.sel = sat.PosLit(enc.sat.NewVar())
				sc.hasSel = true
			}
			if sc.hasSel {
				enc.curSel = sc.sel
			}
		}
		for sc.doneAsserts < len(sc.asserts) {
			if encodePoll != nil {
				if err := encodePoll(); err != nil {
					enc.curSel = sat.LitUndef
					return interrupted(err), nil
				}
			}
			if err := enc.assertTop(sc.asserts[sc.doneAsserts]); err != nil {
				enc.curSel = sat.LitUndef
				finish(&Result{Status: Unknown, Why: err, Stats: enc.statsSnapshot()})
				return nil, err
			}
			sc.doneAsserts++
		}
		for sc.doneCards < len(sc.cards) {
			if encodePoll != nil {
				if err := encodePoll(); err != nil {
					enc.curSel = sat.LitUndef
					return interrupted(err), nil
				}
			}
			if err := enc.assertCard(sc.cards[sc.doneCards]); err != nil {
				enc.curSel = sat.LitUndef
				finish(&Result{Status: Unknown, Why: err, Stats: enc.statsSnapshot()})
				return nil, err
			}
			sc.doneCards++
		}
	}
	enc.curSel = sat.LitUndef

	assumps := make([]sat.Lit, 0, len(s.scopes)-1)
	for _, sc := range s.scopes[1:] {
		if sc.hasSel {
			assumps = append(assumps, sc.sel)
		}
	}
	res, err := enc.solve(assumps)
	if err != nil {
		// Every solve-time error is an interruption: map the solver-level
		// budget sentinels to typed BudgetErrors and surface the rest
		// (context errors, interrupter errors, wall-clock/alloc budget
		// errors) as they are.
		res.Why = classifyInterrupt(err, budget)
		res.Status = Unknown
		return finish(res), nil
	}
	return finish(res), nil
}

// classifyInterrupt converts layer-internal budget sentinels into typed
// *BudgetError values; other causes pass through unchanged.
func classifyInterrupt(err error, b Budget) error {
	switch {
	case errors.Is(err, sat.ErrBudget):
		return &BudgetError{Resource: ResourceConflicts, Limit: b.MaxConflicts}
	case errors.Is(err, sat.ErrPropBudget):
		return &BudgetError{Resource: ResourcePropagations, Limit: b.MaxPropagations}
	case errors.Is(err, lra.ErrPivotBudget):
		return &BudgetError{Resource: ResourcePivots, Limit: b.MaxPivots}
	default:
		return err
	}
}
