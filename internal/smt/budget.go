package smt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"
)

// Budget bounds the resources a single Check/CheckContext call may consume.
// A zero field means "unlimited" for that resource. When any bound is hit
// the check stops and returns a Result with Status Unknown, fully populated
// Stats, and Why set to a *BudgetError naming the exhausted resource — it
// never hangs and never returns a nil Result for a budget stop.
type Budget struct {
	// MaxConflicts bounds the CDCL search's learnt conflicts.
	MaxConflicts int64
	// MaxPropagations bounds Boolean unit propagations.
	MaxPropagations int64
	// MaxPivots bounds simplex pivot steps across all theory checks.
	MaxPivots int64
	// MaxDuration bounds wall-clock time, measured from the start of the
	// check (encoding included).
	MaxDuration time.Duration
	// MaxAllocBytes approximately bounds heap allocation attributable to the
	// check. Enforcement samples runtime.MemStats periodically, so overshoot
	// by a few poll intervals is expected; treat it as a coarse guard rail,
	// not an accounting limit.
	MaxAllocBytes uint64
}

// IsZero reports whether no bound is set.
func (b Budget) IsZero() bool {
	return b == Budget{}
}

// Scale returns a copy of the budget with every finite bound multiplied by
// f (saturating at the maximum representable value). Zero (unlimited)
// bounds stay unlimited. It backs retry-with-escalating-budget policies.
func (b Budget) Scale(f float64) Budget {
	scaleInt := func(v int64) int64 {
		if v <= 0 {
			return v
		}
		nv := float64(v) * f
		if nv >= math.MaxInt64 {
			return math.MaxInt64
		}
		return int64(nv)
	}
	b.MaxConflicts = scaleInt(b.MaxConflicts)
	b.MaxPropagations = scaleInt(b.MaxPropagations)
	b.MaxPivots = scaleInt(b.MaxPivots)
	b.MaxDuration = time.Duration(scaleInt(int64(b.MaxDuration)))
	if b.MaxAllocBytes > 0 {
		nv := float64(b.MaxAllocBytes) * f
		if nv >= math.MaxUint64 {
			b.MaxAllocBytes = math.MaxUint64
		} else {
			b.MaxAllocBytes = uint64(nv)
		}
	}
	return b
}

// Resource names carried by BudgetError.
const (
	ResourceConflicts    = "conflicts"
	ResourcePropagations = "propagations"
	ResourcePivots       = "pivots"
	ResourceWallClock    = "wall-clock"
	ResourceAllocBytes   = "alloc-bytes"
)

// BudgetError explains an Unknown result caused by resource exhaustion.
type BudgetError struct {
	// Resource is one of the Resource* constants.
	Resource string
	// Limit is the configured bound (nanoseconds for wall-clock, bytes for
	// alloc-bytes).
	Limit int64
}

// Error implements error.
func (e *BudgetError) Error() string {
	if e.Resource == ResourceWallClock {
		return fmt.Sprintf("smt: %s budget exhausted (limit %s)", e.Resource, time.Duration(e.Limit))
	}
	return fmt.Sprintf("smt: %s budget exhausted (limit %d)", e.Resource, e.Limit)
}

// Interruption points reported to an Interrupter. They name the solver
// layer whose loop observed the poll.
const (
	// PointEncode fires between top-level assertions while lowering the
	// assertion stack into the SAT+simplex instance.
	PointEncode = "encode"
	// PointCDCL fires inside the CDCL search loop (every conflict and every
	// few thousand propagations).
	PointCDCL = "cdcl"
	// PointSimplex fires inside the simplex pivot loop (every pivot).
	PointSimplex = "simplex"
)

// Interrupter is a deterministic fault-injection hook: it is polled at
// every solver interruption point, and a non-nil return aborts the check
// with Status Unknown (the returned error becomes Result.Why). Tests use it
// to exercise every cancellation path without wall-clock sleeps. Checks are
// single-goroutine, so implementations need no locking.
type Interrupter interface {
	// Interrupt is called with the interruption point (one of the Point*
	// constants). Returning a non-nil error aborts the check.
	Interrupt(point string) error
}

// InterruptFunc adapts a function to the Interrupter interface.
type InterruptFunc func(point string) error

// Interrupt implements Interrupter.
func (f InterruptFunc) Interrupt(point string) error { return f(point) }

// ErrInterrupted is the error a CountdownInterrupter fires with.
var ErrInterrupted = errors.New("smt: interrupted by fault injection")

// CountdownInterrupter fires ErrInterrupted once K matching solver events
// have been observed, then keeps firing on every subsequent poll. The
// countdown seed K makes interruption deterministic and reproducible: the
// solver itself is deterministic, so the same seed always interrupts at the
// same point of the search.
type CountdownInterrupter struct {
	// Point restricts counting to one interruption point (""  counts all).
	Point string

	remaining int64
	fired     bool
}

// NewCountdownInterrupter returns an interrupter that fires after k
// matching events (k ≤ 0 fires on the first poll).
func NewCountdownInterrupter(k int64) *CountdownInterrupter {
	return &CountdownInterrupter{remaining: k}
}

// Interrupt implements Interrupter.
func (c *CountdownInterrupter) Interrupt(point string) error {
	if c.Point != "" && point != c.Point {
		return nil
	}
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	c.fired = true
	return ErrInterrupted
}

// Fired reports whether the interrupter has gone off.
func (c *CountdownInterrupter) Fired() bool { return c.fired }

// allocPollMask throttles runtime.ReadMemStats sampling for the alloc-bytes
// budget: one sample every (mask+1) polls.
const allocPollMask = 1<<13 - 1

// controller evaluates, at each interruption point, every stop condition a
// check is subject to: fault injection, context cancellation, the wall-clock
// deadline and the approximate allocation budget. (Conflict, propagation and
// pivot budgets are enforced by the solver loops that own those counters.)
type controller struct {
	ctx         context.Context
	interrupter Interrupter
	deadline    time.Time
	maxDuration time.Duration
	maxAlloc    uint64
	baseAlloc   uint64
	polls       int64
}

func newController(ctx context.Context, b Budget, intr Interrupter, baseAlloc uint64) *controller {
	c := &controller{
		ctx:         ctx,
		interrupter: intr,
		maxDuration: b.MaxDuration,
		maxAlloc:    b.MaxAllocBytes,
		baseAlloc:   baseAlloc,
	}
	if b.MaxDuration > 0 {
		c.deadline = time.Now().Add(b.MaxDuration)
	}
	return c
}

// needed reports whether the controller has anything to watch; when false
// the solver loops skip installing poll hooks entirely.
func (c *controller) needed() bool {
	return c.interrupter != nil || c.maxAlloc > 0 || !c.deadline.IsZero() ||
		c.ctx.Done() != nil
}

// poll evaluates the stop conditions at the given interruption point.
func (c *controller) poll(point string) error {
	c.polls++
	if c.interrupter != nil {
		if err := c.interrupter.Interrupt(point); err != nil {
			return err
		}
	}
	if err := c.ctx.Err(); err != nil {
		return err
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		return &BudgetError{Resource: ResourceWallClock, Limit: int64(c.maxDuration)}
	}
	if c.maxAlloc > 0 && c.polls&allocPollMask == 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.TotalAlloc-c.baseAlloc > c.maxAlloc {
			return &BudgetError{Resource: ResourceAllocBytes, Limit: int64(c.maxAlloc)}
		}
	}
	return nil
}

// stopFunc returns a poll closure bound to one interruption point, or nil
// when the controller has nothing to watch.
func (c *controller) stopFunc(point string) func() error {
	if !c.needed() {
		return nil
	}
	return func() error { return c.poll(point) }
}
