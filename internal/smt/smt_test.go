package smt

import (
	"math/big"
	"math/rand"
	"testing"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func checkStatus(t *testing.T, s *Solver, want Status) *Result {
	t.Helper()
	res, err := s.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Status != want {
		t.Fatalf("Check status = %v, want %v", res.Status, want)
	}
	return res
}

func TestPureBooleanSat(t *testing.T) {
	s := NewSolver(DefaultOptions())
	a := s.BoolVar("a")
	b := s.BoolVar("b")
	s.Assert(Or(B(a), B(b)))
	s.Assert(Not(B(a)))
	res := checkStatus(t, s, Sat)
	if res.Bool(a) || !res.Bool(b) {
		t.Fatalf("model a=%v b=%v, want a=false b=true", res.Bool(a), res.Bool(b))
	}
}

func TestPureBooleanUnsat(t *testing.T) {
	s := NewSolver(DefaultOptions())
	a := s.BoolVar("a")
	s.Assert(B(a))
	s.Assert(Not(B(a)))
	checkStatus(t, s, Unsat)
}

func TestConstantFolding(t *testing.T) {
	s := NewSolver(DefaultOptions())
	s.Assert(True())
	checkStatus(t, s, Sat)
	s.Assert(False())
	checkStatus(t, s, Unsat)
}

func TestEmptyAtomFolds(t *testing.T) {
	// 0 ≤ 1 is true; 0 > 1 is false.
	if _, ok := LE(NewLinExpr(), rat(1, 1)).(*constF); !ok {
		t.Fatalf("LE on empty expr did not fold")
	}
	s := NewSolver(DefaultOptions())
	s.Assert(GT(NewLinExpr(), rat(1, 1)))
	checkStatus(t, s, Unsat)
}

func TestLinearArithmeticSat(t *testing.T) {
	// x + y ≤ 4, x ≥ 1, y ≥ 2 is satisfiable; check model.
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	y := s.RealVar("y")
	sum := NewLinExpr().TermInt(1, x).TermInt(1, y)
	s.Assert(LE(sum, rat(4, 1)))
	s.Assert(GE(NewLinExpr().TermInt(1, x), rat(1, 1)))
	s.Assert(GE(NewLinExpr().TermInt(1, y), rat(2, 1)))
	res := checkStatus(t, s, Sat)
	xv, yv := res.Real(x), res.Real(y)
	total := new(big.Rat).Add(xv, yv)
	if total.Cmp(rat(4, 1)) > 0 || xv.Cmp(rat(1, 1)) < 0 || yv.Cmp(rat(2, 1)) < 0 {
		t.Fatalf("model x=%v y=%v violates constraints", xv, yv)
	}
}

func TestLinearArithmeticUnsat(t *testing.T) {
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	y := s.RealVar("y")
	sum := NewLinExpr().TermInt(1, x).TermInt(1, y)
	s.Assert(GE(sum, rat(10, 1)))
	s.Assert(LE(NewLinExpr().TermInt(1, x), rat(2, 1)))
	s.Assert(LE(NewLinExpr().TermInt(1, y), rat(3, 1)))
	checkStatus(t, s, Unsat)
}

func TestStrictVsNonStrict(t *testing.T) {
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	ex := NewLinExpr().TermInt(1, x)
	s.Assert(GE(ex, rat(3, 1)))
	s.Assert(LE(ex, rat(3, 1)))
	res := checkStatus(t, s, Sat)
	if res.Real(x).Cmp(rat(3, 1)) != 0 {
		t.Fatalf("x = %v, want 3", res.Real(x))
	}

	s2 := NewSolver(DefaultOptions())
	x2 := s2.RealVar("x")
	ex2 := NewLinExpr().TermInt(1, x2)
	s2.Assert(GE(ex2, rat(3, 1)))
	s2.Assert(LT(ex2, rat(3, 1)))
	checkStatus(t, s2, Unsat)
}

func TestNeqSplits(t *testing.T) {
	// x = y, x ≠ y is unsat; x ≠ 0 alone gives a nonzero model.
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	y := s.RealVar("y")
	diff := NewLinExpr().TermInt(1, x).TermInt(-1, y)
	s.Assert(EqZero(diff))
	s.Assert(NeqZero(diff))
	checkStatus(t, s, Unsat)

	s2 := NewSolver(DefaultOptions())
	x2 := s2.RealVar("x")
	s2.Assert(NeqZero(NewLinExpr().TermInt(1, x2)))
	res := checkStatus(t, s2, Sat)
	if res.Real(x2).Sign() == 0 {
		t.Fatalf("x = 0 violates x ≠ 0")
	}
}

func TestBoolArithmeticCoupling(t *testing.T) {
	// p ↔ (x ≥ 5); ¬p; x ≥ 5 would be contradictory, x must be < 5.
	s := NewSolver(DefaultOptions())
	p := s.BoolVar("p")
	x := s.RealVar("x")
	ex := NewLinExpr().TermInt(1, x)
	s.Assert(Iff(B(p), GE(ex, rat(5, 1))))
	s.Assert(Not(B(p)))
	res := checkStatus(t, s, Sat)
	if res.Real(x).Cmp(rat(5, 1)) >= 0 {
		t.Fatalf("x = %v, want < 5", res.Real(x))
	}
}

func TestImplicationChainToTheory(t *testing.T) {
	// a → (x ≥ 1), b → (x ≤ 0), a ∧ b is unsat; dropping b is sat.
	s := NewSolver(DefaultOptions())
	a := s.BoolVar("a")
	b := s.BoolVar("b")
	x := s.RealVar("x")
	ex := NewLinExpr().TermInt(1, x)
	s.Assert(Implies(B(a), GE(ex, rat(1, 1))))
	s.Assert(Implies(B(b), LE(ex, rat(0, 1))))
	s.Assert(B(a))
	s.Push()
	s.Assert(B(b))
	checkStatus(t, s, Unsat)
	if err := s.Pop(); err != nil {
		t.Fatalf("Pop: %v", err)
	}
	res := checkStatus(t, s, Sat)
	if !res.Bool(a) {
		t.Fatalf("a must be true")
	}
	if res.Real(x).Cmp(rat(1, 1)) < 0 {
		t.Fatalf("x = %v, want ≥ 1", res.Real(x))
	}
}

func TestPopBaseScopeFails(t *testing.T) {
	s := NewSolver(DefaultOptions())
	if err := s.Pop(); err == nil {
		t.Fatalf("Pop on base scope succeeded, want error")
	}
}

func TestSharedSlackAcrossAtoms(t *testing.T) {
	// Atoms over 2x+2y and x+y must share one hyperplane slack.
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	y := s.RealVar("y")
	e1 := NewLinExpr().TermInt(2, x).TermInt(2, y)
	e2 := NewLinExpr().TermInt(1, x).TermInt(1, y)
	s.Assert(GE(e1, rat(10, 1))) // x + y ≥ 5
	s.Assert(LE(e2, rat(4, 1)))  // x + y ≤ 4
	checkStatus(t, s, Unsat)
	if st := s.LastStats(); st.SlackVars != 1 {
		t.Fatalf("SlackVars = %d, want 1 (canonicalization should share)", st.SlackVars)
	}
}

func TestAtMostK(t *testing.T) {
	for _, naive := range []bool{false, true} {
		opts := DefaultOptions()
		opts.NaiveCardinality = naive
		for n := 1; n <= 5; n++ {
			for k := 0; k <= n; k++ {
				for forced := 0; forced <= n; forced++ {
					s := NewSolver(opts)
					vars := make([]BoolVar, n)
					fs := make([]Formula, n)
					for i := range vars {
						vars[i] = s.BoolVar("v")
						fs[i] = B(vars[i])
					}
					for i := 0; i < forced; i++ {
						s.Assert(B(vars[i]))
					}
					s.AssertAtMostK(fs, k)
					want := Sat
					if forced > k {
						want = Unsat
					}
					res, err := s.Check()
					if err != nil {
						t.Fatalf("Check: %v", err)
					}
					if res.Status != want {
						t.Fatalf("naive=%v n=%d k=%d forced=%d: status %v, want %v",
							naive, n, k, forced, res.Status, want)
					}
					if res.Status == Sat {
						count := 0
						for _, v := range vars {
							if res.Bool(v) {
								count++
							}
						}
						if count > k {
							t.Fatalf("model sets %d > k=%d vars", count, k)
						}
					}
				}
			}
		}
	}
}

func TestAtLeastK(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for k := 0; k <= n+1; k++ {
			s := NewSolver(DefaultOptions())
			vars := make([]BoolVar, n)
			fs := make([]Formula, n)
			for i := range vars {
				vars[i] = s.BoolVar("v")
				fs[i] = B(vars[i])
			}
			s.AssertAtLeastK(fs, k)
			want := Sat
			if k > n {
				want = Unsat
			}
			res, err := s.Check()
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if res.Status != want {
				t.Fatalf("n=%d k=%d: status %v, want %v", n, k, res.Status, want)
			}
			if res.Status == Sat {
				count := 0
				for _, v := range vars {
					if res.Bool(v) {
						count++
					}
				}
				if count < k {
					t.Fatalf("model sets %d < k=%d vars", count, k)
				}
			}
		}
	}
}

func TestAtMostKOverAtoms(t *testing.T) {
	// At most 1 of {x≥1, y≥1, z≥1}, with x+y+z ≥ 2 and all ≤ 1 → unsat:
	// two variables would need to reach ≥ 1.
	s := NewSolver(DefaultOptions())
	vs := []RealVar{s.RealVar("x"), s.RealVar("y"), s.RealVar("z")}
	atoms := make([]Formula, 3)
	sum := NewLinExpr()
	for i, v := range vs {
		ev := NewLinExpr().TermInt(1, v)
		atoms[i] = GE(ev, rat(1, 1))
		s.Assert(LE(ev, rat(1, 1)))
		s.Assert(GE(ev, rat(0, 1)))
		sum.TermInt(1, v)
	}
	s.AssertAtMostK(atoms, 1)
	s.Push()
	s.Assert(GE(sum, rat(2, 1)))
	// x+y+z ≥ 2 with each in [0,1]: at least two must be ≥ 1... not quite —
	// e.g. 1 + 0.5 + 0.5 works with only one atom true. So this is SAT.
	res := checkStatus(t, s, Sat)
	total := new(big.Rat)
	for _, v := range vs {
		total.Add(total, res.Real(v))
	}
	if total.Cmp(rat(2, 1)) < 0 {
		t.Fatalf("sum %v < 2", total)
	}
	if err := s.Pop(); err != nil {
		t.Fatalf("Pop: %v", err)
	}
	// Now force sum ≥ 5/2: with each ≤ 1, at least two vars must be ≥ 3/4,
	// and with at most one atom (≥1) true, max total = 1 + 1⁻ + 1⁻ < 3 — still
	// satisfiable (e.g. 1, 0.9, 0.9 has only one atom true). Force exactly:
	// each var ∈ {0} ∪ [1,1] by adding (v ≤ 0 ∨ v ≥ 1): then sum ≥ 2 needs
	// two atoms true → unsat.
	for _, v := range vs {
		ev := NewLinExpr().TermInt(1, v)
		s.Assert(Or(LE(ev, rat(0, 1)), GE(ev, rat(1, 1))))
	}
	s.Assert(GE(sum, rat(2, 1)))
	checkStatus(t, s, Unsat)
}

func TestModelTotality(t *testing.T) {
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	y := s.RealVar("unconstrained")
	s.Assert(GE(NewLinExpr().TermInt(1, x), rat(2, 1)))
	res := checkStatus(t, s, Sat)
	if res.Real(y) == nil {
		t.Fatalf("unconstrained variable missing from model")
	}
}

func TestStatsPopulated(t *testing.T) {
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	s.Assert(GE(NewLinExpr().TermInt(1, x), rat(1, 1)))
	res := checkStatus(t, s, Sat)
	if res.Stats.RealVars != 1 || res.Stats.BoolVars == 0 || res.Stats.Duration <= 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
}

func TestUnknownBoolVarRejected(t *testing.T) {
	s := NewSolver(DefaultOptions())
	s.Assert(B(BoolVar(99)))
	if _, err := s.Check(); err == nil {
		t.Fatalf("Check with unknown bool var succeeded, want error")
	}
}

func TestUnknownRealVarRejected(t *testing.T) {
	s := NewSolver(DefaultOptions())
	s.Assert(GE(NewLinExpr().TermInt(1, RealVar(42)), rat(0, 1)))
	if _, err := s.Check(); err == nil {
		t.Fatalf("Check with unknown real var succeeded, want error")
	}
}

// --- randomized equisatisfiability fuzz -------------------------------

// randFormula builds a random formula over nb bool vars and atoms over nr
// real vars with small integer coefficients.
func randFormula(rng *rand.Rand, s *Solver, bools []BoolVar, reals []RealVar, depth int) Formula {
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			f := B(bools[rng.Intn(len(bools))])
			if rng.Intn(2) == 0 {
				f = Not(f)
			}
			return f
		}
		e := NewLinExpr()
		for _, v := range reals {
			c := int64(rng.Intn(5)) - 2
			if c != 0 {
				e.TermInt(c, v)
			}
		}
		rhs := rat(int64(rng.Intn(9))-4, 1)
		switch rng.Intn(4) {
		case 0:
			return LE(e, rhs)
		case 1:
			return GE(e, rhs)
		case 2:
			return LT(e, rhs)
		default:
			return GT(e, rhs)
		}
	}
	n := 2 + rng.Intn(2)
	fs := make([]Formula, n)
	for i := range fs {
		fs[i] = randFormula(rng, s, bools, reals, depth-1)
	}
	switch rng.Intn(3) {
	case 0:
		return And(fs...)
	case 1:
		return Or(fs...)
	default:
		return Not(Or(fs...))
	}
}

// evalFormula evaluates a formula under a full assignment.
func evalFormula(f Formula, bv map[BoolVar]bool, rv map[RealVar]*big.Rat) bool {
	switch g := f.(type) {
	case *constF:
		return g.val
	case *boolF:
		return bv[g.v]
	case *notF:
		return !evalFormula(g.f, bv, rv)
	case *andF:
		for _, c := range g.fs {
			if !evalFormula(c, bv, rv) {
				return false
			}
		}
		return true
	case *orF:
		for _, c := range g.fs {
			if evalFormula(c, bv, rv) {
				return true
			}
		}
		return false
	case *atomF:
		val := g.expr.Eval(rv)
		cmp := val.Cmp(g.rhs)
		switch g.op {
		case opLE:
			return cmp <= 0
		case opLT:
			return cmp < 0
		case opGE:
			return cmp >= 0
		default:
			return cmp > 0
		}
	}
	return false
}

// TestRandomMixedFormulasModelsValid checks that on SAT answers the model
// satisfies every asserted formula exactly.
func TestRandomMixedFormulasModelsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	satCount := 0
	for trial := 0; trial < 150; trial++ {
		s := NewSolver(DefaultOptions())
		bools := []BoolVar{s.BoolVar("a"), s.BoolVar("b"), s.BoolVar("c")}
		reals := []RealVar{s.RealVar("x"), s.RealVar("y")}
		var asserted []Formula
		for i := 0; i < 2+rng.Intn(4); i++ {
			f := randFormula(rng, s, bools, reals, 3)
			asserted = append(asserted, f)
			s.Assert(f)
		}
		res, err := s.Check()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Status != Sat {
			continue
		}
		satCount++
		bv := map[BoolVar]bool{}
		for _, b := range bools {
			bv[b] = res.Bool(b)
		}
		rv := map[RealVar]*big.Rat{}
		for _, r := range reals {
			rv[r] = res.Real(r)
		}
		for i, f := range asserted {
			if !evalFormula(f, bv, rv) {
				t.Fatalf("trial %d: model violates assertion %d: %v", trial, i, f)
			}
		}
	}
	if satCount == 0 {
		t.Fatalf("no satisfiable instances generated; fuzz ineffective")
	}
}

// TestRandomBooleanEquisat compares SMT answers on pure Boolean formulas
// against brute-force enumeration.
func TestRandomBooleanEquisat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := NewSolver(DefaultOptions())
		nb := 3 + rng.Intn(3)
		bools := make([]BoolVar, nb)
		for i := range bools {
			bools[i] = s.BoolVar("b")
		}
		var asserted []Formula
		for i := 0; i < 1+rng.Intn(4); i++ {
			f := randFormula(rng, s, bools, nil, 3)
			asserted = append(asserted, f)
			s.Assert(f)
		}
		res, err := s.Check()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force.
		want := false
		for mask := 0; mask < 1<<nb; mask++ {
			bv := map[BoolVar]bool{}
			for i, b := range bools {
				bv[b] = mask>>uint(i)&1 == 1
			}
			all := true
			for _, f := range asserted {
				if !evalFormula(f, bv, nil) {
					all = false
					break
				}
			}
			if all {
				want = true
				break
			}
		}
		if (res.Status == Sat) != want {
			t.Fatalf("trial %d: got %v, brute force sat=%v", trial, res.Status, want)
		}
	}
}
