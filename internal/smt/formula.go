package smt

import (
	"fmt"
	"math/big"
	"strings"
)

// Formula is a Boolean combination of Boolean variables and linear
// arithmetic atoms. Formulas are immutable; build them with the package
// constructors and assert them on a Solver.
type Formula interface {
	isFormula()
	String() string
}

type constF struct{ val bool }

type boolF struct{ v BoolVar }

type notF struct{ f Formula }

type andF struct{ fs []Formula }

type orF struct{ fs []Formula }

// atomOp is the comparison operator of an arithmetic atom.
type atomOp int8

const (
	opLE atomOp = iota + 1 // ≤
	opLT                   // <
	opGE                   // ≥
	opGT                   // >
)

func (op atomOp) String() string {
	switch op {
	case opLE:
		return "<="
	case opLT:
		return "<"
	case opGE:
		return ">="
	default:
		return ">"
	}
}

type atomF struct {
	expr *LinExpr
	op   atomOp
	rhs  *big.Rat
}

func (*constF) isFormula() {}
func (*boolF) isFormula()  {}
func (*notF) isFormula()   {}
func (*andF) isFormula()   {}
func (*orF) isFormula()    {}
func (*atomF) isFormula()  {}

func (f *constF) String() string {
	if f.val {
		return "true"
	}
	return "false"
}
func (f *boolF) String() string { return fmt.Sprintf("b%d", f.v) }
func (f *notF) String() string  { return "¬(" + f.f.String() + ")" }
func (f *andF) String() string  { return joinFormulas(f.fs, " ∧ ") }
func (f *orF) String() string   { return joinFormulas(f.fs, " ∨ ") }
func (f *atomF) String() string {
	return fmt.Sprintf("(%s %s %s)", f.expr, f.op, f.rhs.RatString())
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// True is the constant true formula.
func True() Formula { return &constF{val: true} }

// False is the constant false formula.
func False() Formula { return &constF{val: false} }

// B lifts a Boolean variable to a formula.
func B(v BoolVar) Formula { return &boolF{v: v} }

// Not negates a formula.
func Not(f Formula) Formula {
	if n, ok := f.(*notF); ok {
		return n.f
	}
	return &notF{f: f}
}

// And is n-ary conjunction. And() is true.
func And(fs ...Formula) Formula {
	flat := make([]Formula, 0, len(fs))
	for _, f := range fs {
		switch g := f.(type) {
		case *constF:
			if !g.val {
				return False()
			}
		case *andF:
			flat = append(flat, g.fs...)
		default:
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return True()
	case 1:
		return flat[0]
	}
	return &andF{fs: flat}
}

// Or is n-ary disjunction. Or() is false.
func Or(fs ...Formula) Formula {
	flat := make([]Formula, 0, len(fs))
	for _, f := range fs {
		switch g := f.(type) {
		case *constF:
			if g.val {
				return True()
			}
		case *orF:
			flat = append(flat, g.fs...)
		default:
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return False()
	case 1:
		return flat[0]
	}
	return &orF{fs: flat}
}

// Implies builds a → b.
func Implies(a, b Formula) Formula { return Or(Not(a), b) }

// Iff builds a ↔ b.
func Iff(a, b Formula) Formula {
	return And(Implies(a, b), Implies(b, a))
}

// LE builds the atom expr ≤ rhs.
func LE(expr *LinExpr, rhs *big.Rat) Formula { return newAtom(expr, opLE, rhs) }

// LT builds the atom expr < rhs.
func LT(expr *LinExpr, rhs *big.Rat) Formula { return newAtom(expr, opLT, rhs) }

// GE builds the atom expr ≥ rhs.
func GE(expr *LinExpr, rhs *big.Rat) Formula { return newAtom(expr, opGE, rhs) }

// GT builds the atom expr > rhs.
func GT(expr *LinExpr, rhs *big.Rat) Formula { return newAtom(expr, opGT, rhs) }

// Eq builds expr = rhs as the conjunction of two non-strict atoms.
func Eq(expr *LinExpr, rhs *big.Rat) Formula {
	return And(LE(expr, rhs), GE(expr, rhs))
}

// Neq builds expr ≠ rhs as the disjunction of two strict atoms; the theory
// solver stays convex and the case split lives in the Boolean structure.
func Neq(expr *LinExpr, rhs *big.Rat) Formula {
	return Or(LT(expr, rhs), GT(expr, rhs))
}

// EqZero and NeqZero are shorthands for comparisons against 0.
func EqZero(expr *LinExpr) Formula { return Eq(expr, new(big.Rat)) }

// NeqZero builds expr ≠ 0.
func NeqZero(expr *LinExpr) Formula { return Neq(expr, new(big.Rat)) }

// newAtom folds constant expressions immediately.
func newAtom(expr *LinExpr, op atomOp, rhs *big.Rat) Formula {
	if expr.IsEmpty() {
		cmp := new(big.Rat).Cmp(rhs) // 0 vs rhs
		var val bool
		switch op {
		case opLE:
			val = cmp <= 0
		case opLT:
			val = cmp < 0
		case opGE:
			val = cmp >= 0
		default:
			val = cmp > 0
		}
		return &constF{val: val}
	}
	return &atomF{expr: expr.Clone(), op: op, rhs: new(big.Rat).Set(rhs)}
}
