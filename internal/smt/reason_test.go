package smt

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestBudgetUnknownReasonClassification drives every Unknown cause through a
// real check and asserts Stats.Unknown carries the matching machine-readable
// reason with the right retryability.
func TestBudgetUnknownReasonClassification(t *testing.T) {
	t.Run("conflicts", func(t *testing.T) {
		s := NewSolver(DefaultOptions())
		assertPigeonhole(s, 8)
		s.SetBudget(Budget{MaxConflicts: 3})
		res, err := s.Check()
		if err != nil {
			t.Fatal(err)
		}
		wantReason(t, res, ReasonConflictBudget, true)
	})
	t.Run("pivots", func(t *testing.T) {
		s := NewSolver(DefaultOptions())
		assertChain(s, 40)
		s.SetBudget(Budget{MaxPivots: 2})
		res, err := s.Check()
		if err != nil {
			t.Fatal(err)
		}
		wantReason(t, res, ReasonPivotBudget, true)
	})
	t.Run("wall-clock", func(t *testing.T) {
		s := NewSolver(DefaultOptions())
		assertPigeonhole(s, 8)
		s.SetBudget(Budget{MaxDuration: time.Nanosecond})
		res, err := s.Check()
		if err != nil {
			t.Fatal(err)
		}
		wantReason(t, res, ReasonWallClockBudget, true)
	})
	t.Run("cancelled", func(t *testing.T) {
		s := NewSolver(DefaultOptions())
		assertPigeonhole(s, 8)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := s.CheckContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		wantReason(t, res, ReasonCancelled, false)
	})
	t.Run("deadline", func(t *testing.T) {
		s := NewSolver(DefaultOptions())
		assertPigeonhole(s, 8)
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		res, err := s.CheckContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		wantReason(t, res, ReasonDeadline, false)
	})
	t.Run("interrupted", func(t *testing.T) {
		s := NewSolver(DefaultOptions())
		assertPigeonhole(s, 7)
		s.SetInterrupter(NewCountdownInterrupter(5))
		res, err := s.Check()
		if err != nil {
			t.Fatal(err)
		}
		wantReason(t, res, ReasonInterrupted, true)
	})
}

func wantReason(t *testing.T, res *Result, want UnknownReason, retryable bool) {
	t.Helper()
	if res.Status != Unknown {
		t.Fatalf("Status = %v, want Unknown", res.Status)
	}
	if res.Stats.Unknown != want {
		t.Fatalf("Stats.Unknown = %v (why %v), want %v", res.Stats.Unknown, res.Why, want)
	}
	if res.Stats.Unknown.Retryable() != retryable {
		t.Fatalf("Retryable() = %v, want %v for %v", !retryable, retryable, want)
	}
}

// TestBudgetUnknownReasonClearsOnVerdict checks the reason resets on a
// decided result: a solver that first exhausts a budget and then decides
// must not leak the stale reason through Stats.
func TestBudgetUnknownReasonClearsOnVerdict(t *testing.T) {
	s := NewSolver(DefaultOptions())
	assertPigeonhole(s, 5)
	s.SetBudget(Budget{MaxConflicts: 1})
	res, err := s.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Unknown != ReasonConflictBudget {
		t.Fatalf("Stats.Unknown = %v, want conflict budget", res.Stats.Unknown)
	}
	s.SetBudget(Budget{})
	res, err = s.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unsat {
		t.Fatalf("Status = %v, want Unsat", res.Status)
	}
	if res.Stats.Unknown != ReasonNone {
		t.Fatalf("Stats.Unknown = %v after verdict, want ReasonNone", res.Stats.Unknown)
	}
	if res.Stats.Unknown.String() != "" {
		t.Fatalf("ReasonNone token = %q, want empty", res.Stats.Unknown.String())
	}
}

// TestClassifyUnknownTokens pins the classification and token table: service
// API responses expose these strings, so they are part of the contract.
func TestClassifyUnknownTokens(t *testing.T) {
	cases := []struct {
		err   error
		want  UnknownReason
		token string
	}{
		{nil, ReasonNone, ""},
		{&BudgetError{Resource: ResourceConflicts}, ReasonConflictBudget, "budget-conflicts"},
		{&BudgetError{Resource: ResourcePropagations}, ReasonPropagationBudget, "budget-propagations"},
		{&BudgetError{Resource: ResourcePivots}, ReasonPivotBudget, "budget-pivots"},
		{&BudgetError{Resource: ResourceWallClock}, ReasonWallClockBudget, "budget-wall-clock"},
		{&BudgetError{Resource: ResourceAllocBytes}, ReasonAllocBudget, "budget-alloc-bytes"},
		{context.Canceled, ReasonCancelled, "cancelled"},
		{context.DeadlineExceeded, ReasonDeadline, "deadline"},
		{ErrInterrupted, ReasonInterrupted, "interrupted"},
		{errors.New("weird"), ReasonOther, "other"},
		{fmt.Errorf("wrapped: %w", context.Canceled), ReasonCancelled, "cancelled"},
	}
	for _, tc := range cases {
		got := ClassifyUnknown(tc.err)
		if got != tc.want {
			t.Errorf("ClassifyUnknown(%v) = %v, want %v", tc.err, got, tc.want)
		}
		if got.String() != tc.token {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.token)
		}
	}
	if ReasonCancelled.Budget() || !ReasonAllocBudget.Budget() {
		t.Errorf("Budget() misclassifies reasons")
	}
}
