package smt

import (
	"errors"
	"math/big"
	"strings"
	"testing"
)

func TestLinExprOperations(t *testing.T) {
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	y := s.RealVar("y")

	e := NewLinExpr().TermInt(2, x).TermInt(3, y)
	if got := e.Coeff(x); got.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("Coeff(x) = %v", got)
	}
	e.TermInt(-2, x) // cancels x
	if !e.Coeff(x).IsInt() || e.Coeff(x).Sign() != 0 {
		t.Fatalf("cancelled coefficient nonzero")
	}
	if vars := e.Vars(); len(vars) != 1 || vars[0] != y {
		t.Fatalf("Vars = %v, want [y]", vars)
	}

	f := NewLinExpr().TermInt(1, x)
	f.AddExpr(rat(2, 1), e) // f = x + 6y
	if f.Coeff(y).Cmp(rat(6, 1)) != 0 {
		t.Fatalf("AddExpr wrong: %v", f)
	}

	clone := f.Clone()
	clone.TermInt(5, x)
	if f.Coeff(x).Cmp(rat(1, 1)) != 0 {
		t.Fatalf("Clone shares storage")
	}

	val := f.Eval(map[RealVar]*big.Rat{x: rat(1, 1), y: rat(1, 2)})
	if val.Cmp(rat(4, 1)) != 0 {
		t.Fatalf("Eval = %v, want 4", val)
	}

	if NewLinExpr().String() != "0" {
		t.Fatalf("empty expression String wrong")
	}
	if s := f.String(); !strings.Contains(s, "x0") || !strings.Contains(s, "6") {
		t.Fatalf("String = %q", s)
	}
	neg := NewLinExpr().TermInt(1, x).TermInt(-6, y)
	if s := neg.String(); !strings.Contains(s, " - ") {
		t.Fatalf("negative term rendering: %q", s)
	}
}

func TestNormalizeSharesOppositeScalings(t *testing.T) {
	// −x − y ≤ −4 is the same hyperplane as x + y ≥ 4; atoms must share a
	// slack and the solver must see the equivalence.
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	y := s.RealVar("y")
	negSum := NewLinExpr().TermInt(-1, x).TermInt(-1, y)
	posSum := NewLinExpr().TermInt(1, x).TermInt(1, y)
	s.Assert(LE(negSum, rat(-4, 1)))
	s.Assert(LT(posSum, rat(4, 1)))
	res := checkStatus(t, s, Unsat)
	if res.Stats.SlackVars != 1 {
		t.Fatalf("SlackVars = %d, want 1", res.Stats.SlackVars)
	}
}

func TestFormulaStrings(t *testing.T) {
	s := NewSolver(DefaultOptions())
	a := s.BoolVar("a")
	x := s.RealVar("x")
	f := And(B(a), Or(Not(B(a)), GE(NewLinExpr().TermInt(1, x), rat(2, 1))))
	str := f.String()
	for _, want := range []string{"b0", "∧", "∨", "¬", ">="} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
	if True().String() != "true" || False().String() != "false" {
		t.Fatalf("constant strings wrong")
	}
	if LT(NewLinExpr().TermInt(1, x), rat(0, 1)).String() == "" {
		t.Fatalf("atom string empty")
	}
}

func TestDoubleNegationCollapses(t *testing.T) {
	s := NewSolver(DefaultOptions())
	a := s.BoolVar("a")
	f := Not(Not(B(a)))
	if _, ok := f.(*boolF); !ok {
		t.Fatalf("double negation not collapsed: %T", f)
	}
	s.Assert(f)
	res := checkStatus(t, s, Sat)
	if !res.Bool(a) {
		t.Fatalf("a = false")
	}
}

func TestDeepScopes(t *testing.T) {
	s := NewSolver(DefaultOptions())
	vars := make([]BoolVar, 10)
	for i := range vars {
		vars[i] = s.BoolVar("v")
	}
	// Push ten scopes, each forcing one more variable true.
	for i, v := range vars {
		s.Push()
		s.Assert(B(v))
		if s.NumScopes() != i+2 {
			t.Fatalf("NumScopes = %d", s.NumScopes())
		}
	}
	res := checkStatus(t, s, Sat)
	for _, v := range vars {
		if !res.Bool(v) {
			t.Fatalf("scoped assertion lost")
		}
	}
	// Pop half; only the outer assertions must remain forced.
	for i := 0; i < 5; i++ {
		if err := s.Pop(); err != nil {
			t.Fatalf("Pop: %v", err)
		}
	}
	s.Assert(Not(B(vars[9]))) // now consistent
	checkStatus(t, s, Sat)
}

func TestXorViaIff(t *testing.T) {
	s := NewSolver(DefaultOptions())
	a := s.BoolVar("a")
	b := s.BoolVar("b")
	s.Assert(Not(Iff(B(a), B(b)))) // a xor b
	res := checkStatus(t, s, Sat)
	if res.Bool(a) == res.Bool(b) {
		t.Fatalf("xor violated: a=%v b=%v", res.Bool(a), res.Bool(b))
	}
}

func TestNamesAndCounts(t *testing.T) {
	s := NewSolver(DefaultOptions())
	a := s.BoolVar("alpha")
	x := s.RealVar("xray")
	if s.BoolName(a) != "alpha" || s.RealName(x) != "xray" {
		t.Fatalf("names wrong")
	}
	if s.NumBoolVars() != 1 {
		t.Fatalf("NumBoolVars = %d", s.NumBoolVars())
	}
}

func TestAtLeastOverConstantFormulas(t *testing.T) {
	s := NewSolver(DefaultOptions())
	s.AssertAtLeastK([]Formula{True(), False(), False()}, 2)
	checkStatus(t, s, Unsat)

	s2 := NewSolver(DefaultOptions())
	s2.AssertAtLeastK([]Formula{True(), False(), True()}, 2)
	checkStatus(t, s2, Sat)
}

func TestAtMostZeroAndNegative(t *testing.T) {
	s := NewSolver(DefaultOptions())
	a := s.BoolVar("a")
	s.AssertAtMostK([]Formula{B(a)}, 0)
	res := checkStatus(t, s, Sat)
	if res.Bool(a) {
		t.Fatalf("at-most-0 violated")
	}
	s2 := NewSolver(DefaultOptions())
	b := s2.BoolVar("b")
	s2.AssertAtMostK([]Formula{B(b)}, -1)
	checkStatus(t, s2, Unsat)
}

func TestMaxConflictsBudget(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxConflicts = 1
	s := NewSolver(opts)
	// Pigeonhole 4→3: needs more than one conflict.
	const holes = 3
	vars := make([][]BoolVar, holes+1)
	for p := range vars {
		vars[p] = make([]BoolVar, holes)
		for h := range vars[p] {
			vars[p][h] = s.BoolVar("v")
		}
	}
	for p := 0; p <= holes; p++ {
		fs := make([]Formula, holes)
		for h := 0; h < holes; h++ {
			fs[h] = B(vars[p][h])
		}
		s.Assert(Or(fs...))
	}
	for h := 0; h < holes; h++ {
		fs := make([]Formula, holes+1)
		for p := 0; p <= holes; p++ {
			fs[p] = B(vars[p][h])
		}
		s.AssertAtMostK(fs, 1)
	}
	res, err := s.Check()
	if err != nil {
		t.Fatalf("budget exhaustion must not be an error, got %v", err)
	}
	if res.Status != Unknown {
		t.Fatalf("budget not enforced; status %v", res.Status)
	}
	var be *BudgetError
	if !errors.As(res.Why, &be) || be.Resource != ResourceConflicts {
		t.Fatalf("Why = %v, want conflicts BudgetError", res.Why)
	}
	if res.Stats.Conflicts < 1 || res.Stats.Clauses == 0 {
		t.Fatalf("partial stats not populated: %+v", res.Stats)
	}
}

func TestRationalCoefficients(t *testing.T) {
	// (1/3)x + (1/6)y = 1 with x = y forces x = 2.
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	y := s.RealVar("y")
	e := NewLinExpr().Term(rat(1, 3), x).Term(rat(1, 6), y)
	s.Assert(Eq(e, rat(1, 1)))
	s.Assert(EqZero(NewLinExpr().TermInt(1, x).TermInt(-1, y)))
	res := checkStatus(t, s, Sat)
	if res.Real(x).Cmp(rat(2, 1)) != 0 {
		t.Fatalf("x = %v, want 2", res.Real(x))
	}
}

func TestLargeCoefficientsExact(t *testing.T) {
	// Exact arithmetic: no drift with large magnitudes. 10^12·x ≥ 1 and
	// x ≤ 10^-12 − tiny is unsat only with exact rationals.
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	big1 := new(big.Rat).SetInt64(1_000_000_000_000)
	e := NewLinExpr().Term(big1, x)
	s.Assert(GE(e, rat(1, 1)))
	tiny := new(big.Rat).SetFrac64(1, 1_000_000_000_000)
	tiny.Sub(tiny, new(big.Rat).SetFrac64(1, 1_000_000_000_000_000))
	s.Assert(LE(NewLinExpr().TermInt(1, x), tiny))
	checkStatus(t, s, Unsat)
}
