package smt

import (
	"fmt"
	"math/big"

	"segrid/internal/cnf"
	"segrid/internal/lra"
	"segrid/internal/numeric"
	"segrid/internal/proof"
	"segrid/internal/sat"
)

// atomKey identifies a canonical upper-bound atom: slack ≤ rhs + k·δ. The
// rhs is keyed numerically when it fits machine words (the overwhelmingly
// common case) so the hot encode path does not allocate a string per atom;
// bigRHS carries the RatString fallback for out-of-range rationals.
type atomKey struct {
	slack    int
	num, den int64
	bigRHS   string
	k        int8
}

func makeAtomKey(slack int, rhs *big.Rat, k int8) atomKey {
	ak := atomKey{slack: slack, k: k}
	if num, den := rhs.Num(), rhs.Denom(); num.IsInt64() && den.IsInt64() {
		ak.num, ak.den = num.Int64(), den.Int64()
	} else {
		ak.bigRHS = rhs.RatString()
	}
	return ak
}

// boundSpec is the theory meaning of an atom's SAT variable. The positive
// literal asserts slack ≤ pos; the negative literal asserts slack ≥ neg.
type boundSpec struct {
	slack int
	pos   numeric.Delta // upper bound when the literal is true
	neg   numeric.Delta // lower bound when the literal is false
}

// theoryAdapter bridges the simplex solver into the SAT core's Theory hook.
type theoryAdapter struct {
	simplex *lra.Simplex
	bounds  map[sat.Var]boundSpec
	// proof, when logging is on, receives the Farkas coefficients of each
	// simplex conflict just before the SAT core logs the lemma clause built
	// from it — the two calls are paired by that ordering.
	proof *proof.Writer
}

var _ sat.Theory = (*theoryAdapter)(nil)

func (t *theoryAdapter) Assert(l sat.Lit) []sat.Lit {
	spec, ok := t.bounds[l.Var()]
	if !ok {
		return nil
	}
	var conflict []lra.Tag
	if l.IsNeg() {
		conflict = t.simplex.AssertLower(spec.slack, spec.neg, lra.Tag(l))
	} else {
		conflict = t.simplex.AssertUpper(spec.slack, spec.pos, lra.Tag(l))
	}
	t.stageCertificate(conflict)
	return tagsToLits(conflict)
}

func (t *theoryAdapter) Check(final bool) ([]sat.Lit, error) {
	tags, err := t.simplex.CheckBudget()
	if err != nil {
		return nil, err
	}
	t.stageCertificate(tags)
	return tagsToLits(tags), nil
}

func (t *theoryAdapter) stageCertificate(conflict []lra.Tag) {
	if t.proof == nil || conflict == nil {
		return
	}
	t.proof.StageFarkas(t.simplex.LastFarkas())
}

func (t *theoryAdapter) Push()     { t.simplex.Push() }
func (t *theoryAdapter) Pop(n int) { t.simplex.Pop(n) }

func tagsToLits(tags []lra.Tag) []sat.Lit {
	if tags == nil {
		return nil
	}
	lits := make([]sat.Lit, len(tags))
	for i, tg := range tags {
		lits[i] = sat.Lit(tg)
	}
	return lits
}

// encoder lowers the assertion stack into one SAT instance plus simplex
// tableau that persist across Check calls. Scoped assertions are guarded by
// their scope's selector literal (see Solver); Tseitin definitions, atom
// bindings and slack rows are pure equivalences, so they are emitted
// unguarded and shared by every later check.
type encoder struct {
	owner   *Solver
	sat     *sat.Solver
	simplex *lra.Simplex
	theory  *theoryAdapter

	realToSimplex []int
	slackByKey    map[string]int
	atomVars      map[atomKey]sat.Var
	boolToSat     []sat.Var
	memo          map[Formula]sat.Lit

	trueLit sat.Lit
	nAtoms  int

	// defArena backs kernel derivation of definitional clauses (gates and
	// cardinality circuits); its views are handed straight to AddClause,
	// which copies, so reuse across derivations is safe.
	defArena cnf.Arena

	// curSel is the selector literal of the scope currently being encoded;
	// LitUndef while encoding the base scope (clauses added unguarded).
	curSel sat.Lit

	// Per-check stat baselines: the SAT and simplex counters are cumulative
	// across the instance's lifetime, so per-check Stats are reported as
	// deltas from the values captured by beginCheck.
	baseSat sat.Stats
	baseLra lra.Stats
}

func newEncoder(owner *Solver) *encoder {
	simplex := lra.NewSimplex()
	theory := &theoryAdapter{simplex: simplex, bounds: make(map[sat.Var]boundSpec)}
	// The proof writer outlives the encoder (FreshPerCheck rebuilds one per
	// Check); a Restart record tells the checker to start a new segment. The
	// logger is only installed when non-nil — a typed-nil interface would
	// defeat the solver's nil checks.
	var plog sat.ProofLogger
	if w := owner.opts.Proof; w != nil {
		w.Restart()
		theory.proof = w
		plog = w
	}
	e := &encoder{
		owner: owner,
		sat: sat.NewSolver(sat.Options{
			Theory:          theory,
			CheckAtFixpoint: owner.opts.TheoryCheckAtFixpoint,
			Proof:           plog,
			Tuning:          owner.tuning,
			Exchange:        owner.exPort,
		}),
		simplex:    simplex,
		theory:     theory,
		slackByKey: make(map[string]int),
		atomVars:   make(map[atomKey]sat.Var),
		memo:       make(map[Formula]sat.Lit),
		curSel:     sat.LitUndef,
	}
	// A dedicated always-true literal anchors constant formulas; it is a
	// zero-input Tseitin gate so its unit clause carries provenance too.
	e.trueLit = e.defineGate(cnf.GateTrue, nil)
	e.syncVars()
	return e
}

// defineGate allocates a fresh output variable for a Tseitin gate over the
// given input literals, logs its provenance, and adds the definitional
// clauses exactly as the cnf kernel derives them. The gate record and its
// clauses form one contiguous run in the certificate — the proof writer
// swallows each clause after matching it against the same kernel derivation,
// and the checker re-derives them from the record alone.
func (e *encoder) defineGate(g cnf.Gate, inputs []sat.Lit) sat.Lit {
	zv := e.sat.NewVar()
	if w := e.owner.opts.Proof; w != nil {
		w.DefineGate(g, zv, inputs)
	}
	for _, cl := range e.defArena.GateClauses(g, sat.PosLit(zv), inputs) {
		e.mustAdd(cl...)
	}
	return sat.PosLit(zv)
}

// syncVars registers solver-level variables created since the last check
// with the SAT core and the simplex, keeping models total.
func (e *encoder) syncVars() {
	for i := len(e.realToSimplex); i < len(e.owner.realNames); i++ {
		e.realToSimplex = append(e.realToSimplex, e.simplex.NewVar())
	}
	for i := len(e.boolToSat); i < len(e.owner.boolNames); i++ {
		e.boolToSat = append(e.boolToSat, e.sat.NewVar())
	}
}

// beginCheck prepares the persistent instance for one Check call: late-bound
// variables are registered, the per-call budgets and stop hooks installed,
// and the stat baselines captured.
func (e *encoder) beginCheck(b Budget, ctrl *controller) {
	e.syncVars()
	e.sat.SetBudgets(b.MaxConflicts, b.MaxPropagations)
	e.sat.SetStop(ctrl.stopFunc(PointCDCL))
	e.simplex.SetStop(ctrl.stopFunc(PointSimplex))
	if b.MaxPivots > 0 {
		// The simplex pivot budget is cumulative by contract; offset it by
		// the pivots already spent so the bound covers this check only.
		e.simplex.SetMaxPivots(e.simplex.Statistics().Pivots + b.MaxPivots)
	} else {
		e.simplex.SetMaxPivots(0)
	}
	e.baseSat = e.sat.Statistics()
	e.baseLra = e.simplex.Statistics()
}

func (e *encoder) mustAdd(lits ...sat.Lit) {
	if err := e.sat.AddClause(lits...); err != nil {
		// Clauses are built from variables the encoder itself created;
		// a failure here is a bug, not an input error.
		panic(fmt.Sprintf("smt: internal clause error: %v", err))
	}
}

// add emits an assertion clause guarded by the current scope's selector:
// scoped clauses become C ∨ ¬sel, so they bind only while sel is assumed and
// are permanently disabled by the unit ¬sel that Pop adds. Base-scope
// clauses (curSel undefined) are unconditional; an empty base-scope clause
// marks the instance unsatisfiable for good.
func (e *encoder) add(lits ...sat.Lit) {
	if e.curSel != sat.LitUndef {
		lits = append(lits, e.curSel.Not())
	}
	e.mustAdd(lits...)
}

// assertTop asserts a formula at the top level, flattening conjunctions and
// emitting disjunctions of literals as plain clauses.
func (e *encoder) assertTop(f Formula) error {
	switch g := f.(type) {
	case *constF:
		if !g.val {
			e.add() // empty clause: false in this scope
		}
		return nil
	case *andF:
		for _, c := range g.fs {
			if err := e.assertTop(c); err != nil {
				return err
			}
		}
		return nil
	case *orF:
		lits := make([]sat.Lit, 0, len(g.fs)+1)
		for _, c := range g.fs {
			l, err := e.encode(c)
			if err != nil {
				return err
			}
			lits = append(lits, l)
		}
		e.add(lits...)
		return nil
	default:
		l, err := e.encode(f)
		if err != nil {
			return err
		}
		e.add(l)
		return nil
	}
}

// encode lowers a formula to a SAT literal (Tseitin transformation with
// structural sharing by node identity). Definitional clauses are pure
// equivalences between the fresh variable and its formula, so they are
// emitted unguarded and stay valid in every scope and every later check.
func (e *encoder) encode(f Formula) (sat.Lit, error) {
	if l, ok := e.memo[f]; ok {
		return l, nil
	}
	var lit sat.Lit
	switch g := f.(type) {
	case *constF:
		if g.val {
			lit = e.trueLit
		} else {
			lit = e.trueLit.Not()
		}
	case *boolF:
		if int(g.v) >= len(e.boolToSat) {
			return 0, fmt.Errorf("smt: formula references unknown Boolean variable b%d", g.v)
		}
		lit = sat.PosLit(e.boolToSat[g.v])
	case *notF:
		inner, err := e.encode(g.f)
		if err != nil {
			return 0, err
		}
		lit = inner.Not()
	case *andF:
		// Children are encoded before the gate's output variable is
		// allocated, so the provenance record can precede a contiguous run
		// of definitional clauses over already-defined inputs.
		ins := make([]sat.Lit, 0, len(g.fs))
		for _, c := range g.fs {
			cl, err := e.encode(c)
			if err != nil {
				return 0, err
			}
			ins = append(ins, cl)
		}
		lit = e.defineGate(cnf.GateAnd, ins)
	case *orF:
		ins := make([]sat.Lit, 0, len(g.fs))
		for _, c := range g.fs {
			cl, err := e.encode(c)
			if err != nil {
				return 0, err
			}
			ins = append(ins, cl)
		}
		lit = e.defineGate(cnf.GateOr, ins)
	case *atomF:
		l, err := e.encodeAtom(g)
		if err != nil {
			return 0, err
		}
		lit = l
	default:
		return 0, fmt.Errorf("smt: unknown formula node %T", f)
	}
	e.memo[f] = lit
	return lit, nil
}

// encodeAtom maps an arithmetic atom to a (possibly negated) theory literal
// over a canonical upper-bound atom on a shared slack variable.
func (e *encoder) encodeAtom(a *atomF) (sat.Lit, error) {
	vars, ratios, factor, key := a.expr.normTerms()
	rhs := new(big.Rat).Quo(a.rhs, factor)
	op := a.op
	if factor.Sign() < 0 {
		switch op {
		case opLE:
			op = opGE
		case opGE:
			op = opLE
		case opLT:
			op = opGT
		case opGT:
			op = opLT
		}
	}

	slackVar, err := e.slackFor(vars, ratios, key)
	if err != nil {
		return 0, err
	}

	// Canonical form: an upper-bound atom "slack ≤ rhs + k·δ" (k ∈ {0,−1}),
	// possibly negated.
	var k int8
	negated := false
	switch op {
	case opLE:
		k = 0
	case opLT:
		k = -1
	case opGE: // s ≥ c ⇔ ¬(s < c)
		k, negated = -1, true
	case opGT: // s > c ⇔ ¬(s ≤ c)
		k, negated = 0, true
	}

	ak := makeAtomKey(slackVar, rhs, k)
	v, ok := e.atomVars[ak]
	if !ok {
		v = e.sat.NewVar()
		e.sat.WatchTheoryVar(v)
		e.atomVars[ak] = v
		e.nAtoms++
		kr := big.NewRat(int64(k), 1)
		negKr := big.NewRat(int64(k)+1, 1)
		spec := boundSpec{
			slack: slackVar,
			pos:   numeric.NewDelta(rhs, kr),
			// ¬(s ≤ c + k·δ) ⇔ s ≥ c + (k+1)·δ
			neg: numeric.NewDelta(rhs, negKr),
		}
		e.theory.bounds[v] = spec
		if w := e.owner.opts.Proof; w != nil {
			w.DefineAtom(int(v), spec.slack, spec.pos, spec.neg)
		}
	}
	l := sat.PosLit(v)
	if negated {
		l = l.Not()
	}
	return l, nil
}

// slackFor returns the simplex variable representing the canonical
// expression given as parallel (vars, ratios) slices, introducing a slack
// row on first use. Single-variable canonical expressions map directly to
// the variable.
func (e *encoder) slackFor(vars []RealVar, ratios []*big.Rat, key string) (int, error) {
	if sv, ok := e.slackByKey[key]; ok {
		return sv, nil
	}
	if len(vars) == 1 {
		v := vars[0]
		if int(v) >= len(e.realToSimplex) {
			return 0, fmt.Errorf("smt: atom references unknown real variable x%d", v)
		}
		// Canonical leading coefficient is 1, so the expression is the
		// variable itself.
		sv := e.realToSimplex[v]
		e.slackByKey[key] = sv
		return sv, nil
	}
	terms := make([]lra.Term, 0, len(vars))
	for i, v := range vars {
		if int(v) >= len(e.realToSimplex) {
			return 0, fmt.Errorf("smt: atom references unknown real variable x%d", v)
		}
		terms = append(terms, lra.Term{Var: e.realToSimplex[v], Coeff: ratios[i]})
	}
	sv, err := e.simplex.DefineSlack(terms)
	if err != nil {
		return 0, fmt.Errorf("smt: define slack: %w", err)
	}
	if w := e.owner.opts.Proof; w != nil {
		// The terms reference original simplex variables only (never other
		// slacks), so the checker eliminates slacks in one substitution pass.
		pterms := make([]proof.Term, len(terms))
		for i, t := range terms {
			pterms[i] = proof.Term{Var: t.Var, Coeff: numeric.QFromRat(t.Coeff)}
		}
		w.DefineSlack(sv, pterms)
	}
	e.slackByKey[key] = sv
	return sv, nil
}

// statsSnapshot captures one check's work: sizes are the instance's current
// totals, counters are deltas from the beginCheck baselines. It is valid
// both after a completed solve and mid-flight (partial stats on
// interruption).
func (e *encoder) statsSnapshot() Stats {
	sst := e.sat.Statistics()
	lst := e.simplex.Statistics()
	return Stats{
		BoolVars:     sst.Vars,
		Clauses:      sst.Clauses,
		RealVars:     len(e.realToSimplex),
		Atoms:        e.nAtoms,
		SlackVars:    lst.Rows,
		Conflicts:    sst.Conflicts - e.baseSat.Conflicts,
		Decisions:    sst.Decisions - e.baseSat.Decisions,
		Propagations: sst.Propagations - e.baseSat.Propagations,
		Restarts:     sst.Restarts - e.baseSat.Restarts,
		TheoryChecks: sst.TheoryChecks - e.baseSat.TheoryChecks,
		Pivots:       lst.Pivots - e.baseLra.Pivots,
		FastOps:      lst.FastOps - e.baseLra.FastOps,
		BigOps:       lst.BigOps - e.baseLra.BigOps,
		Exported:     sst.Exported - e.baseSat.Exported,
		Imported:     sst.Imported - e.baseSat.Imported,
	}
}

// solve runs the SAT search under the live scopes' selector assumptions and
// packages the result. An error return means the search was interrupted
// (budget or cancellation); res still carries the partial Stats. The solver
// is always backtracked to level 0 afterwards so clauses can be added before
// the next check.
func (e *encoder) solve(assumps []sat.Lit) (*Result, error) {
	res := &Result{}
	status, err := e.sat.SolveAssuming(assumps...)
	res.Stats = e.statsSnapshot()
	if err != nil {
		e.sat.Backtrack()
		res.Status = Unknown
		return res, err
	}
	switch status {
	case sat.StatusSat:
		res.Status = Sat
		// Extract the model before Backtrack: the trail assignment and the
		// simplex's active bounds (which fix the δ perturbation used to
		// rationalize strict bounds) survive only until the backtrack.
		res.boolVals = make([]bool, len(e.boolToSat))
		for i, v := range e.boolToSat {
			res.boolVals[i] = e.sat.Value(v)
		}
		model := e.simplex.Model()
		res.realVals = make([]*big.Rat, len(e.realToSimplex))
		for i, sv := range e.realToSimplex {
			res.realVals[i] = model[sv]
		}
	case sat.StatusUnsat:
		res.Status = Unsat
		if w := e.owner.opts.Proof; w != nil {
			// FinalConflict names the responsible scope selectors (nil for an
			// absolute UNSAT); the certificate records them so the answer is
			// checkable relative to exactly the scopes that were live.
			check := w.EndUnsat(e.sat.FinalConflict())
			res.Proof = &proof.Handle{Path: w.Path(), Check: check}
		}
	default:
		res.Status = Unknown
	}
	e.sat.Backtrack()
	return res, nil
}
