package smt

import (
	"bytes"
	"errors"
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"segrid/internal/numeric"
	"segrid/internal/proof"
)

// scriptState mirrors the assertion stack of the solvers under test so
// models can be validated against exactly what is currently asserted.
type scriptState struct {
	asserts [][]Formula
	cards   [][]cardConstraint
}

func newScriptState() *scriptState {
	return &scriptState{asserts: [][]Formula{nil}, cards: [][]cardConstraint{nil}}
}

func (st *scriptState) push() {
	st.asserts = append(st.asserts, nil)
	st.cards = append(st.cards, nil)
}

func (st *scriptState) pop() {
	st.asserts = st.asserts[:len(st.asserts)-1]
	st.cards = st.cards[:len(st.cards)-1]
}

func (st *scriptState) assert(f Formula) {
	st.asserts[len(st.asserts)-1] = append(st.asserts[len(st.asserts)-1], f)
}

func (st *scriptState) card(cc cardConstraint) {
	st.cards[len(st.cards)-1] = append(st.cards[len(st.cards)-1], cc)
}

// checkModel verifies a Sat result against the mirrored assertion stack.
func (st *scriptState) checkModel(t *testing.T, tag string, res *Result, nBool, nReal int) {
	t.Helper()
	bools := make(map[BoolVar]bool, nBool)
	for i := 0; i < nBool; i++ {
		bools[BoolVar(i)] = res.Bool(BoolVar(i))
	}
	reals := make(map[RealVar]*big.Rat, nReal)
	for i := 0; i < nReal; i++ {
		reals[RealVar(i)] = res.Real(RealVar(i))
	}
	for _, fs := range st.asserts {
		for _, f := range fs {
			if !evalFormula(f, bools, reals) {
				t.Fatalf("%s: model violates asserted %v", tag, f)
			}
		}
	}
	for _, ccs := range st.cards {
		for _, cc := range ccs {
			n := 0
			for _, f := range cc.fs {
				if evalFormula(f, bools, reals) {
					n++
				}
			}
			if cc.kind == cardAtMost && n > cc.k {
				t.Fatalf("%s: model has %d true of at-most-%d", tag, n, cc.k)
			}
			if cc.kind == cardAtLeast && n < cc.k {
				t.Fatalf("%s: model has %d true of at-least-%d", tag, n, cc.k)
			}
		}
	}
}

// TestDifferentialIncrementalVsFresh replays random assert/push/pop/check
// scripts on two solvers — one incremental (the default), one with
// FreshPerCheck — and requires identical statuses at every check, with both
// models validated against the live assertion stack on Sat. This is the
// suite pinning the persistent-encoder architecture to the rebuild-per-check
// semantics.
func TestDifferentialIncrementalVsFresh(t *testing.T) {
	const nBool, nReal, scripts, opsPerScript = 6, 4, 25, 40
	rng := rand.New(rand.NewSource(1847))
	for script := 0; script < scripts; script++ {
		inc := NewSolver(DefaultOptions())
		fresh := NewSolver(func() Options { o := DefaultOptions(); o.FreshPerCheck = true; return o }())
		boolVars := make([]BoolVar, nBool)
		for i := range boolVars {
			boolVars[i] = inc.BoolVar("b")
			fresh.BoolVar("b")
		}
		realVars := make([]RealVar, nReal)
		for i := range realVars {
			realVars[i] = inc.RealVar("x")
			fresh.RealVar("x")
		}
		st := newScriptState()
		checks := 0
		for op := 0; op < opsPerScript; op++ {
			switch r := rng.Intn(10); {
			case r < 4: // assert
				f := randFormula(rng, inc, boolVars, realVars, 2)
				inc.Assert(f)
				fresh.Assert(f)
				st.assert(f)
			case r < 5: // cardinality
				n := 2 + rng.Intn(3)
				fs := make([]Formula, n)
				for i := range fs {
					fs[i] = randFormula(rng, inc, boolVars, realVars, 1)
				}
				k := rng.Intn(n)
				if rng.Intn(2) == 0 {
					inc.AssertAtMostK(fs, k)
					fresh.AssertAtMostK(fs, k)
					st.card(cardConstraint{fs: fs, k: k, kind: cardAtMost})
				} else {
					inc.AssertAtLeastK(fs, k)
					fresh.AssertAtLeastK(fs, k)
					st.card(cardConstraint{fs: fs, k: k, kind: cardAtLeast})
				}
			case r < 7: // push
				inc.Push()
				fresh.Push()
				st.push()
			case r < 8: // pop
				if inc.NumScopes() > 1 {
					if err := inc.Pop(); err != nil {
						t.Fatal(err)
					}
					if err := fresh.Pop(); err != nil {
						t.Fatal(err)
					}
					st.pop()
				}
			default: // check
				checks++
				ri, err := inc.Check()
				if err != nil {
					t.Fatalf("script %d: incremental Check: %v", script, err)
				}
				rf, err := fresh.Check()
				if err != nil {
					t.Fatalf("script %d: fresh Check: %v", script, err)
				}
				if ri.Status != rf.Status {
					t.Fatalf("script %d op %d: incremental %v vs fresh %v", script, op, ri.Status, rf.Status)
				}
				if ri.Status == Sat {
					st.checkModel(t, "incremental", ri, nBool, nReal)
					st.checkModel(t, "fresh", rf, nBool, nReal)
				}
			}
		}
		// Every script ends with a final differential check.
		ri, err := inc.Check()
		if err != nil {
			t.Fatal(err)
		}
		rf, err := fresh.Check()
		if err != nil {
			t.Fatal(err)
		}
		if ri.Status != rf.Status {
			t.Fatalf("script %d final: incremental %v vs fresh %v", script, ri.Status, rf.Status)
		}
		if ri.Status == Sat {
			st.checkModel(t, "incremental-final", ri, nBool, nReal)
			st.checkModel(t, "fresh-final", rf, nBool, nReal)
		}
	}
}

// TestProofCertificatesOnRandomScripts replays random assert/push/pop/check
// scripts with proof logging enabled on both the persistent and the
// FreshPerCheck twin. Every Unsat must come back with a certificate handle
// whose check index counts that writer's Unsat verdicts, and at the end of
// each script both streams must verify clean under the independent checker,
// covering exactly as many Unsat checks as the script observed.
func TestProofCertificatesOnRandomScripts(t *testing.T) {
	const nBool, nReal, scripts, opsPerScript = 5, 3, 15, 35
	rng := rand.New(rand.NewSource(90210))
	sawUnsat := false
	for script := 0; script < scripts; script++ {
		var incBuf, freshBuf bytes.Buffer
		incOpts := DefaultOptions()
		incOpts.Proof = proof.NewWriter(&incBuf)
		freshOpts := DefaultOptions()
		freshOpts.FreshPerCheck = true
		freshOpts.Proof = proof.NewWriter(&freshBuf)
		inc := NewSolver(incOpts)
		fresh := NewSolver(freshOpts)
		boolVars := make([]BoolVar, nBool)
		for i := range boolVars {
			boolVars[i] = inc.BoolVar("b")
			fresh.BoolVar("b")
		}
		realVars := make([]RealVar, nReal)
		for i := range realVars {
			realVars[i] = inc.RealVar("x")
			fresh.RealVar("x")
		}
		unsats := uint64(0)
		check := func(op int) {
			ri, err := inc.Check()
			if err != nil {
				t.Fatalf("script %d op %d: incremental Check: %v", script, op, err)
			}
			rf, err := fresh.Check()
			if err != nil {
				t.Fatalf("script %d op %d: fresh Check: %v", script, op, err)
			}
			if ri.Status != rf.Status {
				t.Fatalf("script %d op %d: incremental %v vs fresh %v", script, op, ri.Status, rf.Status)
			}
			if ri.Status != Unsat {
				if ri.Proof != nil || rf.Proof != nil {
					t.Fatalf("script %d op %d: non-unsat result carries a proof handle", script, op)
				}
				return
			}
			unsats++
			sawUnsat = true
			for name, res := range map[string]*Result{"incremental": ri, "fresh": rf} {
				if res.Proof == nil {
					t.Fatalf("script %d op %d: %s Unsat without certificate handle", script, op, name)
				}
				if res.Proof.Check != unsats {
					t.Fatalf("script %d op %d: %s handle check %d, want %d", script, op, name, res.Proof.Check, unsats)
				}
			}
		}
		for op := 0; op < opsPerScript; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // assert
				f := randFormula(rng, inc, boolVars, realVars, 2)
				inc.Assert(f)
				fresh.Assert(f)
			case r < 6: // cardinality, biased low to force unsat often
				n := 2 + rng.Intn(3)
				fs := make([]Formula, n)
				for i := range fs {
					fs[i] = randFormula(rng, inc, boolVars, realVars, 1)
				}
				inc.AssertAtMostK(fs, rng.Intn(2))
				fresh.AssertAtMostK(fs, rng.Intn(2))
			case r < 7: // push
				inc.Push()
				fresh.Push()
			case r < 8: // pop
				if inc.NumScopes() > 1 {
					if err := inc.Pop(); err != nil {
						t.Fatal(err)
					}
					if err := fresh.Pop(); err != nil {
						t.Fatal(err)
					}
				}
			default:
				check(op)
			}
		}
		check(opsPerScript)
		for name, pair := range map[string]struct {
			w   *proof.Writer
			buf *bytes.Buffer
		}{"incremental": {incOpts.Proof, &incBuf}, "fresh": {freshOpts.Proof, &freshBuf}} {
			if err := pair.w.Flush(); err != nil {
				t.Fatalf("script %d: %s writer: %v", script, name, err)
			}
			rep, err := proof.Check(bytes.NewReader(pair.buf.Bytes()))
			if err != nil {
				t.Fatalf("script %d: %s certificate rejected: %v", script, name, err)
			}
			if rep.UnsatChecks != int(unsats) {
				t.Fatalf("script %d: %s certificate covers %d unsat checks, script saw %d",
					script, name, rep.UnsatChecks, unsats)
			}
			// The differential at the heart of the v2 trust story: every
			// definitional clause the encoder added matched the kernel
			// derivation byte for byte (the writer swallowed it), and the
			// checker re-derived exactly that many from the provenance
			// records alone.
			if m := pair.w.DefMismatches(); m != 0 {
				t.Fatalf("script %d: %s encoder diverged from the cnf kernel on %d definitional clauses", script, name, m)
			}
			if rep.DefClauses != int(pair.w.DefClauses()) {
				t.Fatalf("script %d: %s checker re-derived %d definitional clauses, encoder emitted %d",
					script, name, rep.DefClauses, pair.w.DefClauses())
			}
		}
	}
	if !sawUnsat {
		t.Fatalf("no script ever went unsat; the suite exercised nothing — reseed")
	}
}

// TestProofMutationRejected pins the checker's end of the trust story: a
// certificate the solver just emitted verifies clean, and the same
// certificate with one theory-lemma Farkas coefficient corrupted is
// rejected. A checker that cannot tell those apart certifies nothing.
func TestProofMutationRejected(t *testing.T) {
	var buf bytes.Buffer
	opts := DefaultOptions()
	opts.Proof = proof.NewWriter(&buf)
	s := NewSolver(opts)
	x := s.RealVar("x")
	y := s.RealVar("y")
	s.Assert(LE(NewLinExpr().TermInt(1, x).TermInt(1, y), big.NewRat(1, 1)))
	s.Assert(GE(NewLinExpr().TermInt(1, x), big.NewRat(1, 1)))
	s.Assert(GE(NewLinExpr().TermInt(1, y), big.NewRat(1, 1)))
	res, err := s.Check()
	if err != nil || res.Status != Unsat {
		t.Fatalf("Check = %v, %v; want unsat", res, err)
	}
	if res.Proof == nil {
		t.Fatalf("Unsat result carries no certificate handle")
	}
	if err := opts.Proof.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := proof.Check(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("pristine certificate rejected: %v", err)
	}
	recs, err := proof.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	mutated := -1
	for i, rec := range recs {
		if rec.Kind == proof.KindTheoryLemma && len(rec.Coeffs) > 0 {
			rec.Coeffs[0] = rec.Coeffs[0].Add(numeric.QFromInt(1))
			mutated = i
			break
		}
	}
	if mutated < 0 {
		t.Fatalf("no theory lemma with Farkas coefficients in the stream; the instance must conflict in the simplex")
	}
	var corrupted bytes.Buffer
	if err := proof.WriteAll(&corrupted, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := proof.Check(bytes.NewReader(corrupted.Bytes())); err == nil {
		t.Fatalf("checker accepted a certificate with a corrupted Farkas coefficient (record %d)", mutated)
	}
}

// TestBudgetPerCheckOnPersistentSolver is the SMT-level regression for the
// cumulative budget bug: with one SAT instance now persisting across Checks,
// a per-check budget must be measured against each check's own work, not the
// instance's lifetime counters.
func TestBudgetPerCheckOnPersistentSolver(t *testing.T) {
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	y := s.RealVar("y")
	bs := make([]Formula, 8)
	for i := range bs {
		bs[i] = B(s.BoolVar("b"))
	}
	s.Assert(Or(bs...))
	s.AssertAtMostK(bs, 2)
	s.Assert(LE(NewLinExpr().TermInt(1, x).TermInt(2, y), big.NewRat(10, 1)))
	s.Assert(GE(NewLinExpr().TermInt(3, x).TermInt(-1, y), big.NewRat(-4, 1)))
	s.SetBudget(Budget{MaxPropagations: 100000, MaxConflicts: 10000, MaxPivots: 100000})
	for i := 0; i < 6; i++ {
		res, err := s.Check()
		if err != nil {
			t.Fatalf("Check #%d: %v", i+1, err)
		}
		if res.Status != Sat {
			t.Fatalf("Check #%d = %v (why: %v); a per-check budget must not accumulate across checks",
				i+1, res.Status, res.Why)
		}
	}
}

// TestEncodeErrorRefreshesLastStats is the regression for the stale-stats
// bug: a Check failing with an encode error must not leave LastStats
// reporting the previous successful check's counters.
func TestEncodeErrorRefreshesLastStats(t *testing.T) {
	s := NewSolver(DefaultOptions())
	b := s.BoolVar("b")
	c := s.BoolVar("c")
	s.Assert(Or(B(b), B(c)))
	res, err := s.Check()
	if err != nil || res.Status != Sat {
		t.Fatalf("setup Check = %v, %v", res, err)
	}
	if s.LastStats().Propagations == 0 {
		t.Fatalf("setup check did no propagations; pick a different setup")
	}
	s.Push()
	s.Assert(B(BoolVar(99))) // unknown variable: encode error
	if _, err := s.Check(); err == nil {
		t.Fatalf("Check on unknown variable did not error")
	}
	if got := s.LastStats().Propagations; got != 0 {
		t.Fatalf("LastStats().Propagations = %d after encode error; want 0 (stats of the failed check, not the previous one)", got)
	}
	if s.LastStats().Duration == 0 {
		t.Fatalf("LastStats().Duration not set on the encode-error path")
	}
}

// TestModelAccessOnNonSatPanics pins the diagnosable panic for misuse of
// Result.Bool/Real.
func TestModelAccessOnNonSatPanics(t *testing.T) {
	s := NewSolver(DefaultOptions())
	b := s.BoolVar("b")
	s.Assert(B(b))
	s.Assert(Not(B(b)))
	res, err := s.Check()
	if err != nil || res.Status != Unsat {
		t.Fatalf("Check = %v, %v; want unsat", res, err)
	}
	expectPanic := func(name string, f func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s on non-sat result did not panic", name)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "model access on non-sat result") {
				t.Fatalf("%s panic = %v; want the explicit model-access message", name, r)
			}
		}()
		f()
	}
	expectPanic("Bool", func() { res.Bool(b) })
	expectPanic("Real", func() { _ = res.Real(RealVar(0)) })
}

// TestAtomKeyInterning pins the allocation fix in encodeAtom: machine-word
// rationals key numerically (no per-atom string), only overflowing rationals
// fall back to RatString, and equal rationals collide onto one key either
// way.
func TestAtomKeyInterning(t *testing.T) {
	small := makeAtomKey(3, big.NewRat(7, 2), 0)
	if small.bigRHS != "" {
		t.Fatalf("small rational keyed via string %q; want numeric fast path", small.bigRHS)
	}
	if small.num != 7 || small.den != 2 {
		t.Fatalf("fast-path key = %d/%d; want 7/2", small.num, small.den)
	}
	if again := makeAtomKey(3, big.NewRat(7, 2), 0); again != small {
		t.Fatalf("equal rationals produced distinct keys: %v vs %v", small, again)
	}
	huge := new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 80), big.NewInt(3))
	bigKey := makeAtomKey(3, huge, 0)
	if bigKey.bigRHS == "" {
		t.Fatalf("overflowing rational did not take the string fallback")
	}
	if again := makeAtomKey(3, new(big.Rat).Set(huge), 0); again != bigKey {
		t.Fatalf("equal big rationals produced distinct keys")
	}
	if makeAtomKey(3, big.NewRat(7, 2), -1) == small {
		t.Fatalf("δ offset not part of the key")
	}

	// Behavioral half: re-asserting the same atom across scopes and checks
	// must reuse the interned atom variable, not mint a new one.
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	atom := func() Formula { return LE(NewLinExpr().TermInt(1, x), big.NewRat(5, 1)) }
	s.Assert(atom())
	if res, err := s.Check(); err != nil || res.Status != Sat {
		t.Fatalf("Check = %v, %v", res, err)
	}
	if got := s.LastStats().Atoms; got != 1 {
		t.Fatalf("Atoms = %d after first check; want 1", got)
	}
	s.Push()
	s.Assert(atom())
	if res, err := s.Check(); err != nil || res.Status != Sat {
		t.Fatalf("scoped Check = %v, %v", res, err)
	}
	if got := s.LastStats().Atoms; got != 1 {
		t.Fatalf("Atoms = %d after re-asserting the same atom; want 1 (interned)", got)
	}
}

// TestPopRetractsScopedCardinality exercises the guarded sequential-counter
// circuit: a scoped at-most-k must stop binding after Pop.
func TestPopRetractsScopedCardinality(t *testing.T) {
	s := NewSolver(DefaultOptions())
	fs := make([]Formula, 4)
	for i := range fs {
		fs[i] = B(s.BoolVar("b"))
	}
	for _, f := range fs {
		s.Assert(f) // all true
	}
	s.Push()
	s.AssertAtMostK(fs, 1)
	res, err := s.Check()
	if err != nil || res.Status != Unsat {
		t.Fatalf("with scoped at-most-1: %v, %v; want unsat", res, err)
	}
	if err := s.Pop(); err != nil {
		t.Fatal(err)
	}
	res, err = s.Check()
	if err != nil || res.Status != Sat {
		t.Fatalf("after Pop: %v, %v; want sat", res, err)
	}
	for i := range fs {
		if !res.Bool(BoolVar(i)) {
			t.Fatalf("model must set all bs true after the cardinality is retracted")
		}
	}
	// A scoped at-most-(-1) (impossible cardinality) must also be scoped.
	s.Push()
	s.AssertAtMostK(fs[:2], -1)
	res, err = s.Check()
	if err != nil || res.Status != Unsat {
		t.Fatalf("with impossible cardinality: %v, %v; want unsat", res, err)
	}
	if err := s.Pop(); err != nil {
		t.Fatal(err)
	}
	res, err = s.Check()
	if err != nil || res.Status != Sat {
		t.Fatalf("after popping impossible cardinality: %v, %v; want sat", res, err)
	}
}

// TestInterruptedCheckResumesEncoding pins the resume contract: an
// interrupter firing during the encode phase leaves the already-encoded
// prefix in place, and the next check picks up where it stopped and decides
// the instance.
func TestInterruptedCheckResumesEncoding(t *testing.T) {
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	for i := 0; i < 8; i++ {
		s.Assert(LE(NewLinExpr().TermInt(1, x), big.NewRat(int64(10-i), 1)))
	}
	s.Assert(GE(NewLinExpr().TermInt(1, x), big.NewRat(2, 1)))
	intr := NewCountdownInterrupter(3)
	intr.Point = PointEncode
	s.SetInterrupter(intr)
	res, err := s.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unknown || !errors.Is(res.Why, ErrInterrupted) {
		t.Fatalf("interrupted Check = %v (why %v); want unknown/interrupted", res.Status, res.Why)
	}
	s.SetInterrupter(nil)
	res, err = s.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Sat {
		t.Fatalf("resumed Check = %v (why %v); want sat", res.Status, res.Why)
	}
	if got := res.Real(x); got.Cmp(big.NewRat(2, 1)) < 0 || got.Cmp(big.NewRat(3, 1)) > 0 {
		t.Fatalf("model x = %v outside [2, 3]", got)
	}
}

// TestDefinitionalDifferentialAblations runs a fixed unsat script under every
// encoder configuration that changes the definitional clause stream —
// sequential-counter vs pairwise cardinality, persistent vs FreshPerCheck —
// and requires byte-identical agreement between the encoder's clauses and the
// cnf kernel (zero writer mismatches) and between the provenance records and
// the checker's re-derivation (report count equals swallowed count).
func TestDefinitionalDifferentialAblations(t *testing.T) {
	for _, tc := range []struct {
		name  string
		tweak func(*Options)
	}{
		{"default", func(*Options) {}},
		{"pairwise", func(o *Options) { o.NaiveCardinality = true }},
		{"fresh", func(o *Options) { o.FreshPerCheck = true }},
		{"fresh-pairwise", func(o *Options) { o.FreshPerCheck = true; o.NaiveCardinality = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			opts := DefaultOptions()
			tc.tweak(&opts)
			opts.Proof = proof.NewWriter(&buf)
			s := NewSolver(opts)
			fs := make([]Formula, 4)
			for i := range fs {
				fs[i] = B(s.BoolVar("b"))
			}
			// Gates feed the cardinality circuit; the conjunction below makes
			// all three operands true, contradicting the bound.
			s.AssertAtMostK([]Formula{Or(fs[0], fs[1]), And(fs[1], fs[2]), fs[3]}, 1)
			s.Assert(And(fs[0], fs[1], fs[2], fs[3]))
			res, err := s.Check()
			if err != nil || res.Status != Unsat {
				t.Fatalf("Check = %v, %v; want unsat", res, err)
			}
			w := opts.Proof
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if m := w.DefMismatches(); m != 0 {
				t.Fatalf("encoder diverged from the cnf kernel on %d definitional clauses", m)
			}
			if w.DefClauses() == 0 {
				t.Fatal("script produced no definitional clauses; it exercises nothing")
			}
			rep, err := proof.Check(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("certificate rejected: %v", err)
			}
			if rep.DefClauses != int(w.DefClauses()) {
				t.Fatalf("checker re-derived %d definitional clauses, encoder emitted %d",
					rep.DefClauses, w.DefClauses())
			}
			if rep.GateDefs == 0 || rep.CardDefs == 0 {
				t.Fatalf("expected both gate and card provenance records, got %d gate / %d card",
					rep.GateDefs, rep.CardDefs)
			}
		})
	}
}
