package smt

import (
	"fmt"

	"segrid/internal/cnf"
	"segrid/internal/sat"
)

// assertCard lowers a cardinality constraint over arbitrary formulas: each
// operand is Tseitin-encoded to a literal and the counting circuit is built
// over those literals.
func (e *encoder) assertCard(cc cardConstraint) error {
	lits := make([]sat.Lit, 0, len(cc.fs))
	for _, f := range cc.fs {
		l, err := e.encode(f)
		if err != nil {
			return err
		}
		lits = append(lits, l)
	}
	switch cc.kind {
	case cardAtMost:
		e.atMostK(lits, cc.k)
	case cardAtLeast:
		// Σ x ≥ k  ⇔  Σ ¬x ≤ n − k.
		neg := make([]sat.Lit, len(lits))
		for i, l := range lits {
			neg[i] = l.Not()
		}
		e.atMostK(neg, len(lits)-cc.k)
	default:
		return fmt.Errorf("smt: unknown cardinality kind %d", cc.kind)
	}
	return nil
}

// atMostK encodes Σ lits ≤ k through the shared cnf kernel (sequential
// counter by default, pairwise under the NaiveCardinality ablation). Unlike
// Tseitin definitions, the counting clauses are one-directional constraints
// over the input literals, so every clause carries the current scope's
// negated selector as a guard and stops binding once the scope is popped.
// The circuit's provenance (inputs, bound, encoding, first register
// variable, guard) is logged; the proof writer swallows the clauses after
// matching them against the same kernel derivation.
func (e *encoder) atMostK(lits []sat.Lit, k int) {
	enc := cnf.CardSeqCounter
	if e.owner.opts.NaiveCardinality {
		enc = cnf.CardPairwise
	}
	// Registers are allocated upfront and contiguously; the certificate
	// names only the first.
	firstFresh := sat.Var(0)
	if n := cnf.CardFreshVars(len(lits), k, enc); n > 0 {
		firstFresh = e.sat.NewVar()
		for i := 1; i < n; i++ {
			e.sat.NewVar()
		}
	}
	guard := sat.LitUndef
	if e.curSel != sat.LitUndef {
		guard = e.curSel.Not()
	}
	if w := e.owner.opts.Proof; w != nil {
		w.DefineCard(enc, lits, k, firstFresh, guard)
	}
	for _, cl := range e.defArena.AtMostK(lits, k, enc, firstFresh, guard) {
		e.mustAdd(cl...)
	}
}
