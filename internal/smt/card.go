package smt

import (
	"fmt"

	"segrid/internal/sat"
)

// assertCard lowers a cardinality constraint over arbitrary formulas: each
// operand is Tseitin-encoded to a literal and the counting circuit is built
// over those literals.
func (e *encoder) assertCard(cc cardConstraint) error {
	lits := make([]sat.Lit, 0, len(cc.fs))
	for _, f := range cc.fs {
		l, err := e.encode(f)
		if err != nil {
			return err
		}
		lits = append(lits, l)
	}
	switch cc.kind {
	case cardAtMost:
		e.atMostK(lits, cc.k)
	case cardAtLeast:
		// Σ x ≥ k  ⇔  Σ ¬x ≤ n − k.
		neg := make([]sat.Lit, len(lits))
		for i, l := range lits {
			neg[i] = l.Not()
		}
		e.atMostK(neg, len(lits)-cc.k)
	default:
		return fmt.Errorf("smt: unknown cardinality kind %d", cc.kind)
	}
	return nil
}

// atMostK encodes Σ lits ≤ k. Every circuit clause goes through the guarded
// add: unlike the Tseitin definitions, the counting clauses are
// one-directional constraints over the input literals, so they must stop
// binding once their scope is popped.
func (e *encoder) atMostK(lits []sat.Lit, k int) {
	n := len(lits)
	if k >= n {
		return
	}
	if k < 0 {
		e.add() // unsatisfiable in this scope
		return
	}
	if k == 0 {
		for _, l := range lits {
			e.add(l.Not())
		}
		return
	}
	if e.owner.opts.NaiveCardinality {
		e.atMostKPairwise(lits, k)
		return
	}
	e.atMostKSeqCounter(lits, k)
}

// atMostKSeqCounter is the sequential-counter encoding LT_{n,k} of Sinz
// (CP 2005): registers s[i][j] mean "at least j+1 of the first i+1 inputs
// are true". O(n·k) clauses and auxiliary variables, arc-consistent under
// unit propagation.
func (e *encoder) atMostKSeqCounter(lits []sat.Lit, k int) {
	n := len(lits)
	reg := make([][]sat.Lit, n-1)
	for i := range reg {
		reg[i] = make([]sat.Lit, k)
		for j := range reg[i] {
			reg[i][j] = sat.PosLit(e.sat.NewVar())
		}
	}
	// Base: x0 → s[0][0]; s[0][j] false for j ≥ 1.
	e.add(lits[0].Not(), reg[0][0])
	for j := 1; j < k; j++ {
		e.add(reg[0][j].Not())
	}
	for i := 1; i < n-1; i++ {
		e.add(lits[i].Not(), reg[i][0])
		e.add(reg[i-1][0].Not(), reg[i][0])
		for j := 1; j < k; j++ {
			e.add(lits[i].Not(), reg[i-1][j-1].Not(), reg[i][j])
			e.add(reg[i-1][j].Not(), reg[i][j])
		}
		e.add(lits[i].Not(), reg[i-1][k-1].Not())
	}
	e.add(lits[n-1].Not(), reg[n-2][k-1].Not())
}

// atMostKPairwise is the naive binomial encoding: for every (k+1)-subset at
// least one literal is false. Exponential in k; retained as an ablation
// baseline.
func (e *encoder) atMostKPairwise(lits []sat.Lit, k int) {
	subset := make([]sat.Lit, 0, k+1)
	var rec func(start int)
	rec = func(start int) {
		if len(subset) == k+1 {
			clause := make([]sat.Lit, len(subset))
			for i, l := range subset {
				clause[i] = l.Not()
			}
			e.add(clause...)
			return
		}
		for i := start; i < len(lits); i++ {
			subset = append(subset, lits[i])
			rec(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	rec(0)
}
