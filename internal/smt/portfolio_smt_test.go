package smt

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"segrid/internal/proof"
)

// TestPortfolioMatchesSequentialScripts replays random assert/push/pop/check
// scripts on a sequential solver and a portfolio twin and requires the same
// verdict at every check, with both models validated against the live
// assertion stack. This is the differential suite pinning the portfolio race
// to sequential semantics.
func TestPortfolioMatchesSequentialScripts(t *testing.T) {
	const nBool, nReal, scripts, opsPerScript = 6, 4, 12, 30
	rng := rand.New(rand.NewSource(7331))
	ctx := context.Background()
	for script := 0; script < scripts; script++ {
		seq := NewSolver(DefaultOptions())
		par := NewSolver(DefaultOptions())
		boolVars := make([]BoolVar, nBool)
		for i := range boolVars {
			boolVars[i] = seq.BoolVar("b")
			par.BoolVar("b")
		}
		realVars := make([]RealVar, nReal)
		for i := range realVars {
			realVars[i] = seq.RealVar("x")
			par.RealVar("x")
		}
		st := newScriptState()
		for op := 0; op < opsPerScript; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // assert
				f := randFormula(rng, seq, boolVars, realVars, 2)
				seq.Assert(f)
				par.Assert(f)
				st.assert(f)
			case r < 6: // push
				seq.Push()
				par.Push()
				st.push()
			case r < 7: // pop
				if seq.NumScopes() > 1 {
					if err := seq.Pop(); err != nil {
						t.Fatal(err)
					}
					if err := par.Pop(); err != nil {
						t.Fatal(err)
					}
					st.pop()
				}
			default: // differential check
				rs, err := seq.Check()
				if err != nil {
					t.Fatalf("script %d: sequential Check: %v", script, err)
				}
				rp, err := par.CheckPortfolio(ctx, PortfolioOptions{Workers: 4})
				if err != nil {
					t.Fatalf("script %d: CheckPortfolio: %v", script, err)
				}
				if rs.Status != rp.Status {
					t.Fatalf("script %d op %d: sequential %v vs portfolio %v (winner %d)",
						script, op, rs.Status, rp.Status, rp.Winner)
				}
				if rp.Status != Unknown && rp.Winner < 0 {
					t.Fatalf("script %d: definitive answer without a winner", script)
				}
				if rp.Stats.Workers != 4 {
					t.Fatalf("script %d: Stats.Workers = %d, want 4", script, rp.Stats.Workers)
				}
				if len(rp.PerWorker) != 4 {
					t.Fatalf("script %d: PerWorker has %d entries, want 4", script, len(rp.PerWorker))
				}
				if rp.Status == Sat {
					st.checkModel(t, "portfolio", rp.Result, nBool, nReal)
				}
			}
		}
	}
}

// TestPortfolioProofMergedAndTrimmed mixes sequential and portfolio checks on
// one proof stream: every portfolio Unsat re-anchors the winning worker's
// private segment onto the shared writer. The merged stream must verify
// under the independent checker with exactly the observed number of Unsat
// checks, and must still verify after backward trimming.
func TestPortfolioProofMergedAndTrimmed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "portfolio.proof")
	w, err := proof.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Proof = w
	s := NewSolver(opts)
	ctx := context.Background()

	x := s.RealVar("x")
	b := s.BoolVar("b")
	unsatChecks := 0

	// Scope 1: contradictory bounds — portfolio Unsat, merged segment.
	s.Push()
	s.Assert(GE(NewLinExpr().TermInt(1, x), rat(2, 1)))
	s.Assert(LE(NewLinExpr().TermInt(1, x), rat(1, 1)))
	rp, err := s.CheckPortfolio(ctx, PortfolioOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Status != Unsat {
		t.Fatalf("contradictory bounds: got %v", rp.Status)
	}
	unsatChecks++
	if rp.Proof == nil {
		t.Fatal("portfolio Unsat carried no proof handle")
	}
	if rp.Proof.Path != path {
		t.Fatalf("proof handle path %q, want %q", rp.Proof.Path, path)
	}
	if rp.Proof.Check != uint64(unsatChecks) {
		t.Fatalf("proof handle check %d, want %d", rp.Proof.Check, unsatChecks)
	}
	if err := s.Pop(); err != nil {
		t.Fatal(err)
	}

	// A sequential Unsat on the same stream after the merge: the writer was
	// re-anchored, the encoder reset, so this must open a fresh segment and
	// keep the stream checkable.
	s.Push()
	s.Assert(B(b))
	s.Assert(Not(B(b)))
	rs, err := s.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Status != Unsat {
		t.Fatalf("b∧¬b: got %v", rs.Status)
	}
	unsatChecks++
	if rs.Proof == nil || rs.Proof.Check != uint64(unsatChecks) {
		t.Fatalf("sequential check after merge: handle %+v, want check %d", rs.Proof, unsatChecks)
	}
	if err := s.Pop(); err != nil {
		t.Fatal(err)
	}

	// Another portfolio Unsat, now with sharing disabled (the ablation path
	// must certify identically).
	s.Push()
	s.Assert(LT(NewLinExpr().TermInt(1, x), rat(0, 1)))
	s.Assert(GT(NewLinExpr().TermInt(1, x), rat(0, 1)))
	rp2, err := s.CheckPortfolio(ctx, PortfolioOptions{Workers: 2, DisableSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	if rp2.Status != Unsat {
		t.Fatalf("x<0∧x>0: got %v", rp2.Status)
	}
	unsatChecks++
	if rp2.Proof == nil || rp2.Proof.Check != uint64(unsatChecks) {
		t.Fatalf("second portfolio handle %+v, want check %d", rp2.Proof, unsatChecks)
	}
	if err := s.Pop(); err != nil {
		t.Fatal(err)
	}

	if err := w.Close(); err != nil {
		t.Fatalf("close writer: %v", err)
	}
	rep, err := proof.CheckFile(path)
	if err != nil {
		t.Fatalf("merged stream failed verification: %v", err)
	}
	if rep.UnsatChecks != unsatChecks {
		t.Fatalf("merged stream has %d unsat checks, want %d", rep.UnsatChecks, unsatChecks)
	}

	// Backward trimming re-verifies the trimmed stream before publishing it.
	if _, err := proof.TrimFile(path); err != nil {
		t.Fatalf("trimming merged stream: %v", err)
	}
	rep, err = proof.CheckFile(path)
	if err != nil {
		t.Fatalf("trimmed merged stream failed verification: %v", err)
	}
	if rep.UnsatChecks != unsatChecks {
		t.Fatalf("trimmed stream has %d unsat checks, want %d", rep.UnsatChecks, unsatChecks)
	}
}

// TestPortfolioProofOnRandomScripts drives the merge path through random
// scripts: portfolio checks with proof logging on, certificate verified at
// the end of every script.
func TestPortfolioProofOnRandomScripts(t *testing.T) {
	const nBool, nReal, scripts, opsPerScript = 5, 3, 6, 16
	rng := rand.New(rand.NewSource(40427))
	ctx := context.Background()
	dir := t.TempDir()
	for script := 0; script < scripts; script++ {
		path := filepath.Join(dir, proof.UniqueName("script-", ".proof"))
		w, err := proof.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Proof = w
		s := NewSolver(opts)
		boolVars := make([]BoolVar, nBool)
		for i := range boolVars {
			boolVars[i] = s.BoolVar("b")
		}
		realVars := make([]RealVar, nReal)
		for i := range realVars {
			realVars[i] = s.RealVar("x")
		}
		unsat := 0
		for op := 0; op < opsPerScript; op++ {
			switch r := rng.Intn(6); {
			case r < 3:
				s.Assert(randFormula(rng, s, boolVars, realVars, 2))
			case r < 4:
				s.Push()
			case r < 5:
				if s.NumScopes() > 1 {
					if err := s.Pop(); err != nil {
						t.Fatal(err)
					}
				}
			default:
				rp, err := s.CheckPortfolio(ctx, PortfolioOptions{Workers: 3})
				if err != nil {
					t.Fatalf("script %d: %v", script, err)
				}
				if rp.Status == Unsat {
					unsat++
					if rp.Proof == nil || rp.Proof.Check != uint64(unsat) {
						t.Fatalf("script %d: handle %+v, want check %d", script, rp.Proof, unsat)
					}
				}
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("script %d: close: %v", script, err)
		}
		rep, err := proof.CheckFile(path)
		if err != nil {
			t.Fatalf("script %d: certificate failed: %v", script, err)
		}
		if rep.UnsatChecks != unsat {
			t.Fatalf("script %d: %d unsat checks in stream, want %d", script, rep.UnsatChecks, unsat)
		}
		os.Remove(path)
	}
}

// TestPortfolioAllUnknown injects an interrupter into every worker: the race
// has no winner, and the result must be worker 0's Unknown — never a made-up
// verdict.
func TestPortfolioAllUnknown(t *testing.T) {
	s := NewSolver(DefaultOptions())
	x := s.RealVar("x")
	y := s.RealVar("y")
	s.Assert(GE(NewLinExpr().TermInt(1, x), rat(0, 1)))
	s.Assert(LE(NewLinExpr().TermInt(1, x).TermInt(-1, y), rat(3, 1)))
	s.Assert(GE(NewLinExpr().TermInt(1, x).TermInt(-1, y), rat(-3, 1)))
	rp, err := s.CheckPortfolio(context.Background(), PortfolioOptions{
		Workers:      3,
		Interrupters: func(int) Interrupter { return NewCountdownInterrupter(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Status != Unknown {
		t.Fatalf("got %v, want unknown when every worker is interrupted", rp.Status)
	}
	if rp.Winner != -1 {
		t.Fatalf("winner = %d, want -1", rp.Winner)
	}
	if rp.Why == nil {
		t.Fatal("Unknown result carries no Why")
	}
	if rp.Stats.Workers != 3 {
		t.Fatalf("Stats.Workers = %d, want 3", rp.Stats.Workers)
	}
}

// TestPortfolioDefaultWorkers pins the GOMAXPROCS-aware clamp.
func TestPortfolioDefaultWorkers(t *testing.T) {
	n := DefaultWorkers()
	if n < 1 || n > maxDefaultWorkers {
		t.Fatalf("DefaultWorkers() = %d, want within [1, %d]", n, maxDefaultWorkers)
	}
	s := NewSolver(DefaultOptions())
	b := s.BoolVar("b")
	s.Assert(B(b))
	rp, err := s.CheckPortfolio(context.Background(), PortfolioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Workers != n {
		t.Fatalf("effective workers = %d, want DefaultWorkers() = %d", rp.Workers, n)
	}
	if rp.Stats.Workers != n {
		t.Fatalf("Stats.Workers = %d, want %d", rp.Stats.Workers, n)
	}
}
