package smt

import (
	"context"
	"errors"
)

// UnknownReason is the machine-readable classification of an Unknown result,
// carried in Stats so services and clients can decide whether retrying can
// possibly help without string-matching Result.Why. The split matters for a
// retry ladder: a budget-exhausted check may succeed under a larger budget or
// on a fresh encoder, while a cancelled or deadline-expired check will not —
// its caller has already given up.
type UnknownReason int8

const (
	// ReasonNone marks a result that is not Unknown (Sat or Unsat).
	ReasonNone UnknownReason = iota
	// ReasonConflictBudget: Budget.MaxConflicts was exhausted.
	ReasonConflictBudget
	// ReasonPropagationBudget: Budget.MaxPropagations was exhausted.
	ReasonPropagationBudget
	// ReasonPivotBudget: Budget.MaxPivots was exhausted.
	ReasonPivotBudget
	// ReasonWallClockBudget: Budget.MaxDuration elapsed.
	ReasonWallClockBudget
	// ReasonAllocBudget: Budget.MaxAllocBytes was exceeded.
	ReasonAllocBudget
	// ReasonCancelled: the CheckContext context was cancelled.
	ReasonCancelled
	// ReasonDeadline: the CheckContext context's deadline expired.
	ReasonDeadline
	// ReasonInterrupted: an Options.Interrupter aborted the check (fault
	// injection or an embedding-specific stop condition).
	ReasonInterrupted
	// ReasonOther covers causes the solver cannot classify — e.g. a custom
	// Interrupter error that is none of the above, or genuine theory
	// incompleteness should an incomplete theory ever be plugged in.
	ReasonOther
)

// String renders the reason as a stable machine-readable token (empty for
// ReasonNone); services expose it verbatim in API responses.
func (r UnknownReason) String() string {
	switch r {
	case ReasonNone:
		return ""
	case ReasonConflictBudget:
		return "budget-conflicts"
	case ReasonPropagationBudget:
		return "budget-propagations"
	case ReasonPivotBudget:
		return "budget-pivots"
	case ReasonWallClockBudget:
		return "budget-wall-clock"
	case ReasonAllocBudget:
		return "budget-alloc-bytes"
	case ReasonCancelled:
		return "cancelled"
	case ReasonDeadline:
		return "deadline"
	case ReasonInterrupted:
		return "interrupted"
	default:
		return "other"
	}
}

// Retryable reports whether retrying the check could plausibly produce a
// verdict: true for resource-budget exhaustion (a larger budget or a fresh
// encoder may finish) and for injected interruptions (the fault is
// environmental, not inherent to the query); false for cancellation and
// deadline expiry (the caller stopped waiting) and for unclassified causes.
func (r UnknownReason) Retryable() bool {
	switch r {
	case ReasonConflictBudget, ReasonPropagationBudget, ReasonPivotBudget,
		ReasonWallClockBudget, ReasonAllocBudget, ReasonInterrupted:
		return true
	default:
		return false
	}
}

// Budget reports whether the reason is a resource-budget exhaustion.
func (r UnknownReason) Budget() bool {
	switch r {
	case ReasonConflictBudget, ReasonPropagationBudget, ReasonPivotBudget,
		ReasonWallClockBudget, ReasonAllocBudget:
		return true
	default:
		return false
	}
}

// ClassifyUnknown maps a Result.Why error to its UnknownReason. A nil error
// maps to ReasonNone.
func ClassifyUnknown(err error) UnknownReason {
	if err == nil {
		return ReasonNone
	}
	var be *BudgetError
	switch {
	case errors.As(err, &be):
		switch be.Resource {
		case ResourceConflicts:
			return ReasonConflictBudget
		case ResourcePropagations:
			return ReasonPropagationBudget
		case ResourcePivots:
			return ReasonPivotBudget
		case ResourceWallClock:
			return ReasonWallClockBudget
		case ResourceAllocBytes:
			return ReasonAllocBudget
		}
		return ReasonOther
	case errors.Is(err, context.Canceled):
		return ReasonCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return ReasonDeadline
	case errors.Is(err, ErrInterrupted):
		return ReasonInterrupted
	default:
		return ReasonOther
	}
}
