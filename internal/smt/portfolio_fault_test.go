// Losing-worker fault injection for the portfolio race. This lives in an
// external test package because faultinject imports smt: the schedule drives
// the same smt.Interrupter hook production uses.
package smt_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"segrid/internal/faultinject"
	"segrid/internal/proof"
	"segrid/internal/smt"
)

// assertPigeonhole asserts the unsatisfiable pigeonhole principle
// (pigeons > holes): enough search that injected faults land mid-solve, with
// every worker's private certificate stream already open.
func assertPigeonhole(s *smt.Solver, pigeons, holes int) {
	vars := make([][]smt.BoolVar, pigeons)
	for i := range vars {
		vars[i] = make([]smt.BoolVar, holes)
		for j := range vars[i] {
			vars[i][j] = s.BoolVar(fmt.Sprintf("p_%d_%d", i, j))
		}
	}
	for i := 0; i < pigeons; i++ {
		fs := make([]smt.Formula, holes)
		for j := 0; j < holes; j++ {
			fs[j] = smt.B(vars[i][j])
		}
		s.Assert(smt.Or(fs...))
	}
	for j := 0; j < holes; j++ {
		fs := make([]smt.Formula, pigeons)
		for i := 0; i < pigeons; i++ {
			fs[i] = smt.B(vars[i][j])
		}
		s.AssertAtMostK(fs, 1)
	}
}

// TestPortfolioFaultCancelsLosingWorkers cancels every worker except worker 0
// mid-solve — after each has begun its private certificate stream — and
// requires the surviving worker's verdict and merged certificate to be
// untouched by the losers' torn streams.
func TestPortfolioFaultCancelsLosingWorkers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fault.proof")
	w, err := proof.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := smt.DefaultOptions()
	opts.Proof = w
	s := smt.NewSolver(opts)
	assertPigeonhole(s, 6, 5)

	res, err := s.CheckPortfolio(context.Background(), smt.PortfolioOptions{
		Workers: 4,
		Interrupters: func(worker int) smt.Interrupter {
			if worker == 0 {
				return nil
			}
			// Stagger the cancellation points so the losers die at different
			// depths of their streams.
			return faultinject.NewInjector(faultinject.Decision{
				Kind:       faultinject.Cancel,
				AfterPolls: int64(worker),
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != smt.Unsat {
		t.Fatalf("status = %v, want unsat (pigeonhole)", res.Status)
	}
	if res.Winner != 0 {
		t.Fatalf("winner = %d, want the only uninterrupted worker 0", res.Winner)
	}
	if res.Proof == nil || res.Proof.Path != path {
		t.Fatalf("merged proof handle = %+v", res.Proof)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := proof.CheckFile(path)
	if err != nil {
		t.Fatalf("winner certificate rejected after losers were cancelled mid-stream: %v", err)
	}
	if rep.UnsatChecks != 1 {
		t.Fatalf("UnsatChecks = %d, want 1", rep.UnsatChecks)
	}
}

// TestPortfolioFaultScheduleAllCancel draws a deterministic all-cancel
// schedule: with every worker faulted the race has no winner, the answer is
// Unknown, and nothing is published into the shared certificate stream.
func TestPortfolioFaultScheduleAllCancel(t *testing.T) {
	sched := faultinject.New(7, faultinject.Config{PCancel: 1, MaxAfterPolls: 4})
	dir := t.TempDir()
	path := filepath.Join(dir, "all-cancel.proof")
	w, err := proof.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := smt.DefaultOptions()
	opts.Proof = w
	s := smt.NewSolver(opts)
	assertPigeonhole(s, 6, 5)

	res, err := s.CheckPortfolio(context.Background(), smt.PortfolioOptions{
		Workers:      3,
		Interrupters: func(int) smt.Interrupter { return sched.Injector() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != smt.Unknown || res.Winner != -1 {
		t.Fatalf("all-faulted race: status %v winner %d, want unknown/-1", res.Status, res.Winner)
	}
	if res.Proof != nil {
		t.Fatalf("no worker finished, yet a proof handle was published: %+v", res.Proof)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := proof.CheckFile(path)
	if err != nil {
		t.Fatalf("shared stream must stay checkable: %v", err)
	}
	if rep.UnsatChecks != 0 {
		t.Fatalf("UnsatChecks = %d, want 0 (nothing merged)", rep.UnsatChecks)
	}
}
