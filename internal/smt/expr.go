// Package smt provides a satisfiability-modulo-theories solver for the
// quantifier-free combination of propositional logic and linear real
// arithmetic, plus cardinality constraints — the fragment the reproduced
// paper uses through Z3. It layers Tseitin CNF conversion and a
// sequential-counter cardinality encoding on the CDCL core (internal/sat)
// and integrates the simplex theory solver (internal/lra) DPLL(T)-style.
package smt

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"
)

// RealVar names a real-valued variable. Create with Solver.RealVar.
type RealVar int32

// BoolVar names a Boolean variable. Create with Solver.BoolVar.
type BoolVar int32

// LinExpr is a linear expression Σ coeff·var over real variables. The zero
// value is the empty sum; build terms with AddTerm/AddExpr.
type LinExpr struct {
	coeffs map[RealVar]*big.Rat
}

// NewLinExpr returns an empty linear expression.
func NewLinExpr() *LinExpr {
	return &LinExpr{coeffs: make(map[RealVar]*big.Rat)}
}

// Term adds coeff·v to the expression and returns it for chaining.
func (e *LinExpr) Term(coeff *big.Rat, v RealVar) *LinExpr {
	if coeff.Sign() == 0 {
		return e
	}
	if old, ok := e.coeffs[v]; ok {
		sum := new(big.Rat).Add(old, coeff)
		if sum.Sign() == 0 {
			delete(e.coeffs, v)
		} else {
			e.coeffs[v] = sum
		}
		return e
	}
	e.coeffs[v] = new(big.Rat).Set(coeff)
	return e
}

// TermInt adds coeff·v with an integer coefficient.
func (e *LinExpr) TermInt(coeff int64, v RealVar) *LinExpr {
	return e.Term(big.NewRat(coeff, 1), v)
}

// AddExpr adds coeff·other to the expression and returns it for chaining.
func (e *LinExpr) AddExpr(coeff *big.Rat, other *LinExpr) *LinExpr {
	for v, c := range other.coeffs {
		e.Term(new(big.Rat).Mul(coeff, c), v)
	}
	return e
}

// Clone returns an independent copy.
func (e *LinExpr) Clone() *LinExpr {
	out := NewLinExpr()
	for v, c := range e.coeffs {
		out.coeffs[v] = new(big.Rat).Set(c)
	}
	return out
}

// IsEmpty reports whether the expression has no terms (is identically 0).
func (e *LinExpr) IsEmpty() bool { return len(e.coeffs) == 0 }

// Vars returns the variables of the expression in ascending order.
func (e *LinExpr) Vars() []RealVar {
	out := make([]RealVar, 0, len(e.coeffs))
	for v := range e.coeffs {
		out = append(out, v)
	}
	// Insertion sort: expressions are short and this avoids the reflection
	// cost of sort.Slice in the encoder's hot path.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Coeff returns the coefficient of v (zero if absent). The result must not
// be mutated.
func (e *LinExpr) Coeff(v RealVar) *big.Rat {
	if c, ok := e.coeffs[v]; ok {
		return c
	}
	return new(big.Rat)
}

// Eval evaluates the expression under the given assignment; missing
// variables count as 0.
func (e *LinExpr) Eval(assign map[RealVar]*big.Rat) *big.Rat {
	sum := new(big.Rat)
	for v, c := range e.coeffs {
		if val, ok := assign[v]; ok {
			sum.Add(sum, new(big.Rat).Mul(c, val))
		}
	}
	return sum
}

// String renders the expression deterministically, e.g. "2·x1 − 1/3·x4".
func (e *LinExpr) String() string {
	vars := e.Vars()
	if len(vars) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, v := range vars {
		c := e.coeffs[v]
		if i > 0 {
			if c.Sign() < 0 {
				b.WriteString(" - ")
				c = new(big.Rat).Neg(c)
			} else {
				b.WriteString(" + ")
			}
		}
		if c.Cmp(big.NewRat(1, 1)) == 0 {
			fmt.Fprintf(&b, "x%d", v)
		} else {
			fmt.Fprintf(&b, "%s·x%d", c.RatString(), v)
		}
	}
	return b.String()
}

// ratOne is the shared canonical leading coefficient. Read-only.
var ratOne = big.NewRat(1, 1)

// normTerms returns the canonical form of the expression — scaled so the
// smallest-indexed variable has coefficient 1 — as parallel (vars, ratios)
// slices together with the scale factor f such that e = f·canonical. The key
// is a deterministic string used to share simplex slack variables between
// atoms over the same hyperplane. The receiver is not modified; factor
// aliases a receiver coefficient and ratios[0] a shared constant, so callers
// must treat both as read-only.
func (e *LinExpr) normTerms() (vars []RealVar, ratios []*big.Rat, factor *big.Rat, key string) {
	vars = e.Vars()
	if len(vars) == 0 {
		return nil, nil, ratOne, ""
	}
	lead := e.coeffs[vars[0]]
	inv := new(big.Rat).Inv(lead)
	ratios = make([]*big.Rat, len(vars))
	buf := make([]byte, 0, 16*len(vars))
	for i, v := range vars {
		c := ratOne
		if i > 0 {
			c = new(big.Rat).Mul(e.coeffs[v], inv)
		}
		ratios[i] = c
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, ':')
		buf = append(buf, c.RatString()...)
		buf = append(buf, ';')
	}
	return vars, ratios, lead, string(buf)
}
