// Package smt provides a satisfiability-modulo-theories solver for the
// quantifier-free combination of propositional logic and linear real
// arithmetic, plus cardinality constraints — the fragment the reproduced
// paper uses through Z3. It layers Tseitin CNF conversion and a
// sequential-counter cardinality encoding on the CDCL core (internal/sat)
// and integrates the simplex theory solver (internal/lra) DPLL(T)-style.
package smt

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// RealVar names a real-valued variable. Create with Solver.RealVar.
type RealVar int32

// BoolVar names a Boolean variable. Create with Solver.BoolVar.
type BoolVar int32

// LinExpr is a linear expression Σ coeff·var over real variables. The zero
// value is the empty sum; build terms with AddTerm/AddExpr.
type LinExpr struct {
	coeffs map[RealVar]*big.Rat
}

// NewLinExpr returns an empty linear expression.
func NewLinExpr() *LinExpr {
	return &LinExpr{coeffs: make(map[RealVar]*big.Rat)}
}

// Term adds coeff·v to the expression and returns it for chaining.
func (e *LinExpr) Term(coeff *big.Rat, v RealVar) *LinExpr {
	if coeff.Sign() == 0 {
		return e
	}
	if old, ok := e.coeffs[v]; ok {
		sum := new(big.Rat).Add(old, coeff)
		if sum.Sign() == 0 {
			delete(e.coeffs, v)
		} else {
			e.coeffs[v] = sum
		}
		return e
	}
	e.coeffs[v] = new(big.Rat).Set(coeff)
	return e
}

// TermInt adds coeff·v with an integer coefficient.
func (e *LinExpr) TermInt(coeff int64, v RealVar) *LinExpr {
	return e.Term(big.NewRat(coeff, 1), v)
}

// AddExpr adds coeff·other to the expression and returns it for chaining.
func (e *LinExpr) AddExpr(coeff *big.Rat, other *LinExpr) *LinExpr {
	for v, c := range other.coeffs {
		e.Term(new(big.Rat).Mul(coeff, c), v)
	}
	return e
}

// Clone returns an independent copy.
func (e *LinExpr) Clone() *LinExpr {
	out := NewLinExpr()
	for v, c := range e.coeffs {
		out.coeffs[v] = new(big.Rat).Set(c)
	}
	return out
}

// IsEmpty reports whether the expression has no terms (is identically 0).
func (e *LinExpr) IsEmpty() bool { return len(e.coeffs) == 0 }

// Vars returns the variables of the expression in ascending order.
func (e *LinExpr) Vars() []RealVar {
	out := make([]RealVar, 0, len(e.coeffs))
	for v := range e.coeffs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Coeff returns the coefficient of v (zero if absent). The result must not
// be mutated.
func (e *LinExpr) Coeff(v RealVar) *big.Rat {
	if c, ok := e.coeffs[v]; ok {
		return c
	}
	return new(big.Rat)
}

// Eval evaluates the expression under the given assignment; missing
// variables count as 0.
func (e *LinExpr) Eval(assign map[RealVar]*big.Rat) *big.Rat {
	sum := new(big.Rat)
	for v, c := range e.coeffs {
		if val, ok := assign[v]; ok {
			sum.Add(sum, new(big.Rat).Mul(c, val))
		}
	}
	return sum
}

// String renders the expression deterministically, e.g. "2·x1 − 1/3·x4".
func (e *LinExpr) String() string {
	vars := e.Vars()
	if len(vars) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, v := range vars {
		c := e.coeffs[v]
		if i > 0 {
			if c.Sign() < 0 {
				b.WriteString(" - ")
				c = new(big.Rat).Neg(c)
			} else {
				b.WriteString(" + ")
			}
		}
		if c.Cmp(big.NewRat(1, 1)) == 0 {
			fmt.Fprintf(&b, "x%d", v)
		} else {
			fmt.Fprintf(&b, "%s·x%d", c.RatString(), v)
		}
	}
	return b.String()
}

// normalize returns the canonical form of the expression — scaled so the
// smallest-indexed variable has coefficient 1 — together with the applied
// scale factor f such that e = f·canonical. The canonical key is a
// deterministic string used to share simplex slack variables between atoms
// over the same hyperplane. The receiver is not modified.
func (e *LinExpr) normalize() (canon *LinExpr, factor *big.Rat, key string) {
	vars := e.Vars()
	if len(vars) == 0 {
		return NewLinExpr(), big.NewRat(1, 1), ""
	}
	lead := e.coeffs[vars[0]]
	factor = new(big.Rat).Set(lead)
	inv := new(big.Rat).Inv(lead)
	canon = NewLinExpr()
	var b strings.Builder
	for _, v := range vars {
		c := new(big.Rat).Mul(e.coeffs[v], inv)
		canon.coeffs[v] = c
		fmt.Fprintf(&b, "%d:%s;", v, c.RatString())
	}
	return canon, factor, b.String()
}
