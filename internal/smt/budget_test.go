package smt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// assertPigeonhole asserts PHP(holes+1, holes), a conflict-rich Boolean
// core for interruption tests.
func assertPigeonhole(s *Solver, holes int) {
	pigeons := holes + 1
	vs := make([][]BoolVar, pigeons)
	for p := range vs {
		vs[p] = make([]BoolVar, holes)
		for h := range vs[p] {
			vs[p][h] = s.BoolVar(fmt.Sprintf("p%d_h%d", p, h))
		}
	}
	for p := 0; p < pigeons; p++ {
		fs := make([]Formula, holes)
		for h := 0; h < holes; h++ {
			fs[h] = B(vs[p][h])
		}
		s.Assert(Or(fs...))
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.Assert(Or(Not(B(vs[p1][h])), Not(B(vs[p2][h]))))
			}
		}
	}
}

// assertChain asserts the pivot-hungry arithmetic chain x_{i+1} = x_i + 1
// with bounded endpoints, forcing simplex work at theory-check time.
func assertChain(s *Solver, n int) {
	xs := make([]RealVar, n)
	for i := range xs {
		xs[i] = s.RealVar(fmt.Sprintf("x%d", i))
	}
	for i := 0; i+1 < n; i++ {
		e := NewLinExpr().TermInt(1, xs[i+1]).TermInt(-1, xs[i])
		s.Assert(Eq(e, rat(1, 1)))
	}
	s.Assert(GE(NewLinExpr().TermInt(1, xs[0]), rat(0, 1)))
	s.Assert(LE(NewLinExpr().TermInt(1, xs[n-1]), rat(1000, 1)))
}

// checkNoGoroutineLeak asserts the goroutine count settles back to the
// pre-check level: cancellation is poll-based and must not spawn watchers.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

// TestBudgetInterrupterPoints drives the deterministic fault-injection hook
// through every interruption point — mid-encoding, mid-CDCL, mid-simplex —
// asserting the Unknown contract, valid partial Stats, no goroutine leaks,
// and that the solver stays usable for a clean re-check afterwards.
func TestBudgetInterrupterPoints(t *testing.T) {
	cases := []struct {
		name          string
		point         string
		countdown     int64
		wantConflicts bool // interruption must land mid-search
	}{
		{"mid-encoding", PointEncode, 2, false},
		{"mid-cdcl", PointCDCL, 20, true},
		{"mid-simplex", PointSimplex, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			s := NewSolver(DefaultOptions())
			assertPigeonhole(s, 7)
			assertChain(s, 20)
			ci := NewCountdownInterrupter(tc.countdown)
			ci.Point = tc.point
			s.SetInterrupter(ci)

			res, err := s.Check()
			if err != nil {
				t.Fatalf("interruption must not be an error, got %v", err)
			}
			if res.Status != Unknown {
				t.Fatalf("Status = %v, want Unknown", res.Status)
			}
			if !errors.Is(res.Why, ErrInterrupted) {
				t.Fatalf("Why = %v, want ErrInterrupted", res.Why)
			}
			if !ci.Fired() {
				t.Fatalf("interrupter reports not fired after Unknown")
			}
			if res.Stats.BoolVars == 0 {
				t.Fatalf("partial Stats lost the model size: %+v", res.Stats)
			}
			if res.Stats.Duration <= 0 {
				t.Fatalf("partial Stats carry no duration: %+v", res.Stats)
			}
			if tc.wantConflicts && res.Stats.Conflicts == 0 {
				t.Fatalf("expected a mid-search interrupt, Stats = %+v", res.Stats)
			}
			if tc.point == PointEncode && res.Stats.Conflicts != 0 {
				t.Fatalf("encode-point interrupt reached the search: %+v", res.Stats)
			}
			checkNoGoroutineLeak(t, before)

			// The solver must remain usable: clear the hook and decide.
			s.SetInterrupter(nil)
			res, err = s.Check()
			if err != nil {
				t.Fatalf("re-check after interrupt: %v", err)
			}
			if res.Status != Unsat {
				t.Fatalf("re-check Status = %v, want Unsat (PHP is unsat)", res.Status)
			}
		})
	}
}

// TestBudgetExpiredContext checks an already-cancelled context aborts the
// check immediately — before the search — with the Unknown contract.
func TestBudgetExpiredContext(t *testing.T) {
	before := runtime.NumGoroutine()
	s := NewSolver(DefaultOptions())
	assertPigeonhole(s, 8)
	assertChain(s, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	res, err := s.CheckContext(ctx)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancellation must not be an error, got %v", err)
	}
	if res.Status != Unknown {
		t.Fatalf("Status = %v, want Unknown", res.Status)
	}
	if !errors.Is(res.Why, context.Canceled) {
		t.Fatalf("Why = %v, want context.Canceled", res.Why)
	}
	if elapsed > time.Second {
		t.Fatalf("expired context took %s to abort, want well under 1s", elapsed)
	}
	checkNoGoroutineLeak(t, before)
}

// TestBudgetWallClock checks the MaxDuration budget fires as a wall-clock
// BudgetError instead of hanging.
func TestBudgetWallClock(t *testing.T) {
	s := NewSolver(DefaultOptions())
	assertPigeonhole(s, 8)
	s.SetBudget(Budget{MaxDuration: time.Nanosecond})
	res, err := s.Check()
	if err != nil {
		t.Fatalf("wall-clock exhaustion must not be an error, got %v", err)
	}
	if res.Status != Unknown {
		t.Fatalf("Status = %v, want Unknown", res.Status)
	}
	var be *BudgetError
	if !errors.As(res.Why, &be) || be.Resource != ResourceWallClock {
		t.Fatalf("Why = %v, want wall-clock BudgetError", res.Why)
	}
}

// TestBudgetPivots checks the pivot budget surfaces as a pivots BudgetError
// with partial stats at the cap.
func TestBudgetPivots(t *testing.T) {
	s := NewSolver(DefaultOptions())
	assertChain(s, 40)
	s.SetBudget(Budget{MaxPivots: 2})
	res, err := s.Check()
	if err != nil {
		t.Fatalf("pivot exhaustion must not be an error, got %v", err)
	}
	if res.Status != Unknown {
		t.Fatalf("Status = %v, want Unknown", res.Status)
	}
	var be *BudgetError
	if !errors.As(res.Why, &be) || be.Resource != ResourcePivots {
		t.Fatalf("Why = %v, want pivots BudgetError", res.Why)
	}
	if res.Stats.Pivots < 2 {
		t.Fatalf("Stats.Pivots = %d, want >= budget 2", res.Stats.Pivots)
	}
}

// TestBudgetScaleSaturates exercises the escalation arithmetic: finite
// bounds grow, unlimited bounds stay unlimited, overflow saturates.
func TestBudgetScaleSaturates(t *testing.T) {
	b := Budget{MaxConflicts: 100, MaxPivots: 1 << 61, MaxDuration: time.Second}
	s := b.Scale(4)
	if s.MaxConflicts != 400 {
		t.Fatalf("MaxConflicts = %d, want 400", s.MaxConflicts)
	}
	if s.MaxPivots != 1<<63-1 {
		t.Fatalf("MaxPivots = %d, want saturation at MaxInt64", s.MaxPivots)
	}
	if s.MaxDuration != 4*time.Second {
		t.Fatalf("MaxDuration = %v, want 4s", s.MaxDuration)
	}
	if s.MaxPropagations != 0 {
		t.Fatalf("MaxPropagations = %d, want still unlimited", s.MaxPropagations)
	}
	if b.IsZero() || (Budget{}).IsZero() != true {
		t.Fatalf("IsZero misclassifies budgets")
	}
}
