package smt

import (
	"bytes"
	"context"
	"runtime"
	"sync"

	"segrid/internal/proof"
	"segrid/internal/sat"
)

// DefaultWorkers returns the default parallel worker count: GOMAXPROCS at
// call time, clamped to [1, maxDefaultWorkers]. Portfolio diversification
// stops paying for itself well before the clamp on the workloads this stack
// serves, and an unclamped default on a large host would mostly burn budget.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > maxDefaultWorkers {
		n = maxDefaultWorkers
	}
	return n
}

const maxDefaultWorkers = 8

// PortfolioOptions configure one CheckPortfolio call.
type PortfolioOptions struct {
	// Workers is the number of diversified solver instances racing on the
	// query; ≤ 0 selects DefaultWorkers().
	Workers int
	// DisableSharing turns off learnt-clause exchange between the workers,
	// leaving a pure diversification race (ablation knob).
	DisableSharing bool
	// ExchangeCap bounds the clause-exchange ring; ≤ 0 selects the sat
	// package default.
	ExchangeCap int
	// Interrupters, if non-nil, supplies a fault-injection hook per worker
	// index. A single Interrupter cannot be shared: the hook is stateful and
	// polled concurrently from every worker.
	Interrupters func(worker int) Interrupter
	// Spawn, if non-nil, runs the racing worker tasks instead of the default
	// one-goroutine-per-task fan-out, and must execute every task exactly
	// once, concurrently or not, returning only when all have finished. It
	// is how a service-level scheduler turns portfolio workers into shared,
	// fairly-ordered work units; tasks are independent and safe to run on
	// any goroutine. nil keeps the private-fleet behavior.
	Spawn func(tasks []func())
}

// PortfolioResult is the outcome of a portfolio race: the winning worker's
// Result plus per-worker accounting.
type PortfolioResult struct {
	*Result
	// Winner is the index of the worker whose answer was published, or -1
	// when no worker reached a definitive answer.
	Winner int
	// Workers is the effective worker count (also mirrored in Stats.Workers).
	Workers int
	// PerWorker holds each worker's Stats snapshot, indexed by worker.
	PerWorker []Stats
}

// workerTuning diversifies worker i. Worker 0 always runs the zero Tuning —
// the sequential solver's exact configuration — so the portfolio's answer set
// always includes the answer a non-portfolio run would have produced.
func workerTuning(i int) sat.Tuning {
	seed := splitmix64(uint64(i))
	switch i % 4 {
	case 1:
		return sat.Tuning{Phase: sat.PhaseTrue, Seed: seed}
	case 2:
		return sat.Tuning{Phase: sat.PhaseRandom, Seed: seed, Restart: sat.RestartGeometric}
	case 3:
		return sat.Tuning{Phase: sat.PhaseRandom, Seed: seed, Restart: sat.RestartGeometric, RestartUnit: 256, RestartGrowth: 2}
	default:
		if i == 0 {
			return sat.Tuning{}
		}
		return sat.Tuning{Phase: sat.PhaseRandom, Seed: seed, RestartUnit: 64}
	}
}

// splitmix64 is the SplitMix64 mixing function; it turns small worker
// indices into well-spread seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4b9fe
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// forkForPortfolio builds a worker-private Solver over the shared assertion
// stack. Formula trees, names and the per-scope assertion slices are shared
// read-only; every mutable part — scope progress counters, selector
// literals, the encoder with its SAT instance and simplex — is fresh, so
// workers never touch common state. The fork encodes from scratch on its
// first Check.
func (s *Solver) forkForPortfolio(tuning sat.Tuning, port *sat.ExchangePort, pw *proof.Writer, intr Interrupter) *Solver {
	f := &Solver{
		opts:      s.opts,
		boolNames: s.boolNames,
		realNames: s.realNames,
		tuning:    tuning,
		exPort:    port,
	}
	f.opts.Proof = pw
	f.opts.Interrupter = intr
	f.opts.FreshPerCheck = false
	f.scopes = make([]*scope, len(s.scopes))
	for i, sc := range s.scopes {
		f.scopes[i] = &scope{asserts: sc.asserts, cards: sc.cards, sel: sat.LitUndef}
	}
	return f
}

// CheckPortfolio solves the current assertion stack with a portfolio of
// diversified solver instances racing under ctx: distinct seeds, phase
// policies and restart schedules per worker (worker 0 keeps the sequential
// configuration), with one-way sharing of short learnt clauses through a
// lock-light exchange unless disabled. The first definitive answer (Sat or
// Unsat) cancels the remaining workers; when every worker ends Unknown,
// worker 0's result is returned so the failure mode matches a sequential
// run.
//
// The verdict is deterministic — every worker solves the same formula, so
// all definitive answers agree — but which worker's model or certificate is
// published is first-past-the-post. With Options.Proof configured, each
// worker logs to a private in-memory stream; an Unsat winner's segment is
// re-anchored onto the configured writer (proof.AppendSegment), so the
// published certificate is exactly as checkable as a sequential one.
//
// The owner's persistent encoder is left untouched except when a proof
// segment is appended, which resets it (the next sequential Check re-encodes
// into a fresh certificate segment). Per-worker budgets follow Options.Budget
// independently; wall-clock deadlines race in real time.
func (s *Solver) CheckPortfolio(ctx context.Context, po PortfolioOptions) (*PortfolioResult, error) {
	workers := po.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}

	var ex *sat.Exchange
	if !po.DisableSharing && workers > 1 {
		ex = sat.NewExchange(po.ExchangeCap)
	}

	type workerOut struct {
		res *Result
		err error
	}
	forks := make([]*Solver, workers)
	bufs := make([]*bytes.Buffer, workers)
	outs := make([]workerOut, workers)
	for i := 0; i < workers; i++ {
		var port *sat.ExchangePort
		if ex != nil {
			port = ex.Port()
		}
		var pw *proof.Writer
		if s.opts.Proof != nil {
			bufs[i] = &bytes.Buffer{}
			pw = proof.NewWriter(bufs[i])
		}
		var intr Interrupter
		if po.Interrupters != nil {
			intr = po.Interrupters(i)
		}
		forks[i] = s.forkForPortfolio(workerTuning(i), port, pw, intr)
	}

	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	winnerCh := make(chan int, workers)
	tasks := make([]func(), workers)
	for i := 0; i < workers; i++ {
		i := i
		tasks[i] = func() {
			res, err := forks[i].CheckContext(raceCtx)
			outs[i] = workerOut{res: res, err: err}
			if err == nil && res.Status != Unknown {
				winnerCh <- i // buffered: never blocks
				cancel()
			}
		}
	}
	if po.Spawn != nil {
		po.Spawn(tasks)
	} else {
		var wg sync.WaitGroup
		for _, task := range tasks {
			wg.Add(1)
			go func(task func()) {
				defer wg.Done()
				task()
			}(task)
		}
		wg.Wait()
	}

	winner := -1
	select {
	case winner = <-winnerCh:
	default:
	}

	pr := &PortfolioResult{Winner: winner, Workers: workers, PerWorker: make([]Stats, workers)}
	for i, out := range outs {
		if out.res != nil {
			pr.PerWorker[i] = out.res.Stats
		}
	}

	pick := winner
	if pick < 0 {
		pick = 0
	}
	if out := outs[pick]; out.err != nil {
		// Malformed input: every worker saw the same formulas, so worker 0's
		// error speaks for all.
		return nil, out.err
	}
	pr.Result = outs[pick].res
	pr.Result.Stats.Workers = workers

	if w := s.opts.Proof; w != nil && winner >= 0 && pr.Result.Status == Unsat {
		// Close the winner's in-memory stream (flushing it), then re-anchor
		// its segment onto the configured writer. The owner's persistent
		// encoder — if any — logged into the previous segment; reset it so
		// the next sequential check opens a fresh one instead of continuing
		// a database the appended segment reset.
		pr.Result.Proof = nil
		if err := forks[winner].opts.Proof.Close(); err == nil {
			if check, err := w.AppendSegment(bytes.NewReader(bufs[winner].Bytes())); err == nil {
				pr.Result.Proof = &proof.Handle{Path: w.Path(), Check: check}
			}
		}
		s.resetEncoding()
	} else if pr.Result.Proof != nil {
		// A worker's Proof handle points into its private buffer; it is
		// meaningless outside this call unless re-anchored above.
		pr.Result.Proof = nil
	}

	s.lastStats = pr.Result.Stats
	return pr, nil
}
