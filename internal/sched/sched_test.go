package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gate occupies the scheduler's single worker so tests can stage queues with
// a deterministic ring state, then release the worker to observe pick order.
type gate struct {
	flow    *Flow
	release chan struct{}
}

func openGate(t *testing.T, s *Scheduler) *gate {
	t.Helper()
	g := &gate{flow: s.NewFlow(1), release: make(chan struct{})}
	if err := g.flow.Submit(1, func() { <-g.release }); err != nil {
		t.Fatalf("gate submit: %v", err)
	}
	select {
	case <-g.flow.Started():
	case <-time.After(5 * time.Second):
		t.Fatal("gate unit never started")
	}
	return g
}

// order collects unit completion labels under a mutex.
type order struct {
	mu  sync.Mutex
	got []string
}

func (o *order) add(label string) func() {
	return func() {
		o.mu.Lock()
		o.got = append(o.got, label)
		o.mu.Unlock()
	}
}

func TestSchedEqualWeightsAlternate(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	g := openGate(t, s)

	var o order
	a := s.NewFlow(1)
	b := s.NewFlow(1)
	for i := 0; i < 3; i++ {
		if err := a.Submit(1, o.add("a")); err != nil {
			t.Fatal(err)
		}
		if err := b.Submit(1, o.add("b")); err != nil {
			t.Fatal(err)
		}
	}
	close(g.release)
	a.Wait()
	b.Wait()

	want := []string{"a", "b", "a", "b", "a", "b"}
	if fmt.Sprint(o.got) != fmt.Sprint(want) {
		t.Fatalf("equal-weight order = %v, want %v", o.got, want)
	}
}

func TestSchedWeightsProportional(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	g := openGate(t, s)

	var o order
	a := s.NewFlow(1)
	b := s.NewFlow(3)
	for i := 0; i < 8; i++ {
		if err := a.Submit(1, o.add("a")); err != nil {
			t.Fatal(err)
		}
		if err := b.Submit(1, o.add("b")); err != nil {
			t.Fatal(err)
		}
	}
	close(g.release)
	a.Wait()
	b.Wait()

	// Among the first half of completions the weight-3 flow must have been
	// served strictly more often than the weight-1 flow.
	na, nb := 0, 0
	for _, l := range o.got[:8] {
		if l == "a" {
			na++
		} else {
			nb++
		}
	}
	if nb <= na {
		t.Fatalf("first 8 served: a=%d b=%d (order %v); weight-3 flow should dominate", na, nb, o.got)
	}
}

func TestSchedBigUnitWaitsForCredit(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	g := openGate(t, s)

	var o order
	big := s.NewFlow(1)
	small := s.NewFlow(1)
	if err := big.Submit(10, o.add("big")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := small.Submit(1, o.add("small")); err != nil {
			t.Fatal(err)
		}
	}
	close(g.release)
	big.Wait()
	small.Wait()

	// The cost-10 unit must accumulate ten rounds of credit, so every
	// cost-1 unit of the competing flow lands first: small requests are not
	// blocked behind a large one.
	if o.got[len(o.got)-1] != "big" {
		t.Fatalf("big unit did not run last: %v", o.got)
	}
}

func TestSchedAbortBeforeStart(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	g := openGate(t, s)

	ran := atomic.Int32{}
	f := s.NewFlow(1)
	for i := 0; i < 3; i++ {
		if err := f.Submit(1, func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	if !f.Abort() {
		t.Fatal("abort of never-started flow must win")
	}
	if err := f.Submit(1, func() {}); err != ErrAborted {
		t.Fatalf("submit after abort = %v, want ErrAborted", err)
	}
	f.Wait() // must return immediately: pending was rolled back
	close(g.release)
	g.flow.Wait()
	if n := ran.Load(); n != 0 {
		t.Fatalf("aborted units ran %d times", n)
	}
	if st := s.Stats(); st.UnitsAborted != 3 {
		t.Fatalf("UnitsAborted = %d, want 3", st.UnitsAborted)
	}
}

func TestSchedAbortAfterStartLoses(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	f := s.NewFlow(1)
	release := make(chan struct{})
	if err := f.Submit(1, func() { <-release }); err != nil {
		t.Fatal(err)
	}
	<-f.Started()
	if f.Abort() {
		t.Fatal("abort after start must lose")
	}
	close(release)
	f.Wait()
}

func TestSchedTryRunQueuedInline(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	g := openGate(t, s)
	defer close(g.release)

	ran := atomic.Int32{}
	f := s.NewFlow(1)
	for i := 0; i < 3; i++ {
		if err := f.Submit(1, func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	// The worker is gated, yet the flow's own goroutine drains its queue.
	for i := 0; i < 3; i++ {
		if !f.TryRunQueued() {
			t.Fatalf("TryRunQueued #%d = false with units queued", i)
		}
	}
	if f.TryRunQueued() {
		t.Fatal("TryRunQueued on empty queue = true")
	}
	f.Wait()
	if n := ran.Load(); n != 3 {
		t.Fatalf("inline units ran %d times, want 3", n)
	}
	if st := s.Stats(); st.UnitsInline != 3 {
		t.Fatalf("UnitsInline = %d, want 3", st.UnitsInline)
	}
}

func TestSchedCloseDrainsQueued(t *testing.T) {
	s := New(Config{Workers: 2})
	ran := atomic.Int32{}
	f := s.NewFlow(1)
	for i := 0; i < 20; i++ {
		if err := f.Submit(1, func() {
			time.Sleep(time.Millisecond)
			ran.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if n := ran.Load(); n != 20 {
		t.Fatalf("close drained %d/20 units", n)
	}
	if err := f.Submit(1, func() {}); err != ErrClosed {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	if st := s.Stats(); st.Queued != 0 || st.Running != 0 || st.UnitsRun != 20 {
		t.Fatalf("stats after close = %+v", st)
	}
}

// TestSchedStressExactlyOnce hammers the scheduler from many goroutines
// (submit, inline help, abort races) and checks every unit ran exactly once
// and the ledger settles. Run under -race in CI.
func TestSchedStressExactlyOnce(t *testing.T) {
	s := New(Config{Workers: 4})

	const flows = 24
	const unitsPer = 16
	counts := make([]atomic.Int32, flows*unitsPer)
	var submitted, aborted atomic.Int64

	var wg sync.WaitGroup
	for fi := 0; fi < flows; fi++ {
		wg.Add(1)
		go func(fi int) {
			defer wg.Done()
			f := s.NewFlow(1 + fi%3)
			for u := 0; u < unitsPer; u++ {
				idx := fi*unitsPer + u
				if err := f.Submit(1+u%4, func() { counts[idx].Add(1) }); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				submitted.Add(1)
			}
			switch fi % 3 {
			case 0:
				f.Wait()
			case 1:
				// Inline help then wait, as a portfolio orchestrator would.
				for f.TryRunQueued() {
				}
				f.Wait()
			case 2:
				// Race an abort against the workers; either outcome must
				// keep the exactly-once ledger.
				if f.Abort() {
					aborted.Add(int64(unitsPer))
				} else {
					f.Wait()
				}
			}
		}(fi)
	}
	wg.Wait()
	s.Close()

	var ran int64
	for i := range counts {
		n := int64(counts[i].Load())
		if n > 1 {
			t.Fatalf("unit %d ran %d times", i, n)
		}
		ran += n
	}
	st := s.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("gauges nonzero after close: %+v", st)
	}
	if got, want := int64(st.UnitsRun), submitted.Load()-int64(st.UnitsAborted); got != want {
		t.Fatalf("UnitsRun = %d, want submitted-aborted = %d", got, want)
	}
	if ran != int64(st.UnitsRun) {
		t.Fatalf("units actually run %d != UnitsRun %d", ran, st.UnitsRun)
	}
	// Abort removes whole queues only when it wins before any start; our
	// per-flow accounting allows partial overlap with worker pops, so only
	// the aggregate is asserted: aborted counter is an upper bound recorded
	// by flows that won their abort race.
	if int64(st.UnitsAborted) > aborted.Load() {
		t.Fatalf("UnitsAborted %d exceeds winning aborts %d", st.UnitsAborted, aborted.Load())
	}
}
