// Package sched is the analytics service's work-unit scheduler: a fixed set
// of worker goroutines draining schedulable units with deficit-round-robin
// (DRR) fairness across flows.
//
// The service decomposes each request into units on one Flow — a verify is a
// single unit, a sweep one unit per encoder-compatibility group, a portfolio
// race one unit per racing fork — and the scheduler interleaves units from
// different flows instead of letting one large request monopolize the solver
// workers. Costs express relative unit sizes (a sweep group unit costs its
// item count); weights express a flow's service share per round (a portfolio
// flow weighs its worker count, so its forks drain at fleet speed without a
// private fleet).
//
// DRR, concretely: active flows (those with queued units) are visited in a
// round-robin ring. Each visit that cannot serve the flow's head unit earns
// the flow Quantum×weight deficit credit; a flow whose credit covers its head
// unit's cost is served and charged. A flow's credit resets when its queue
// empties, so idle flows accumulate no priority. Every full pass strictly
// grows each unserved flow's credit, so a pick terminates in at most
// max-unit-cost passes and no flow starves.
//
// Units run to completion on a worker; the scheduler never preempts. A
// goroutine already running a unit may additionally drain its own flow's
// queued units inline with TryRunQueued — how a portfolio orchestrator
// guarantees its forks progress even when every worker is busy orchestrating
// (the waiting worker does the work itself instead of idling, so fan-out
// units can never deadlock the fixed worker set).
package sched

import (
	"errors"
	"sync"
)

// ErrClosed is returned by Submit after Close: the scheduler is draining and
// accepts no new units.
var ErrClosed = errors.New("sched: scheduler closed")

// ErrAborted is returned by Submit on a flow that was Abort()ed.
var ErrAborted = errors.New("sched: flow aborted")

// Config parameterizes a Scheduler. The zero value is usable; defaults are
// applied by New.
type Config struct {
	// Workers is the number of goroutines draining units (default 4). It is
	// the scheduler-layer concurrency bound: at most Workers units execute on
	// scheduler goroutines at once (inline helpers run on the worker slot
	// they already occupy, so they do not add concurrency).
	Workers int

	// Quantum is the deficit credit a flow earns per round-robin visit,
	// multiplied by the flow's weight (default 1). Larger quanta serve
	// bursts; 1 gives the finest interleaving.
	Quantum int
}

// Stats snapshots scheduler counters and gauges.
type Stats struct {
	// FlowsOpened counts NewFlow calls.
	FlowsOpened uint64
	// UnitsRun counts units run to completion, workers and inline combined.
	UnitsRun uint64
	// UnitsInline is the subset of UnitsRun executed via TryRunQueued.
	UnitsInline uint64
	// UnitsAborted counts queued units removed by Flow.Abort before running.
	UnitsAborted uint64
	// Queued and Running are gauges: units waiting in flow queues and units
	// currently executing.
	Queued  int
	Running int
}

// unit is one schedulable piece of work.
type unit struct {
	cost int
	fn   func()
}

// Flow is one request's ordered stream of units, the unit of DRR fairness.
// Flows are created with Scheduler.NewFlow and need no explicit teardown: a
// flow occupies scheduler state only while it has queued units.
type Flow struct {
	s      *Scheduler
	weight int

	// All fields below are guarded by s.mu.
	queue    []unit
	deficit  int
	pending  int // queued + running units
	inActive bool
	started  bool
	aborted  bool
	startCh  chan struct{} // closed when the flow's first unit starts
}

// Scheduler drains flows' units with a fixed worker set. Construct with New;
// all methods are safe for concurrent use.
type Scheduler struct {
	cfg Config

	mu     sync.Mutex
	cond   *sync.Cond
	active []*Flow // flows with queued units, round-robin ring
	next   int     // ring position of the next visit
	closed bool

	queued  int
	running int
	stats   Stats
	wg      sync.WaitGroup
}

// New constructs a Scheduler and starts its workers.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 1
	}
	s := &Scheduler{cfg: cfg}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// NewFlow opens a flow with the given service weight (values below 1 are
// clamped to 1). Weight multiplies the flow's per-round deficit credit: a
// weight-3 flow drains roughly three times faster than a weight-1 flow under
// contention.
func (s *Scheduler) NewFlow(weight int) *Flow {
	if weight < 1 {
		weight = 1
	}
	f := &Flow{s: s, weight: weight, startCh: make(chan struct{})}
	s.mu.Lock()
	s.stats.FlowsOpened++
	s.mu.Unlock()
	return f
}

// Close stops the scheduler: units already queued still run (the shutdown
// drains, it never abandons accepted work), Submit refuses new units with
// ErrClosed, and Close returns once every worker has exited.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats snapshots the scheduler counters and gauges.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = s.queued
	st.Running = s.running
	return st
}

// Submit enqueues one unit on the flow. Cost expresses the unit's relative
// size for DRR accounting (values below 1 are clamped to 1); fn runs to
// completion on a scheduler worker (or inline via TryRunQueued). Submit
// never blocks on the workers.
func (f *Flow) Submit(cost int, fn func()) error {
	if fn == nil {
		return errors.New("sched: nil unit")
	}
	if cost < 1 {
		cost = 1
	}
	s := f.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if f.aborted {
		return ErrAborted
	}
	f.queue = append(f.queue, unit{cost: cost, fn: fn})
	f.pending++
	s.queued++
	if !f.inActive {
		f.inActive = true
		s.active = append(s.active, f)
	}
	s.cond.Broadcast()
	return nil
}

// Started returns a channel closed when the flow's first unit begins
// executing — the admission layer's signal that the request is no longer
// queued.
func (f *Flow) Started() <-chan struct{} { return f.startCh }

// Abort cancels the flow if and only if none of its units has started:
// queued units are removed and the flow refuses further Submits. It reports
// whether the abort won; false means at least one unit is running or done
// and the caller must Wait for the flow instead. The admission layer uses
// this to shed a request that waited out its queue budget without ever
// reaching a worker.
func (f *Flow) Abort() bool {
	s := f.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.started {
		return false
	}
	f.aborted = true
	n := len(f.queue)
	f.queue = nil
	f.pending -= n
	s.queued -= n
	s.stats.UnitsAborted += uint64(n)
	if f.inActive {
		s.removeActiveLocked(f)
	}
	s.cond.Broadcast()
	return true
}

// Wait blocks until every submitted unit of the flow has finished (or was
// removed by a winning Abort). It is a passive wait: the calling goroutine
// does not execute units — request goroutines wait here while scheduler
// workers do the work, keeping solver concurrency at the worker bound.
func (f *Flow) Wait() {
	s := f.s
	s.mu.Lock()
	for f.pending > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// TryRunQueued pops one of the flow's own queued units and runs it on the
// calling goroutine, reporting whether a unit was run. It is the inline-help
// escape hatch for code already executing inside a unit (a portfolio
// orchestrator draining its fork units): the caller's worker slot does the
// work, so a flow's fan-out always progresses even when every worker is
// occupied by orchestrators. Returns false when the flow has nothing queued.
func (f *Flow) TryRunQueued() bool {
	s := f.s
	s.mu.Lock()
	if len(f.queue) == 0 {
		s.mu.Unlock()
		return false
	}
	u := f.queue[0]
	f.queue = f.queue[1:]
	if len(f.queue) == 0 && f.inActive {
		s.removeActiveLocked(f)
	}
	s.startLocked(f)
	s.stats.UnitsInline++
	s.mu.Unlock()

	u.fn()

	s.mu.Lock()
	s.finishLocked(f)
	s.mu.Unlock()
	return true
}

// worker is one scheduler goroutine: pick a unit by DRR, run it, repeat.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		f, u, ok := s.pickLocked()
		if !ok {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			continue
		}
		s.startLocked(f)
		s.mu.Unlock()

		u.fn()

		s.mu.Lock()
		s.finishLocked(f)
	}
}

// pickLocked selects the next unit by deficit round-robin. Each visit to a
// flow whose credit cannot cover its head unit earns it Quantum×weight;
// every full pass strictly grows all unserved credits, so the loop
// terminates in at most max-head-cost passes. Serving does not advance the
// ring position: a flow with remaining credit is served again next pick,
// which is DRR's per-turn burst.
func (s *Scheduler) pickLocked() (*Flow, unit, bool) {
	if s.queued == 0 {
		return nil, unit{}, false
	}
	for {
		for range s.active {
			if s.next >= len(s.active) {
				s.next = 0
			}
			f := s.active[s.next]
			if f.deficit >= f.queue[0].cost {
				u := f.queue[0]
				f.queue = f.queue[1:]
				f.deficit -= u.cost
				if len(f.queue) == 0 {
					s.removeActiveLocked(f)
				}
				return f, u, true
			}
			f.deficit += s.cfg.Quantum * f.weight
			s.next++
		}
	}
}

// removeActiveLocked takes a flow out of the ring (its queue emptied or it
// aborted) and resets its deficit so it cannot bank credit while idle.
func (s *Scheduler) removeActiveLocked(f *Flow) {
	for i, cand := range s.active {
		if cand == f {
			s.active = append(s.active[:i], s.active[i+1:]...)
			if s.next > i {
				s.next--
			}
			break
		}
	}
	f.inActive = false
	f.deficit = 0
}

// startLocked transitions one popped unit into running state and signals the
// flow's first start.
func (s *Scheduler) startLocked(f *Flow) {
	s.queued--
	s.running++
	if !f.started {
		f.started = true
		close(f.startCh)
	}
}

// finishLocked retires one completed unit and wakes waiters when the flow
// settles.
func (s *Scheduler) finishLocked(f *Flow) {
	s.running--
	s.stats.UnitsRun++
	f.pending--
	if f.pending == 0 {
		s.cond.Broadcast()
	}
}
