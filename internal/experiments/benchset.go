package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/big"
	"os"
	"runtime"
	"sort"
	"time"

	"segrid/internal/acflow"
	"segrid/internal/core"
	"segrid/internal/grid"
	"segrid/internal/proof"
	"segrid/internal/scenariofile"
	"segrid/internal/service"
	"segrid/internal/smt"
	"segrid/internal/synth"
)

// BenchEntry is one workload's measurement in the benchmark trajectory set.
// The JSON shape is stable across PRs so that successive BENCH_<n>.json files
// can be diffed: ns/op and allocs/op track the perf trajectory, the solver
// counters explain it (a time change with unchanged conflict/pivot counts is
// an arithmetic/allocator change; a counter change means the search moved).
type BenchEntry struct {
	Name         string `json:"name"`
	Iters        int    `json:"iters"`
	NsPerOp      int64  `json:"ns_per_op"`
	AllocsPerOp  int64  `json:"allocs_per_op"`
	BytesPerOp   int64  `json:"bytes_per_op"`
	Conflicts    int64  `json:"conflicts"`
	Decisions    int64  `json:"decisions"`
	Propagations int64  `json:"propagations"`
	Pivots       int64  `json:"pivots"`
	FastOps      int64  `json:"fast_ops"`
	BigOps       int64  `json:"big_ops"`
	// FreshNsPerOp/FreshAllocsPerOp are the incremental-vs-fresh ablation
	// columns: the same workload rerun with smt.Options.FreshPerCheck set, so
	// each Check rebuilds the encoding from scratch instead of reusing the
	// persistent solver instance. Only the synthesis workloads carry them —
	// single-Check workloads are identical under both modes.
	FreshNsPerOp     int64 `json:"fresh_ns_per_op,omitempty"`
	FreshAllocsPerOp int64 `json:"fresh_allocs_per_op,omitempty"`
	// ProofNsPerOp is the proof-logging overhead column: the same workload
	// rerun with an UNSAT certificate stream attached, written to an
	// in-memory buffer so the cost measured is record serialization, not
	// disk. The Fig. 4(a) and unsat/ verification rows carry it.
	ProofNsPerOp int64 `json:"proof_ns_per_op,omitempty"`
	// ProofBytes/ProofTrimmedBytes are the certificate-size columns for the
	// proof-logging rerun: the stream's serialized length and its length
	// after the backward trimming pass. Rows that end Sat leave (almost)
	// nothing reachable from an Unsat answer, so their trimmed streams are
	// near-empty; the unsat/ rows measure the realistic trimming case.
	ProofBytes        int64 `json:"proof_bytes,omitempty"`
	ProofTrimmedBytes int64 `json:"proof_trimmed_bytes,omitempty"`
	// PortfolioNsPerOp is the parallel-verification column: the same
	// workload answered by a CheckPortfolio race of Workers diversified
	// solver instances with clause sharing. The fig4a rows carry it.
	PortfolioNsPerOp int64 `json:"portfolio_ns_per_op,omitempty"`
	// CubeNsPerOp is the parallel-synthesis column: the same workload run
	// in cube-and-conquer mode at Workers workers (pivot-bus sign cubes,
	// shared counterexample-support pool, per-cube harvesting). The fig5a
	// rows carry it.
	CubeNsPerOp int64 `json:"cube_ns_per_op,omitempty"`
	// Workers is the worker count behind the portfolio/cube columns.
	Workers int `json:"workers,omitempty"`
	// SweepNsPerOp is the batched-sweep column: the same scenario family
	// answered by one service-layer /v1/sweep (one pooled encoder per
	// compatibility group, per-item scoped overlays) instead of N
	// independent verifications each paying a cold encoder build. The
	// headline ns/op of the sweep/ rows is the sequential baseline;
	// SweepBuilds and SeqBuilds are the encoder builds each mode paid.
	SweepNsPerOp int64 `json:"sweep_ns_per_op,omitempty"`
	SweepBuilds  int64 `json:"sweep_builds,omitempty"`
	SeqBuilds    int64 `json:"seq_builds,omitempty"`
	// ScreenNsPerOp/ScreenRate are the LP-relaxation screening columns: the
	// same batched sweep answered by a screening-enabled service (definitive
	// relaxation verdicts bypass encoder checkout and the SMT solver
	// entirely), and the fraction of items the screen answered definitively.
	// Per-item verdicts are asserted equal to the sequential baseline's, so
	// the column only exists when screening changed no answer. The sweep/
	// rows carry them.
	ScreenNsPerOp int64   `json:"screen_ns_per_op,omitempty"`
	ScreenRate    float64 `json:"screen_rate,omitempty"`
	// MixedP95Ms is the work-unit scheduler's fairness column: a stream of
	// small verifies issued behind a large multi-group sweep on a
	// two-worker scheduler, reporting the p95 small-verify latency in
	// milliseconds (pooled across iterations). The headline ns/op of the
	// mixed/ row is the whole mixed scenario; per-item and per-verify
	// verdicts are asserted equal to an idle sequential baseline inside the
	// harness, so the column only exists when fairness changed no answer.
	MixedP95Ms float64 `json:"mixed_p95_ms,omitempty"`
	// SharedPortfolioNsPerOp is the cross-request portfolio column: one
	// verification answered by a portfolio race of Workers diversified
	// instances whose forks run as work units on the shared scheduler
	// workers (plus the orchestrating unit helping inline) instead of a
	// per-request goroutine fleet. Compare against the same system's
	// fig4a portfolio_ns_per_op, which races a private fleet at the same
	// width. The mixed/ row carries it.
	SharedPortfolioNsPerOp int64 `json:"shared_portfolio_ns_per_op,omitempty"`
}

// Iteration policy for each workload: at least benchMinIters runs, then keep
// going until benchMinTime has elapsed or benchMaxIters is reached. The
// slowest workload (ieee118 synthesis under the fresh-per-Check ablation)
// takes a few seconds per run, so the whole set finishes in about a minute.
const (
	benchMinIters = 3
	benchMaxIters = 60
	benchMinTime  = 400 * time.Millisecond

	// Paired (base vs proof) workloads measure a few-percent relative
	// effect, which demands more pairs than a single-variant row needs
	// iterations: a burst of machine load that swallows one whole iteration
	// skews a 3-pair median, so paired rows run longer and with a higher
	// floor.
	benchPairMinIters = 5
	benchPairMinTime  = 8 * benchMinTime

	// Target duration of one timed sample in a paired measurement; fast
	// workloads batch several ops per sample to reach it (see measurePaired).
	benchPairSampleTime = 20 * time.Millisecond

	// benchWorkers is the worker count behind the portfolio_ns_per_op and
	// cube_ns_per_op columns, fixed (rather than GOMAXPROCS-derived) so the
	// trajectory is comparable across machines.
	benchWorkers = 4
)

// benchSynthBudgets are known-feasible operator budgets per system (greedy
// baseline size + 2; see synthRequirements), fixed so the synthesis workloads
// measure a stable instance rather than re-deriving the budget each run.
var benchSynthBudgets = map[string]int{
	"ieee14": 7, "ieee30": 12, "ieee57": 23, "ieee118": 43,
}

// measureWorkload times repeated runs of one workload and captures per-op
// allocation counts via runtime.MemStats deltas around the timed loop. The
// reported ns/op is the *median* of the per-iteration times, not the mean:
// the set runs on shared machines where a scheduler stall or a warm-up
// iteration can dominate a contiguous-window mean (especially for the large
// systems that only reach the 3-iteration floor), and the median discards
// exactly those outliers. The solver counters are taken from the final run
// (they are per-instance, not per-loop). Allocations by the harness itself
// (scenario construction) are included, matching what `go test -benchmem`
// reports for the equivalent benchmarks.
func measureWorkload(name string, out io.Writer, run func() (smt.Stats, error)) (BenchEntry, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var last smt.Stats
	var iterNs []int64
	iters := 0
	for {
		iterStart := time.Now()
		st, err := run()
		if err != nil {
			return BenchEntry{}, fmt.Errorf("%s: %w", name, err)
		}
		iterNs = append(iterNs, time.Since(iterStart).Nanoseconds())
		last = st
		iters++
		if iters >= benchMaxIters || (iters >= benchMinIters && time.Since(start) >= benchMinTime) {
			break
		}
	}
	runtime.ReadMemStats(&after)
	n := int64(iters)
	e := BenchEntry{
		Name:         name,
		Iters:        iters,
		NsPerOp:      medianNs(iterNs),
		AllocsPerOp:  int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:   int64(after.TotalAlloc-before.TotalAlloc) / n,
		Conflicts:    last.Conflicts,
		Decisions:    last.Decisions,
		Propagations: last.Propagations,
		Pivots:       last.Pivots,
		FastOps:      last.FastOps,
		BigOps:       last.BigOps,
	}
	fmt.Fprintf(out, "%-18s %6d %14d %12d %12d %10d %10d %12d %8d\n",
		e.Name, e.Iters, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp,
		e.Conflicts, e.Pivots, e.FastOps, e.BigOps)
	return e, nil
}

// medianNs returns the median of the per-iteration times (mean of the two
// middle values for even counts).
func medianNs(ns []int64) int64 {
	s := append([]int64(nil), ns...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	mid := len(s) / 2
	if len(s)%2 == 0 {
		return (s[mid-1] + s[mid]) / 2
	}
	return s[mid]
}

// measurePaired times two variants of one workload in alternation (ABBA
// order: A, B, B, A, A, B, …) instead of two sequential windows. The proof-overhead
// column divides one variant's time by the other's, and on shared machines
// load noise between and within two sequential windows dominates the
// few-percent effect being measured; alternation exposes both variants to
// the same conditions, and the B variant's ns/op is reported as A's median
// scaled by the median of the per-pair B/A ratios — the paired estimator,
// which cancels bursts that would skew either variant's own median.
// Per-variant allocation counts come from MemStats deltas around each
// iteration (the set runs workloads sequentially, so the deltas are
// attributable). Deliberately no forced GC between iterations: resetting
// the pacer each iteration makes whole-GC-cycle boundaries deterministic,
// pinning an entire extra cycle on whichever variant allocates just past a
// trigger threshold; with free-running collection the boundaries drift and
// cycle costs amortize over both variants.
func measurePaired(nameA, nameB string, out io.Writer, runA, runB func() (smt.Stats, error)) (BenchEntry, BenchEntry, error) {
	runtime.GC()
	names := [2]string{nameA, nameB}
	runs := [2]func() (smt.Stats, error){runA, runB}

	// Calibrate a batch size so every timed sample spans several GC cycles:
	// a collection landing inside a single sub-millisecond op distorts that
	// op by tens of percent, and since the logging variant allocates a bit
	// more (hosting a few more cycles), per-op samples would bias the ratio
	// rather than just widen it. Batching is how testing.B amortizes the
	// same quantization. The calibration runs also serve as warm-up.
	if _, err := runA(); err != nil {
		return BenchEntry{}, BenchEntry{}, fmt.Errorf("%s: %w", nameA, err)
	}
	calStart := time.Now()
	if _, err := runA(); err != nil {
		return BenchEntry{}, BenchEntry{}, fmt.Errorf("%s: %w", nameA, err)
	}
	batch := 1
	if est := time.Since(calStart); est > 0 && est < benchPairSampleTime {
		if batch = int(benchPairSampleTime / est); batch > 64 {
			batch = 64
		}
	}

	var ns [2][]int64
	var allocs, bytesAlloc [2]int64
	var last [2]smt.Stats
	var before, after runtime.MemStats
	start := time.Now()
	iters := 0
	for {
		// ABBA ordering: reverse every other pair so that neither variant
		// always runs in the same slot. The GC trigger cadence is nearly
		// periodic (both variants allocate a fixed amount per op) and can
		// phase-lock with a strictly periodic A,B,A,B schedule, pinning
		// whole collection cycles on one slot for the entire run.
		first := iters % 2
		for i := 0; i < 2; i++ {
			v := first ^ i
			runtime.ReadMemStats(&before)
			iterStart := time.Now()
			var st smt.Stats
			for b := 0; b < batch; b++ {
				var err error
				if st, err = runs[v](); err != nil {
					return BenchEntry{}, BenchEntry{}, fmt.Errorf("%s: %w", names[v], err)
				}
			}
			d := time.Since(iterStart).Nanoseconds() / int64(batch)
			runtime.ReadMemStats(&after)
			ns[v] = append(ns[v], d)
			allocs[v] += int64(after.Mallocs - before.Mallocs)
			bytesAlloc[v] += int64(after.TotalAlloc - before.TotalAlloc)
			last[v] = st
		}
		iters++
		if iters >= benchMaxIters || (iters >= benchPairMinIters && time.Since(start) >= benchPairMinTime) {
			break
		}
	}
	n := int64(iters) * int64(batch)
	ratios := make([]float64, iters)
	for i := range ratios {
		ratios[i] = float64(ns[1][i]) / float64(ns[0][i])
	}
	sort.Float64s(ratios)
	ratio := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		ratio = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	baseNs := medianNs(ns[0])
	perVariantNs := [2]int64{baseNs, int64(float64(baseNs) * ratio)}
	var es [2]BenchEntry
	for v := 0; v < 2; v++ {
		es[v] = BenchEntry{
			Name:         names[v],
			Iters:        iters * batch,
			NsPerOp:      perVariantNs[v],
			AllocsPerOp:  allocs[v] / n,
			BytesPerOp:   bytesAlloc[v] / n,
			Conflicts:    last[v].Conflicts,
			Decisions:    last[v].Decisions,
			Propagations: last[v].Propagations,
			Pivots:       last[v].Pivots,
			FastOps:      last[v].FastOps,
			BigOps:       last[v].BigOps,
		}
		fmt.Fprintf(out, "%-18s %6d %14d %12d %12d %10d %10d %12d %8d\n",
			es[v].Name, es[v].Iters, es[v].NsPerOp, es[v].AllocsPerOp, es[v].BytesPerOp,
			es[v].Conflicts, es[v].Pivots, es[v].FastOps, es[v].BigOps)
	}
	return es[0], es[1], nil
}

// BenchSet runs the benchmark trajectory set — the Fig. 4(a) verification
// scaling workloads, the Fig. 5(a) synthesis workloads, the Table IV
// unrestricted-attacker models, and the two SMT substrate microbenchmarks —
// and returns one BenchEntry per workload. Workloads always run sequentially
// (timing fidelity); cfg.Parallel is ignored here. cmd/benchtables writes the
// result as BENCH_<n>.json via -bench-json.
func BenchSet(cfg Config) ([]BenchEntry, error) {
	fmt.Fprintln(cfg.Out, "Benchmark set: per-workload timing, allocation and solver counters")
	fmt.Fprintf(cfg.Out, "%-18s %6s %14s %12s %12s %10s %10s %12s %8s\n",
		"workload", "iters", "ns/op", "allocs/op", "bytes/op",
		"conflicts", "pivots", "fastops", "bigops")
	var entries []BenchEntry
	add := func(name string, run func() (smt.Stats, error)) error {
		e, err := measureWorkload(name, cfg.Out, run)
		if err != nil {
			return err
		}
		entries = append(entries, e)
		return nil
	}

	// measureWithProof measures the headline (logging off) variant and the
	// certificate-streaming variant of one workload in strict alternation
	// (see measurePaired) for the proof_ns_per_op column, and records the
	// final run's certificate size before and after trimming.
	measureWithProof := func(name string, run func(pw *proof.Writer) (smt.Stats, error)) error {
		var proofBuf bytes.Buffer
		e, pe, err := measurePaired(name, name+"/proof", cfg.Out,
			func() (smt.Stats, error) { return run(nil) },
			func() (smt.Stats, error) {
				proofBuf.Reset()
				pw := proof.NewWriter(&proofBuf)
				st, err := run(pw)
				if err != nil {
					return smt.Stats{}, err
				}
				// Close rather than Flush: a per-solve Writer is the
				// production shape, and Close recycles the derivation arena.
				if err := pw.Close(); err != nil {
					return smt.Stats{}, err
				}
				return st, nil
			})
		if err != nil {
			return err
		}
		e.ProofNsPerOp = pe.NsPerOp
		e.ProofBytes = int64(proofBuf.Len())
		st, err := proof.TrimTo(io.Discard, bytes.NewReader(proofBuf.Bytes()))
		if err != nil {
			return fmt.Errorf("%s: trimming certificate: %w", name, err)
		}
		e.ProofTrimmedBytes = st.BytesAfter
		entries = append(entries, e)
		return nil
	}
	runScenario := func(sc *core.Scenario, pw *proof.Writer, wantFeasible bool) (smt.Stats, error) {
		cfg.applyBudget(sc)
		if pw != nil {
			opts := smt.DefaultOptions()
			if sc.Options != nil {
				opts = *sc.Options
			}
			opts.Proof = pw
			sc.Options = &opts
		}
		res, err := core.Verify(sc)
		if err != nil {
			return smt.Stats{}, err
		}
		if res.Inconclusive {
			return smt.Stats{}, fmt.Errorf("inconclusive verification (%v)", res.Why)
		}
		if res.Feasible != wantFeasible {
			return smt.Stats{}, fmt.Errorf("feasible = %v, want %v", res.Feasible, wantFeasible)
		}
		return res.Stats, nil
	}

	// runPortfolio answers one scenario through the diversified portfolio
	// race instead of a single sequential instance.
	runPortfolio := func(sc *core.Scenario, wantFeasible bool) (smt.Stats, error) {
		cfg.applyBudget(sc)
		m, err := core.NewModel(sc)
		if err != nil {
			return smt.Stats{}, err
		}
		res, err := m.CheckPortfolioContext(context.Background(), smt.PortfolioOptions{Workers: benchWorkers})
		if err != nil {
			return smt.Stats{}, err
		}
		if res.Inconclusive {
			return smt.Stats{}, fmt.Errorf("inconclusive portfolio verification (%v)", res.Why)
		}
		if res.Feasible != wantFeasible {
			return smt.Stats{}, fmt.Errorf("portfolio feasible = %v, want %v", res.Feasible, wantFeasible)
		}
		return res.Stats, nil
	}

	for _, name := range verificationCases(cfg.Large) {
		sys, err := grid.Case(name)
		if err != nil {
			return nil, err
		}
		if err := measureWithProof("fig4a/"+name, func(pw *proof.Writer) (smt.Stats, error) {
			return runScenario(verifyScenario(sys, 1+sys.Buses/2), pw, true)
		}); err != nil {
			return nil, err
		}
		pe, err := measureWorkload("fig4a/"+name+"/par", cfg.Out, func() (smt.Stats, error) {
			return runPortfolio(verifyScenario(sys, 1+sys.Buses/2), true)
		})
		if err != nil {
			return nil, err
		}
		entries[len(entries)-1].PortfolioNsPerOp = pe.NsPerOp
		entries[len(entries)-1].Workers = benchWorkers
	}

	// Genuinely-unsat verification rows: any-state attackers under resource
	// budgets below the smallest feasible attack, so the whole run is one
	// certified Unsat answer. These are the rows where trimming does real
	// work — the fig4a runs end Sat, leaving a trimmed stream nearly empty —
	// and where proof logging certifies the verdict the paper's Algorithm 1
	// synthesis loop depends on.
	for _, w := range []struct {
		name        string
		meas, buses int
	}{
		{"ieee14", 2, 1}, {"ieee30", 3, 1}, {"ieee57", 3, 1}, {"ieee118", 4, 2},
	} {
		sys, err := grid.Case(w.name)
		if err != nil {
			return nil, err
		}
		meas, buses := w.meas, w.buses
		if err := measureWithProof("unsat/"+w.name, func(pw *proof.Writer) (smt.Stats, error) {
			sc := core.NewScenario(sys)
			sc.AnyState = true
			sc.MaxAlteredMeasurements = meas
			sc.MaxCompromisedBuses = buses
			return runScenario(sc, pw, false)
		}); err != nil {
			return nil, err
		}
	}

	for _, name := range []string{"ieee14", "ieee30", "ieee57", "ieee118"} {
		sys, err := grid.Case(name)
		if err != nil {
			return nil, err
		}
		budget := benchSynthBudgets[name]
		runSynth := func(fresh bool, cubeWorkers int, proofDir string) (smt.Stats, error) {
			sc := core.NewScenario(sys)
			sc.AnyState = true
			cfg.applyBudget(sc)
			req := &synth.Requirements{
				Attack: sc, MaxSecuredBuses: budget, Prune: true,
				CubeWorkers: cubeWorkers,
				ProofDir:    proofDir, ProofTag: "bench",
			}
			if fresh {
				opts := smt.DefaultOptions()
				opts.FreshPerCheck = true
				sc.Options = &opts
				req.Options = &opts
			}
			arch, err := synth.Synthesize(req)
			if err != nil {
				return smt.Stats{}, err
			}
			if proofDir != "" {
				// The winning worker's trimmed certificates must survive the
				// independent checker — the acceptance gate for parallel
				// synthesis timings.
				for _, pf := range arch.ProofFiles {
					rep, err := proof.CheckFile(pf)
					if err != nil {
						return smt.Stats{}, fmt.Errorf("cube certificate %s: %w", pf, err)
					}
					if rep.UnsatChecks == 0 {
						return smt.Stats{}, fmt.Errorf("cube certificate %s: no certified unsat checks", pf)
					}
				}
			}
			// Report the counters of the architecture's final verification
			// check plus its candidate selection — the dominant work of the
			// last refinement iteration.
			st := arch.VerifyStats
			st.Conflicts += arch.SelectStats.Conflicts
			st.Decisions += arch.SelectStats.Decisions
			st.Propagations += arch.SelectStats.Propagations
			st.Pivots += arch.SelectStats.Pivots
			st.FastOps += arch.SelectStats.FastOps
			st.BigOps += arch.SelectStats.BigOps
			return st, nil
		}
		// Measure the default (incremental) mode as the workload's headline
		// numbers, then the fresh-per-Check ablation and the cube-and-conquer
		// mode; both ablations land in the same entry's columns rather than
		// as separate rows.
		e, err := measureWorkload("fig5a/"+name, cfg.Out,
			func() (smt.Stats, error) { return runSynth(false, 0, "") })
		if err != nil {
			return nil, err
		}
		fe, err := measureWorkload("fig5a/"+name+"/fresh", cfg.Out,
			func() (smt.Stats, error) { return runSynth(true, 0, "") })
		if err != nil {
			return nil, err
		}
		e.FreshNsPerOp = fe.NsPerOp
		e.FreshAllocsPerOp = fe.AllocsPerOp
		ce, err := measureWorkload("fig5a/"+name+"/cube", cfg.Out,
			func() (smt.Stats, error) { return runSynth(false, benchWorkers, "") })
		if err != nil {
			return nil, err
		}
		e.CubeNsPerOp = ce.NsPerOp
		e.Workers = benchWorkers
		// One certified cube run outside the timed loop: proof streams change
		// the constant factor, and what the trajectory gates on is that the
		// winner's published certificates re-check independently.
		proofDir, err := os.MkdirTemp("", "benchcube")
		if err != nil {
			return nil, err
		}
		_, cerr := runSynth(false, benchWorkers, proofDir)
		os.RemoveAll(proofDir)
		if cerr != nil {
			return nil, cerr
		}
		entries = append(entries, e)
	}

	// Batched-sweep rows: the serving-layer analogue of the incremental-vs-
	// fresh ablation. A fig5a-style family (one base scenario, per-item
	// secured-measurement deltas) is answered two ways on a fresh
	// single-worker service per iteration: sequentially, with each delta
	// folded into its own self-contained spec — the batch-unaware client,
	// one cold encoder build per distinct item — and as one batched sweep,
	// which plans the family into one compatibility group and answers every
	// item on a single pooled encoder through scoped overlays. The headline
	// ns/op is the sequential baseline, sweep_ns_per_op the batched run, and
	// seq_builds/sweep_builds the encoder builds each mode paid (from the
	// pool's own Misses counter). Per-item verdicts must agree between modes.
	for _, w := range []struct {
		name string
		spec scenariofile.AttackSpec
		ids  []int
	}{
		{"ieee14", scenariofile.AttackSpec{
			Case: "ieee14", Untaken: []int{5, 10, 14, 19, 22, 27, 30, 35, 43, 52},
			Targets: []int{12}, OnlyTargets: true},
			[]int{1, 2, 3, 4, 6, 7, 8, 9, 11, 46}},
		{"ieee30", scenariofile.AttackSpec{Case: "ieee30", AnyState: true},
			[]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
	} {
		items := []service.SweepItem{{}}
		for _, id := range w.ids {
			items = append(items, service.SweepItem{SecuredMeasurements: []int{id}})
		}
		svcCfg := service.Config{Portfolio: 1}
		var (
			seqVerdicts []string
			seqBuilds   uint64
			sweepBuilds uint64
		)
		runSeq := func() (smt.Stats, error) {
			svc, err := service.New(svcCfg)
			if err != nil {
				return smt.Stats{}, err
			}
			defer svc.Close()
			verdicts := make([]string, len(items))
			for i, it := range items {
				spec := w.spec
				spec.Secured = append(append([]int(nil), spec.Secured...), it.SecuredMeasurements...)
				resp, err := svc.Verify(context.Background(), &service.VerifyRequest{Attack: spec})
				if err != nil {
					return smt.Stats{}, err
				}
				if resp.Status != "feasible" && resp.Status != "infeasible" {
					return smt.Stats{}, fmt.Errorf("sweep/%s item %d: sequential inconclusive (%s)", w.name, i, resp.Why)
				}
				verdicts[i] = resp.Status
			}
			seqVerdicts = verdicts
			seqBuilds = svc.PoolStats().Misses
			return smt.Stats{}, nil
		}
		runSweep := func() (smt.Stats, error) {
			svc, err := service.New(svcCfg)
			if err != nil {
				return smt.Stats{}, err
			}
			defer svc.Close()
			resp, err := svc.Sweep(context.Background(), &service.SweepRequest{Attack: w.spec, Items: items})
			if err != nil {
				return smt.Stats{}, err
			}
			for i, item := range resp.Items {
				if item.Status != seqVerdicts[i] {
					return smt.Stats{}, fmt.Errorf("sweep/%s item %d: sweep says %s, sequential said %s",
						w.name, i, item.Status, seqVerdicts[i])
				}
			}
			sweepBuilds = svc.PoolStats().Misses
			return smt.Stats{}, nil
		}
		// The screening variant: same batch, service.Config.Screen on. Items
		// the LP relaxation decides are answered without touching the pool;
		// the rest fall through to the group's pooled encoder as usual. The
		// verdicts must match the sequential baseline item for item — the
		// screen may only change the cost of an answer, never the answer.
		var screenedItems int
		runScreenSweep := func() (smt.Stats, error) {
			svc, err := service.New(service.Config{Portfolio: 1, Screen: true})
			if err != nil {
				return smt.Stats{}, err
			}
			defer svc.Close()
			resp, err := svc.Sweep(context.Background(), &service.SweepRequest{Attack: w.spec, Items: items})
			if err != nil {
				return smt.Stats{}, err
			}
			n := 0
			for i, item := range resp.Items {
				if item.Status != seqVerdicts[i] {
					return smt.Stats{}, fmt.Errorf("sweep/%s item %d: screened sweep says %s, sequential said %s",
						w.name, i, item.Status, seqVerdicts[i])
				}
				if item.Screened {
					n++
				}
			}
			screenedItems = n
			return smt.Stats{}, nil
		}
		e, err := measureWorkload("sweep/"+w.name, cfg.Out, runSeq)
		if err != nil {
			return nil, err
		}
		se, err := measureWorkload("sweep/"+w.name+"/batch", cfg.Out, runSweep)
		if err != nil {
			return nil, err
		}
		if sweepBuilds >= seqBuilds {
			return nil, fmt.Errorf("sweep/%s: batched mode built %d encoders, sequential built %d — no amortization",
				w.name, sweepBuilds, seqBuilds)
		}
		ke, err := measureWorkload("sweep/"+w.name+"/screen", cfg.Out, runScreenSweep)
		if err != nil {
			return nil, err
		}
		e.SweepNsPerOp = se.NsPerOp
		e.SeqBuilds = int64(seqBuilds)
		e.SweepBuilds = int64(sweepBuilds)
		e.ScreenNsPerOp = ke.NsPerOp
		e.ScreenRate = float64(screenedItems) / float64(len(items))
		entries = append(entries, e)
	}

	// Mixed-load scheduler row: the work-unit scheduler's serving-side
	// measurement. A six-group sweep (goal replacement re-specs each target
	// into its own group) runs on a two-worker scheduler while a stream of
	// small verifies arrives behind it; the headline ns/op is the whole
	// mixed scenario, mixed_p95_ms the p95 small-verify latency pooled
	// across iterations. Every answer — sweep items under load and the
	// small stream — is asserted equal to an idle-server baseline: fairness
	// may only change the cost of an answer, never the answer.
	{
		base := scenariofile.AttackSpec{
			Case: "ieee14", Untaken: []int{5, 10, 14, 19, 22, 27, 30, 35, 43, 52},
			Targets: []int{12}, OnlyTargets: true}
		var items []service.SweepItem
		for _, target := range []int{12, 9, 13, 4, 7, 10} {
			tgt := []int{target}
			items = append(items, service.SweepItem{Targets: tgt})
			for _, id := range []int{1, 2, 3, 4, 6, 7, 8, 9, 11, 46} {
				items = append(items, service.SweepItem{Targets: tgt, SecuredMeasurements: []int{id}})
			}
		}
		// Idle-server ground truth, computed once outside the timed loop.
		baseSvc, err := service.New(service.Config{Portfolio: 1})
		if err != nil {
			return nil, err
		}
		itemTruth := make([]string, len(items))
		for i, it := range items {
			spec := base
			spec.Targets = it.Targets
			resp, err := baseSvc.Verify(context.Background(), &service.VerifyRequest{
				Attack: spec, SecuredMeasurements: it.SecuredMeasurements})
			if err != nil {
				baseSvc.Close()
				return nil, err
			}
			itemTruth[i] = resp.Status
		}
		smallTruth, err := baseSvc.Verify(context.Background(), &service.VerifyRequest{Attack: base})
		baseSvc.Close()
		if err != nil {
			return nil, err
		}

		var smallNs []int64
		runMixed := func() (smt.Stats, error) {
			svc, err := service.New(service.Config{SchedWorkers: 2, Portfolio: 1})
			if err != nil {
				return smt.Stats{}, err
			}
			defer svc.Close()
			var (
				sweepResp *service.SweepResponse
				sweepErr  error
				done      = make(chan struct{})
			)
			go func() {
				defer close(done)
				sweepResp, sweepErr = svc.Sweep(context.Background(),
					&service.SweepRequest{Attack: base, Items: items})
			}()
			// The small stream starts once sweep units occupy the scheduler,
			// so its latencies measure fair interleaving, not an idle server.
		waitBusy:
			for {
				select {
				case <-done:
					break waitBusy
				default:
				}
				if st := svc.SchedStats(); st.Running > 0 || st.Queued > 0 {
					break
				}
				time.Sleep(50 * time.Microsecond)
			}
			for i := 0; i < 12; i++ {
				t0 := time.Now()
				resp, err := svc.Verify(context.Background(), &service.VerifyRequest{Attack: base})
				if err != nil {
					return smt.Stats{}, err
				}
				smallNs = append(smallNs, time.Since(t0).Nanoseconds())
				if resp.Status != smallTruth.Status {
					return smt.Stats{}, fmt.Errorf("mixed/ieee14: small verify under load says %s, idle baseline says %s",
						resp.Status, smallTruth.Status)
				}
			}
			<-done
			if sweepErr != nil {
				return smt.Stats{}, sweepErr
			}
			for i, item := range sweepResp.Items {
				if item.Status != itemTruth[i] {
					return smt.Stats{}, fmt.Errorf("mixed/ieee14 item %d: sweep under load says %s, idle baseline says %s",
						i, item.Status, itemTruth[i])
				}
			}
			return smt.Stats{}, nil
		}
		e, err := measureWorkload("mixed/ieee14", cfg.Out, runMixed)
		if err != nil {
			return nil, err
		}
		sort.Slice(smallNs, func(i, j int) bool { return smallNs[i] < smallNs[j] })
		e.MixedP95Ms = float64(smallNs[len(smallNs)*95/100]) / 1e6

		// The shared-portfolio column: the same verification raced at
		// benchWorkers width, forks running as work units on the shared
		// scheduler workers instead of a per-request goroutine fleet.
		psvc, err := service.New(service.Config{SchedWorkers: benchWorkers, Portfolio: benchWorkers})
		if err != nil {
			return nil, err
		}
		pe, perr := measureWorkload("mixed/ieee14/portfolio", cfg.Out, func() (smt.Stats, error) {
			resp, err := psvc.Verify(context.Background(), &service.VerifyRequest{Attack: base})
			if err != nil {
				return smt.Stats{}, err
			}
			if resp.Status != smallTruth.Status {
				return smt.Stats{}, fmt.Errorf("mixed/ieee14/portfolio: says %s, sequential baseline says %s",
					resp.Status, smallTruth.Status)
			}
			return smt.Stats{}, nil
		})
		psvc.Close()
		if perr != nil {
			return nil, perr
		}
		e.SharedPortfolioNsPerOp = pe.NsPerOp
		e.Workers = benchWorkers
		entries = append(entries, e)
	}

	for _, name := range []string{"ieee14", "ieee30", "ieee57", "ieee118"} {
		sys, err := grid.Case(name)
		if err != nil {
			return nil, err
		}
		if err := add("tableiv/"+name, func() (smt.Stats, error) {
			sc := tableIVScenario(sys)
			cfg.applyBudget(sc)
			res, err := core.Verify(sc)
			if err != nil {
				return smt.Stats{}, err
			}
			if !res.Feasible {
				return smt.Stats{}, fmt.Errorf("expected a feasible attack")
			}
			return res.Stats, nil
		}); err != nil {
			return nil, err
		}
	}

	if err := add("acflow/ieee14", func() (smt.Stats, error) {
		return benchACFlow()
	}); err != nil {
		return nil, err
	}
	if err := add("smt/pigeonhole7", func() (smt.Stats, error) {
		return benchPigeonhole()
	}); err != nil {
		return nil, err
	}
	if err := add("smt/lra-chain200", func() (smt.Stats, error) {
		return benchLRAChain()
	}); err != nil {
		return nil, err
	}
	return entries, nil
}

// benchACFlow is the nonlinear-substrate workload: a full Newton–Raphson AC
// power flow on the IEEE 14-bus system lifted from its DC data (R/X = 0.2,
// 2% line charging), converged to 1e-10 mismatch and balance-checked. It
// times the dense-Jacobian path that the AC measurement model builds on,
// next to the SMT rows it will eventually feed.
func benchACFlow() (smt.Stats, error) {
	sys, err := grid.Case("ieee14")
	if err != nil {
		return smt.Stats{}, err
	}
	n, err := acflow.FromDC(sys, 0.2, 0.02)
	if err != nil {
		return smt.Stats{}, err
	}
	p := make([]float64, n.Buses+1)
	q := make([]float64, n.Buses+1)
	for j := 2; j <= n.Buses; j++ {
		p[j] = -(0.05 + 0.01*float64(j%5))
		q[j] = -0.02
	}
	st, err := n.Solve(acflow.FlowCase{Slack: 1, SlackV: 1.02, P: p, Q: q})
	if err != nil {
		return smt.Stats{}, err
	}
	pc, qc := n.Injections(st)
	for j := 2; j <= n.Buses; j++ {
		if math.Abs(pc[j]-p[j]) > 1e-7 || math.Abs(qc[j]-q[j]) > 1e-7 {
			return smt.Stats{}, fmt.Errorf("acflow: bus %d injection mismatch", j)
		}
	}
	return smt.Stats{}, nil
}

// benchPigeonhole is the propositional stress workload: 8 pigeons into 7
// holes, unsatisfiable, exercising the CDCL core with no theory content.
// It mirrors BenchmarkSMTSolver/pigeonhole7 in bench_test.go.
func benchPigeonhole() (smt.Stats, error) {
	s := smt.NewSolver(smt.DefaultOptions())
	const holes = 7
	vars := make([][]smt.BoolVar, holes+1)
	for p := range vars {
		vars[p] = make([]smt.BoolVar, holes)
		for h := range vars[p] {
			vars[p][h] = s.BoolVar("v")
		}
	}
	for p := 0; p <= holes; p++ {
		fs := make([]smt.Formula, holes)
		for h := 0; h < holes; h++ {
			fs[h] = smt.B(vars[p][h])
		}
		s.Assert(smt.Or(fs...))
	}
	for h := 0; h < holes; h++ {
		fs := make([]smt.Formula, holes+1)
		for p := 0; p <= holes; p++ {
			fs[p] = smt.B(vars[p][h])
		}
		s.AssertAtMostK(fs, 1)
	}
	res, err := s.Check()
	if err != nil {
		return smt.Stats{}, err
	}
	if res.Status != smt.Unsat {
		return smt.Stats{}, fmt.Errorf("pigeonhole: got %v, want unsat", res.Status)
	}
	return res.Stats, nil
}

// benchLRAChain is the arithmetic stress workload: a 200-link difference
// chain forcing x199 ≥ x0 + 199 against x199 ≤ 100, unsatisfiable through
// simplex reasoning. It mirrors BenchmarkSMTSolver/lra-chain200.
func benchLRAChain() (smt.Stats, error) {
	s := smt.NewSolver(smt.DefaultOptions())
	prev := s.RealVar("x0")
	s.Assert(smt.GE(smt.NewLinExpr().TermInt(1, prev), big.NewRat(0, 1)))
	for k := 1; k < 200; k++ {
		cur := s.RealVar("x")
		diff := smt.NewLinExpr().TermInt(1, cur).TermInt(-1, prev)
		s.Assert(smt.GE(diff, big.NewRat(1, 1)))
		prev = cur
	}
	s.Assert(smt.LE(smt.NewLinExpr().TermInt(1, prev), big.NewRat(100, 1)))
	res, err := s.Check()
	if err != nil {
		return smt.Stats{}, err
	}
	if res.Status != smt.Unsat {
		return smt.Stats{}, fmt.Errorf("lra-chain: got %v, want unsat", res.Status)
	}
	return res.Stats, nil
}
