package experiments

import (
	"fmt"
	"io"
	"math/big"
	"runtime"
	"time"

	"segrid/internal/core"
	"segrid/internal/grid"
	"segrid/internal/proof"
	"segrid/internal/smt"
	"segrid/internal/synth"
)

// BenchEntry is one workload's measurement in the benchmark trajectory set.
// The JSON shape is stable across PRs so that successive BENCH_<n>.json files
// can be diffed: ns/op and allocs/op track the perf trajectory, the solver
// counters explain it (a time change with unchanged conflict/pivot counts is
// an arithmetic/allocator change; a counter change means the search moved).
type BenchEntry struct {
	Name         string `json:"name"`
	Iters        int    `json:"iters"`
	NsPerOp      int64  `json:"ns_per_op"`
	AllocsPerOp  int64  `json:"allocs_per_op"`
	BytesPerOp   int64  `json:"bytes_per_op"`
	Conflicts    int64  `json:"conflicts"`
	Decisions    int64  `json:"decisions"`
	Propagations int64  `json:"propagations"`
	Pivots       int64  `json:"pivots"`
	FastOps      int64  `json:"fast_ops"`
	BigOps       int64  `json:"big_ops"`
	// FreshNsPerOp/FreshAllocsPerOp are the incremental-vs-fresh ablation
	// columns: the same workload rerun with smt.Options.FreshPerCheck set, so
	// each Check rebuilds the encoding from scratch instead of reusing the
	// persistent solver instance. Only the synthesis workloads carry them —
	// single-Check workloads are identical under both modes.
	FreshNsPerOp     int64 `json:"fresh_ns_per_op,omitempty"`
	FreshAllocsPerOp int64 `json:"fresh_allocs_per_op,omitempty"`
	// ProofNsPerOp is the proof-logging overhead column: the same workload
	// rerun with an UNSAT certificate stream attached, written to io.Discard
	// so the cost measured is record serialization, not disk. Only the
	// Fig. 4(a) verification rows carry it.
	ProofNsPerOp int64 `json:"proof_ns_per_op,omitempty"`
}

// Iteration policy for each workload: at least benchMinIters runs, then keep
// going until benchMinTime has elapsed or benchMaxIters is reached. The
// slowest workload (ieee118 synthesis under the fresh-per-Check ablation)
// takes a few seconds per run, so the whole set finishes in about a minute.
const (
	benchMinIters = 3
	benchMaxIters = 60
	benchMinTime  = 400 * time.Millisecond
)

// benchSynthBudgets are known-feasible operator budgets per system (greedy
// baseline size + 2; see synthRequirements), fixed so the synthesis workloads
// measure a stable instance rather than re-deriving the budget each run.
var benchSynthBudgets = map[string]int{
	"ieee14": 7, "ieee30": 12, "ieee57": 23, "ieee118": 43,
}

// measureWorkload times repeated runs of one workload and captures per-op
// allocation counts via runtime.MemStats deltas around the timed loop. The
// solver counters are taken from the final run (they are per-instance, not
// per-loop). Allocations by the harness itself (scenario construction) are
// included, matching what `go test -benchmem` reports for the equivalent
// benchmarks.
func measureWorkload(name string, out io.Writer, run func() (smt.Stats, error)) (BenchEntry, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var last smt.Stats
	iters := 0
	for {
		st, err := run()
		if err != nil {
			return BenchEntry{}, fmt.Errorf("%s: %w", name, err)
		}
		last = st
		iters++
		if iters >= benchMaxIters || (iters >= benchMinIters && time.Since(start) >= benchMinTime) {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	e := BenchEntry{
		Name:         name,
		Iters:        iters,
		NsPerOp:      elapsed.Nanoseconds() / n,
		AllocsPerOp:  int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:   int64(after.TotalAlloc-before.TotalAlloc) / n,
		Conflicts:    last.Conflicts,
		Decisions:    last.Decisions,
		Propagations: last.Propagations,
		Pivots:       last.Pivots,
		FastOps:      last.FastOps,
		BigOps:       last.BigOps,
	}
	fmt.Fprintf(out, "%-18s %6d %14d %12d %12d %10d %10d %12d %8d\n",
		e.Name, e.Iters, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp,
		e.Conflicts, e.Pivots, e.FastOps, e.BigOps)
	return e, nil
}

// BenchSet runs the benchmark trajectory set — the Fig. 4(a) verification
// scaling workloads, the Fig. 5(a) synthesis workloads, the Table IV
// unrestricted-attacker models, and the two SMT substrate microbenchmarks —
// and returns one BenchEntry per workload. Workloads always run sequentially
// (timing fidelity); cfg.Parallel is ignored here. cmd/benchtables writes the
// result as BENCH_<n>.json via -bench-json.
func BenchSet(cfg Config) ([]BenchEntry, error) {
	fmt.Fprintln(cfg.Out, "Benchmark set: per-workload timing, allocation and solver counters")
	fmt.Fprintf(cfg.Out, "%-18s %6s %14s %12s %12s %10s %10s %12s %8s\n",
		"workload", "iters", "ns/op", "allocs/op", "bytes/op",
		"conflicts", "pivots", "fastops", "bigops")
	var entries []BenchEntry
	add := func(name string, run func() (smt.Stats, error)) error {
		e, err := measureWorkload(name, cfg.Out, run)
		if err != nil {
			return err
		}
		entries = append(entries, e)
		return nil
	}

	for _, name := range []string{"ieee14", "ieee30", "ieee57", "ieee118"} {
		sys, err := grid.Case(name)
		if err != nil {
			return nil, err
		}
		runVerify := func(logProof bool) (smt.Stats, error) {
			sc := verifyScenario(sys, 1+sys.Buses/2)
			cfg.applyBudget(sc)
			if logProof {
				opts := smt.DefaultOptions()
				if sc.Options != nil {
					opts = *sc.Options
				}
				opts.Proof = proof.NewWriter(io.Discard)
				sc.Options = &opts
			}
			res, err := core.Verify(sc)
			if err != nil {
				return smt.Stats{}, err
			}
			if !res.Feasible {
				return smt.Stats{}, fmt.Errorf("expected a feasible attack")
			}
			return res.Stats, nil
		}
		// Headline numbers come from the default (logging off) run; the same
		// workload with a certificate stream attached lands in the entry's
		// proof_ns_per_op column, making the logging overhead diffable across
		// trajectory snapshots.
		e, err := measureWorkload("fig4a/"+name, cfg.Out,
			func() (smt.Stats, error) { return runVerify(false) })
		if err != nil {
			return nil, err
		}
		pe, err := measureWorkload("fig4a/"+name+"/proof", cfg.Out,
			func() (smt.Stats, error) { return runVerify(true) })
		if err != nil {
			return nil, err
		}
		e.ProofNsPerOp = pe.NsPerOp
		entries = append(entries, e)
	}

	for _, name := range []string{"ieee14", "ieee30", "ieee57", "ieee118"} {
		sys, err := grid.Case(name)
		if err != nil {
			return nil, err
		}
		budget := benchSynthBudgets[name]
		runSynth := func(fresh bool) (smt.Stats, error) {
			sc := core.NewScenario(sys)
			sc.AnyState = true
			cfg.applyBudget(sc)
			req := &synth.Requirements{
				Attack: sc, MaxSecuredBuses: budget, Prune: true,
			}
			if fresh {
				opts := smt.DefaultOptions()
				opts.FreshPerCheck = true
				sc.Options = &opts
				req.Options = &opts
			}
			arch, err := synth.Synthesize(req)
			if err != nil {
				return smt.Stats{}, err
			}
			// Report the counters of the architecture's final verification
			// check plus its candidate selection — the dominant work of the
			// last refinement iteration.
			st := arch.VerifyStats
			st.Conflicts += arch.SelectStats.Conflicts
			st.Decisions += arch.SelectStats.Decisions
			st.Propagations += arch.SelectStats.Propagations
			st.Pivots += arch.SelectStats.Pivots
			st.FastOps += arch.SelectStats.FastOps
			st.BigOps += arch.SelectStats.BigOps
			return st, nil
		}
		// Measure the default (incremental) mode as the workload's headline
		// numbers, then the fresh-per-Check ablation; the ablation lands in
		// the same entry's fresh_* columns rather than as a separate row.
		e, err := measureWorkload("fig5a/"+name, cfg.Out,
			func() (smt.Stats, error) { return runSynth(false) })
		if err != nil {
			return nil, err
		}
		fe, err := measureWorkload("fig5a/"+name+"/fresh", cfg.Out,
			func() (smt.Stats, error) { return runSynth(true) })
		if err != nil {
			return nil, err
		}
		e.FreshNsPerOp = fe.NsPerOp
		e.FreshAllocsPerOp = fe.AllocsPerOp
		entries = append(entries, e)
	}

	for _, name := range []string{"ieee14", "ieee30", "ieee57", "ieee118"} {
		sys, err := grid.Case(name)
		if err != nil {
			return nil, err
		}
		if err := add("tableiv/"+name, func() (smt.Stats, error) {
			sc := tableIVScenario(sys)
			cfg.applyBudget(sc)
			res, err := core.Verify(sc)
			if err != nil {
				return smt.Stats{}, err
			}
			if !res.Feasible {
				return smt.Stats{}, fmt.Errorf("expected a feasible attack")
			}
			return res.Stats, nil
		}); err != nil {
			return nil, err
		}
	}

	if err := add("smt/pigeonhole7", func() (smt.Stats, error) {
		return benchPigeonhole()
	}); err != nil {
		return nil, err
	}
	if err := add("smt/lra-chain200", func() (smt.Stats, error) {
		return benchLRAChain()
	}); err != nil {
		return nil, err
	}
	return entries, nil
}

// benchPigeonhole is the propositional stress workload: 8 pigeons into 7
// holes, unsatisfiable, exercising the CDCL core with no theory content.
// It mirrors BenchmarkSMTSolver/pigeonhole7 in bench_test.go.
func benchPigeonhole() (smt.Stats, error) {
	s := smt.NewSolver(smt.DefaultOptions())
	const holes = 7
	vars := make([][]smt.BoolVar, holes+1)
	for p := range vars {
		vars[p] = make([]smt.BoolVar, holes)
		for h := range vars[p] {
			vars[p][h] = s.BoolVar("v")
		}
	}
	for p := 0; p <= holes; p++ {
		fs := make([]smt.Formula, holes)
		for h := 0; h < holes; h++ {
			fs[h] = smt.B(vars[p][h])
		}
		s.Assert(smt.Or(fs...))
	}
	for h := 0; h < holes; h++ {
		fs := make([]smt.Formula, holes+1)
		for p := 0; p <= holes; p++ {
			fs[p] = smt.B(vars[p][h])
		}
		s.AssertAtMostK(fs, 1)
	}
	res, err := s.Check()
	if err != nil {
		return smt.Stats{}, err
	}
	if res.Status != smt.Unsat {
		return smt.Stats{}, fmt.Errorf("pigeonhole: got %v, want unsat", res.Status)
	}
	return res.Stats, nil
}

// benchLRAChain is the arithmetic stress workload: a 200-link difference
// chain forcing x199 ≥ x0 + 199 against x199 ≤ 100, unsatisfiable through
// simplex reasoning. It mirrors BenchmarkSMTSolver/lra-chain200.
func benchLRAChain() (smt.Stats, error) {
	s := smt.NewSolver(smt.DefaultOptions())
	prev := s.RealVar("x0")
	s.Assert(smt.GE(smt.NewLinExpr().TermInt(1, prev), big.NewRat(0, 1)))
	for k := 1; k < 200; k++ {
		cur := s.RealVar("x")
		diff := smt.NewLinExpr().TermInt(1, cur).TermInt(-1, prev)
		s.Assert(smt.GE(diff, big.NewRat(1, 1)))
		prev = cur
	}
	s.Assert(smt.LE(smt.NewLinExpr().TermInt(1, prev), big.NewRat(100, 1)))
	res, err := s.Check()
	if err != nil {
		return smt.Stats{}, err
	}
	if res.Status != smt.Unsat {
		return smt.Stats{}, fmt.Errorf("lra-chain: got %v, want unsat", res.Status)
	}
	return res.Stats, nil
}
