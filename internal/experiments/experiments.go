// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) plus the case studies (Sections III-I and IV-E).
// Each experiment prints the same rows/series the paper reports and returns
// the measured data so the benchmark harness can assert on shapes.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"segrid/internal/baseline"
	"segrid/internal/core"
	"segrid/internal/grid"
	"segrid/internal/smt"
	"segrid/internal/synth"
)

// Config selects experiment scope.
type Config struct {
	// Out receives the printed tables.
	Out io.Writer
	// Large includes the IEEE 300-bus runs (minutes of extra runtime).
	Large bool
	// Parallel runs sweep instances (Fig 4(b)–(d), Fig 5(b)–(d)) on up to
	// Parallel workers; values below 2 keep the historical sequential
	// execution. Output ordering is deterministic either way. Wall-clock
	// timings measured under parallelism include scheduler and memory-bus
	// contention, so use it for trajectory tracking and smoke runs, not for
	// paper-grade timing. The headline scaling figures (Fig 4(a), Fig 5(a))
	// always run sequentially.
	Parallel int
	// Budget, when non-zero, bounds every verification and synthesis
	// instance launched by the sweeps, keeping runaway instances from
	// starving a parallel run.
	Budget smt.Budget
}

// applyBudget installs the per-instance solver budget on a scenario.
func (c Config) applyBudget(sc *core.Scenario) {
	if c.Budget == (smt.Budget{}) {
		return
	}
	opts := smt.DefaultOptions()
	opts.Budget = c.Budget
	sc.Options = &opts
}

// runJobs maps fn over n indexed jobs with up to parallel workers and
// returns the results in job order. Each job builds its own grid.System and
// scenario, so jobs share no mutable state. Errors surface in job order: the
// lowest failing index wins, matching the sequential sweeps' behavior.
func runJobs[T any](parallel, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if parallel > n {
		parallel = n
	}
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// verificationCases lists the systems used by the verification-side
// experiments, optionally including the 300-bus case.
func verificationCases(large bool) []string {
	names := []string{"ieee14", "ieee30", "ieee57", "ieee118"}
	if large {
		names = append(names, "ieee300")
	}
	return names
}

// targetsFor picks the paper's "three different states to be attacked" per
// system: an early, a middle and a late bus (never the reference).
func targetsFor(sys *grid.System) []int {
	return []int{2 + sys.Buses/10, 1 + sys.Buses/2, sys.Buses - 1}
}

// verifyScenario builds the standard timing scenario: a single-state target
// under proportional attacker resource limits. The limits are deliberately
// generous (a quarter of the grid): budgets close to the target's minimal
// cut size turn the instance into a near-boundary search whose time is
// dominated by the combinatorics of one instance rather than by problem
// size, which is what this figure measures.
func verifyScenario(sys *grid.System, target int) *core.Scenario {
	sc := core.NewScenario(sys)
	sc.TargetStates = []int{target}
	sc.MaxAlteredMeasurements = sys.NumMeasurements() / 4
	sc.MaxCompromisedBuses = sys.Buses / 4
	return sc
}

// tableIVScenario is the model-size measurement scenario: the unrestricted
// attacker, whose model carries no cardinality counters, so the encoded
// size reflects the core constraint system — linear in the measurement
// count, the shape the paper's Table IV reports. (Resource-limited
// scenarios add counter circuits of size O(m·T_CZ) on top.)
func tableIVScenario(sys *grid.System) *core.Scenario {
	sc := core.NewScenario(sys)
	sc.AnyState = true
	return sc
}

// timedVerify runs one verification and returns elapsed time plus result.
// A budget-starved (inconclusive) run is an error here: a sweep row must
// never report "unsat" for an instance the solver merely gave up on.
func timedVerify(sc *core.Scenario) (time.Duration, *core.Result, error) {
	start := time.Now()
	res, err := core.Verify(sc)
	if err == nil && res.Inconclusive {
		err = fmt.Errorf("inconclusive: %v", res.Why)
	}
	return time.Since(start), res, err
}

// Fig4aRow is one system's verification-time measurement.
type Fig4aRow struct {
	Case    string
	Buses   int
	Times   []time.Duration // one per target choice
	Average time.Duration
}

// Fig4a measures UFDI-attack verification time against problem size
// (paper Fig. 4(a)): three target choices per IEEE system plus the average.
func Fig4a(cfg Config) ([]Fig4aRow, error) {
	fmt.Fprintln(cfg.Out, "Fig 4(a): verification time vs problem size")
	fmt.Fprintf(cfg.Out, "%-9s %6s %12s %12s %12s %12s\n",
		"case", "buses", "run1", "run2", "run3", "average")
	rows := make([]Fig4aRow, 0, 5)
	for _, name := range verificationCases(cfg.Large) {
		sys, err := grid.Case(name)
		if err != nil {
			return nil, err
		}
		row := Fig4aRow{Case: name, Buses: sys.Buses}
		var total time.Duration
		for _, target := range targetsFor(sys) {
			dt, _, err := timedVerify(verifyScenario(sys, target))
			if err != nil {
				return nil, fmt.Errorf("fig4a %s target %d: %w", name, target, err)
			}
			row.Times = append(row.Times, dt)
			total += dt
		}
		row.Average = total / time.Duration(len(row.Times))
		rows = append(rows, row)
		fmt.Fprintf(cfg.Out, "%-9s %6d %12s %12s %12s %12s\n",
			name, sys.Buses, row.Times[0].Round(time.Microsecond),
			row.Times[1].Round(time.Microsecond), row.Times[2].Round(time.Microsecond),
			row.Average.Round(time.Microsecond))
	}
	return rows, nil
}

// Fig4bRow is one (case, fraction) verification-time measurement.
type Fig4bRow struct {
	Case     string
	Fraction float64
	Time     time.Duration
}

// Fig4b measures verification time against the share of taken measurements
// (paper Fig. 4(b); 30- and 57-bus systems).
func Fig4b(cfg Config) ([]Fig4bRow, error) {
	fmt.Fprintln(cfg.Out, "Fig 4(b): verification time vs taken measurements")
	fmt.Fprintf(cfg.Out, "%-9s %10s %12s\n", "case", "taken", "time")
	type job struct {
		name string
		frac float64
	}
	var jobs []job
	for _, name := range []string{"ieee30", "ieee57"} {
		for _, frac := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
			jobs = append(jobs, job{name, frac})
		}
	}
	rows, err := runJobs(cfg.Parallel, len(jobs), func(i int) (Fig4bRow, error) {
		j := jobs[i]
		sys, err := grid.Case(j.name)
		if err != nil {
			return Fig4bRow{}, err
		}
		sc := verifyScenario(sys, 1+sys.Buses/2)
		if err := sc.Meas.KeepFraction(j.frac); err != nil {
			return Fig4bRow{}, err
		}
		cfg.applyBudget(sc)
		dt, _, err := timedVerify(sc)
		if err != nil {
			return Fig4bRow{}, fmt.Errorf("fig4b %s frac %v: %w", j.name, j.frac, err)
		}
		return Fig4bRow{Case: j.name, Fraction: j.frac, Time: dt}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		fmt.Fprintf(cfg.Out, "%-9s %9.0f%% %12s\n", row.Case, row.Fraction*100, row.Time.Round(time.Microsecond))
	}
	return rows, nil
}

// Fig4cRow is one (case, limit) verification-time measurement.
type Fig4cRow struct {
	Case     string
	Limit    int
	Feasible bool
	Time     time.Duration
}

// Fig4c measures verification time against the attacker's resource limit
// T_CZ (paper Fig. 4(c); 14- and 30-bus systems).
func Fig4c(cfg Config) ([]Fig4cRow, error) {
	fmt.Fprintln(cfg.Out, "Fig 4(c): verification time vs attacker resource limit")
	fmt.Fprintf(cfg.Out, "%-9s %6s %10s %12s\n", "case", "T_CZ", "result", "time")
	type job struct {
		name  string
		limit int
	}
	var jobs []job
	for _, name := range []string{"ieee14", "ieee30"} {
		for _, limit := range []int{4, 8, 12, 16, 20, 24, 28} {
			jobs = append(jobs, job{name, limit})
		}
	}
	rows, err := runJobs(cfg.Parallel, len(jobs), func(i int) (Fig4cRow, error) {
		j := jobs[i]
		sys, err := grid.Case(j.name)
		if err != nil {
			return Fig4cRow{}, err
		}
		sc := core.NewScenario(sys)
		sc.TargetStates = []int{1 + sys.Buses/2}
		sc.MaxAlteredMeasurements = j.limit
		cfg.applyBudget(sc)
		dt, res, err := timedVerify(sc)
		if err != nil {
			return Fig4cRow{}, fmt.Errorf("fig4c %s limit %d: %w", j.name, j.limit, err)
		}
		return Fig4cRow{Case: j.name, Limit: j.limit, Feasible: res.Feasible, Time: dt}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		fmt.Fprintf(cfg.Out, "%-9s %6d %10v %12s\n", row.Case, row.Limit, verdict(row.Feasible), row.Time.Round(time.Microsecond))
	}
	return rows, nil
}

func verdict(feasible bool) string {
	if feasible {
		return "sat"
	}
	return "unsat"
}

// Fig4dRow pairs satisfiable and unsatisfiable verification times.
type Fig4dRow struct {
	Case      string
	SatTime   time.Duration
	UnsatTime time.Duration
}

// Fig4d compares verification times of satisfiable and unsatisfiable
// instances (paper Fig. 4(d)).
func Fig4d(cfg Config) ([]Fig4dRow, error) {
	fmt.Fprintln(cfg.Out, "Fig 4(d): verification time, satisfiable vs unsatisfiable")
	fmt.Fprintf(cfg.Out, "%-9s %12s %12s\n", "case", "sat", "unsat")
	names := verificationCases(cfg.Large)
	rows, err := runJobs(cfg.Parallel, len(names), func(i int) (Fig4dRow, error) {
		name := names[i]
		sys, err := grid.Case(name)
		if err != nil {
			return Fig4dRow{}, err
		}
		sat := verifyScenario(sys, 1+sys.Buses/2)
		cfg.applyBudget(sat)
		dtSat, resSat, err := timedVerify(sat)
		if err != nil {
			return Fig4dRow{}, err
		}
		if !resSat.Feasible {
			return Fig4dRow{}, fmt.Errorf("fig4d %s: satisfiable scenario was unsat", name)
		}
		// Tight resources make the attack impossible: under full metering
		// any state change cuts at least one line, which costs two flow
		// measurements plus two endpoint injections — four alterations.
		unsat := core.NewScenario(sys)
		unsat.AnyState = true
		unsat.MaxAlteredMeasurements = 3
		cfg.applyBudget(unsat)
		dtUnsat, resUnsat, err := timedVerify(unsat)
		if err != nil {
			return Fig4dRow{}, err
		}
		if resUnsat.Feasible {
			return Fig4dRow{}, fmt.Errorf("fig4d %s: unsatisfiable scenario was sat", name)
		}
		return Fig4dRow{Case: name, SatTime: dtSat, UnsatTime: dtUnsat}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		fmt.Fprintf(cfg.Out, "%-9s %12s %12s\n", row.Case,
			row.SatTime.Round(time.Microsecond), row.UnsatTime.Round(time.Microsecond))
	}
	return rows, nil
}

// synthRequirements builds the standard synthesis-timing requirements: the
// full-knowledge unlimited attacker, budget two above the greedy baseline's
// bus count (so a solution exists), with the given share of measurements
// taken.
func synthRequirements(sys *grid.System, frac float64) (*synth.Requirements, error) {
	meas := grid.NewMeasurementConfig(sys)
	if frac < 1 {
		if err := meas.KeepFraction(frac); err != nil {
			return nil, err
		}
	}
	greedy, err := baseline.GreedyBusProtection(meas, 1, 0)
	if err != nil {
		return nil, err
	}
	sc := core.NewScenario(sys)
	sc.Meas = meas
	sc.AnyState = true
	return &synth.Requirements{
		Attack:          sc,
		MaxSecuredBuses: len(greedy) + 2,
		Prune:           true,
	}, nil
}

// Fig5aRow is one synthesis-time measurement.
type Fig5aRow struct {
	Case       string
	Fraction   float64
	Buses      int
	Secured    int
	Iterations int
	Time       time.Duration
}

// Fig5a measures synthesis time against problem size for 90% and 100%
// of measurements taken (paper Fig. 5(a)).
func Fig5a(cfg Config) ([]Fig5aRow, error) {
	fmt.Fprintln(cfg.Out, "Fig 5(a): synthesis time vs problem size")
	fmt.Fprintf(cfg.Out, "%-9s %8s %8s %8s %6s %12s\n", "case", "taken", "secured", "iters", "buses", "time")
	var rows []Fig5aRow
	for _, name := range verificationCases(cfg.Large) {
		sys, err := grid.Case(name)
		if err != nil {
			return nil, err
		}
		for _, frac := range []float64{0.9, 1.0} {
			req, err := synthRequirements(sys, frac)
			if err != nil {
				return nil, fmt.Errorf("fig5a %s: %w", name, err)
			}
			start := time.Now()
			arch, err := synth.Synthesize(req)
			if err != nil {
				return nil, fmt.Errorf("fig5a %s frac %v: %w", name, frac, err)
			}
			dt := time.Since(start)
			rows = append(rows, Fig5aRow{
				Case: name, Fraction: frac, Buses: sys.Buses,
				Secured: len(arch.SecuredBuses), Iterations: arch.Iterations, Time: dt,
			})
			fmt.Fprintf(cfg.Out, "%-9s %7.0f%% %8d %8d %6d %12s\n",
				name, frac*100, len(arch.SecuredBuses), arch.Iterations, sys.Buses,
				dt.Round(time.Millisecond))
		}
	}
	return rows, nil
}

// Fig5bRow is one (case, fraction) synthesis-time measurement.
type Fig5bRow struct {
	Case     string
	Fraction float64
	Time     time.Duration
}

// Fig5b measures synthesis time against the share of taken measurements
// (paper Fig. 5(b); 30- and 57-bus systems).
func Fig5b(cfg Config) ([]Fig5bRow, error) {
	fmt.Fprintln(cfg.Out, "Fig 5(b): synthesis time vs taken measurements")
	fmt.Fprintf(cfg.Out, "%-9s %10s %12s\n", "case", "taken", "time")
	type job struct {
		name string
		frac float64
	}
	var jobs []job
	for _, name := range []string{"ieee30", "ieee57"} {
		for _, frac := range []float64{0.7, 0.8, 0.9, 1.0} {
			jobs = append(jobs, job{name, frac})
		}
	}
	rows, err := runJobs(cfg.Parallel, len(jobs), func(i int) (Fig5bRow, error) {
		j := jobs[i]
		sys, err := grid.Case(j.name)
		if err != nil {
			return Fig5bRow{}, err
		}
		req, err := synthRequirements(sys, j.frac)
		if err != nil {
			return Fig5bRow{}, fmt.Errorf("fig5b %s: %w", j.name, err)
		}
		cfg.applyBudget(req.Attack)
		start := time.Now()
		if _, err := synth.Synthesize(req); err != nil {
			return Fig5bRow{}, fmt.Errorf("fig5b %s frac %v: %w", j.name, j.frac, err)
		}
		return Fig5bRow{Case: j.name, Fraction: j.frac, Time: time.Since(start)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		fmt.Fprintf(cfg.Out, "%-9s %9.0f%% %12s\n", row.Case, row.Fraction*100, row.Time.Round(time.Millisecond))
	}
	return rows, nil
}

// Fig5cRow is one (limit, time) synthesis measurement.
type Fig5cRow struct {
	Case         string
	LimitPercent int
	Time         time.Duration
}

// Fig5c measures synthesis time against the attacker's resource limit,
// expressed as a percentage of the total measurements (paper Fig. 5(c)).
func Fig5c(cfg Config) ([]Fig5cRow, error) {
	fmt.Fprintln(cfg.Out, "Fig 5(c): synthesis time vs attacker resource limit")
	fmt.Fprintf(cfg.Out, "%-9s %8s %12s\n", "case", "T_CZ", "time")
	type job struct {
		name string
		pct  int
	}
	var jobs []job
	for _, name := range []string{"ieee14", "ieee30"} {
		for _, pct := range []int{20, 40, 60, 80, 100} {
			jobs = append(jobs, job{name, pct})
		}
	}
	rows, err := runJobs(cfg.Parallel, len(jobs), func(i int) (Fig5cRow, error) {
		j := jobs[i]
		sys, err := grid.Case(j.name)
		if err != nil {
			return Fig5cRow{}, err
		}
		req, err := synthRequirements(sys, 1.0)
		if err != nil {
			return Fig5cRow{}, err
		}
		req.Attack.MaxAlteredMeasurements = j.pct * sys.NumMeasurements() / 100
		cfg.applyBudget(req.Attack)
		start := time.Now()
		if _, err := synth.Synthesize(req); err != nil {
			return Fig5cRow{}, fmt.Errorf("fig5c %s pct %d: %w", j.name, j.pct, err)
		}
		return Fig5cRow{Case: j.name, LimitPercent: j.pct, Time: time.Since(start)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		fmt.Fprintf(cfg.Out, "%-9s %7d%% %12s\n", row.Case, row.LimitPercent, row.Time.Round(time.Millisecond))
	}
	return rows, nil
}

// Fig5dRow is one unsatisfiable-synthesis measurement.
type Fig5dRow struct {
	Scenario string
	Minimum  int
	Budget   int
	Time     time.Duration
}

// Fig5d measures synthesis time in unsatisfiable cases: the operator budget
// sweeps up toward (but stays below) the minimum protective size on the
// 30-bus system, in two measurement scenarios with different minima (paper
// Fig. 5(d)).
func Fig5d(cfg Config) ([]Fig5dRow, error) {
	fmt.Fprintln(cfg.Out, "Fig 5(d): synthesis time in unsatisfiable cases")
	fmt.Fprintf(cfg.Out, "%-11s %8s %8s %12s\n", "scenario", "minimum", "budget", "time")
	scenarios := []struct {
		name string
		frac float64
	}{
		{"full", 1.0},
		{"reduced", 0.75},
	}
	// The budget sweep inside one scenario depends on its minimum search, so
	// parallelism is at scenario granularity.
	groups, err := runJobs(cfg.Parallel, len(scenarios), func(i int) ([]Fig5dRow, error) {
		scn := scenarios[i]
		sys, err := grid.Case("ieee30")
		if err != nil {
			return nil, err
		}
		req, err := synthRequirements(sys, scn.frac)
		if err != nil {
			return nil, err
		}
		cfg.applyBudget(req.Attack)
		// Find the true minimum protective size: synthesize, then shrink
		// the budget below each solution until synthesis fails.
		arch, err := synth.Synthesize(req)
		if err != nil {
			return nil, fmt.Errorf("fig5d %s: %w", scn.name, err)
		}
		minimum := len(arch.SecuredBuses)
		for minimum > 1 {
			req2, err := synthRequirements(sys, scn.frac)
			if err != nil {
				return nil, err
			}
			req2.MaxSecuredBuses = minimum - 1
			cfg.applyBudget(req2.Attack)
			smaller, err := synth.Synthesize(req2)
			if errors.Is(err, synth.ErrNoArchitecture) {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("fig5d %s minimum search: %w", scn.name, err)
			}
			minimum = len(smaller.SecuredBuses)
		}
		var rows []Fig5dRow
		for _, below := range []int{3, 2, 1} {
			budget := minimum - below
			if budget < 1 {
				continue
			}
			req2, err := synthRequirements(sys, scn.frac)
			if err != nil {
				return nil, err
			}
			req2.MaxSecuredBuses = budget
			cfg.applyBudget(req2.Attack)
			start := time.Now()
			_, err = synth.Synthesize(req2)
			dt := time.Since(start)
			if err == nil {
				return nil, fmt.Errorf("fig5d %s budget %d: unexpectedly satisfiable below the minimum %d",
					scn.name, budget, minimum)
			}
			rows = append(rows, Fig5dRow{Scenario: scn.name, Minimum: minimum, Budget: budget, Time: dt})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig5dRow
	for _, g := range groups {
		rows = append(rows, g...)
	}
	for _, row := range rows {
		fmt.Fprintf(cfg.Out, "%-11s %8d %8d %12s\n", row.Scenario, row.Minimum, row.Budget, row.Time.Round(time.Millisecond))
	}
	return rows, nil
}

// TableIVRow reports model-size statistics for one system.
type TableIVRow struct {
	Case             string
	Buses            int
	VerifyAllocMB    float64
	SelectAllocMB    float64
	VerifyBoolVars   int
	VerifyClauses    int
	VerifyAtoms      int
	SelectionClauses int
}

// TableIV reports the memory/model-size analogue of the paper's Table IV:
// heap allocated while encoding and solving the verification and candidate
// selection models.
func TableIV(cfg Config) ([]TableIVRow, error) {
	fmt.Fprintln(cfg.Out, "Table IV: model memory (heap allocated during encode+solve, MB)")
	fmt.Fprintf(cfg.Out, "%-9s %6s %12s %12s %10s %10s %8s\n",
		"case", "buses", "verify(MB)", "select(MB)", "boolvars", "clauses", "atoms")
	var rows []TableIVRow
	for _, name := range verificationCases(cfg.Large) {
		sys, err := grid.Case(name)
		if err != nil {
			return nil, err
		}
		_, res, err := timedVerify(tableIVScenario(sys))
		if err != nil {
			return nil, err
		}

		// Candidate selection model alone: encode and solve one selection.
		sel := smt.NewSolver(smt.DefaultOptions())
		fs := make([]smt.Formula, 0, sys.Buses)
		for j := 1; j <= sys.Buses; j++ {
			fs = append(fs, smt.B(sel.BoolVar(fmt.Sprintf("sb_%d", j))))
		}
		sel.AssertAtMostK(fs, sys.Buses/3)
		selRes, err := sel.Check()
		if err != nil {
			return nil, err
		}

		row := TableIVRow{
			Case:             name,
			Buses:            sys.Buses,
			VerifyAllocMB:    float64(res.Stats.AllocBytes) / 1e6,
			SelectAllocMB:    float64(selRes.Stats.AllocBytes) / 1e6,
			VerifyBoolVars:   res.Stats.BoolVars,
			VerifyClauses:    res.Stats.Clauses,
			VerifyAtoms:      res.Stats.Atoms,
			SelectionClauses: selRes.Stats.Clauses,
		}
		rows = append(rows, row)
		fmt.Fprintf(cfg.Out, "%-9s %6d %12.2f %12.2f %10d %10d %8d\n",
			name, sys.Buses, row.VerifyAllocMB, row.SelectAllocMB,
			row.VerifyBoolVars, row.VerifyClauses, row.VerifyAtoms)
	}
	return rows, nil
}
