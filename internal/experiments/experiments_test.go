package experiments

import (
	"io"
	"strings"
	"testing"

	"segrid/internal/smt"
)

// The case-study experiments assert the paper's expected outcomes
// internally and return an error on any mismatch, so running them is a
// regression test for the whole reproduction.
func TestCaseStudyAttacksMatchPaper(t *testing.T) {
	var buf strings.Builder
	if err := CaseStudyAttacks(Config{Out: &buf}); err != nil {
		t.Fatalf("CaseStudyAttacks: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"measurements [12 32 39 46 53]",
		"excluded lines [13]",
		"measurement 46 secured → unsat",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCaseStudySynthesisMatchesPaper(t *testing.T) {
	var buf strings.Builder
	if err := CaseStudySynthesis(Config{Out: &buf}); err != nil {
		t.Fatalf("CaseStudySynthesis: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"scenario 2, 4 buses → no architecture",
		"scenario 3, 5 buses → no architecture",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	rows, err := Fig4a(Config{Out: io.Discard})
	if err != nil {
		t.Fatalf("Fig4a: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// Shape: average time grows with system size.
	for i := 1; i < len(rows); i++ {
		if rows[i].Buses <= rows[i-1].Buses {
			t.Fatalf("cases not size-ordered")
		}
	}
	// Growth shape: the largest system should not verify faster than the
	// smallest (generous slack against concurrent-load noise).
	if rows[3].Average < rows[0].Average/2 {
		t.Errorf("118-bus average %v faster than 14-bus %v; growth shape broken",
			rows[3].Average, rows[0].Average)
	}
}

func TestFig4dShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	rows, err := Fig4d(Config{Out: io.Discard})
	if err != nil {
		t.Fatalf("Fig4d: %v", err)
	}
	// The sat/unsat expectations are asserted inside Fig4d itself; here
	// just check every row carries positive timings. (Relational timing
	// assertions are too flaky under concurrent load; the shape comparison
	// lives in EXPERIMENTS.md and cmd/benchtables output.)
	for _, r := range rows {
		if r.SatTime <= 0 || r.UnsatTime <= 0 {
			t.Fatalf("row %s has non-positive timings", r.Case)
		}
	}
}

// TestParallelSweepMatchesSequential pins the -parallel contract: worker
// pools change only wall-clock, never results or ordering. It also exercises
// the sweep jobs concurrently, so `go test -race` covers the shared-state
// claim in runJobs's contract.
func TestParallelSweepMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	seq, err := Fig4c(Config{Out: io.Discard})
	if err != nil {
		t.Fatalf("sequential Fig4c: %v", err)
	}
	par, err := Fig4c(Config{Out: io.Discard, Parallel: 4})
	if err != nil {
		t.Fatalf("parallel Fig4c: %v", err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Case != par[i].Case || seq[i].Limit != par[i].Limit || seq[i].Feasible != par[i].Feasible {
			t.Errorf("row %d diverges: sequential %+v, parallel %+v", i, seq[i], par[i])
		}
	}
}

// TestSweepBudgetClassified checks that a starvation-level per-instance
// budget surfaces as an Inconclusive-classified error instead of a hang or
// a wrong verdict.
func TestSweepBudgetClassified(t *testing.T) {
	_, err := Fig4c(Config{Out: io.Discard, Parallel: 2, Budget: smt.Budget{MaxConflicts: 1}})
	if err == nil {
		t.Fatalf("expected budget exhaustion to surface as an error")
	}
	if !strings.Contains(err.Error(), "inconclusive") && !strings.Contains(err.Error(), "budget") {
		t.Fatalf("error does not name the budget cause: %v", err)
	}
}

func TestTableIVShape(t *testing.T) {
	rows, err := TableIV(Config{Out: io.Discard})
	if err != nil {
		t.Fatalf("TableIV: %v", err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].VerifyAllocMB <= 0 || rows[i].SelectAllocMB <= 0 {
			t.Fatalf("row %d has non-positive memory", i)
		}
		if rows[i].VerifyClauses <= rows[i-1].VerifyClauses {
			t.Errorf("model size not growing: %v then %v", rows[i-1], rows[i])
		}
	}
}

func TestFig5dShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	rows, err := Fig5d(Config{Out: io.Discard})
	if err != nil {
		t.Fatalf("Fig5d: %v", err)
	}
	if len(rows) == 0 {
		t.Fatalf("no rows")
	}
	byScenario := map[string][]Fig5dRow{}
	for _, r := range rows {
		byScenario[r.Scenario] = append(byScenario[r.Scenario], r)
		if r.Budget >= r.Minimum {
			t.Fatalf("budget %d not below minimum %d", r.Budget, r.Minimum)
		}
	}
	// Structural check only (timing trends are asserted in EXPERIMENTS.md
	// via cmd/benchtables; relational timing in tests is flaky under
	// load): budgets within a scenario are strictly increasing.
	for name, rs := range byScenario {
		for i := 1; i < len(rs); i++ {
			if rs[i].Budget <= rs[i-1].Budget {
				t.Errorf("%s: budgets not increasing: %v", name, rs)
			}
		}
	}
}
