package experiments

import (
	"fmt"

	"segrid/internal/acflow"
	"segrid/internal/acse"
	"segrid/internal/core"
	"segrid/internal/grid"
)

// ACTransferRow is one point of the DC-attack-vs-AC-estimator curve.
type ACTransferRow struct {
	// MaxShift is the worst-case state corruption magnitude (rad).
	MaxShift float64
	// J is the AC estimator's residual statistic; Tau the χ² threshold.
	J, Tau   float64
	Detected bool
}

// ACTransfer runs the repository's extension experiment: a DC-crafted
// stealthy attack is injected into AC measurements at increasing
// magnitudes; the residual grows with the linearization error until the
// detector fires. (Not part of the paper's evaluation; see EXPERIMENTS.md
// "Extension experiments".)
func ACTransfer(cfg Config) ([]ACTransferRow, error) {
	fmt.Fprintln(cfg.Out, "Extension: DC-crafted attack vs AC estimator (IEEE 14-bus lift)")
	fmt.Fprintf(cfg.Out, "%-12s %14s %10s %10s\n", "max |Δθ|", "J", "τ", "detected")

	sys := grid.IEEE14()
	n, err := acflow.FromDC(sys, 0.1, 0.0)
	if err != nil {
		return nil, err
	}
	p := make([]float64, n.Buses+1)
	q := make([]float64, n.Buses+1)
	for j := 2; j <= n.Buses; j++ {
		p[j] = -(0.04 + 0.01*float64(j%6))
		q[j] = -0.015
	}
	st, err := n.Solve(acflow.FlowCase{Slack: 1, SlackV: 1.02, P: p, Q: q})
	if err != nil {
		return nil, err
	}
	ms := acse.FullMeasurementSet(n)
	clean, err := acse.MeasureAll(n, st, ms)
	if err != nil {
		return nil, err
	}
	est, err := acse.NewEstimator(n, ms, 1, 0.002)
	if err != nil {
		return nil, err
	}
	det, err := acse.NewDetector(est, 0.05)
	if err != nil {
		return nil, err
	}

	sc := core.NewScenario(sys)
	sc.TargetStates = []int{12}
	res, err := core.Verify(sc)
	if err != nil {
		return nil, err
	}
	if !res.Feasible {
		return nil, fmt.Errorf("extension: DC attack infeasible")
	}
	base, err := core.FloatMeasurementDeltas(sc, res)
	if err != nil {
		return nil, err
	}
	unit := res.StateChangeFloat(12)
	if unit < 0 {
		unit = -unit
	}

	l := sys.NumLines()
	var rows []ACTransferRow
	for _, mag := range []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2} {
		scale := mag / unit
		z := append([]float64(nil), clean...)
		for i, m := range ms {
			switch m.Kind {
			case acse.MeasPFlowFrom:
				z[i] += scale * base[m.Ref]
			case acse.MeasPFlowTo:
				z[i] += scale * base[l+m.Ref]
			case acse.MeasPInj:
				z[i] -= scale * base[2*l+m.Ref]
			}
		}
		sol, err := est.Estimate(z)
		if err != nil {
			fmt.Fprintf(cfg.Out, "%-12.3f %14s\n", mag, "diverged")
			continue
		}
		row := ACTransferRow{MaxShift: mag, J: sol.J, Tau: det.Threshold(), Detected: det.BadDataDetected(sol)}
		rows = append(rows, row)
		fmt.Fprintf(cfg.Out, "%-12.3f %14.2f %10.1f %10v\n", mag, row.J, row.Tau, row.Detected)
	}
	return rows, nil
}
