package experiments

import (
	"errors"
	"fmt"

	"segrid/internal/core"
	"segrid/internal/synth"
)

// CaseStudyAttacks reruns the paper's Section III-I case study (IEEE
// 14-bus) and prints each objective's outcome.
func CaseStudyAttacks(cfg Config) error {
	fmt.Fprintln(cfg.Out, "Case study (Section III-I), IEEE 14-bus")

	// Objective 1: attack states 9 and 10.
	obj1 := func(cz, cb int, distinct bool) (*core.Result, error) {
		sc := core.NewScenario(core.CaseStudyMeasurements(true).System())
		sc.Meas = core.CaseStudyMeasurements(true)
		sc.Knowledge = core.CaseStudyKnowledge()
		sc.TargetStates = []int{9, 10}
		sc.MaxAlteredMeasurements = cz
		sc.MaxCompromisedBuses = cb
		if distinct {
			sc.DistinctPairs = [][2]int{{9, 10}}
		}
		return core.Verify(sc)
	}
	for _, run := range []struct {
		label    string
		cz, cb   int
		distinct bool
	}{
		{"objective 1, distinct amounts, T_CZ=16 T_CB=7", 16, 7, true},
		{"objective 1, distinct amounts, T_CZ=16 T_CB=6", 16, 6, true},
		{"objective 1, equal amounts,    T_CZ=15 T_CB=6", 15, 6, false},
	} {
		res, err := obj1(run.cz, run.cb, run.distinct)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "  %s → %s", run.label, verdict(res.Feasible))
		if res.Feasible {
			fmt.Fprintf(cfg.Out, "; measurements %v buses %v", res.AlteredMeasurements, res.CompromisedBuses)
		}
		fmt.Fprintln(cfg.Out)
	}

	// Objective 2: attack state 12 alone.
	obj2 := func(secure46, topo bool) (*core.Result, error) {
		sc := core.NewScenario(core.CaseStudyMeasurements(false).System())
		sc.Meas = core.CaseStudyMeasurements(false)
		if secure46 {
			if err := sc.Meas.Secure(46); err != nil {
				return nil, err
			}
		}
		sc.TargetStates = []int{12}
		sc.OnlyTargets = true
		if topo {
			sc.AllowExclusion = true
			sc.AllowInclusion = true
			sc.InService, sc.FixedLines, sc.SecuredStatus = core.CaseStudyTopology()
		}
		return core.Verify(sc)
	}
	for _, run := range []struct {
		label            string
		secure46, topo   bool
		expectedFeasible bool
	}{
		{"objective 2, state 12 only", false, false, true},
		{"objective 2, measurement 46 secured", true, false, false},
		{"objective 2, 46 secured + topology poisoning", true, true, true},
	} {
		res, err := obj2(run.secure46, run.topo)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "  %s → %s", run.label, verdict(res.Feasible))
		if res.Feasible {
			fmt.Fprintf(cfg.Out, "; measurements %v", res.AlteredMeasurements)
			if len(res.ExcludedLines) > 0 {
				fmt.Fprintf(cfg.Out, " excluded lines %v", res.ExcludedLines)
			}
		}
		fmt.Fprintln(cfg.Out)
		if res.Feasible != run.expectedFeasible {
			return fmt.Errorf("case study %q: got %v, paper says %v",
				run.label, res.Feasible, run.expectedFeasible)
		}
	}
	return nil
}

// CaseStudySynthesis reruns the paper's Section IV-E synthesis scenarios.
func CaseStudySynthesis(cfg Config) error {
	fmt.Fprintln(cfg.Out, "Synthesis case study (Section IV-E), IEEE 14-bus")
	for _, run := range []struct {
		scenario int
		budget   int
		expect   bool // architecture exists
	}{
		{1, 4, true},
		{2, 4, false},
		{2, 5, true},
		{3, 5, false},
		{3, 6, true},
	} {
		req, err := synth.CaseStudyRequirements(run.scenario, run.budget)
		if err != nil {
			return err
		}
		arch, err := synth.Synthesize(req)
		switch {
		case err == nil && run.expect:
			fmt.Fprintf(cfg.Out, "  scenario %d, %d buses → architecture %v (%d iterations, %s)\n",
				run.scenario, run.budget, arch.SecuredBuses, arch.Iterations,
				arch.Duration().Round(1e6))
		case errors.Is(err, synth.ErrNoArchitecture) && !run.expect:
			fmt.Fprintf(cfg.Out, "  scenario %d, %d buses → no architecture (matches paper)\n",
				run.scenario, run.budget)
		case err != nil:
			return fmt.Errorf("scenario %d budget %d: %w", run.scenario, run.budget, err)
		default:
			return fmt.Errorf("scenario %d budget %d: architecture %v found, paper says none",
				run.scenario, run.budget, arch.SecuredBuses)
		}
	}
	return nil
}
