package pool

import "sync"

// Registry is the pool's shared-value sibling: a bounded cache of values
// that are *not* leased exclusively. Where Pool hands out one encoder to one
// goroutine at a time, a Registry entry is handed to every caller with the
// same Key simultaneously — the cube synthesis support pool is the canonical
// tenant: harvested counterexample-support clauses are monotone facts about
// an attack model, so concurrent synthesis runs on the same key can all
// publish into and seed from one shared value. Values must therefore be
// internally synchronized; the Registry only guards its own map.
//
// Entries are bounded by MaxEntries with least-recently-used eviction (a
// GetOrCreate touch counts as use). There is no poisoning path: registry
// values are pure accumulations of independently verified facts, so a failed
// run never invalidates them — contrast with Pool.Discard for encoders.
type Registry[T any] struct {
	mu      sync.Mutex
	max     int
	tick    uint64
	entries map[Key]*regEntry[T]
	stats   RegistryStats
}

type regEntry[T any] struct {
	value T
	used  uint64
}

// RegistryStats counts registry traffic.
type RegistryStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int // gauge
}

// NewRegistry builds a registry bounded to maxEntries values (values ≤ 0
// select the default of 64).
func NewRegistry[T any](maxEntries int) *Registry[T] {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	return &Registry[T]{max: maxEntries, entries: make(map[Key]*regEntry[T])}
}

// GetOrCreate returns the value registered under key, building it with
// create on first use. The build runs under the registry lock — keep create
// cheap (allocate an empty accumulator, not a populated one). Evicts the
// least recently used entry when the bound is exceeded.
func (r *Registry[T]) GetOrCreate(key Key, create func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tick++
	if e, ok := r.entries[key]; ok {
		e.used = r.tick
		r.stats.Hits++
		return e.value
	}
	r.stats.Misses++
	e := &regEntry[T]{value: create(), used: r.tick}
	r.entries[key] = e
	for len(r.entries) > r.max {
		var victim Key
		var oldest uint64
		first := true
		for k, cand := range r.entries {
			if first || cand.used < oldest {
				victim, oldest, first = k, cand.used, false
			}
		}
		delete(r.entries, victim)
		r.stats.Evictions++
	}
	return e.value
}

// Stats snapshots registry counters.
func (r *Registry[T]) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.Entries = len(r.entries)
	return st
}
