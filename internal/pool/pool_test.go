package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"segrid/internal/faultinject"
	"segrid/internal/smt"
)

// testItem is a pool item instrumented to detect lease-exclusivity and
// quarantine violations.
type testItem struct {
	id    int
	key   Key
	inUse atomic.Bool
	dirty bool // set by tests to make Reset fail
}

type testPool = Pool[*testItem]

func newTestPool(t *testing.T, cfg Config[*testItem]) (*testPool, *atomic.Int64) {
	t.Helper()
	var built atomic.Int64
	if cfg.New == nil {
		cfg.New = func(_ context.Context, key Key) (*testItem, error) {
			return &testItem{id: int(built.Add(1)), key: key}, nil
		}
	}
	if cfg.Reset == nil {
		cfg.Reset = func(it *testItem) error {
			if it.dirty {
				return errors.New("dirty")
			}
			return nil
		}
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, &built
}

var keyA = Key{Topology: "ieee14", Shape: "anystate"}

// TestPoolWarmReuse checks the hit path hands back the exact instance the
// previous lease returned, and the counters see it.
func TestPoolWarmReuse(t *testing.T) {
	p, built := newTestPool(t, Config[*testItem]{})
	ctx := context.Background()

	l1, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Warm() {
		t.Fatalf("first checkout reported warm")
	}
	first := l1.Item
	if err := l1.Return(); err != nil {
		t.Fatal(err)
	}
	l2, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Warm() || l2.Item != first {
		t.Fatalf("second checkout got item %v (warm=%v), want warm reuse of %v", l2.Item, l2.Warm(), first)
	}
	if l2.Key() != keyA {
		t.Fatalf("lease key = %+v, want %+v", l2.Key(), keyA)
	}
	// A different key must not see the warm item.
	l3, err := p.Checkout(ctx, Key{Topology: "ieee30", Shape: "anystate"})
	if err != nil {
		t.Fatal(err)
	}
	if l3.Warm() || l3.Item == first {
		t.Fatalf("cross-key checkout leaked a warm encoder")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 2 || built.Load() != 2 {
		t.Fatalf("stats = %+v, built = %d; want 1 hit, 2 misses, 2 builds", st, built.Load())
	}
}

// TestPoolQuarantine checks a discarded item never resurfaces.
func TestPoolQuarantine(t *testing.T) {
	p, _ := newTestPool(t, Config[*testItem]{})
	ctx := context.Background()
	l1, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := l1.Item
	if err := l1.Discard(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l, err := p.Checkout(ctx, keyA)
		if err != nil {
			t.Fatal(err)
		}
		if l.Item == poisoned {
			t.Fatalf("poisoned item resurfaced on checkout %d", i)
		}
		if err := l.Return(); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Discards != 1 {
		t.Fatalf("Discards = %d, want 1", st.Discards)
	}
}

// TestPoolResetFailureQuarantines checks Return routes a failing Reset to
// quarantine instead of the warm list.
func TestPoolResetFailureQuarantines(t *testing.T) {
	p, _ := newTestPool(t, Config[*testItem]{})
	ctx := context.Background()
	l, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	bad := l.Item
	bad.dirty = true
	if err := l.Return(); err != nil {
		t.Fatalf("Return after failed reset should succeed (item quarantined), got %v", err)
	}
	l2, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Warm() || l2.Item == bad {
		t.Fatalf("reset-rejected item was pooled")
	}
	st := p.Stats()
	if st.ResetFailures != 1 || st.Discards != 1 || st.Returns != 0 {
		t.Fatalf("stats = %+v, want 1 reset failure counted as discard", st)
	}
}

// TestPoolExhaustionFailsFast checks the live bound returns ErrExhausted
// immediately instead of blocking.
func TestPoolExhaustionFailsFast(t *testing.T) {
	p, _ := newTestPool(t, Config[*testItem]{MaxLive: 2})
	ctx := context.Background()
	l1, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkout(ctx, keyA); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkout(ctx, keyA); !errors.Is(err, ErrExhausted) {
		t.Fatalf("third checkout = %v, want ErrExhausted", err)
	}
	// Settling a lease frees the slot.
	if err := l1.Discard(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkout(ctx, keyA); err != nil {
		t.Fatalf("checkout after discard = %v, want success", err)
	}
}

// TestPoolBuildErrorReleasesSlot checks a failing Config.New does not leak
// its reserved live slot.
func TestPoolBuildErrorReleasesSlot(t *testing.T) {
	boom := errors.New("boom")
	fail := true
	cfg := Config[*testItem]{
		MaxLive: 1,
		New: func(_ context.Context, key Key) (*testItem, error) {
			if fail {
				return nil, boom
			}
			return &testItem{key: key}, nil
		},
	}
	p, _ := newTestPool(t, cfg)
	if _, err := p.Checkout(context.Background(), keyA); !errors.Is(err, boom) {
		t.Fatalf("checkout = %v, want build error", err)
	}
	fail = false
	if _, err := p.Checkout(context.Background(), keyA); err != nil {
		t.Fatalf("checkout after build failure = %v, want success (slot released)", err)
	}
	if st := p.Stats(); st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1 (failed build uncounted)", st.Misses)
	}
}

// TestPoolTrimAndFresh checks the idle bound trims returns and
// CheckoutFresh bypasses a populated warm list.
func TestPoolTrimAndFresh(t *testing.T) {
	p, _ := newTestPool(t, Config[*testItem]{MaxIdlePerKey: 1})
	ctx := context.Background()
	l1, _ := p.Checkout(ctx, keyA)
	l2, _ := p.Checkout(ctx, keyA)
	warm := l1.Item
	if err := l1.Return(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Return(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Idle != 1 || st.Trimmed != 1 {
		t.Fatalf("stats = %+v, want 1 idle + 1 trimmed", st)
	}
	lf, err := p.CheckoutFresh(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Warm() || lf.Item == warm {
		t.Fatalf("CheckoutFresh served the warm item")
	}
	// The warm item is still there for a regular checkout.
	lw, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if !lw.Warm() || lw.Item != warm {
		t.Fatalf("warm item lost after CheckoutFresh")
	}
}

// TestPoolDoubleSettle checks the lease lifecycle is one-way and single-use.
func TestPoolDoubleSettle(t *testing.T) {
	p, _ := newTestPool(t, Config[*testItem]{})
	l, err := p.Checkout(context.Background(), keyA)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Return(); err != nil {
		t.Fatal(err)
	}
	if err := l.Return(); err == nil {
		t.Fatalf("double Return succeeded")
	}
	if err := l.Discard(); err == nil {
		t.Fatalf("Discard after Return succeeded")
	}
	if st := p.Stats(); st.Live != 1 || st.Idle != 1 {
		t.Fatalf("stats after double settle = %+v, want live=idle=1", st)
	}
}

// TestPoolDrain checks shutdown drains warm lists without touching
// outstanding leases.
func TestPoolDrain(t *testing.T) {
	p, _ := newTestPool(t, Config[*testItem]{MaxIdlePerKey: 4})
	ctx := context.Background()
	var leases []*Lease[*testItem]
	for i := 0; i < 4; i++ {
		l, err := p.Checkout(ctx, keyA)
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, l)
	}
	for _, l := range leases[:2] {
		if err := l.Return(); err != nil {
			t.Fatal(err)
		}
	}
	drained := p.Drain()
	if len(drained) != 2 {
		t.Fatalf("Drain returned %d items, want 2", len(drained))
	}
	st := p.Stats()
	if st.Idle != 0 || st.Live != 2 {
		t.Fatalf("stats after drain = %+v, want idle 0, live 2 (outstanding)", st)
	}
	for _, l := range leases[2:] {
		if err := l.Discard(); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.Live != 0 {
		t.Fatalf("live = %d after settling all leases, want 0", st.Live)
	}
}

// TestPoolConcurrentLoad hammers checkout/reset/return from many goroutines
// under -race, asserting lease exclusivity (no item leased twice at once),
// conservation (live returns to zero) and counter consistency.
func TestPoolConcurrentLoad(t *testing.T) {
	p, _ := newTestPool(t, Config[*testItem]{MaxLive: 8, MaxIdlePerKey: 4})
	keys := []Key{
		{Topology: "ieee14", Shape: "a"},
		{Topology: "ieee14", Shape: "b"},
		{Topology: "ieee57", Shape: "a"},
	}
	const (
		workers = 16
		iters   = 300
	)
	var (
		wg        sync.WaitGroup
		checkouts atomic.Uint64
		sheds     atomic.Uint64
		failures  atomic.Uint64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := keys[(w+i)%len(keys)]
				l, err := p.Checkout(context.Background(), key)
				if errors.Is(err, ErrExhausted) {
					sheds.Add(1)
					continue
				}
				if err != nil {
					failures.Add(1)
					return
				}
				checkouts.Add(1)
				if !l.Item.inUse.CompareAndSwap(false, true) {
					failures.Add(1)
					return
				}
				if l.Item.key != key {
					failures.Add(1)
					return
				}
				l.Item.inUse.Store(false)
				if i%7 == 3 {
					err = l.Discard()
				} else {
					err = l.Return()
				}
				if err != nil {
					failures.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d lease invariant violations under load", failures.Load())
	}
	st := p.Stats()
	if st.Live != st.Idle {
		t.Fatalf("outstanding leases after drain-down: %+v", st)
	}
	if st.Hits+st.Misses != checkouts.Load() {
		t.Fatalf("hits+misses = %d, want %d checkouts", st.Hits+st.Misses, checkouts.Load())
	}
	if got := st.Returns + st.Discards + st.Trimmed; got != checkouts.Load() {
		t.Fatalf("settlements %d ≠ checkouts %d (stats %+v)", got, checkouts.Load(), st)
	}
	t.Logf("pool load: %d checkouts, %d sheds, stats %+v", checkouts.Load(), sheds.Load(), st)
}

// TestPoolPoisonedEncoderViaInjectedFault is the end-to-end quarantine path:
// a pooled warm SMT solver is poisoned by an injected fault mid-check, the
// service-side rule discards it, and the replacement encoder — never the
// poisoned instance — decides the query correctly.
func TestPoolPoisonedEncoderViaInjectedFault(t *testing.T) {
	// One "request" against a warm encoder: a scoped conflict-rich unsat
	// query, mimicking the service's push/assert/check/pop cycle.
	assertPigeonhole := func(s *smt.Solver) {
		const n = 6
		vs := make([][]smt.BoolVar, n+1)
		for p := range vs {
			vs[p] = make([]smt.BoolVar, n)
			for h := range vs[p] {
				vs[p][h] = s.BoolVar(fmt.Sprintf("p%d_h%d", p, h))
			}
		}
		for p := 0; p <= n; p++ {
			fs := make([]smt.Formula, n)
			for h := 0; h < n; h++ {
				fs[h] = smt.B(vs[p][h])
			}
			s.Assert(smt.Or(fs...))
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.Assert(smt.Or(smt.Not(smt.B(vs[p1][h])), smt.Not(smt.B(vs[p2][h]))))
				}
			}
		}
	}
	request := func(s *smt.Solver, inj *faultinject.Injector) (*smt.Result, error) {
		s.Push()
		defer s.Pop()
		assertPigeonhole(s)
		s.SetInterrupter(inj)
		defer s.SetInterrupter(nil)
		return s.Check()
	}
	p, err := New(Config[*smt.Solver]{
		New: func(_ context.Context, _ Key) (*smt.Solver, error) {
			return smt.NewSolver(smt.DefaultOptions()), nil
		},
		Reset: func(s *smt.Solver) error {
			if s.NumScopes() != 1 {
				return fmt.Errorf("scope stack not unwound: %d", s.NumScopes())
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Topology: "tiny", Shape: "pigeonhole"}

	// Warm the pool with a healthy solve.
	l, err := p.Checkout(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	res, err := request(l.Item, faultinject.NewInjector(faultinject.Decision{}))
	if err != nil || res.Status != smt.Unsat {
		t.Fatalf("warmup check = %v/%v, want unsat", res, err)
	}
	if err := l.Return(); err != nil {
		t.Fatal(err)
	}

	// Poison the warm encoder mid-check via the injected fault.
	l, err = p.Checkout(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Warm() {
		t.Fatalf("expected the warm encoder")
	}
	poisoned := l.Item
	inj := faultinject.NewInjector(faultinject.Decision{Kind: faultinject.Poison, AfterPolls: 3})
	res, err = request(poisoned, inj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != smt.Unknown || !errors.Is(res.Why, faultinject.ErrPoisoned) {
		t.Fatalf("poisoned check = %v (why %v), want Unknown/ErrPoisoned", res.Status, res.Why)
	}
	if !inj.Fired() {
		t.Fatalf("injector never fired")
	}
	// Service rule: Unknown ⇒ quarantine, never Return.
	if err := l.Discard(); err != nil {
		t.Fatal(err)
	}

	// The replacement must be a different instance and decide correctly.
	l, err = p.Checkout(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if l.Warm() || l.Item == poisoned {
		t.Fatalf("poisoned encoder reused after quarantine")
	}
	res, err = request(l.Item, faultinject.NewInjector(faultinject.Decision{}))
	if err != nil || res.Status != smt.Unsat {
		t.Fatalf("replacement check = %v/%v, want unsat", res, err)
	}
	if err := l.Return(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Discards != 1 {
		t.Fatalf("Discards = %d, want 1", st.Discards)
	}
}
