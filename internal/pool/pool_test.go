package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"segrid/internal/faultinject"
	"segrid/internal/smt"
)

// testItem is a pool item instrumented to detect lease-exclusivity,
// quarantine and double-close violations.
type testItem struct {
	id     int
	key    Key
	size   int64
	inUse  atomic.Bool
	closed atomic.Int32
	dirty  bool // set by tests to make Reset fail
}

type testPool = Pool[*testItem]

func newTestPool(t *testing.T, cfg Config[*testItem]) (*testPool, *atomic.Int64) {
	t.Helper()
	var built atomic.Int64
	if cfg.New == nil {
		cfg.New = func(_ context.Context, key Key) (*testItem, error) {
			return &testItem{id: int(built.Add(1)), key: key}, nil
		}
	}
	if cfg.Reset == nil {
		cfg.Reset = func(it *testItem) error {
			if it.dirty {
				return errors.New("dirty")
			}
			return nil
		}
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, &built
}

// countingClose returns a Close hook that flags double-closes and closes of
// in-use items, plus the total-closes counter.
func countingClose(t *testing.T) (func(*testItem), *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var closes, violations atomic.Int64
	return func(it *testItem) {
		closes.Add(1)
		if it.closed.Add(1) != 1 {
			violations.Add(1)
		}
		if it.inUse.Load() {
			violations.Add(1)
		}
	}, &closes, &violations
}

var keyA = Key{Topology: "ieee14", Shape: "anystate"}

// TestPoolWarmReuse checks the hit path hands back the exact instance the
// previous lease returned, and the counters see it.
func TestPoolWarmReuse(t *testing.T) {
	p, built := newTestPool(t, Config[*testItem]{})
	ctx := context.Background()

	l1, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Warm() {
		t.Fatalf("first checkout reported warm")
	}
	first := l1.Item
	if err := l1.Return(); err != nil {
		t.Fatal(err)
	}
	l2, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Warm() || l2.Item != first {
		t.Fatalf("second checkout got item %v (warm=%v), want warm reuse of %v", l2.Item, l2.Warm(), first)
	}
	if l2.Key() != keyA {
		t.Fatalf("lease key = %+v, want %+v", l2.Key(), keyA)
	}
	// A different key must not see the warm item.
	l3, err := p.Checkout(ctx, Key{Topology: "ieee30", Shape: "anystate"})
	if err != nil {
		t.Fatal(err)
	}
	if l3.Warm() || l3.Item == first {
		t.Fatalf("cross-key checkout leaked a warm encoder")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 2 || built.Load() != 2 {
		t.Fatalf("stats = %+v, built = %d; want 1 hit, 2 misses, 2 builds", st, built.Load())
	}
}

// TestPoolQuarantine checks a discarded item never resurfaces.
func TestPoolQuarantine(t *testing.T) {
	p, _ := newTestPool(t, Config[*testItem]{})
	ctx := context.Background()
	l1, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := l1.Item
	if err := l1.Discard(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l, err := p.Checkout(ctx, keyA)
		if err != nil {
			t.Fatal(err)
		}
		if l.Item == poisoned {
			t.Fatalf("poisoned item resurfaced on checkout %d", i)
		}
		if err := l.Return(); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Discards != 1 {
		t.Fatalf("Discards = %d, want 1", st.Discards)
	}
}

// TestPoolResetFailureQuarantines checks Return routes a failing Reset to
// quarantine instead of the warm list.
func TestPoolResetFailureQuarantines(t *testing.T) {
	p, _ := newTestPool(t, Config[*testItem]{})
	ctx := context.Background()
	l, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	bad := l.Item
	bad.dirty = true
	if err := l.Return(); err != nil {
		t.Fatalf("Return after failed reset should succeed (item quarantined), got %v", err)
	}
	l2, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Warm() || l2.Item == bad {
		t.Fatalf("reset-rejected item was pooled")
	}
	st := p.Stats()
	if st.ResetFailures != 1 || st.Discards != 1 || st.Returns != 0 {
		t.Fatalf("stats = %+v, want 1 reset failure counted as discard", st)
	}
}

// TestPoolExhaustionFailsFast checks the live bound returns ErrExhausted
// immediately instead of blocking.
func TestPoolExhaustionFailsFast(t *testing.T) {
	p, _ := newTestPool(t, Config[*testItem]{MaxLive: 2})
	ctx := context.Background()
	l1, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkout(ctx, keyA); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkout(ctx, keyA); !errors.Is(err, ErrExhausted) {
		t.Fatalf("third checkout = %v, want ErrExhausted", err)
	}
	// Settling a lease frees the slot.
	if err := l1.Discard(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkout(ctx, keyA); err != nil {
		t.Fatalf("checkout after discard = %v, want success", err)
	}
}

// TestPoolBuildErrorReleasesSlot checks a failing Config.New does not leak
// its reserved live slot.
func TestPoolBuildErrorReleasesSlot(t *testing.T) {
	boom := errors.New("boom")
	fail := true
	cfg := Config[*testItem]{
		MaxLive: 1,
		New: func(_ context.Context, key Key) (*testItem, error) {
			if fail {
				return nil, boom
			}
			return &testItem{key: key}, nil
		},
	}
	p, _ := newTestPool(t, cfg)
	if _, err := p.Checkout(context.Background(), keyA); !errors.Is(err, boom) {
		t.Fatalf("checkout = %v, want build error", err)
	}
	fail = false
	if _, err := p.Checkout(context.Background(), keyA); err != nil {
		t.Fatalf("checkout after build failure = %v, want success (slot released)", err)
	}
	st := p.Stats()
	if st.Misses != 2 || st.BuildFailures != 1 {
		t.Fatalf("Misses = %d, BuildFailures = %d; want 2 cold attempts, 1 failure", st.Misses, st.BuildFailures)
	}
}

// TestPoolBuildFailureStatsNeverSkewed hammers the failing-build path while a
// reader snapshots Stats: Misses must never be observed below BuildFailures
// (the old implementation rolled Misses back after the fact, so a snapshot
// between increment and rollback over-reported misses and hit-rate math on
// successful checkouts went negative).
func TestPoolBuildFailureStatsNeverSkewed(t *testing.T) {
	boom := errors.New("boom")
	var built atomic.Int64
	cfg := Config[*testItem]{
		MaxLive: 16,
		New: func(_ context.Context, key Key) (*testItem, error) {
			if built.Add(1)%2 == 0 {
				return nil, boom
			}
			return &testItem{key: key}, nil
		},
	}
	p, _ := newTestPool(t, cfg)
	stop := make(chan struct{})
	var skews atomic.Int64
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := p.Stats()
			// Leases handed out so far can never exceed cold attempts plus
			// hits; with rollback, this transiently went negative.
			if st.Misses < st.BuildFailures {
				skews.Add(1)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l, err := p.Checkout(context.Background(), keyA)
				if err != nil {
					continue
				}
				_ = l.Discard()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	if skews.Load() != 0 {
		t.Fatalf("%d Stats snapshots saw Misses < BuildFailures", skews.Load())
	}
	st := p.Stats()
	if st.Hits+st.Misses-st.BuildFailures != st.Discards {
		t.Fatalf("lease conservation broken: %+v", st)
	}
}

// TestPoolTrimAndFresh checks the per-key idle bound evicts the key's LRU
// item — the freshly returned one stays warm — and CheckoutFresh bypasses a
// populated warm list.
func TestPoolTrimAndFresh(t *testing.T) {
	p, _ := newTestPool(t, Config[*testItem]{MaxIdlePerKey: 1})
	ctx := context.Background()
	l1, _ := p.Checkout(ctx, keyA)
	l2, _ := p.Checkout(ctx, keyA)
	stale, warm := l1.Item, l2.Item
	if err := l1.Return(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Return(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Idle != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 idle + 1 evicted", st)
	}
	lf, err := p.CheckoutFresh(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Warm() || lf.Item == warm || lf.Item == stale {
		t.Fatalf("CheckoutFresh served a pooled item")
	}
	// The surviving warm item is the most recently returned one, not the
	// evicted LRU, and a regular checkout still finds it.
	lw, err := p.Checkout(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if !lw.Warm() || lw.Item != warm {
		t.Fatalf("warm checkout got %v, want the most recently returned item %v", lw.Item, warm)
	}
}

// TestPoolLRUEvictionOrder checks the recency list spans keys: with a global
// idle budget of 2, returns across three keys evict in least-recently-used
// order regardless of key, and byte accounting tracks the survivors.
func TestPoolLRUEvictionOrder(t *testing.T) {
	closeHook, closes, violations := countingClose(t)
	p, _ := newTestPool(t, Config[*testItem]{
		MaxIdle: 2,
		Close:   closeHook,
		Size:    func(it *testItem) int64 { return it.size },
	})
	ctx := context.Background()
	kb := Key{Topology: "ieee30", Shape: "anystate"}
	kc := Key{Topology: "ieee57", Shape: "anystate"}

	la, _ := p.Checkout(ctx, keyA)
	lb, _ := p.Checkout(ctx, kb)
	lc, _ := p.Checkout(ctx, kc)
	a, b, c := la.Item, lb.Item, lc.Item
	a.size, b.size, c.size = 100, 200, 400

	// Return order a, b, c ⇒ recency order (oldest first) a, b, c. The
	// third return breaches MaxIdle=2 and must evict a — the global LRU —
	// even though a, b, c live under three different keys.
	for _, l := range []*Lease[*testItem]{la, lb, lc} {
		if err := l.Return(); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Idle != 2 || st.Evictions != 1 || st.EvictedBytes != 100 {
		t.Fatalf("stats = %+v, want 2 idle, 1 eviction of 100 bytes", st)
	}
	if st.IdleBytes != 600 {
		t.Fatalf("IdleBytes = %d, want 600 (b+c)", st.IdleBytes)
	}
	if a.closed.Load() != 1 {
		t.Fatalf("evicted LRU item not closed")
	}
	if b.closed.Load() != 0 || c.closed.Load() != 0 {
		t.Fatalf("survivors were closed")
	}

	// Touching b (checkout+return) makes c the LRU; the next cross-key
	// return must evict c.
	lb2, err := p.Checkout(ctx, kb)
	if err != nil || lb2.Item != b {
		t.Fatalf("checkout(kb) = %v, %v; want warm b", lb2, err)
	}
	if err := lb2.Return(); err != nil {
		t.Fatal(err)
	}
	ld, _ := p.Checkout(ctx, keyA)
	d := ld.Item
	d.size = 50
	if err := ld.Return(); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if c.closed.Load() != 1 {
		t.Fatalf("expected c evicted after b was touched; stats %+v", st)
	}
	if st.Evictions != 2 || st.EvictedBytes != 500 || st.IdleBytes != 250 {
		t.Fatalf("stats = %+v, want 2 evictions (500B) and 250 idle bytes", st)
	}
	if closes.Load() != 2 || violations.Load() != 0 {
		t.Fatalf("closes = %d (violations %d), want exactly 2", closes.Load(), violations.Load())
	}
}

// TestPoolByteBudget checks MaxIdleBytes evicts LRU items until the summed
// sampled cost fits, even when the count budgets are slack.
func TestPoolByteBudget(t *testing.T) {
	closeHook, closes, violations := countingClose(t)
	p, _ := newTestPool(t, Config[*testItem]{
		MaxIdlePerKey: 8,
		MaxIdleBytes:  1000,
		Close:         closeHook,
		Size:          func(it *testItem) int64 { return it.size },
	})
	ctx := context.Background()
	var items []*testItem
	for i := 0; i < 4; i++ {
		l, err := p.CheckoutFresh(ctx, keyA) // distinct cold builds
		if err != nil {
			t.Fatal(err)
		}
		l.Item.size = 400
		items = append(items, l.Item)
		if err := l.Return(); err != nil {
			t.Fatal(err)
		}
	}
	// 4×400 returned against a 1000-byte budget: returns 3 and 4 each
	// breach it, evicting the LRU (items 0 then 1); 2 and 3 survive.
	st := p.Stats()
	if st.IdleBytes != 800 || st.Idle != 2 || st.Evictions != 2 || st.EvictedBytes != 800 {
		t.Fatalf("stats = %+v, want 2 survivors at 800 idle bytes, 2 evictions", st)
	}
	for i, it := range items {
		want := int32(0)
		if i < 2 {
			want = 1
		}
		if got := it.closed.Load(); got != want {
			t.Fatalf("item %d closed %d times, want %d", i, got, want)
		}
	}
	if closes.Load() != 2 || violations.Load() != 0 {
		t.Fatalf("closes = %d (violations %d), want exactly 2", closes.Load(), violations.Load())
	}
}

// TestPoolDoubleSettle checks the lease lifecycle is one-way and single-use.
func TestPoolDoubleSettle(t *testing.T) {
	p, _ := newTestPool(t, Config[*testItem]{})
	l, err := p.Checkout(context.Background(), keyA)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Return(); err != nil {
		t.Fatal(err)
	}
	if err := l.Return(); err == nil {
		t.Fatalf("double Return succeeded")
	}
	if err := l.Discard(); err == nil {
		t.Fatalf("Discard after Return succeeded")
	}
	if st := p.Stats(); st.Live != 1 || st.Idle != 1 {
		t.Fatalf("stats after double settle = %+v, want live=idle=1", st)
	}
}

// TestPoolDrain checks shutdown closes and drops every warm item without
// touching outstanding leases.
func TestPoolDrain(t *testing.T) {
	closeHook, closes, violations := countingClose(t)
	p, _ := newTestPool(t, Config[*testItem]{MaxIdlePerKey: 4, Close: closeHook})
	ctx := context.Background()
	var leases []*Lease[*testItem]
	for i := 0; i < 4; i++ {
		l, err := p.Checkout(ctx, keyA)
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, l)
	}
	for _, l := range leases[:2] {
		if err := l.Return(); err != nil {
			t.Fatal(err)
		}
	}
	if drained := p.Drain(); drained != 2 {
		t.Fatalf("Drain dropped %d items, want 2", drained)
	}
	if closes.Load() != 2 || violations.Load() != 0 {
		t.Fatalf("drain closed %d items (violations %d), want 2", closes.Load(), violations.Load())
	}
	st := p.Stats()
	if st.Idle != 0 || st.IdleBytes != 0 || st.Live != 2 {
		t.Fatalf("stats after drain = %+v, want idle 0, live 2 (outstanding)", st)
	}
	for _, l := range leases[2:] {
		if err := l.Discard(); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.Live != 0 {
		t.Fatalf("live = %d after settling all leases, want 0", st.Live)
	}
	// Outstanding leases settled via Discard close too: 2 drained + 2
	// discarded = every build closed exactly once.
	if closes.Load() != 4 || violations.Load() != 0 {
		t.Fatalf("closes = %d (violations %d), want all 4 items closed once", closes.Load(), violations.Load())
	}
}

// TestPoolCloseHookDropPaths drives every path that removes an item from the
// pool's accounting — per-key eviction on Return, Reset-failure quarantine,
// and explicit Discard — and asserts the Close hook fires exactly once per
// dropped item and never for items still pooled or leased.
func TestPoolCloseHookDropPaths(t *testing.T) {
	closeHook, closes, violations := countingClose(t)
	p, built := newTestPool(t, Config[*testItem]{MaxIdlePerKey: 1, Close: closeHook})
	ctx := context.Background()

	// Path 1: Return past MaxIdlePerKey evicts the key's LRU.
	l1, _ := p.Checkout(ctx, keyA)
	l2, _ := p.Checkout(ctx, keyA)
	evictee := l1.Item
	if err := l1.Return(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Return(); err != nil {
		t.Fatal(err)
	}
	if evictee.closed.Load() != 1 {
		t.Fatalf("evicted item closed %d times, want 1", evictee.closed.Load())
	}

	// Path 2: Reset failure quarantines the returning item.
	ld, _ := p.CheckoutFresh(ctx, keyA)
	dirty := ld.Item
	dirty.dirty = true
	if err := ld.Return(); err != nil {
		t.Fatal(err)
	}
	if dirty.closed.Load() != 1 {
		t.Fatalf("reset-rejected item closed %d times, want 1", dirty.closed.Load())
	}

	// Path 3: explicit Discard.
	lp, _ := p.CheckoutFresh(ctx, keyA)
	poisoned := lp.Item
	if err := lp.Discard(); err != nil {
		t.Fatal(err)
	}
	if poisoned.closed.Load() != 1 {
		t.Fatalf("discarded item closed %d times, want 1", poisoned.closed.Load())
	}

	// The one item still warm was never closed; Drain closes it.
	if closes.Load() != 3 || violations.Load() != 0 {
		t.Fatalf("closes = %d (violations %d), want 3 before drain", closes.Load(), violations.Load())
	}
	if drained := p.Drain(); drained != 1 {
		t.Fatalf("Drain dropped %d, want 1", drained)
	}
	if closes.Load() != int64(built.Load()) || violations.Load() != 0 {
		t.Fatalf("closes = %d, builds = %d (violations %d): every build must close exactly once", closes.Load(), built.Load(), violations.Load())
	}
	if st := p.Stats(); st.Live != 0 || st.Idle != 0 {
		t.Fatalf("pool not empty after drop-path sweep: %+v", st)
	}
}

// TestPoolConcurrentLoad hammers checkout/reset/return from many goroutines
// under -race, asserting lease exclusivity (no item leased twice at once),
// conservation (live returns to zero, every dropped item closed exactly
// once) and counter consistency under the LRU budgets.
func TestPoolConcurrentLoad(t *testing.T) {
	closeHook, closes, closeViolations := countingClose(t)
	p, built := newTestPool(t, Config[*testItem]{
		MaxLive:       8,
		MaxIdlePerKey: 2,
		MaxIdle:       4,
		MaxIdleBytes:  1 << 20,
		Close:         closeHook,
		Size:          func(*testItem) int64 { return 1024 },
	})
	keys := []Key{
		{Topology: "ieee14", Shape: "a"},
		{Topology: "ieee14", Shape: "b"},
		{Topology: "ieee57", Shape: "a"},
	}
	const (
		workers = 16
		iters   = 300
	)
	var (
		wg        sync.WaitGroup
		checkouts atomic.Uint64
		sheds     atomic.Uint64
		failures  atomic.Uint64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := keys[(w+i)%len(keys)]
				l, err := p.Checkout(context.Background(), key)
				if errors.Is(err, ErrExhausted) {
					sheds.Add(1)
					continue
				}
				if err != nil {
					failures.Add(1)
					return
				}
				checkouts.Add(1)
				if !l.Item.inUse.CompareAndSwap(false, true) {
					failures.Add(1)
					return
				}
				if l.Item.key != key {
					failures.Add(1)
					return
				}
				l.Item.inUse.Store(false)
				if i%7 == 3 {
					err = l.Discard()
				} else {
					err = l.Return()
				}
				if err != nil {
					failures.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d lease invariant violations under load", failures.Load())
	}
	st := p.Stats()
	if st.Live != st.Idle {
		t.Fatalf("outstanding leases after drain-down: %+v", st)
	}
	if st.Hits+st.Misses != checkouts.Load() {
		t.Fatalf("hits+misses = %d, want %d checkouts", st.Hits+st.Misses, checkouts.Load())
	}
	// Every checkout settles through Return or Discard (evictions drop
	// pooled items, not settlements).
	if got := st.Returns + st.Discards; got != checkouts.Load() {
		t.Fatalf("settlements %d ≠ checkouts %d (stats %+v)", got, checkouts.Load(), st)
	}
	if st.Idle > 4 || st.IdleBytes != int64(st.Idle)*1024 {
		t.Fatalf("idle budget breached: %+v", st)
	}
	// Builds conserve: every built item is either still idle or was closed
	// (evicted, quarantined, or discarded). Drain closes the stragglers.
	p.Drain()
	if closeViolations.Load() != 0 {
		t.Fatalf("%d close violations (double close or close-while-leased)", closeViolations.Load())
	}
	if closes.Load() != built.Load() {
		t.Fatalf("closes = %d, builds = %d: dropped items leaked past the Close hook", closes.Load(), built.Load())
	}
	t.Logf("pool load: %d checkouts, %d sheds, %d builds/closes, stats %+v", checkouts.Load(), sheds.Load(), built.Load(), st)
}

// TestPoolPoisonedEncoderViaInjectedFault is the end-to-end quarantine path:
// a pooled warm SMT solver is poisoned by an injected fault mid-check, the
// service-side rule discards it, and the replacement encoder — never the
// poisoned instance — decides the query correctly.
func TestPoolPoisonedEncoderViaInjectedFault(t *testing.T) {
	// One "request" against a warm encoder: a scoped conflict-rich unsat
	// query, mimicking the service's push/assert/check/pop cycle.
	assertPigeonhole := func(s *smt.Solver) {
		const n = 6
		vs := make([][]smt.BoolVar, n+1)
		for p := range vs {
			vs[p] = make([]smt.BoolVar, n)
			for h := range vs[p] {
				vs[p][h] = s.BoolVar(fmt.Sprintf("p%d_h%d", p, h))
			}
		}
		for p := 0; p <= n; p++ {
			fs := make([]smt.Formula, n)
			for h := 0; h < n; h++ {
				fs[h] = smt.B(vs[p][h])
			}
			s.Assert(smt.Or(fs...))
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.Assert(smt.Or(smt.Not(smt.B(vs[p1][h])), smt.Not(smt.B(vs[p2][h]))))
				}
			}
		}
	}
	request := func(s *smt.Solver, inj *faultinject.Injector) (*smt.Result, error) {
		s.Push()
		defer s.Pop()
		assertPigeonhole(s)
		s.SetInterrupter(inj)
		defer s.SetInterrupter(nil)
		return s.Check()
	}
	p, err := New(Config[*smt.Solver]{
		New: func(_ context.Context, _ Key) (*smt.Solver, error) {
			return smt.NewSolver(smt.DefaultOptions()), nil
		},
		Reset: func(s *smt.Solver) error {
			if s.NumScopes() != 1 {
				return fmt.Errorf("scope stack not unwound: %d", s.NumScopes())
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Topology: "tiny", Shape: "pigeonhole"}

	// Warm the pool with a healthy solve.
	l, err := p.Checkout(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	res, err := request(l.Item, faultinject.NewInjector(faultinject.Decision{}))
	if err != nil || res.Status != smt.Unsat {
		t.Fatalf("warmup check = %v/%v, want unsat", res, err)
	}
	if err := l.Return(); err != nil {
		t.Fatal(err)
	}

	// Poison the warm encoder mid-check via the injected fault.
	l, err = p.Checkout(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Warm() {
		t.Fatalf("expected the warm encoder")
	}
	poisoned := l.Item
	inj := faultinject.NewInjector(faultinject.Decision{Kind: faultinject.Poison, AfterPolls: 3})
	res, err = request(poisoned, inj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != smt.Unknown || !errors.Is(res.Why, faultinject.ErrPoisoned) {
		t.Fatalf("poisoned check = %v (why %v), want Unknown/ErrPoisoned", res.Status, res.Why)
	}
	if !inj.Fired() {
		t.Fatalf("injector never fired")
	}
	// Service rule: Unknown ⇒ quarantine, never Return.
	if err := l.Discard(); err != nil {
		t.Fatal(err)
	}

	// The replacement must be a different instance and decide correctly.
	l, err = p.Checkout(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if l.Warm() || l.Item == poisoned {
		t.Fatalf("poisoned encoder reused after quarantine")
	}
	res, err = request(l.Item, faultinject.NewInjector(faultinject.Decision{}))
	if err != nil || res.Status != smt.Unsat {
		t.Fatalf("replacement check = %v/%v, want unsat", res, err)
	}
	if err := l.Return(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Discards != 1 {
		t.Fatalf("Discards = %d, want 1", st.Discards)
	}
}
