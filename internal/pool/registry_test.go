package pool

import (
	"fmt"
	"sync"
	"testing"
)

func TestRegistrySharesValueAcrossCallers(t *testing.T) {
	r := NewRegistry[*[]int](8)
	k := Key{Topology: "t", Shape: "s"}
	builds := 0
	get := func() *[]int {
		return r.GetOrCreate(k, func() *[]int { builds++; return new([]int) })
	}
	a, b := get(), get()
	if a != b {
		t.Fatal("same key must return the same value")
	}
	if builds != 1 {
		t.Fatalf("create ran %d times, want 1", builds)
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRegistryEvictsLRU(t *testing.T) {
	r := NewRegistry[int](2)
	mk := func(i int) Key { return Key{Topology: fmt.Sprint(i)} }
	r.GetOrCreate(mk(1), func() int { return 1 })
	r.GetOrCreate(mk(2), func() int { return 2 })
	r.GetOrCreate(mk(1), func() int { return -1 }) // touch 1: 2 is now LRU
	r.GetOrCreate(mk(3), func() int { return 3 })  // evicts 2

	if got := r.GetOrCreate(mk(1), func() int { return -1 }); got != 1 {
		t.Fatalf("key 1 was evicted (got %d)", got)
	}
	if got := r.GetOrCreate(mk(2), func() int { return 22 }); got != 22 {
		t.Fatalf("key 2 survived eviction (got %d)", got)
	}
	if st := r.Stats(); st.Evictions < 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry[*sync.Map](4)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := Key{Topology: fmt.Sprint(i % 3)}
				m := r.GetOrCreate(k, func() *sync.Map { return new(sync.Map) })
				m.Store(g*1000+i, true)
			}
		}(g)
	}
	wg.Wait()
	if st := r.Stats(); st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
}
