// Package pool manages warm solver encoders for the long-running analytics
// service. A persistent SMT encoder is only worth keeping if reuse is safe
// after every way a check can end; this pool makes the lifecycle explicit:
//
//   - Checkout hands out an exclusive lease on a warm encoder for a
//     compatibility Key (grid topology × attack-model shape), building a
//     cold one on miss. Encoders are single-goroutine objects; the lease is
//     what guarantees exclusivity.
//   - Return puts a healthy encoder back on the warm list after the
//     configured Reset validation — a lease whose Reset fails is discarded,
//     not pooled.
//   - Discard quarantines a poisoned encoder: one whose check ended in
//     Unknown, a panic, budget exhaustion or mid-solve cancellation, and
//     whose internal SAT/simplex state therefore cannot be trusted. A
//     discarded item never re-enters the pool, under any path.
//
// Idle items are bounded by a cross-key, size-aware LRU policy: a global
// recency order spans every key, each item carries a cost sampled from the
// optional Config.Size hook when it returns, and Returns that push the pool
// past its per-key, global-count or byte budgets evict the least recently
// used items (never the one just returned). Every path that removes an item
// from the pool's accounting — eviction, Reset-failure quarantine, Discard,
// Drain — invokes the optional Config.Close hook exactly once, outside the
// pool lock, so owners can release encoder resources deterministically.
//
// The pool bounds total live encoders (checked-out plus idle); exhaustion
// fails fast with ErrExhausted so admission control above the pool decides
// between queueing and shedding. All methods are safe for concurrent use.
package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Key identifies a warm-encoder compatibility class. Two checks may share an
// encoder only when both components match: Topology fingerprints the grid
// (buses, lines, admittances), Shape the attack-model structure lowered into
// the encoder (measurement configuration, knowledge, goals, resource
// bounds). Callers build the strings with whatever canonical fingerprint
// they like; the pool only compares them.
type Key struct {
	Topology string
	Shape    string
}

// ErrExhausted is returned by Checkout when the live-encoder bound is
// reached. The caller sheds or queues; the pool never blocks.
var ErrExhausted = errors.New("pool: live-encoder limit reached")

// Config parameterizes a Pool.
type Config[T any] struct {
	// New builds a cold item for key. Called outside the pool lock (model
	// encoding is expensive); the context is the requesting check's.
	New func(ctx context.Context, key Key) (T, error)

	// Reset validates and readies an item as it returns to the warm list; a
	// non-nil error discards the item instead of pooling it. Typical
	// implementation: verify the solver's scope stack unwound to base.
	// Optional; nil skips validation.
	Reset func(item T) error

	// Close releases an item's resources. Invoked exactly once, outside the
	// pool lock, on every path that removes an item from the pool's
	// accounting: LRU/budget eviction, Reset-failure quarantine, Discard,
	// and Drain. Never invoked for items still idle or leased. Optional;
	// nil skips the hook.
	Close func(item T)

	// Size estimates an item's retained cost in bytes for the idle byte
	// budget. Sampled once, outside the pool lock, as the item returns to
	// the warm list. Optional; nil charges every item zero bytes, so
	// MaxIdleBytes never binds.
	Size func(item T) int64

	// MaxIdlePerKey bounds the warm list per key; a Return past it evicts
	// that key's least recently used idle item (the returning item stays —
	// it is the warmest). Default 2.
	MaxIdlePerKey int

	// MaxIdle bounds idle items across all keys; excess evicts the global
	// LRU item. Default MaxLive (the live bound already caps idle, so the
	// default adds no constraint).
	MaxIdle int

	// MaxIdleBytes bounds the summed Size cost of idle items across all
	// keys; excess evicts global LRU items until under budget. 0 disables
	// the byte budget.
	MaxIdleBytes int64

	// MaxLive bounds live items — checked out plus idle — across all keys.
	// Default 64.
	MaxLive int
}

// Stats counts pool traffic. Snapshot via Pool.Stats.
type Stats struct {
	// Hits and Misses split Checkout calls by warm-list outcome. A miss
	// whose cold build fails still counts: Misses is "checkouts that went
	// to Config.New", and Hits + Misses - BuildFailures is the number of
	// leases actually handed out.
	Hits, Misses uint64
	// BuildFailures counts cold builds whose Config.New returned an error.
	BuildFailures uint64
	// Returns counts healthy returns that re-entered the warm list.
	Returns uint64
	// Discards counts quarantined items: explicit Discard calls plus
	// failed Resets.
	Discards uint64
	// ResetFailures counts returns rejected by the Reset hook (a subset of
	// Discards).
	ResetFailures uint64
	// Evictions counts idle items dropped by the LRU policy (per-key,
	// global-count or byte budget); EvictedBytes sums their sampled sizes.
	Evictions    uint64
	EvictedBytes uint64
	// Live and Idle are current gauges: items outstanding or warm.
	// IdleBytes is the summed sampled cost of the warm items.
	Live, Idle int
	IdleBytes  int64
}

// idleEntry is one warm item: a node in both its key's warm list and the
// pool-wide recency list (older/newer).
type idleEntry[T any] struct {
	item T
	key  Key
	size int64

	older, newer *idleEntry[T]
}

// Pool is the warm-encoder pool. The zero value is not usable; construct
// with New.
type Pool[T any] struct {
	cfg Config[T]

	mu   sync.Mutex
	idle map[Key][]*idleEntry[T] // per key, oldest first
	lru  *idleEntry[T]           // least recently used (eviction end)
	mru  *idleEntry[T]           // most recently used
	live int

	idleCount int
	idleBytes int64
	stats     Stats
}

// New constructs a pool.
func New[T any](cfg Config[T]) (*Pool[T], error) {
	if cfg.New == nil {
		return nil, fmt.Errorf("pool: Config.New is required")
	}
	if cfg.MaxIdlePerKey <= 0 {
		cfg.MaxIdlePerKey = 2
	}
	if cfg.MaxLive <= 0 {
		cfg.MaxLive = 64
	}
	if cfg.MaxIdle <= 0 {
		cfg.MaxIdle = cfg.MaxLive
	}
	return &Pool[T]{cfg: cfg, idle: make(map[Key][]*idleEntry[T])}, nil
}

// leaseState tracks the one-way lease lifecycle.
type leaseState int32

const (
	leased leaseState = iota
	returned
	discarded
)

// Lease is an exclusive claim on one pooled item. Exactly one of Return or
// Discard must be called, once; the item must not be touched afterwards.
type Lease[T any] struct {
	// Item is the leased encoder.
	Item T

	key   Key
	warm  bool
	pool  *Pool[T]
	state leaseState
}

// Key returns the compatibility key the lease was checked out under.
func (l *Lease[T]) Key() Key { return l.key }

// Warm reports whether the lease was served from the warm list (false: the
// item was built cold for this lease).
func (l *Lease[T]) Warm() bool { return l.warm }

// Checkout leases an item for key: the most recently returned warm one when
// available, otherwise a cold build. It fails fast with ErrExhausted at the
// live bound and propagates Config.New errors (releasing the reserved slot).
func (p *Pool[T]) Checkout(ctx context.Context, key Key) (*Lease[T], error) {
	return p.checkout(ctx, key, true)
}

// CheckoutFresh leases a cold-built item for key, bypassing the warm list —
// the retry ladder's fallback when a warm encoder produced a result its
// caller does not trust. Warm items for the key are left for future
// checkouts; the live bound still applies.
func (p *Pool[T]) CheckoutFresh(ctx context.Context, key Key) (*Lease[T], error) {
	return p.checkout(ctx, key, false)
}

func (p *Pool[T]) checkout(ctx context.Context, key Key, allowWarm bool) (*Lease[T], error) {
	p.mu.Lock()
	if allowWarm {
		if list := p.idle[key]; len(list) > 0 {
			e := list[len(list)-1] // the key's warmest item
			list[len(list)-1] = nil
			p.idle[key] = list[:len(list)-1]
			if len(list) == 1 {
				delete(p.idle, key)
			}
			p.unlink(e)
			p.idleCount--
			p.idleBytes -= e.size
			p.stats.Hits++
			p.mu.Unlock()
			return &Lease[T]{Item: e.item, key: key, warm: true, pool: p}, nil
		}
	}
	if p.live >= p.cfg.MaxLive {
		p.mu.Unlock()
		return nil, ErrExhausted
	}
	p.live++ // reserve the slot before the slow build
	p.stats.Misses++
	p.mu.Unlock()

	item, err := p.cfg.New(ctx, key)
	if err != nil {
		p.mu.Lock()
		p.live--
		// Misses stays: the cold attempt happened. A rollback here would
		// let a concurrent Stats() observe the transient decrement and
		// report a negative-skewed miss count.
		p.stats.BuildFailures++
		p.mu.Unlock()
		return nil, err
	}
	return &Lease[T]{Item: item, key: key, pool: p}, nil
}

// Return puts the leased item back on its key's warm list after the Reset
// validation. A failed Reset quarantines the item instead (its Close hook
// runs) — Return never pools an item the Reset hook rejected. Pooling the
// item may push the idle set past a budget, evicting least-recently-used
// items (their Close hooks run; the returning item is the warmest and is
// never the victim). It errors if the lease was already settled.
func (l *Lease[T]) Return() error {
	if err := l.settle(returned); err != nil {
		return err
	}
	p := l.pool
	if p.cfg.Reset != nil {
		if err := p.cfg.Reset(l.Item); err != nil {
			p.mu.Lock()
			p.live--
			p.stats.Discards++
			p.stats.ResetFailures++
			p.mu.Unlock()
			p.close(l.Item)
			return nil // the item is quarantined; the return itself succeeded
		}
	}
	var size int64
	if p.cfg.Size != nil {
		size = p.cfg.Size(l.Item)
		if size < 0 {
			size = 0
		}
	}
	e := &idleEntry[T]{item: l.Item, key: l.key, size: size}

	p.mu.Lock()
	p.idle[l.key] = append(p.idle[l.key], e)
	p.pushMRU(e)
	p.idleCount++
	p.idleBytes += size
	p.stats.Returns++
	evicted := p.evictLocked(l.key)
	p.mu.Unlock()

	for _, v := range evicted {
		p.close(v.item)
	}
	return nil
}

// evictLocked enforces the idle budgets after a return to key, collecting
// the victims for the caller to Close outside the lock. Eviction order: the
// returned key's own LRU while that key is over MaxIdlePerKey, then the
// global LRU while over MaxIdle or MaxIdleBytes.
func (p *Pool[T]) evictLocked(key Key) []*idleEntry[T] {
	var victims []*idleEntry[T]
	for len(p.idle[key]) > p.cfg.MaxIdlePerKey {
		victims = append(victims, p.removeLocked(p.idle[key][0]))
	}
	for p.idleCount > p.cfg.MaxIdle && p.lru != nil {
		victims = append(victims, p.removeLocked(p.lru))
	}
	for p.cfg.MaxIdleBytes > 0 && p.idleBytes > p.cfg.MaxIdleBytes && p.lru != nil {
		victims = append(victims, p.removeLocked(p.lru))
	}
	return victims
}

// removeLocked evicts one idle entry: unlinks it from both lists and charges
// the eviction counters.
func (p *Pool[T]) removeLocked(e *idleEntry[T]) *idleEntry[T] {
	list := p.idle[e.key]
	for i, cand := range list {
		if cand == e {
			copy(list[i:], list[i+1:])
			list[len(list)-1] = nil
			if len(list) == 1 {
				delete(p.idle, e.key)
			} else {
				p.idle[e.key] = list[:len(list)-1]
			}
			break
		}
	}
	p.unlink(e)
	p.idleCount--
	p.idleBytes -= e.size
	p.live--
	p.stats.Evictions++
	p.stats.EvictedBytes += uint64(e.size)
	return e
}

// pushMRU appends e at the most-recently-used end of the recency list.
func (p *Pool[T]) pushMRU(e *idleEntry[T]) {
	e.older = p.mru
	if p.mru != nil {
		p.mru.newer = e
	} else {
		p.lru = e
	}
	p.mru = e
}

// unlink detaches e from the recency list.
func (p *Pool[T]) unlink(e *idleEntry[T]) {
	if e.older != nil {
		e.older.newer = e.newer
	} else if p.lru == e {
		p.lru = e.newer
	}
	if e.newer != nil {
		e.newer.older = e.older
	} else if p.mru == e {
		p.mru = e.older
	}
	e.older, e.newer = nil, nil
}

// close invokes the Close hook, if configured. Callers must not hold the
// pool lock.
func (p *Pool[T]) close(item T) {
	if p.cfg.Close != nil {
		p.cfg.Close(item)
	}
}

// Discard quarantines the leased item: it is dropped from the pool's
// accounting (its Close hook runs) and will never be handed out again. Use
// it whenever a check ended in a way that could have torn encoder state —
// Unknown results, panics, budget exhaustion, mid-solve cancellation. It
// errors if the lease was already settled.
func (l *Lease[T]) Discard() error {
	if err := l.settle(discarded); err != nil {
		return err
	}
	p := l.pool
	p.mu.Lock()
	p.live--
	p.stats.Discards++
	p.mu.Unlock()
	p.close(l.Item)
	return nil
}

// settle transitions the lease out of the leased state exactly once.
func (l *Lease[T]) settle(to leaseState) error {
	if l.state != leased {
		return fmt.Errorf("pool: lease already settled (%d)", l.state)
	}
	l.state = to
	return nil
}

// Stats snapshots the pool counters and gauges.
func (p *Pool[T]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Live = p.live
	s.Idle = p.idleCount
	s.IdleBytes = p.idleBytes
	return s
}

// Drain empties every warm list, invoking the Close hook on each drained
// item, and reports how many were dropped. Outstanding leases are
// unaffected: their items settle through Return/Discard as usual. Used at
// shutdown.
func (p *Pool[T]) Drain() int {
	p.mu.Lock()
	var items []T
	for e := p.lru; e != nil; e = e.newer {
		items = append(items, e.item)
	}
	p.idle = make(map[Key][]*idleEntry[T])
	p.lru, p.mru = nil, nil
	p.live -= len(items)
	p.idleCount = 0
	p.idleBytes = 0
	p.mu.Unlock()

	for _, item := range items {
		p.close(item)
	}
	return len(items)
}
