// Package pool manages warm solver encoders for the long-running analytics
// service. A persistent SMT encoder is only worth keeping if reuse is safe
// after every way a check can end; this pool makes the lifecycle explicit:
//
//   - Checkout hands out an exclusive lease on a warm encoder for a
//     compatibility Key (grid topology × attack-model shape), building a
//     cold one on miss. Encoders are single-goroutine objects; the lease is
//     what guarantees exclusivity.
//   - Return puts a healthy encoder back on the warm list after the
//     configured Reset validation — a lease whose Reset fails is discarded,
//     not pooled.
//   - Discard quarantines a poisoned encoder: one whose check ended in
//     Unknown, a panic, budget exhaustion or mid-solve cancellation, and
//     whose internal SAT/simplex state therefore cannot be trusted. A
//     discarded item never re-enters the pool, under any path.
//
// The pool bounds total live encoders (checked-out plus idle); exhaustion
// fails fast with ErrExhausted so admission control above the pool decides
// between queueing and shedding. All methods are safe for concurrent use.
package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Key identifies a warm-encoder compatibility class. Two checks may share an
// encoder only when both components match: Topology fingerprints the grid
// (buses, lines, admittances), Shape the attack-model structure lowered into
// the encoder (measurement configuration, knowledge, goals, resource
// bounds). Callers build the strings with whatever canonical fingerprint
// they like; the pool only compares them.
type Key struct {
	Topology string
	Shape    string
}

// ErrExhausted is returned by Checkout when the live-encoder bound is
// reached. The caller sheds or queues; the pool never blocks.
var ErrExhausted = errors.New("pool: live-encoder limit reached")

// Config parameterizes a Pool.
type Config[T any] struct {
	// New builds a cold item for key. Called outside the pool lock (model
	// encoding is expensive); the context is the requesting check's.
	New func(ctx context.Context, key Key) (T, error)

	// Reset validates and readies an item as it returns to the warm list; a
	// non-nil error discards the item instead of pooling it. Typical
	// implementation: verify the solver's scope stack unwound to base.
	// Optional; nil skips validation.
	Reset func(item T) error

	// MaxIdlePerKey bounds the warm list per key; a Return past it discards
	// the returning item (counted in Stats.Trimmed). Default 2.
	MaxIdlePerKey int

	// MaxLive bounds live items — checked out plus idle — across all keys.
	// Default 64.
	MaxLive int
}

// Stats counts pool traffic. Snapshot via Pool.Stats.
type Stats struct {
	// Hits and Misses split Checkout calls by warm-list outcome.
	Hits, Misses uint64
	// Returns counts healthy returns that re-entered the warm list.
	Returns uint64
	// Discards counts quarantined items: explicit Discard calls plus
	// failed Resets.
	Discards uint64
	// ResetFailures counts returns rejected by the Reset hook (a subset of
	// Discards).
	ResetFailures uint64
	// Trimmed counts healthy returns dropped because the key's warm list
	// was full.
	Trimmed uint64
	// Live and Idle are current gauges: items outstanding or warm.
	Live, Idle int
}

// Pool is the warm-encoder pool. The zero value is not usable; construct
// with New.
type Pool[T any] struct {
	cfg Config[T]

	mu    sync.Mutex
	idle  map[Key][]T
	live  int
	stats Stats
}

// New constructs a pool.
func New[T any](cfg Config[T]) (*Pool[T], error) {
	if cfg.New == nil {
		return nil, fmt.Errorf("pool: Config.New is required")
	}
	if cfg.MaxIdlePerKey <= 0 {
		cfg.MaxIdlePerKey = 2
	}
	if cfg.MaxLive <= 0 {
		cfg.MaxLive = 64
	}
	return &Pool[T]{cfg: cfg, idle: make(map[Key][]T)}, nil
}

// leaseState tracks the one-way lease lifecycle.
type leaseState int32

const (
	leased leaseState = iota
	returned
	discarded
)

// Lease is an exclusive claim on one pooled item. Exactly one of Return or
// Discard must be called, once; the item must not be touched afterwards.
type Lease[T any] struct {
	// Item is the leased encoder.
	Item T

	key   Key
	warm  bool
	pool  *Pool[T]
	state leaseState
}

// Key returns the compatibility key the lease was checked out under.
func (l *Lease[T]) Key() Key { return l.key }

// Warm reports whether the lease was served from the warm list (false: the
// item was built cold for this lease).
func (l *Lease[T]) Warm() bool { return l.warm }

// Checkout leases an item for key: the most recently returned warm one when
// available, otherwise a cold build. It fails fast with ErrExhausted at the
// live bound and propagates Config.New errors (releasing the reserved slot).
func (p *Pool[T]) Checkout(ctx context.Context, key Key) (*Lease[T], error) {
	return p.checkout(ctx, key, true)
}

// CheckoutFresh leases a cold-built item for key, bypassing the warm list —
// the retry ladder's fallback when a warm encoder produced a result its
// caller does not trust. Warm items for the key are left for future
// checkouts; the live bound still applies.
func (p *Pool[T]) CheckoutFresh(ctx context.Context, key Key) (*Lease[T], error) {
	return p.checkout(ctx, key, false)
}

func (p *Pool[T]) checkout(ctx context.Context, key Key, allowWarm bool) (*Lease[T], error) {
	p.mu.Lock()
	if allowWarm {
		if list := p.idle[key]; len(list) > 0 {
			item := list[len(list)-1]
			var zero T
			list[len(list)-1] = zero // do not pin the item in the backing array
			p.idle[key] = list[:len(list)-1]
			p.stats.Hits++
			p.mu.Unlock()
			return &Lease[T]{Item: item, key: key, warm: true, pool: p}, nil
		}
	}
	if p.live >= p.cfg.MaxLive {
		p.mu.Unlock()
		return nil, ErrExhausted
	}
	p.live++ // reserve the slot before the slow build
	p.stats.Misses++
	p.mu.Unlock()

	item, err := p.cfg.New(ctx, key)
	if err != nil {
		p.mu.Lock()
		p.live--
		p.stats.Misses-- // the checkout never happened
		p.mu.Unlock()
		return nil, err
	}
	return &Lease[T]{Item: item, key: key, pool: p}, nil
}

// Return puts the leased item back on its key's warm list after the Reset
// validation. A failed Reset (or a full warm list) quarantines/drops the
// item instead — Return never pools an item the Reset hook rejected. It
// errors if the lease was already settled.
func (l *Lease[T]) Return() error {
	if err := l.settle(returned); err != nil {
		return err
	}
	p := l.pool
	if p.cfg.Reset != nil {
		if err := p.cfg.Reset(l.Item); err != nil {
			p.mu.Lock()
			p.live--
			p.stats.Discards++
			p.stats.ResetFailures++
			p.mu.Unlock()
			return nil // the item is quarantined; the return itself succeeded
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle[l.key]) >= p.cfg.MaxIdlePerKey {
		p.live--
		p.stats.Trimmed++
		return nil
	}
	p.idle[l.key] = append(p.idle[l.key], l.Item)
	p.stats.Returns++
	return nil
}

// Discard quarantines the leased item: it is dropped from the pool's
// accounting and will never be handed out again. Use it whenever a check
// ended in a way that could have torn encoder state — Unknown results,
// panics, budget exhaustion, mid-solve cancellation. It errors if the lease
// was already settled.
func (l *Lease[T]) Discard() error {
	if err := l.settle(discarded); err != nil {
		return err
	}
	p := l.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	p.live--
	p.stats.Discards++
	return nil
}

// settle transitions the lease out of the leased state exactly once.
func (l *Lease[T]) settle(to leaseState) error {
	if l.state != leased {
		return fmt.Errorf("pool: lease already settled (%d)", l.state)
	}
	l.state = to
	return nil
}

// Stats snapshots the pool counters and gauges.
func (p *Pool[T]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Live = p.live
	s.Idle = 0
	for _, list := range p.idle {
		s.Idle += len(list)
	}
	return s
}

// Drain empties every warm list, returning the drained items so the owner
// can release their resources. Outstanding leases are unaffected: their
// items settle through Return/Discard as usual. Used at shutdown.
func (p *Pool[T]) Drain() []T {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []T
	for k, list := range p.idle {
		out = append(out, list...)
		delete(p.idle, k)
	}
	p.live -= len(out)
	return out
}
