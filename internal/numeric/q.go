package numeric

import "math/big"

// Q is a hybrid exact rational: a Rat64 fast path that transparently
// promotes to *big.Rat when an operation overflows int64. Values are
// immutable; operations return new values and never mutate operands, so a
// promoted Q may safely share its big.Rat with other values.
//
// The zero value is the number 0. Arithmetic on unpromoted values is
// allocation-free; the simplex hot loops depend on this.
type Q struct {
	s Rat64
	b *big.Rat // non-nil means promoted; s is then unused
}

// forceBig routes every Q operation through the big.Rat slow path and
// disables demotion. It exists solely so tests can compare the hybrid
// arithmetic against a pure big.Rat run of the same computation; it must
// never be set outside tests.
var forceBig bool

// SetForceBig toggles the pure-big.Rat test mode and returns the previous
// setting. Test-only; not safe for concurrent use with live solvers.
func SetForceBig(v bool) bool {
	prev := forceBig
	forceBig = v
	return prev
}

// QFromInt returns the rational n.
func QFromInt(n int64) Q { return Q{s: Rat64{Num: n, Den: 1}} }

// QFromRat64 wraps a small rational (assumed in lowest terms with a
// positive denominator, as produced by MakeRat64).
func QFromRat64(r Rat64) Q { return Q{s: r} }

// QFromFrac returns num/den, promoting when normalization overflows.
// den must be nonzero.
func QFromFrac(num, den int64) Q {
	if !forceBig {
		if r, ok := MakeRat64(num, den); ok {
			return Q{s: r}
		}
	}
	return Q{b: big.NewRat(num, den)}
}

// QFromRat converts a big rational, demoting to the fast path when both
// components fit in int64. The rational is not copied; the caller must not
// mutate it afterwards.
func QFromRat(r *big.Rat) Q {
	if r == nil {
		return Q{}
	}
	if !forceBig && r.Num().IsInt64() && r.Denom().IsInt64() {
		// big.Rat is always normalized with a positive denominator.
		return Q{s: Rat64{Num: r.Num().Int64(), Den: r.Denom().Int64()}}
	}
	return Q{b: r}
}

// qDemote wraps a freshly allocated big.Rat result, demoting it back to
// the fast path when it fits so one transient overflow does not poison all
// downstream arithmetic.
func qDemote(r *big.Rat) Q {
	if !forceBig && r.Num().IsInt64() && r.Denom().IsInt64() {
		return Q{s: Rat64{Num: r.Num().Int64(), Den: r.Denom().Int64()}}
	}
	return Q{b: r}
}

// IsBig reports whether q is carried by big.Rat (promoted) rather than the
// int64 fast path.
func (q Q) IsBig() bool { return q.b != nil }

// Small returns q's machine-word representation (in lowest terms, with a
// positive denominator) and true when q is carried by the fast path, or a
// zero Rat64 and false when q is promoted. Serializers use it to emit small
// rationals as two integers instead of text.
func (q Q) Small() (Rat64, bool) {
	if q.b != nil {
		return Rat64{}, false
	}
	return Rat64{Num: q.s.Num, Den: q.s.den()}, true
}

// Rat returns q as a *big.Rat. For promoted values this is the shared
// internal rational: treat it as read-only. For fast-path values a fresh
// rational is allocated.
func (q Q) Rat() *big.Rat {
	if q.b != nil {
		return q.b
	}
	return big.NewRat(q.s.Num, q.s.den())
}

// Sign returns −1, 0 or +1.
func (q Q) Sign() int {
	if q.b != nil {
		return q.b.Sign()
	}
	return q.s.Sign()
}

// IsZero reports whether q is exactly zero.
func (q Q) IsZero() bool { return q.Sign() == 0 }

// Cmp compares q and o, returning −1, 0 or +1. The fast-path comparison is
// allocation-free (128-bit cross products).
func (q Q) Cmp(o Q) int {
	if q.b == nil && o.b == nil {
		return q.s.Cmp(o.s)
	}
	return q.Rat().Cmp(o.Rat())
}

// Add returns q + o.
func (q Q) Add(o Q) Q {
	if !forceBig && q.b == nil && o.b == nil {
		if r, ok := q.s.Add(o.s); ok {
			return Q{s: r}
		}
	}
	return qDemote(new(big.Rat).Add(q.Rat(), o.Rat()))
}

// Sub returns q − o.
func (q Q) Sub(o Q) Q {
	if !forceBig && q.b == nil && o.b == nil {
		if r, ok := q.s.Sub(o.s); ok {
			return Q{s: r}
		}
	}
	return qDemote(new(big.Rat).Sub(q.Rat(), o.Rat()))
}

// Mul returns q·o.
func (q Q) Mul(o Q) Q {
	if !forceBig && q.b == nil && o.b == nil {
		if r, ok := q.s.Mul(o.s); ok {
			return Q{s: r}
		}
	}
	return qDemote(new(big.Rat).Mul(q.Rat(), o.Rat()))
}

// MulNeg returns −(q·o) with a single allocation on the promoted path; the
// simplex row-substitution loop uses it in place of Mul-then-Neg.
func (q Q) MulNeg(o Q) Q {
	if !forceBig && q.b == nil && o.b == nil {
		if r, ok := q.s.Mul(o.s); ok {
			if n, ok := r.Neg(); ok {
				return Q{s: n}
			}
		}
	}
	out := new(big.Rat).Mul(q.Rat(), o.Rat())
	return qDemote(out.Neg(out))
}

// Neg returns −q.
func (q Q) Neg() Q {
	if !forceBig && q.b == nil {
		if r, ok := q.s.Neg(); ok {
			return Q{s: r}
		}
	}
	return qDemote(new(big.Rat).Neg(q.Rat()))
}

// Inv returns 1/q. Inverting zero panics, as with big.Rat.
func (q Q) Inv() Q {
	if !forceBig && q.b == nil {
		if r, ok := q.s.Inv(); ok {
			return Q{s: r}
		}
	}
	if q.Sign() == 0 {
		panic("numeric: division by zero")
	}
	return qDemote(new(big.Rat).Inv(q.Rat()))
}

// Abs returns |q|.
func (q Q) Abs() Q {
	if q.Sign() >= 0 {
		return q
	}
	return q.Neg()
}

// RatString renders q in num/den form, matching big.Rat.RatString.
func (q Q) RatString() string {
	if q.b != nil {
		return q.b.RatString()
	}
	return big.NewRat(q.s.Num, q.s.den()).RatString()
}

// String implements fmt.Stringer.
func (q Q) String() string { return q.RatString() }
