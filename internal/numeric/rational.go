// Package numeric provides exact rational arithmetic helpers and
// delta-rationals for the linear-arithmetic theory solver.
//
// A delta-rational is a value of the form a + b·δ where a and b are
// rationals and δ is a positive infinitesimal. Delta-rationals give a sound
// representation of strict inequalities in the simplex solver: the strict
// bound x > c is handled as the non-strict bound x ≥ c + δ. See Dutertre &
// de Moura, "A Fast Linear-Arithmetic Solver for DPLL(T)" (CAV 2006).
package numeric

import (
	"fmt"
	"math/big"
)

// Common rational constants. These must never be mutated; use Clone before
// passing them to any in-place big.Rat operation.
var (
	zeroRat = big.NewRat(0, 1)
	oneRat  = big.NewRat(1, 1)
)

// Zero returns a fresh rational equal to 0.
func Zero() *big.Rat { return new(big.Rat) }

// One returns a fresh rational equal to 1.
func One() *big.Rat { return big.NewRat(1, 1) }

// RatFromInt returns a fresh rational with the value of n.
func RatFromInt(n int64) *big.Rat { return big.NewRat(n, 1) }

// RatFromFloat converts a float64 to an exact rational. It reports an error
// for NaN and infinities, which have no rational value.
func RatFromFloat(f float64) (*big.Rat, error) {
	r := new(big.Rat)
	if r.SetFloat64(f) == nil {
		return nil, fmt.Errorf("numeric: float %v has no rational value", f)
	}
	return r, nil
}

// Delta is an immutable delta-rational a + b·δ. The zero value is the number
// zero. Delta values share their component rationals, so components must be
// treated as read-only.
type Delta struct {
	a *big.Rat // standard part
	b *big.Rat // infinitesimal coefficient
}

// DeltaFromRat returns the delta-rational r + 0·δ. The rational is not
// copied; callers must not mutate it afterwards.
func DeltaFromRat(r *big.Rat) Delta { return Delta{a: r} }

// DeltaFromInt returns the delta-rational n + 0·δ.
func DeltaFromInt(n int64) Delta { return Delta{a: big.NewRat(n, 1)} }

// NewDelta returns the delta-rational a + b·δ. Neither argument is copied.
func NewDelta(a, b *big.Rat) Delta { return Delta{a: a, b: b} }

// Rat returns the standard (non-infinitesimal) part.
func (d Delta) Rat() *big.Rat {
	if d.a == nil {
		return zeroRat
	}
	return d.a
}

// Inf returns the coefficient of δ.
func (d Delta) Inf() *big.Rat {
	if d.b == nil {
		return zeroRat
	}
	return d.b
}

// Add returns d + e.
func (d Delta) Add(e Delta) Delta {
	return Delta{
		a: new(big.Rat).Add(d.Rat(), e.Rat()),
		b: new(big.Rat).Add(d.Inf(), e.Inf()),
	}
}

// Sub returns d − e.
func (d Delta) Sub(e Delta) Delta {
	return Delta{
		a: new(big.Rat).Sub(d.Rat(), e.Rat()),
		b: new(big.Rat).Sub(d.Inf(), e.Inf()),
	}
}

// Neg returns −d.
func (d Delta) Neg() Delta {
	return Delta{
		a: new(big.Rat).Neg(d.Rat()),
		b: new(big.Rat).Neg(d.Inf()),
	}
}

// MulRat returns d scaled by the rational r.
func (d Delta) MulRat(r *big.Rat) Delta {
	return Delta{
		a: new(big.Rat).Mul(d.Rat(), r),
		b: new(big.Rat).Mul(d.Inf(), r),
	}
}

// Cmp compares d and e lexicographically on (standard part, δ coefficient),
// which is the correct order for any sufficiently small positive δ. It
// returns −1, 0 or +1.
func (d Delta) Cmp(e Delta) int {
	if c := d.Rat().Cmp(e.Rat()); c != 0 {
		return c
	}
	return d.Inf().Cmp(e.Inf())
}

// IsZero reports whether d is exactly zero.
func (d Delta) IsZero() bool {
	return d.Rat().Sign() == 0 && d.Inf().Sign() == 0
}

// Eval substitutes a concrete positive value eps for δ and returns the
// resulting rational a + b·eps.
func (d Delta) Eval(eps *big.Rat) *big.Rat {
	out := new(big.Rat).Mul(d.Inf(), eps)
	return out.Add(out, d.Rat())
}

// String renders the delta-rational, e.g. "3/2 + 1·δ".
func (d Delta) String() string {
	if d.Inf().Sign() == 0 {
		return d.Rat().RatString()
	}
	return fmt.Sprintf("%s + %s·δ", d.Rat().RatString(), d.Inf().RatString())
}
