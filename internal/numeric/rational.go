// Package numeric provides exact rational arithmetic helpers and
// delta-rationals for the linear-arithmetic theory solver.
//
// Rationals come in three layers: Rat64 (machine-word, overflow-checked),
// Q (hybrid: Rat64 fast path promoting to *big.Rat on overflow), and the
// delta-rational Delta over Q. A delta-rational is a value of the form
// a + b·δ where a and b are rationals and δ is a positive infinitesimal.
// Delta-rationals give a sound representation of strict inequalities in the
// simplex solver: the strict bound x > c is handled as the non-strict bound
// x ≥ c + δ. See Dutertre & de Moura, "A Fast Linear-Arithmetic Solver for
// DPLL(T)" (CAV 2006).
package numeric

import (
	"fmt"
	"math/big"
)

// Zero returns a fresh rational equal to 0.
func Zero() *big.Rat { return new(big.Rat) }

// One returns a fresh rational equal to 1.
func One() *big.Rat { return big.NewRat(1, 1) }

// RatFromInt returns a fresh rational with the value of n.
func RatFromInt(n int64) *big.Rat { return big.NewRat(n, 1) }

// RatFromFloat converts a float64 to an exact rational. It reports an error
// for NaN and infinities, which have no rational value.
func RatFromFloat(f float64) (*big.Rat, error) {
	r := new(big.Rat)
	if r.SetFloat64(f) == nil {
		return nil, fmt.Errorf("numeric: float %v has no rational value", f)
	}
	return r, nil
}

// Delta is an immutable delta-rational a + b·δ over hybrid rationals. The
// zero value is the number zero. Arithmetic on unpromoted components is
// allocation-free.
type Delta struct {
	a Q // standard part
	b Q // infinitesimal coefficient
}

// DeltaFromRat returns the delta-rational r + 0·δ. The rational is not
// copied; callers must not mutate it afterwards.
func DeltaFromRat(r *big.Rat) Delta { return Delta{a: QFromRat(r)} }

// DeltaFromInt returns the delta-rational n + 0·δ.
func DeltaFromInt(n int64) Delta { return Delta{a: QFromInt(n)} }

// DeltaFromQ returns the delta-rational q + 0·δ.
func DeltaFromQ(q Q) Delta { return Delta{a: q} }

// NewDelta returns the delta-rational a + b·δ. Neither argument is copied;
// callers must not mutate them afterwards.
func NewDelta(a, b *big.Rat) Delta { return Delta{a: QFromRat(a), b: QFromRat(b)} }

// NewDeltaQ returns the delta-rational a + b·δ over hybrid rationals.
func NewDeltaQ(a, b Q) Delta { return Delta{a: a, b: b} }

// Rat returns the standard (non-infinitesimal) part as a *big.Rat. Treat
// the result as read-only; for promoted components it is shared.
func (d Delta) Rat() *big.Rat { return d.a.Rat() }

// Inf returns the coefficient of δ as a *big.Rat (read-only).
func (d Delta) Inf() *big.Rat { return d.b.Rat() }

// StdQ returns the standard part as a hybrid rational.
func (d Delta) StdQ() Q { return d.a }

// InfQ returns the δ coefficient as a hybrid rational.
func (d Delta) InfQ() Q { return d.b }

// IsBig reports whether either component has been promoted to big.Rat.
func (d Delta) IsBig() bool { return d.a.IsBig() || d.b.IsBig() }

// Add returns d + e.
func (d Delta) Add(e Delta) Delta {
	return Delta{a: d.a.Add(e.a), b: d.b.Add(e.b)}
}

// Sub returns d − e.
func (d Delta) Sub(e Delta) Delta {
	return Delta{a: d.a.Sub(e.a), b: d.b.Sub(e.b)}
}

// Neg returns −d.
func (d Delta) Neg() Delta {
	return Delta{a: d.a.Neg(), b: d.b.Neg()}
}

// MulQ returns d scaled by the hybrid rational q.
func (d Delta) MulQ(q Q) Delta {
	return Delta{a: d.a.Mul(q), b: d.b.Mul(q)}
}

// MulRat returns d scaled by the rational r.
func (d Delta) MulRat(r *big.Rat) Delta { return d.MulQ(QFromRat(r)) }

// Cmp compares d and e lexicographically on (standard part, δ coefficient),
// which is the correct order for any sufficiently small positive δ. It
// returns −1, 0 or +1.
func (d Delta) Cmp(e Delta) int {
	if c := d.a.Cmp(e.a); c != 0 {
		return c
	}
	return d.b.Cmp(e.b)
}

// IsZero reports whether d is exactly zero.
func (d Delta) IsZero() bool {
	return d.a.Sign() == 0 && d.b.Sign() == 0
}

// Eval substitutes a concrete positive value eps for δ and returns the
// resulting rational a + b·eps.
func (d Delta) Eval(eps *big.Rat) *big.Rat {
	out := new(big.Rat).Mul(d.Inf(), eps)
	return out.Add(out, d.Rat())
}

// String renders the delta-rational, e.g. "3/2 + 1·δ".
func (d Delta) String() string {
	if d.b.Sign() == 0 {
		return d.a.RatString()
	}
	return fmt.Sprintf("%s + %s·δ", d.a.RatString(), d.b.RatString())
}
