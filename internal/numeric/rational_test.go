package numeric

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func r(n, d int64) *big.Rat { return big.NewRat(n, d) }

func TestZeroValueDelta(t *testing.T) {
	var d Delta
	if !d.IsZero() {
		t.Fatalf("zero value not zero")
	}
	if d.Rat().Sign() != 0 || d.Inf().Sign() != 0 {
		t.Fatalf("zero value components nonzero")
	}
	if d.String() != "0" {
		t.Fatalf("String() = %q, want 0", d.String())
	}
}

func TestDeltaArithmetic(t *testing.T) {
	a := NewDelta(r(3, 2), r(1, 1)) // 3/2 + δ
	b := NewDelta(r(1, 2), r(-2, 1))
	sum := a.Add(b)
	if sum.Rat().Cmp(r(2, 1)) != 0 || sum.Inf().Cmp(r(-1, 1)) != 0 {
		t.Fatalf("Add wrong: %v", sum)
	}
	diff := a.Sub(b)
	if diff.Rat().Cmp(r(1, 1)) != 0 || diff.Inf().Cmp(r(3, 1)) != 0 {
		t.Fatalf("Sub wrong: %v", diff)
	}
	neg := a.Neg()
	if neg.Rat().Cmp(r(-3, 2)) != 0 || neg.Inf().Cmp(r(-1, 1)) != 0 {
		t.Fatalf("Neg wrong: %v", neg)
	}
	scaled := a.MulRat(r(2, 3))
	if scaled.Rat().Cmp(r(1, 1)) != 0 || scaled.Inf().Cmp(r(2, 3)) != 0 {
		t.Fatalf("MulRat wrong: %v", scaled)
	}
}

func TestDeltaCmpLexicographic(t *testing.T) {
	// 1 < 1 + δ < 1 + 2δ < 2 − δ < 2.
	seq := []Delta{
		DeltaFromInt(1),
		NewDelta(r(1, 1), r(1, 1)),
		NewDelta(r(1, 1), r(2, 1)),
		NewDelta(r(2, 1), r(-1, 1)),
		DeltaFromInt(2),
	}
	for i := 0; i < len(seq)-1; i++ {
		if seq[i].Cmp(seq[i+1]) >= 0 {
			t.Fatalf("ordering broken at %d: %v !< %v", i, seq[i], seq[i+1])
		}
		if seq[i+1].Cmp(seq[i]) <= 0 {
			t.Fatalf("reverse ordering broken at %d", i)
		}
	}
	if seq[0].Cmp(DeltaFromInt(1)) != 0 {
		t.Fatalf("equality broken")
	}
}

func TestDeltaEval(t *testing.T) {
	d := NewDelta(r(1, 1), r(-3, 1))
	got := d.Eval(r(1, 6))
	if got.Cmp(r(1, 2)) != 0 {
		t.Fatalf("Eval = %v, want 1/2", got)
	}
}

func TestRatFromFloat(t *testing.T) {
	v, err := RatFromFloat(0.5)
	if err != nil || v.Cmp(r(1, 2)) != 0 {
		t.Fatalf("RatFromFloat(0.5) = %v, %v", v, err)
	}
	if _, err := RatFromFloat(math.NaN()); err == nil {
		t.Fatalf("NaN accepted")
	}
	if _, err := RatFromFloat(math.Inf(1)); err == nil {
		t.Fatalf("+Inf accepted")
	}
}

func TestConstructors(t *testing.T) {
	if Zero().Sign() != 0 || One().Cmp(r(1, 1)) != 0 || RatFromInt(-7).Cmp(r(-7, 1)) != 0 {
		t.Fatalf("constructors wrong")
	}
	if DeltaFromRat(r(5, 3)).Rat().Cmp(r(5, 3)) != 0 {
		t.Fatalf("DeltaFromRat wrong")
	}
}

func randDelta(rng *rand.Rand) Delta {
	return NewDelta(
		big.NewRat(int64(rng.Intn(41)-20), int64(rng.Intn(9)+1)),
		big.NewRat(int64(rng.Intn(41)-20), int64(rng.Intn(9)+1)),
	)
}

// Property: Add/Sub are inverse, Neg is an involution, Cmp is antisymmetric.
func TestDeltaAlgebraicLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		a, b := randDelta(lr), randDelta(lr)
		if a.Add(b).Sub(b).Cmp(a) != 0 {
			return false
		}
		if a.Neg().Neg().Cmp(a) != 0 {
			return false
		}
		if a.Cmp(b) != -b.Cmp(a) {
			return false
		}
		// Addition is monotone: a < b → a + c < b + c.
		c := randDelta(lr)
		if a.Cmp(b) < 0 && a.Add(c).Cmp(b.Add(c)) >= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatalf("algebraic laws failed: %v", err)
	}
}

// Property: Cmp agrees with Eval for sufficiently small positive δ.
func TestDeltaCmpMatchesSmallEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	eps := r(1, 1000000000)
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		a, b := randDelta(lr), randDelta(lr)
		want := a.Eval(eps).Cmp(b.Eval(eps))
		return a.Cmp(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatalf("Cmp/Eval agreement failed: %v", err)
	}
}

func TestImmutability(t *testing.T) {
	a := NewDelta(r(1, 1), r(1, 1))
	b := NewDelta(r(2, 1), r(2, 1))
	_ = a.Add(b)
	_ = a.MulRat(r(5, 1))
	if a.Rat().Cmp(r(1, 1)) != 0 || b.Rat().Cmp(r(2, 1)) != 0 {
		t.Fatalf("operations mutated operands")
	}
}
