package numeric

import "math/bits"

// Rat64 is a machine-word rational: an int64 numerator over a positive
// int64 denominator, kept in lowest terms. It is the allocation-free fast
// path under the hybrid Q type; every operation is overflow-checked and
// reports failure instead of wrapping, at which point the caller promotes
// to *big.Rat arithmetic.
//
// The zero value is the number 0 (a zero Den is read as 1).
type Rat64 struct {
	Num int64
	Den int64
}

// den reads the denominator, mapping the zero value's 0 to 1.
func (r Rat64) den() int64 {
	if r.Den == 0 {
		return 1
	}
	return r.Den
}

// Sign returns −1, 0 or +1.
func (r Rat64) Sign() int {
	switch {
	case r.Num > 0:
		return 1
	case r.Num < 0:
		return -1
	default:
		return 0
	}
}

// IsZero reports whether r is exactly zero.
func (r Rat64) IsZero() bool { return r.Num == 0 }

// addOvf returns a+b; ok is false on overflow.
func addOvf(a, b int64) (int64, bool) {
	s := a + b
	// Overflow iff the operands share a sign that the sum does not.
	return s, (a^s)&(b^s) >= 0
}

// mulOvf returns a·b; ok is false on overflow.
func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == minInt64 || b == minInt64 {
		// −2⁶³·x overflows for every x except 1.
		if a == 1 {
			return b, true
		}
		if b == 1 {
			return a, true
		}
		return 0, false
	}
	p := a * b
	return p, p/b == a
}

// negOvf returns −a; ok is false on overflow (only for −2⁶³).
func negOvf(a int64) (int64, bool) {
	if a == minInt64 {
		return 0, false
	}
	return -a, true
}

const minInt64 = -1 << 63

// absU64 returns |a| as a uint64 (total, including −2⁶³).
func absU64(a int64) uint64 {
	if a < 0 {
		return -uint64(a)
	}
	return uint64(a)
}

// gcdU64 returns gcd(a, b) with gcd(0, b) = b.
func gcdU64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// MakeRat64 builds num/den in lowest terms. It fails when den is zero or
// when sign normalization overflows.
func MakeRat64(num, den int64) (Rat64, bool) {
	if den == 0 {
		return Rat64{}, false
	}
	if den < 0 {
		var ok bool
		if num, ok = negOvf(num); !ok {
			return Rat64{}, false
		}
		if den, ok = negOvf(den); !ok {
			return Rat64{}, false
		}
	}
	g := int64(gcdU64(absU64(num), absU64(den)))
	return Rat64{Num: num / g, Den: den / g}, true
}

// Add returns r + o in lowest terms, reporting overflow.
func (r Rat64) Add(o Rat64) (Rat64, bool) {
	rd, od := r.den(), o.den()
	// Reduce by the denominator gcd first (Knuth 4.5.1) so intermediates
	// stay small for the common case of compatible denominators.
	g := int64(gcdU64(uint64(rd), uint64(od)))
	odr := od / g // o.den reduced
	rdr := rd / g // r.den reduced
	t1, ok := mulOvf(r.Num, odr)
	if !ok {
		return Rat64{}, false
	}
	t2, ok := mulOvf(o.Num, rdr)
	if !ok {
		return Rat64{}, false
	}
	num, ok := addOvf(t1, t2)
	if !ok {
		return Rat64{}, false
	}
	den, ok := mulOvf(rd, odr)
	if !ok {
		return Rat64{}, false
	}
	// gcd(num, den) divides g; one more reduction restores lowest terms.
	g2 := int64(gcdU64(absU64(num), uint64(g)))
	return Rat64{Num: num / g2, Den: den / g2}, true
}

// Sub returns r − o, reporting overflow.
func (r Rat64) Sub(o Rat64) (Rat64, bool) {
	n, ok := negOvf(o.Num)
	if !ok {
		return Rat64{}, false
	}
	return r.Add(Rat64{Num: n, Den: o.Den})
}

// Mul returns r·o in lowest terms, reporting overflow. Cross-reduction
// (gcd of each numerator with the opposite denominator) keeps products of
// already-reduced operands reduced and minimizes intermediate growth.
func (r Rat64) Mul(o Rat64) (Rat64, bool) {
	rd, od := r.den(), o.den()
	g1 := int64(gcdU64(absU64(r.Num), uint64(od)))
	g2 := int64(gcdU64(absU64(o.Num), uint64(rd)))
	num, ok := mulOvf(r.Num/g1, o.Num/g2)
	if !ok {
		return Rat64{}, false
	}
	den, ok := mulOvf(rd/g2, od/g1)
	if !ok {
		return Rat64{}, false
	}
	return Rat64{Num: num, Den: den}, true
}

// Neg returns −r, reporting overflow.
func (r Rat64) Neg() (Rat64, bool) {
	n, ok := negOvf(r.Num)
	if !ok {
		return Rat64{}, false
	}
	return Rat64{Num: n, Den: r.Den}, true
}

// Inv returns 1/r, reporting overflow. Inverting zero panics, matching
// big.Rat.Inv.
func (r Rat64) Inv() (Rat64, bool) {
	if r.Num == 0 {
		panic("numeric: division by zero")
	}
	if r.Num > 0 {
		return Rat64{Num: r.den(), Den: r.Num}, true
	}
	num, ok := negOvf(r.den())
	if !ok {
		return Rat64{}, false
	}
	den, ok := negOvf(r.Num)
	if !ok {
		return Rat64{}, false
	}
	return Rat64{Num: num, Den: den}, true
}

// Abs returns |r|, reporting overflow.
func (r Rat64) Abs() (Rat64, bool) {
	if r.Num >= 0 {
		return Rat64{Num: r.Num, Den: r.Den}, true
	}
	return r.Neg()
}

// Cmp compares r and o, returning −1, 0 or +1. It is total and
// allocation-free: the cross products are compared in 128 bits.
func (r Rat64) Cmp(o Rat64) int {
	rs, os := r.Sign(), o.Sign()
	if rs != os {
		if rs < os {
			return -1
		}
		return 1
	}
	if rs == 0 {
		return 0
	}
	// Same nonzero sign: compare |r.Num|·o.den vs |o.Num|·r.den and flip
	// for negatives.
	hi1, lo1 := bits.Mul64(absU64(r.Num), uint64(o.den()))
	hi2, lo2 := bits.Mul64(absU64(o.Num), uint64(r.den()))
	c := 0
	switch {
	case hi1 != hi2:
		if hi1 < hi2 {
			c = -1
		} else {
			c = 1
		}
	case lo1 != lo2:
		if lo1 < lo2 {
			c = -1
		} else {
			c = 1
		}
	}
	if rs < 0 {
		return -c
	}
	return c
}
