package numeric

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// bigOf converts a Q to big.Rat through the public accessor.
func bigOf(q Q) *big.Rat { return new(big.Rat).Set(q.Rat()) }

// randInt64 draws from a mix of small values and values engineered to
// straddle the int64 overflow boundary.
func randInt64(rng *rand.Rand) int64 {
	switch rng.Intn(4) {
	case 0:
		return int64(rng.Intn(2001) - 1000)
	case 1:
		return int64(rng.Uint64()) >> uint(rng.Intn(32))
	case 2:
		// Near ±2⁶³.
		v := math.MaxInt64 - int64(rng.Intn(1000))
		if rng.Intn(2) == 0 {
			return -v - int64(rng.Intn(2)) // may hit MinInt64 exactly
		}
		return v
	default:
		return int64(rng.Uint64())
	}
}

func randDen(rng *rand.Rand) int64 {
	switch rng.Intn(3) {
	case 0:
		return int64(rng.Intn(1000) + 1)
	case 1:
		return int64(rng.Uint64()>>1) | 1
	default:
		return math.MaxInt64 - int64(rng.Intn(1000))
	}
}

// TestRat64OpsAgreeWithBigRat cross-checks every overflow-checked Rat64
// operation against big.Rat on random inputs, including boundary values.
// A reported success must be exact; a reported overflow is always allowed.
func TestRat64OpsAgreeWithBigRat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(name string, got Rat64, ok bool, want *big.Rat) bool {
		if !ok {
			return true // declining (promoting) is always sound
		}
		if got.den() <= 0 {
			t.Logf("%s: non-positive denominator %d", name, got.Den)
			return false
		}
		if g := gcdU64(absU64(got.Num), uint64(got.den())); g != 1 {
			t.Logf("%s: not in lowest terms: %d/%d", name, got.Num, got.Den)
			return false
		}
		if big.NewRat(got.Num, got.den()).Cmp(want) != 0 {
			t.Logf("%s: got %d/%d want %s", name, got.Num, got.Den, want.RatString())
			return false
		}
		return true
	}
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		a, okA := MakeRat64(randInt64(lr), randDen(lr))
		b, okB := MakeRat64(randInt64(lr), randDen(lr))
		if !okA || !okB {
			return true
		}
		ba := big.NewRat(a.Num, a.den())
		bb := big.NewRat(b.Num, b.den())
		sum, ok := a.Add(b)
		if !check("Add", sum, ok, new(big.Rat).Add(ba, bb)) {
			return false
		}
		diff, ok := a.Sub(b)
		if !check("Sub", diff, ok, new(big.Rat).Sub(ba, bb)) {
			return false
		}
		prod, ok := a.Mul(b)
		if !check("Mul", prod, ok, new(big.Rat).Mul(ba, bb)) {
			return false
		}
		neg, ok := a.Neg()
		if !check("Neg", neg, ok, new(big.Rat).Neg(ba)) {
			return false
		}
		if a.Sign() != 0 {
			inv, ok := a.Inv()
			if !check("Inv", inv, ok, new(big.Rat).Inv(ba)) {
				return false
			}
		}
		if got, want := a.Cmp(b), ba.Cmp(bb); got != want {
			t.Logf("Cmp: got %d want %d for %v vs %v", got, want, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rng}); err != nil {
		t.Fatalf("Rat64/big.Rat agreement failed: %v", err)
	}
}

// TestRat64SmallOpsNeverOverflow asserts that arithmetic on small operands
// (the simplex steady state) stays on the fast path.
func TestRat64SmallOpsNeverOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		a, _ := MakeRat64(int64(rng.Intn(201)-100), int64(rng.Intn(50)+1))
		b, _ := MakeRat64(int64(rng.Intn(201)-100), int64(rng.Intn(50)+1))
		if _, ok := a.Add(b); !ok {
			t.Fatalf("Add(%v, %v) overflowed", a, b)
		}
		if _, ok := a.Mul(b); !ok {
			t.Fatalf("Mul(%v, %v) overflowed", a, b)
		}
	}
}

// randQ draws a hybrid rational: mostly fast-path values, some engineered
// to promote.
func randQ(rng *rand.Rand) Q {
	if rng.Intn(4) == 0 {
		num := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 96))
		den := new(big.Int).Add(new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 80)), big.NewInt(1))
		return QFromRat(new(big.Rat).SetFrac(num, den))
	}
	return QFromFrac(randInt64(rng), randDen(rng))
}

// TestQArithmeticMatchesBigRat is the hybrid-type equivalence property:
// every Q operation agrees exactly with big.Rat regardless of promotion
// state, including operands straddling the overflow boundary.
func TestQArithmeticMatchesBigRat(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		a, b := randQ(lr), randQ(lr)
		ba, bb := bigOf(a), bigOf(b)
		if bigOf(a.Add(b)).Cmp(new(big.Rat).Add(ba, bb)) != 0 {
			t.Logf("Add mismatch: %v + %v", a, b)
			return false
		}
		if bigOf(a.Sub(b)).Cmp(new(big.Rat).Sub(ba, bb)) != 0 {
			t.Logf("Sub mismatch: %v - %v", a, b)
			return false
		}
		if bigOf(a.Mul(b)).Cmp(new(big.Rat).Mul(ba, bb)) != 0 {
			t.Logf("Mul mismatch: %v * %v", a, b)
			return false
		}
		if bigOf(a.MulNeg(b)).Cmp(new(big.Rat).Neg(new(big.Rat).Mul(ba, bb))) != 0 {
			t.Logf("MulNeg mismatch: %v * %v", a, b)
			return false
		}
		if bigOf(a.Neg()).Cmp(new(big.Rat).Neg(ba)) != 0 {
			t.Logf("Neg mismatch: %v", a)
			return false
		}
		if a.Sign() != 0 && bigOf(a.Inv()).Cmp(new(big.Rat).Inv(ba)) != 0 {
			t.Logf("Inv mismatch: %v", a)
			return false
		}
		if a.Cmp(b) != ba.Cmp(bb) {
			t.Logf("Cmp mismatch: %v vs %v", a, b)
			return false
		}
		if a.Sign() != ba.Sign() || a.IsZero() != (ba.Sign() == 0) {
			t.Logf("Sign/IsZero mismatch: %v", a)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500, Rand: rng}); err != nil {
		t.Fatalf("Q/big.Rat agreement failed: %v", err)
	}
}

// TestQOverflowPromotes drives operations guaranteed to overflow int64 and
// checks the result is promoted yet exact.
func TestQOverflowPromotes(t *testing.T) {
	huge := QFromInt(math.MaxInt64)
	sq := huge.Mul(huge)
	if !sq.IsBig() {
		t.Fatalf("MaxInt64² stayed on the fast path")
	}
	want := new(big.Rat).Mul(big.NewRat(math.MaxInt64, 1), big.NewRat(math.MaxInt64, 1))
	if sq.Rat().Cmp(want) != 0 {
		t.Fatalf("MaxInt64² = %s, want %s", sq.RatString(), want.RatString())
	}
	// Adding with incompatible huge denominators overflows the common
	// denominator.
	a := QFromFrac(1, math.MaxInt64)
	b := QFromFrac(1, math.MaxInt64-2)
	s := a.Add(b)
	wantSum := new(big.Rat).Add(big.NewRat(1, math.MaxInt64), big.NewRat(1, math.MaxInt64-2))
	if s.Rat().Cmp(wantSum) != 0 {
		t.Fatalf("sum = %s, want %s", s.RatString(), wantSum.RatString())
	}
	// A transient overflow whose result fits demotes back to the fast path.
	backDown := sq.Mul(QFromFrac(1, math.MaxInt64)).Mul(QFromFrac(1, math.MaxInt64))
	if backDown.IsBig() {
		t.Fatalf("result 1 did not demote to the fast path")
	}
	if backDown.Cmp(QFromInt(1)) != 0 {
		t.Fatalf("backDown = %s, want 1", backDown.RatString())
	}
}

// TestQMinInt64Boundary exercises the asymmetric −2⁶³ edge where negation
// overflows.
func TestQMinInt64Boundary(t *testing.T) {
	m := QFromInt(math.MinInt64)
	n := m.Neg()
	want := new(big.Rat).Neg(big.NewRat(math.MinInt64, 1))
	if n.Rat().Cmp(want) != 0 {
		t.Fatalf("-MinInt64 = %s, want %s", n.RatString(), want.RatString())
	}
	inv := m.Inv()
	wantInv := new(big.Rat).Inv(big.NewRat(math.MinInt64, 1))
	if inv.Rat().Cmp(wantInv) != 0 {
		t.Fatalf("1/MinInt64 = %s, want %s", inv.RatString(), wantInv.RatString())
	}
	if got := m.Abs().Rat().Cmp(want); got != 0 {
		t.Fatalf("|MinInt64| wrong")
	}
}

// TestQForceBig verifies the pure-big test mode computes identical values.
func TestQForceBig(t *testing.T) {
	a, b := QFromFrac(3, 7), QFromFrac(-5, 11)
	fast := a.Add(b).Mul(a).Sub(b.Inv())
	prev := SetForceBig(true)
	defer SetForceBig(prev)
	slow := QFromFrac(3, 7).Add(QFromFrac(-5, 11)).Mul(QFromFrac(3, 7)).Sub(QFromFrac(-5, 11).Inv())
	if !slow.IsBig() {
		t.Fatalf("forceBig did not promote")
	}
	if fast.Cmp(slow) != 0 {
		t.Fatalf("fast %s != forced-big %s", fast.RatString(), slow.RatString())
	}
}

// randQDelta draws a delta-rational over hybrid components.
func randQDelta(rng *rand.Rand) Delta {
	return NewDeltaQ(randQ(rng), randQ(rng))
}

// TestQDeltaOrderingLaws replays the Delta algebraic/ordering laws over
// hybrid components, including promoted ones.
func TestQDeltaOrderingLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		a, b, c := randQDelta(lr), randQDelta(lr), randQDelta(lr)
		if a.Add(b).Sub(b).Cmp(a) != 0 {
			return false
		}
		if a.Neg().Neg().Cmp(a) != 0 {
			return false
		}
		if a.Cmp(b) != -b.Cmp(a) {
			return false
		}
		// Ordering is translation-invariant: a < b → a + c < b + c.
		if a.Cmp(b) < 0 && a.Add(c).Cmp(b.Add(c)) >= 0 {
			return false
		}
		// Scaling by a positive rational preserves order.
		s := randQ(lr).Abs()
		if s.Sign() > 0 && a.Cmp(b) < 0 && a.MulQ(s).Cmp(b.MulQ(s)) >= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatalf("Delta-over-Q laws failed: %v", err)
	}
}
