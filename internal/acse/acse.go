// Package acse implements AC weighted-least-squares state estimation by
// Gauss–Newton iteration, with the same chi-square bad data detection as
// the DC estimator. It exists for the repository's extension experiments:
// attacks crafted against the DC model (the paper's setting) are only
// approximately stealthy against an AC estimator, and this package
// measures by how much.
package acse

import (
	"errors"
	"fmt"
	"math"

	"segrid/internal/acflow"
	"segrid/internal/matrix"
	"segrid/internal/stat"
)

// ErrDiverged is returned when Gauss–Newton fails to converge.
var ErrDiverged = errors.New("acse: estimator did not converge")

// MeasKind enumerates AC measurement types.
type MeasKind int8

// AC measurement kinds.
const (
	MeasPFlowFrom MeasKind = iota + 1 // P into the branch at the from bus
	MeasPFlowTo                       // P into the branch at the to bus
	MeasQFlowFrom                     // Q into the branch at the from bus
	MeasQFlowTo                       // Q into the branch at the to bus
	MeasPInj                          // net real power injection at a bus
	MeasQInj                          // net reactive power injection
	MeasVMag                          // voltage magnitude
)

// Measurement identifies one AC measurement: a kind plus the branch or bus
// it refers to.
type Measurement struct {
	Kind MeasKind
	Ref  int // branch ID for flow kinds, bus ID otherwise
}

// FullMeasurementSet returns every measurement the model supports:
// 4l flows + 2b injections + b voltage magnitudes.
func FullMeasurementSet(n *acflow.Network) []Measurement {
	l := len(n.Branches)
	out := make([]Measurement, 0, 4*l+3*n.Buses)
	for _, kind := range []MeasKind{MeasPFlowFrom, MeasPFlowTo, MeasQFlowFrom, MeasQFlowTo} {
		for id := 1; id <= l; id++ {
			out = append(out, Measurement{Kind: kind, Ref: id})
		}
	}
	for _, kind := range []MeasKind{MeasPInj, MeasQInj, MeasVMag} {
		for bus := 1; bus <= n.Buses; bus++ {
			out = append(out, Measurement{Kind: kind, Ref: bus})
		}
	}
	return out
}

// Evaluate computes the measurement function h(x) for one measurement.
func Evaluate(n *acflow.Network, st *acflow.State, m Measurement) (float64, error) {
	switch m.Kind {
	case MeasPFlowFrom, MeasQFlowFrom:
		if m.Ref < 1 || m.Ref > len(n.Branches) {
			return 0, fmt.Errorf("acse: branch %d out of range", m.Ref)
		}
		p, q, err := n.BranchFlow(st, m.Ref, n.Branches[m.Ref-1].From)
		if err != nil {
			return 0, err
		}
		if m.Kind == MeasPFlowFrom {
			return p, nil
		}
		return q, nil
	case MeasPFlowTo, MeasQFlowTo:
		if m.Ref < 1 || m.Ref > len(n.Branches) {
			return 0, fmt.Errorf("acse: branch %d out of range", m.Ref)
		}
		p, q, err := n.BranchFlow(st, m.Ref, n.Branches[m.Ref-1].To)
		if err != nil {
			return 0, err
		}
		if m.Kind == MeasPFlowTo {
			return p, nil
		}
		return q, nil
	case MeasPInj, MeasQInj:
		if m.Ref < 1 || m.Ref > n.Buses {
			return 0, fmt.Errorf("acse: bus %d out of range", m.Ref)
		}
		p, q := n.Injections(st)
		if m.Kind == MeasPInj {
			return p[m.Ref], nil
		}
		return q[m.Ref], nil
	case MeasVMag:
		if m.Ref < 1 || m.Ref > n.Buses {
			return 0, fmt.Errorf("acse: bus %d out of range", m.Ref)
		}
		return st.V[m.Ref], nil
	default:
		return 0, fmt.Errorf("acse: unknown measurement kind %d", m.Kind)
	}
}

// MeasureAll evaluates a list of measurements at a state.
func MeasureAll(n *acflow.Network, st *acflow.State, ms []Measurement) ([]float64, error) {
	// Injections are O(b²) per call; compute them once.
	p, q := n.Injections(st)
	out := make([]float64, len(ms))
	for i, m := range ms {
		switch m.Kind {
		case MeasPInj:
			if m.Ref < 1 || m.Ref > n.Buses {
				return nil, fmt.Errorf("acse: bus %d out of range", m.Ref)
			}
			out[i] = p[m.Ref]
		case MeasQInj:
			if m.Ref < 1 || m.Ref > n.Buses {
				return nil, fmt.Errorf("acse: bus %d out of range", m.Ref)
			}
			out[i] = q[m.Ref]
		default:
			v, err := Evaluate(n, st, m)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
	}
	return out, nil
}

// Estimator runs Gauss–Newton WLS over the AC measurement model. States are
// θ at every non-slack bus plus V at every bus (2b−1 unknowns).
type Estimator struct {
	net    *acflow.Network
	ms     []Measurement
	slack  int
	sigma  float64
	thetas []int // bus per θ-state, in column order
}

// NewEstimator builds an AC estimator. The measurement set must make the
// system observable (at least 2b−1 measurements; rank is checked during
// Estimate via the LU solve).
func NewEstimator(n *acflow.Network, ms []Measurement, slack int, sigma float64) (*Estimator, error) {
	if slack < 1 || slack > n.Buses {
		return nil, fmt.Errorf("acse: slack bus %d out of range", slack)
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("acse: sigma must be positive")
	}
	if len(ms) < 2*n.Buses-1 {
		return nil, fmt.Errorf("acse: %d measurements cannot determine %d states", len(ms), 2*n.Buses-1)
	}
	e := &Estimator{net: n, ms: append([]Measurement(nil), ms...), slack: slack, sigma: sigma}
	for bus := 1; bus <= n.Buses; bus++ {
		if bus != slack {
			e.thetas = append(e.thetas, bus)
		}
	}
	return e, nil
}

// NumStates returns 2b−1.
func (e *Estimator) NumStates() int { return 2*e.net.Buses - 1 }

// NumMeasurements returns the configured measurement count.
func (e *Estimator) NumMeasurements() int { return len(e.ms) }

// Solution is an AC estimation result.
type Solution struct {
	State *acflow.State
	// J is the weighted residual sum of squares, χ² with m−n degrees of
	// freedom under Gaussian noise.
	J          float64
	Iterations int
}

// Estimate runs Gauss–Newton from a flat start.
func (e *Estimator) Estimate(z []float64) (*Solution, error) {
	if len(z) != len(e.ms) {
		return nil, fmt.Errorf("acse: measurement vector length %d, want %d", len(z), len(e.ms))
	}
	st := acflow.NewFlatState(e.net.Buses)
	w := 1 / (e.sigma * e.sigma)
	const maxIter = 50
	for iter := 1; iter <= maxIter; iter++ {
		h, err := MeasureAll(e.net, st, e.ms)
		if err != nil {
			return nil, err
		}
		resid := make([]float64, len(z))
		for i := range z {
			resid[i] = z[i] - h[i]
		}
		jac, err := e.jacobian(st)
		if err != nil {
			return nil, err
		}
		// Normal equations with uniform weights: (JᵀJ)Δx = Jᵀr.
		jt := jac.Transpose()
		gain, err := jt.Mul(jac)
		if err != nil {
			return nil, err
		}
		rhs, err := jt.MulVec(resid)
		if err != nil {
			return nil, err
		}
		dx, err := gain.SolveLU(rhs)
		if err != nil {
			return nil, fmt.Errorf("acse: gain solve (unobservable?): %w", err)
		}
		maxStep := 0.0
		for c, bus := range e.thetas {
			st.Theta[bus] += dx[c]
			maxStep = math.Max(maxStep, math.Abs(dx[c]))
		}
		off := len(e.thetas)
		for bus := 1; bus <= e.net.Buses; bus++ {
			st.V[bus] += dx[off+bus-1]
			maxStep = math.Max(maxStep, math.Abs(dx[off+bus-1]))
		}
		if maxStep < 1e-10 {
			hFinal, err := MeasureAll(e.net, st, e.ms)
			if err != nil {
				return nil, err
			}
			j := 0.0
			for i := range z {
				d := z[i] - hFinal[i]
				j += w * d * d
			}
			return &Solution{State: st, J: j, Iterations: iter}, nil
		}
	}
	return nil, ErrDiverged
}

// Detector is the chi-square bad data detector for the AC estimator.
type Detector struct {
	threshold float64
	dof       int
}

// NewDetector builds the χ²_{m−n} detector at significance alpha.
func NewDetector(e *Estimator, alpha float64) (*Detector, error) {
	dof := e.NumMeasurements() - e.NumStates()
	if dof <= 0 {
		return nil, errors.New("acse: no measurement redundancy")
	}
	q, err := stat.ChiSquareQuantile(1-alpha, dof)
	if err != nil {
		return nil, err
	}
	return &Detector{threshold: q, dof: dof}, nil
}

// Threshold returns τ.
func (d *Detector) Threshold() float64 { return d.threshold }

// BadDataDetected reports whether the residual exceeds τ.
func (d *Detector) BadDataDetected(sol *Solution) bool { return sol.J > d.threshold }

// jacobian assembles ∂h/∂x at the state, columns ordered θ(non-slack) then
// V(all buses). Derivatives are the standard polar-form expressions.
func (e *Estimator) jacobian(st *acflow.State) (*matrix.Dense, error) {
	n := e.net
	nT := len(e.thetas)
	cols := nT + n.Buses
	jac := matrix.NewDense(len(e.ms), cols)
	thetaCol := make(map[int]int, nT)
	for c, bus := range e.thetas {
		thetaCol[bus] = c
	}
	vCol := func(bus int) int { return nT + bus - 1 }

	// Injections need the full admittance structure; reuse acflow's
	// computation through finite formulas below.
	pInj, qInj := n.Injections(st)
	g, b := n.Admittance()

	setTheta := func(row, bus int, val float64) {
		if c, ok := thetaCol[bus]; ok {
			jac.Set(row, c, jac.At(row, c)+val)
		}
	}
	setV := func(row, bus int, val float64) {
		c := vCol(bus)
		jac.Set(row, c, jac.At(row, c)+val)
	}

	for row, m := range e.ms {
		switch m.Kind {
		case MeasPFlowFrom, MeasPFlowTo, MeasQFlowFrom, MeasQFlowTo:
			br := n.Branches[m.Ref-1]
			i, j := br.From, br.To
			if m.Kind == MeasPFlowTo || m.Kind == MeasQFlowTo {
				i, j = j, i
			}
			gs, bs := br.Series()
			bc2 := br.Charging / 2
			vi, vj := st.V[i], st.V[j]
			dij := st.Theta[i] - st.Theta[j]
			c, s := math.Cos(dij), math.Sin(dij)
			switch m.Kind {
			case MeasPFlowFrom, MeasPFlowTo:
				setTheta(row, i, vi*vj*(gs*s-bs*c))
				setTheta(row, j, -vi*vj*(gs*s-bs*c))
				setV(row, i, 2*vi*gs-vj*(gs*c+bs*s))
				setV(row, j, -vi*(gs*c+bs*s))
			default: // Q flows
				setTheta(row, i, -vi*vj*(gs*c+bs*s))
				setTheta(row, j, vi*vj*(gs*c+bs*s))
				setV(row, i, -2*vi*(bs+bc2)-vj*(gs*s-bs*c))
				setV(row, j, -vi*(gs*s-bs*c))
			}
		case MeasPInj:
			i := m.Ref
			vi := st.V[i]
			setTheta(row, i, -qInj[i]-b[i][i]*vi*vi)
			setV(row, i, pInj[i]/vi+g[i][i]*vi)
			for k := 1; k <= n.Buses; k++ {
				if k == i || (g[i][k] == 0 && b[i][k] == 0) {
					continue
				}
				dik := st.Theta[i] - st.Theta[k]
				c, s := math.Cos(dik), math.Sin(dik)
				// ∂P_i/∂θ_k = V_iV_k(G_ik sinθ_ik − B_ik cosθ_ik) for k≠i.
				setTheta(row, k, vi*st.V[k]*(g[i][k]*s-b[i][k]*c))
				setV(row, k, vi*(g[i][k]*c+b[i][k]*s))
			}
		case MeasQInj:
			i := m.Ref
			vi := st.V[i]
			setTheta(row, i, pInj[i]-g[i][i]*vi*vi)
			setV(row, i, qInj[i]/vi-b[i][i]*vi)
			for k := 1; k <= n.Buses; k++ {
				if k == i || (g[i][k] == 0 && b[i][k] == 0) {
					continue
				}
				dik := st.Theta[i] - st.Theta[k]
				c, s := math.Cos(dik), math.Sin(dik)
				setTheta(row, k, -vi*st.V[k]*(g[i][k]*c+b[i][k]*s))
				setV(row, k, vi*(g[i][k]*s-b[i][k]*c))
			}
		case MeasVMag:
			setV(row, m.Ref, 1)
		default:
			return nil, fmt.Errorf("acse: unknown measurement kind %d", m.Kind)
		}
	}
	return jac, nil
}
