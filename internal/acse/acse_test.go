package acse

import (
	"math"
	"math/rand"
	"testing"

	"segrid/internal/acflow"
	"segrid/internal/core"
	"segrid/internal/grid"
	"segrid/internal/stat"
)

// testNetwork lifts the IEEE 14-bus DC case to AC.
func testNetwork(t *testing.T) *acflow.Network {
	t.Helper()
	n, err := acflow.FromDC(grid.IEEE14(), 0.2, 0.02)
	if err != nil {
		t.Fatalf("FromDC: %v", err)
	}
	return n
}

// operatingPoint solves a plausible loaded state.
func operatingPoint(t *testing.T, n *acflow.Network) *acflow.State {
	t.Helper()
	p := make([]float64, n.Buses+1)
	q := make([]float64, n.Buses+1)
	for j := 2; j <= n.Buses; j++ {
		p[j] = -(0.04 + 0.01*float64(j%6))
		q[j] = -0.015
	}
	st, err := n.Solve(acflow.FlowCase{Slack: 1, SlackV: 1.02, P: p, Q: q})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return st
}

func TestEstimateRecoversOperatingPoint(t *testing.T) {
	n := testNetwork(t)
	st := operatingPoint(t, n)
	ms := FullMeasurementSet(n)
	z, err := MeasureAll(n, st, ms)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	est, err := NewEstimator(n, ms, 1, 0.01)
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	sol, err := est.Estimate(z)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	for j := 1; j <= n.Buses; j++ {
		if math.Abs(sol.State.V[j]-st.V[j]) > 1e-6 {
			t.Fatalf("bus %d: V̂ %v, want %v", j, sol.State.V[j], st.V[j])
		}
		if math.Abs(sol.State.Theta[j]-st.Theta[j]-sol.State.Theta[1]+st.Theta[1]) > 1e-6 {
			t.Fatalf("bus %d: θ̂ mismatch", j)
		}
	}
	if sol.J > 1e-10 {
		t.Fatalf("noiseless residual J = %v, want ~0", sol.J)
	}
}

func TestEstimateWithNoiseAndDetector(t *testing.T) {
	n := testNetwork(t)
	st := operatingPoint(t, n)
	ms := FullMeasurementSet(n)
	clean, err := MeasureAll(n, st, ms)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	const sigma = 0.002
	est, err := NewEstimator(n, ms, 1, sigma)
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	det, err := NewDetector(est, 0.01)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	sampler := stat.NewNormalSampler(9)
	z := append([]float64(nil), clean...)
	for i := range z {
		z[i] += sampler.Sample(0, sigma)
	}
	sol, err := est.Estimate(z)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if det.BadDataDetected(sol) {
		t.Fatalf("clean noisy measurements flagged: J=%v τ=%v", sol.J, det.Threshold())
	}
	// Gross error trips it.
	z[0] += 0.8
	solBad, err := est.Estimate(z)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if !det.BadDataDetected(solBad) {
		t.Fatalf("gross error undetected: J=%v τ=%v", solBad.J, det.Threshold())
	}
}

// TestJacobianMatchesFiniteDifferences validates every analytic derivative
// against central finite differences at a non-trivial operating point.
func TestJacobianMatchesFiniteDifferences(t *testing.T) {
	n := testNetwork(t)
	st := operatingPoint(t, n)
	ms := FullMeasurementSet(n)
	est, err := NewEstimator(n, ms, 1, 0.01)
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	jac, err := est.jacobian(st)
	if err != nil {
		t.Fatalf("jacobian: %v", err)
	}
	const h = 1e-7
	perturb := func(col int, delta float64) *acflow.State {
		p := st.Clone()
		if col < len(est.thetas) {
			p.Theta[est.thetas[col]] += delta
		} else {
			p.V[col-len(est.thetas)+1] += delta
		}
		return p
	}
	cols := est.NumStates()
	rng := rand.New(rand.NewSource(17))
	// Check a random sample of (row, col) pairs plus every column once.
	checked := 0
	for col := 0; col < cols; col++ {
		plus, err := MeasureAll(n, perturb(col, h), ms)
		if err != nil {
			t.Fatalf("MeasureAll: %v", err)
		}
		minus, err := MeasureAll(n, perturb(col, -h), ms)
		if err != nil {
			t.Fatalf("MeasureAll: %v", err)
		}
		for trial := 0; trial < 30; trial++ {
			row := rng.Intn(len(ms))
			fd := (plus[row] - minus[row]) / (2 * h)
			an := jac.At(row, col)
			if math.Abs(fd-an) > 1e-4*(1+math.Abs(an)) {
				t.Fatalf("∂h[%d]/∂x[%d]: analytic %v, finite-diff %v (meas %+v)",
					row, col, an, fd, ms[row])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("no derivatives checked")
	}
}

// TestDCAttackAgainstACEstimator is the repository's headline extension
// experiment: a stealthy attack crafted on the DC model, injected into AC
// measurements, is only approximately stealthy — the residual grows with
// attack magnitude, and large attacks become detectable.
func TestDCAttackAgainstACEstimator(t *testing.T) {
	sys := grid.IEEE14()
	n := testNetwork(t)
	st := operatingPoint(t, n)
	ms := FullMeasurementSet(n)
	clean, err := MeasureAll(n, st, ms)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	const sigma = 0.002
	est, err := NewEstimator(n, ms, 1, sigma)
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	det, err := NewDetector(est, 0.05)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}

	// DC attack on state 12 from the formal model.
	sc := core.NewScenario(sys)
	sc.TargetStates = []int{12}
	res, err := core.Verify(sc)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("DC attack infeasible")
	}

	// Map the DC deltas onto the AC real-power measurements: forward flow
	// i → MeasPFlowFrom(i), backward → MeasPFlowTo(i), injection j →
	// −ΔP^B (the DC model uses the consumption convention; AC injections
	// are generation-positive).
	apply := func(scale float64) []float64 {
		base, err := core.FloatMeasurementDeltas(sc, res)
		if err != nil {
			t.Fatalf("FloatMeasurementDeltas: %v", err)
		}
		z := append([]float64(nil), clean...)
		l := sys.NumLines()
		for i, m := range ms {
			switch m.Kind {
			case MeasPFlowFrom:
				z[i] += scale * base[m.Ref]
			case MeasPFlowTo:
				z[i] += scale * base[l+m.Ref]
			case MeasPInj:
				z[i] -= scale * base[2*l+m.Ref]
			}
		}
		return z
	}

	// The DC model normalizes the attack; rescale to physical magnitudes:
	// Δθ12 ≈ 0.01 rad slips through, ≈ 0.2 rad lights the detector up, and
	// the residual grows monotonically (quadratically) in between.
	unit := math.Abs(res.StateChangeFloat(12))
	if unit == 0 {
		t.Fatalf("attack did not move state 12")
	}
	prevJ := -1.0
	for _, mag := range []float64{0.01, 0.05, 0.2} {
		sol, err := est.Estimate(apply(mag / unit))
		if err != nil {
			t.Fatalf("Estimate at Δθ=%v: %v", mag, err)
		}
		if sol.J <= prevJ {
			t.Fatalf("residual not monotone in attack magnitude: %v then %v", prevJ, sol.J)
		}
		prevJ = sol.J
		detected := det.BadDataDetected(sol)
		switch mag {
		case 0.01:
			if detected {
				t.Fatalf("small DC attack (Δθ=%v) detected: J=%v τ=%v", mag, sol.J, det.Threshold())
			}
		case 0.2:
			if !detected {
				t.Fatalf("large DC attack (Δθ=%v) undetected: J=%v τ=%v", mag, sol.J, det.Threshold())
			}
		}
	}
}

func TestEstimatorValidation(t *testing.T) {
	n := testNetwork(t)
	ms := FullMeasurementSet(n)
	if _, err := NewEstimator(n, ms, 0, 0.01); err == nil {
		t.Fatalf("bad slack accepted")
	}
	if _, err := NewEstimator(n, ms, 1, 0); err == nil {
		t.Fatalf("zero sigma accepted")
	}
	if _, err := NewEstimator(n, ms[:5], 1, 0.01); err == nil {
		t.Fatalf("unobservable set accepted")
	}
	est, err := NewEstimator(n, ms, 1, 0.01)
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	if _, err := est.Estimate(make([]float64, 3)); err == nil {
		t.Fatalf("bad vector length accepted")
	}
}

func TestEvaluateValidation(t *testing.T) {
	n := testNetwork(t)
	st := acflow.NewFlatState(n.Buses)
	if _, err := Evaluate(n, st, Measurement{Kind: MeasPFlowFrom, Ref: 99}); err == nil {
		t.Fatalf("bad branch accepted")
	}
	if _, err := Evaluate(n, st, Measurement{Kind: MeasVMag, Ref: 0}); err == nil {
		t.Fatalf("bad bus accepted")
	}
	if _, err := Evaluate(n, st, Measurement{Kind: 99, Ref: 1}); err == nil {
		t.Fatalf("bad kind accepted")
	}
	v, err := Evaluate(n, st, Measurement{Kind: MeasVMag, Ref: 3})
	if err != nil || v != 1 {
		t.Fatalf("VMag at flat start = %v, %v", v, err)
	}
}

func TestFullMeasurementSetSize(t *testing.T) {
	n := testNetwork(t)
	ms := FullMeasurementSet(n)
	want := 4*len(n.Branches) + 3*n.Buses
	if len(ms) != want {
		t.Fatalf("len = %d, want %d", len(ms), want)
	}
}
