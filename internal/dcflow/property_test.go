package dcflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"segrid/internal/grid"
)

// TestSolveFlowMeasureRoundTrip: on random synthetic systems, solving the
// flow for random balanced consumptions and re-measuring returns those
// consumptions (DC power flow is exact).
func TestSolveFlowMeasureRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		buses := 6 + lr.Intn(20)
		lines := buses + lr.Intn(buses)
		maxLines := buses * (buses - 1) / 2
		if lines > maxLines {
			lines = maxLines
		}
		sys, err := grid.Synthetic("prop", buses, lines, uint64(seed)+1)
		if err != nil {
			return false
		}
		cons := make([]float64, buses+1)
		total := 0.0
		for j := 2; j <= buses; j++ {
			cons[j] = lr.NormFloat64() * 0.3
			total += cons[j]
		}
		cons[1] = -total
		angles, err := SolveFlow(sys, cons, 1)
		if err != nil {
			return false
		}
		z, err := MeasureAll(sys, nil, angles)
		if err != nil {
			return false
		}
		l := sys.NumLines()
		for j := 1; j <= buses; j++ {
			if math.Abs(z[2*l+j]-cons[j]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatalf("round-trip property failed: %v", err)
	}
}

// TestSuperpositionProperty: the DC model is linear, so measurements of a
// sum of angle vectors equal the sum of measurements — the property that
// makes a = H·c attacks stealthy.
func TestSuperpositionProperty(t *testing.T) {
	sys := grid.IEEE30()
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		a := make([]float64, sys.Buses+1)
		b := make([]float64, sys.Buses+1)
		sum := make([]float64, sys.Buses+1)
		for j := 2; j <= sys.Buses; j++ {
			a[j] = lr.NormFloat64() * 0.1
			b[j] = lr.NormFloat64() * 0.1
			sum[j] = a[j] + b[j]
		}
		za, err := MeasureAll(sys, nil, a)
		if err != nil {
			return false
		}
		zb, err := MeasureAll(sys, nil, b)
		if err != nil {
			return false
		}
		zs, err := MeasureAll(sys, nil, sum)
		if err != nil {
			return false
		}
		for id := 1; id <= sys.NumMeasurements(); id++ {
			if math.Abs(zs[id]-za[id]-zb[id]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatalf("superposition property failed: %v", err)
	}
}

// TestExcludedLineCarriesNoCoupling: excluding lines from the mapping must
// zero exactly their rows and their endpoints' coupling through them.
func TestExcludedLineCarriesNoCoupling(t *testing.T) {
	sys := grid.IEEE30()
	mapped := AllMapped(sys)
	for _, drop := range []int{1, 17, 41} {
		mapped[drop] = false
	}
	h := BuildH(sys, mapped)
	full := BuildH(sys, nil)
	l := sys.NumLines()
	for _, drop := range []int{1, 17, 41} {
		for col := 0; col < sys.Buses; col++ {
			if h.At(drop-1, col) != 0 || h.At(l+drop-1, col) != 0 {
				t.Fatalf("line %d rows not zeroed", drop)
			}
		}
	}
	// Rows of untouched lines are identical to the full mapping.
	for i := 1; i <= l; i++ {
		if i == 1 || i == 17 || i == 41 {
			continue
		}
		for col := 0; col < sys.Buses; col++ {
			if h.At(i-1, col) != full.At(i-1, col) {
				t.Fatalf("line %d rows disturbed by exclusion", i)
			}
		}
	}
}
