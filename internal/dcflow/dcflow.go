// Package dcflow implements the DC power flow model and the topology
// processor of the reproduced paper (Section II): constructing the
// measurement Jacobian H = [DA; −DA; AᵀDA] from the mapped topology
// (Eq. 2), evaluating measurement functions, and solving base-case flows.
//
// Sign conventions follow the paper: the forward flow of line i is
// P_i = Y_i·(θ_from − θ_to) (Eq. 3), and the consumption at bus j is
// Σ incoming flows − Σ outgoing flows (Eq. 4).
package dcflow

import (
	"fmt"

	"segrid/internal/grid"
	"segrid/internal/matrix"
)

// AllMapped returns a 1-based topology mapping with every line in service.
func AllMapped(sys *grid.System) []bool {
	mapped := make([]bool, sys.NumLines()+1)
	for i := 1; i <= sys.NumLines(); i++ {
		mapped[i] = true
	}
	return mapped
}

// BuildH constructs the full (2l+b) × b measurement Jacobian over all
// potential measurements for the given mapped topology (1-based; nil means
// all lines in service). Row ordering matches the paper's measurement
// numbering; column j−1 corresponds to bus j's phase angle.
func BuildH(sys *grid.System, mapped []bool) *matrix.Dense {
	l := sys.NumLines()
	b := sys.Buses
	h := matrix.NewDense(2*l+b, b)
	for _, ln := range sys.Lines {
		if mapped != nil && !mapped[ln.ID] {
			continue
		}
		fwd := ln.ID - 1
		bwd := l + ln.ID - 1
		h.Set(fwd, ln.From-1, ln.Admittance)
		h.Set(fwd, ln.To-1, -ln.Admittance)
		h.Set(bwd, ln.From-1, -ln.Admittance)
		h.Set(bwd, ln.To-1, ln.Admittance)
		// Consumption rows (Eq. 4): incoming minus outgoing.
		toRow := 2*l + ln.To - 1
		h.Set(toRow, ln.From-1, h.At(toRow, ln.From-1)+ln.Admittance)
		h.Set(toRow, ln.To-1, h.At(toRow, ln.To-1)-ln.Admittance)
		fromRow := 2*l + ln.From - 1
		h.Set(fromRow, ln.From-1, h.At(fromRow, ln.From-1)-ln.Admittance)
		h.Set(fromRow, ln.To-1, h.At(fromRow, ln.To-1)+ln.Admittance)
	}
	return h
}

// ReduceH drops the reference-bus column (fixing θ_ref = 0) and keeps only
// the rows of taken measurements, in ascending measurement-ID order. It
// returns the reduced Jacobian and the taken measurement IDs in row order.
func ReduceH(h *matrix.Dense, sys *grid.System, meas *grid.MeasurementConfig, refBus int) (*matrix.Dense, []int, error) {
	if refBus < 1 || refBus > sys.Buses {
		return nil, nil, fmt.Errorf("dcflow: reference bus %d out of range 1..%d", refBus, sys.Buses)
	}
	ids := meas.TakenIDs()
	out := matrix.NewDense(len(ids), sys.Buses-1)
	for r, id := range ids {
		col := 0
		for j := 1; j <= sys.Buses; j++ {
			if j == refBus {
				continue
			}
			out.Set(r, col, h.At(id-1, j-1))
			col++
		}
	}
	return out, ids, nil
}

// MeasureAll evaluates every potential measurement for the given bus angles
// (1-based angles[1..b]) under the mapped topology. Result is 1-based with
// index 0 unused.
func MeasureAll(sys *grid.System, mapped []bool, angles []float64) ([]float64, error) {
	if len(angles) != sys.Buses+1 {
		return nil, fmt.Errorf("dcflow: angles length %d, want %d", len(angles), sys.Buses+1)
	}
	l := sys.NumLines()
	z := make([]float64, sys.NumMeasurements()+1)
	for _, ln := range sys.Lines {
		if mapped != nil && !mapped[ln.ID] {
			continue
		}
		flow := ln.Admittance * (angles[ln.From] - angles[ln.To])
		z[ln.ID] = flow
		z[l+ln.ID] = -flow
		z[2*l+ln.To] += flow
		z[2*l+ln.From] -= flow
	}
	return z, nil
}

// SolveFlow computes bus angles for given net consumptions (1-based,
// consumption[1..b]; positive = load under the paper's Eq. 4 convention)
// with the reference bus fixed at angle 0. Consumptions must balance to
// zero within tolerance; the reference bus entry is treated as the slack
// and recomputed.
func SolveFlow(sys *grid.System, consumption []float64, refBus int) ([]float64, error) {
	b := sys.Buses
	if len(consumption) != b+1 {
		return nil, fmt.Errorf("dcflow: consumption length %d, want %d", len(consumption), b+1)
	}
	if refBus < 1 || refBus > b {
		return nil, fmt.Errorf("dcflow: reference bus %d out of range", refBus)
	}
	// Build the reduced susceptance system: for each non-reference bus j,
	// consumption_j = Σ_in Y(θ_from − θ_to) − Σ_out Y(θ_from − θ_to).
	idx := make([]int, b+1) // bus → reduced column, −1 for reference
	col := 0
	for j := 1; j <= b; j++ {
		if j == refBus {
			idx[j] = -1
			continue
		}
		idx[j] = col
		col++
	}
	a := matrix.NewDense(b-1, b-1)
	rhs := make([]float64, b-1)
	addTerm := func(row, bus int, coeff float64) {
		if idx[bus] >= 0 {
			a.Set(row, idx[bus], a.At(row, idx[bus])+coeff)
		}
	}
	for j := 1; j <= b; j++ {
		if j == refBus {
			continue
		}
		row := idx[j]
		rhs[row] = consumption[j]
		for _, id := range sys.InLines(j) {
			ln := sys.Line(id)
			addTerm(row, ln.From, ln.Admittance)
			addTerm(row, ln.To, -ln.Admittance)
		}
		for _, id := range sys.OutLines(j) {
			ln := sys.Line(id)
			addTerm(row, ln.From, -ln.Admittance)
			addTerm(row, ln.To, ln.Admittance)
		}
	}
	sol, err := a.SolveLU(rhs)
	if err != nil {
		return nil, fmt.Errorf("dcflow: power flow solve: %w", err)
	}
	angles := make([]float64, b+1)
	for j := 1; j <= b; j++ {
		if j == refBus {
			continue
		}
		angles[j] = sol[idx[j]]
	}
	return angles, nil
}
