package dcflow

import (
	"math"
	"math/rand"
	"testing"

	"segrid/internal/grid"
)

func TestBuildHShape(t *testing.T) {
	sys := grid.IEEE14()
	h := BuildH(sys, nil)
	if h.Rows() != 54 || h.Cols() != 14 {
		t.Fatalf("H is %dx%d, want 54x14", h.Rows(), h.Cols())
	}
}

func TestBuildHLineRows(t *testing.T) {
	sys := grid.IEEE14()
	h := BuildH(sys, nil)
	// Line 1: 1→2, Y=16.90. Forward row 0: +Y at col 0, −Y at col 1.
	if h.At(0, 0) != 16.90 || h.At(0, 1) != -16.90 {
		t.Fatalf("forward row of line 1 wrong: %v %v", h.At(0, 0), h.At(0, 1))
	}
	// Backward row l+0 = 20: negated.
	if h.At(20, 0) != -16.90 || h.At(20, 1) != 16.90 {
		t.Fatalf("backward row of line 1 wrong")
	}
}

func TestBuildHInjectionRowsSumFlows(t *testing.T) {
	sys := grid.IEEE14()
	h := BuildH(sys, nil)
	l := sys.NumLines()
	// Paper Eq. 4: consumption row of bus j = Σ incoming forward rows −
	// Σ outgoing forward rows.
	for j := 1; j <= sys.Buses; j++ {
		for col := 0; col < sys.Buses; col++ {
			want := 0.0
			for _, id := range sys.InLines(j) {
				want += h.At(id-1, col)
			}
			for _, id := range sys.OutLines(j) {
				want -= h.At(id-1, col)
			}
			if got := h.At(2*l+j-1, col); math.Abs(got-want) > 1e-9 {
				t.Fatalf("injection row bus %d col %d = %v, want %v", j, col, got, want)
			}
		}
	}
}

func TestBuildHMappedExclusion(t *testing.T) {
	sys := grid.IEEE14()
	mapped := AllMapped(sys)
	mapped[13] = false // exclude line 13 (6→13)
	h := BuildH(sys, mapped)
	// Line 13 rows must be zero.
	for col := 0; col < sys.Buses; col++ {
		if h.At(12, col) != 0 || h.At(20+12, col) != 0 {
			t.Fatalf("excluded line rows non-zero")
		}
	}
	// Bus 6 injection row must no longer reference bus 13.
	l := sys.NumLines()
	if h.At(2*l+5, 12) != 0 {
		t.Fatalf("bus 6 injection still couples to bus 13 after exclusion")
	}
}

func TestMeasureAllConsistentWithH(t *testing.T) {
	sys := grid.IEEE30()
	rng := rand.New(rand.NewSource(3))
	angles := make([]float64, sys.Buses+1)
	for j := 2; j <= sys.Buses; j++ {
		angles[j] = rng.NormFloat64() * 0.1
	}
	z, err := MeasureAll(sys, nil, angles)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	h := BuildH(sys, nil)
	x := angles[1:]
	hx, err := h.MulVec(x)
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	for id := 1; id <= sys.NumMeasurements(); id++ {
		if math.Abs(z[id]-hx[id-1]) > 1e-9 {
			t.Fatalf("measurement %d: MeasureAll=%v H·x=%v", id, z[id], hx[id-1])
		}
	}
}

func TestMeasureAllBadLength(t *testing.T) {
	sys := grid.IEEE14()
	if _, err := MeasureAll(sys, nil, make([]float64, 3)); err == nil {
		t.Fatalf("bad angle length accepted")
	}
}

func TestSolveFlowBalances(t *testing.T) {
	sys := grid.IEEE14()
	// Bus 1 is slack; put load on a few buses and matching generation on 2.
	cons := make([]float64, sys.Buses+1)
	cons[3] = 0.9
	cons[9] = 0.5
	cons[14] = 0.3
	cons[2] = -1.7
	angles, err := SolveFlow(sys, cons, 1)
	if err != nil {
		t.Fatalf("SolveFlow: %v", err)
	}
	if angles[1] != 0 {
		t.Fatalf("reference angle not zero")
	}
	z, err := MeasureAll(sys, nil, angles)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	l := sys.NumLines()
	for j := 2; j <= sys.Buses; j++ {
		if math.Abs(z[2*l+j]-cons[j]) > 1e-8 {
			t.Fatalf("bus %d consumption = %v, want %v", j, z[2*l+j], cons[j])
		}
	}
	// Slack absorbs the balance: total consumption sums to zero.
	total := 0.0
	for j := 1; j <= sys.Buses; j++ {
		total += z[2*l+j]
	}
	if math.Abs(total) > 1e-8 {
		t.Fatalf("total consumption %v, want 0", total)
	}
}

func TestSolveFlowErrors(t *testing.T) {
	sys := grid.IEEE14()
	if _, err := SolveFlow(sys, make([]float64, 3), 1); err == nil {
		t.Fatalf("bad length accepted")
	}
	if _, err := SolveFlow(sys, make([]float64, sys.Buses+1), 0); err == nil {
		t.Fatalf("bad ref bus accepted")
	}
}

func TestReduceH(t *testing.T) {
	sys := grid.IEEE14()
	meas := grid.NewMeasurementConfig(sys)
	if err := meas.Untake(5, 10); err != nil {
		t.Fatalf("Untake: %v", err)
	}
	h := BuildH(sys, nil)
	red, ids, err := ReduceH(h, sys, meas, 1)
	if err != nil {
		t.Fatalf("ReduceH: %v", err)
	}
	if red.Rows() != 52 || red.Cols() != 13 {
		t.Fatalf("reduced H is %dx%d, want 52x13", red.Rows(), red.Cols())
	}
	if len(ids) != 52 || ids[0] != 1 || ids[4] != 6 {
		t.Fatalf("taken IDs wrong: %v...", ids[:6])
	}
	if _, _, err := ReduceH(h, sys, meas, 0); err == nil {
		t.Fatalf("bad ref bus accepted")
	}
}
