package matrix

import "math"

// NullSpace returns a basis of the right null space of m (vectors x with
// m·x = 0), one basis vector per slice, using Gauss–Jordan elimination with
// partial pivoting and the given tolerance. An empty result means the
// matrix has full column rank.
func (m *Dense) NullSpace(tol float64) [][]float64 {
	work := m.Clone()
	rows, cols := work.rows, work.cols
	pivotCol := make([]int, 0, cols) // pivot column per pivot row
	row := 0
	for col := 0; col < cols && row < rows; col++ {
		// Partial pivot.
		pivot := -1
		maxAbs := tol
		for r := row; r < rows; r++ {
			if a := math.Abs(work.At(r, col)); a > maxAbs {
				maxAbs, pivot = a, r
			}
		}
		if pivot < 0 {
			continue
		}
		work.swapRows(pivot, row)
		inv := 1 / work.At(row, col)
		for c := col; c < cols; c++ {
			work.Set(row, c, work.At(row, c)*inv)
		}
		for r := 0; r < rows; r++ {
			if r == row {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			for c := col; c < cols; c++ {
				work.Set(r, c, work.At(r, c)-f*work.At(row, c))
			}
		}
		pivotCol = append(pivotCol, col)
		row++
	}
	isPivot := make([]bool, cols)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	var basis [][]float64
	for free := 0; free < cols; free++ {
		if isPivot[free] {
			continue
		}
		vec := make([]float64, cols)
		vec[free] = 1
		for r, pc := range pivotCol {
			vec[pc] = -work.At(r, free)
		}
		basis = append(basis, vec)
	}
	return basis
}
