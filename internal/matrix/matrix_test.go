package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatalf("Set failed")
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatalf("ragged rows accepted, want error")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape wrong")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul wrong at %d,%d: %v want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewDense(3, 3)); err == nil {
		t.Fatalf("dimension mismatch accepted")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if v[0] != -2 || v[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", v)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatalf("length mismatch accepted")
	}
}

func TestSolveLUKnown(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := a.SolveLU([]float64{5, 10})
	if err != nil {
		t.Fatalf("SolveLU: %v", err)
	}
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveLUSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.SolveLU([]float64{1, 2}); err == nil {
		t.Fatalf("singular system solved, want error")
	}
}

func TestSolveLUNeedsPivoting(t *testing.T) {
	// Leading zero pivot requires row exchange.
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := a.SolveLU([]float64{2, 3})
	if err != nil {
		t.Fatalf("SolveLU: %v", err)
	}
	if !almostEqual(x[0], 3, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestRank(t *testing.T) {
	tests := []struct {
		name string
		rows [][]float64
		want int
	}{
		{"full", [][]float64{{1, 0}, {0, 1}}, 2},
		{"deficient", [][]float64{{1, 2}, {2, 4}}, 1},
		{"zero", [][]float64{{0, 0}, {0, 0}}, 0},
		{"tall", [][]float64{{1, 0}, {0, 1}, {1, 1}}, 2},
		{"wide", [][]float64{{1, 2, 3}}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m, _ := FromRows(tc.rows)
			if got := m.Rank(1e-9); got != tc.want {
				t.Fatalf("Rank = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestVectorHelpers(t *testing.T) {
	s, err := SubVec([]float64{3, 4}, []float64{1, 1})
	if err != nil || s[0] != 2 || s[1] != 3 {
		t.Fatalf("SubVec = %v, %v", s, err)
	}
	a, err := AddVec([]float64{3, 4}, []float64{1, 1})
	if err != nil || a[0] != 4 || a[1] != 5 {
		t.Fatalf("AddVec = %v, %v", a, err)
	}
	if _, err := SubVec([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatalf("length mismatch accepted")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatalf("Norm2 wrong")
	}
}

// Property: solving A·x = b then multiplying back recovers b, for random
// well-conditioned systems.
func TestSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := a.SolveLU(b)
		if err != nil {
			return false
		}
		back, err := a.MulVec(x)
		if err != nil {
			return false
		}
		diff, _ := SubVec(back, b)
		return Norm2(diff) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatalf("round-trip property failed: %v", err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ on random shapes.
func TestTransposeProductProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a := NewDense(m, k)
		b := NewDense(k, n)
		for i := 0; i < m*k; i++ {
			a.data[i] = r.NormFloat64()
		}
		for i := 0; i < k*n; i++ {
			b.data[i] = r.NormFloat64()
		}
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		left := ab.Transpose()
		right, err := b.Transpose().Mul(a.Transpose())
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if !almostEqual(left.At(i, j), right.At(i, j), 1e-10) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatalf("transpose-product property failed: %v", err)
	}
}

func TestScaleRows(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := m.ScaleRows([]float64{2, 10}); err != nil {
		t.Fatalf("ScaleRows: %v", err)
	}
	if m.At(0, 1) != 4 || m.At(1, 0) != 30 {
		t.Fatalf("ScaleRows wrong: %v %v", m.At(0, 1), m.At(1, 0))
	}
	if _, err := m.ScaleRows([]float64{1}); err == nil {
		t.Fatalf("length mismatch accepted")
	}
}

func TestNullSpace(t *testing.T) {
	// Rank-1 2x3 matrix: null space dimension 2.
	m, _ := FromRows([][]float64{{1, 2, 3}, {2, 4, 6}})
	basis := m.NullSpace(1e-9)
	if len(basis) != 2 {
		t.Fatalf("null space dim = %d, want 2", len(basis))
	}
	for _, v := range basis {
		out, err := m.MulVec(v)
		if err != nil {
			t.Fatalf("MulVec: %v", err)
		}
		if Norm2(out) > 1e-9 {
			t.Fatalf("basis vector %v not in null space (residual %v)", v, Norm2(out))
		}
	}
	// Full-rank square: empty null space.
	id, _ := FromRows([][]float64{{1, 0}, {0, 1}})
	if len(id.NullSpace(1e-9)) != 0 {
		t.Fatalf("identity has nontrivial null space")
	}
	// Zero matrix: full-dimensional null space.
	z := NewDense(2, 3)
	if len(z.NullSpace(1e-9)) != 3 {
		t.Fatalf("zero matrix null space wrong")
	}
}

func TestNullSpaceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 60; trial++ {
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(6)
		m := NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, float64(rng.Intn(7)-3))
			}
		}
		basis := m.NullSpace(1e-9)
		if len(basis) != cols-m.Rank(1e-9) {
			t.Fatalf("trial %d: dim %d, want %d", trial, len(basis), cols-m.Rank(1e-9))
		}
		for _, v := range basis {
			out, err := m.MulVec(v)
			if err != nil {
				t.Fatalf("MulVec: %v", err)
			}
			if Norm2(out) > 1e-8 {
				t.Fatalf("trial %d: basis vector not annihilated", trial)
			}
		}
	}
}
