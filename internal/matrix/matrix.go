// Package matrix provides the dense linear algebra needed by the state
// estimation substrate: matrix products, LU factorization with partial
// pivoting, linear solves, and numerical rank. It is deliberately small and
// dependency-free; the problem sizes in this repository (up to ~1100×300
// Jacobians for the 300-bus system) are comfortably dense.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("matrix: singular system")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense creates a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equally long.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: row %d has %d entries, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Transpose returns mᵀ.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns m·other.
func (m *Dense) Mul(other *Dense) (*Dense, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("matrix: size mismatch %dx%d · %dx%d", m.rows, m.cols, other.rows, other.cols)
	}
	out := NewDense(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			rowOut := out.data[i*other.cols : (i+1)*other.cols]
			rowOther := other.data[k*other.cols : (k+1)*other.cols]
			for j := range rowOther {
				rowOut[j] += a * rowOther[j]
			}
		}
	}
	return out, nil
}

// MulVec returns m·v.
func (m *Dense) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("matrix: size mismatch %dx%d · vec[%d]", m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		sum := 0.0
		for j, a := range row {
			sum += a * v[j]
		}
		out[i] = sum
	}
	return out, nil
}

// ScaleRows multiplies each row i by w[i] (in place) and returns m.
func (m *Dense) ScaleRows(w []float64) (*Dense, error) {
	if len(w) != m.rows {
		return nil, fmt.Errorf("matrix: weight length %d, want %d", len(w), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j := range row {
			row[j] *= w[i]
		}
	}
	return m, nil
}

// SolveLU solves the square system m·x = b via LU with partial pivoting.
// m is not modified.
func (m *Dense) SolveLU(b []float64) ([]float64, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: SolveLU on non-square %dx%d", m.rows, m.cols)
	}
	if len(b) != m.rows {
		return nil, fmt.Errorf("matrix: rhs length %d, want %d", len(b), m.rows)
	}
	n := m.rows
	lu := m.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu.At(r, col)); a > maxAbs {
				maxAbs, pivot = a, r
			}
		}
		if maxAbs < 1e-13 {
			return nil, ErrSingular
		}
		if pivot != col {
			lu.swapRows(pivot, col)
			perm[pivot], perm[col] = perm[col], perm[pivot]
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			if f == 0 {
				continue
			}
			lu.Set(r, col, f)
			for c := col + 1; c < n; c++ {
				lu.Set(r, c, lu.At(r, c)-f*lu.At(col, c))
			}
		}
	}
	// Forward substitution with permuted rhs.
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[perm[i]]
		for j := 0; j < i; j++ {
			sum -= lu.At(i, j) * x[j]
		}
		x[i] = sum
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= lu.At(i, j) * x[j]
		}
		x[i] = sum / lu.At(i, i)
	}
	return x, nil
}

func (m *Dense) swapRows(a, b int) {
	ra := m.data[a*m.cols : (a+1)*m.cols]
	rb := m.data[b*m.cols : (b+1)*m.cols]
	for j := range ra {
		ra[j], rb[j] = rb[j], ra[j]
	}
}

// Rank returns the numerical rank of m using Gaussian elimination with full
// row pivoting and the given tolerance on pivot magnitude.
func (m *Dense) Rank(tol float64) int {
	work := m.Clone()
	rank := 0
	row := 0
	for col := 0; col < work.cols && row < work.rows; col++ {
		pivot := -1
		maxAbs := tol
		for r := row; r < work.rows; r++ {
			if a := math.Abs(work.At(r, col)); a > maxAbs {
				maxAbs, pivot = a, r
			}
		}
		if pivot < 0 {
			continue
		}
		work.swapRows(pivot, row)
		inv := 1 / work.At(row, col)
		for r := row + 1; r < work.rows; r++ {
			f := work.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < work.cols; c++ {
				work.Set(r, c, work.At(r, c)-f*work.At(row, c))
			}
		}
		rank++
		row++
	}
	return rank
}

// Norm2 returns the Euclidean norm of a vector.
func Norm2(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// SubVec returns a − b.
func SubVec(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("matrix: vector length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}

// AddVec returns a + b.
func AddVec(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("matrix: vector length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}
