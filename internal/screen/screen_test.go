package screen_test

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"segrid/internal/core"
	"segrid/internal/faultinject"
	"segrid/internal/grid"
	"segrid/internal/screen"
)

func ieee14(t *testing.T) *grid.System {
	t.Helper()
	sys, err := grid.Case("ieee14")
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEmptyGoalAccepts(t *testing.T) {
	sc := core.NewScenario(ieee14(t))
	res, err := core.ScreenScenario(context.Background(), sc, screen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != screen.FeasibleIntegral {
		t.Fatalf("empty goal: verdict %v, want feasible", res.Verdict)
	}
	if res.Attack == nil || len(res.Attack.AlteredMeasurements) != 0 {
		t.Fatalf("empty goal should carry the zero attack, got %+v", res.Attack)
	}
}

func TestUnrestrictedTargetAccepts(t *testing.T) {
	sc := core.NewScenario(ieee14(t))
	sc.TargetStates = []int{5}
	res, err := core.ScreenScenario(context.Background(), sc, screen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != screen.FeasibleIntegral {
		t.Fatalf("unrestricted target: verdict %v (%s), want feasible", res.Verdict, res.Why)
	}
	atk := res.Attack
	if atk == nil || len(atk.AlteredMeasurements) == 0 {
		t.Fatalf("witness should alter measurements, got %+v", atk)
	}
	if atk.StateChanges[5] == nil || atk.StateChanges[5].Sign() == 0 {
		t.Fatalf("witness should change state 5, got %v", atk.StateChanges)
	}
	// The replayed witness must agree with the full model's verdict.
	full, err := core.Verify(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Feasible {
		t.Fatal("full model disagrees with screen accept")
	}
}

func TestAllSecuredRejectsWithCertificates(t *testing.T) {
	sc := core.NewScenario(ieee14(t))
	sc.TargetStates = []int{5}
	for id := 1; id <= sc.System().NumMeasurements(); id++ {
		sc.Meas.Secured[id] = true
	}
	res, err := core.ScreenScenario(context.Background(), sc, screen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != screen.Infeasible {
		t.Fatalf("all-secured grid: verdict %v (%s), want infeasible", res.Verdict, res.Why)
	}
	if len(res.Certificates) != 2 {
		t.Fatalf("want one certificate per refuted sign, got %d", len(res.Certificates))
	}
	for _, c := range res.Certificates {
		if err := c.Verify(); err != nil {
			t.Fatalf("certificate does not verify: %v\n%s", err, c)
		}
		if len(c.Bounds) < 2 {
			t.Fatalf("certificate suspiciously small: %s", c)
		}
	}
	full, err := core.Verify(sc)
	if err != nil {
		t.Fatal(err)
	}
	if full.Feasible || full.Inconclusive {
		t.Fatal("full model disagrees with screen reject")
	}
}

// TestCertificateTamper checks that Verify is an actual audit: corrupting
// any part of a valid certificate must be detected.
func TestCertificateTamper(t *testing.T) {
	sc := core.NewScenario(ieee14(t))
	sc.TargetStates = []int{5}
	for id := 1; id <= sc.System().NumMeasurements(); id++ {
		sc.Meas.Secured[id] = true
	}
	res, err := core.ScreenScenario(context.Background(), sc, screen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != screen.Infeasible || len(res.Certificates) == 0 {
		t.Fatalf("setup: expected reject with certificates, got %v", res.Verdict)
	}
	orig := res.Certificates[0]

	clone := func() *screen.Certificate {
		c := &screen.Certificate{Desc: orig.Desc}
		for _, bd := range orig.Bounds {
			nb := screen.Bound{Desc: bd.Desc, Lower: bd.Lower, Strict: bd.Strict, Value: new(big.Rat).Set(bd.Value)}
			for _, tm := range bd.Terms {
				nb.Terms = append(nb.Terms, screen.Term{Var: tm.Var, Coeff: new(big.Rat).Set(tm.Coeff)})
			}
			c.Bounds = append(c.Bounds, nb)
		}
		for _, l := range orig.Coeffs {
			c.Coeffs = append(c.Coeffs, new(big.Rat).Set(l))
		}
		return c
	}

	if err := clone().Verify(); err != nil {
		t.Fatalf("pristine clone should verify: %v", err)
	}

	c := clone()
	c.Coeffs[0].Add(c.Coeffs[0], big.NewRat(1, 3))
	if c.Verify() == nil {
		t.Fatal("tampered multiplier accepted")
	}

	c = clone()
	for i := range c.Bounds {
		if len(c.Bounds[i].Terms) > 0 {
			c.Bounds[i].Terms[0].Coeff.Add(c.Bounds[i].Terms[0].Coeff, big.NewRat(7, 2))
			break
		}
	}
	if c.Verify() == nil {
		t.Fatal("tampered bound row accepted")
	}

	c = clone()
	c.Bounds = c.Bounds[:len(c.Bounds)-1]
	c.Coeffs = c.Coeffs[:len(c.Coeffs)-1]
	if c.Verify() == nil {
		t.Fatal("dropped bound accepted")
	}

	c = clone()
	c.Coeffs[0].Neg(c.Coeffs[0])
	if c.Verify() == nil {
		t.Fatal("negative multiplier accepted")
	}
}

func TestPivotBudgetInconclusive(t *testing.T) {
	sc := core.NewScenario(ieee14(t))
	sc.TargetStates = []int{5}
	sc.MaxAlteredMeasurements = 3
	res, err := core.ScreenScenario(context.Background(), sc, screen.Options{MaxPivots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != screen.Inconclusive {
		t.Fatalf("one-pivot budget: verdict %v, want inconclusive", res.Verdict)
	}
	if res.Why == "" {
		t.Fatal("inconclusive without a reason")
	}
}

// TestMidScreenCancellationInconclusive proves the degradation contract
// under fault injection: a cancellation firing at any point inside the
// screen must yield Inconclusive — never a definitive verdict, never an
// error from Check.
func TestMidScreenCancellationInconclusive(t *testing.T) {
	sc := core.NewScenario(ieee14(t))
	sc.TargetStates = []int{5}
	sc.MaxAlteredMeasurements = 4
	sc.MaxCompromisedBuses = 3
	for _, afterPolls := range []int64{0, 1, 3, 10, 40} {
		inj := faultinject.NewInjector(faultinject.Decision{Kind: faultinject.Cancel, AfterPolls: afterPolls})
		res, err := core.ScreenScenario(context.Background(), sc, screen.Options{
			Stop: func() error { return inj.Interrupt("screen") },
		})
		if err != nil {
			t.Fatalf("afterPolls=%d: %v", afterPolls, err)
		}
		if inj.Fired() && res.Verdict != screen.Inconclusive {
			t.Fatalf("afterPolls=%d: cancellation fired but verdict is %v", afterPolls, res.Verdict)
		}
		if !inj.Fired() && res.Verdict != screen.FeasibleIntegral {
			// Without the fault this instance is a definitive accept; if the
			// injector never fired the screen must still answer it.
			t.Fatalf("afterPolls=%d: injector idle but verdict is %v (%s)", afterPolls, res.Verdict, res.Why)
		}
	}
}

// TestFaultScheduleSweep drives a seeded mix of clean and cancelled screens
// and asserts every cancelled one is Inconclusive and every clean verdict
// matches the no-fault baseline.
func TestFaultScheduleSweep(t *testing.T) {
	sys := ieee14(t)
	sched := faultinject.New(97, faultinject.Config{PCancel: 0.5, MaxAfterPolls: 64})
	rng := rand.New(rand.NewSource(97))
	ctx := context.Background()
	for n := 0; n < 40; n++ {
		sc := core.NewScenario(sys)
		sc.TargetStates = []int{2 + rng.Intn(sys.Buses-1)}
		if rng.Intn(2) == 0 {
			sc.MaxAlteredMeasurements = 1 + rng.Intn(6)
		}
		// A modest pivot cap keeps the budget-coupled instances cheap; the
		// cap applies identically to both runs, so verdicts stay comparable.
		base, err := core.ScreenScenario(ctx, sc, screen.Options{MaxPivots: 200})
		if err != nil {
			t.Fatal(err)
		}
		inj := sched.Injector()
		res, err := core.ScreenScenario(ctx, sc, screen.Options{
			MaxPivots: 200,
			Stop:      func() error { return inj.Interrupt("screen") },
		})
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case inj.Fired() && res.Verdict != screen.Inconclusive:
			t.Fatalf("round %d: fault fired, verdict %v", n, res.Verdict)
		case !inj.Fired() && res.Verdict != base.Verdict:
			t.Fatalf("round %d: clean run verdict %v, baseline %v", n, res.Verdict, base.Verdict)
		}
	}
}

func TestMalformedProblemErrors(t *testing.T) {
	sys := ieee14(t)
	if _, err := screen.Check(context.Background(), &screen.Problem{Sys: sys, RefBus: 99}, screen.Options{}); err == nil {
		t.Fatal("bad reference bus accepted")
	}
	if _, err := screen.Check(context.Background(), &screen.Problem{Sys: sys, RefBus: 1}, screen.Options{}); err == nil {
		t.Fatal("missing measurement tables accepted")
	}
}
