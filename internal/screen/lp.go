package screen

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"segrid/internal/grid"
	"segrid/internal/lpbuild"
	"segrid/internal/lra"
	"segrid/internal/numeric"
)

// builder owns one screening run: the exact simplex holding the
// relaxation, the certificate bookkeeping that lets any conflict be
// exported as a self-contained Farkas proof, and the variable tables the
// witness replay reads back.
type builder struct {
	p *Problem
	s *lra.Simplex

	// bounds records every asserted bound, indexed by its lra.Tag, as an
	// oriented certificate row over primitive variables. Every bound the
	// screen asserts is tagged — an untagged (NoTag) participant would
	// make the solver's Farkas coefficients unreconstructible.
	bounds []Bound
	// expand maps each solver variable to its expansion over primitive
	// variables (angles, free line flows, cz, cb), so certificate rows
	// never mention solver-internal slack rows.
	expand map[int]map[int]*big.Rat
	names  map[int]string

	theta []int // 1-based bus → Δθ variable
	fvar  []int // 1-based line → free ΔPL variable (attackable lines only)

	lineVar []int // memo: 1-based line → flow-delta variable (−1 unset, −2 identically zero)
	busVar  []int // memo: 1-based bus → injection-delta variable (−1 unset, −2 identically zero)

	// effAtt marks lines whose status the relaxation treats as attackable:
	// the scenario allows the attack for the line's service state, and
	// strict knowledge does not rule the line out.
	effAtt []bool

	czIDs []int       // measurement IDs with alteration-indicator variables
	czVar map[int]int // measurement ID → cz variable
	cbVar map[int]int // bus → cb variable

	maxPivots int64
	probes    int
	buildErr  string
}

// sparsifyPivotCap bounds the extra pivots the accept path spends trying
// to sparsify a witness that over-spent a relaxed budget; past it the
// instance is handed to the SMT tier instead.
const sparsifyPivotCap = 256

// build constructs the LP relaxation. It never fails on well-formed
// problems; internal construction errors are deferred into buildErr and
// surface as an Inconclusive verdict.
func build(p *Problem, ctx context.Context, opts Options) (*builder, error) {
	b := &builder{
		p:       p,
		s:       lra.NewSimplex(),
		expand:  make(map[int]map[int]*big.Rat),
		names:   make(map[int]string),
		theta:   make([]int, p.Sys.Buses+1),
		fvar:    make([]int, p.Sys.NumLines()+1),
		lineVar: make([]int, p.Sys.NumLines()+1),
		busVar:  make([]int, p.Sys.Buses+1),
		effAtt:  make([]bool, p.Sys.NumLines()+1),
		czVar:   make(map[int]int),
		cbVar:   make(map[int]int),
	}
	if opts.MaxPivots > 0 {
		b.maxPivots = opts.MaxPivots
		b.s.SetMaxPivots(opts.MaxPivots)
	}
	stop := opts.Stop
	b.s.SetStop(func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if stop != nil {
			return stop()
		}
		return nil
	})
	b.construct()
	return b, nil
}

func (b *builder) fail(why string) {
	if b.buildErr == "" {
		b.buildErr = why
	}
}

// newVar introduces a named primitive variable.
func (b *builder) newVar(name string) int {
	v := b.s.NewVar()
	b.names[v] = name
	b.expand[v] = map[int]*big.Rat{v: big.NewRat(1, 1)}
	return v
}

// slack introduces a defined row and records its expansion over primitive
// variables for certificate export.
func (b *builder) slack(terms []lra.Term) (int, bool) {
	v, err := b.s.DefineSlack(terms)
	if err != nil {
		b.fail("screen: internal slack definition failed: " + err.Error())
		return 0, false
	}
	exp := make(map[int]*big.Rat)
	for _, t := range terms {
		for pv, c := range b.expand[t.Var] {
			acc, ok := exp[pv]
			if !ok {
				acc = new(big.Rat)
				exp[pv] = acc
			}
			acc.Add(acc, new(big.Rat).Mul(t.Coeff, c))
		}
	}
	b.expand[v] = exp
	return v, true
}

// certTerms renders a variable's primitive expansion as certificate terms
// in deterministic (ascending variable) order.
func (b *builder) certTerms(v int) []Term {
	exp := b.expand[v]
	vars := make([]int, 0, len(exp))
	for pv := range exp {
		if exp[pv].Sign() != 0 {
			vars = append(vars, pv)
		}
	}
	sort.Ints(vars)
	out := make([]Term, len(vars))
	for i, pv := range vars {
		out[i] = Term{Var: b.names[pv], Coeff: new(big.Rat).Set(exp[pv])}
	}
	return out
}

// addBound records an oriented certificate row for a bound and asserts it,
// returning the solver's conflict explanation if the assertion itself
// closes an empty interval.
func (b *builder) addBound(v int, lower bool, d numeric.Delta, desc string) []lra.Tag {
	tag := lra.Tag(len(b.bounds))
	b.bounds = append(b.bounds, Bound{
		Desc:   desc,
		Terms:  b.certTerms(v),
		Lower:  lower,
		Value:  new(big.Rat).Set(d.Rat()),
		Strict: d.Inf().Sign() != 0,
	})
	if lower {
		return b.s.AssertLower(v, d, tag)
	}
	return b.s.AssertUpper(v, d, tag)
}

// fixZero asserts v = 0 with both bounds tagged. Base-relaxation bounds
// all admit the zero point, so a conflict here is an internal error.
func (b *builder) fixZero(v int, desc string) {
	if c := b.addBound(v, true, numeric.Delta{}, desc); c != nil {
		b.fail("screen: internal conflict while building relaxation: " + desc)
		return
	}
	if c := b.addBound(v, false, numeric.Delta{}, desc); c != nil {
		b.fail("screen: internal conflict while building relaxation: " + desc)
	}
}

// certify exports the solver's most recent conflict explanation as a
// self-contained certificate, or nil if the Farkas coefficients are
// unavailable (which the callers treat as Inconclusive, never as a
// definitive verdict).
func (b *builder) certify(desc string, tags []lra.Tag) *Certificate {
	lams := b.s.LastFarkas()
	if lams == nil || len(lams) != len(tags) {
		return nil
	}
	c := &Certificate{Desc: desc}
	for i, t := range tags {
		if t < 0 || int(t) >= len(b.bounds) {
			return nil
		}
		c.Bounds = append(c.Bounds, b.bounds[t])
		// Copy immediately: the solver reuses its Farkas buffer on the
		// next conflict.
		c.Coeffs = append(c.Coeffs, new(big.Rat).Set(lams[i].Rat()))
	}
	return c
}

// alterable reports whether the attacker may change measurement id: it is
// taken, accessible, unsecured, and not the flow of a line whose
// admittance the attacker does not know (Eq. 17's knowledge limit).
func (b *builder) alterable(id int) bool {
	p := b.p
	if !p.Taken[id] || !p.Accessible[id] || p.Secured[id] {
		return false
	}
	kind, ref, err := p.Sys.DecodeMeas(id)
	if err != nil {
		return false
	}
	if (kind == grid.MeasForwardFlow || kind == grid.MeasBackwardFlow) && !p.Known[ref] {
		return false
	}
	return true
}

// pinReason names why a taken measurement's delta is forced to zero.
func (b *builder) pinReason(id int) string {
	p := b.p
	switch {
	case p.Secured[id]:
		return "secured"
	case !p.Accessible[id]:
		return "inaccessible"
	default:
		return "unknown-admittance"
	}
}

const (
	memoUnset = -1
	memoZero  = -2
)

// lineDeltaVar returns a variable carrying line i's measured-flow delta
// ΔPL: the free variable for attackable lines, the state-implied slack
// y·(Δθ_from − Δθ_to) for in-service lines, and nothing for out-of-service
// lines (identically zero).
func (b *builder) lineDeltaVar(i int) (int, bool) {
	if b.lineVar[i] != memoUnset {
		return b.lineVar[i], b.lineVar[i] != memoZero
	}
	switch {
	case b.effAtt[i]:
		b.lineVar[i] = b.fvar[i]
	case b.p.InService[i]:
		ln := b.p.Sys.Line(i)
		v, ok := b.slack(lpbuild.LineFlowTerms(b.theta, ln, lpbuild.AdmittanceRat(ln.Admittance)))
		if !ok {
			return 0, false
		}
		b.lineVar[i] = v
	default:
		b.lineVar[i] = memoZero
	}
	return b.lineVar[i], b.lineVar[i] != memoZero
}

// busDeltaVar returns a variable carrying bus j's injection-measurement
// delta Σ inflow deltas − Σ outflow deltas, or false if it is identically
// zero (isolated or fully out-of-service neighborhood).
func (b *builder) busDeltaVar(j int) (int, bool) {
	if b.busVar[j] != memoUnset {
		return b.busVar[j], b.busVar[j] != memoZero
	}
	var terms []lra.Term
	for _, id := range b.p.Sys.InLines(j) {
		if v, ok := b.lineDeltaVar(id); ok {
			terms = append(terms, lra.Term{Var: v, Coeff: big.NewRat(1, 1)})
		}
	}
	for _, id := range b.p.Sys.OutLines(j) {
		if v, ok := b.lineDeltaVar(id); ok {
			terms = append(terms, lra.Term{Var: v, Coeff: big.NewRat(-1, 1)})
		}
	}
	if len(terms) == 0 {
		b.busVar[j] = memoZero
		return 0, false
	}
	v, ok := b.slack(terms)
	if !ok {
		return 0, false
	}
	b.busVar[j] = v
	return v, true
}

// measDeltaVar returns a variable carrying measurement id's delta, or
// false if the delta is identically zero in the relaxation.
func (b *builder) measDeltaVar(id int) (int, bool) {
	kind, ref, err := b.p.Sys.DecodeMeas(id)
	if err != nil {
		b.fail("screen: " + err.Error())
		return 0, false
	}
	switch kind {
	case grid.MeasForwardFlow, grid.MeasBackwardFlow:
		// The backward flow shares the forward expression up to sign;
		// every constraint the relaxation places on it (zero-forcing,
		// |delta| domination) is symmetric, so the same variable serves.
		return b.lineDeltaVar(ref)
	default:
		return b.busDeltaVar(ref)
	}
}

// construct builds the base relaxation: every constraint here is implied
// for (a scaled image of) every concrete attack, so the polytope is a
// relaxation of the full model and its infeasibilities transfer.
func (b *builder) construct() {
	p := b.p
	sys := p.Sys

	for i := range b.lineVar {
		b.lineVar[i] = memoUnset
	}
	for j := range b.busVar {
		b.busVar[j] = memoUnset
	}

	// Effective attackability: the scenario must allow the attack for the
	// line's actual service state, and under strict knowledge an unknown
	// line cannot be attacked at all.
	for i := 1; i <= sys.NumLines(); i++ {
		ok := (p.CanExclude[i] && p.InService[i]) || (p.CanInclude[i] && !p.InService[i])
		if p.StrictKnowledge && !p.Known[i] {
			ok = false
		}
		b.effAtt[i] = ok
	}

	// State-delta variables; the reference angle is pinned.
	for j := 1; j <= sys.Buses; j++ {
		b.theta[j] = b.newVar(fmt.Sprintf("dtheta_%d", j))
	}
	b.fixZero(b.theta[p.RefBus], fmt.Sprintf("reference bus %d angle delta pinned to zero", p.RefBus))

	// Attackable lines carry their measured flow delta as a free variable:
	// a status attack decouples the measured flow from the state-implied
	// y·(Δθf − Δθt).
	for i := 1; i <= sys.NumLines(); i++ {
		if b.effAtt[i] {
			b.fvar[i] = b.newVar(fmt.Sprintf("dpl_%d", i))
		}
	}

	// Strict knowledge: unknown lines keep their endpoint states equal
	// (the attacker cannot reason about them at all, Eq. 18 tightened).
	if p.StrictKnowledge {
		for i := 1; i <= sys.NumLines(); i++ {
			if p.Known[i] {
				continue
			}
			ln := sys.Line(i)
			if ln.From == ln.To {
				continue
			}
			v, ok := b.slack([]lra.Term{
				{Var: b.theta[ln.From], Coeff: big.NewRat(1, 1)},
				{Var: b.theta[ln.To], Coeff: big.NewRat(-1, 1)},
			})
			if !ok {
				return
			}
			b.fixZero(v, fmt.Sprintf("strict knowledge: unknown line %d state difference zero", i))
		}
	}

	// Taken measurements the attacker cannot alter keep their value: the
	// delta is forced to zero exactly.
	for id := 1; id <= sys.NumMeasurements(); id++ {
		if !p.Taken[id] || b.alterable(id) {
			continue
		}
		if v, ok := b.measDeltaVar(id); ok {
			b.fixZero(v, fmt.Sprintf("%s measurement %d delta zero", b.pinReason(id), id))
		}
	}

	// Implied topology constraint: an excludable in-service line whose
	// flow measurement is taken but unalterable cannot actually be
	// excluded (exclusion forces a nonzero measured-flow change), so its
	// measured flow — already pinned to zero above — must also equal the
	// state-implied flow: y·(Δθf − Δθt) = 0.
	for i := 1; i <= sys.NumLines(); i++ {
		if !b.effAtt[i] || !p.CanExclude[i] || !p.InService[i] {
			continue
		}
		fwd, bwd := sys.ForwardFlowMeas(i), sys.BackwardFlowMeas(i)
		pinned := (p.Taken[fwd] && !b.alterable(fwd)) || (p.Taken[bwd] && !b.alterable(bwd))
		if !pinned {
			continue
		}
		ln := sys.Line(i)
		v, ok := b.slack(lpbuild.LineFlowTerms(b.theta, ln, lpbuild.AdmittanceRat(ln.Admittance)))
		if !ok {
			return
		}
		b.fixZero(v, fmt.Sprintf("line %d unexcludable with pinned flow measurement: state-implied flow zero", i))
	}

	// Goal-side zero-forcing is only sound without MinChange: under a
	// significance threshold ε, "state not attacked" means |Δθ| < ε, not
	// Δθ = 0, so these fixes would cut off real attacks.
	if p.MinChangeEps == nil {
		if p.OnlyTargets {
			target := make(map[int]bool, len(p.Targets))
			for _, t := range p.Targets {
				target[t] = true
			}
			for j := 1; j <= sys.Buses; j++ {
				if j == p.RefBus || target[j] {
					continue
				}
				b.fixZero(b.theta[j], fmt.Sprintf("only-targets: non-target state %d unchanged", j))
			}
		}
		for _, j := range p.Untouched {
			if j == p.RefBus {
				continue
			}
			b.fixZero(b.theta[j], fmt.Sprintf("untouched state %d unchanged", j))
		}
	}

	// Cardinality budgets, relaxed to continuous sums. After scaling an
	// attack down to ∥delta∥∞ ≤ 1 (the constraint system minus the goal is
	// a cone, so this stays feasible), cz := |delta| ∈ [0,1] satisfies the
	// couplings and Σ cz ≤ Σ 1{delta≠0} ≤ MaxAltered; likewise cb := max
	// cz per bus. Only built when a budget is active — the variables exist
	// purely to make the sums meaningful.
	if p.MaxAltered > 0 || p.MaxBuses > 0 {
		b.buildCardinality()
	}
}

// buildCardinality adds the continuous alteration/compromise indicators
// and their budget rows.
func (b *builder) buildCardinality() {
	p := b.p
	sys := p.Sys
	one := numeric.DeltaFromRat(big.NewRat(1, 1))
	for id := 1; id <= sys.NumMeasurements(); id++ {
		if !b.alterable(id) {
			continue
		}
		dv, ok := b.measDeltaVar(id)
		if !ok {
			continue // delta identically zero: never altered, no indicator needed
		}
		cz := b.newVar(fmt.Sprintf("cz_%d", id))
		b.czIDs = append(b.czIDs, id)
		b.czVar[id] = cz
		b.addBound(cz, true, numeric.Delta{}, fmt.Sprintf("alteration indicator cz_%d ≥ 0", id))
		b.addBound(cz, false, one, fmt.Sprintf("alteration indicator cz_%d ≤ 1", id))
		// cz dominates |delta|: delta − cz ≤ 0 and delta + cz ≥ 0.
		up, ok := b.slack([]lra.Term{{Var: dv, Coeff: big.NewRat(1, 1)}, {Var: cz, Coeff: big.NewRat(-1, 1)}})
		if !ok {
			return
		}
		b.addBound(up, false, numeric.Delta{}, fmt.Sprintf("cz_%d dominates measurement %d delta (upper)", id, id))
		lo, ok := b.slack([]lra.Term{{Var: dv, Coeff: big.NewRat(1, 1)}, {Var: cz, Coeff: big.NewRat(1, 1)}})
		if !ok {
			return
		}
		b.addBound(lo, true, numeric.Delta{}, fmt.Sprintf("cz_%d dominates measurement %d delta (lower)", id, id))
	}
	if len(b.czIDs) == 0 {
		return
	}
	if p.MaxAltered > 0 {
		terms := make([]lra.Term, len(b.czIDs))
		for i, id := range b.czIDs {
			terms[i] = lra.Term{Var: b.czVar[id], Coeff: big.NewRat(1, 1)}
		}
		sum, ok := b.slack(terms)
		if !ok {
			return
		}
		b.addBound(sum, false, numeric.DeltaFromRat(big.NewRat(int64(p.MaxAltered), 1)),
			fmt.Sprintf("resource bound: at most %d altered measurements (relaxed)", p.MaxAltered))
	}
	if p.MaxBuses > 0 {
		byBus := make(map[int][]int)
		for _, id := range b.czIDs {
			j, err := sys.HomeBus(id)
			if err != nil {
				b.fail("screen: " + err.Error())
				return
			}
			byBus[j] = append(byBus[j], id)
		}
		buses := make([]int, 0, len(byBus))
		for j := range byBus {
			buses = append(buses, j)
		}
		sort.Ints(buses)
		cbTerms := make([]lra.Term, 0, len(buses))
		for _, j := range buses {
			cb := b.newVar(fmt.Sprintf("cb_%d", j))
			b.cbVar[j] = cb
			b.addBound(cb, true, numeric.Delta{}, fmt.Sprintf("compromise indicator cb_%d ≥ 0", j))
			b.addBound(cb, false, one, fmt.Sprintf("compromise indicator cb_%d ≤ 1", j))
			for _, id := range byBus[j] {
				d, ok := b.slack([]lra.Term{{Var: cb, Coeff: big.NewRat(1, 1)}, {Var: b.czVar[id], Coeff: big.NewRat(-1, 1)}})
				if !ok {
					return
				}
				b.addBound(d, true, numeric.Delta{}, fmt.Sprintf("cb_%d dominates cz_%d", j, id))
			}
			cbTerms = append(cbTerms, lra.Term{Var: cb, Coeff: big.NewRat(1, 1)})
		}
		sum, ok := b.slack(cbTerms)
		if !ok {
			return
		}
		b.addBound(sum, false, numeric.DeltaFromRat(big.NewRat(int64(p.MaxBuses), 1)),
			fmt.Sprintf("resource bound: at most %d compromised buses (relaxed)", p.MaxBuses))
	}
}

// pick is one chosen strict sign for a goal conjunct, carried from the
// probing phase into the combined accept attempt.
type pick struct {
	v        int
	positive bool
	desc     string
}

func strictSign(positive bool) (numeric.Delta, bool) {
	if positive {
		return numeric.NewDelta(new(big.Rat), big.NewRat(1, 1)), true // > 0 as lower bound 0 + δ
	}
	return numeric.NewDelta(new(big.Rat), big.NewRat(-1, 1)), false // < 0 as upper bound 0 − δ
}

// probe checks whether the relaxation admits expr(v) with the given
// strict sign. It returns (feasible, certificate-if-refuted, why) —
// a non-empty why means the probe could not be decided (budget,
// cancellation, or an unreconstructible Farkas combination).
func (b *builder) probe(v int, positive bool, desc string) (bool, *Certificate, string) {
	b.probes++
	op := ">"
	if !positive {
		op = "<"
	}
	pdesc := fmt.Sprintf("probe: %s %s 0", desc, op)
	d, lower := strictSign(positive)
	b.s.Push()
	defer b.s.Pop(1)
	if conflict := b.addBound(v, lower, d, pdesc); conflict != nil {
		cert := b.certify(pdesc, conflict)
		if cert == nil {
			return false, nil, "screen: incomplete Farkas explanation for " + pdesc
		}
		return false, cert, ""
	}
	tags, err := b.s.CheckBudget()
	if err != nil {
		return false, nil, "screen: " + err.Error()
	}
	if tags == nil {
		return true, nil, ""
	}
	cert := b.certify(pdesc, tags)
	if cert == nil {
		return false, nil, "screen: incomplete Farkas explanation for " + pdesc
	}
	return false, cert, ""
}

// probeSigns probes both strict signs of a goal expression. sign is +1 or
// −1 for the first feasible direction, or 0 with both refutation
// certificates when the relaxation forces the expression to zero.
func (b *builder) probeSigns(v int, desc string) (int, []*Certificate, string) {
	posOK, posCert, why := b.probe(v, true, desc)
	if why != "" {
		return 0, nil, why
	}
	if posOK {
		return 1, nil, ""
	}
	negOK, negCert, why := b.probe(v, false, desc)
	if why != "" {
		return 0, nil, why
	}
	if negOK {
		return -1, nil, ""
	}
	return 0, []*Certificate{posCert, negCert}, ""
}

// trivialPairCertificates hand-builds the refutation of a distinct-pair
// goal over the same bus twice: Δθ_j − Δθ_j > 0 reduces to the termless
// strict bound 0 > 0, which is its own Farkas contradiction.
func trivialPairCertificates(j int) []*Certificate {
	mk := func(op string, lower bool) *Certificate {
		return &Certificate{
			Desc: fmt.Sprintf("probe: dtheta_%d − dtheta_%d %s 0", j, j, op),
			Bounds: []Bound{{
				Desc:   fmt.Sprintf("probe: dtheta_%d − dtheta_%d %s 0", j, j, op),
				Lower:  lower,
				Value:  new(big.Rat),
				Strict: true,
			}},
			Coeffs: []*big.Rat{big.NewRat(1, 1)},
		}
	}
	return []*Certificate{mk(">", true), mk("<", false)}
}

func inconclusive(why string) *Result {
	return &Result{Verdict: Inconclusive, Why: why}
}

// run executes the screening protocol: sign probes per goal conjunct
// (fast-reject with certificates), then a combined solution, sparsified
// and replayed exactly (fast-accept with witness). Anything undecidable
// degrades to Inconclusive.
func (b *builder) run() *Result {
	if b.buildErr != "" {
		return inconclusive(b.buildErr)
	}
	p := b.p

	if len(p.Targets) == 0 && len(p.DistinctPairs) == 0 && !p.AnyState {
		return &Result{
			Verdict: FeasibleIntegral,
			Why:     "empty goal: the all-zero attack satisfies the model",
			Attack:  &Attack{StateChanges: map[int]*big.Rat{}, TopoFlowDeltas: map[int]*big.Rat{}},
		}
	}

	var picks []pick
	seenTarget := make(map[int]bool)
	for _, t := range p.Targets {
		if seenTarget[t] {
			continue
		}
		seenTarget[t] = true
		desc := fmt.Sprintf("dtheta_%d", t)
		sign, certs, why := b.probeSigns(b.theta[t], desc)
		if why != "" {
			return inconclusive(why)
		}
		if sign == 0 {
			return &Result{
				Verdict:      Infeasible,
				Why:          fmt.Sprintf("target state %d is forced unchanged by the relaxation", t),
				Certificates: certs,
			}
		}
		picks = append(picks, pick{v: b.theta[t], positive: sign > 0, desc: desc})
	}

	for _, pr := range p.DistinctPairs {
		if pr[0] == pr[1] {
			return &Result{
				Verdict:      Infeasible,
				Why:          fmt.Sprintf("distinct-pair goal compares state %d with itself", pr[0]),
				Certificates: trivialPairCertificates(pr[0]),
			}
		}
		v, ok := b.slack([]lra.Term{
			{Var: b.theta[pr[0]], Coeff: big.NewRat(1, 1)},
			{Var: b.theta[pr[1]], Coeff: big.NewRat(-1, 1)},
		})
		if !ok {
			return inconclusive(b.buildErr)
		}
		desc := fmt.Sprintf("dtheta_%d − dtheta_%d", pr[0], pr[1])
		sign, certs, why := b.probeSigns(v, desc)
		if why != "" {
			return inconclusive(why)
		}
		if sign == 0 {
			return &Result{
				Verdict:      Infeasible,
				Why:          fmt.Sprintf("states %d and %d are forced equal by the relaxation", pr[0], pr[1]),
				Certificates: certs,
			}
		}
		picks = append(picks, pick{v: v, positive: sign > 0, desc: desc})
	}

	// AnyState: if some non-reference target is already forced nonzero the
	// disjunction is satisfied by it; otherwise scan for a witness bus and
	// reject only when every state is blocked in both signs.
	anyBus := 0
	if p.AnyState {
		for _, t := range p.Targets {
			if t != p.RefBus {
				anyBus = t
				break
			}
		}
		if anyBus == 0 {
			var certs []*Certificate
			for j := 1; j <= p.Sys.Buses; j++ {
				if j == p.RefBus {
					continue
				}
				desc := fmt.Sprintf("dtheta_%d", j)
				sign, cs, why := b.probeSigns(b.theta[j], desc)
				if why != "" {
					return inconclusive(why)
				}
				if sign == 0 {
					certs = append(certs, cs...)
					continue
				}
				anyBus = j
				picks = append(picks, pick{v: b.theta[j], positive: sign > 0, desc: desc})
				break
			}
			if anyBus == 0 {
				return &Result{
					Verdict:      Infeasible,
					Why:          "anystate goal: every state delta is forced to zero by the relaxation",
					Certificates: certs,
				}
			}
		}
	}

	// Combined accept attempt: assert every chosen sign at once.
	b.s.Push()
	defer b.s.Pop(1)
	for _, pk := range picks {
		op := ">"
		if !pk.positive {
			op = "<"
		}
		d, lower := strictSign(pk.positive)
		if conflict := b.addBound(pk.v, lower, d, fmt.Sprintf("goal sign: %s %s 0", pk.desc, op)); conflict != nil {
			return inconclusive("goal sign combination conflicts in the relaxation")
		}
	}
	tags, err := b.s.CheckBudget()
	if err != nil {
		return inconclusive("screen: " + err.Error())
	}
	if tags != nil {
		return inconclusive("goal sign combination infeasible in the relaxation")
	}

	attack, why := b.replay(b.s.Model(), anyBus)
	if attack == nil && len(b.czIDs) > 0 {
		// The raw vertex over-spends a relaxed budget. Sparsify — push the
		// continuous indicators down — and replay once more. The primal
		// simplex keeps the tableau feasible throughout, so running out of
		// the (deliberately small) pivot allowance mid-optimize still
		// leaves a usable model; the allowance keeps a fruitless
		// sparsification from dominating the screen's cost.
		st := b.s.Statistics()
		allowance := st.Pivots + sparsifyPivotCap
		if b.maxPivots > 0 && b.maxPivots < allowance {
			allowance = b.maxPivots
		}
		b.s.SetMaxPivots(allowance)
		obj := make([]lra.Term, len(b.czIDs))
		for i, id := range b.czIDs {
			obj[i] = lra.Term{Var: b.czVar[id], Coeff: big.NewRat(-1, 1)}
		}
		_, err := b.s.Maximize(obj)
		b.s.SetMaxPivots(b.maxPivots)
		if err != nil && errors.Is(err, lra.ErrInfeasible) {
			return inconclusive("screen: sparsification reported infeasible after a feasible check")
		}
		attack, why = b.replay(b.s.Model(), anyBus)
	}
	if attack == nil {
		return inconclusive(why)
	}
	return &Result{
		Verdict: FeasibleIntegral,
		Why:     "relaxed solution replayed exactly as a concrete attack",
		Attack:  attack,
	}
}
