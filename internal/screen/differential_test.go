package screen_test

// Differential soundness suite: the screen's contract is that a definitive
// verdict (Infeasible / FeasibleIntegral) always matches what the full SMT
// model decides. These tests throw randomized (grid, goal, resource-bound)
// triples at both tiers and fail on any disagreement. They live in an
// external test package because internal/core imports internal/screen.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"segrid/internal/core"
	"segrid/internal/grid"
	"segrid/internal/screen"
)

// randomScenario draws one verification instance over sys. The
// distribution is tuned so every scenario dimension the screen models —
// secured/untaken/inaccessible measurements, topology attacks, knowledge
// limits, budgets, all four goal families, MinChange — shows up often.
func randomScenario(rng *rand.Rand, sys *grid.System) *core.Scenario {
	sc := core.NewScenario(sys)
	nm, nl := sys.NumMeasurements(), sys.NumLines()

	for id := 1; id <= nm; id++ {
		switch rng.Intn(10) {
		case 0:
			sc.Meas.Taken[id] = false
		case 1, 2:
			sc.Meas.Secured[id] = true
		case 3:
			sc.Meas.Accessible[id] = false
		}
	}
	if rng.Intn(3) == 0 {
		sc.Knowledge = make([]bool, nl+1)
		for i := 1; i <= nl; i++ {
			sc.Knowledge[i] = rng.Intn(5) != 0
		}
		sc.StrictKnowledge = rng.Intn(2) == 0
	}
	if rng.Intn(3) == 0 {
		sc.AllowExclusion = true
		sc.FixedLines = make([]bool, nl+1)
		for i := 1; i <= nl; i++ {
			sc.FixedLines[i] = rng.Intn(3) == 0
		}
	}
	if rng.Intn(4) == 0 {
		sc.InService = make([]bool, nl+1)
		for i := 1; i <= nl; i++ {
			sc.InService[i] = rng.Intn(8) != 0
		}
		sc.AllowInclusion = rng.Intn(2) == 0
	}
	if rng.Intn(2) == 0 {
		sc.MaxAlteredMeasurements = 1 + rng.Intn(8)
	}
	if rng.Intn(3) == 0 {
		sc.MaxCompromisedBuses = 1 + rng.Intn(5)
	}

	// Goal: at least one family, sometimes several.
	switch rng.Intn(5) {
	case 0:
		sc.AnyState = true
	case 1:
		sc.TargetStates = []int{2 + rng.Intn(sys.Buses-1)}
		sc.OnlyTargets = rng.Intn(2) == 0
	case 2:
		sc.TargetStates = []int{2 + rng.Intn(sys.Buses-1), 2 + rng.Intn(sys.Buses-1)}
	case 3:
		a, bb := 2+rng.Intn(sys.Buses-1), 2+rng.Intn(sys.Buses-1)
		sc.DistinctPairs = [][2]int{{a, bb}}
	default:
		sc.AnyState = true
		sc.UntouchedStates = []int{2 + rng.Intn(sys.Buses-1)}
	}
	if rng.Intn(4) == 0 {
		sc.MinChange = 0.05
	}
	return sc
}

// scenarioLabel renders enough of sc to reproduce a failure by hand.
func scenarioLabel(sc *core.Scenario) string {
	return fmt.Sprintf("targets=%v only=%v any=%v untouched=%v pairs=%v maxAlt=%d maxBus=%d excl=%v incl=%v strict=%v minchg=%v",
		sc.TargetStates, sc.OnlyTargets, sc.AnyState, sc.UntouchedStates, sc.DistinctPairs,
		sc.MaxAlteredMeasurements, sc.MaxCompromisedBuses, sc.AllowExclusion, sc.AllowInclusion,
		sc.StrictKnowledge, sc.MinChange)
}

func runDifferential(t *testing.T, name string, rounds int, seed int64) {
	t.Helper()
	sys, err := grid.Case(name)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	definitive := 0
	for n := 0; n < rounds; n++ {
		sc := randomScenario(rng, sys)
		res, err := core.ScreenScenario(ctx, sc, screen.Options{})
		if err != nil {
			t.Fatalf("%s round %d: screen: %v (%s)", name, n, err, scenarioLabel(sc))
		}
		if !res.Verdict.Definitive() {
			continue
		}
		definitive++
		full, err := core.Verify(sc)
		if err != nil {
			t.Fatalf("%s round %d: verify: %v (%s)", name, n, err, scenarioLabel(sc))
		}
		if full.Inconclusive {
			t.Fatalf("%s round %d: full model inconclusive: %v (%s)", name, n, full.Why, scenarioLabel(sc))
		}
		if want := res.Verdict == screen.FeasibleIntegral; full.Feasible != want {
			t.Fatalf("%s round %d: screen says %v but full model says feasible=%v (%s)",
				name, n, res.Verdict, full.Feasible, scenarioLabel(sc))
		}
		if res.Verdict == screen.Infeasible {
			if len(res.Certificates) == 0 {
				t.Fatalf("%s round %d: reject without certificates (%s)", name, n, scenarioLabel(sc))
			}
			for _, c := range res.Certificates {
				if err := c.Verify(); err != nil {
					t.Fatalf("%s round %d: bad certificate: %v (%s)", name, n, err, scenarioLabel(sc))
				}
			}
		}
		if res.Verdict == screen.FeasibleIntegral && res.Attack == nil {
			t.Fatalf("%s round %d: accept without witness (%s)", name, n, scenarioLabel(sc))
		}
	}
	if definitive == 0 {
		t.Fatalf("%s: no definitive verdict in %d rounds — the screen is useless here", name, rounds)
	}
	t.Logf("%s: %d/%d rounds definitive", name, definitive, rounds)
}

func TestDifferentialIEEE14(t *testing.T) { runDifferential(t, "ieee14", 120, 1401) }
func TestDifferentialIEEE30(t *testing.T) { runDifferential(t, "ieee30", 60, 3001) }

func TestDifferentialIEEE57(t *testing.T) {
	if testing.Short() {
		t.Skip("ieee57 differential rounds are slow")
	}
	runDifferential(t, "ieee57", 25, 5701)
}
