// Package screen is the LP-relaxation screening tier in front of the full
// UFDI SMT model: a continuous relaxation of the attack-feasibility
// constraint system, solved on the exact rational simplex
// (internal/lra), that classifies many (grid, goal, resource-bound)
// instances definitively in a fraction of a full SMT solve — the
// scalable-optimization direction of Chu, Zhang, Kosut & Sankar
// (arXiv:1605.06557) grafted onto this repository's exact pipeline.
//
// The relaxation keeps only constraints that are implied for every
// concrete attack after normalization: the DC measurement-consistency
// structure (flow and injection deltas as linear functions of the state
// deltas, with topology-attackable lines' flows decoupled as free
// variables), hard zero-forcing of deltas the attacker cannot touch
// (secured, inaccessible or unknown-admittance measurements that are
// taken), and the cardinality budgets relaxed to continuous sums: each
// alteration indicator cz becomes a [0,1] variable dominating its
// measurement's |delta|, each bus-compromise indicator cb a [0,1] variable
// dominating its measurements' cz. This is sound because the constraint
// system minus the goal is a cone — any attack scales down until every
// measurement delta has magnitude ≤ 1, at which point |delta| itself is a
// valid fractional indicator — so the relaxed polytope contains a scaled
// image of every true attack.
//
// Goals (Δθ ≠ 0 disequalities) are handled by strict sign probes: the
// relaxation is checked against goal > 0 and goal < 0 separately. Both
// infeasible means the relaxation forces the goal expression to zero, so
// the full model is UNSAT — a definitive fast-reject carrying rational
// Farkas certificates checkable without the solver. If every goal has a
// feasible sign, a combined solution is extracted, sparsified and replayed
// exactly against the full model's semantics (integral cardinality counts,
// topology-attack consistency, MinChange rescaling); a clean replay is a
// definitive fast-accept with the concrete attack vector. Anything else —
// fractional optimum, replay failure, budget or cancellation — degrades to
// Inconclusive: the screen never returns a silent wrong answer.
package screen

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"segrid/internal/grid"
)

// Verdict is the screen's three-valued answer.
type Verdict int

const (
	// Inconclusive means the relaxation could not decide: fall through to
	// the full SMT model. Never a wrong answer, possibly a useless one.
	Inconclusive Verdict = iota
	// Infeasible is definitive: the relaxation is UNSAT, therefore the full
	// model is UNSAT. Certificates carry the Farkas proof.
	Infeasible
	// FeasibleIntegral is definitive: the relaxed optimum replayed exactly
	// as a concrete attack vector satisfying the full model. Attack carries
	// the witness.
	FeasibleIntegral
)

func (v Verdict) String() string {
	switch v {
	case Infeasible:
		return "infeasible"
	case FeasibleIntegral:
		return "feasible"
	default:
		return "inconclusive"
	}
}

// Definitive reports whether the verdict answers the instance without the
// SMT tier.
func (v Verdict) Definitive() bool { return v != Inconclusive }

// Problem is the screen's view of a UFDI verification instance. It is
// deliberately independent of internal/core (which imports this package):
// core converts a Scenario into a Problem, pre-resolving the per-line
// attackability rules so the screen never re-derives scenario policy.
// All slices are 1-based (index 0 unused); measurement tables span
// Sys.NumMeasurements(), line tables Sys.NumLines().
type Problem struct {
	Sys    *grid.System
	RefBus int

	// Measurement configuration.
	Taken, Secured, Accessible []bool

	// Line attack policy: Known is the attacker's admittance knowledge,
	// InService the base topology, CanExclude/CanInclude the resolved
	// admissibility of status-exclusion/-inclusion attacks (mutually
	// exclusive per line).
	Known, InService       []bool
	CanExclude, CanInclude []bool
	StrictKnowledge        bool

	// Resource budgets; 0 means unlimited.
	MaxAltered, MaxBuses int

	// Attack goal.
	Targets       []int
	OnlyTargets   bool
	Untouched     []int
	AnyState      bool
	DistinctPairs [][2]int

	// MinChangeEps is the exact significance threshold ε of the MinChange
	// extension (nil when off). With it set, "state not attacked" means
	// |Δθ| < ε rather than Δθ = 0, so the relaxation must not zero-force
	// non-target states; the witness replay rescales instead.
	MinChangeEps *big.Rat
}

// DefaultMaxPivots is the pivot budget the repository's screening
// consumers (service, synthesis, CLIs) use: enough for any instance the
// screen can decide cheaply, small enough that a hopeless instance falls
// through to the SMT tier in bounded time.
const DefaultMaxPivots int64 = 512

// Options tune a screening run.
type Options struct {
	// MaxPivots bounds total simplex pivots across the whole screen
	// (0 = unlimited). Exhaustion degrades to Inconclusive.
	MaxPivots int64
	// Stop is polled during simplex work; a non-nil return aborts the
	// screen to Inconclusive. Context cancellation is wired in by Check
	// regardless; Stop is for fault injection and external budgets.
	Stop func() error
}

// Stats describes the work a screening run did.
type Stats struct {
	Vars   int
	Rows   int
	Pivots int64
	// Probes is the number of strict sign probes checked.
	Probes  int
	Elapsed time.Duration
}

// Attack is the concrete witness behind a FeasibleIntegral verdict, in the
// same vocabulary as core.Result.
type Attack struct {
	AlteredMeasurements []int
	CompromisedBuses    []int
	ExcludedLines       []int
	IncludedLines       []int
	// StateChanges maps bus → exact Δθ (nonzero entries only).
	StateChanges map[int]*big.Rat
	// TopoFlowDeltas maps attacked line → exact ΔPT.
	TopoFlowDeltas map[int]*big.Rat
}

// Result is a screening outcome.
type Result struct {
	Verdict Verdict
	// Why explains an Inconclusive verdict (and annotates definitive ones).
	Why string
	// Certificates carries one Farkas certificate per refuted sign probe
	// when Verdict is Infeasible.
	Certificates []*Certificate
	// Attack is the replayed witness when Verdict is FeasibleIntegral.
	Attack *Attack
	Stats  Stats
}

// Check screens one instance. It returns an error only for malformed
// problems; resource exhaustion, cancellation and fractional optima all
// return a Result with Verdict Inconclusive instead — mirroring the SMT
// tier's Unknown-not-error contract.
func Check(ctx context.Context, p *Problem, opts Options) (*Result, error) {
	start := time.Now()
	if err := p.validate(); err != nil {
		return nil, err
	}
	b, err := build(p, ctx, opts)
	if err != nil {
		return nil, err
	}
	res := b.run()
	st := b.s.Statistics()
	res.Stats.Vars = st.Vars
	res.Stats.Rows = st.Rows
	res.Stats.Pivots = st.Pivots
	res.Stats.Probes = b.probes
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

func (p *Problem) validate() error {
	if p.Sys == nil {
		return fmt.Errorf("screen: problem has no system")
	}
	sys := p.Sys
	if p.RefBus < 1 || p.RefBus > sys.Buses {
		return fmt.Errorf("screen: reference bus %d out of range 1..%d", p.RefBus, sys.Buses)
	}
	nm, nl := sys.NumMeasurements()+1, sys.NumLines()+1
	for _, tb := range []struct {
		name string
		s    []bool
		want int
	}{
		{"taken", p.Taken, nm}, {"secured", p.Secured, nm}, {"accessible", p.Accessible, nm},
		{"known", p.Known, nl}, {"inService", p.InService, nl},
		{"canExclude", p.CanExclude, nl}, {"canInclude", p.CanInclude, nl},
	} {
		if len(tb.s) != tb.want {
			return fmt.Errorf("screen: %s table has length %d, want %d", tb.name, len(tb.s), tb.want)
		}
	}
	for i := 1; i < nl; i++ {
		if p.CanExclude[i] && p.CanInclude[i] {
			return fmt.Errorf("screen: line %d both excludable and includable", i)
		}
	}
	inRange := func(kind string, buses []int) error {
		for _, j := range buses {
			if j < 1 || j > sys.Buses {
				return fmt.Errorf("screen: %s bus %d out of range 1..%d", kind, j, sys.Buses)
			}
		}
		return nil
	}
	if err := inRange("target", p.Targets); err != nil {
		return err
	}
	if err := inRange("untouched", p.Untouched); err != nil {
		return err
	}
	for _, pr := range p.DistinctPairs {
		if err := inRange("distinct-pair", pr[:]); err != nil {
			return err
		}
	}
	if p.MaxAltered < 0 || p.MaxBuses < 0 {
		return fmt.Errorf("screen: negative resource bound")
	}
	return nil
}
