package screen

import (
	"fmt"
	"math/big"
)

// Term is one summand of a certificate bound's left-hand side, written over
// the screen's primitive variables by name (slack definitions are expanded
// at recording time, so a certificate never references solver-internal
// rows).
type Term struct {
	Var   string
	Coeff *big.Rat
}

// Bound is one linear inequality participating in a Farkas combination:
// Σ Terms ≥ Value (Lower) or Σ Terms ≤ Value (Upper), strictly when Strict
// is set. Desc says which model constraint the bound came from.
type Bound struct {
	Desc   string
	Terms  []Term
	Lower  bool
	Value  *big.Rat
	Strict bool
}

// Certificate is a rational Farkas certificate of infeasibility: a list of
// bounds from the LP relaxation and positive multipliers such that the
// scaled bounds sum to a contradiction (the variables cancel and the
// combined constant says 0 > 0 or 0 ≥ c for some positive c). It is
// self-contained — Verify needs nothing from the solver, the SAT core or
// the tableau, only exact rational arithmetic over the recorded rows — so
// a screen reject can be audited independently of the screening run.
type Certificate struct {
	// Desc names the refuted claim, e.g. "goal dtheta_12 > 0 is feasible".
	Desc   string
	Bounds []Bound
	Coeffs []*big.Rat
}

// Verify recombines the certificate and errors unless it is a valid proof
// of infeasibility. Each bound is oriented as a ≥-inequality over the
// primitive variables (upper bounds are negated), scaled by its positive
// multiplier and summed; the combination must cancel every variable and
// leave a constant inequality that is false: 0 ≥ c with c > 0, or the
// strict 0 > 0 when a strict bound participates at c = 0.
func (c *Certificate) Verify() error {
	if len(c.Bounds) == 0 {
		return fmt.Errorf("screen: empty certificate")
	}
	if len(c.Bounds) != len(c.Coeffs) {
		return fmt.Errorf("screen: %d bounds but %d coefficients", len(c.Bounds), len(c.Coeffs))
	}
	sum := make(map[string]*big.Rat)
	constant := new(big.Rat)
	strict := false
	tmp := new(big.Rat)
	for i, bd := range c.Bounds {
		lam := c.Coeffs[i]
		if lam == nil || lam.Sign() <= 0 {
			return fmt.Errorf("screen: bound %d (%s): Farkas coefficient must be positive", i, bd.Desc)
		}
		// σ = +1 for a lower bound (E − b ≥ 0), −1 for an upper (b − E ≥ 0).
		sigma := lam
		if !bd.Lower {
			sigma = tmp.Neg(lam)
		}
		for _, t := range bd.Terms {
			if t.Coeff == nil {
				return fmt.Errorf("screen: bound %d (%s): nil term coefficient", i, bd.Desc)
			}
			acc, ok := sum[t.Var]
			if !ok {
				acc = new(big.Rat)
				sum[t.Var] = acc
			}
			acc.Add(acc, new(big.Rat).Mul(sigma, t.Coeff))
		}
		if bd.Value == nil {
			return fmt.Errorf("screen: bound %d (%s): nil bound value", i, bd.Desc)
		}
		constant.Add(constant, new(big.Rat).Mul(sigma, bd.Value))
		// A strict bound tightens by an infinitesimal toward the feasible
		// side: lower-strict is b + δ, upper-strict b − δ; with the upper's
		// σ = −1 both contribute +λ·δ to the combined constant.
		if bd.Strict {
			strict = true
		}
	}
	for v, acc := range sum {
		if acc.Sign() != 0 {
			return fmt.Errorf("screen: variable %s does not cancel (residual %s)", v, acc.RatString())
		}
	}
	// The combination proves 0 ≥ constant (+δ if strict); it contradicts
	// exactly when constant > 0, or constant = 0 with a strict participant.
	if constant.Sign() > 0 || (constant.Sign() == 0 && strict) {
		return nil
	}
	return fmt.Errorf("screen: combination does not contradict (constant %s, strict=%v)", constant.RatString(), strict)
}

// String summarizes the certificate for logs.
func (c *Certificate) String() string {
	return fmt.Sprintf("farkas certificate (%s): %d bounds", c.Desc, len(c.Bounds))
}
