package screen

import (
	"fmt"
	"math/big"
	"sort"

	"segrid/internal/grid"
	"segrid/internal/lpbuild"
)

// replay checks a relaxed solution against the full UFDI model's exact
// semantics and converts it into a concrete attack. It returns nil with a
// reason when the solution does not round-trip — fractional resource
// usage, an unrealizable topology assignment, or a state vector that a
// MinChange threshold cannot separate — in which case the screen answers
// Inconclusive and the SMT tier decides. A non-nil return is a definitive
// fast-accept: every full-model constraint has been checked directly, so
// no trust in the relaxation is required.
//
// anyBus is the witness bus chosen for an AnyState goal (0 when the goal
// has none or a target already covers it).
func (b *builder) replay(model []*big.Rat, anyBus int) (*Attack, string) {
	p := b.p
	sys := p.Sys
	zero := new(big.Rat)

	th := make([]*big.Rat, sys.Buses+1)
	for j := 1; j <= sys.Buses; j++ {
		th[j] = model[b.theta[j]]
	}

	// Classify every line: measured-flow delta, and for attackable lines
	// the integral status decision the flow value implies.
	flowDelta := make([]*big.Rat, sys.NumLines()+1)
	var excluded, included []int
	dpt := make(map[int]*big.Rat)
	for i := 1; i <= sys.NumLines(); i++ {
		ln := sys.Line(i)
		diff := new(big.Rat).Sub(th[ln.From], th[ln.To])
		if p.StrictKnowledge && !p.Known[i] && diff.Sign() != 0 {
			return nil, fmt.Sprintf("replay: unknown line %d has a nonzero state difference under strict knowledge", i)
		}
		implied := new(big.Rat).Mul(lpbuild.AdmittanceRat(ln.Admittance), diff)
		if !b.effAtt[i] {
			if p.InService[i] {
				flowDelta[i] = implied
			} else {
				flowDelta[i] = zero
			}
			continue
		}
		f := model[b.fvar[i]]
		flowDelta[i] = f
		switch {
		case p.CanExclude[i]: // in service (effAtt guarantees it)
			switch {
			case f.Cmp(implied) == 0:
				// Line kept: measured flow tracks the state.
			case f.Sign() != 0:
				excluded = append(excluded, i)
				dpt[i] = f
			default:
				return nil, fmt.Sprintf("replay: line %d measured flow is zero but its state-implied flow is not — exclusion cannot realize it", i)
			}
		default: // CanInclude, out of service
			switch {
			case f.Sign() == 0:
				// Line left out: no measured flow.
			case f.Cmp(implied) != 0:
				included = append(included, i)
				dpt[i] = new(big.Rat).Sub(f, implied)
			default:
				return nil, fmt.Sprintf("replay: line %d measured flow equals its state-implied flow — inclusion needs a nonzero topology delta", i)
			}
		}
	}

	// Injection deltas follow from the line flows: net inflow change.
	injDelta := make([]*big.Rat, sys.Buses+1)
	for j := 1; j <= sys.Buses; j++ {
		d := new(big.Rat)
		for _, id := range sys.InLines(j) {
			d.Add(d, flowDelta[id])
		}
		for _, id := range sys.OutLines(j) {
			d.Sub(d, flowDelta[id])
		}
		injDelta[j] = d
	}

	// Measurement deltas, alteration set, and the pinned-delta guard: a
	// taken measurement the attacker cannot touch must not have moved —
	// the relaxation forces this, so a violation is an internal error.
	var altered []int
	compromised := make(map[int]bool)
	for id := 1; id <= sys.NumMeasurements(); id++ {
		if !p.Taken[id] {
			continue
		}
		kind, ref, err := sys.DecodeMeas(id)
		if err != nil {
			return nil, "replay: " + err.Error()
		}
		var delta *big.Rat
		switch kind {
		case grid.MeasForwardFlow, grid.MeasBackwardFlow:
			delta = flowDelta[ref] // backward differs only in sign; zeroness is what matters
		default:
			delta = injDelta[ref]
		}
		if delta.Sign() == 0 {
			continue
		}
		if !b.alterable(id) {
			return nil, fmt.Sprintf("replay: pinned measurement %d moved (internal error)", id)
		}
		altered = append(altered, id)
		j, err := sys.HomeBus(id)
		if err != nil {
			return nil, "replay: " + err.Error()
		}
		compromised[j] = true
	}

	// Integral resource accounting — the point of the replay: the relaxed
	// sums guarantee nothing about the true counts.
	if p.MaxAltered > 0 && len(altered) > p.MaxAltered {
		return nil, fmt.Sprintf("replay: fractional optimum alters %d measurements, budget is %d", len(altered), p.MaxAltered)
	}
	if p.MaxBuses > 0 && len(compromised) > p.MaxBuses {
		return nil, fmt.Sprintf("replay: fractional optimum compromises %d buses, budget is %d", len(compromised), p.MaxBuses)
	}

	// Goal disequalities (asserted in the LP; checked again so the accept
	// path never leans on solver internals).
	for _, t := range p.Targets {
		if th[t].Sign() == 0 {
			return nil, fmt.Sprintf("replay: target state %d unchanged (internal error)", t)
		}
	}
	for _, pr := range p.DistinctPairs {
		if th[pr[0]].Cmp(th[pr[1]]) == 0 {
			return nil, fmt.Sprintf("replay: states %d and %d coincide (internal error)", pr[0], pr[1])
		}
	}
	if anyBus != 0 && th[anyBus].Sign() == 0 {
		return nil, fmt.Sprintf("replay: anystate witness %d unchanged (internal error)", anyBus)
	}
	if p.MinChangeEps == nil {
		target := make(map[int]bool, len(p.Targets))
		for _, t := range p.Targets {
			target[t] = true
		}
		if p.OnlyTargets {
			for j := 1; j <= sys.Buses; j++ {
				if j != p.RefBus && !target[j] && th[j].Sign() != 0 {
					return nil, fmt.Sprintf("replay: non-target state %d changed (internal error)", j)
				}
			}
		}
		for _, j := range p.Untouched {
			if j != p.RefBus && th[j].Sign() != 0 {
				return nil, fmt.Sprintf("replay: untouched state %d changed (internal error)", j)
			}
		}
	}

	// MinChange rescaling: the full model reads "attacked" as |Δθ| ≥ ε and
	// "untouched" as |Δθ| < ε. Every other constraint is positively
	// homogeneous, so a uniform scale factor moves the significant states
	// above ε and the must-stay-quiet states below it — when a gap exists.
	scale := big.NewRat(1, 1)
	if eps := p.MinChangeEps; eps != nil {
		mustOn := make(map[int]bool)
		for _, t := range p.Targets {
			mustOn[t] = true
		}
		if anyBus != 0 {
			mustOn[anyBus] = true
		}
		mustOff := make(map[int]bool)
		for _, j := range p.Untouched {
			if j != p.RefBus {
				mustOff[j] = true
			}
		}
		if p.OnlyTargets {
			for j := 1; j <= sys.Buses; j++ {
				if j != p.RefBus && !mustOn[j] {
					mustOff[j] = true
				}
			}
		}
		var minOn, maxOff *big.Rat
		for j := range mustOn {
			if mustOff[j] {
				return nil, fmt.Sprintf("replay: state %d must be both significant and insignificant", j)
			}
			a := new(big.Rat).Abs(th[j])
			if a.Sign() == 0 {
				return nil, fmt.Sprintf("replay: required state %d unchanged (internal error)", j)
			}
			if minOn == nil || a.Cmp(minOn) < 0 {
				minOn = a
			}
		}
		for j := range mustOff {
			a := new(big.Rat).Abs(th[j])
			if maxOff == nil || a.Cmp(maxOff) > 0 {
				maxOff = a
			}
		}
		switch {
		case minOn != nil:
			if maxOff != nil && maxOff.Cmp(minOn) >= 0 {
				return nil, "replay: relaxed witness cannot separate significant from insignificant state changes"
			}
			scale = new(big.Rat).Quo(eps, minOn)
		case maxOff != nil && maxOff.Sign() != 0:
			// Only quiet-side constraints (distinct-pair goals scale
			// freely): shrink everything safely below ε.
			scale = new(big.Rat).Quo(eps, new(big.Rat).Mul(big.NewRat(2, 1), maxOff))
		}
	}

	atk := &Attack{
		AlteredMeasurements: altered,
		ExcludedLines:       excluded,
		IncludedLines:       included,
		StateChanges:        make(map[int]*big.Rat),
		TopoFlowDeltas:      make(map[int]*big.Rat, len(dpt)),
	}
	for j := range compromised {
		atk.CompromisedBuses = append(atk.CompromisedBuses, j)
	}
	sort.Ints(atk.CompromisedBuses)
	for j := 1; j <= sys.Buses; j++ {
		if j != p.RefBus && th[j].Sign() != 0 {
			atk.StateChanges[j] = new(big.Rat).Mul(scale, th[j])
		}
	}
	for i, d := range dpt {
		atk.TopoFlowDeltas[i] = new(big.Rat).Mul(scale, d)
	}
	return atk, ""
}
