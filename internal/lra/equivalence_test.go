package lra

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"segrid/internal/numeric"
)

// simplexScript is a recorded sequence of solver operations that can be
// replayed deterministically on a fresh Simplex. It drives the hybrid-vs-big
// equivalence property: the same script must produce identical observable
// behavior whether the rational fast path is enabled or forced off.
type simplexScript struct {
	nVars  int
	rows   [][]Term // slack definitions; Term.Var indexes vars then slacks
	bounds []scriptBound
	obj    []Term // objective for Maximize on feasible instances
}

type scriptBound struct {
	v       int // index into the combined var+slack space
	isLower bool
	num     int64 // bound value num/den, plus strict flag
	den     int64
	strict  bool
}

// genScript draws a random simplex workload with rational coefficients and
// bounds, mirroring the shape of TestRandomSystemsModelSound but with
// non-integer data so the fast path's gcd reductions are exercised.
func genScript(rng *rand.Rand) simplexScript {
	var sc simplexScript
	sc.nVars = 2 + rng.Intn(4)
	nrows := 1 + rng.Intn(4)
	for r := 0; r < nrows; r++ {
		var terms []Term
		for x := 0; x < sc.nVars; x++ {
			n := int64(rng.Intn(9)) - 4
			if n == 0 {
				continue
			}
			terms = append(terms, Term{Var: x, Coeff: rat(n, int64(rng.Intn(4)+1))})
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: 0, Coeff: rat(1, 1)})
		}
		sc.rows = append(sc.rows, terms)
	}
	total := sc.nVars + nrows
	nbounds := 2 + rng.Intn(10)
	for i := 0; i < nbounds; i++ {
		sc.bounds = append(sc.bounds, scriptBound{
			v:       rng.Intn(total),
			isLower: rng.Intn(2) == 0,
			num:     int64(rng.Intn(41)) - 20,
			den:     int64(rng.Intn(3) + 1),
			strict:  rng.Intn(4) == 0,
		})
	}
	for x := 0; x < sc.nVars; x++ {
		if n := int64(rng.Intn(5)) - 2; n != 0 {
			sc.obj = append(sc.obj, Term{Var: x, Coeff: rat(n, 1)})
		}
	}
	return sc
}

// replay runs the script on a fresh Simplex and serializes everything a
// caller can observe: per-step conflict tags, Check verdicts, the final
// model, and (when feasible and an objective exists) the Maximize optimum.
func replay(sc simplexScript) string {
	s := NewSimplex()
	vars := make([]int, sc.nVars)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	all := append([]int(nil), vars...)
	for _, terms := range sc.rows {
		resolved := make([]Term, len(terms))
		for i, t := range terms {
			resolved[i] = Term{Var: all[t.Var], Coeff: t.Coeff}
		}
		sv, err := s.DefineSlack(resolved)
		if err != nil {
			return "defineslack error: " + err.Error()
		}
		all = append(all, sv)
	}
	var b strings.Builder
	for i, bd := range sc.bounds {
		val := numeric.DeltaFromRat(rat(bd.num, bd.den))
		if bd.strict {
			inf := int64(1)
			if !bd.isLower {
				inf = -1
			}
			val = numeric.NewDelta(rat(bd.num, bd.den), rat(inf, 1))
		}
		var tags []Tag
		if bd.isLower {
			tags = s.AssertLower(all[bd.v], val, Tag(i))
		} else {
			tags = s.AssertUpper(all[bd.v], val, Tag(i))
		}
		if tags != nil {
			fmt.Fprintf(&b, "assert %d conflict %v\n", i, tags)
			return b.String()
		}
		if c := s.Check(); c != nil {
			fmt.Fprintf(&b, "check %d conflict %v\n", i, c)
			return b.String()
		}
	}
	b.WriteString("sat\n")
	for i, r := range s.Model() {
		fmt.Fprintf(&b, "x%d=%s\n", i, r.RatString())
	}
	if len(sc.obj) > 0 {
		resolved := make([]Term, len(sc.obj))
		for i, t := range sc.obj {
			resolved[i] = Term{Var: all[t.Var], Coeff: t.Coeff}
		}
		opt, err := s.Maximize(resolved)
		if err != nil {
			fmt.Fprintf(&b, "maximize err %v\n", err)
		} else {
			fmt.Fprintf(&b, "maximize %s\n", opt.String())
		}
	}
	return b.String()
}

// TestHybridMatchesBigRatSimplex is the acceptance property for the hybrid
// rational fast path: replaying identical assertion scripts with the fast
// path on and off must give identical conflicts, SAT/UNSAT verdicts, model
// values, and optima.
func TestHybridMatchesBigRatSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		sc := genScript(rng)
		fast := replay(sc)
		prev := numeric.SetForceBig(true)
		slow := replay(sc)
		numeric.SetForceBig(prev)
		if fast != slow {
			t.Fatalf("trial %d: hybrid and big.Rat traces diverge\nhybrid:\n%s\nbig.Rat:\n%s", trial, fast, slow)
		}
	}
}

// TestHybridPromotionCounters checks the promotion-rate observability: a
// plain integer workload should stay overwhelmingly on the fast path, and
// forcing big.Rat mode must route every counted operation to BigOps.
func TestHybridPromotionCounters(t *testing.T) {
	run := func() Stats {
		s := NewSimplex()
		x, y := s.NewVar(), s.NewVar()
		sv, err := s.DefineSlack([]Term{{Var: x, Coeff: rat(2, 3)}, {Var: y, Coeff: rat(-1, 2)}})
		if err != nil {
			t.Fatalf("DefineSlack: %v", err)
		}
		s.AssertLower(x, dl(1), 0)
		s.AssertUpper(sv, dl(5), 1)
		s.AssertLower(y, dl(-3), 2)
		if c := s.Check(); c != nil {
			t.Fatalf("unexpected conflict: %v", c)
		}
		return s.Statistics()
	}
	st := run()
	if st.FastOps == 0 {
		t.Fatalf("expected fast-path operations on a small workload, got %+v", st)
	}
	if st.BigOps > st.FastOps/10 {
		t.Fatalf("promotion rate unexpectedly high: %+v", st)
	}
	prev := numeric.SetForceBig(true)
	defer numeric.SetForceBig(prev)
	st = run()
	if st.FastOps != 0 {
		t.Fatalf("forceBig run still counted fast ops: %+v", st)
	}
	if st.BigOps == 0 {
		t.Fatalf("forceBig run counted no big ops: %+v", st)
	}
}
