package lra

import (
	"errors"
	"math/big"
	"testing"
)

// chainTableau builds a pivot-hungry instance: a chain of slack equalities
// x_{i+1} = x_i + 1 with the head bounded below and the tail bounded above,
// so CheckBudget has to walk the chain pivoting basics into range.
func chainTableau(t *testing.T, s *Simplex, n int) {
	t.Helper()
	xs := make([]int, n)
	for i := range xs {
		xs[i] = s.NewVar()
	}
	tag := Tag(1)
	for i := 0; i+1 < n; i++ {
		// slack = x_{i+1} - x_i, forced to equal 1.
		sv := mustSlack(t, s, []Term{{Var: xs[i+1], Coeff: rat(1, 1)}, {Var: xs[i], Coeff: rat(-1, 1)}})
		if c := s.AssertLower(sv, dl(1), tag); c != nil {
			t.Fatalf("chain lower: conflict %v", c)
		}
		tag++
		if c := s.AssertUpper(sv, dl(1), tag); c != nil {
			t.Fatalf("chain upper: conflict %v", c)
		}
		tag++
	}
	if c := s.AssertLower(xs[0], dl(0), tag); c != nil {
		t.Fatalf("head bound: conflict %v", c)
	}
	if c := s.AssertUpper(xs[n-1], dl(int64(10*n)), tag+1); c != nil {
		t.Fatalf("tail bound: conflict %v", c)
	}
}

// TestBudgetMaxPivots exhausts the pivot budget mid-Check and verifies the
// tableau remains usable for a resumed, unbudgeted Check.
func TestBudgetMaxPivots(t *testing.T) {
	s := NewSimplex()
	chainTableau(t, s, 40)
	s.SetMaxPivots(3)
	if _, err := s.CheckBudget(); !errors.Is(err, ErrPivotBudget) {
		t.Fatalf("CheckBudget err = %v, want ErrPivotBudget", err)
	}
	if got := s.Statistics().Pivots; got < 3 {
		t.Fatalf("Pivots = %d, want >= budget 3", got)
	}
	// The interrupted tableau must still be consistent: lifting the budget
	// and re-checking has to succeed.
	s.SetMaxPivots(0)
	conflict, err := s.CheckBudget()
	if err != nil {
		t.Fatalf("resumed CheckBudget: %v", err)
	}
	if conflict != nil {
		t.Fatalf("resumed CheckBudget conflict = %v, want feasible", conflict)
	}
}

// TestBudgetStopHook interrupts Check via the stop callback after a fixed
// number of polls; deterministic because the pivot order is.
func TestBudgetStopHook(t *testing.T) {
	s := NewSimplex()
	chainTableau(t, s, 40)
	boom := errors.New("stop now")
	polls := 0
	s.SetStop(func() error {
		polls++
		if polls > 2 {
			return boom
		}
		return nil
	})
	if _, err := s.CheckBudget(); !errors.Is(err, boom) {
		t.Fatalf("CheckBudget err = %v, want stop error", err)
	}
	s.SetStop(nil)
	if conflict, err := s.CheckBudget(); err != nil || conflict != nil {
		t.Fatalf("resumed CheckBudget = %v, %v; want feasible", conflict, err)
	}
}

// TestBudgetCheckUnaffected ensures the plain Check path (no budget, no
// stop) is byte-for-byte the old behavior: feasible chain, correct model.
func TestBudgetCheckUnaffected(t *testing.T) {
	s := NewSimplex()
	chainTableau(t, s, 10)
	if c := s.Check(); c != nil {
		t.Fatalf("Check conflict = %v, want feasible", c)
	}
	m := s.Model()
	// x_i = x_0 + i along the chain.
	for i := 1; i < 10; i++ {
		diff := new(big.Rat).Sub(m[i], m[i-1])
		if diff.Cmp(rat(1, 1)) != 0 {
			t.Fatalf("x_%d - x_%d = %v, want 1", i, i-1, diff)
		}
	}
}
