package lra

import (
	"math/big"
	"math/rand"
	"testing"

	"segrid/internal/numeric"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func dl(n int64) numeric.Delta { return numeric.DeltaFromInt(n) }

// strictAbove returns the delta-rational for "> n".
func strictAbove(n int64) numeric.Delta {
	return numeric.NewDelta(big.NewRat(n, 1), big.NewRat(1, 1))
}

// strictBelow returns the delta-rational for "< n".
func strictBelow(n int64) numeric.Delta {
	return numeric.NewDelta(big.NewRat(n, 1), big.NewRat(-1, 1))
}

func mustSlack(t *testing.T, s *Simplex, expr []Term) int {
	t.Helper()
	sv, err := s.DefineSlack(expr)
	if err != nil {
		t.Fatalf("DefineSlack: %v", err)
	}
	return sv
}

func TestFeasibleBox(t *testing.T) {
	s := NewSimplex()
	x, y := s.NewVar(), s.NewVar()
	if c := s.AssertLower(x, dl(1), 1); c != nil {
		t.Fatalf("unexpected conflict: %v", c)
	}
	if c := s.AssertUpper(x, dl(5), 2); c != nil {
		t.Fatalf("unexpected conflict: %v", c)
	}
	if c := s.AssertLower(y, dl(-2), 3); c != nil {
		t.Fatalf("unexpected conflict: %v", c)
	}
	if c := s.Check(); c != nil {
		t.Fatalf("Check conflict: %v", c)
	}
	m := s.Model()
	if m[x].Cmp(rat(1, 1)) < 0 || m[x].Cmp(rat(5, 1)) > 0 {
		t.Errorf("x = %v outside [1,5]", m[x])
	}
	if m[y].Cmp(rat(-2, 1)) < 0 {
		t.Errorf("y = %v below -2", m[y])
	}
}

func TestDirectBoundConflict(t *testing.T) {
	s := NewSimplex()
	x := s.NewVar()
	if c := s.AssertUpper(x, dl(3), 7); c != nil {
		t.Fatalf("unexpected conflict")
	}
	c := s.AssertLower(x, dl(4), 9)
	if len(c) != 2 {
		t.Fatalf("conflict = %v, want two tags", c)
	}
	seen := map[Tag]bool{c[0]: true, c[1]: true}
	if !seen[7] || !seen[9] {
		t.Fatalf("conflict = %v, want tags {7,9}", c)
	}
}

func TestRowConflict(t *testing.T) {
	// x + y ≥ 10, x ≤ 2, y ≤ 3 → infeasible.
	s := NewSimplex()
	x, y := s.NewVar(), s.NewVar()
	sum := mustSlack(t, s, []Term{{x, rat(1, 1)}, {y, rat(1, 1)}})
	if c := s.AssertLower(sum, dl(10), 1); c != nil {
		t.Fatalf("early conflict: %v", c)
	}
	if c := s.AssertUpper(x, dl(2), 2); c != nil {
		t.Fatalf("early conflict: %v", c)
	}
	if c := s.AssertUpper(y, dl(3), 3); c != nil {
		t.Fatalf("early conflict: %v", c)
	}
	c := s.Check()
	if c == nil {
		t.Fatalf("Check() = nil, want conflict")
	}
	got := map[Tag]bool{}
	for _, tag := range c {
		got[tag] = true
	}
	for _, want := range []Tag{1, 2, 3} {
		if !got[want] {
			t.Errorf("conflict %v missing tag %d", c, want)
		}
	}
}

func TestEqualityChain(t *testing.T) {
	// y = 2x, z = y + x, x = 3 → z = 9.
	s := NewSimplex()
	x := s.NewVar()
	y := mustSlack(t, s, []Term{{x, rat(2, 1)}})
	z := mustSlack(t, s, []Term{{y, rat(1, 1)}, {x, rat(1, 1)}})
	for _, c := range [][]Tag{
		s.AssertLower(x, dl(3), 1),
		s.AssertUpper(x, dl(3), 2),
	} {
		if c != nil {
			t.Fatalf("assert conflict: %v", c)
		}
	}
	if c := s.Check(); c != nil {
		t.Fatalf("Check conflict: %v", c)
	}
	m := s.Model()
	if m[y].Cmp(rat(6, 1)) != 0 {
		t.Errorf("y = %v, want 6", m[y])
	}
	if m[z].Cmp(rat(9, 1)) != 0 {
		t.Errorf("z = %v, want 9", m[z])
	}
}

func TestStrictBoundsSeparation(t *testing.T) {
	// x > 0 and x < 1 is feasible; model must satisfy both strictly.
	s := NewSimplex()
	x := s.NewVar()
	if c := s.AssertLower(x, strictAbove(0), 1); c != nil {
		t.Fatalf("conflict: %v", c)
	}
	if c := s.AssertUpper(x, strictBelow(1), 2); c != nil {
		t.Fatalf("conflict: %v", c)
	}
	if c := s.Check(); c != nil {
		t.Fatalf("Check conflict: %v", c)
	}
	m := s.Model()
	if m[x].Sign() <= 0 || m[x].Cmp(rat(1, 1)) >= 0 {
		t.Errorf("x = %v, want strictly inside (0,1)", m[x])
	}
}

func TestStrictConflict(t *testing.T) {
	// x > 3 and x < 3 is infeasible even though 3 ≤ x ≤ 3 would be fine.
	s := NewSimplex()
	x := s.NewVar()
	if c := s.AssertLower(x, strictAbove(3), 1); c != nil {
		t.Fatalf("conflict: %v", c)
	}
	if c := s.AssertUpper(x, strictBelow(3), 2); c == nil {
		t.Fatalf("want immediate bound conflict")
	}
}

func TestStrictViaRowConflict(t *testing.T) {
	// y = x, x ≥ 3, y < 3 → infeasible only because of strictness.
	s := NewSimplex()
	x := s.NewVar()
	y := mustSlack(t, s, []Term{{x, rat(1, 1)}})
	if c := s.AssertLower(x, dl(3), 1); c != nil {
		t.Fatalf("conflict: %v", c)
	}
	if c := s.AssertUpper(y, strictBelow(3), 2); c != nil {
		// Direct conflict is also acceptable depending on pivot state.
		return
	}
	if c := s.Check(); c == nil {
		t.Fatalf("want conflict from strictness")
	}
}

func TestPushPopRestoresBounds(t *testing.T) {
	s := NewSimplex()
	x := s.NewVar()
	if c := s.AssertLower(x, dl(0), 1); c != nil {
		t.Fatalf("conflict: %v", c)
	}
	s.Push()
	if c := s.AssertLower(x, dl(10), 2); c != nil {
		t.Fatalf("conflict: %v", c)
	}
	if c := s.AssertUpper(x, dl(5), 3); c == nil {
		t.Fatalf("want conflict inside scope")
	}
	s.Pop(1)
	// After popping, x ≤ 5 must be consistent again.
	if c := s.AssertUpper(x, dl(5), 4); c != nil {
		t.Fatalf("conflict after pop: %v", c)
	}
	if c := s.Check(); c != nil {
		t.Fatalf("Check conflict after pop: %v", c)
	}
	m := s.Model()
	if m[x].Cmp(rat(0, 1)) < 0 || m[x].Cmp(rat(5, 1)) > 0 {
		t.Errorf("x = %v outside [0,5]", m[x])
	}
}

func TestPopKeepsOuterBounds(t *testing.T) {
	s := NewSimplex()
	x := s.NewVar()
	if c := s.AssertUpper(x, dl(7), 1); c != nil {
		t.Fatalf("conflict: %v", c)
	}
	s.Push()
	if c := s.AssertUpper(x, dl(2), 2); c != nil {
		t.Fatalf("conflict: %v", c)
	}
	s.Pop(1)
	if c := s.AssertLower(x, dl(5), 3); c != nil {
		t.Fatalf("outer bound should allow x ≥ 5 after pop, got %v", c)
	}
	if c := s.Check(); c != nil {
		t.Fatalf("Check: %v", c)
	}
}

func TestDefineSlackSubstitutesBasic(t *testing.T) {
	// Force y basic via pivoting, then define z over y and verify z = 3x.
	s := NewSimplex()
	x := s.NewVar()
	y := mustSlack(t, s, []Term{{x, rat(2, 1)}})
	z := mustSlack(t, s, []Term{{y, rat(1, 1)}, {x, rat(1, 1)}})
	if c := s.AssertLower(z, dl(9), 1); c != nil {
		t.Fatalf("conflict: %v", c)
	}
	if c := s.AssertUpper(z, dl(9), 2); c != nil {
		t.Fatalf("conflict: %v", c)
	}
	if c := s.Check(); c != nil {
		t.Fatalf("Check: %v", c)
	}
	m := s.Model()
	three := new(big.Rat).Mul(rat(3, 1), m[x])
	if m[z].Cmp(three) != 0 {
		t.Errorf("z = %v, want 3x = %v", m[z], three)
	}
}

func TestUnknownVarInSlack(t *testing.T) {
	s := NewSimplex()
	if _, err := s.DefineSlack([]Term{{Var: 5, Coeff: rat(1, 1)}}); err == nil {
		t.Fatalf("DefineSlack with unknown var succeeded, want error")
	}
}

// randomSystem builds a random bounded system and cross-checks feasibility
// against a naive rational Fourier-Motzkin-free check: we simply verify that
// when the solver answers feasible, the model satisfies everything, and when
// it answers infeasible, the explanation is a genuinely conflicting subset
// (checked by re-solving just those bounds with fresh state).
func TestRandomSystemsModelSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		s := NewSimplex()
		nx := 2 + rng.Intn(4)
		xs := make([]int, nx)
		for i := range xs {
			xs[i] = s.NewVar()
		}
		nrows := 1 + rng.Intn(4)
		slacks := make([]int, 0, nrows)
		exprs := make([][]Term, 0, nrows)
		for r := 0; r < nrows; r++ {
			terms := make([]Term, 0, nx)
			for _, x := range xs {
				c := int64(rng.Intn(7)) - 3
				if c != 0 {
					terms = append(terms, Term{x, rat(c, 1)})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{xs[0], rat(1, 1)})
			}
			sv, err := s.DefineSlack(terms)
			if err != nil {
				t.Fatalf("DefineSlack: %v", err)
			}
			slacks = append(slacks, sv)
			exprs = append(exprs, terms)
		}
		type assertedBound struct {
			v       int
			isLower bool
			val     numeric.Delta
		}
		var asserted []assertedBound
		conflict := false
		nbounds := 2 + rng.Intn(8)
		for i := 0; i < nbounds && !conflict; i++ {
			var v int
			if rng.Intn(2) == 0 {
				v = xs[rng.Intn(nx)]
			} else {
				v = slacks[rng.Intn(len(slacks))]
			}
			val := dl(int64(rng.Intn(21)) - 10)
			isLower := rng.Intn(2) == 0
			var c []Tag
			if isLower {
				c = s.AssertLower(v, val, Tag(i))
			} else {
				c = s.AssertUpper(v, val, Tag(i))
			}
			asserted = append(asserted, assertedBound{v, isLower, val})
			if c != nil {
				conflict = true
				break
			}
			if cc := s.Check(); cc != nil {
				conflict = true
			}
		}
		if conflict {
			continue // soundness of conflicts exercised elsewhere
		}
		if c := s.Check(); c != nil {
			t.Fatalf("trial %d: final Check conflict after incremental feasibility", trial)
		}
		m := s.Model()
		// Every row must hold exactly.
		for r, sv := range slacks {
			sum := new(big.Rat)
			for _, term := range exprs[r] {
				sum.Add(sum, new(big.Rat).Mul(term.Coeff, m[term.Var]))
			}
			if sum.Cmp(m[sv]) != 0 {
				t.Fatalf("trial %d: row %d: model violates definition: %v != %v", trial, r, sum, m[sv])
			}
		}
		// Every asserted bound must hold.
		for _, ab := range asserted {
			if ab.isLower && m[ab.v].Cmp(ab.val.Rat()) < 0 {
				t.Fatalf("trial %d: model violates lower bound on %d", trial, ab.v)
			}
			if !ab.isLower && m[ab.v].Cmp(ab.val.Rat()) > 0 {
				t.Fatalf("trial %d: model violates upper bound on %d", trial, ab.v)
			}
		}
	}
}

// TestRandomConflictExplanations verifies that every reported conflict is a
// genuinely infeasible subset by replaying only the explained bounds into a
// fresh solver with the same tableau.
func TestRandomConflictExplanations(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	replayed := 0
	for trial := 0; trial < 300; trial++ {
		build := func() (*Simplex, []int, []int, [][]Term) {
			s := NewSimplex()
			nx := 2 + rng.Intn(3)
			xs := make([]int, nx)
			for i := range xs {
				xs[i] = s.NewVar()
			}
			exprs := [][]Term{}
			slacks := []int{}
			for r := 0; r < 2; r++ {
				terms := []Term{}
				for _, x := range xs {
					c := int64(rng.Intn(5)) - 2
					if c != 0 {
						terms = append(terms, Term{x, rat(c, 1)})
					}
				}
				if len(terms) == 0 {
					terms = append(terms, Term{xs[0], rat(1, 1)})
				}
				sv, err := s.DefineSlack(terms)
				if err != nil {
					t.Fatalf("DefineSlack: %v", err)
				}
				slacks = append(slacks, sv)
				exprs = append(exprs, terms)
			}
			return s, xs, slacks, exprs
		}

		s, xs, slacks, exprs := build()
		type boundReq struct {
			v       int
			isLower bool
			val     numeric.Delta
			tag     Tag
		}
		var reqs []boundReq
		var conflictTags []Tag
		nbounds := 3 + rng.Intn(8)
		for i := 0; i < nbounds; i++ {
			var v int
			if rng.Intn(2) == 0 {
				v = xs[rng.Intn(len(xs))]
			} else {
				v = slacks[rng.Intn(len(slacks))]
			}
			req := boundReq{
				v:       v,
				isLower: rng.Intn(2) == 0,
				val:     dl(int64(rng.Intn(13)) - 6),
				tag:     Tag(i),
			}
			reqs = append(reqs, req)
			var c []Tag
			if req.isLower {
				c = s.AssertLower(req.v, req.val, req.tag)
			} else {
				c = s.AssertUpper(req.v, req.val, req.tag)
			}
			if c == nil {
				c = s.Check()
			}
			if c != nil {
				conflictTags = c
				break
			}
		}
		if conflictTags == nil {
			continue
		}
		replayed++
		// Replay only explained bounds in a fresh solver with an identical
		// tableau; they must conflict on their own.
		s2 := NewSimplex()
		remap := make(map[int]int)
		for _, x := range xs {
			remap[x] = s2.NewVar()
		}
		for r, terms := range exprs {
			nt := make([]Term, len(terms))
			for i, term := range terms {
				nt[i] = Term{remap[term.Var], term.Coeff}
			}
			sv, err := s2.DefineSlack(nt)
			if err != nil {
				t.Fatalf("replay DefineSlack: %v", err)
			}
			remap[slacks[r]] = sv
		}
		inExpl := map[Tag]bool{}
		for _, tag := range conflictTags {
			inExpl[tag] = true
		}
		gotConflict := false
		for _, req := range reqs {
			if !inExpl[req.tag] {
				continue
			}
			var c []Tag
			if req.isLower {
				c = s2.AssertLower(remap[req.v], req.val, req.tag)
			} else {
				c = s2.AssertUpper(remap[req.v], req.val, req.tag)
			}
			if c == nil {
				c = s2.Check()
			}
			if c != nil {
				gotConflict = true
				break
			}
		}
		if !gotConflict {
			t.Fatalf("trial %d: explanation %v is not self-conflicting", trial, conflictTags)
		}
	}
	if replayed == 0 {
		t.Fatalf("no conflicts generated; test ineffective")
	}
}

func TestStatistics(t *testing.T) {
	s := NewSimplex()
	x := s.NewVar()
	y := mustSlack(t, s, []Term{{x, rat(1, 1)}})
	s.AssertLower(y, dl(5), 1)
	s.Check()
	st := s.Statistics()
	if st.Vars != 2 || st.Rows != 1 {
		t.Errorf("Stats = %+v, want 2 vars / 1 row", st)
	}
	if st.Asserts != 1 || st.Checks != 1 {
		t.Errorf("Stats = %+v, want 1 assert / 1 check", st)
	}
}
