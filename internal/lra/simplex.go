// Package lra implements a decision procedure for quantifier-free linear
// real arithmetic: the general simplex algorithm of Dutertre & de Moura
// ("A Fast Linear-Arithmetic Solver for DPLL(T)", CAV 2006).
//
// The solver maintains a tableau of slack-variable definitions over exact
// rationals and a pair of (optionally strict, via delta-rationals) bounds
// per variable. Bounds are asserted incrementally, scopes mirror the SAT
// solver's decision levels, and inconsistencies are explained as minimal
// sets of asserted bound tags, which the SMT layer turns into learnt
// clauses.
//
// Tableau coefficients and variable assignments use the hybrid rational
// numeric.Q: arithmetic stays on an allocation-free int64 fast path and
// promotes to big.Rat per value on overflow. The public API (Term, Model)
// stays on *big.Rat; conversion happens at DefineSlack and Model time.
package lra

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"segrid/internal/numeric"
)

// ErrPivotBudget is returned by CheckBudget and Maximize when the pivot
// budget set with SetMaxPivots is exhausted.
var ErrPivotBudget = errors.New("lra: pivot budget exhausted")

// Tag identifies the assertion that introduced a bound; the SMT layer maps
// tags to SAT literals. Explanations are sets of tags.
type Tag int32

// NoTag marks a static bound that holds unconditionally; static bounds are
// omitted from explanations.
const NoTag Tag = -1

// Term is one summand of a linear expression: Coeff·Var.
type Term struct {
	Var   int
	Coeff *big.Rat
}

// bound is one side of a variable's admissible interval.
type bound struct {
	val numeric.Delta
	tag Tag
	has bool
}

type trailEntry struct {
	v       int
	isLower bool
	old     bound
}

// Stats counts solver work for the evaluation harness.
type Stats struct {
	Vars    int
	Rows    int
	Pivots  int64
	Asserts int64
	Checks  int64
	// FastOps and BigOps count tableau/assignment arithmetic results that
	// stayed on the int64 fast path vs required promoted big.Rat values;
	// their ratio is the hybrid rational's observable promotion rate.
	FastOps int64
	BigOps  int64
}

// Simplex is an incremental LRA feasibility solver. The zero value is not
// usable; construct with NewSimplex.
type Simplex struct {
	nvars  int
	rows   map[int]map[int]numeric.Q // basic var → (nonbasic var → coeff)
	colUse map[int]map[int]bool      // nonbasic var → basic vars using it
	lower  []bound
	upper  []bound
	beta   []numeric.Delta

	trail  []trailEntry
	scopes []int

	// suspect tracks basic variables whose assignment or bounds changed
	// since the last Check; only they can have become bound-violating, so
	// Check scans this set instead of the whole tableau.
	suspect map[int]bool

	stats     Stats
	maxPivots int64
	stop      func() error

	// lastFarkas holds the Farkas coefficients of the most recent conflict
	// explanation, parallel to the returned tags: the explanation's bounds,
	// each scaled by its (positive) coefficient, sum to a contradictory
	// constraint. nil when a participating bound was static (NoTag) and the
	// combination is therefore not reconstructible from tags alone.
	lastFarkas []numeric.Q
}

// NewSimplex constructs an empty solver.
func NewSimplex() *Simplex {
	return &Simplex{
		rows:    make(map[int]map[int]numeric.Q),
		colUse:  make(map[int]map[int]bool),
		suspect: make(map[int]bool),
	}
}

// NewVar introduces a fresh unbounded variable with value 0.
func (s *Simplex) NewVar() int {
	v := s.nvars
	s.nvars++
	s.lower = append(s.lower, bound{})
	s.upper = append(s.upper, bound{})
	s.beta = append(s.beta, numeric.Delta{})
	return v
}

// Statistics returns a snapshot of the work counters.
func (s *Simplex) Statistics() Stats {
	st := s.stats
	st.Vars = s.nvars
	st.Rows = len(s.rows)
	return st
}

// noteQ records whether a freshly computed coefficient stayed on the fast
// path, making the promotion rate observable via Stats.
func (s *Simplex) noteQ(q numeric.Q) {
	if q.IsBig() {
		s.stats.BigOps++
	} else {
		s.stats.FastOps++
	}
}

// noteDelta is noteQ for delta-rational assignment values.
func (s *Simplex) noteDelta(d numeric.Delta) {
	if d.IsBig() {
		s.stats.BigOps++
	} else {
		s.stats.FastOps++
	}
}

// DefineSlack introduces a new basic variable defined as the linear
// combination expr of existing variables and returns it. Definitions must be
// added before any bounds are asserted (the SMT layer rebuilds the tableau
// per check). Variables already basic are substituted by their rows.
func (s *Simplex) DefineSlack(expr []Term) (int, error) {
	row := make(map[int]numeric.Q, len(expr))
	val := numeric.Delta{}
	for _, t := range expr {
		if t.Var < 0 || t.Var >= s.nvars {
			return 0, fmt.Errorf("lra: slack definition references unknown variable %d", t.Var)
		}
		c := numeric.QFromRat(t.Coeff)
		if c.Sign() == 0 {
			continue
		}
		if sub, ok := s.rows[t.Var]; ok {
			// Substitute the basic variable's defining row.
			for v2, c2 := range sub {
				s.addCoeff(row, v2, c.Mul(c2))
			}
		} else {
			s.addCoeff(row, t.Var, c)
		}
	}
	sv := s.NewVar()
	for v, c := range row {
		val = val.Add(s.beta[v].MulQ(c))
		s.useCol(v, sv)
	}
	s.rows[sv] = row
	s.beta[sv] = val
	return sv, nil
}

// addCoeff accumulates c into row[v], dropping the entry when the sum
// cancels to zero. Q values are immutable, so the stored coefficient can
// alias the argument without copying.
func (s *Simplex) addCoeff(row map[int]numeric.Q, v int, c numeric.Q) {
	if old, ok := row[v]; ok {
		sum := old.Add(c)
		s.noteQ(sum)
		if sum.Sign() == 0 {
			delete(row, v)
		} else {
			row[v] = sum
		}
	} else {
		row[v] = c
	}
}

func (s *Simplex) useCol(v, basic int) {
	set, ok := s.colUse[v]
	if !ok {
		set = make(map[int]bool)
		s.colUse[v] = set
	}
	set[basic] = true
}

func (s *Simplex) isBasic(v int) bool {
	_, ok := s.rows[v]
	return ok
}

// Push opens a backtracking scope.
func (s *Simplex) Push() { s.scopes = append(s.scopes, len(s.trail)) }

// Pop discards the n most recent scopes, restoring all bounds asserted in
// them. The variable assignment is kept: relaxing bounds preserves the
// invariant that nonbasic variables satisfy their bounds.
func (s *Simplex) Pop(n int) {
	if n <= 0 {
		return
	}
	if n > len(s.scopes) {
		n = len(s.scopes)
	}
	target := s.scopes[len(s.scopes)-n]
	s.scopes = s.scopes[:len(s.scopes)-n]
	for i := len(s.trail) - 1; i >= target; i-- {
		e := s.trail[i]
		if e.isLower {
			s.lower[e.v] = e.old
		} else {
			s.upper[e.v] = e.old
		}
	}
	s.trail = s.trail[:target]
}

// AssertLower asserts v ≥ d (use a delta component for strict bounds). It
// returns a conflict explanation, or nil.
func (s *Simplex) AssertLower(v int, d numeric.Delta, tag Tag) []Tag {
	s.stats.Asserts++
	if s.lower[v].has && d.Cmp(s.lower[v].val) <= 0 {
		return nil // not tighter
	}
	if s.upper[v].has && d.Cmp(s.upper[v].val) > 0 {
		return s.explainPair(tag, s.upper[v].tag)
	}
	s.trail = append(s.trail, trailEntry{v: v, isLower: true, old: s.lower[v]})
	s.lower[v] = bound{val: d, tag: tag, has: true}
	if s.isBasic(v) {
		s.suspect[v] = true
	} else if s.beta[v].Cmp(d) < 0 {
		s.update(v, d)
	}
	return nil
}

// AssertUpper asserts v ≤ d. It returns a conflict explanation, or nil.
func (s *Simplex) AssertUpper(v int, d numeric.Delta, tag Tag) []Tag {
	s.stats.Asserts++
	if s.upper[v].has && d.Cmp(s.upper[v].val) >= 0 {
		return nil
	}
	if s.lower[v].has && d.Cmp(s.lower[v].val) < 0 {
		return s.explainPair(tag, s.lower[v].tag)
	}
	s.trail = append(s.trail, trailEntry{v: v, isLower: false, old: s.upper[v]})
	s.upper[v] = bound{val: d, tag: tag, has: true}
	if s.isBasic(v) {
		s.suspect[v] = true
	} else if s.beta[v].Cmp(d) > 0 {
		s.update(v, d)
	}
	return nil
}

// explainPair explains a direct bound-vs-bound conflict: the two bounds,
// each with Farkas coefficient 1, form an empty interval (lower > upper).
func (s *Simplex) explainPair(a, b Tag) []Tag {
	out := make([]Tag, 0, 2)
	s.lastFarkas = s.lastFarkas[:0]
	complete := true
	for _, t := range [2]Tag{a, b} {
		if t == NoTag {
			complete = false
			continue
		}
		out = append(out, t)
		s.lastFarkas = append(s.lastFarkas, numeric.QFromInt(1))
	}
	if !complete {
		s.lastFarkas = nil
	}
	return out
}

// LastFarkas returns the Farkas coefficients of the most recent conflict
// explanation, parallel to its tags. The slice is overwritten by the next
// conflict; it is nil when the combination involved a static (NoTag) bound.
func (s *Simplex) LastFarkas() []numeric.Q { return s.lastFarkas }

// update moves nonbasic variable v to value d and adjusts all dependent
// basic variables.
func (s *Simplex) update(v int, d numeric.Delta) {
	diff := d.Sub(s.beta[v])
	for b := range s.colUse[v] {
		if row, ok := s.rows[b]; ok {
			if c, ok := row[v]; ok {
				s.beta[b] = s.beta[b].Add(diff.MulQ(c))
				s.noteDelta(s.beta[b])
				s.suspect[b] = true
			}
		}
	}
	s.beta[v] = d
}

// SetMaxPivots bounds the total pivot steps across all subsequent
// CheckBudget and Maximize calls; n ≤ 0 means unlimited. The budget is
// measured against the cumulative Stats.Pivots counter.
func (s *Simplex) SetMaxPivots(n int64) { s.maxPivots = n }

// SetStop installs a cancellation hook polled once per pivot; a non-nil
// return aborts CheckBudget/Maximize with that error. Pass nil to clear.
func (s *Simplex) SetStop(f func() error) { s.stop = f }

// pollBudget enforces the pivot budget and the stop hook between pivots.
func (s *Simplex) pollBudget() error {
	if s.maxPivots > 0 && s.stats.Pivots >= s.maxPivots {
		return ErrPivotBudget
	}
	if s.stop != nil {
		return s.stop()
	}
	return nil
}

// Check restores the simplex invariant, returning nil when the current
// bounds are satisfiable and a conflict explanation otherwise. Bland's rule
// (minimum variable index) guarantees termination. Check ignores the pivot
// budget and stop hook; interruptible callers must use CheckBudget.
func (s *Simplex) Check() []Tag {
	tags, err := s.checkLoop(false)
	if err != nil {
		// Unreachable: budgets are disabled on this path.
		panic("lra: Check interrupted: " + err.Error())
	}
	return tags
}

// CheckBudget is Check under the pivot budget and stop hook: it polls
// between pivots and aborts with a non-nil error when either fires. The
// tableau is left in a consistent (resumable) state; a subsequent call
// continues the repair. A nil, nil return means feasible.
func (s *Simplex) CheckBudget() ([]Tag, error) {
	return s.checkLoop(true)
}

func (s *Simplex) checkLoop(budgeted bool) ([]Tag, error) {
	s.stats.Checks++
	for {
		if budgeted {
			if err := s.pollBudget(); err != nil {
				return nil, err
			}
		}
		b, below := s.pickViolatedBasic()
		if b < 0 {
			return nil, nil
		}
		row := s.rows[b]
		n := s.pickPivot(row, below)
		if n < 0 {
			return s.explainRow(b, row, below), nil
		}
		var target numeric.Delta
		if below {
			target = s.lower[b].val
		} else {
			target = s.upper[b].val
		}
		s.pivotAndUpdate(b, n, target)
	}
}

// pickViolatedBasic returns the smallest-index basic variable violating a
// bound, and whether it is below its lower bound. Returns (−1, false) when
// the assignment is feasible. Only suspect variables can be violating;
// verified-feasible ones are dropped from the set.
func (s *Simplex) pickViolatedBasic() (int, bool) {
	best := -1
	below := false
	for b := range s.suspect {
		if !s.isBasic(b) {
			delete(s.suspect, b)
			continue
		}
		if s.lower[b].has && s.beta[b].Cmp(s.lower[b].val) < 0 {
			if best < 0 || b < best {
				best, below = b, true
			}
		} else if s.upper[b].has && s.beta[b].Cmp(s.upper[b].val) > 0 {
			if best < 0 || b < best {
				best, below = b, false
			}
		} else {
			delete(s.suspect, b)
		}
	}
	return best, below
}

// pickPivot selects the smallest-index nonbasic variable in the row that can
// compensate the violation, or −1 when none exists.
func (s *Simplex) pickPivot(row map[int]numeric.Q, below bool) int {
	best := -1
	for v, c := range row {
		sign := c.Sign()
		var ok bool
		if below {
			// Need to increase the basic variable.
			ok = (sign > 0 && s.canIncrease(v)) || (sign < 0 && s.canDecrease(v))
		} else {
			ok = (sign > 0 && s.canDecrease(v)) || (sign < 0 && s.canIncrease(v))
		}
		if ok && (best < 0 || v < best) {
			best = v
		}
	}
	return best
}

func (s *Simplex) canIncrease(v int) bool {
	return !s.upper[v].has || s.beta[v].Cmp(s.upper[v].val) < 0
}

func (s *Simplex) canDecrease(v int) bool {
	return !s.lower[v].has || s.beta[v].Cmp(s.lower[v].val) > 0
}

// explainRow builds the conflict explanation for a row whose basic variable
// cannot be repaired: the violated bound plus the binding bound of every
// nonbasic variable in the row. Variables are visited in ascending order so
// explanations — and therefore the learnt clauses and the whole search —
// are deterministic despite the map-based tableau.
func (s *Simplex) explainRow(b int, row map[int]numeric.Q, below bool) []Tag {
	tags := make([]Tag, 0, len(row)+1)
	s.lastFarkas = s.lastFarkas[:0]
	complete := true
	add := func(t Tag, coeff numeric.Q) {
		if t == NoTag {
			complete = false
			return
		}
		tags = append(tags, t)
		s.lastFarkas = append(s.lastFarkas, coeff)
	}
	// Farkas view of the conflict: with the row invariant x_b = Σ aⱼ·xⱼ, the
	// violated bound (coefficient 1) plus each binding bound scaled by |aⱼ|
	// sums to a constraint whose variables cancel and whose right-hand side
	// is negative — 0 ≤ rhs < 0.
	if below {
		add(s.lower[b].tag, numeric.QFromInt(1))
	} else {
		add(s.upper[b].tag, numeric.QFromInt(1))
	}
	vars := make([]int, 0, len(row))
	for v := range row {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		c := row[v]
		if below {
			if c.Sign() > 0 {
				add(s.upper[v].tag, c)
			} else {
				add(s.lower[v].tag, c.Neg())
			}
		} else {
			if c.Sign() > 0 {
				add(s.lower[v].tag, c)
			} else {
				add(s.upper[v].tag, c.Neg())
			}
		}
	}
	if !complete {
		s.lastFarkas = nil
	}
	return tags
}

// pivotAndUpdate performs the combined pivot-and-update step: basic variable
// b leaves the basis at value target, nonbasic n enters.
func (s *Simplex) pivotAndUpdate(b, n int, target numeric.Delta) {
	s.stats.Pivots++
	row := s.rows[b]
	a := row[n]
	theta := target.Sub(s.beta[b]).MulQ(a.Inv())
	s.noteDelta(theta)
	s.beta[b] = target
	s.beta[n] = s.beta[n].Add(theta)
	for other := range s.colUse[n] {
		if other == b {
			continue
		}
		if orow, ok := s.rows[other]; ok {
			if c, ok := orow[n]; ok {
				s.beta[other] = s.beta[other].Add(theta.MulQ(c))
				s.noteDelta(s.beta[other])
				s.suspect[other] = true
			}
		}
	}
	s.pivot(b, n)
	// n entered the basis and may have overshot its own bounds; b left it.
	s.suspect[n] = true
	delete(s.suspect, b)
}

// pivot exchanges basic b with nonbasic n in the tableau.
func (s *Simplex) pivot(b, n int) {
	row := s.rows[b]
	a := row[n] // coefficient of n in b's row
	inv := a.Inv()

	// New row for n: n = (1/a)·b − Σ_{j≠n} (c_j/a)·x_j.
	newRow := make(map[int]numeric.Q, len(row))
	newRow[b] = inv
	for v, c := range row {
		if v == n {
			continue
		}
		nc := c.MulNeg(inv)
		s.noteQ(nc)
		newRow[v] = nc
	}

	// Remove b's row and its column uses.
	delete(s.rows, b)
	for v := range row {
		delete(s.colUse[v], b)
	}

	// Substitute n in every other row that uses it.
	users := s.colUse[n]
	delete(s.colUse, n)
	for other := range users {
		orow, ok := s.rows[other]
		if !ok {
			continue
		}
		k, ok := orow[n]
		if !ok {
			continue
		}
		delete(orow, n)
		for v, c := range newRow {
			sum := k.Mul(c)
			if prev, exists := orow[v]; exists {
				sum = prev.Add(sum)
			}
			s.noteQ(sum)
			if sum.Sign() == 0 {
				delete(orow, v)
				delete(s.colUse[v], other)
			} else {
				orow[v] = sum
				s.useCol(v, other)
			}
		}
	}

	// Install n's row.
	s.rows[n] = newRow
	for v := range newRow {
		s.useCol(v, n)
	}
}

// Model returns a concrete rational value for every variable, choosing a
// positive value for δ small enough that every strict bound remains
// satisfied. It must be called after a successful Check.
func (s *Simplex) Model() []*big.Rat {
	eps := s.chooseEpsilon()
	out := make([]*big.Rat, s.nvars)
	for v := 0; v < s.nvars; v++ {
		out[v] = s.beta[v].Eval(eps)
	}
	return out
}

// chooseEpsilon computes a δ value that keeps every bound satisfied when the
// delta-rationals are collapsed to plain rationals.
func (s *Simplex) chooseEpsilon() *big.Rat {
	eps := big.NewRat(1, 1)
	tighten := func(gapA, gapB numeric.Q) {
		// Constraint: gapA + gapB·δ ≥ 0 holds in delta order
		// (gapA > 0, or gapA == 0 ∧ gapB ≥ 0). If gapB < 0 we need
		// δ ≤ gapA / (−gapB).
		if gapB.Sign() >= 0 {
			return
		}
		limit := gapA.Mul(gapB.Neg().Inv()).Rat()
		if limit.Cmp(eps) < 0 {
			eps.Set(limit)
		}
	}
	for v := 0; v < s.nvars; v++ {
		if s.lower[v].has {
			lo := s.lower[v].val
			tighten(s.beta[v].StdQ().Sub(lo.StdQ()), s.beta[v].InfQ().Sub(lo.InfQ()))
		}
		if s.upper[v].has {
			hi := s.upper[v].val
			tighten(hi.StdQ().Sub(s.beta[v].StdQ()), hi.InfQ().Sub(s.beta[v].InfQ()))
		}
	}
	if eps.Sign() <= 0 {
		// Cannot happen after a successful Check; defend anyway.
		return big.NewRat(1, 1000000)
	}
	// Halve to stay strictly inside open constraints at the limit.
	return eps.Mul(eps, big.NewRat(1, 2))
}

// Value returns the delta-rational assignment of v (diagnostics and tests).
func (s *Simplex) Value(v int) numeric.Delta { return s.beta[v] }

// BoundsString renders v's bounds for diagnostics.
func (s *Simplex) BoundsString(v int) string {
	lo, hi := "-inf", "+inf"
	if s.lower[v].has {
		lo = s.lower[v].val.String()
	}
	if s.upper[v].has {
		hi = s.upper[v].val.String()
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}
