package lra

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
)

func TestMaximizeBox(t *testing.T) {
	// max x + 2y s.t. 0 ≤ x ≤ 3, 0 ≤ y ≤ 4 → 11 at (3,4).
	s := NewSimplex()
	x, y := s.NewVar(), s.NewVar()
	s.AssertLower(x, dl(0), 1)
	s.AssertUpper(x, dl(3), 2)
	s.AssertLower(y, dl(0), 3)
	s.AssertUpper(y, dl(4), 4)
	opt, err := s.Maximize([]Term{{x, rat(1, 1)}, {y, rat(2, 1)}})
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	if opt.Rat().Cmp(rat(11, 1)) != 0 {
		t.Fatalf("optimum = %v, want 11", opt)
	}
	m := s.Model()
	if m[x].Cmp(rat(3, 1)) != 0 || m[y].Cmp(rat(4, 1)) != 0 {
		t.Fatalf("optimizer at (%v,%v), want (3,4)", m[x], m[y])
	}
}

func TestMaximizeWithCoupling(t *testing.T) {
	// max x + y s.t. x + 2y ≤ 6, x ≤ 4, x,y ≥ 0 → (4,1) value 5.
	s := NewSimplex()
	x, y := s.NewVar(), s.NewVar()
	sum := mustSlack(t, s, []Term{{x, rat(1, 1)}, {y, rat(2, 1)}})
	s.AssertUpper(sum, dl(6), 1)
	s.AssertUpper(x, dl(4), 2)
	s.AssertLower(x, dl(0), 3)
	s.AssertLower(y, dl(0), 4)
	opt, err := s.Maximize([]Term{{x, rat(1, 1)}, {y, rat(1, 1)}})
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	if opt.Rat().Cmp(rat(5, 1)) != 0 {
		t.Fatalf("optimum = %v, want 5", opt)
	}
}

func TestMaximizeDegenerate(t *testing.T) {
	// Degenerate vertex: x ≤ 2, y ≤ 2, x + y ≤ 4 (redundant at (2,2)).
	s := NewSimplex()
	x, y := s.NewVar(), s.NewVar()
	sum := mustSlack(t, s, []Term{{x, rat(1, 1)}, {y, rat(1, 1)}})
	s.AssertUpper(x, dl(2), 1)
	s.AssertUpper(y, dl(2), 2)
	s.AssertUpper(sum, dl(4), 3)
	s.AssertLower(x, dl(0), 4)
	s.AssertLower(y, dl(0), 5)
	opt, err := s.Maximize([]Term{{x, rat(3, 1)}, {y, rat(1, 1)}})
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	if opt.Rat().Cmp(rat(8, 1)) != 0 {
		t.Fatalf("optimum = %v, want 8", opt)
	}
}

func TestMaximizeUnbounded(t *testing.T) {
	s := NewSimplex()
	x := s.NewVar()
	s.AssertLower(x, dl(0), 1)
	if _, err := s.Maximize([]Term{{x, rat(1, 1)}}); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestMaximizeInfeasible(t *testing.T) {
	s := NewSimplex()
	x := s.NewVar()
	y := mustSlack(t, s, []Term{{x, rat(1, 1)}})
	s.AssertLower(x, dl(5), 1)
	s.AssertUpper(y, dl(0), 2)
	if _, err := s.Maximize([]Term{{x, rat(1, 1)}}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMinimizeViaNegation(t *testing.T) {
	// min x + y over x + y ≥ 3 with x,y ∈ [0, 5]: −max(−x−y) = 3.
	s := NewSimplex()
	x, y := s.NewVar(), s.NewVar()
	sum := mustSlack(t, s, []Term{{x, rat(1, 1)}, {y, rat(1, 1)}})
	s.AssertLower(sum, dl(3), 1)
	for i, v := range []int{x, y} {
		s.AssertLower(v, dl(0), Tag(10+i))
		s.AssertUpper(v, dl(5), Tag(20+i))
	}
	opt, err := s.Maximize([]Term{{x, rat(-1, 1)}, {y, rat(-1, 1)}})
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	if opt.Rat().Cmp(rat(-3, 1)) != 0 {
		t.Fatalf("optimum = %v, want −3", opt)
	}
}

// TestMaximizeAgainstBruteForce checks random small LPs against vertex
// enumeration over a box with one coupling row.
func TestMaximizeAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(3)
		s := NewSimplex()
		xs := make([]int, n)
		lo := make([]int64, n)
		hi := make([]int64, n)
		for i := range xs {
			xs[i] = s.NewVar()
			lo[i] = int64(rng.Intn(5)) - 2
			hi[i] = lo[i] + int64(rng.Intn(5))
			s.AssertLower(xs[i], dl(lo[i]), Tag(2*i))
			s.AssertUpper(xs[i], dl(hi[i]), Tag(2*i+1))
		}
		// One coupling constraint Σ a_i x_i ≤ rhs with a_i ∈ {0,1,2}.
		coeffs := make([]int64, n)
		terms := []Term{}
		for i := range coeffs {
			coeffs[i] = int64(rng.Intn(3))
			if coeffs[i] != 0 {
				terms = append(terms, Term{xs[i], rat(coeffs[i], 1)})
			}
		}
		var sumBound int64 = int64(rng.Intn(10)) - 2
		hasCoupling := len(terms) > 0
		if hasCoupling {
			sv := mustSlack(t, s, terms)
			s.AssertUpper(sv, dl(sumBound), 100)
		}
		obj := make([]int64, n)
		objTerms := []Term{}
		for i := range obj {
			obj[i] = int64(rng.Intn(7)) - 3
			if obj[i] != 0 {
				objTerms = append(objTerms, Term{xs[i], rat(obj[i], 1)})
			}
		}

		// Brute force over a fine grid of the small integer box (vertices
		// of this LP are at integer or simple fractional points; grid step
		// 1/2 is exact enough for verification via comparison ≤).
		best := new(big.Rat)
		feasible := false
		var walk func(i int, acc []int64)
		walk = func(i int, acc []int64) {
			if i == n {
				var coupled int64
				for k := range acc {
					coupled += coeffs[k] * acc[k]
				}
				if hasCoupling && coupled > 2*sumBound { // acc in half units
					return
				}
				val := big.NewRat(0, 1)
				for k := range acc {
					val.Add(val, big.NewRat(obj[k]*acc[k], 2))
				}
				if !feasible || val.Cmp(best) > 0 {
					best = val
					feasible = true
				}
				return
			}
			for v := 2 * lo[i]; v <= 2*hi[i]; v++ {
				walk(i+1, append(acc, v))
			}
		}
		walk(0, nil)
		if !feasible {
			continue
		}

		opt, err := s.Maximize(objTerms)
		if errors.Is(err, ErrInfeasible) {
			t.Fatalf("trial %d: solver infeasible but grid found points", trial)
		}
		if err != nil {
			t.Fatalf("trial %d: Maximize: %v", trial, err)
		}
		// The LP optimum is ≥ any grid point and the grid contains the
		// half-integral vertices of this constraint system.
		if opt.Rat().Cmp(best) < 0 {
			t.Fatalf("trial %d: LP optimum %v below grid best %v", trial, opt.Rat(), best)
		}
		// And the optimizer's point must be feasible (bounds respected).
		m := s.Model()
		for i := range xs {
			if m[xs[i]].Cmp(rat(lo[i], 1)) < 0 || m[xs[i]].Cmp(rat(hi[i], 1)) > 0 {
				t.Fatalf("trial %d: optimum violates box", trial)
			}
		}
		if hasCoupling {
			sum := new(big.Rat)
			for i := range xs {
				sum.Add(sum, new(big.Rat).Mul(rat(coeffs[i], 1), m[xs[i]]))
			}
			if sum.Cmp(rat(sumBound, 1)) > 0 {
				t.Fatalf("trial %d: optimum violates coupling", trial)
			}
		}
	}
}

// TestMaximizePreservesDeltaStrictness: optimizing respects strict bounds.
func TestMaximizeStrictBound(t *testing.T) {
	s := NewSimplex()
	x := s.NewVar()
	s.AssertLower(x, dl(0), 1)
	s.AssertUpper(x, strictBelow(2), 2) // x < 2
	opt, err := s.Maximize([]Term{{x, rat(1, 1)}})
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	// Supremum is 2 − δ: standard part 2, negative infinitesimal.
	if opt.Rat().Cmp(rat(2, 1)) != 0 || opt.Inf().Sign() >= 0 {
		t.Fatalf("optimum = %v, want 2 − δ", opt)
	}
	m := s.Model()
	if m[x].Cmp(rat(2, 1)) >= 0 {
		t.Fatalf("model x = %v violates strict bound", m[x])
	}
}

func TestObjectiveValueHelper(t *testing.T) {
	s := NewSimplex()
	x := s.NewVar()
	s.AssertLower(x, dl(3), 1)
	s.AssertUpper(x, dl(3), 2)
	if c := s.Check(); c != nil {
		t.Fatalf("Check: %v", c)
	}
	v := s.objectiveValue([]Term{{x, rat(2, 1)}})
	if v.Rat().Cmp(rat(6, 1)) != 0 {
		t.Fatalf("objective value %v, want 6", v)
	}
}
