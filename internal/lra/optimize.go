package lra

import (
	"errors"
	"sort"

	"segrid/internal/numeric"
)

// ErrInfeasible is returned by Maximize when the current bounds are
// infeasible (Check would fail).
var ErrInfeasible = errors.New("lra: infeasible")

// ErrUnbounded is returned by Maximize when the objective can grow without
// limit over the feasible region.
var ErrUnbounded = errors.New("lra: objective unbounded")

// Maximize drives the current feasible assignment to one maximizing the
// linear objective Σ coeff·var, using bounded-variable simplex with
// Bland's rule. The assignment (and therefore Model) is left at the
// optimum. Bounds are not modified. It honors the pivot budget and stop
// hook (SetMaxPivots/SetStop), aborting with their error mid-optimization.
func (s *Simplex) Maximize(obj []Term) (numeric.Delta, error) {
	conflict, err := s.CheckBudget()
	if err != nil {
		return numeric.Delta{}, err
	}
	if conflict != nil {
		return numeric.Delta{}, ErrInfeasible
	}
	for {
		if err := s.pollBudget(); err != nil {
			return numeric.Delta{}, err
		}
		improved, err := s.improveStep(obj)
		if err != nil {
			return numeric.Delta{}, err
		}
		if !improved {
			break
		}
	}
	return s.objectiveValue(obj), nil
}

// objectiveValue evaluates the objective at the current assignment.
func (s *Simplex) objectiveValue(obj []Term) numeric.Delta {
	val := numeric.Delta{}
	for _, t := range obj {
		val = val.Add(s.beta[t.Var].MulQ(numeric.QFromRat(t.Coeff)))
	}
	return val
}

// reducedCosts expresses the objective over nonbasic variables by
// substituting basic variables with their defining rows.
func (s *Simplex) reducedCosts(obj []Term) map[int]numeric.Q {
	costs := make(map[int]numeric.Q)
	add := func(v int, c numeric.Q) {
		if old, ok := costs[v]; ok {
			sum := old.Add(c)
			s.noteQ(sum)
			if sum.Sign() == 0 {
				delete(costs, v)
			} else {
				costs[v] = sum
			}
		} else if c.Sign() != 0 {
			costs[v] = c
		}
	}
	for _, t := range obj {
		tc := numeric.QFromRat(t.Coeff)
		if row, ok := s.rows[t.Var]; ok {
			for v, c := range row {
				add(v, tc.Mul(c))
			}
		} else {
			add(t.Var, tc)
		}
	}
	return costs
}

// improveStep performs one simplex improvement iteration; it reports
// whether the objective strictly improved or a (possibly degenerate) pivot
// was taken, returning false at optimality.
func (s *Simplex) improveStep(obj []Term) (bool, error) {
	costs := s.reducedCosts(obj)
	// Bland's rule: smallest-index eligible entering variable.
	vars := make([]int, 0, len(costs))
	for v := range costs {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, j := range vars {
		c := costs[j]
		increase := c.Sign() > 0
		if increase && !s.canIncrease(j) {
			continue
		}
		if !increase && !s.canDecrease(j) {
			continue
		}
		return s.moveAlong(j, increase)
	}
	return false, nil
}

// moveAlong moves nonbasic variable j in the improving direction as far as
// its own bound or the first blocking basic variable allows.
func (s *Simplex) moveAlong(j int, increase bool) (bool, error) {
	// Maximum step from j's own bound.
	var selfLimit *numeric.Delta
	if increase {
		if s.upper[j].has {
			d := s.upper[j].val.Sub(s.beta[j])
			selfLimit = &d
		}
	} else {
		if s.lower[j].has {
			d := s.beta[j].Sub(s.lower[j].val)
			selfLimit = &d
		}
	}

	// Blocking basic variables: β_B moves by a_Bj·Δ (Δ signed).
	type blocker struct {
		basic  int
		limit  numeric.Delta // max |Δ| allowed
		target numeric.Delta // bound β_B hits
	}
	var best *blocker
	users := make([]int, 0, len(s.colUse[j]))
	for b := range s.colUse[j] {
		users = append(users, b)
	}
	sort.Ints(users)
	for _, b := range users {
		row, ok := s.rows[b]
		if !ok {
			continue
		}
		a, ok := row[j]
		if !ok || a.Sign() == 0 {
			continue
		}
		// Effective direction of β_B: sign(a) if increasing j, −sign(a)
		// otherwise.
		up := (a.Sign() > 0) == increase
		var gap numeric.Delta
		var target numeric.Delta
		if up {
			if !s.upper[b].has {
				continue
			}
			gap = s.upper[b].val.Sub(s.beta[b])
			target = s.upper[b].val
		} else {
			if !s.lower[b].has {
				continue
			}
			gap = s.beta[b].Sub(s.lower[b].val)
			target = s.lower[b].val
		}
		limit := gap.MulQ(a.Abs().Inv())
		if best == nil || limit.Cmp(best.limit) < 0 {
			best = &blocker{basic: b, limit: limit, target: target}
		}
	}

	// Choose the binding constraint.
	if selfLimit != nil && (best == nil || selfLimit.Cmp(best.limit) <= 0) {
		if selfLimit.IsZero() {
			return false, nil // already at the bound; no improvement possible here
		}
		var target numeric.Delta
		if increase {
			target = s.upper[j].val
		} else {
			target = s.lower[j].val
		}
		s.update(j, target)
		return true, nil
	}
	if best == nil {
		return false, ErrUnbounded
	}
	// Pivot the blocking basic out; j enters at the value that puts the
	// basic variable exactly on its bound (possibly a degenerate step).
	s.pivotAndUpdate(best.basic, j, best.target)
	return true, nil
}
