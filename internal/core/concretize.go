package core

import (
	"fmt"
	"math/big"
)

// ExactMeasurementDeltas recomputes, from a feasible Result's exact state
// changes and topology flow deltas, the change the attacker must inject
// into every potential measurement (1-based, index 0 unused). The values
// mirror the model's own arithmetic, so the support restricted to taken
// measurements equals the result's AlteredMeasurements — the invariant the
// integration tests assert before replaying the attack against the real
// WLS estimator.
func ExactMeasurementDeltas(sc *Scenario, res *Result) ([]*big.Rat, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	if !res.Feasible {
		return nil, fmt.Errorf("core: cannot concretize an infeasible result")
	}
	sys := sc.System()
	l := sys.NumLines()
	deltas := make([]*big.Rat, sys.NumMeasurements()+1)
	for i := range deltas {
		deltas[i] = new(big.Rat)
	}
	excluded := make(map[int]bool, len(res.ExcludedLines))
	for _, i := range res.ExcludedLines {
		excluded[i] = true
	}
	included := make(map[int]bool, len(res.IncludedLines))
	for _, i := range res.IncludedLines {
		included[i] = true
	}
	theta := func(bus int) *big.Rat {
		if c, ok := res.StateChanges[bus]; ok {
			return c
		}
		return new(big.Rat)
	}
	for _, ln := range sys.Lines {
		i := ln.ID
		// mapped-after-attack per Eq. 8 with the result's el/il.
		mapped := (sc.inService(i) && !excluded[i]) || included[i]
		flow := new(big.Rat)
		if mapped {
			y := ratFromAdmittance(ln.Admittance)
			diff := new(big.Rat).Sub(theta(ln.From), theta(ln.To))
			flow.Mul(y, diff)
		}
		if dpt, ok := res.TopoFlowDeltas[i]; ok {
			flow.Add(flow, dpt)
		}
		deltas[i] = flow
		deltas[l+i] = new(big.Rat).Neg(flow)
		deltas[2*l+ln.To].Add(deltas[2*l+ln.To], flow)
		deltas[2*l+ln.From].Sub(deltas[2*l+ln.From], flow)
	}
	return deltas, nil
}

// FloatMeasurementDeltas converts ExactMeasurementDeltas to float64 for use
// with the floating-point estimator.
func FloatMeasurementDeltas(sc *Scenario, res *Result) ([]float64, error) {
	exact, err := ExactMeasurementDeltas(sc, res)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(exact))
	for i, r := range exact {
		out[i], _ = r.Float64()
	}
	return out, nil
}
