package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"segrid/internal/grid"
	"segrid/internal/smt"
)

// TestBudgetExpiredDeadline300Bus is the interruptibility acceptance check:
// a CheckContext whose deadline is already expired on a 300-bus scenario
// must return Inconclusive (never hang, never error) with populated Stats,
// well inside one second even under -race.
func TestBudgetExpiredDeadline300Bus(t *testing.T) {
	sys, err := grid.Case("ieee300")
	if err != nil {
		t.Fatalf("Case(ieee300): %v", err)
	}
	sc := NewScenario(sys)
	m, err := NewModel(sc)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()

	start := time.Now()
	res, err := m.CheckContext(ctx)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("expired deadline must not be an error, got %v", err)
	}
	if !res.Inconclusive {
		t.Fatalf("Inconclusive = false on expired deadline, Feasible = %v", res.Feasible)
	}
	if !errors.Is(res.Why, context.DeadlineExceeded) {
		t.Fatalf("Why = %v, want context.DeadlineExceeded", res.Why)
	}
	if res.Stats.BoolVars == 0 {
		t.Fatalf("partial Stats lost the model size: %+v", res.Stats)
	}
	if elapsed > time.Second {
		t.Fatalf("abort took %s, acceptance criterion is < 1s", elapsed)
	}
}

// TestBudgetInconclusiveNotFeasible pins the Result contract: a budget stop
// must never masquerade as an unsat ("attack infeasible") verdict.
func TestBudgetInconclusiveNotFeasible(t *testing.T) {
	sys, err := grid.Case("ieee57")
	if err != nil {
		t.Fatalf("Case(ieee57): %v", err)
	}
	sc := NewScenario(sys)
	// Tighten the attacker's resources so the solver must actually search.
	sc.AnyState = true
	sc.MaxAlteredMeasurements = 3
	sc.MaxCompromisedBuses = 2
	opts := smt.DefaultOptions()
	opts.Budget = smt.Budget{MaxConflicts: 1, MaxPivots: 1}
	sc.Options = &opts
	res, err := Verify(sc)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.Inconclusive {
		// A 57-bus full-measurement model with a one-conflict, one-pivot
		// budget cannot finish; if it somehow did, the contract still holds.
		t.Skipf("solver decided within the tiny budget: feasible=%v", res.Feasible)
	}
	if res.Feasible {
		t.Fatalf("Inconclusive result claims Feasible")
	}
	var be *smt.BudgetError
	if !errors.As(res.Why, &be) {
		t.Fatalf("Why = %v, want a *smt.BudgetError", res.Why)
	}
}
