package core

import "segrid/internal/grid"

// untaken14 lists the measurements not taken in the paper's Section III-I
// case study (Table III): all 54 potential measurements are recorded except
// these.
var untaken14 = []int{5, 10, 14, 19, 22, 27, 30, 35, 43, 52}

// tableIIISecured lists the measurements Table III marks as secured. The
// paper's printed attack vectors contradict this set (Objective 1's second
// solution alters measurement 31 and Objective 2's alters 32, both listed
// as secured), so the case-study helpers default to no secured
// measurements and callers opt in; see EXPERIMENTS.md for the
// reconciliation.
var tableIIISecured = []int{1, 2, 6, 15, 25, 32, 41}

// CaseStudyMeasurements returns the IEEE 14-bus measurement configuration
// of the paper's Section III-I case study: the Table III taken set, all
// measurements accessible, and — if withTableIIISecured — the Table III
// secured set.
func CaseStudyMeasurements(withTableIIISecured bool) *grid.MeasurementConfig {
	meas := grid.NewMeasurementConfig(grid.IEEE14())
	if err := meas.Untake(untaken14...); err != nil {
		panic("core: embedded case-study config invalid: " + err.Error())
	}
	if withTableIIISecured {
		if err := meas.Secure(tableIIISecured...); err != nil {
			panic("core: embedded case-study config invalid: " + err.Error())
		}
	}
	return meas
}

// CaseStudyKnowledge returns the paper's Table II knowledge status: the
// attacker knows every line admittance except lines 3, 7 and 17.
func CaseStudyKnowledge() []bool {
	kn := make([]bool, 21)
	for i := 1; i <= 20; i++ {
		kn[i] = i != 3 && i != 7 && i != 17
	}
	return kn
}

// CaseStudyTopology returns the paper's Table II topology attributes for
// the 14-bus case study: every line in service and part of the fixed core
// topology except lines 5 and 13 (which may be opened), and no line status
// telemetry secured.
func CaseStudyTopology() (inService, fixedLines, securedStatus []bool) {
	const l = 20
	inService = make([]bool, l+1)
	fixedLines = make([]bool, l+1)
	securedStatus = make([]bool, l+1)
	for i := 1; i <= l; i++ {
		inService[i] = true
		fixedLines[i] = i != 5 && i != 13
	}
	return inService, fixedLines, securedStatus
}
