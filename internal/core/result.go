package core

import (
	"context"
	"fmt"
	"math/big"
	"sort"

	"segrid/internal/proof"
	"segrid/internal/smt"
)

// Result is the outcome of an attack verification run. When Feasible is
// true the remaining fields describe one concrete attack (the paper's
// attack vector: the assignments of cz, cb, el, il and the state changes).
type Result struct {
	Feasible bool

	// Inconclusive reports that the solver gave up before deciding —
	// resource budget exhausted or the check was cancelled. Feasible is
	// then meaningless (the attack was neither found nor excluded) and Why
	// explains the cause. Stats still describes the partial work.
	Inconclusive bool

	// Why explains an inconclusive run (see smt.Result.Why); nil otherwise.
	Why error

	// AlteredMeasurements lists the measurement IDs the attacker must
	// inject false data into (cz), ascending.
	AlteredMeasurements []int

	// CompromisedBuses lists the substations hosting those measurements
	// (cb), ascending.
	CompromisedBuses []int

	// ExcludedLines and IncludedLines describe the topology poisoning part
	// of the attack, if any.
	ExcludedLines []int
	IncludedLines []int

	// StateChanges maps bus → Δθ for every corrupted state (exact model
	// values).
	StateChanges map[int]*big.Rat

	// TopoFlowDeltas maps line → the topology-induced flow measurement
	// delta ΔPT the model chose for an excluded/included line (exact
	// values; base-case dependent in reality, free in the model).
	TopoFlowDeltas map[int]*big.Rat

	// Proof identifies the UNSAT certificate covering this verdict when the
	// scenario's solver options carry a proof writer and the attack is
	// infeasible (Feasible and Inconclusive both false). Nil otherwise.
	Proof *proof.Handle

	// Stats reports solver work and model size.
	Stats smt.Stats
}

// StateChangeFloat returns Δθ of a bus as float64 (0 when unchanged).
func (r *Result) StateChangeFloat(bus int) float64 {
	if c, ok := r.StateChanges[bus]; ok {
		f, _ := c.Float64()
		return f
	}
	return 0
}

// Check solves the model in its current scope state and extracts the
// result. It is CheckContext with a background context.
func (m *Model) Check() (*Result, error) {
	return m.CheckContext(context.Background())
}

// CheckContext solves the model under ctx. Cancellation and budget
// exhaustion (see smt.Budget) are not errors: they yield a Result with
// Inconclusive set, partial Stats, and Why carrying the cause.
func (m *Model) CheckContext(ctx context.Context) (*Result, error) {
	res, err := m.solver.CheckContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: attack model check: %w", err)
	}
	return m.extract(res), nil
}

// CheckPortfolioContext solves the model with a portfolio of diversified
// solver instances racing under ctx (see smt.CheckPortfolio): the verdict is
// the same as CheckContext's, but which concrete attack vector or certificate
// is extracted follows the winning worker. Stats.Workers reports the
// effective worker count.
func (m *Model) CheckPortfolioContext(ctx context.Context, po smt.PortfolioOptions) (*Result, error) {
	res, err := m.solver.CheckPortfolio(ctx, po)
	if err != nil {
		return nil, fmt.Errorf("core: attack model check: %w", err)
	}
	return m.extract(res.Result), nil
}

// extract converts the solver's verdict into an attack verification Result,
// reading the attack vector out of a Sat model.
func (m *Model) extract(res *smt.Result) *Result {
	out := &Result{Stats: res.Stats}
	if res.Status == smt.Unsat {
		out.Proof = res.Proof
		return out
	}
	if res.Status != smt.Sat {
		out.Inconclusive = true
		out.Why = res.Why
		return out
	}
	out.Feasible = true
	sys := m.sc.System()
	for id := 1; id <= sys.NumMeasurements(); id++ {
		if m.hasCZ[id] && res.Bool(m.cz[id]) {
			out.AlteredMeasurements = append(out.AlteredMeasurements, id)
		}
	}
	for j := 1; j <= sys.Buses; j++ {
		if res.Bool(m.cb[j]) {
			out.CompromisedBuses = append(out.CompromisedBuses, j)
		}
	}
	out.TopoFlowDeltas = make(map[int]*big.Rat)
	for i := 1; i <= sys.NumLines(); i++ {
		attacked := false
		if m.hasEL[i] && res.Bool(m.el[i]) {
			out.ExcludedLines = append(out.ExcludedLines, i)
			attacked = true
		}
		if m.hasIL[i] && res.Bool(m.il[i]) {
			out.IncludedLines = append(out.IncludedLines, i)
			attacked = true
		}
		if attacked && m.hasDPT[i] {
			out.TopoFlowDeltas[i] = res.Real(m.dpt[i])
		}
	}
	out.StateChanges = make(map[int]*big.Rat)
	for j := 1; j <= sys.Buses; j++ {
		if !m.hasDT[j] {
			continue
		}
		v := res.Real(m.dtheta[j])
		if v.Sign() != 0 {
			out.StateChanges[j] = v
		}
	}
	sort.Ints(out.AlteredMeasurements)
	sort.Ints(out.CompromisedBuses)
	return out
}

// Verify builds the model for the scenario and checks it once. It is the
// package's convenience entry point.
func Verify(sc *Scenario) (*Result, error) {
	return VerifyContext(context.Background(), sc)
}

// VerifyContext is Verify under a context: model construction is not
// interruptible (it is pure encoding-input preparation), but the check
// itself honors ctx and the scenario's solver budget.
func VerifyContext(ctx context.Context, sc *Scenario) (*Result, error) {
	m, err := NewModel(sc)
	if err != nil {
		return nil, err
	}
	return m.CheckContext(ctx)
}
