package core

import (
	"context"

	"segrid/internal/screen"
)

// screenProblem converts a scenario into the screening tier's pre-resolved
// view: per-line attack admissibility is decided here, with the same rules
// the full model uses, so the screen never re-derives scenario policy.
func screenProblem(sc *Scenario) *screen.Problem {
	sys := sc.System()
	nl := sys.NumLines()
	p := &screen.Problem{
		Sys:             sys,
		RefBus:          sc.RefBus,
		Taken:           sc.Meas.Taken,
		Secured:         sc.Meas.Secured,
		Accessible:      sc.Meas.Accessible,
		Known:           make([]bool, nl+1),
		InService:       make([]bool, nl+1),
		CanExclude:      make([]bool, nl+1),
		CanInclude:      make([]bool, nl+1),
		StrictKnowledge: sc.StrictKnowledge,
		Targets:         sc.TargetStates,
		OnlyTargets:     sc.OnlyTargets,
		Untouched:       sc.UntouchedStates,
		AnyState:        sc.AnyState,
		DistinctPairs:   sc.DistinctPairs,
		MinChangeEps:    minChangeEps(sc.MinChange),
	}
	// The screen treats 0 as unlimited; core uses ≤ 0.
	if sc.MaxAlteredMeasurements > 0 {
		p.MaxAltered = sc.MaxAlteredMeasurements
	}
	if sc.MaxCompromisedBuses > 0 {
		p.MaxBuses = sc.MaxCompromisedBuses
	}
	for i := 1; i <= nl; i++ {
		p.Known[i] = sc.knows(i)
		p.InService[i] = sc.inService(i)
		p.CanExclude[i] = sc.canExclude(i)
		p.CanInclude[i] = sc.canInclude(i)
	}
	return p
}

// ScreenScenario runs the LP-relaxation screening tier on a scenario
// without building the SMT model. A definitive verdict (Infeasible or
// FeasibleIntegral) matches what Verify would decide; Inconclusive means
// the caller must fall through to the full model. Errors are reserved for
// malformed scenarios.
func ScreenScenario(ctx context.Context, sc *Scenario, opts screen.Options) (*screen.Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return screen.Check(ctx, screenProblem(sc), opts)
}

// Screen runs the screening tier for this model's scenario. The model's
// solver state (pushed scopes, extra assertions) is NOT consulted — the
// screen answers for the scenario as constructed, so callers layering
// AssertMeasurementsSecured-style refinements must screen a scenario that
// carries them instead.
func (m *Model) Screen(ctx context.Context, opts screen.Options) (*screen.Result, error) {
	return ScreenScenario(ctx, m.sc, opts)
}

// ResultFromScreen converts a definitive screening outcome into the
// package's Result vocabulary (no proof handle — the screen's certificate
// lives in the screen.Result). It returns nil for Inconclusive, which has
// no Result equivalent other than running the full model.
func ResultFromScreen(r *screen.Result) *Result {
	switch r.Verdict {
	case screen.Infeasible:
		return &Result{}
	case screen.FeasibleIntegral:
		a := r.Attack
		return &Result{
			Feasible:            true,
			AlteredMeasurements: a.AlteredMeasurements,
			CompromisedBuses:    a.CompromisedBuses,
			ExcludedLines:       a.ExcludedLines,
			IncludedLines:       a.IncludedLines,
			StateChanges:        a.StateChanges,
			TopoFlowDeltas:      a.TopoFlowDeltas,
		}
	default:
		return nil
	}
}
