// Package core implements the paper's primary contribution: the formal
// verification model for Undetected False Data Injection (UFDI) attacks
// against DC-model state estimation (Section III), including topology
// poisoning (exclusion/inclusion attacks), attacker knowledge,
// accessibility, resource limits and attack goals. A Scenario describes one
// attack instance; Verify (or Model.Check) decides feasibility and, when
// feasible, extracts the attack vector.
package core

import (
	"fmt"

	"segrid/internal/grid"
	"segrid/internal/smt"
)

// Scenario is a complete UFDI attack verification instance. Per-line and
// per-measurement slices are 1-based (index 0 unused); nil slices take the
// documented defaults.
type Scenario struct {
	// Meas carries the system plus the taken/secured/accessible status of
	// every potential measurement (paper parameters mz, sz, az).
	Meas *grid.MeasurementConfig

	// Knowledge marks the line admittances the attacker knows (bd). nil
	// means complete knowledge.
	Knowledge []bool

	// InService marks lines present in the true topology (tl). nil means
	// all lines in service.
	InService []bool

	// FixedLines marks lines in the core topology that are never opened
	// (fl); they cannot be excluded. nil means no line is fixed.
	FixedLines []bool

	// SecuredStatus marks lines whose breaker/switch status telemetry is
	// integrity-protected (sl); they can be neither excluded nor included.
	// nil means no status is protected.
	SecuredStatus []bool

	// AllowExclusion/AllowInclusion enable topology poisoning attacks
	// (Section III-C). When both are false the model reduces to the
	// classical UFDI setting.
	AllowExclusion bool
	AllowInclusion bool

	// MaxAlteredMeasurements is T_CZ (Eq. 22); ≤ 0 means unlimited.
	MaxAlteredMeasurements int

	// MaxCompromisedBuses is T_CB (Eq. 24); ≤ 0 means unlimited.
	MaxCompromisedBuses int

	// RefBus is the angle reference bus; its state cannot be attacked.
	RefBus int

	// TargetStates lists buses whose states the attacker must corrupt
	// (Eq. 25).
	TargetStates []int

	// OnlyTargets additionally forbids corrupting any non-target state
	// ("attack state 12 only" in the paper's Objective 2).
	OnlyTargets bool

	// UntouchedStates lists specific states that must remain correct
	// (a weaker form of OnlyTargets).
	UntouchedStates []int

	// AnyState replaces explicit targets with the goal "at least one
	// (non-reference) state is corrupted" — the attacker model used when
	// synthesizing countermeasures.
	AnyState bool

	// DistinctPairs requires the listed state pairs to change by different
	// amounts (Eq. 26), ruling out island-shift attacks with no relative
	// impact.
	DistinctPairs [][2]int

	// MinChange, when positive, strengthens the attack goal beyond the
	// paper's Eq. 5: a corrupted state must deviate by at least this
	// amount (|Δθ_j| ≥ MinChange), modeling an attacker who needs a
	// *significant* corruption rather than any nonzero one. Zero keeps the
	// paper's semantics. (Extension; see DESIGN.md §5.)
	MinChange float64

	// StrictKnowledge enables an extension beyond the paper's Eq. 17: for
	// a line with unknown admittance the attacker must keep the end-bus
	// state changes equal and cannot poison its status, because otherwise
	// the required measurement adjustments at adjacent buses are
	// incomputable. Off by default (paper-faithful).
	StrictKnowledge bool

	// Solver options; zero value means smt.DefaultOptions.
	Options *smt.Options
}

// NewScenario returns a scenario for the system with every default in the
// paper's "strongest attacker" position: all measurements taken and
// accessible, none secured, full knowledge, no topology attacks, unlimited
// resources, reference bus 1, and no goal (callers set targets or AnyState).
func NewScenario(sys *grid.System) *Scenario {
	return &Scenario{
		Meas:   grid.NewMeasurementConfig(sys),
		RefBus: 1,
	}
}

// System returns the scenario's network.
func (sc *Scenario) System() *grid.System { return sc.Meas.System() }

// lineFlag reads a per-line flag slice with a default.
func lineFlag(s []bool, id int, def bool) bool {
	if s == nil {
		return def
	}
	return s[id]
}

// knows reports whether the attacker knows line id's admittance.
func (sc *Scenario) knows(id int) bool { return lineFlag(sc.Knowledge, id, true) }

// inService reports whether line id is in the true topology.
func (sc *Scenario) inService(id int) bool { return lineFlag(sc.InService, id, true) }

// fixed reports whether line id belongs to the core topology.
func (sc *Scenario) fixed(id int) bool { return lineFlag(sc.FixedLines, id, false) }

// statusSecured reports whether line id's status telemetry is protected.
func (sc *Scenario) statusSecured(id int) bool { return lineFlag(sc.SecuredStatus, id, false) }

// canExclude reports whether an exclusion attack on line id is admissible
// (Eq. 9 preconditions plus the scenario switch).
func (sc *Scenario) canExclude(id int) bool {
	return sc.AllowExclusion && sc.inService(id) && !sc.fixed(id) && !sc.statusSecured(id)
}

// canInclude reports whether an inclusion attack on line id is admissible
// (Eq. 10 preconditions plus the scenario switch).
func (sc *Scenario) canInclude(id int) bool {
	return sc.AllowInclusion && !sc.inService(id) && !sc.statusSecured(id)
}

// validate checks scenario consistency.
func (sc *Scenario) validate() error {
	if sc.Meas == nil {
		return fmt.Errorf("core: scenario has no measurement configuration")
	}
	sys := sc.System()
	l, b := sys.NumLines(), sys.Buses
	checkLineSlice := func(name string, s []bool) error {
		if s != nil && len(s) != l+1 {
			return fmt.Errorf("core: %s has length %d, want %d (1-based per line)", name, len(s), l+1)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		s    []bool
	}{
		{"Knowledge", sc.Knowledge},
		{"InService", sc.InService},
		{"FixedLines", sc.FixedLines},
		{"SecuredStatus", sc.SecuredStatus},
	} {
		if err := checkLineSlice(c.name, c.s); err != nil {
			return err
		}
	}
	if sc.RefBus < 1 || sc.RefBus > b {
		return fmt.Errorf("core: reference bus %d out of range 1..%d", sc.RefBus, b)
	}
	for _, t := range sc.TargetStates {
		if t < 1 || t > b {
			return fmt.Errorf("core: target state %d out of range 1..%d", t, b)
		}
		if t == sc.RefBus {
			return fmt.Errorf("core: target state %d is the reference bus", t)
		}
	}
	for _, t := range sc.UntouchedStates {
		if t < 1 || t > b {
			return fmt.Errorf("core: untouched state %d out of range 1..%d", t, b)
		}
	}
	for _, p := range sc.DistinctPairs {
		for _, t := range p {
			if t < 1 || t > b {
				return fmt.Errorf("core: distinct-pair state %d out of range 1..%d", t, b)
			}
		}
	}
	if sc.AnyState && len(sc.TargetStates) > 0 {
		return fmt.Errorf("core: AnyState and TargetStates are mutually exclusive")
	}
	if sc.MinChange < 0 {
		return fmt.Errorf("core: MinChange must be non-negative, got %v", sc.MinChange)
	}
	return nil
}
