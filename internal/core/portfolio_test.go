package core

import (
	"context"
	"testing"

	"segrid/internal/smt"
)

// TestPortfolioAttackVerification pins the portfolio entry to the sequential
// verdicts on the case-study model: the unprotected grid admits an attack
// (with a concrete vector extracted from the winner's model), and the paper's
// scenario-2 architecture makes the portfolio answer Unsat just like a
// sequential check.
func TestPortfolioAttackVerification(t *testing.T) {
	ctx := context.Background()
	sc := NewScenario(CaseStudyMeasurements(false).System())
	sc.Meas = CaseStudyMeasurements(false)
	sc.AnyState = true

	m, err := NewModel(sc)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	res, err := m.CheckPortfolioContext(ctx, smt.PortfolioOptions{Workers: 4})
	if err != nil {
		t.Fatalf("CheckPortfolioContext: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("unprotected grid must admit an attack")
	}
	if len(res.AlteredMeasurements) == 0 || len(res.CompromisedBuses) == 0 {
		t.Fatalf("feasible portfolio result carries no attack vector: %+v", res)
	}
	if res.Stats.Workers != 4 {
		t.Fatalf("Stats.Workers = %d, want 4", res.Stats.Workers)
	}

	m.Solver().Push()
	if err := m.AssertBusesSecured([]int{1, 3, 6, 8, 9}); err != nil {
		t.Fatalf("AssertBusesSecured: %v", err)
	}
	res, err = m.CheckPortfolioContext(ctx, smt.PortfolioOptions{Workers: 4})
	if err != nil {
		t.Fatalf("CheckPortfolioContext: %v", err)
	}
	if res.Feasible || res.Inconclusive {
		t.Fatalf("paper architecture must make the model unsat, got %+v", res)
	}
	if err := m.Solver().Pop(); err != nil {
		t.Fatalf("Pop: %v", err)
	}

	seq, err := m.Check()
	if err != nil {
		t.Fatalf("Check after portfolio: %v", err)
	}
	if !seq.Feasible {
		t.Fatalf("sequential check after portfolio calls must still find the attack")
	}
}
