package core

import (
	"context"
	"fmt"
	"math"
	"math/big"

	"segrid/internal/grid"
	"segrid/internal/lpbuild"
	"segrid/internal/smt"
)

// ratFromAdmittance converts a line admittance to an exact small rational;
// see lpbuild.AdmittanceRat, which is shared with the LP screening tier so
// that both models reason about identical rational admittances.
func ratFromAdmittance(y float64) *big.Rat {
	return lpbuild.AdmittanceRat(y)
}

// Model is the UFDI attack verification model built over the SMT solver.
// It exposes the solver's Push/Pop so the countermeasure synthesis loop
// (Section IV, Algorithm 1) can layer candidate security architectures on
// top of a fixed attack model. The solver is incremental: the attack
// constraint system (Eqs. 5–26) is lowered into one persistent SAT+simplex
// instance at the first Check, and later Checks — including the per-candidate
// push/assert/pop cycles of the synthesis loop — reuse that instance and the
// clauses it has learnt, re-encoding nothing.
type Model struct {
	sc     *Scenario
	solver *smt.Solver

	// 1-based variable tables; zero values mean "not created".
	dtheta []smt.RealVar // per bus; reference bus has none
	hasDT  []bool
	cx     []smt.BoolVar // per bus; reference bus has none
	hasCX  []bool
	cz     []smt.BoolVar // per measurement; only taken ones exist
	hasCZ  []bool
	cb     []smt.BoolVar // per bus
	el     []smt.BoolVar // per line; only admissible exclusions exist
	hasEL  []bool
	il     []smt.BoolVar // per line; only admissible inclusions exist
	hasIL  []bool
	dpt    []smt.RealVar // per line; topology-induced flow delta ΔPT_i
	hasDPT []bool

	flowExpr []*smt.LinExpr // per line: total flow measurement delta ΔPL_i
	busExpr  []*smt.LinExpr // per bus: consumption measurement delta ΔPB_j
}

// NewModel validates the scenario and constructs the constraint system
// (Eqs. 5–26).
func NewModel(sc *Scenario) (*Model, error) {
	return NewModelContext(context.Background(), sc)
}

// NewModelContext is NewModel with cancellation: construction checks ctx
// between build stages and abandons the encoding with ctx.Err() once the
// context is done. Encoding a large case is the most expensive
// non-solve step on the service path (pool misses pay it), so a build queued
// behind a cancelled or deadline-expired request must stop instead of
// completing dead work.
func NewModelContext(ctx context.Context, sc *Scenario) (*Model, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	opts := smt.DefaultOptions()
	if sc.Options != nil {
		opts = *sc.Options
	}
	sys := sc.System()
	l, b := sys.NumLines(), sys.Buses
	m := &Model{
		sc:       sc,
		solver:   smt.NewSolver(opts),
		dtheta:   make([]smt.RealVar, b+1),
		hasDT:    make([]bool, b+1),
		cx:       make([]smt.BoolVar, b+1),
		hasCX:    make([]bool, b+1),
		cz:       make([]smt.BoolVar, sys.NumMeasurements()+1),
		hasCZ:    make([]bool, sys.NumMeasurements()+1),
		cb:       make([]smt.BoolVar, b+1),
		el:       make([]smt.BoolVar, l+1),
		hasEL:    make([]bool, l+1),
		il:       make([]smt.BoolVar, l+1),
		hasIL:    make([]bool, l+1),
		dpt:      make([]smt.RealVar, l+1),
		hasDPT:   make([]bool, l+1),
		flowExpr: make([]*smt.LinExpr, l+1),
		busExpr:  make([]*smt.LinExpr, b+1),
	}
	stages := []func(){
		m.buildStateVars,
		m.buildLines,
		m.buildBusExprs,
		m.buildMeasurementConstraints,
		m.buildKnowledgeConstraints,
		m.buildBusCompromise,
		m.buildResourceLimits,
		m.buildGoal,
	}
	for _, stage := range stages {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stage()
	}
	return m, nil
}

// Solver exposes the underlying SMT solver (for Push/Pop layering).
func (m *Model) Solver() *smt.Solver { return m.solver }

// minChangeEps is the exact rational MinChange threshold (nil when the
// extension is off). Rounded toward a small exact rational; the magnitude
// threshold does not need to be bit-exact with the float input, but the
// full model and the LP screen must agree on it, so both go through here.
func minChangeEps(minChange float64) *big.Rat {
	if minChange <= 0 {
		return nil
	}
	return big.NewRat(int64(math.Round(minChange*1e9)), 1_000_000_000)
}

// thetaExpr returns a fresh expression coeff·Δθ_bus, empty for the
// reference bus (whose angle change is identically 0).
func (m *Model) addTheta(e *smt.LinExpr, coeff *big.Rat, bus int) {
	if !m.hasDT[bus] {
		return
	}
	e.Term(coeff, m.dtheta[bus])
}

// buildStateVars creates Δθ and cx per non-reference bus and asserts Eq. 5:
// cx_j ↔ Δθ_j ≠ 0 — or, with the MinChange extension, cx_j ↔ |Δθ_j| ≥ ε
// (a state counts as attacked only when its deviation is significant;
// sub-threshold drift is tolerated on non-target states).
func (m *Model) buildStateVars() {
	sys := m.sc.System()
	eps := minChangeEps(m.sc.MinChange)
	for j := 1; j <= sys.Buses; j++ {
		if j == m.sc.RefBus {
			continue
		}
		m.dtheta[j] = m.solver.RealVar(fmt.Sprintf("dtheta_%d", j))
		m.hasDT[j] = true
		m.cx[j] = m.solver.BoolVar(fmt.Sprintf("cx_%d", j))
		m.hasCX[j] = true
		theta := smt.NewLinExpr().TermInt(1, m.dtheta[j])
		if eps != nil {
			significant := smt.Or(
				smt.LE(theta, new(big.Rat).Neg(eps)),
				smt.GE(theta, eps),
			)
			m.solver.Assert(smt.Iff(smt.B(m.cx[j]), significant))
		} else {
			m.solver.Assert(smt.Iff(smt.B(m.cx[j]), smt.NeqZero(theta)))
		}
	}
}

// buildLines creates per-line topology attack variables and the total flow
// delta expressions (Eqs. 6–13).
func (m *Model) buildLines() {
	sys := m.sc.System()
	for _, ln := range sys.Lines {
		i := ln.ID
		y := ratFromAdmittance(ln.Admittance)
		excl := m.sc.canExclude(i)
		incl := m.sc.canInclude(i)

		// Static state-induced delta expression ld·(Δθ_from − Δθ_to).
		stateDelta := smt.NewLinExpr()
		m.addTheta(stateDelta, y, ln.From)
		m.addTheta(stateDelta, new(big.Rat).Neg(y), ln.To)

		if !excl && !incl {
			if m.sc.inService(i) {
				// Always mapped: ΔPL_i is the pure state-induced change.
				m.flowExpr[i] = stateDelta
			} else {
				// Not in service and not includable: no flow, no change.
				m.flowExpr[i] = smt.NewLinExpr()
			}
			continue
		}

		// Topology-attackable line: ΔPL_i = ΔPS_i + ΔPT_i with auxiliary
		// real variables (Eq. 13).
		dps := m.solver.RealVar(fmt.Sprintf("dps_%d", i))
		dpt := m.solver.RealVar(fmt.Sprintf("dpt_%d", i))
		m.dpt[i] = dpt
		m.hasDPT[i] = true
		m.flowExpr[i] = smt.NewLinExpr().TermInt(1, dps).TermInt(1, dpt)

		// attacked := el_i (exclusion) or il_i (inclusion); the two cases
		// are mutually exclusive for a given line because exclusion
		// requires tl_i and inclusion ¬tl_i (Eqs. 9, 10).
		var attacked smt.Formula
		if excl {
			m.el[i] = m.solver.BoolVar(fmt.Sprintf("el_%d", i))
			m.hasEL[i] = true
			attacked = smt.B(m.el[i])
		} else {
			m.il[i] = m.solver.BoolVar(fmt.Sprintf("il_%d", i))
			m.hasIL[i] = true
			attacked = smt.B(m.il[i])
		}

		// Eqs. 11, 12: topology-induced delta is nonzero exactly under an
		// exclusion/inclusion attack (its magnitude is base-case dependent
		// and therefore free).
		dptExpr := smt.NewLinExpr().TermInt(1, dpt)
		m.solver.Assert(smt.Iff(attacked, smt.NeqZero(dptExpr)))

		// Mapped-topology state coupling (Eqs. 6, 7):
		//   mapped  → ΔPS_i = ld(Δθ_from − Δθ_to)
		//   ¬mapped → ΔPS_i = 0
		// For an in-service line mapped ≡ ¬el_i; for an out-of-service
		// line mapped ≡ il_i (Eq. 8 with constant tl_i folded in).
		coupled := stateDelta.Clone().TermInt(-1, dps) // ld(Δθf−Δθt) − ΔPS = 0
		zeroed := smt.NewLinExpr().TermInt(1, dps)
		var mapped smt.Formula
		if excl {
			mapped = smt.Not(smt.B(m.el[i]))
		} else {
			mapped = smt.B(m.il[i])
		}
		m.solver.Assert(smt.Implies(mapped, smt.EqZero(coupled)))
		m.solver.Assert(smt.Implies(smt.Not(mapped), smt.EqZero(zeroed)))
	}
}

// buildBusExprs assembles ΔPB_j = Σ incoming ΔPL − Σ outgoing ΔPL (Eq. 14).
func (m *Model) buildBusExprs() {
	sys := m.sc.System()
	one := big.NewRat(1, 1)
	minusOne := big.NewRat(-1, 1)
	for j := 1; j <= sys.Buses; j++ {
		e := smt.NewLinExpr()
		for _, id := range sys.InLines(j) {
			e.AddExpr(one, m.flowExpr[id])
		}
		for _, id := range sys.OutLines(j) {
			e.AddExpr(minusOne, m.flowExpr[id])
		}
		m.busExpr[j] = e
	}
}

// measurementDelta returns the delta expression of a measurement ID. The
// backward flow's delta is the negation of the forward one; only its
// (non-)zeroness matters, so the forward expression is reused.
func (m *Model) measurementDelta(id int) (*smt.LinExpr, error) {
	sys := m.sc.System()
	kind, ref, err := sys.DecodeMeas(id)
	if err != nil {
		return nil, err
	}
	switch kind {
	case grid.MeasForwardFlow, grid.MeasBackwardFlow:
		return m.flowExpr[ref], nil
	default:
		return m.busExpr[ref], nil
	}
}

// buildMeasurementConstraints creates cz per taken measurement and asserts
// Eqs. 15, 16 and 19.
func (m *Model) buildMeasurementConstraints() {
	sys := m.sc.System()
	meas := m.sc.Meas
	for id := 1; id <= sys.NumMeasurements(); id++ {
		if !meas.Taken[id] {
			continue // cz_id is identically false; Eq. 16 needs mz.
		}
		v := m.solver.BoolVar(fmt.Sprintf("cz_%d", id))
		m.cz[id] = v
		m.hasCZ[id] = true
		delta, err := m.measurementDelta(id)
		if err != nil {
			// DecodeMeas cannot fail for 1..m by construction.
			panic("core: internal measurement decode error: " + err.Error())
		}
		// Eqs. 15+16: a taken measurement is altered iff its value must
		// change.
		m.solver.Assert(smt.Iff(smt.B(v), smt.NeqZero(delta)))
		// Eq. 19: alteration needs access and no integrity protection.
		if !meas.Accessible[id] || meas.Secured[id] {
			m.solver.Assert(smt.Not(smt.B(v)))
		}
	}
}

// buildKnowledgeConstraints asserts Eq. 17 (and the strict extension).
func (m *Model) buildKnowledgeConstraints() {
	sys := m.sc.System()
	for _, ln := range sys.Lines {
		if m.sc.knows(ln.ID) {
			continue
		}
		// Eq. 17: without the admittance, the attacker cannot compute the
		// required flow changes.
		m.solver.Assert(smt.Not(m.czFormula(sys.ForwardFlowMeas(ln.ID))))
		m.solver.Assert(smt.Not(m.czFormula(sys.BackwardFlowMeas(ln.ID))))
		if m.sc.StrictKnowledge {
			// Extension: adjustments to adjacent bus consumptions are
			// equally incomputable, so the relative state change across
			// the line must vanish and its status cannot be poisoned.
			diff := smt.NewLinExpr()
			m.addTheta(diff, big.NewRat(1, 1), ln.From)
			m.addTheta(diff, big.NewRat(-1, 1), ln.To)
			m.solver.Assert(smt.EqZero(diff))
			if m.hasEL[ln.ID] {
				m.solver.Assert(smt.Not(smt.B(m.el[ln.ID])))
			}
			if m.hasIL[ln.ID] {
				m.solver.Assert(smt.Not(smt.B(m.il[ln.ID])))
			}
		}
	}
}

// czFormula returns cz_id as a formula; untaken measurements are constant
// false.
func (m *Model) czFormula(id int) smt.Formula {
	if !m.hasCZ[id] {
		return smt.False()
	}
	return smt.B(m.cz[id])
}

// buildBusCompromise creates cb per bus with cb_j ↔ ∨ cz homed at j
// (Eq. 23 plus the converse, which keeps reported bus sets tight).
func (m *Model) buildBusCompromise() {
	sys := m.sc.System()
	for j := 1; j <= sys.Buses; j++ {
		m.cb[j] = m.solver.BoolVar(fmt.Sprintf("cb_%d", j))
		any := make([]smt.Formula, 0, 4)
		for _, id := range sys.MeasAtBus(j) {
			if m.hasCZ[id] {
				any = append(any, smt.B(m.cz[id]))
			}
		}
		m.solver.Assert(smt.Iff(smt.B(m.cb[j]), smt.Or(any...)))
	}
}

// buildResourceLimits asserts Eqs. 22 and 24.
func (m *Model) buildResourceLimits() {
	sys := m.sc.System()
	if k := m.sc.MaxAlteredMeasurements; k > 0 {
		fs := make([]smt.Formula, 0, sys.NumMeasurements())
		for id := 1; id <= sys.NumMeasurements(); id++ {
			if m.hasCZ[id] {
				fs = append(fs, smt.B(m.cz[id]))
			}
		}
		m.solver.AssertAtMostK(fs, k)
	}
	if k := m.sc.MaxCompromisedBuses; k > 0 {
		fs := make([]smt.Formula, 0, sys.Buses)
		for j := 1; j <= sys.Buses; j++ {
			fs = append(fs, smt.B(m.cb[j]))
		}
		m.solver.AssertAtMostK(fs, k)
	}
}

// buildGoal asserts the attack objective (Eqs. 25, 26).
func (m *Model) buildGoal() {
	sys := m.sc.System()
	inTargets := make(map[int]bool, len(m.sc.TargetStates))
	for _, t := range m.sc.TargetStates {
		inTargets[t] = true
		m.solver.Assert(smt.B(m.cx[t]))
	}
	if m.sc.OnlyTargets {
		for j := 1; j <= sys.Buses; j++ {
			if m.hasCX[j] && !inTargets[j] {
				m.solver.Assert(smt.Not(smt.B(m.cx[j])))
			}
		}
	}
	for _, j := range m.sc.UntouchedStates {
		if m.hasCX[j] {
			m.solver.Assert(smt.Not(smt.B(m.cx[j])))
		}
	}
	if m.sc.AnyState {
		fs := make([]smt.Formula, 0, sys.Buses)
		for j := 1; j <= sys.Buses; j++ {
			if m.hasCX[j] {
				fs = append(fs, smt.B(m.cx[j]))
			}
		}
		m.solver.Assert(smt.Or(fs...))
	}
	for _, p := range m.sc.DistinctPairs {
		diff := smt.NewLinExpr()
		m.addTheta(diff, big.NewRat(1, 1), p[0])
		m.addTheta(diff, big.NewRat(-1, 1), p[1])
		m.solver.Assert(smt.NeqZero(diff))
	}
}

// AssertMaxAlteredMeasurements adds, in the solver's current scope, the
// Eq. 22 cardinality bound Σ cz_i ≤ k. Layering a bound tighter than the
// scenario's base MaxMeasurements (or onto an unbounded base) is sound: the
// scoped constraint only shrinks the feasible set and is retracted on Pop.
// Loosening a base bound this way is NOT possible — base constraints stay
// asserted — so callers must rebuild the model for a larger budget. k must
// be positive.
func (m *Model) AssertMaxAlteredMeasurements(k int) error {
	if k <= 0 {
		return fmt.Errorf("core: scoped measurement bound must be positive, got %d", k)
	}
	sys := m.sc.System()
	fs := make([]smt.Formula, 0, sys.NumMeasurements())
	for id := 1; id <= sys.NumMeasurements(); id++ {
		if m.hasCZ[id] {
			fs = append(fs, smt.B(m.cz[id]))
		}
	}
	m.solver.AssertAtMostK(fs, k)
	return nil
}

// AssertMaxCompromisedBuses adds, in the solver's current scope, the Eq. 24
// cardinality bound Σ cb_j ≤ k. The same tightening-only caveat as
// AssertMaxAlteredMeasurements applies. k must be positive.
func (m *Model) AssertMaxCompromisedBuses(k int) error {
	if k <= 0 {
		return fmt.Errorf("core: scoped bus bound must be positive, got %d", k)
	}
	sys := m.sc.System()
	fs := make([]smt.Formula, 0, sys.Buses)
	for j := 1; j <= sys.Buses; j++ {
		fs = append(fs, smt.B(m.cb[j]))
	}
	m.solver.AssertAtMostK(fs, k)
	return nil
}

// AssertMeasurementsSecured adds, in the solver's current scope, the
// constraint that the given individual measurements are integrity
// protected: their cz variables are forced false. Used by the
// measurement-granular synthesis loop.
func (m *Model) AssertMeasurementsSecured(ids []int) error {
	sys := m.sc.System()
	for _, id := range ids {
		if id < 1 || id > sys.NumMeasurements() {
			return fmt.Errorf("core: measurement %d out of range 1..%d", id, sys.NumMeasurements())
		}
		if m.hasCZ[id] {
			m.solver.Assert(smt.Not(smt.B(m.cz[id])))
		}
	}
	return nil
}

// AssertBusesSecured adds, in the solver's current scope, the constraints
// that every taken measurement homed at the given buses is integrity
// protected (Eq. 28 applied to the attack model): their cz variables are
// forced false. Used inside Push/Pop by the synthesis loop.
func (m *Model) AssertBusesSecured(buses []int) error {
	sys := m.sc.System()
	for _, j := range buses {
		if j < 1 || j > sys.Buses {
			return fmt.Errorf("core: bus %d out of range 1..%d", j, sys.Buses)
		}
		for _, id := range sys.MeasAtBus(j) {
			if m.hasCZ[id] {
				m.solver.Assert(smt.Not(smt.B(m.cz[id])))
			}
		}
	}
	return nil
}
