package core

import (
	"reflect"
	"testing"

	"segrid/internal/grid"
	"segrid/internal/smt"
)

func verify(t *testing.T, sc *Scenario) *Result {
	t.Helper()
	res, err := Verify(sc)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return res
}

// TestObjective2Exact reproduces the paper's Attack Objective 2 exactly:
// attacking state 12 alone requires altering measurements 12, 32, 39, 46
// and 53.
func TestObjective2Exact(t *testing.T) {
	sc := NewScenario(grid.IEEE14())
	sc.Meas = CaseStudyMeasurements(false)
	sc.TargetStates = []int{12}
	sc.OnlyTargets = true
	res := verify(t, sc)
	if !res.Feasible {
		t.Fatalf("objective 2 infeasible, paper says feasible")
	}
	want := []int{12, 32, 39, 46, 53}
	if !reflect.DeepEqual(res.AlteredMeasurements, want) {
		t.Fatalf("altered = %v, want %v (paper Section III-I)", res.AlteredMeasurements, want)
	}
	wantBuses := []int{6, 12, 13}
	if !reflect.DeepEqual(res.CompromisedBuses, wantBuses) {
		t.Fatalf("buses = %v, want %v", res.CompromisedBuses, wantBuses)
	}
	if _, ok := res.StateChanges[12]; !ok {
		t.Fatalf("state 12 not in StateChanges")
	}
	if len(res.StateChanges) != 1 {
		t.Fatalf("StateChanges = %v, want only state 12", res.StateChanges)
	}
}

// TestObjective2Secured46 reproduces: securing measurement 46 makes the
// attack impossible.
func TestObjective2Secured46(t *testing.T) {
	sc := NewScenario(grid.IEEE14())
	sc.Meas = CaseStudyMeasurements(false)
	if err := sc.Meas.Secure(46); err != nil {
		t.Fatalf("Secure: %v", err)
	}
	sc.TargetStates = []int{12}
	sc.OnlyTargets = true
	if res := verify(t, sc); res.Feasible {
		t.Fatalf("objective 2 feasible with measurement 46 secured, paper says infeasible")
	}
}

// TestObjective2TopologyPoisoning reproduces: with topology poisoning the
// attacker excludes line 13 and alters measurements 12, 13, 32, 33, 39, 53,
// evading the protection of measurement 46.
func TestObjective2TopologyPoisoning(t *testing.T) {
	sc := NewScenario(grid.IEEE14())
	sc.Meas = CaseStudyMeasurements(false)
	if err := sc.Meas.Secure(46); err != nil {
		t.Fatalf("Secure: %v", err)
	}
	sc.TargetStates = []int{12}
	sc.OnlyTargets = true
	sc.AllowExclusion = true
	sc.AllowInclusion = true
	sc.InService, sc.FixedLines, sc.SecuredStatus = CaseStudyTopology()
	res := verify(t, sc)
	if !res.Feasible {
		t.Fatalf("topology-poisoning attack infeasible, paper says feasible")
	}
	if !reflect.DeepEqual(res.ExcludedLines, []int{13}) {
		t.Fatalf("excluded = %v, want [13]", res.ExcludedLines)
	}
	want := []int{12, 13, 32, 33, 39, 53}
	if !reflect.DeepEqual(res.AlteredMeasurements, want) {
		t.Fatalf("altered = %v, want %v", res.AlteredMeasurements, want)
	}
	if len(res.IncludedLines) != 0 {
		t.Fatalf("unexpected inclusions %v", res.IncludedLines)
	}
}

// objective1Scenario builds the paper's Attack Objective 1 configuration:
// Table III taken and secured sets, Table II knowledge (lines 3, 7, 17
// unknown), targets 9 and 10.
func objective1Scenario(cz, cb int, distinct bool) *Scenario {
	sc := NewScenario(grid.IEEE14())
	sc.Meas = CaseStudyMeasurements(true)
	sc.Knowledge = CaseStudyKnowledge()
	sc.TargetStates = []int{9, 10}
	sc.MaxAlteredMeasurements = cz
	sc.MaxCompromisedBuses = cb
	if distinct {
		sc.DistinctPairs = [][2]int{{9, 10}}
	}
	return sc
}

// TestObjective1Distinct reproduces the paper's Objective 1: with distinct
// change amounts the attack is feasible within 16 measurements / 7 buses
// and infeasible with only 6 buses.
func TestObjective1Distinct(t *testing.T) {
	res := verify(t, objective1Scenario(16, 7, true))
	if !res.Feasible {
		t.Fatalf("16 meas / 7 buses / distinct infeasible, paper says feasible")
	}
	if len(res.AlteredMeasurements) > 16 || len(res.CompromisedBuses) > 7 {
		t.Fatalf("attack vector exceeds limits: %d meas, %d buses",
			len(res.AlteredMeasurements), len(res.CompromisedBuses))
	}
	if verify(t, objective1Scenario(16, 6, true)).Feasible {
		t.Fatalf("distinct attack feasible within 6 buses, paper says unsat")
	}
}

// forceVector constrains a model to alter exactly the given measurement set
// by pinning every cz variable, then checks satisfiability. SAT means the
// vector is an admissible attack under the scenario's constraints.
func vectorAdmissible(t *testing.T, sc *Scenario, measSet []int) bool {
	t.Helper()
	m, err := NewModel(sc)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	in := make(map[int]bool, len(measSet))
	for _, id := range measSet {
		in[id] = true
	}
	sys := sc.System()
	for id := 1; id <= sys.NumMeasurements(); id++ {
		f := m.czFormula(id)
		if in[id] {
			m.Solver().Assert(f)
		} else {
			m.Solver().Assert(smt.Not(f))
		}
	}
	res, err := m.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res.Feasible
}

// TestObjective1PaperVectorsAdmissible verifies that both attack vectors
// printed in the paper for Objective 1 are models of our constraint system.
// (SAT models are not unique — our solver finds a cheaper 9-measurement
// equal-amounts attack through the untaken line-10 measurements — so
// admissibility, not equality, is the faithful check. See EXPERIMENTS.md.)
func TestObjective1PaperVectorsAdmissible(t *testing.T) {
	distinctVector := []int{8, 9, 16, 18, 20, 28, 29, 36, 38, 40, 44, 47, 50, 51, 53, 54}
	if !vectorAdmissible(t, objective1Scenario(16, 7, true), distinctVector) {
		t.Fatalf("paper's distinct-amounts vector not admissible")
	}
	equalVector := []int{8, 9, 11, 13, 28, 29, 31, 33, 39, 44, 46, 47, 49, 51, 53}
	if !vectorAdmissible(t, objective1Scenario(15, 6, false), equalVector) {
		t.Fatalf("paper's equal-amounts vector not admissible")
	}
	// Sanity: a mutilated vector (one boundary measurement dropped) is not.
	broken := append([]int(nil), equalVector[1:]...)
	if vectorAdmissible(t, objective1Scenario(15, 6, false), broken) {
		t.Fatalf("mutilated vector admissible; consistency constraints too weak")
	}
}

// TestObjective1EqualWithinLimits checks feasibility at the paper's
// equal-amounts resource limits and that the returned vector respects them.
func TestObjective1EqualWithinLimits(t *testing.T) {
	res := verify(t, objective1Scenario(15, 6, false))
	if !res.Feasible {
		t.Fatalf("equal-amounts attack infeasible at 15 meas / 6 buses")
	}
	if len(res.AlteredMeasurements) > 15 || len(res.CompromisedBuses) > 6 {
		t.Fatalf("vector exceeds limits: %v / %v", res.AlteredMeasurements, res.CompromisedBuses)
	}
}

// TestStates9And10CannotBeAttackedAlone: the paper notes "only states 9 and
// 10 cannot be attacked alone"; measurement 15 (line 7→9 flow) is secured
// per Table III and must change for any θ9-only perturbation.
func TestStates9And10CannotBeAttackedAlone(t *testing.T) {
	sc := objective1Scenario(0, 0, true)
	sc.OnlyTargets = true
	if res := verify(t, sc); res.Feasible {
		t.Fatalf("states 9,10 attacked alone; paper says other states must also change")
	}
}

func TestFullKnowledgeUnlimitedAlwaysFeasible(t *testing.T) {
	// With full access, knowledge and no limits, any single non-reference
	// state can be attacked (possibly dragging neighbors).
	for _, name := range []string{"ieee14", "ieee30"} {
		sys, err := grid.Case(name)
		if err != nil {
			t.Fatalf("Case: %v", err)
		}
		sc := NewScenario(sys)
		sc.TargetStates = []int{sys.Buses / 2}
		res := verify(t, sc)
		if !res.Feasible {
			t.Fatalf("%s: unconstrained attack infeasible", name)
		}
		if len(res.AlteredMeasurements) == 0 {
			t.Fatalf("%s: feasible attack with empty vector", name)
		}
	}
}

func TestSecuringEverythingBlocksAllAttacks(t *testing.T) {
	sys := grid.IEEE14()
	sc := NewScenario(sys)
	for id := 1; id <= sys.NumMeasurements(); id++ {
		if err := sc.Meas.Secure(id); err != nil {
			t.Fatalf("Secure: %v", err)
		}
	}
	sc.AnyState = true
	if res := verify(t, sc); res.Feasible {
		t.Fatalf("attack feasible with every measurement secured")
	}
}

func TestInaccessibleEqualsSecured(t *testing.T) {
	sys := grid.IEEE14()
	base := NewScenario(sys)
	base.TargetStates = []int{12}
	base.OnlyTargets = true
	base.Meas = CaseStudyMeasurements(false)
	if err := base.Meas.Restrict(46); err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if res := verify(t, base); res.Feasible {
		t.Fatalf("attack feasible with measurement 46 inaccessible")
	}
}

func TestKnowledgeConstraint(t *testing.T) {
	// Attacking state 12 alone needs line 12's and line 19's admittances
	// (flows on both incident lines must be recomputed).
	for _, unknown := range []int{12, 19} {
		sc := NewScenario(grid.IEEE14())
		sc.Meas = CaseStudyMeasurements(false)
		sc.TargetStates = []int{12}
		sc.OnlyTargets = true
		kn := make([]bool, 21)
		for i := 1; i <= 20; i++ {
			kn[i] = i != unknown
		}
		sc.Knowledge = kn
		if res := verify(t, sc); res.Feasible {
			t.Fatalf("attack on state 12 feasible without admittance of line %d", unknown)
		}
	}
}

func TestKnowledgeIrrelevantLineDoesNotBlock(t *testing.T) {
	sc := NewScenario(grid.IEEE14())
	sc.Meas = CaseStudyMeasurements(false)
	sc.TargetStates = []int{12}
	sc.OnlyTargets = true
	kn := make([]bool, 21)
	for i := 1; i <= 20; i++ {
		kn[i] = i != 1 // line 1 (1→2) is far from bus 12
	}
	sc.Knowledge = kn
	if res := verify(t, sc); !res.Feasible {
		t.Fatalf("unknown admittance of an unrelated line blocked the attack")
	}
}

func TestStrictKnowledgeTighter(t *testing.T) {
	// Under paper semantics (Eq. 17 only) an unknown line whose both flow
	// measurements are untaken doesn't constrain the attack; under strict
	// knowledge the relative state change across it must vanish.
	build := func(strict bool) *Scenario {
		sc := NewScenario(grid.IEEE14())
		// Untake both flow measurements of line 19 (12↔13) but keep bus
		// injections: paper semantics allows Δθ12 ≠ Δθ13 without knowing
		// line 19 (the needed bus adjustments are "computable" in the
		// model even though they depend on the unknown admittance).
		if err := sc.Meas.Untake(19, 39); err != nil {
			t.Fatalf("Untake: %v", err)
		}
		kn := make([]bool, 21)
		for i := 1; i <= 20; i++ {
			kn[i] = i != 19
		}
		sc.Knowledge = kn
		sc.TargetStates = []int{12}
		sc.OnlyTargets = true
		sc.StrictKnowledge = strict
		return sc
	}
	if res := verify(t, build(false)); !res.Feasible {
		t.Fatalf("paper-semantics attack infeasible")
	}
	if res := verify(t, build(true)); res.Feasible {
		t.Fatalf("strict-knowledge attack feasible; extension should block it")
	}
}

func TestResourceMonotonicity(t *testing.T) {
	// Feasibility is monotone in both resource limits.
	feasible := func(cz, cb int) bool {
		sc := NewScenario(grid.IEEE14())
		sc.Meas = CaseStudyMeasurements(false)
		sc.TargetStates = []int{9, 10}
		sc.DistinctPairs = [][2]int{{9, 10}}
		sc.MaxAlteredMeasurements = cz
		sc.MaxCompromisedBuses = cb
		return verify(t, sc).Feasible
	}
	prev := false
	for cz := 10; cz <= 18; cz += 2 {
		cur := feasible(cz, 0)
		if prev && !cur {
			t.Fatalf("feasibility not monotone in T_CZ at %d", cz)
		}
		prev = prev || cur
	}
	if !prev {
		t.Fatalf("attack infeasible even with 18 measurements")
	}
}

func TestAnyStateGoal(t *testing.T) {
	sc := NewScenario(grid.IEEE14())
	sc.AnyState = true
	res := verify(t, sc)
	if !res.Feasible {
		t.Fatalf("AnyState attack infeasible on unprotected grid")
	}
	if len(res.StateChanges) == 0 {
		t.Fatalf("AnyState attack corrupted no state")
	}
}

func TestUntouchedStates(t *testing.T) {
	sc := NewScenario(grid.IEEE14())
	sc.Meas = CaseStudyMeasurements(false)
	sc.TargetStates = []int{12}
	sc.UntouchedStates = []int{13}
	res := verify(t, sc)
	if !res.Feasible {
		t.Fatalf("attack infeasible")
	}
	if _, ok := res.StateChanges[13]; ok {
		t.Fatalf("untouched state 13 changed")
	}
}

func TestResultStateChangeFloat(t *testing.T) {
	sc := NewScenario(grid.IEEE14())
	sc.TargetStates = []int{12}
	res := verify(t, sc)
	if !res.Feasible {
		t.Fatalf("infeasible")
	}
	if res.StateChangeFloat(12) == 0 {
		t.Fatalf("target state change reads as 0")
	}
	if res.StateChangeFloat(1) != 0 {
		t.Fatalf("reference bus change nonzero")
	}
}

func TestScenarioValidation(t *testing.T) {
	sys := grid.IEEE14()
	tests := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"nil meas", func(sc *Scenario) { sc.Meas = nil }},
		{"bad knowledge len", func(sc *Scenario) { sc.Knowledge = make([]bool, 3) }},
		{"bad ref", func(sc *Scenario) { sc.RefBus = 0 }},
		{"target out of range", func(sc *Scenario) { sc.TargetStates = []int{99} }},
		{"target is ref", func(sc *Scenario) { sc.TargetStates = []int{1} }},
		{"untouched out of range", func(sc *Scenario) { sc.UntouchedStates = []int{99} }},
		{"distinct out of range", func(sc *Scenario) { sc.DistinctPairs = [][2]int{{1, 99}} }},
		{"anystate+targets", func(sc *Scenario) {
			sc.AnyState = true
			sc.TargetStates = []int{5}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewScenario(sys)
			tc.mut(sc)
			if _, err := Verify(sc); err == nil {
				t.Fatalf("invalid scenario accepted")
			}
		})
	}
}

func TestAssertBusesSecuredPushPop(t *testing.T) {
	sc := NewScenario(grid.IEEE14())
	sc.Meas = CaseStudyMeasurements(false)
	sc.TargetStates = []int{12}
	sc.OnlyTargets = true
	m, err := NewModel(sc)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	res, err := m.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("base attack infeasible")
	}
	m.Solver().Push()
	if err := m.AssertBusesSecured([]int{6}); err != nil {
		t.Fatalf("AssertBusesSecured: %v", err)
	}
	res, err = m.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Feasible {
		t.Fatalf("attack feasible with bus 6 secured (measurement 46 covered)")
	}
	if err := m.Solver().Pop(); err != nil {
		t.Fatalf("Pop: %v", err)
	}
	res, err = m.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("attack infeasible after Pop")
	}
	if err := m.AssertBusesSecured([]int{99}); err == nil {
		t.Fatalf("out-of-range bus accepted")
	}
}

func TestInclusionAttack(t *testing.T) {
	// Line 13 (6→13) is out of service in the true topology and the
	// injection at bus 13 (measurement 53) is secured. Attacking state 13
	// alone then requires altering measurement 53 — impossible — unless the
	// attacker includes line 13: the fabricated flow absorbs bus 13's
	// consumption delta (the measurement-53 change cancels) at the price of
	// altering line 13's flow measurements and bus 6's injection.
	build := func(allowInclusion, secureStatus bool) *Scenario {
		sc := NewScenario(grid.IEEE14())
		sc.Meas = CaseStudyMeasurements(false)
		if err := sc.Meas.Secure(53); err != nil {
			t.Fatalf("Secure: %v", err)
		}
		inService := make([]bool, 21)
		for i := 1; i <= 20; i++ {
			inService[i] = i != 13
		}
		sc.InService = inService
		if secureStatus {
			st := make([]bool, 21)
			st[13] = true
			sc.SecuredStatus = st
		}
		sc.AllowInclusion = allowInclusion
		sc.TargetStates = []int{13}
		sc.OnlyTargets = true
		return sc
	}
	if res := verify(t, build(false, false)); res.Feasible {
		t.Fatalf("attack feasible without inclusion despite secured measurement 53")
	}
	res := verify(t, build(true, false))
	if !res.Feasible {
		t.Fatalf("inclusion attack infeasible")
	}
	if !reflect.DeepEqual(res.IncludedLines, []int{13}) {
		t.Fatalf("included = %v, want [13]", res.IncludedLines)
	}
	has := func(id int) bool {
		for _, x := range res.AlteredMeasurements {
			if x == id {
				return true
			}
		}
		return false
	}
	if !has(13) || !has(33) {
		t.Fatalf("included line's flow measurements not altered: %v", res.AlteredMeasurements)
	}
	if has(53) {
		t.Fatalf("secured measurement 53 altered: %v", res.AlteredMeasurements)
	}
	if res2 := verify(t, build(true, true)); res2.Feasible {
		t.Fatalf("inclusion attack feasible with secured line status")
	}
}

func TestExclusionRequiresUnfixedLine(t *testing.T) {
	sc := NewScenario(grid.IEEE14())
	sc.Meas = CaseStudyMeasurements(false)
	if err := sc.Meas.Secure(46); err != nil {
		t.Fatalf("Secure: %v", err)
	}
	sc.TargetStates = []int{12}
	sc.OnlyTargets = true
	sc.AllowExclusion = true
	// All lines fixed: exclusion impossible anywhere, so the secured
	// measurement blocks the attack as in Objective 2.
	fixed := make([]bool, 21)
	for i := 1; i <= 20; i++ {
		fixed[i] = true
	}
	sc.FixedLines = fixed
	if res := verify(t, sc); res.Feasible {
		t.Fatalf("exclusion attack feasible with all lines fixed")
	}
}
