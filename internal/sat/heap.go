package sat

// varHeap is a max-heap of variables ordered by VSIDS activity, with an
// index map for decrease-key style updates. It backs the branching
// heuristic.
type varHeap struct {
	activity *[]float64 // shared with the solver
	heap     []Var
	index    []int32 // var → position in heap, −1 if absent
}

func newVarHeap(activity *[]float64) *varHeap {
	return &varHeap{activity: activity}
}

func (h *varHeap) grow(n int) {
	for len(h.index) < n {
		h.index = append(h.index, -1)
	}
}

func (h *varHeap) less(a, b Var) bool {
	return (*h.activity)[a] > (*h.activity)[b]
}

func (h *varHeap) contains(v Var) bool { return h.index[v] >= 0 }

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) push(v Var) {
	if h.contains(v) {
		return
	}
	h.heap = append(h.heap, v)
	h.index[v] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() Var {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.index[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.index[top] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return top
}

// update restores heap order for v after its activity increased.
func (h *varHeap) update(v Var) {
	if h.contains(v) {
		h.up(int(h.index[v]))
	}
}

// rebuild re-heapifies after a global activity rescale.
func (h *varHeap) rebuild() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.index[h.heap[i]] = int32(i)
		i = parent
	}
	h.heap[i] = v
	h.index[v] = int32(i)
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if child+1 < n && h.less(h.heap[child+1], h.heap[child]) {
			child++
		}
		if !h.less(h.heap[child], v) {
			break
		}
		h.heap[i] = h.heap[child]
		h.index[h.heap[i]] = int32(i)
		i = child
	}
	h.heap[i] = v
	h.index[v] = int32(i)
}
