package sat

// Theory is the DPLL(T) hook. A theory solver receives the literals the SAT
// core assigns (only those previously registered with Solver.WatchTheoryVar),
// mirrors the solver's decision-level stack through Push/Pop, and reports
// conflicts as explanations.
//
// An explanation is a non-empty set of theory literals, all currently
// assigned true, whose conjunction is theory-inconsistent. The SAT core
// learns the clause consisting of their negations.
type Theory interface {
	// Assert notifies the theory that l (a registered theory literal) became
	// true. It returns a conflict explanation, or nil if the theory state
	// remains consistent as far as cheap checks can tell.
	Assert(l Lit) []Lit

	// Check runs a (possibly expensive) consistency check of all literals
	// asserted so far. final is true when the SAT core has a full
	// assignment; a theory must be complete for final checks. It returns a
	// conflict explanation or nil. A non-nil error aborts the search (the
	// theory ran out of budget or was cancelled): the SAT core returns
	// StatusUnknown with that error, leaving the theory state untouched.
	Check(final bool) ([]Lit, error)

	// Push opens a backtracking scope, aligned with a SAT decision level.
	Push()

	// Pop discards the n most recent scopes and all assertions made within
	// them.
	Pop(n int)
}
