package sat

import (
	"sync"
	"sync/atomic"
)

// PhaseInit selects the initial saved phase given to fresh variables. The
// portfolio driver varies it across workers so instances explore different
// parts of the assignment space before phase saving takes over.
type PhaseInit uint8

const (
	// PhaseDefault is the sequential solver's behavior: fresh variables
	// default to false.
	PhaseDefault PhaseInit = iota
	// PhaseTrue defaults fresh variables to true.
	PhaseTrue
	// PhaseRandom draws each fresh variable's initial phase from the
	// Tuning.Seed-keyed generator.
	PhaseRandom
)

// RestartPolicy selects the restart schedule.
type RestartPolicy uint8

const (
	// RestartLuby is the sequential solver's Luby schedule.
	RestartLuby RestartPolicy = iota
	// RestartGeometric grows the restart interval geometrically
	// (RestartUnit · RestartGrowth^n), a common portfolio alternative: it
	// restarts rarely and digs deep where Luby stays shallow.
	RestartGeometric
)

// Tuning diversifies a solver instance for portfolio solving. The zero value
// reproduces the sequential solver exactly, which keeps worker 0 of a
// portfolio byte-compatible with a non-portfolio run.
type Tuning struct {
	// Seed keys the per-solver random generator (used by PhaseRandom).
	// Zero selects a fixed default seed.
	Seed uint64
	// Phase selects the initial saved phase for fresh variables.
	Phase PhaseInit
	// Restart selects the restart schedule.
	Restart RestartPolicy
	// RestartUnit is the base restart interval in conflicts; ≤ 0 means the
	// default (128, matching the sequential Luby unit).
	RestartUnit int64
	// RestartGrowth is the geometric schedule's growth factor; values ≤ 1
	// mean the default 1.5. Ignored under RestartLuby.
	RestartGrowth float64
	// ExportMaxLen caps the length of learnt clauses published to the
	// exchange; ≤ 0 means the default 8. Short clauses are the ones worth
	// sharing: they prune the most and cost the least to re-check.
	ExportMaxLen int
}

// xorshift64 is a tiny deterministic PRNG (Marsaglia xorshift). It exists so
// solver diversification never touches math/rand global state and stays
// reproducible from Tuning.Seed alone.
type xorshift64 struct{ s uint64 }

func (r *xorshift64) next() uint64 {
	x := r.s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.s = x
	return x
}

// exchangeSlot is one published clause in the ring.
type exchangeSlot struct {
	src  int // publishing port, so a port never re-imports its own clauses
	lits []Lit
}

// Exchange is a bounded many-to-many buffer for sharing short learnt clauses
// between portfolio workers. Publishing overwrites the oldest entry once the
// ring is full — sharing is best-effort by design; a slow reader loses old
// clauses rather than stalling writers.
//
// The hot path is the read-side miss: solvers poll at every restart, and most
// polls find nothing new. That check is a single atomic load (no lock). The
// mutex is only taken when publishing or when there is something to copy out.
type Exchange struct {
	mu    sync.Mutex
	seq   atomic.Uint64 // total clauses ever published
	slots []exchangeSlot
	ports int
}

// NewExchange builds an exchange holding up to capacity clauses
// (≤ 0 selects the default 512).
func NewExchange(capacity int) *Exchange {
	if capacity <= 0 {
		capacity = 512
	}
	return &Exchange{slots: make([]exchangeSlot, capacity)}
}

// Port returns a new endpoint for one solver instance. Ports must not be
// shared between goroutines; the Exchange itself may be.
func (e *Exchange) Port() *ExchangePort {
	e.mu.Lock()
	defer e.mu.Unlock()
	p := &ExchangePort{ex: e, src: e.ports}
	e.ports++
	return p
}

// ExchangePort is one solver's endpoint on an Exchange. The zero value is not
// usable; obtain ports from Exchange.Port.
type ExchangePort struct {
	ex     *Exchange
	src    int
	cursor uint64 // next sequence number to read
}

// Publish copies lits into the exchange. The slice is not retained, so
// callers may pass scratch buffers.
func (p *ExchangePort) Publish(lits []Lit) {
	e := p.ex
	e.mu.Lock()
	n := e.seq.Load()
	s := &e.slots[n%uint64(len(e.slots))]
	s.src = p.src
	s.lits = append(s.lits[:0], lits...)
	e.seq.Store(n + 1)
	e.mu.Unlock()
}

// Drain appends every clause published by other ports since the last Drain to
// out and returns it. Clauses overwritten before the port caught up are
// silently lost. The returned literal slices are owned by the caller.
func (p *ExchangePort) Drain(out [][]Lit) [][]Lit {
	e := p.ex
	if e.seq.Load() == p.cursor {
		return out // nothing new; no lock taken
	}
	e.mu.Lock()
	n := e.seq.Load()
	start := p.cursor
	if ringCap := uint64(len(e.slots)); n > ringCap && start < n-ringCap {
		start = n - ringCap
	}
	for i := start; i < n; i++ {
		s := &e.slots[i%uint64(len(e.slots))]
		if s.src == p.src {
			continue
		}
		out = append(out, append([]Lit(nil), s.lits...))
	}
	e.mu.Unlock()
	p.cursor = n
	return out
}
