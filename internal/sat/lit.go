// Package sat implements a CDCL (conflict-driven clause learning) SAT solver
// with two-literal watching, first-UIP clause learning, VSIDS branching,
// phase saving, Luby restarts, activity-based learnt-clause deletion, and a
// theory hook for DPLL(T) integration.
//
// The solver is the propositional engine underneath package smt, which
// replaces the Z3 backend used by the paper this repository reproduces.
package sat

import "fmt"

// Var is a propositional variable index. Variables are dense and 0-based;
// they are created with Solver.NewVar.
type Var int32

// Lit is a literal: a variable together with a sign. The encoding follows
// MiniSat: lit = 2·var for the positive literal and 2·var+1 for the negated
// literal.
type Lit int32

// LitUndef is the sentinel "no literal" value.
const LitUndef Lit = -1

// NewLit builds a literal from a variable and a sign. neg=true yields ¬v.
func NewLit(v Var, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v) << 1 }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v)<<1 | 1 }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// IsNeg reports whether the literal is negated.
func (l Lit) IsNeg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal 1-based with a leading '-' when negated, in the
// DIMACS style (variable 0 prints as 1 or -1).
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	if l.IsNeg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// lbool is a lifted boolean: true, false or undefined.
type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

// litValue returns the value of literal l under assignment of its variable.
func litValue(assign lbool, l Lit) lbool {
	if assign == lUndef {
		return lUndef
	}
	if l.IsNeg() {
		return -assign
	}
	return assign
}
