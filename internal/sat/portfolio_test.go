package sat

import (
	"math/rand"
	"testing"
)

// randomCNF builds a random CNF near the 3-SAT phase transition.
func randomCNF(rng *rand.Rand, n, m int) [][]Lit {
	cnf := make([][]Lit, 0, m)
	for c := 0; c < m; c++ {
		width := 1 + rng.Intn(3)
		cl := make([]Lit, width)
		for i := range cl {
			cl[i] = NewLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
		}
		cnf = append(cnf, cl)
	}
	return cnf
}

func TestPortfolioExchangeDrainSkipsSelf(t *testing.T) {
	ex := NewExchange(8)
	a, b := ex.Port(), ex.Port()
	a.Publish([]Lit{PosLit(0), NegLit(1)})
	a.Publish([]Lit{PosLit(2)})
	b.Publish([]Lit{NegLit(3)})

	if got := a.Drain(nil); len(got) != 1 || got[0][0] != NegLit(3) {
		t.Fatalf("a.Drain = %v, want only b's clause", got)
	}
	got := b.Drain(nil)
	if len(got) != 2 {
		t.Fatalf("b.Drain = %v, want a's two clauses", got)
	}
	// Draining again yields nothing (cursor advanced).
	if got := a.Drain(nil); len(got) != 0 {
		t.Fatalf("second a.Drain = %v, want empty", got)
	}
}

func TestPortfolioExchangeOverwriteLosesOldest(t *testing.T) {
	ex := NewExchange(4)
	a, b := ex.Port(), ex.Port()
	for i := 0; i < 10; i++ {
		a.Publish([]Lit{PosLit(Var(i))})
	}
	got := b.Drain(nil)
	// Only the newest 4 survive the ring.
	if len(got) != 4 {
		t.Fatalf("Drain returned %d clauses, want 4", len(got))
	}
	for i, cl := range got {
		if want := PosLit(Var(6 + i)); cl[0] != want {
			t.Fatalf("clause %d = %v, want %v", i, cl[0], want)
		}
	}
}

func TestPortfolioExchangePublishCopies(t *testing.T) {
	ex := NewExchange(4)
	a, b := ex.Port(), ex.Port()
	scratch := []Lit{PosLit(0), PosLit(1)}
	a.Publish(scratch)
	scratch[0] = NegLit(7) // publisher reuses its buffer
	got := b.Drain(nil)
	if len(got) != 1 || got[0][0] != PosLit(0) {
		t.Fatalf("Drain = %v, want the clause as published", got)
	}
	got[0][0] = NegLit(9) // and the drained copy is caller-owned
	if c := b.Drain(nil); len(c) != 0 {
		t.Fatalf("second Drain = %v, want empty", c)
	}
}

// TestPortfolioTuningsAgree runs diversified tunings on random instances and
// checks every configuration reaches the same verdict, with models validated.
func TestPortfolioTuningsAgree(t *testing.T) {
	tunings := []Tuning{
		{}, // worker-0 anchor: sequential behavior
		{Phase: PhaseTrue},
		{Phase: PhaseRandom, Seed: 0xdecaf},
		{Restart: RestartGeometric, RestartUnit: 64, RestartGrowth: 2},
		{Phase: PhaseRandom, Seed: 99, Restart: RestartGeometric},
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(8)
		m := 2 + rng.Intn(5*n)
		cnf := randomCNF(rng, n, m)
		want := bruteForceSat(n, cnf)
		for ti, tn := range tunings {
			s := NewSolver(Options{Tuning: tn})
			newVars(s, n)
			for _, cl := range cnf {
				mustAdd(t, s, cl...)
			}
			st, err := s.Solve()
			if err != nil {
				t.Fatalf("trial %d tuning %d: Solve: %v", trial, ti, err)
			}
			if (st == StatusSat) != want {
				t.Fatalf("trial %d tuning %d: got %v, brute force says sat=%v", trial, ti, st, want)
			}
			if st == StatusSat && !modelSatisfies(s, cnf) {
				t.Fatalf("trial %d tuning %d: invalid model", trial, ti)
			}
		}
	}
}

// TestPortfolioImportRUP cross-connects two solvers on the same instance
// through an exchange: the first solve publishes its learnt clauses, the
// second drains and RUP-checks them before importing. Verdicts must agree
// with brute force, imports must never flip a verdict, and on hard-enough
// instances some sharing must actually happen.
func TestPortfolioImportRUP(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var imported, exported int64
	for trial := 0; trial < 80; trial++ {
		n := 10 + rng.Intn(4)
		m := 4*n + rng.Intn(n) // near the 3-SAT phase transition
		cnf := make([][]Lit, 0, m)
		for c := 0; c < m; c++ {
			cl := make([]Lit, 3)
			for i := range cl {
				cl[i] = NewLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		want := bruteForceSat(n, cnf)

		ex := NewExchange(0)
		a := NewSolver(Options{Exchange: ex.Port()})
		b := NewSolver(Options{Exchange: ex.Port(), Tuning: Tuning{Phase: PhaseTrue}})
		for _, s := range []*Solver{a, b} {
			newVars(s, n)
			for _, cl := range cnf {
				mustAdd(t, s, cl...)
			}
		}
		stA, err := a.Solve()
		if err != nil {
			t.Fatalf("trial %d: a.Solve: %v", trial, err)
		}
		stB, err := b.Solve()
		if err != nil {
			t.Fatalf("trial %d: b.Solve: %v", trial, err)
		}
		if (stA == StatusSat) != want || (stB == StatusSat) != want {
			t.Fatalf("trial %d: a=%v b=%v, brute force says sat=%v", trial, stA, stB, want)
		}
		if stB == StatusSat && !modelSatisfies(b, cnf) {
			t.Fatalf("trial %d: importing solver returned invalid model", trial)
		}
		sb := b.Statistics()
		imported += sb.Imported
		exported += a.Statistics().Exported
	}
	if exported == 0 {
		t.Fatalf("no clauses were ever exported across %d trials", 80)
	}
	if imported == 0 {
		t.Fatalf("no clauses were ever imported across %d trials", 80)
	}
}

// TestPortfolioImportKeepsIncrementalSound interleaves SolveAssuming calls
// with imports (drained at every Solve entry) and checks assumption answers
// against a fresh reference solver.
func TestPortfolioImportKeepsIncrementalSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(5)
		m := 3 * n
		cnf := randomCNF(rng, n, m)

		ex := NewExchange(0)
		pub := NewSolver(Options{Exchange: ex.Port()})
		sub := NewSolver(Options{Exchange: ex.Port()})
		newVars(pub, n)
		newVars(sub, n)
		for _, cl := range cnf {
			mustAdd(t, pub, cl...)
			mustAdd(t, sub, cl...)
		}
		if _, err := pub.Solve(); err != nil {
			t.Fatalf("trial %d: pub.Solve: %v", trial, err)
		}
		for round := 0; round < 4; round++ {
			assump := NewLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			got, err := sub.SolveAssuming(assump)
			if err != nil {
				t.Fatalf("trial %d round %d: SolveAssuming: %v", trial, round, err)
			}
			ref := NewSolver(Options{})
			newVars(ref, n)
			for _, cl := range cnf {
				mustAdd(t, ref, cl...)
			}
			wantSt, err := ref.SolveAssuming(assump)
			if err != nil {
				t.Fatalf("trial %d round %d: ref: %v", trial, round, err)
			}
			if got != wantSt {
				t.Fatalf("trial %d round %d: importing solver says %v, reference says %v", trial, round, got, wantSt)
			}
			sub.Backtrack()
			ref.Backtrack()
		}
	}
}
