package sat

import (
	"math/rand"
	"testing"
)

// addPigeonhole encodes PHP(holes+1, holes).
func addPigeonhole(t *testing.T, s *Solver, holes int) {
	t.Helper()
	pigeons := holes + 1
	vs := make([][]Var, pigeons)
	for p := range vs {
		vs[p] = newVars(s, holes)
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vs[p][h])
		}
		mustAdd(t, s, lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				mustAdd(t, s, NegLit(vs[p1][h]), NegLit(vs[p2][h]))
			}
		}
	}
}

// TestPigeonholeStress drives enough conflicts to exercise restarts and the
// learnt-clause database reduction.
func TestPigeonholeStress(t *testing.T) {
	s := NewSolver(Options{})
	addPigeonhole(t, s, 8)
	st, err := s.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if st != StatusUnsat {
		t.Fatalf("PHP(9,8) = %v, want unsat", st)
	}
	stats := s.Statistics()
	if stats.Conflicts < 100 {
		t.Fatalf("Conflicts = %d; instance too easy to stress the solver", stats.Conflicts)
	}
	if stats.Restarts == 0 {
		t.Errorf("no restarts on a %d-conflict run", stats.Conflicts)
	}
}

// TestXorChainUnsat builds a parity contradiction through Tseitin-style XOR
// gates: c_i ↔ c_{i−1} ⊕ x_i, with c_0 = false, all x_i = false, c_n = true.
func TestXorChainUnsat(t *testing.T) {
	s := NewSolver(Options{})
	const n = 64
	c := newVars(s, n+1)
	x := newVars(s, n)
	mustAdd(t, s, NegLit(c[0]))
	for i := 1; i <= n; i++ {
		// c_i ↔ c_{i−1} ⊕ x_{i−1}: four clauses.
		a, b, o := c[i-1], x[i-1], c[i]
		mustAdd(t, s, NegLit(o), PosLit(a), PosLit(b))
		mustAdd(t, s, NegLit(o), NegLit(a), NegLit(b))
		mustAdd(t, s, PosLit(o), NegLit(a), PosLit(b))
		mustAdd(t, s, PosLit(o), PosLit(a), NegLit(b))
	}
	for i := 0; i < n; i++ {
		mustAdd(t, s, NegLit(x[i]))
	}
	mustAdd(t, s, PosLit(c[n]))
	if st, _ := s.Solve(); st != StatusUnsat {
		t.Fatalf("xor chain contradiction = %v, want unsat", st)
	}
}

// TestLargeRandomSatisfiable plants a solution in a large random formula
// and checks the solver finds some model.
func TestLargeRandomSatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewSolver(Options{})
	const n = 300
	vars := newVars(s, n)
	planted := make([]bool, n)
	for i := range planted {
		planted[i] = rng.Intn(2) == 1
	}
	for c := 0; c < 4*n; c++ {
		cl := make([]Lit, 3)
		for {
			ok := false
			for i := range cl {
				v := rng.Intn(n)
				neg := rng.Intn(2) == 1
				cl[i] = NewLit(vars[v], neg)
				if neg != planted[v] {
					ok = true // satisfied by the planted assignment
				}
			}
			if ok {
				break
			}
		}
		mustAdd(t, s, cl...)
	}
	st, err := s.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if st != StatusSat {
		t.Fatalf("planted instance unsat")
	}
}

// TestIncrementalReuse solves, checks the model, and confirms statistics
// accumulate over further AddClause+Solve cycles at level 0.
func TestSolveTwiceConsistent(t *testing.T) {
	s := NewSolver(Options{})
	vs := newVars(s, 4)
	mustAdd(t, s, PosLit(vs[0]), PosLit(vs[1]))
	if st, _ := s.Solve(); st != StatusSat {
		t.Fatalf("want sat")
	}
	if st, _ := s.Solve(); st != StatusSat {
		t.Fatalf("second Solve want sat")
	}
}
