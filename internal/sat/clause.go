package sat

// clause is a disjunction of literals. For clauses of length ≥ 2 the first
// two positions hold the watched literals.
type clause struct {
	lits     []Lit
	activity float64
	// id names the clause in the proof stream; 0 when proof logging is off
	// (ids start at 1), so deletion records are only emitted for clauses the
	// stream knows about.
	id     uint64
	learnt bool
	// deleted marks clauses lazily removed by learnt-clause reduction;
	// watcher lists drop them on the next traversal.
	deleted bool
}

func (c *clause) len() int { return len(c.lits) }

// watcher records that a clause is watching a literal. blocker is another
// literal from the clause; when the blocker is already true the clause is
// satisfied and the watcher list traversal can skip dereferencing the clause.
type watcher struct {
	c       *clause
	blocker Lit
}

// binWatcher watches a binary clause for a literal p: the clause is
// (¬p ∨ other), so when p becomes true, other must hold. Propagation over
// binary clauses touches only the watcher, not the clause body; c is kept
// for conflict analysis reasons.
type binWatcher struct {
	c     *clause
	other Lit
}
