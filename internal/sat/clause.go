package sat

// clause is a disjunction of literals. For clauses of length ≥ 2 the first
// two positions hold the watched literals.
type clause struct {
	lits     []Lit
	activity float64
	learnt   bool
	// deleted marks clauses lazily removed by learnt-clause reduction;
	// watcher lists drop them on the next traversal.
	deleted bool
}

func (c *clause) len() int { return len(c.lits) }

// watcher records that a clause is watching a literal. blocker is another
// literal from the clause; when the blocker is already true the clause is
// satisfied and the watcher list traversal can skip dereferencing the clause.
type watcher struct {
	c       *clause
	blocker Lit
}
