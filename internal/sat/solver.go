package sat

import (
	"errors"
	"fmt"
	"sort"
)

// Status is the outcome of a Solve call.
type Status int8

const (
	// StatusUnknown means the solver stopped before reaching an answer
	// (e.g. a conflict budget was exhausted).
	StatusUnknown Status = iota
	// StatusSat means a satisfying assignment was found.
	StatusSat
	// StatusUnsat means the formula is unsatisfiable.
	StatusUnsat
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusSat:
		return "sat"
	case StatusUnsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// ErrBudget is returned by Solve when the conflict budget is exhausted.
var ErrBudget = errors.New("sat: conflict budget exhausted")

// ErrPropBudget is returned by Solve when the propagation budget is
// exhausted.
var ErrPropBudget = errors.New("sat: propagation budget exhausted")

// Stats collects solver counters, useful for the evaluation harness.
type Stats struct {
	Vars         int
	Clauses      int
	Learnts      int
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	TheoryChecks int64
	// Clause-exchange counters (zero unless Options.Exchange is set).
	Exported       int64 // learnt clauses published to the exchange
	Imported       int64 // foreign clauses that passed the RUP check and were added
	ImportRejected int64 // foreign clauses dropped (stale, satisfied or not RUP here)
}

// Options configure a Solver.
type Options struct {
	// Theory, if non-nil, is consulted for literals registered with
	// WatchTheoryVar (DPLL(T) integration).
	Theory Theory
	// CheckAtFixpoint makes the solver call Theory.Check after every unit
	// propagation fixpoint rather than only on full assignments. This is
	// the eager integration the paper's Z3 backend uses; disabling it is an
	// ablation knob.
	CheckAtFixpoint bool
	// MaxConflicts bounds the search; ≤ 0 means unlimited.
	MaxConflicts int64
	// MaxPropagations bounds unit propagations; ≤ 0 means unlimited.
	MaxPropagations int64
	// Stop, if non-nil, is polled once at the start of Solve, at every
	// conflict and every stopPollInterval propagations. A non-nil return
	// aborts the search: Solve returns StatusUnknown and that error.
	Stop func() error
	// Proof, if non-nil, receives every input clause, learnt clause, theory
	// lemma and deletion for DRAT-style certificate logging. The nil default
	// costs one pointer check per logging site.
	Proof ProofLogger
	// Tuning diversifies the search for portfolio solving. The zero value
	// reproduces the default (sequential) behavior exactly.
	Tuning Tuning
	// Exchange, if non-nil, connects this solver to a clause exchange: short
	// learnt clauses are published, and foreign clauses are drained at Solve
	// entry and at every restart. Imported clauses are re-checked locally by
	// reverse unit propagation before being added, so a certificate stream
	// stays checkable even though the clauses were derived elsewhere.
	Exchange *ExchangePort
}

// Solver is a CDCL SAT solver. The zero value is not usable; construct with
// NewSolver.
type Solver struct {
	opts Options

	clauses    []*clause
	learnts    []*clause
	watches    [][]watcher    // indexed by Lit
	binWatches [][]binWatcher // indexed by Lit; binary clauses only

	assigns  []lbool // indexed by Var
	level    []int32
	reason   []*clause
	polarity []bool // saved phases
	theory   []bool // var is a theory atom

	trail    []Lit
	trailLim []int32
	qhead    int
	thead    int // next trail position to hand to the theory

	activity []float64
	varInc   float64
	order    *varHeap

	clauseInc    float64
	maxLearnts   float64
	seen         []bool
	analyzeStack []Lit

	stats    Stats
	unsat    bool // empty clause added at level 0
	nVars    int
	budget   int64
	nextPoll int64 // propagation count at which Stop is polled next

	// Per-call budget baselines: Statistics() stays cumulative across Solve
	// calls, so budgets are measured against the counters captured at Solve
	// entry. Without them a second Solve on the same instance would compare
	// its fresh budget against the previous calls' accumulated work and
	// spuriously return ErrBudget/ErrPropBudget immediately.
	baseConflicts int64
	baseProps     int64

	conflict []Lit // final conflict of the last SolveAssuming (over assumptions)

	addBuf     []Lit     // scratch for AddClause normalization
	learntBuf  []Lit     // scratch for analyze's learnt clause
	collectBuf []Lit     // scratch for analyze's seen-flag cleanup
	proofBuf   []Lit     // scratch for handing clauses to the proof logger
	clauseMem  []clause  // arena for problem-clause headers
	litMem     []Lit     // arena for problem-clause literal storage
	watchMem   []watcher // arena seeding initial watch-list blocks

	rng          xorshift64 // seeded per-solver generator (PhaseRandom)
	exportMaxLen int        // resolved Tuning.ExportMaxLen
	importBuf    [][]Lit    // scratch for draining the exchange
	importLits   []Lit      // scratch for the simplified imported clause
}

const (
	varActivityDecay    = 1.0 / 0.95
	clauseActivityDecay = 1.0 / 0.999
	rescaleLimit        = 1e100
	lubyUnit            = 128  // conflicts per restart unit
	stopPollInterval    = 4096 // propagations between Stop polls
)

// NewSolver constructs a solver with the given options.
func NewSolver(opts Options) *Solver {
	s := &Solver{
		opts:      opts,
		varInc:    1,
		clauseInc: 1,
	}
	s.rng.s = opts.Tuning.Seed
	if s.rng.s == 0 {
		s.rng.s = 0x9e3779b97f4a7c15 // xorshift needs a nonzero state
	}
	s.exportMaxLen = opts.Tuning.ExportMaxLen
	if s.exportMaxLen <= 0 {
		s.exportMaxLen = 8
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// NewVar introduces a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(s.nVars)
	s.nVars++
	s.watches = append(s.watches, nil, nil)
	s.binWatches = append(s.binWatches, nil, nil)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	// polarity=true means the default decision phase is false (lit ¬v).
	phase := true
	switch s.opts.Tuning.Phase {
	case PhaseTrue:
		phase = false
	case PhaseRandom:
		phase = s.rng.next()&1 == 0
	}
	s.polarity = append(s.polarity, phase)
	s.theory = append(s.theory, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.order.grow(s.nVars)
	s.order.push(v)
	return v
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return s.nVars }

// WatchTheoryVar registers v as a theory atom: assignments to v are relayed
// to the theory via Theory.Assert.
func (s *Solver) WatchTheoryVar(v Var) { s.theory[v] = true }

// SetBudgets replaces the per-call conflict and propagation budgets (≤ 0
// means unlimited). It takes effect at the next Solve/SolveAssuming call;
// budgets are measured per call, not against the cumulative Statistics()
// counters, so an incremental caller can re-budget every call independently.
func (s *Solver) SetBudgets(maxConflicts, maxPropagations int64) {
	s.opts.MaxConflicts = maxConflicts
	s.opts.MaxPropagations = maxPropagations
}

// SetStop replaces the cancellation hook polled during search (nil clears
// it). It takes effect at the next Solve/SolveAssuming call.
func (s *Solver) SetStop(f func() error) { s.opts.Stop = f }

// Statistics returns a snapshot of the solver counters. Counters are
// cumulative across Solve calls; per-call budgets are baselined internally
// at each Solve entry.
func (s *Solver) Statistics() Stats {
	st := s.stats
	st.Vars = s.nVars
	st.Clauses = len(s.clauses)
	st.Learnts = len(s.learnts)
	return st
}

// AddClause adds a clause over existing variables. It must be called at
// decision level 0 — before the first Solve, or between incremental
// Solve/SolveAssuming calls once Backtrack has retracted the model.
// Duplicate literals are merged, tautologies are dropped, and false literals
// (at level 0) are removed.
func (s *Solver) AddClause(lits ...Lit) error {
	if len(s.trailLim) != 0 {
		return errors.New("sat: AddClause called above decision level 0")
	}
	for _, l := range lits {
		if l == LitUndef || int(l.Var()) >= s.nVars {
			return fmt.Errorf("sat: clause references unknown literal %v", l)
		}
	}
	if s.opts.Proof != nil {
		// Log the clause as given: the certificate's input side must match
		// what the caller asserted, and the normalization below only drops
		// literals that are false by the units already logged. Handing the
		// logger a solver-owned copy keeps the variadic argument slice from
		// escaping — without it every AddClause call heap-allocates its
		// arguments even with logging off, and AddClause is the encoding
		// hot path.
		s.proofBuf = append(s.proofBuf[:0], lits...)
		s.opts.Proof.LogInput(s.proofBuf)
	}
	// Normalize: sort, dedupe, drop tautologies and false literals. The
	// scratch buffer and insertion sort keep this allocation-free; clauses
	// are short, so quadratic sorting beats reflection-based sort.Slice.
	sorted := append(s.addBuf[:0], lits...)
	s.addBuf = sorted
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:0]
	var prev Lit = LitUndef
	for _, l := range sorted {
		if l == prev {
			continue
		}
		if prev != LitUndef && l == prev.Not() {
			return nil // tautology
		}
		switch s.value(l) {
		case lTrue:
			return nil // already satisfied at level 0
		case lFalse:
			prev = l
			continue // drop false literal
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return nil
	case 1:
		if !s.enqueue(out[0], nil) {
			s.unsat = true
		} else if confl := s.propagate(); confl != nil {
			s.unsat = true
		}
		return nil
	}
	c := s.allocClause(out)
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return nil
}

// allocClause copies lits into arena-backed clause storage, amortizing
// allocation across the whole encoding and search. Problem clauses live for
// the solver's lifetime; learnt clauses deleted by reduceDB leave their slots
// pinned until the solver is dropped, an acceptable trade for the per-check
// solvers this package serves. Chunks are never reallocated once handed out,
// keeping earlier *clause pointers and lits slices valid.
func (s *Solver) allocClause(lits []Lit) *clause {
	if len(s.clauseMem) == cap(s.clauseMem) {
		s.clauseMem = make([]clause, 0, 512)
	}
	s.clauseMem = s.clauseMem[:len(s.clauseMem)+1]
	c := &s.clauseMem[len(s.clauseMem)-1]
	if cap(s.litMem)-len(s.litMem) < len(lits) {
		n := 1 << 13
		if len(lits) > n {
			n = len(lits)
		}
		s.litMem = make([]Lit, 0, n)
	}
	start := len(s.litMem)
	s.litMem = append(s.litMem, lits...)
	c.lits = s.litMem[start:len(s.litMem):len(s.litMem)]
	return c
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	if len(c.lits) == 2 {
		// Binary clauses get dedicated watch lists: propagation over them
		// never inspects the clause body, and they are never deleted
		// (reduceDB keeps all binary learnts), so the lists need no lazy
		// cleanup.
		s.binWatches[l0.Not()] = append(s.binWatches[l0.Not()], binWatcher{other: l1, c: c})
		s.binWatches[l1.Not()] = append(s.binWatches[l1.Not()], binWatcher{other: l0, c: c})
		return
	}
	s.watchAppend(l0.Not(), watcher{c: c, blocker: l1})
	s.watchAppend(l1.Not(), watcher{c: c, blocker: l0})
}

// watchAppend adds a watcher, seeding fresh lists with an arena-backed block
// with room for several entries: watch lists are numerous and short, and
// letting append grow them 1→2→4 dominated the encoder's allocation profile.
// A list outgrowing its block reallocates normally (the capped three-index
// slice keeps append from spilling into neighboring blocks).
func (s *Solver) watchAppend(l Lit, w watcher) {
	ws := s.watches[l]
	if ws == nil {
		const blockCap = 8
		if cap(s.watchMem)-len(s.watchMem) < blockCap {
			s.watchMem = make([]watcher, 0, 512*blockCap)
		}
		n := len(s.watchMem)
		s.watchMem = s.watchMem[:n+blockCap]
		ws = s.watchMem[n : n : n+blockCap]
	}
	s.watches[l] = append(ws, w)
}

func (s *Solver) detach(c *clause) {
	c.deleted = true // watcher lists drop it lazily during propagation
}

func (s *Solver) value(l Lit) lbool { return litValue(s.assigns[l.Var()], l) }

// Value returns the truth value of v in the model after a sat answer.
func (s *Solver) Value(v Var) bool { return s.assigns[v] == lTrue }

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// enqueue assigns literal l with the given reason clause. It returns false
// when l is already false (a conflict the caller must handle).
func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	s.assigns[v] = boolToLbool(!l.IsNeg())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation until fixpoint, returning a
// conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; visit clauses watching ¬p
		s.qhead++
		s.stats.Propagations++
		// Binary clauses first: each visit is a single array read plus an
		// assignment lookup, and early conflicts here spare the heavier
		// n-ary traversal.
		for _, bw := range s.binWatches[p] {
			switch s.value(bw.other) {
			case lTrue:
			case lFalse:
				s.qhead = len(s.trail)
				return bw.c
			default:
				s.enqueue(bw.other, bw.c)
			}
		}
		ws := s.watches[p]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if w.c.deleted {
				continue
			}
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Ensure c.lits[0] is the other watched literal.
			falseLit := p.Not()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c: c, blocker: first})
				continue
			}
			// Find a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watchAppend(c.lits[1].Not(), watcher{c: c, blocker: first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c: c, blocker: first})
			if s.value(first) == lFalse {
				// Conflict: keep remaining watchers and bail out.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				s.qhead = len(s.trail)
				return c
			}
			if !s.enqueue(first, c) {
				// enqueue cannot fail here: first is not false.
				panic("sat: internal error: enqueue failed on unit literal")
			}
		}
		s.watches[p] = kept
	}
	return nil
}

// theoryFeed relays newly assigned theory literals to the theory solver in
// trail order. It returns a theory conflict explanation or nil.
func (s *Solver) theoryFeed() []Lit {
	if s.opts.Theory == nil {
		return nil
	}
	for s.thead < len(s.trail) {
		l := s.trail[s.thead]
		s.thead++
		if !s.theory[l.Var()] {
			continue
		}
		if expl := s.opts.Theory.Assert(l); expl != nil {
			return expl
		}
	}
	return nil
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := int(s.trailLim[level])
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.polarity[v] = s.trail[i].IsNeg()
		if !s.order.contains(v) {
			s.order.push(v)
		}
	}
	if s.opts.Theory != nil {
		s.opts.Theory.Pop(s.decisionLevel() - level)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = bound
	if s.thead > bound {
		s.thead = bound
	}
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > rescaleLimit {
		for i := range s.activity {
			s.activity[i] /= rescaleLimit
		}
		s.varInc /= rescaleLimit
		s.order.rebuild()
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.clauseInc
	if c.activity > rescaleLimit {
		for _, lc := range s.learnts {
			lc.activity /= rescaleLimit
		}
		s.clauseInc /= rescaleLimit
	}
}

// analyze performs first-UIP conflict analysis. It returns the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	// learnt is scratch reused across conflicts; recordLearnt copies it.
	learnt := append(s.learntBuf[:0], LitUndef) // slot 0 for the asserting literal
	counter := 0
	p := LitUndef
	index := len(s.trail) - 1
	curLevel := s.decisionLevel()

	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= curLevel {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		for !s.seen[s.trail[index].Var()] {
			index--
		}
		p = s.trail[index]
		index--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
		if confl == nil {
			panic("sat: internal error: missing reason during conflict analysis")
		}
	}
	learnt[0] = p.Not()

	// minimize may drop literals whose seen flags must still be cleared, so
	// snapshot the full set first (into reusable scratch).
	collected := append(s.collectBuf[:0], learnt...)
	s.collectBuf = collected
	s.minimize(&learnt)
	s.learntBuf = learnt

	// Find backtrack level: the max level among learnt[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxIdx := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxIdx].Var()] {
				maxIdx = i
			}
		}
		learnt[1], learnt[maxIdx] = learnt[maxIdx], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	for _, l := range collected {
		s.seen[l.Var()] = false
	}
	return learnt, btLevel
}

// minimize removes literals whose reason clause is fully covered by the
// remaining learnt literals (local clause minimization).
func (s *Solver) minimize(learnt *[]Lit) {
	lits := *learnt
	out := lits[:1]
	for i := 1; i < len(lits); i++ {
		l := lits[i]
		r := s.reason[l.Var()]
		if r == nil {
			out = append(out, l)
			continue
		}
		redundant := true
		for _, q := range r.lits {
			if q == l.Not() {
				continue
			}
			if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			out = append(out, l)
		}
	}
	*learnt = out
}

// recordLearnt attaches a learnt clause and enqueues its asserting literal.
func (s *Solver) recordLearnt(learnt []Lit) {
	var proofID uint64
	if s.opts.Proof != nil {
		proofID = s.opts.Proof.LogLearnt(learnt)
	}
	if s.opts.Exchange != nil && len(learnt) <= s.exportMaxLen {
		// Publish copies the literals, so handing it the scratch slice is safe.
		s.opts.Exchange.Publish(learnt)
		s.stats.Exported++
	}
	if len(learnt) == 1 {
		if !s.enqueue(learnt[0], nil) {
			s.unsat = true
		}
		return
	}
	c := s.allocClause(learnt)
	c.id = proofID
	c.learnt = true
	s.learnts = append(s.learnts, c)
	s.attach(c)
	s.bumpClause(c)
	if !s.enqueue(learnt[0], c) {
		panic("sat: internal error: asserting literal already false")
	}
}

// importShared drains the clause exchange and adds every foreign clause that
// passes a local reverse-unit-propagation check. It must be called at
// decision level 0 with propagation at fixpoint (Solve entry and restarts).
// It returns false when an import made the instance unsat at level 0.
func (s *Solver) importShared() bool {
	if s.opts.Exchange == nil {
		return true
	}
	s.importBuf = s.opts.Exchange.Drain(s.importBuf[:0])
	for _, lits := range s.importBuf {
		s.tryImport(lits)
		if s.unsat {
			return false
		}
	}
	return true
}

// tryImport re-derives a foreign clause by reverse unit propagation: assume
// every literal false on a throwaway decision level and propagate. A conflict
// certifies the clause follows from the local database, so it can be logged
// as a Derived record and attached — the certificate checker will reproduce
// exactly the same propagation. No conflict means the clause is not (yet) RUP
// here and is dropped; soundness never depends on the publisher.
//
// The test level is Boolean-only: propagate does not feed the theory, and the
// newDecisionLevel/cancelUntil pair keeps the theory's scope stack aligned,
// so the theory never observes the throwaway assignments.
func (s *Solver) tryImport(lits []Lit) {
	if len(lits) == 0 {
		s.stats.ImportRejected++
		return
	}
	for _, l := range lits {
		if l == LitUndef || int(l.Var()) >= s.nVars {
			// Foreign variable numbering must match ours; a clause over
			// unknown variables is meaningless here.
			s.stats.ImportRejected++
			return
		}
		if s.value(l) == lTrue {
			// Satisfied at level 0: adds nothing.
			s.stats.ImportRejected++
			return
		}
	}
	s.newDecisionLevel()
	for _, l := range lits {
		if s.value(l) == lUndef {
			s.enqueue(l.Not(), nil)
		}
	}
	confl := s.propagate()
	s.cancelUntil(0)
	if confl == nil {
		s.stats.ImportRejected++
		return
	}
	// RUP confirmed. Drop literals false at level 0 (the checker's
	// propagation covers them through the logged units); at least one
	// literal survives — the test level enqueued it, so it is unassigned
	// at the root.
	keep := s.importLits[:0]
	for _, l := range lits {
		if s.value(l) != lFalse {
			keep = append(keep, l)
		}
	}
	s.importLits = keep
	var proofID uint64
	if s.opts.Proof != nil {
		proofID = s.opts.Proof.LogLearnt(keep)
	}
	s.stats.Imported++
	if len(keep) == 1 {
		if !s.enqueue(keep[0], nil) {
			s.unsat = true
		} else if confl := s.propagate(); confl != nil {
			s.unsat = true
		}
		return
	}
	c := s.allocClause(keep)
	c.id = proofID
	c.learnt = true
	s.learnts = append(s.learnts, c)
	s.attach(c)
}

// reduceDB removes roughly half of the learnt clauses, keeping the most
// active and all binary clauses.
func (s *Solver) reduceDB() {
	sort.Sort(byActivityDesc(s.learnts))
	kept := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if c.len() == 2 || i < limit || s.isReason(c) {
			kept = append(kept, c)
			continue
		}
		if s.opts.Proof != nil && c.id != 0 {
			s.opts.Proof.LogDelete(c.id)
		}
		s.detach(c)
	}
	s.learnts = kept
}

// byActivityDesc sorts learnt clauses by descending activity without the
// reflection overhead of sort.Slice.
type byActivityDesc []*clause

func (a byActivityDesc) Len() int           { return len(a) }
func (a byActivityDesc) Less(i, j int) bool { return a[i].activity > a[j].activity }
func (a byActivityDesc) Swap(i, j int)      { a[i], a[j] = a[j], a[i] }

func (s *Solver) isReason(c *clause) bool {
	v := c.lits[0].Var()
	return s.assigns[v] != lUndef && s.reason[v] == c
}

// pickBranchLit selects the next decision literal, or LitUndef when all
// variables are assigned.
func (s *Solver) pickBranchLit() Lit {
	for !s.order.empty() {
		v := s.order.pop()
		if s.assigns[v] == lUndef {
			return NewLit(v, s.polarity[v])
		}
	}
	return LitUndef
}

// luby computes the Luby restart sequence value for 0-based index x:
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
func luby(x int64) int64 {
	// Find the finite subsequence that contains index x and its size.
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << seq
}

// handleConflict runs conflict analysis and backtracking for a conflicting
// clause. It returns false when the formula is proven unsat.
func (s *Solver) handleConflict(confl *clause) bool {
	s.stats.Conflicts++
	if s.decisionLevel() == 0 {
		// A level-0 conflict is permanent: clauses are never retracted, so
		// the instance stays unsat for every future incremental call.
		s.unsat = true
		return false
	}
	learnt, btLevel := s.analyze(confl)
	s.cancelUntil(btLevel)
	s.recordLearnt(learnt)
	if s.unsat {
		return false
	}
	s.decayActivities()
	return true
}

func (s *Solver) decayActivities() {
	s.varInc *= varActivityDecay
	s.clauseInc *= clauseActivityDecay
}

// theoryConflictClause converts a theory explanation (literals that are all
// true) into a conflicting clause of their negations and dispatches it. It
// returns false when the formula is proven unsat.
func (s *Solver) theoryConflictClause(expl []Lit) bool {
	lits := make([]Lit, len(expl))
	maxLevel := 0
	for i, l := range expl {
		if s.value(l) != lTrue {
			panic("sat: theory explanation contains non-true literal")
		}
		lits[i] = l.Not()
		if lv := int(s.level[l.Var()]); lv > maxLevel {
			maxLevel = lv
		}
	}
	if s.opts.Proof != nil {
		// Logged before dispatch so conflict analysis can resolve with the
		// lemma: any clause learnt from this conflict is RUP only against a
		// database that already contains it.
		s.opts.Proof.LogTheoryLemma(lits)
	}
	if maxLevel == 0 {
		// All explaining bounds were asserted at level 0 and are permanent.
		s.unsat = true
		return false
	}
	// The conflict may live entirely below the current decision level;
	// backtrack there first so analyze sees a current-level conflict.
	s.cancelUntil(maxLevel)
	return s.handleConflict(&clause{lits: lits})
}

// pollLimits enforces the propagation budget and polls the Stop hook. It
// returns nil when the search may continue.
func (s *Solver) pollLimits() error {
	if s.opts.MaxPropagations > 0 && s.stats.Propagations-s.baseProps >= s.opts.MaxPropagations {
		return ErrPropBudget
	}
	if s.opts.Stop != nil && s.stats.Propagations >= s.nextPoll {
		s.nextPoll = s.stats.Propagations + stopPollInterval
		return s.opts.Stop()
	}
	return nil
}

// newDecisionLevel opens a fresh decision level, keeping the theory solver's
// scope stack aligned with the SAT trail.
func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
	if s.opts.Theory != nil {
		s.opts.Theory.Push()
	}
}

// Backtrack undoes every decision and assumption, returning the solver (and
// the theory solver mirroring its scopes) to decision level 0. After a
// StatusSat answer the satisfying assignment — and any theory-side model —
// stays in place until Backtrack is called, so incremental callers extract
// the model first, then Backtrack, then add clauses for the next
// SolveAssuming.
func (s *Solver) Backtrack() { s.cancelUntil(0) }

// ResetPhases restores every variable's saved phase to the default polarity
// (false). Model-enumeration loops (blocking-clause candidate search) call
// this between Solves on a persistent instance: phase saving otherwise
// steers each re-solve to a near neighbor of the just-blocked model, which
// can multiply the number of enumeration rounds. Learnt clauses and
// activities are untouched.
func (s *Solver) ResetPhases() {
	for i := range s.polarity {
		s.polarity[i] = true
	}
}

// FinalConflict returns the subset of the assumptions passed to the last
// SolveAssuming call found jointly unsatisfiable with the clause set, the
// directly falsified assumption first. It returns nil when the last answer
// was not an assumption-driven StatusUnsat — in particular when the clause
// set is unsatisfiable regardless of assumptions. The slice is overwritten
// by the next SolveAssuming call.
func (s *Solver) FinalConflict() []Lit {
	if len(s.conflict) == 0 {
		return nil
	}
	return s.conflict
}

// analyzeFinal computes the final conflict for assumption p that was found
// false at its decision point: p plus every earlier assumption whose
// decision participates in deriving ¬p (MiniSat's analyzeFinal). The result
// lands in s.conflict.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflict = append(s.conflict[:0], p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = true
	bound := int(s.trailLim[0])
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if r := s.reason[v]; r == nil {
			// A decision above level 0 can only be an assumption (dummy
			// levels for already-true assumptions enqueue nothing).
			s.conflict = append(s.conflict, s.trail[i])
		} else {
			for _, q := range r.lits {
				if q.Var() != v && s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
}

// Solve runs the CDCL search and returns the status. On StatusSat the model
// is available through Value. StatusUnknown is always accompanied by a
// non-nil error saying why the search stopped early (budget exhaustion, a
// Stop-hook cancellation, or a theory-side abort). It is SolveAssuming with
// no assumptions.
func (s *Solver) Solve() (Status, error) { return s.SolveAssuming() }

// SolveAssuming runs the CDCL search under the given assumption literals,
// which are decided (in order) before any free decision. StatusUnsat means
// the clauses are unsatisfiable together with the assumptions;
// FinalConflict then names the responsible assumption subset (nil when the
// clauses alone are unsat). Clauses and learnt clauses persist across calls,
// which is what makes repeated calls incremental: add clauses between calls
// (after Backtrack) and flip assumptions per call.
func (s *Solver) SolveAssuming(assumps ...Lit) (Status, error) {
	s.cancelUntil(0)
	s.conflict = s.conflict[:0]
	if s.unsat {
		return StatusUnsat, nil
	}
	for _, l := range assumps {
		if l == LitUndef || int(l.Var()) >= s.nVars {
			return StatusUnknown, fmt.Errorf("sat: assumption references unknown literal %v", l)
		}
	}
	// Baseline the per-call budgets and the Stop-poll cursor against the
	// cumulative counters (see the field comments).
	s.baseConflicts = s.stats.Conflicts
	s.baseProps = s.stats.Propagations
	s.nextPoll = s.stats.Propagations
	if s.opts.Stop != nil {
		// Poll once up front so an already-expired deadline aborts before
		// any search work, however large the instance.
		if err := s.opts.Stop(); err != nil {
			return StatusUnknown, err
		}
	}
	if confl := s.propagate(); confl != nil {
		s.unsat = true
		return StatusUnsat, nil
	}
	if expl := s.theoryFeed(); expl != nil {
		// Top-level theory conflict over permanent level-0 bounds. The lemma
		// still goes into the proof: its literals are all false at level 0,
		// so the checker derives the contradiction by propagation.
		if s.opts.Proof != nil {
			lits := make([]Lit, len(expl))
			for i, l := range expl {
				lits[i] = l.Not()
			}
			s.opts.Proof.LogTheoryLemma(lits)
		}
		s.unsat = true
		return StatusUnsat, nil
	}
	if s.opts.Theory != nil {
		s.stats.TheoryChecks++
		expl, err := s.opts.Theory.Check(false)
		if err != nil {
			return StatusUnknown, err
		}
		if expl != nil {
			if !s.theoryConflictClause(expl) {
				return StatusUnsat, nil
			}
		}
	}

	if !s.importShared() {
		return StatusUnsat, nil
	}

	s.maxLearnts = float64(len(s.clauses))/3 + 1000
	restartNum := int64(0)
	restartUnit := s.opts.Tuning.RestartUnit
	if restartUnit <= 0 {
		restartUnit = lubyUnit
	}
	restartGrowth := s.opts.Tuning.RestartGrowth
	if restartGrowth <= 1 {
		restartGrowth = 1.5
	}
	geomLen := float64(restartUnit)
	conflictsUntilRestart := luby(restartNum) * restartUnit
	if s.opts.Tuning.Restart == RestartGeometric {
		conflictsUntilRestart = int64(geomLen)
	}
	s.budget = s.opts.MaxConflicts

	for {
		if err := s.pollLimits(); err != nil {
			return StatusUnknown, err
		}
		confl := s.propagate()
		if confl == nil {
			if expl := s.theoryFeed(); expl != nil {
				if !s.theoryConflictClause(expl) {
					return StatusUnsat, nil
				}
				continue
			}
			if s.opts.Theory != nil && s.opts.CheckAtFixpoint {
				s.stats.TheoryChecks++
				expl, err := s.opts.Theory.Check(false)
				if err != nil {
					return StatusUnknown, err
				}
				if expl != nil {
					if !s.theoryConflictClause(expl) {
						return StatusUnsat, nil
					}
					continue
				}
			}
		}
		if confl != nil {
			if !s.handleConflict(confl) {
				return StatusUnsat, nil
			}
			if s.budget > 0 && s.stats.Conflicts-s.baseConflicts >= s.budget {
				return StatusUnknown, ErrBudget
			}
			if s.opts.Stop != nil {
				if err := s.opts.Stop(); err != nil {
					return StatusUnknown, err
				}
			}
			conflictsUntilRestart--
			continue
		}

		if conflictsUntilRestart <= 0 {
			s.stats.Restarts++
			restartNum++
			if s.opts.Tuning.Restart == RestartGeometric {
				geomLen *= restartGrowth
				conflictsUntilRestart = int64(geomLen)
			} else {
				conflictsUntilRestart = luby(restartNum) * restartUnit
			}
			s.cancelUntil(0)
			// Restarts are the natural import point: level 0, propagation at
			// fixpoint, and about to re-descend.
			if !s.importShared() {
				return StatusUnsat, nil
			}
			continue
		}
		if float64(len(s.learnts)) > s.maxLearnts {
			s.reduceDB()
			s.maxLearnts *= 1.2
		}

		// Decide the next pending assumption; dummy levels keep decision
		// levels aligned with assumption indices when an assumption is
		// already implied.
		next := LitUndef
		for next == LitUndef && s.decisionLevel() < len(assumps) {
			p := assumps[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.newDecisionLevel()
			case lFalse:
				s.analyzeFinal(p)
				s.cancelUntil(0)
				return StatusUnsat, nil
			default:
				next = p
			}
		}
		if next == LitUndef {
			next = s.pickBranchLit()
			if next == LitUndef {
				// Full assignment: run the final theory check.
				if s.opts.Theory != nil {
					s.stats.TheoryChecks++
					expl, err := s.opts.Theory.Check(true)
					if err != nil {
						return StatusUnknown, err
					}
					if expl != nil {
						if !s.theoryConflictClause(expl) {
							return StatusUnsat, nil
						}
						continue
					}
				}
				return StatusSat, nil
			}
		}
		s.stats.Decisions++
		s.newDecisionLevel()
		if !s.enqueue(next, nil) {
			panic("sat: internal error: decision literal already assigned")
		}
	}
}
