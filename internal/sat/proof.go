package sat

// ProofLogger receives the solver's clausal derivations as they happen,
// enabling DRAT-style proof logging (package proof provides the standard
// implementation). All hooks are called at the moment the corresponding
// clause becomes (or stops being) available to the search:
//
//   - LogInput for every clause handed to AddClause, pre-normalization —
//     input clauses are the trusted side of the certificate;
//   - LogLearnt for every clause produced by conflict analysis (checkable
//     by reverse unit propagation against the clauses logged so far);
//   - LogTheoryLemma for every theory-conflict clause, immediately after
//     the theory reported the conflict — a theory-side channel may stage a
//     certificate (e.g. Farkas coefficients) for it;
//   - LogDelete when reduceDB retires a learnt clause.
//
// The returned ids let the solver name clauses in deletion records. A nil
// ProofLogger (the default) costs one pointer comparison per site.
type ProofLogger interface {
	LogInput(lits []Lit)
	LogLearnt(lits []Lit) uint64
	LogTheoryLemma(lits []Lit) uint64
	LogDelete(id uint64)
}
