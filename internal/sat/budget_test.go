package sat

import (
	"errors"
	"testing"
)

// TestBudgetMaxPropagations exhausts the propagation budget on a hard
// instance: the solver must stop with StatusUnknown, ErrPropBudget, and
// partial statistics at (or just past) the limit.
func TestBudgetMaxPropagations(t *testing.T) {
	s := NewSolver(Options{MaxPropagations: 50})
	addPigeonhole(t, s, 8)
	st, err := s.Solve()
	if st != StatusUnknown {
		t.Fatalf("Solve = %v, want unknown", st)
	}
	if !errors.Is(err, ErrPropBudget) {
		t.Fatalf("err = %v, want ErrPropBudget", err)
	}
	stats := s.Statistics()
	if stats.Propagations < 50 {
		t.Fatalf("Propagations = %d, want >= budget 50", stats.Propagations)
	}
}

// TestBudgetMaxConflicts checks the conflict budget still returns Unknown
// with ErrBudget and statistics at the cap.
func TestBudgetMaxConflicts(t *testing.T) {
	s := NewSolver(Options{MaxConflicts: 10})
	addPigeonhole(t, s, 8)
	st, err := s.Solve()
	if st != StatusUnknown {
		t.Fatalf("Solve = %v, want unknown", st)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if got := s.Statistics().Conflicts; got < 10 {
		t.Fatalf("Conflicts = %d, want >= budget 10", got)
	}
}

// TestBudgetStopHookPreflight verifies that an already-firing Stop hook
// aborts the solve before any search work.
func TestBudgetStopHookPreflight(t *testing.T) {
	boom := errors.New("stop now")
	s := NewSolver(Options{Stop: func() error { return boom }})
	addPigeonhole(t, s, 6)
	st, err := s.Solve()
	if st != StatusUnknown || !errors.Is(err, boom) {
		t.Fatalf("Solve = %v, %v; want unknown with stop error", st, err)
	}
	if got := s.Statistics().Conflicts; got != 0 {
		t.Fatalf("Conflicts = %d before first poll, want 0", got)
	}
}

// TestBudgetStopHookMidSearch fires the Stop hook after a fixed number of
// polls, checking the solver aborts deterministically mid-search with
// partial stats.
func TestBudgetStopHookMidSearch(t *testing.T) {
	boom := errors.New("stop now")
	polls := 0
	s := NewSolver(Options{Stop: func() error {
		polls++
		if polls > 5 {
			return boom
		}
		return nil
	}})
	addPigeonhole(t, s, 8)
	st, err := s.Solve()
	if st != StatusUnknown || !errors.Is(err, boom) {
		t.Fatalf("Solve = %v, %v; want unknown with stop error", st, err)
	}
	if got := s.Statistics().Conflicts; got == 0 {
		t.Fatalf("Conflicts = 0, want mid-search interruption after some work")
	}
}

// TestBudgetStopHookNilKeepsSolving makes sure the default (no hook, no
// budgets) still decides the instance.
func TestBudgetStopHookNilKeepsSolving(t *testing.T) {
	s := NewSolver(Options{})
	addPigeonhole(t, s, 6)
	st, err := s.Solve()
	if err != nil || st != StatusUnsat {
		t.Fatalf("Solve = %v, %v; want unsat", st, err)
	}
}
