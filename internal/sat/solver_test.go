package sat

import (
	"math/rand"
	"testing"
)

func mustAdd(t *testing.T, s *Solver, lits ...Lit) {
	t.Helper()
	if err := s.AddClause(lits...); err != nil {
		t.Fatalf("AddClause(%v): %v", lits, err)
	}
}

func newVars(s *Solver, n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	return vs
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := NewSolver(Options{})
	if st, err := s.Solve(); err != nil || st != StatusSat {
		t.Fatalf("Solve() = %v, %v; want sat", st, err)
	}
}

func TestSingleUnit(t *testing.T) {
	s := NewSolver(Options{})
	v := s.NewVar()
	mustAdd(t, s, PosLit(v))
	if st, _ := s.Solve(); st != StatusSat {
		t.Fatalf("want sat")
	}
	if !s.Value(v) {
		t.Fatalf("Value(v) = false, want true")
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := NewSolver(Options{})
	v := s.NewVar()
	mustAdd(t, s, PosLit(v))
	mustAdd(t, s, NegLit(v))
	if st, _ := s.Solve(); st != StatusUnsat {
		t.Fatalf("want unsat")
	}
}

func TestEmptyClauseIsUnsat(t *testing.T) {
	s := NewSolver(Options{})
	mustAdd(t, s)
	if st, _ := s.Solve(); st != StatusUnsat {
		t.Fatalf("want unsat")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := NewSolver(Options{})
	v := s.NewVar()
	mustAdd(t, s, PosLit(v), NegLit(v))
	if st, _ := s.Solve(); st != StatusSat {
		t.Fatalf("want sat")
	}
}

func TestUnknownLiteralRejected(t *testing.T) {
	s := NewSolver(Options{})
	if err := s.AddClause(PosLit(Var(3))); err == nil {
		t.Fatalf("AddClause with unknown var succeeded, want error")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// a, a→b, b→c must force c.
	s := NewSolver(Options{})
	vs := newVars(s, 3)
	mustAdd(t, s, PosLit(vs[0]))
	mustAdd(t, s, NegLit(vs[0]), PosLit(vs[1]))
	mustAdd(t, s, NegLit(vs[1]), PosLit(vs[2]))
	if st, _ := s.Solve(); st != StatusSat {
		t.Fatalf("want sat")
	}
	for i, v := range vs {
		if !s.Value(v) {
			t.Errorf("Value(v%d) = false, want true", i)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes is unsat. n=5 exercises real
	// conflict analysis and restarts.
	const holes = 5
	const pigeons = holes + 1
	s := NewSolver(Options{})
	vs := make([][]Var, pigeons)
	for p := range vs {
		vs[p] = newVars(s, holes)
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vs[p][h])
		}
		mustAdd(t, s, lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				mustAdd(t, s, NegLit(vs[p1][h]), NegLit(vs[p2][h]))
			}
		}
	}
	if st, _ := s.Solve(); st != StatusUnsat {
		t.Fatalf("pigeonhole want unsat")
	}
}

func TestGraphColoringSat(t *testing.T) {
	// A 5-cycle is 3-colorable.
	const n, k = 5, 3
	s := NewSolver(Options{})
	color := make([][]Var, n)
	for i := range color {
		color[i] = newVars(s, k)
	}
	for i := 0; i < n; i++ {
		lits := make([]Lit, k)
		for c := 0; c < k; c++ {
			lits[c] = PosLit(color[i][c])
		}
		mustAdd(t, s, lits...)
		j := (i + 1) % n
		for c := 0; c < k; c++ {
			mustAdd(t, s, NegLit(color[i][c]), NegLit(color[j][c]))
		}
	}
	if st, _ := s.Solve(); st != StatusSat {
		t.Fatalf("want sat")
	}
	// Check model is a proper coloring.
	pick := func(i int) int {
		for c := 0; c < k; c++ {
			if s.Value(color[i][c]) {
				return c
			}
		}
		return -1
	}
	for i := 0; i < n; i++ {
		ci, cj := pick(i), pick((i+1)%n)
		if ci < 0 {
			t.Fatalf("vertex %d has no color", i)
		}
		if ci == cj {
			t.Fatalf("adjacent vertices %d,%d share color %d", i, (i+1)%n, ci)
		}
	}
}

func TestTwoCycleOddUnsat(t *testing.T) {
	// A triangle is not 2-colorable.
	const n, k = 3, 2
	s := NewSolver(Options{})
	color := make([][]Var, n)
	for i := range color {
		color[i] = newVars(s, k)
	}
	for i := 0; i < n; i++ {
		mustAdd(t, s, PosLit(color[i][0]), PosLit(color[i][1]))
		for j := i + 1; j < n; j++ {
			for c := 0; c < k; c++ {
				mustAdd(t, s, NegLit(color[i][c]), NegLit(color[j][c]))
			}
		}
	}
	if st, _ := s.Solve(); st != StatusUnsat {
		t.Fatalf("want unsat")
	}
}

func TestConflictBudget(t *testing.T) {
	const holes = 7
	s := NewSolver(Options{MaxConflicts: 3})
	vs := make([][]Var, holes+1)
	for p := range vs {
		vs[p] = newVars(s, holes)
	}
	for p := 0; p <= holes; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vs[p][h])
		}
		mustAdd(t, s, lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 <= holes; p1++ {
			for p2 := p1 + 1; p2 <= holes; p2++ {
				mustAdd(t, s, NegLit(vs[p1][h]), NegLit(vs[p2][h]))
			}
		}
	}
	st, err := s.Solve()
	if st != StatusUnknown || err == nil {
		t.Fatalf("Solve() = %v, %v; want unknown with budget error", st, err)
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

// bruteForceSat exhaustively checks satisfiability of a CNF over n vars.
func bruteForceSat(n int, cnf [][]Lit) bool {
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := mask>>uint(l.Var())&1 == 1
				if l.IsNeg() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func modelSatisfies(s *Solver, cnf [][]Lit) bool {
	for _, cl := range cnf {
		sat := false
		for _, l := range cl {
			val := s.Value(l.Var())
			if l.IsNeg() {
				val = !val
			}
			if val {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// TestRandomCNFAgainstBruteForce fuzzes the solver with random 3-CNF
// instances near the phase-transition density and cross-checks sat/unsat and
// model validity against exhaustive search.
func TestRandomCNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		n := 3 + rng.Intn(8)   // 3..10 vars
		m := 2 + rng.Intn(5*n) // up to ~5n clauses
		cnf := make([][]Lit, 0, m)
		for c := 0; c < m; c++ {
			width := 1 + rng.Intn(3)
			cl := make([]Lit, width)
			for i := range cl {
				cl[i] = NewLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		s := NewSolver(Options{})
		newVars(s, n)
		for _, cl := range cnf {
			if err := s.AddClause(cl...); err != nil {
				t.Fatalf("trial %d: AddClause: %v", trial, err)
			}
		}
		st, err := s.Solve()
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		want := bruteForceSat(n, cnf)
		if (st == StatusSat) != want {
			t.Fatalf("trial %d: got %v, brute force says sat=%v\ncnf=%v", trial, st, want, cnf)
		}
		if st == StatusSat && !modelSatisfies(s, cnf) {
			t.Fatalf("trial %d: model does not satisfy formula\ncnf=%v", trial, cnf)
		}
	}
}

// TestRandomCNFStatistics sanity-checks that statistics counters move.
func TestRandomCNFStatistics(t *testing.T) {
	s := NewSolver(Options{})
	vs := newVars(s, 20)
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < 85; c++ {
		cl := make([]Lit, 3)
		for i := range cl {
			cl[i] = NewLit(vs[rng.Intn(len(vs))], rng.Intn(2) == 1)
		}
		mustAdd(t, s, cl...)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	st := s.Statistics()
	if st.Vars != 20 {
		t.Errorf("Stats.Vars = %d, want 20", st.Vars)
	}
	if st.Decisions == 0 {
		t.Errorf("Stats.Decisions = 0, want > 0")
	}
}

func TestLitHelpers(t *testing.T) {
	v := Var(3)
	p, n := PosLit(v), NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatalf("Var round-trip broken")
	}
	if p.IsNeg() || !n.IsNeg() {
		t.Fatalf("sign accessors broken")
	}
	if p.Not() != n || n.Not() != p {
		t.Fatalf("Not() broken")
	}
	if p.String() != "4" || n.String() != "-4" {
		t.Fatalf("String() = %q,%q; want 4,-4", p, n)
	}
	if LitUndef.String() != "undef" {
		t.Fatalf("LitUndef.String() = %q", LitUndef.String())
	}
}
