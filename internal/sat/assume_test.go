package sat

import (
	"errors"
	"math/rand"
	"testing"
)

// TestSolveAssumingBasic exercises assumption-driven solving on a tiny
// instance: the same clause set answers differently under different
// assumptions, without any re-encoding.
func TestSolveAssumingBasic(t *testing.T) {
	s := NewSolver(Options{})
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// a → b, b → c, c → ¬a would make {a} unsat; use exactly that.
	mustAdd(t, s, NegLit(a), PosLit(b))
	mustAdd(t, s, NegLit(b), PosLit(c))
	mustAdd(t, s, NegLit(c), NegLit(a))

	st, err := s.SolveAssuming(PosLit(a))
	if err != nil || st != StatusUnsat {
		t.Fatalf("SolveAssuming(a) = %v, %v; want unsat", st, err)
	}
	confl := s.FinalConflict()
	if len(confl) == 0 {
		t.Fatalf("FinalConflict = nil, want the failed assumption subset")
	}
	for _, l := range confl {
		if l != PosLit(a) {
			t.Fatalf("FinalConflict contains %v, want only the assumption a", l)
		}
	}

	st, err = s.SolveAssuming(NegLit(a))
	if err != nil || st != StatusSat {
		t.Fatalf("SolveAssuming(¬a) = %v, %v; want sat", st, err)
	}
	if s.Value(a) {
		t.Fatalf("model sets a under assumption ¬a")
	}
	if s.FinalConflict() != nil {
		t.Fatalf("FinalConflict non-nil after sat")
	}
	s.Backtrack()

	// No assumptions: satisfiable (pick ¬a).
	st, err = s.Solve()
	if err != nil || st != StatusSat {
		t.Fatalf("Solve = %v, %v; want sat", st, err)
	}
}

// TestSolveAssumingContradictoryAssumptions checks a conflict between the
// assumptions themselves is detected and explained.
func TestSolveAssumingContradictoryAssumptions(t *testing.T) {
	s := NewSolver(Options{})
	a := s.NewVar()
	b := s.NewVar()
	mustAdd(t, s, PosLit(a), PosLit(b)) // keep both vars constrained

	st, err := s.SolveAssuming(PosLit(a), NegLit(a))
	if err != nil || st != StatusUnsat {
		t.Fatalf("SolveAssuming(a, ¬a) = %v, %v; want unsat", st, err)
	}
	confl := s.FinalConflict()
	seen := map[Lit]bool{}
	for _, l := range confl {
		seen[l] = true
	}
	if !seen[PosLit(a)] || !seen[NegLit(a)] {
		t.Fatalf("FinalConflict = %v, want both a and ¬a", confl)
	}
}

// TestSolveAssumingGlobalUnsat checks that a clause-set contradiction (not
// assumption-driven) reports a nil FinalConflict.
func TestSolveAssumingGlobalUnsat(t *testing.T) {
	s := NewSolver(Options{})
	a := s.NewVar()
	b := s.NewVar()
	mustAdd(t, s, PosLit(a))
	mustAdd(t, s, NegLit(a))
	st, err := s.SolveAssuming(PosLit(b))
	if err != nil || st != StatusUnsat {
		t.Fatalf("SolveAssuming = %v, %v; want unsat", st, err)
	}
	if c := s.FinalConflict(); c != nil {
		t.Fatalf("FinalConflict = %v, want nil for a global contradiction", c)
	}
}

// TestSolveAssumingIncrementalClauses interleaves clause additions with
// assumption solves, the selector-literal pattern the SMT layer uses: each
// "scope" guard g_i disables its clause once ¬g_i is asserted.
func TestSolveAssumingIncrementalClauses(t *testing.T) {
	s := NewSolver(Options{})
	x := s.NewVar()
	g1 := s.NewVar()
	mustAdd(t, s, PosLit(x)) // base: x
	// Scoped clause ¬x guarded by g1.
	mustAdd(t, s, NegLit(x), NegLit(g1))

	st, err := s.SolveAssuming(PosLit(g1))
	if err != nil || st != StatusUnsat {
		t.Fatalf("with scope live: %v, %v; want unsat", st, err)
	}
	// Pop the scope: permanently disable g1's clauses.
	mustAdd(t, s, NegLit(g1))
	st, err = s.Solve()
	if err != nil || st != StatusSat {
		t.Fatalf("after pop: %v, %v; want sat", st, err)
	}
	if !s.Value(x) {
		t.Fatalf("model must keep x true")
	}
	s.Backtrack()

	// A new scope over a fresh selector works on the same instance.
	g2 := s.NewVar()
	mustAdd(t, s, NegLit(x), NegLit(g2))
	st, err = s.SolveAssuming(PosLit(g2))
	if err != nil || st != StatusUnsat {
		t.Fatalf("second scope: %v, %v; want unsat", st, err)
	}
}

// TestBudgetPerCallNotCumulative is the regression test for the cumulative
// budget accounting bug: Solve used to compare the per-call
// MaxConflicts/MaxPropagations budgets against the cumulative stats
// counters, so a second Solve on the same instance instantly returned
// ErrBudget/ErrPropBudget even though it did no work of its own.
func TestBudgetPerCallNotCumulative(t *testing.T) {
	// Guard every pigeonhole clause with a selector g so unsatisfiability is
	// assumption-relative: a permanent (level-0) unsat would let later calls
	// short-circuit without ever consulting the budgets.
	guardedPigeonhole := func(t *testing.T, s *Solver, holes int) Lit {
		t.Helper()
		g := PosLit(s.NewVar())
		pigeons := holes + 1
		vs := make([][]Var, pigeons)
		for p := range vs {
			vs[p] = newVars(s, holes)
		}
		for p := 0; p < pigeons; p++ {
			lits := make([]Lit, 0, holes+1)
			for h := 0; h < holes; h++ {
				lits = append(lits, PosLit(vs[p][h]))
			}
			mustAdd(t, s, append(lits, g.Not())...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					mustAdd(t, s, NegLit(vs[p1][h]), NegLit(vs[p2][h]), g.Not())
				}
			}
		}
		return g
	}
	t.Run("conflicts", func(t *testing.T) {
		s := NewSolver(Options{})
		g := guardedPigeonhole(t, s, 6)
		st, err := s.SolveAssuming(g)
		if err != nil || st != StatusUnsat {
			t.Fatalf("first Solve = %v, %v; want unsat", st, err)
		}
		used := s.Statistics().Conflicts
		if used == 0 {
			t.Fatalf("test instance solved without conflicts; pick a harder one")
		}
		// Per-call budget equal to the cumulative counter: the old code
		// compared the budget against cumulative stats and returned ErrBudget
		// before doing any work; the fixed code measures this call's own
		// conflicts (far fewer, thanks to the retained learnt clauses).
		s.SetBudgets(used, 0)
		st, err = s.SolveAssuming(g)
		if errors.Is(err, ErrBudget) {
			t.Fatalf("second Solve spuriously hit the conflict budget (cumulative %d, per-call budget %d)",
				s.Statistics().Conflicts, used)
		}
		if err != nil || st != StatusUnsat {
			t.Fatalf("second Solve = %v, %v; want unsat", st, err)
		}
	})
	t.Run("propagations", func(t *testing.T) {
		s := NewSolver(Options{})
		g := guardedPigeonhole(t, s, 6)
		st, err := s.SolveAssuming(g)
		if err != nil || st != StatusUnsat {
			t.Fatalf("first Solve = %v, %v; want unsat", st, err)
		}
		used := s.Statistics().Propagations
		if used == 0 {
			t.Fatalf("test instance solved without propagations; pick a harder one")
		}
		s.SetBudgets(0, used)
		st, err = s.SolveAssuming(g)
		if errors.Is(err, ErrPropBudget) {
			t.Fatalf("second Solve spuriously hit the propagation budget (cumulative %d, per-call budget %d)",
				s.Statistics().Propagations, used)
		}
		if err != nil || st != StatusUnsat {
			t.Fatalf("second Solve = %v, %v; want unsat", st, err)
		}
	})
	t.Run("stop-poll-cursor", func(t *testing.T) {
		// nextPoll used to carry over between calls; after a first call the
		// hook would not be polled again until the stale cursor was passed.
		// With the fix, every non-short-circuited call polls its Stop hook at
		// least once (a permanently-unsat instance returns before polling, so
		// use a satisfiable one).
		polls := 0
		s := NewSolver(Options{Stop: func() error { polls++; return nil }})
		vs := make([]Var, 50)
		for i := range vs {
			vs[i] = s.NewVar()
		}
		for i := 0; i+1 < len(vs); i++ {
			mustAdd(t, s, NegLit(vs[i]), PosLit(vs[i+1]))
		}
		if st, err := s.Solve(); err != nil || st != StatusSat {
			t.Fatalf("first Solve = %v, %v; want sat", st, err)
		}
		s.Backtrack()
		after := polls
		if st, err := s.SolveAssuming(PosLit(vs[0])); err != nil || st != StatusSat {
			t.Fatalf("second Solve = %v, %v; want sat", st, err)
		}
		s.Backtrack()
		if polls <= after {
			t.Fatalf("second Solve never polled the Stop hook (polls %d → %d)", after, polls)
		}
	})
}

// TestSolveAssumingAgainstFresh cross-checks assumption-based reuse against
// a fresh solver with the assumptions added as unit clauses, on random 3-SAT
// instances near the phase transition.
func TestSolveAssumingAgainstFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nVars, nClauses = 30, 120
	for round := 0; round < 30; round++ {
		clauses := make([][]Lit, nClauses)
		for i := range clauses {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = NewLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0)
			}
			clauses[i] = cl
		}
		reused := NewSolver(Options{})
		for i := 0; i < nVars; i++ {
			reused.NewVar()
		}
		for _, cl := range clauses {
			mustAdd(t, reused, cl...)
		}
		for trial := 0; trial < 5; trial++ {
			assumps := make([]Lit, rng.Intn(4))
			for i := range assumps {
				assumps[i] = NewLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0)
			}
			gotSt, err := reused.SolveAssuming(assumps...)
			if err != nil {
				t.Fatalf("round %d trial %d: SolveAssuming: %v", round, trial, err)
			}
			reused.Backtrack()

			fresh := NewSolver(Options{})
			for i := 0; i < nVars; i++ {
				fresh.NewVar()
			}
			for _, cl := range clauses {
				mustAdd(t, fresh, cl...)
			}
			for _, l := range assumps {
				mustAdd(t, fresh, l)
			}
			wantSt, err := fresh.Solve()
			if err != nil {
				t.Fatalf("round %d trial %d: fresh Solve: %v", round, trial, err)
			}
			if gotSt != wantSt {
				t.Fatalf("round %d trial %d: reused %v vs fresh %v under %v",
					round, trial, gotSt, wantSt, assumps)
			}
		}
	}
}

// TestResetPhases checks that ResetPhases clears saved phases back to the
// default (false) polarity. Phases are saved when Backtrack unwinds
// assignments made above level 0, so the test forces a positive assignment
// through propagation under a decision rather than a level-0 unit.
func TestResetPhases(t *testing.T) {
	s := NewSolver(Options{})
	vs := newVars(s, 2)
	x, y := vs[0], vs[1]
	// Default phase decides ¬x, then (x ∨ y) propagates y=true at level 1;
	// Backtrack saves y's positive phase.
	mustAdd(t, s, PosLit(x), PosLit(y))
	if st, err := s.Solve(); err != nil || st != StatusSat {
		t.Fatalf("Solve = %v, %v", st, err)
	}
	s.Backtrack()
	if s.polarity[y] {
		t.Fatalf("var %v: positive phase not saved after backtrack", y)
	}
	s.ResetPhases()
	if !s.polarity[x] || !s.polarity[y] {
		t.Fatalf("ResetPhases did not restore the default phase (x=%v y=%v)",
			s.polarity[x], s.polarity[y])
	}
}
