package acflow

import (
	"math"
	"testing"

	"segrid/internal/dcflow"
	"segrid/internal/grid"
)

// twoBus returns a minimal network: one line, R=0.01, X=0.1.
func twoBus(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork("twobus", 2, []Branch{{ID: 1, From: 1, To: 2, R: 0.01, X: 0.1}})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n
}

func TestNewNetworkValidation(t *testing.T) {
	tests := []struct {
		name     string
		buses    int
		branches []Branch
	}{
		{"one bus", 1, []Branch{{ID: 1, From: 1, To: 1, X: 0.1}}},
		{"no branches", 3, nil},
		{"bad id", 3, []Branch{{ID: 2, From: 1, To: 2, X: 0.1}}},
		{"self loop", 3, []Branch{{ID: 1, From: 2, To: 2, X: 0.1}}},
		{"zero x", 3, []Branch{{ID: 1, From: 1, To: 2, X: 0}}},
		{"out of range", 3, []Branch{{ID: 1, From: 1, To: 9, X: 0.1}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewNetwork("bad", tc.buses, tc.branches); err == nil {
				t.Fatalf("invalid network accepted")
			}
		})
	}
}

func TestSeriesAdmittance(t *testing.T) {
	br := Branch{R: 0.01, X: 0.1}
	g, b := br.Series()
	d := 0.01*0.01 + 0.1*0.1
	if math.Abs(g-0.01/d) > 1e-12 || math.Abs(b+0.1/d) > 1e-12 {
		t.Fatalf("Series = %v,%v", g, b)
	}
}

func TestTwoBusFlowAgainstHandCalc(t *testing.T) {
	n := twoBus(t)
	p := make([]float64, 3)
	q := make([]float64, 3)
	p[2] = -0.5 // load of 0.5 p.u.
	q[2] = -0.2
	st, err := n.Solve(FlowCase{Slack: 1, SlackV: 1.0, P: p, Q: q})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// The solution must satisfy the power balance equations exactly.
	pc, qc := n.Injections(st)
	if math.Abs(pc[2]+0.5) > 1e-8 || math.Abs(qc[2]+0.2) > 1e-8 {
		t.Fatalf("bus 2 injections = %v, %v; want −0.5, −0.2", pc[2], qc[2])
	}
	// Receiving-end voltage sags and angle lags.
	if st.V[2] >= 1.0 {
		t.Errorf("V2 = %v, want < 1 under load", st.V[2])
	}
	if st.Theta[2] >= 0 {
		t.Errorf("θ2 = %v, want < 0 under load", st.Theta[2])
	}
	// Line losses: sending P exceeds 0.5.
	pf, _, err := n.BranchFlow(st, 1, 1)
	if err != nil {
		t.Fatalf("BranchFlow: %v", err)
	}
	if pf <= 0.5 {
		t.Errorf("sending-end P = %v, want > 0.5 (losses)", pf)
	}
}

func TestFlowBalancesOnIEEE14Lift(t *testing.T) {
	sys := grid.IEEE14()
	n, err := FromDC(sys, 0.2, 0.02)
	if err != nil {
		t.Fatalf("FromDC: %v", err)
	}
	p := make([]float64, n.Buses+1)
	q := make([]float64, n.Buses+1)
	for j := 2; j <= n.Buses; j++ {
		p[j] = -(0.05 + 0.01*float64(j%5))
		q[j] = -0.02
	}
	st, err := n.Solve(FlowCase{Slack: 1, SlackV: 1.02, P: p, Q: q})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	pc, qc := n.Injections(st)
	for j := 2; j <= n.Buses; j++ {
		if math.Abs(pc[j]-p[j]) > 1e-7 || math.Abs(qc[j]-q[j]) > 1e-7 {
			t.Fatalf("bus %d: injections %v,%v want %v,%v", j, pc[j], qc[j], p[j], q[j])
		}
	}
	// Slack absorbs losses: total P injection is positive (losses > 0).
	total := 0.0
	for j := 1; j <= n.Buses; j++ {
		total += pc[j]
	}
	if total <= 0 {
		t.Errorf("total injection %v, want > 0 (resistive losses)", total)
	}
}

func TestPVBusHoldsVoltage(t *testing.T) {
	sys := grid.IEEE14()
	n, err := FromDC(sys, 0.2, 0.0)
	if err != nil {
		t.Fatalf("FromDC: %v", err)
	}
	p := make([]float64, n.Buses+1)
	q := make([]float64, n.Buses+1)
	for j := 2; j <= n.Buses; j++ {
		p[j] = -0.05
		q[j] = -0.02
	}
	p[2] = 0.4 // generator at bus 2
	st, err := n.Solve(FlowCase{
		Slack: 1, SlackV: 1.02,
		P: p, Q: q,
		PV: map[int]float64{2: 1.01},
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(st.V[2]-1.01) > 1e-9 {
		t.Fatalf("PV bus voltage %v, want 1.01", st.V[2])
	}
	pc, _ := n.Injections(st)
	if math.Abs(pc[2]-0.4) > 1e-7 {
		t.Fatalf("PV bus P %v, want 0.4", pc[2])
	}
}

func TestSolveInputValidation(t *testing.T) {
	n := twoBus(t)
	if _, err := n.Solve(FlowCase{Slack: 0, P: make([]float64, 3), Q: make([]float64, 3)}); err == nil {
		t.Fatalf("bad slack accepted")
	}
	if _, err := n.Solve(FlowCase{Slack: 1, P: make([]float64, 1), Q: make([]float64, 3)}); err == nil {
		t.Fatalf("bad vector length accepted")
	}
	if _, err := n.Solve(FlowCase{Slack: 1, P: make([]float64, 3), Q: make([]float64, 3), PV: map[int]float64{9: 1}}); err == nil {
		t.Fatalf("bad PV bus accepted")
	}
}

func TestSolveDivergesOnAbsurdLoad(t *testing.T) {
	n := twoBus(t)
	p := make([]float64, 3)
	q := make([]float64, 3)
	p[2] = -100 // far beyond the line's transfer capability
	if _, err := n.Solve(FlowCase{Slack: 1, SlackV: 1, P: p, Q: q}); err == nil {
		t.Fatalf("absurd loading converged")
	}
}

func TestBranchFlowDirectionality(t *testing.T) {
	n := twoBus(t)
	p := make([]float64, 3)
	q := make([]float64, 3)
	p[2] = -0.3
	st, err := n.Solve(FlowCase{Slack: 1, SlackV: 1, P: p, Q: q})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	pf, _, err := n.BranchFlow(st, 1, 1)
	if err != nil {
		t.Fatalf("BranchFlow: %v", err)
	}
	pt, _, err := n.BranchFlow(st, 1, 2)
	if err != nil {
		t.Fatalf("BranchFlow: %v", err)
	}
	// Sending positive, receiving negative, |sending| ≥ |receiving|.
	if pf <= 0 || pt >= 0 {
		t.Fatalf("flow directions wrong: %v / %v", pf, pt)
	}
	if pf+pt <= 0 {
		t.Fatalf("losses %v, want > 0", pf+pt)
	}
	if _, _, err := n.BranchFlow(st, 1, 99); err == nil {
		t.Fatalf("bad terminal accepted")
	}
	if _, _, err := n.BranchFlow(st, 9, 1); err == nil {
		t.Fatalf("bad branch accepted")
	}
}

func TestStateClone(t *testing.T) {
	st := NewFlatState(3)
	cl := st.Clone()
	cl.V[1] = 2
	cl.Theta[2] = 1
	if st.V[1] != 1 || st.Theta[2] != 0 {
		t.Fatalf("Clone shares storage")
	}
}

func TestZeroResistanceMatchesDCApproximately(t *testing.T) {
	// With R=0, no charging, small angles: AC flows approach the DC model.
	sys := grid.IEEE14()
	n, err := FromDC(sys, 0, 0)
	if err != nil {
		t.Fatalf("FromDC: %v", err)
	}
	p := make([]float64, n.Buses+1)
	q := make([]float64, n.Buses+1)
	for j := 2; j <= n.Buses; j++ {
		p[j] = -0.02
	}
	st, err := n.Solve(FlowCase{Slack: 1, SlackV: 1, P: p, Q: q})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// DC angles for the same injections (consumption convention flips
	// sign: consumption = −injection).
	cons := make([]float64, sys.Buses+1)
	for j := 1; j <= sys.Buses; j++ {
		cons[j] = -p[j]
	}
	// Rebalance reference for the DC solve.
	dcAngles, err := dcSolve(sys, cons)
	if err != nil {
		t.Fatalf("dc solve: %v", err)
	}
	for j := 2; j <= sys.Buses; j++ {
		if math.Abs(st.Theta[j]-dcAngles[j]) > 5e-3 {
			t.Fatalf("bus %d: AC θ %v vs DC θ %v — approximation gap too large",
				j, st.Theta[j], dcAngles[j])
		}
	}
}

// dcSolve avoids an import cycle in tests by inlining the DC solve via
// dcflow.
func dcSolve(sys *grid.System, cons []float64) ([]float64, error) {
	return dcflow.SolveFlow(sys, cons, 1)
}
