// Package acflow implements the full (nonlinear) AC steady-state model:
// Newton–Raphson power flow and the AC measurement functions with analytic
// Jacobians used by the AC state estimator (internal/acse).
//
// The reproduced paper — like the UFDI literature it builds on — works in
// the DC approximation. This package is the substrate for the repository's
// extension experiments: how DC-crafted stealthy attacks behave against an
// AC estimator (approximate stealthiness; see EXPERIMENTS.md).
//
// Conventions: per-unit quantities; bus voltages in polar form V∠θ; line
// π-model with series admittance g+jb and total shunt charging susceptance
// split between the terminals.
package acflow

import (
	"errors"
	"fmt"
	"math"

	"segrid/internal/grid"
	"segrid/internal/matrix"
)

// ErrDiverged is returned when Newton–Raphson fails to converge.
var ErrDiverged = errors.New("acflow: power flow did not converge")

// Branch is an AC transmission line in π-model form.
type Branch struct {
	ID       int // 1-based, dense
	From, To int // 1-based bus IDs
	// R and X are the series resistance and reactance (p.u.); X must be
	// nonzero.
	R, X float64
	// Charging is the total line charging susceptance (p.u.), split
	// half-and-half between the terminals.
	Charging float64
}

// Series returns the series admittance g + jb of the branch.
func (br Branch) Series() (g, b float64) {
	d := br.R*br.R + br.X*br.X
	return br.R / d, -br.X / d
}

// Network is an AC network.
type Network struct {
	Name     string
	Buses    int
	Branches []Branch
}

// NewNetwork validates and builds an AC network.
func NewNetwork(name string, buses int, branches []Branch) (*Network, error) {
	if buses < 2 {
		return nil, errors.New("acflow: network needs at least two buses")
	}
	if len(branches) == 0 {
		return nil, errors.New("acflow: network needs at least one branch")
	}
	for i, br := range branches {
		if br.ID != i+1 {
			return nil, fmt.Errorf("acflow: branch at position %d has ID %d, want %d", i, br.ID, i+1)
		}
		if br.From < 1 || br.From > buses || br.To < 1 || br.To > buses || br.From == br.To {
			return nil, fmt.Errorf("acflow: branch %d endpoints (%d,%d) invalid", br.ID, br.From, br.To)
		}
		if br.X == 0 {
			return nil, fmt.Errorf("acflow: branch %d has zero reactance", br.ID)
		}
	}
	return &Network{Name: name, Buses: buses, Branches: append([]Branch(nil), branches...)}, nil
}

// FromDC lifts a DC test system to an AC network: reactances are the
// reciprocals of the DC admittances, resistances default to X·rxRatio and
// line charging to the given total susceptance per line. This is a
// documented synthetic lift — the repository embeds the paper's DC data,
// not the original AC case files.
func FromDC(sys *grid.System, rxRatio, charging float64) (*Network, error) {
	branches := make([]Branch, len(sys.Lines))
	for i, ln := range sys.Lines {
		x := 1 / ln.Admittance
		branches[i] = Branch{
			ID:       ln.ID,
			From:     ln.From,
			To:       ln.To,
			R:        x * rxRatio,
			X:        x,
			Charging: charging,
		}
	}
	return NewNetwork(sys.Name+"-ac", sys.Buses, branches)
}

// State is a full AC operating point.
type State struct {
	// V and Theta are 1-based per bus (index 0 unused).
	V     []float64
	Theta []float64
}

// NewFlatState returns the flat start: all voltages 1 p.u., all angles 0.
func NewFlatState(buses int) *State {
	v := make([]float64, buses+1)
	for i := 1; i <= buses; i++ {
		v[i] = 1
	}
	return &State{V: v, Theta: make([]float64, buses+1)}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	return &State{
		V:     append([]float64(nil), s.V...),
		Theta: append([]float64(nil), s.Theta...),
	}
}

// Admittance builds the bus admittance matrix as dense G and B parts
// (1-based indexing, row/col 0 unused).
func (n *Network) Admittance() (g, b [][]float64) {
	g = make([][]float64, n.Buses+1)
	b = make([][]float64, n.Buses+1)
	for i := range g {
		g[i] = make([]float64, n.Buses+1)
		b[i] = make([]float64, n.Buses+1)
	}
	for _, br := range n.Branches {
		gs, bs := br.Series()
		f, t := br.From, br.To
		g[f][f] += gs
		b[f][f] += bs + br.Charging/2
		g[t][t] += gs
		b[t][t] += bs + br.Charging/2
		g[f][t] -= gs
		b[f][t] -= bs
		g[t][f] -= gs
		b[t][f] -= bs
	}
	return g, b
}

// Injections computes the net complex power injection (generation minus
// load) at every bus for the given state: P_i + jQ_i = V_i Σ_k V_k
// (G_ik cos θ_ik + B_ik sin θ_ik, G_ik sin θ_ik − B_ik cos θ_ik).
func (n *Network) Injections(st *State) (p, q []float64) {
	g, b := n.Admittance()
	p = make([]float64, n.Buses+1)
	q = make([]float64, n.Buses+1)
	for i := 1; i <= n.Buses; i++ {
		for k := 1; k <= n.Buses; k++ {
			if g[i][k] == 0 && b[i][k] == 0 {
				continue
			}
			dij := st.Theta[i] - st.Theta[k]
			c, s := math.Cos(dij), math.Sin(dij)
			p[i] += st.V[i] * st.V[k] * (g[i][k]*c + b[i][k]*s)
			q[i] += st.V[i] * st.V[k] * (g[i][k]*s - b[i][k]*c)
		}
	}
	return p, q
}

// FlowCase describes a power-flow problem: the slack bus fixes V∠0; PV
// buses fix (P, V); the remaining PQ buses fix (P, Q). Injections follow
// the generation-positive convention.
type FlowCase struct {
	Slack  int
	SlackV float64
	// P and Q are 1-based net injections per bus (generation − load).
	P, Q []float64
	// PV maps bus → voltage setpoint for PV buses (optional).
	PV map[int]float64
}

// Solve runs Newton–Raphson from a flat start and returns the converged
// state.
func (n *Network) Solve(fc FlowCase) (*State, error) {
	if fc.Slack < 1 || fc.Slack > n.Buses {
		return nil, fmt.Errorf("acflow: slack bus %d out of range", fc.Slack)
	}
	if len(fc.P) != n.Buses+1 || len(fc.Q) != n.Buses+1 {
		return nil, fmt.Errorf("acflow: injection vectors must be 1-based with length %d", n.Buses+1)
	}
	st := NewFlatState(n.Buses)
	if fc.SlackV > 0 {
		st.V[fc.Slack] = fc.SlackV
	}
	for bus, v := range fc.PV {
		if bus < 1 || bus > n.Buses {
			return nil, fmt.Errorf("acflow: PV bus %d out of range", bus)
		}
		st.V[bus] = v
	}

	// Unknowns: θ at all non-slack buses, V at PQ buses.
	var thetaIdx, vIdx []int
	for i := 1; i <= n.Buses; i++ {
		if i == fc.Slack {
			continue
		}
		thetaIdx = append(thetaIdx, i)
		if _, isPV := fc.PV[i]; !isPV {
			vIdx = append(vIdx, i)
		}
	}
	nUnk := len(thetaIdx) + len(vIdx)

	g, b := n.Admittance()
	calc := func() (p, q []float64) {
		p = make([]float64, n.Buses+1)
		q = make([]float64, n.Buses+1)
		for i := 1; i <= n.Buses; i++ {
			for k := 1; k <= n.Buses; k++ {
				if g[i][k] == 0 && b[i][k] == 0 {
					continue
				}
				dij := st.Theta[i] - st.Theta[k]
				c, s := math.Cos(dij), math.Sin(dij)
				p[i] += st.V[i] * st.V[k] * (g[i][k]*c + b[i][k]*s)
				q[i] += st.V[i] * st.V[k] * (g[i][k]*s - b[i][k]*c)
			}
		}
		return p, q
	}

	const maxIter = 40
	for iter := 0; iter < maxIter; iter++ {
		p, q := calc()
		mismatch := make([]float64, nUnk)
		maxAbs := 0.0
		for r, i := range thetaIdx {
			mismatch[r] = fc.P[i] - p[i]
			maxAbs = math.Max(maxAbs, math.Abs(mismatch[r]))
		}
		for r, i := range vIdx {
			mismatch[len(thetaIdx)+r] = fc.Q[i] - q[i]
			maxAbs = math.Max(maxAbs, math.Abs(mismatch[len(thetaIdx)+r]))
		}
		if maxAbs < 1e-10 {
			return st, nil
		}
		jac := n.flowJacobian(st, g, b, p, q, thetaIdx, vIdx)
		dx, err := jac.SolveLU(mismatch)
		if err != nil {
			return nil, fmt.Errorf("acflow: Jacobian solve: %w", err)
		}
		for r, i := range thetaIdx {
			st.Theta[i] += dx[r]
		}
		for r, i := range vIdx {
			st.V[i] += dx[len(thetaIdx)+r]
		}
	}
	return nil, ErrDiverged
}

// flowJacobian assembles the standard NR power-flow Jacobian
// [∂P/∂θ ∂P/∂V; ∂Q/∂θ ∂Q/∂V] over the unknown ordering used by Solve.
func (n *Network) flowJacobian(st *State, g, b [][]float64, p, q []float64, thetaIdx, vIdx []int) *matrix.Dense {
	nT, nV := len(thetaIdx), len(vIdx)
	jac := matrix.NewDense(nT+nV, nT+nV)
	colOfTheta := make(map[int]int, nT)
	for c, i := range thetaIdx {
		colOfTheta[i] = c
	}
	colOfV := make(map[int]int, nV)
	for c, i := range vIdx {
		colOfV[i] = nT + c
	}
	for r, i := range thetaIdx {
		// dP_i rows.
		for k := 1; k <= n.Buses; k++ {
			dij := st.Theta[i] - st.Theta[k]
			c, s := math.Cos(dij), math.Sin(dij)
			if col, ok := colOfTheta[k]; ok {
				if k == i {
					jac.Set(r, col, -q[i]-b[i][i]*st.V[i]*st.V[i])
				} else if g[i][k] != 0 || b[i][k] != 0 {
					jac.Set(r, col, st.V[i]*st.V[k]*(g[i][k]*s-b[i][k]*c))
				}
			}
			if col, ok := colOfV[k]; ok {
				if k == i {
					jac.Set(r, col, p[i]/st.V[i]+g[i][i]*st.V[i])
				} else if g[i][k] != 0 || b[i][k] != 0 {
					jac.Set(r, col, st.V[i]*(g[i][k]*c+b[i][k]*s))
				}
			}
		}
	}
	for rr, i := range vIdx {
		r := nT + rr
		// dQ_i rows.
		for k := 1; k <= n.Buses; k++ {
			dij := st.Theta[i] - st.Theta[k]
			c, s := math.Cos(dij), math.Sin(dij)
			if col, ok := colOfTheta[k]; ok {
				if k == i {
					jac.Set(r, col, p[i]-g[i][i]*st.V[i]*st.V[i])
				} else if g[i][k] != 0 || b[i][k] != 0 {
					jac.Set(r, col, -st.V[i]*st.V[k]*(g[i][k]*c+b[i][k]*s))
				}
			}
			if col, ok := colOfV[k]; ok {
				if k == i {
					jac.Set(r, col, q[i]/st.V[i]-b[i][i]*st.V[i])
				} else if g[i][k] != 0 || b[i][k] != 0 {
					jac.Set(r, col, st.V[i]*(g[i][k]*s-b[i][k]*c))
				}
			}
		}
	}
	return jac
}

// BranchFlow returns the complex power flow P+jQ entering the branch at the
// given terminal bus (which must be one of its endpoints).
func (n *Network) BranchFlow(st *State, branchID, atBus int) (pf, qf float64, err error) {
	if branchID < 1 || branchID > len(n.Branches) {
		return 0, 0, fmt.Errorf("acflow: branch %d out of range", branchID)
	}
	br := n.Branches[branchID-1]
	var i, j int
	switch atBus {
	case br.From:
		i, j = br.From, br.To
	case br.To:
		i, j = br.To, br.From
	default:
		return 0, 0, fmt.Errorf("acflow: bus %d is not a terminal of branch %d", atBus, branchID)
	}
	gs, bs := br.Series()
	dij := st.Theta[i] - st.Theta[j]
	c, s := math.Cos(dij), math.Sin(dij)
	vi, vj := st.V[i], st.V[j]
	pf = vi*vi*gs - vi*vj*(gs*c+bs*s)
	qf = -vi*vi*(bs+br.Charging/2) - vi*vj*(gs*s-bs*c)
	return pf, qf, nil
}
