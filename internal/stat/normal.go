package stat

import "math/rand"

// NormalSampler draws Gaussian variates from a seeded source so experiments
// are reproducible.
type NormalSampler struct {
	rng *rand.Rand
}

// NewNormalSampler creates a sampler with a deterministic seed.
func NewNormalSampler(seed int64) *NormalSampler {
	return &NormalSampler{rng: rand.New(rand.NewSource(seed))}
}

// Sample returns one N(mean, stddev²) variate.
func (s *NormalSampler) Sample(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// SampleVec returns n independent N(mean, stddev²) variates.
func (s *NormalSampler) SampleVec(n int, mean, stddev float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Sample(mean, stddev)
	}
	return out
}
