package stat

import (
	"math"
	"testing"
)

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Reference values from standard chi-square tables.
	tests := []struct {
		x    float64
		k    int
		want float64
		tol  float64
	}{
		{3.841, 1, 0.95, 1e-3}, // 95th percentile, 1 dof
		{5.991, 2, 0.95, 1e-3}, // 95th percentile, 2 dof
		{18.307, 10, 0.95, 1e-3},
		{2.706, 1, 0.90, 1e-3},
		{0, 3, 0, 1e-12},
		{6.635, 1, 0.99, 1e-3},
	}
	for _, tc := range tests {
		got, err := ChiSquareCDF(tc.x, tc.k)
		if err != nil {
			t.Fatalf("ChiSquareCDF(%v,%d): %v", tc.x, tc.k, err)
		}
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("ChiSquareCDF(%v,%d) = %v, want %v", tc.x, tc.k, got, tc.want)
		}
	}
}

func TestChiSquareCDFMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 50; x += 0.5 {
		c, err := ChiSquareCDF(x, 7)
		if err != nil {
			t.Fatalf("CDF(%v): %v", x, err)
		}
		if c < prev {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range at %v: %v", x, c)
		}
		prev = c
	}
}

func TestChiSquareCDFNegativeAndErrors(t *testing.T) {
	if c, err := ChiSquareCDF(-5, 3); err != nil || c != 0 {
		t.Fatalf("CDF(-5,3) = %v,%v; want 0,nil", c, err)
	}
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Fatalf("k=0 accepted")
	}
}

func TestChiSquareQuantileRoundTrip(t *testing.T) {
	for _, k := range []int{1, 2, 5, 20, 44, 100} {
		for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
			q, err := ChiSquareQuantile(p, k)
			if err != nil {
				t.Fatalf("Quantile(%v,%d): %v", p, k, err)
			}
			c, err := ChiSquareCDF(q, k)
			if err != nil {
				t.Fatalf("CDF: %v", err)
			}
			if math.Abs(c-p) > 1e-6 {
				t.Errorf("CDF(Quantile(%v,%d)) = %v", p, k, c)
			}
		}
	}
}

func TestChiSquareQuantileErrors(t *testing.T) {
	if _, err := ChiSquareQuantile(0, 3); err == nil {
		t.Fatalf("p=0 accepted")
	}
	if _, err := ChiSquareQuantile(1, 3); err == nil {
		t.Fatalf("p=1 accepted")
	}
	if _, err := ChiSquareQuantile(0.5, 0); err == nil {
		t.Fatalf("k=0 accepted")
	}
}

func TestNormalSamplerMoments(t *testing.T) {
	s := NewNormalSampler(1234)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Sample(2, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("mean = %v, want ≈ 2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("variance = %v, want ≈ 9", variance)
	}
}

func TestNormalSamplerDeterministic(t *testing.T) {
	a := NewNormalSampler(7).SampleVec(5, 0, 1)
	b := NewNormalSampler(7).SampleVec(5, 0, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampler not deterministic at %d", i)
		}
	}
}
