// Package stat provides the small statistical toolbox used by the bad data
// detector: the chi-square distribution (via the regularized incomplete
// gamma function) and Gaussian sampling for measurement noise.
package stat

import (
	"errors"
	"math"
)

// ErrNoConverge is returned when an iterative special-function evaluation
// fails to converge (out-of-range inputs).
var ErrNoConverge = errors.New("stat: series did not converge")

// ChiSquareCDF returns P(X ≤ x) for a chi-square distribution with k
// degrees of freedom.
func ChiSquareCDF(x float64, k int) (float64, error) {
	if x < 0 {
		return 0, nil
	}
	if k <= 0 {
		return 0, errors.New("stat: degrees of freedom must be positive")
	}
	return regularizedGammaP(float64(k)/2, x/2)
}

// ChiSquareQuantile returns the x with P(X ≤ x) = p for a chi-square
// distribution with k degrees of freedom, via bisection on the CDF.
func ChiSquareQuantile(p float64, k int) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, errors.New("stat: quantile probability must be in (0,1)")
	}
	if k <= 0 {
		return 0, errors.New("stat: degrees of freedom must be positive")
	}
	lo, hi := 0.0, float64(k)+10
	for {
		c, err := ChiSquareCDF(hi, k)
		if err != nil {
			return 0, err
		}
		if c >= p {
			break
		}
		hi *= 2
		if hi > 1e12 {
			return 0, ErrNoConverge
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c, err := ChiSquareCDF(mid, k)
		if err != nil {
			return 0, err
		}
		if c < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// regularizedGammaP computes P(a, x) = γ(a, x)/Γ(a) using the series
// expansion for x < a+1 and the continued fraction otherwise (Numerical
// Recipes style).
func regularizedGammaP(a, x float64) (float64, error) {
	switch {
	case x < 0 || a <= 0:
		return 0, errors.New("stat: invalid incomplete gamma arguments")
	case x == 0:
		return 0, nil
	case x < a+1:
		return gammaSeries(a, x)
	default:
		q, err := gammaContinuedFraction(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - q, nil
	}
}

func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, ErrNoConverge
}

func gammaContinuedFraction(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, ErrNoConverge
}
