package proof

import (
	"errors"
	"fmt"
	"io"

	"segrid/internal/cnf"
)

// AppendSegment re-anchors a self-contained proof segment — a stream written
// by its own Writer, as portfolio workers produce — onto this stream. The
// segment's records are appended behind a Restart marker with every clause id
// shifted by a uniform offset (ids are unique across a whole stream: the
// trimmer maps id → installing record globally), and Unsat checks renumbered
// to continue this stream's counting. Intra-segment structure (Delete
// references, the id ranges GateDef/CardDef records claim) survives the shift
// unchanged, so a segment that checked on its own still checks here.
//
// It returns the 1-based index of the segment's last Unsat check within this
// stream (the value a Handle for the appended answer needs). A malformed
// segment poisons the stream: by then records may already have been emitted,
// and a half-appended segment must fail checking rather than pass silently.
func (w *Writer) AppendSegment(r io.Reader) (uint64, error) {
	w.flushPending()
	if w.err != nil {
		return w.checks, w.err
	}
	pr, err := NewReader(r)
	if err != nil {
		// Nothing emitted yet; the destination stream is still intact.
		return w.checks, err
	}
	offset := w.nextID
	var maxUsed uint64
	first := true
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if w.err == nil {
				w.err = fmt.Errorf("proof: appending segment: %w", err)
			}
			return w.checks, w.err
		}
		if first {
			first = false
			if rec.Kind != KindRestart {
				w.emit(&Record{Kind: KindRestart})
			}
		}
		switch rec.Kind {
		case KindInput, KindDerived, KindTheoryLemma:
			if rec.ID > maxUsed {
				maxUsed = rec.ID
			}
			rec.ID += offset
		case KindDelete:
			rec.ID += offset
		case KindGateDef:
			// The claimed range is ID … ID+n−1 with n fixed by the kernel
			// derivation — recompute it so the id watermark covers the whole
			// range.
			n := cnf.GateClauseCount(rec.Gate, len(rec.Lits))
			if last := rec.ID + uint64(n) - 1; n > 0 && last > maxUsed {
				maxUsed = last
			}
			rec.ID += offset
		case KindCardDef:
			n, ok := cnf.CardClauseCount(len(rec.Lits), rec.K, rec.Enc, maxProofLen)
			if !ok {
				if w.err == nil {
					w.err = fmt.Errorf("proof: appending segment: cardinality circuit over %d literals derives too many clauses", len(rec.Lits))
				}
				return w.checks, w.err
			}
			if last := rec.ID + uint64(n) - 1; n > 0 && last > maxUsed {
				maxUsed = last
			}
			rec.ID += offset
		case KindUnsat:
			w.checks++
			rec.Check = w.checks
		}
		w.emit(rec)
	}
	w.nextID = offset + maxUsed
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.checks, w.err
}

// Abort poisons the writer: later records are dropped and Close reports the
// given error instead of publishing. For CreateAtomic writers nothing ever
// appears at the publication path — the staging file is removed — which is
// how losing portfolio/cube workers retract certificates they were cancelled
// in the middle of writing.
func (w *Writer) Abort(err error) {
	if w.err == nil {
		if err == nil {
			err = errors.New("proof: stream aborted")
		}
		w.err = err
	}
}
