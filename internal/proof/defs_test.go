package proof

import (
	"bytes"
	"testing"

	"segrid/internal/cnf"
	"segrid/internal/sat"
)

// gateProof streams a tiny unsat instance through the definitional path the
// way the encoder would: a gate g = a ∧ b is declared, its three kernel
// clauses are handed to LogInput (and swallowed), then unit g together with
// (¬a ∨ ¬b) contradicts the gate semantics.
func gateProof(t *testing.T) (*bytes.Buffer, *Writer) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	a, b, g := sat.PosLit(0), sat.PosLit(1), sat.PosLit(2)
	w.DefineGate(cnf.GateAnd, g.Var(), []sat.Lit{a, b})
	for _, cl := range cnf.GateClauses(nil, cnf.GateAnd, g, []sat.Lit{a, b}) {
		w.LogInput(cl)
	}
	w.LogInput([]sat.Lit{g})
	w.LogInput([]sat.Lit{a.Not(), b.Not()})
	w.EndUnsat(nil)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return &buf, w
}

func TestWriterSwallowsMatchingGateClauses(t *testing.T) {
	buf, w := gateProof(t)
	if w.DefClauses() != 3 || w.DefMismatches() != 0 {
		t.Fatalf("writer swallowed %d clauses with %d mismatches, want 3 and 0",
			w.DefClauses(), w.DefMismatches())
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The definitional clauses must not appear in the stream: only the
	// provenance record, the two real inputs, and the check.
	var gateDefs, inputs int
	for _, rec := range recs {
		switch rec.Kind {
		case KindGateDef:
			gateDefs++
		case KindInput:
			inputs++
		}
	}
	if gateDefs != 1 || inputs != 2 {
		t.Fatalf("stream has %d gate defs and %d inputs, want 1 and 2", gateDefs, inputs)
	}
	rep, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.GateDefs != 1 || rep.DefClauses != 3 || rep.UnsatChecks != 1 {
		t.Fatalf("unexpected report: %v", rep)
	}
}

// cardProof mirrors gateProof for a sequential-counter at-most-1 circuit over
// three literals: the circuit is declared and its kernel clauses swallowed,
// then two of the literals are asserted true.
func cardProof(t *testing.T, guard sat.Lit) (*bytes.Buffer, *Writer) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	lits := []sat.Lit{sat.PosLit(0), sat.PosLit(1), sat.PosLit(2)}
	firstFresh := sat.Var(3) // registers 3, 4 = (n−1)·k fresh vars
	w.DefineCard(cnf.CardSeqCounter, lits, 1, firstFresh, guard)
	for _, cl := range cnf.AtMostK(nil, lits, 1, cnf.CardSeqCounter, firstFresh, guard) {
		w.LogInput(cl)
	}
	w.LogInput([]sat.Lit{lits[0]})
	w.LogInput([]sat.Lit{lits[1]})
	if guard != sat.LitUndef {
		w.EndUnsat([]sat.Lit{guard.Not()})
	} else {
		w.EndUnsat(nil)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return &buf, w
}

func TestWriterSwallowsMatchingCardClauses(t *testing.T) {
	for _, guard := range []sat.Lit{sat.LitUndef, sat.NegLit(9)} {
		buf, w := cardProof(t, guard)
		if w.DefMismatches() != 0 || w.DefClauses() == 0 {
			t.Fatalf("guard %v: writer swallowed %d clauses with %d mismatches",
				guard, w.DefClauses(), w.DefMismatches())
		}
		rep, err := Check(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("guard %v: Check: %v", guard, err)
		}
		if rep.CardDefs != 1 || rep.DefClauses != int(w.DefClauses()) {
			t.Fatalf("guard %v: unexpected report: %v", guard, rep)
		}
	}
}

// TestWriterFlagsDivergentDefinitionalClause simulates a broken encoder: the
// clause handed to LogInput differs from the kernel derivation the DefineGate
// call promised. The writer must count the mismatch and the resulting stream
// must fail checking — a divergent definitional clause is logged as a learnt
// clause, and a clause over a fresh variable is never derivable.
func TestWriterFlagsDivergentDefinitionalClause(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	a, b, g := sat.PosLit(0), sat.PosLit(1), sat.PosLit(2)
	w.DefineGate(cnf.GateAnd, g.Var(), []sat.Lit{a, b})
	clauses := cnf.GateClauses(nil, cnf.GateAnd, g, []sat.Lit{a, b})
	w.LogInput([]sat.Lit{g, a}) // bug: should be (¬g ∨ a)
	for _, cl := range clauses[1:] {
		w.LogInput(cl)
	}
	w.LogInput([]sat.Lit{g})
	w.LogInput([]sat.Lit{a.Not(), b.Not()})
	w.EndUnsat(nil)
	w.Close()
	if w.DefMismatches() != 1 || w.DefClauses() != 2 {
		t.Fatalf("writer saw %d mismatches and %d matches, want 1 and 2",
			w.DefMismatches(), w.DefClauses())
	}
	if _, err := Check(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("checker accepted a stream whose encoder diverged from the kernel")
	}
}

// TestWriterPoisonsUnderDeliveredDefinitions: promising a gate and never
// adding its clauses leaves claimed clause ids unused; Close must surface the
// error rather than emit a quietly inconsistent stream.
func TestWriterPoisonsUnderDeliveredDefinitions(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.DefineGate(cnf.GateAnd, 2, []sat.Lit{sat.PosLit(0), sat.PosLit(1)})
	if err := w.Close(); err == nil {
		t.Fatal("Close accepted a stream with promised but never-added definitional clauses")
	}
	if w.DefMismatches() != 3 {
		t.Fatalf("writer counted %d mismatches, want 3", w.DefMismatches())
	}
}

// TestCheckRejectsTamperedGateDef flips the recorded gate shape from And to
// Or. The re-derived clauses then no longer propagate the conflict the proof
// relies on, so the Unsat check must fail: provenance records are inputs to
// the kernel, not trusted clauses.
func TestCheckRejectsTamperedGateDef(t *testing.T) {
	buf, _ := gateProof(t)
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Kind == KindGateDef {
			rec.Gate = cnf.GateOr
		}
	}
	var mutated bytes.Buffer
	if err := WriteAll(&mutated, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(mutated.Bytes())); err == nil {
		t.Fatal("checker accepted a tampered gate definition")
	}
}

// TestCheckRejectsTamperedCardBound raises the recorded bound from 1 to 2:
// two true literals no longer conflict, so the proof must stop verifying.
func TestCheckRejectsTamperedCardBound(t *testing.T) {
	buf, _ := cardProof(t, sat.LitUndef)
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Kind == KindCardDef {
			rec.K = 2
		}
	}
	var mutated bytes.Buffer
	if err := WriteAll(&mutated, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(mutated.Bytes())); err == nil {
		t.Fatal("checker accepted a tampered cardinality bound")
	}
}

// TestCheckRejectsNonFreshDefVariables pins the soundness core of
// re-derivation: a definitional record may only introduce clauses over a
// variable the segment has never seen, otherwise "definitions" could
// constrain problem variables into a false UNSAT.
func TestCheckRejectsNonFreshDefVariables(t *testing.T) {
	cases := map[string][]*Record{
		"gate output seen": {
			{Kind: KindInput, ID: 1, Lits: []sat.Lit{sat.PosLit(0)}},
			{Kind: KindGateDef, ID: 2, Gate: cnf.GateAnd, Var: 0, Lits: []sat.Lit{sat.PosLit(1), sat.PosLit(2)}},
		},
		"gate self-reference": {
			{Kind: KindGateDef, ID: 1, Gate: cnf.GateAnd, Var: 3, Lits: []sat.Lit{sat.PosLit(3), sat.PosLit(1)}},
		},
		"card register seen": {
			{Kind: KindInput, ID: 1, Lits: []sat.Lit{sat.PosLit(3)}},
			{Kind: KindCardDef, ID: 2, Enc: cnf.CardSeqCounter, K: 1, Var: 3,
				Guard: sat.LitUndef, Lits: []sat.Lit{sat.PosLit(0), sat.PosLit(1), sat.PosLit(2)}},
		},
		"card register among inputs": {
			{Kind: KindCardDef, ID: 1, Enc: cnf.CardSeqCounter, K: 1, Var: 2,
				Guard: sat.LitUndef, Lits: []sat.Lit{sat.PosLit(0), sat.PosLit(1), sat.PosLit(2)}},
		},
	}
	for name, recs := range cases {
		var buf bytes.Buffer
		if err := WriteAll(&buf, recs); err != nil {
			t.Fatal(err)
		}
		if _, err := Check(bytes.NewReader(buf.Bytes())); err == nil {
			t.Errorf("%s: checker accepted a definitional record over a non-fresh variable", name)
		}
	}
}

// TestCheckAllowsFreshDefVariablesAfterRestart: the freshness requirement is
// per segment — a restart rebuilds the encoder, which reuses low variable
// indices for new definitions.
func TestCheckAllowsFreshDefVariablesAfterRestart(t *testing.T) {
	buf1, _ := gateProof(t)
	recs, err := ReadAll(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs = append(recs, &Record{Kind: KindRestart})
	buf2, _ := gateProof(t)
	more, err := ReadAll(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range more {
		if rec.Kind == KindUnsat {
			rec.Check = 2 // checks are numbered across the whole stream
		}
	}
	recs = append(recs, more...)
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.GateDefs != 2 || rep.UnsatChecks != 2 || rep.Restarts != 1 {
		t.Fatalf("unexpected report: %v", rep)
	}
}

// TestCheckRejectsOverlargeCardDef: a cardinality record whose derivation
// would exceed the stream limits (here a pairwise encoding with a
// combinatorial clause count) must be rejected before any allocation.
func TestCheckRejectsOverlargeCardDef(t *testing.T) {
	n := 4000
	lits := make([]sat.Lit, n)
	for i := range lits {
		lits[i] = sat.PosLit(sat.Var(i))
	}
	recs := []*Record{
		{Kind: KindCardDef, ID: 1, Enc: cnf.CardPairwise, K: n / 2, Var: 0,
			Guard: sat.LitUndef, Lits: lits},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("checker accepted a cardinality definition deriving a combinatorial clause count")
	}
}

func TestRecordRoundTripDefinitions(t *testing.T) {
	recs := []*Record{
		{Kind: KindGateDef, ID: 1, Gate: cnf.GateAnd, Var: 7, Lits: []sat.Lit{sat.PosLit(0), sat.NegLit(1)}},
		{Kind: KindGateDef, ID: 4, Gate: cnf.GateTrue, Var: 8},
		{Kind: KindCardDef, ID: 5, Enc: cnf.CardSeqCounter, K: 2, Var: 9,
			Guard: sat.NegLit(3), Lits: []sat.Lit{sat.PosLit(0), sat.PosLit(1), sat.PosLit(2)}},
		{Kind: KindCardDef, ID: 13, Enc: cnf.CardPairwise, K: 1, Var: 0,
			Guard: sat.LitUndef, Lits: []sat.Lit{sat.PosLit(4), sat.PosLit(5)}},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round-trip length: got %d, want %d", len(got), len(recs))
	}
	for i, g := range got {
		w := recs[i]
		if g.Kind != w.Kind || g.ID != w.ID || g.Gate != w.Gate || g.Enc != w.Enc ||
			g.K != w.K || g.Var != w.Var || g.Guard != w.Guard {
			t.Errorf("record %d: got %+v, want %+v", i, g, w)
		}
		if !litsEqual(g.Lits, w.Lits) {
			t.Errorf("record %d: lits %v, want %v", i, g.Lits, w.Lits)
		}
	}
}
