// Package proof implements machine-checkable UNSAT certificates for the
// CDCL(T) stack: a DRAT-style clausal proof log for the propositional core
// (Wetzler, Heule & Hunt, "DRAT-trim", SAT 2014) extended with
// Farkas-coefficient theory lemmas for linear real arithmetic (Dutertre &
// de Moura, CAV 2006) and scope-selector annotations so the incremental
// solver's assumption-relative UNSAT answers are expressible.
//
// The package has two halves. The Writer streams records as the solver runs
// and is wired into package sat through the ProofLogger hook and into
// package smt for the theory-side definitions; when no writer is installed
// the solver pays a single nil check per logging site. The Checker replays
// the stream with its own unit-propagation engine and exact rational
// arithmetic from internal/numeric — it deliberately shares no search code
// with the solver, so a bug in the solver's propagation, learning or simplex
// cannot also hide in the verification path.
//
// Format version 2 closes the encoding trust gap: Tseitin gates and
// cardinality circuits travel as provenance records (KindGateDef,
// KindCardDef) instead of opaque input clauses, and the checker re-derives
// every definitional clause through the shared internal/cnf kernel. A
// certificate can no longer smuggle in a wrong "definitional" clause — the
// trusted base shrinks to the kernel, internal/numeric, and the genuinely
// asserted problem clauses.
package proof

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"

	"segrid/internal/cnf"
	"segrid/internal/numeric"
	"segrid/internal/sat"
)

// magic identifies a segrid proof stream (format version 2).
const magic = "SGPF2\n"

// magicPrefix is shared by every format version; a stream that starts with
// it but not with magic is a version mismatch, not corruption.
const magicPrefix = "SGPF"

// ErrVersion reports a well-formed segrid proof stream written in a format
// version this reader does not speak. Tools distinguish it from corruption
// (errors.Is) so version skew fails loudly with its own exit code.
var ErrVersion = errors.New("certificate version mismatch")

// Kind discriminates proof records.
type Kind uint8

const (
	// KindRestart marks a fresh solver instance: the checker discards all
	// clauses, definitions and derived facts. Emitted once per encoder, so
	// FreshPerCheck ablation runs produce one segment per check.
	KindRestart Kind = iota + 1
	// KindSlackDef defines a simplex slack variable as a linear combination
	// of previously introduced simplex variables.
	KindSlackDef
	// KindAtomDef binds a SAT variable to its theory meaning: the positive
	// literal asserts slack ≤ Pos, the negative literal asserts slack ≥ Neg.
	KindAtomDef
	// KindInput is a problem clause, recorded as handed to the solver. Input
	// clauses are trusted: they are the formula whose unsatisfiability the
	// proof establishes.
	KindInput
	// KindDerived is a clause the solver learnt; the checker verifies it by
	// reverse unit propagation (RUP), falling back to a RAT check on the
	// first literal.
	KindDerived
	// KindTheoryLemma is a clause ¬b₁ ∨ … ∨ ¬bₙ whose literals negate
	// asserted bounds, justified by Farkas coefficients: Coeffs[i] scales
	// the bound asserted by Lits[i].Not(), and the combination Σλᵢ·boundᵢ
	// must cancel all variables while its right-hand side is negative.
	KindTheoryLemma
	// KindDelete removes a clause from the active set (learnt-clause
	// reduction); later RUP checks must not rely on it.
	KindDelete
	// KindUnsat asserts that the active clauses together with the given
	// assumption literals (the live scope selectors, empty for an absolute
	// UNSAT) are contradictory by unit propagation alone.
	KindUnsat
	// KindGateDef records the provenance of a Tseitin definition: Var is the
	// fresh output variable, Gate the shape, Lits the input literals. The
	// record claims clause ids ID … ID+n−1 for the definitional clauses the
	// cnf kernel derives from it; the clauses themselves are not serialized —
	// the checker re-derives and installs them, refusing the record unless
	// the output variable is fresh (a definitional extension must not
	// constrain existing variables).
	KindGateDef
	// KindCardDef records the provenance of a cardinality circuit asserting
	// Σ Lits ≤ K under encoding Enc, with Var the first of the circuit's
	// consecutive fresh register variables and Guard the scope guard literal
	// (LitUndef when unguarded). Like KindGateDef it claims ID … ID+n−1 and
	// serializes no clauses; the checker re-derives them and requires every
	// register variable to be fresh.
	KindCardDef
)

func (k Kind) String() string {
	switch k {
	case KindRestart:
		return "restart"
	case KindSlackDef:
		return "slackdef"
	case KindAtomDef:
		return "atomdef"
	case KindInput:
		return "input"
	case KindDerived:
		return "derived"
	case KindTheoryLemma:
		return "lemma"
	case KindDelete:
		return "delete"
	case KindUnsat:
		return "unsat"
	case KindGateDef:
		return "gatedef"
	case KindCardDef:
		return "carddef"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Term is one summand of a slack definition: Coeff·Var over simplex
// variables.
type Term struct {
	Var   int
	Coeff numeric.Q
}

// Record is one step of a proof stream. Which fields are meaningful depends
// on Kind; unused fields are zero.
type Record struct {
	Kind Kind

	// ID numbers input, derived and theory-lemma clauses; Delete references
	// it. A GateDef/CardDef record claims the contiguous id range starting
	// at ID for its derived clauses. IDs are unique across the whole stream
	// (they are not reset by a restart).
	ID uint64

	// Lits is the clause body (Input/Derived/TheoryLemma), the assumption
	// set (Unsat), the gate inputs (GateDef) or the counted literals
	// (CardDef).
	Lits []sat.Lit

	// Coeffs are the Farkas coefficients of a theory lemma, parallel to
	// Lits.
	Coeffs []numeric.Q

	// Var is the defined simplex variable (SlackDef), the SAT variable
	// (AtomDef), the gate output variable (GateDef) or the first fresh
	// register variable (CardDef).
	Var int

	// Gate is the Tseitin gate shape (GateDef).
	Gate cnf.Gate

	// Enc is the cardinality encoding (CardDef).
	Enc cnf.CardEncoding

	// K is the cardinality bound (CardDef); it may be negative, in which
	// case the circuit is the single (guarded) empty clause.
	K int

	// Guard is the scope guard literal of a cardinality circuit (CardDef),
	// or sat.LitUndef when the circuit is unguarded.
	Guard sat.Lit

	// Slack is the simplex variable an atom bounds (AtomDef).
	Slack int

	// Terms is the defining linear combination (SlackDef).
	Terms []Term

	// Pos and Neg are the atom's upper/lower bounds (AtomDef).
	Pos, Neg numeric.Delta

	// Check is the 1-based index of an Unsat record within the stream.
	Check uint64
}

// Rational wire tags: a machine-word rational travels as two varints, a
// promoted big.Rat falls back to its canonical RatString text.
const (
	ratSmall byte = 0
	ratBig   byte = 1
)

// encoder serializes records into a byte buffer. Rationals on the numeric.Q
// fast path travel as a signed-varint numerator plus uvarint denominator —
// two ints instead of formatting text, which dominated the proof-logging
// overhead on verification workloads (BENCH_4) — with RatString text as the
// fallback for promoted big.Rats.
type encoder struct {
	buf []byte
}

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *encoder) bytes(b []byte)   { e.uvarint(uint64(len(b))); e.buf = append(e.buf, b...) }
func (e *encoder) lit(l sat.Lit)    { e.uvarint(uint64(uint32(l))) }
func (e *encoder) rat(q numeric.Q) {
	if s, ok := q.Small(); ok {
		e.byte(ratSmall)
		e.varint(s.Num)
		e.uvarint(uint64(s.Den))
		return
	}
	e.byte(ratBig)
	e.bytes([]byte(q.RatString()))
}
func (e *encoder) delta(d numeric.Delta) {
	e.rat(d.StdQ())
	e.rat(d.InfQ())
}

func (e *encoder) record(r *Record) {
	e.byte(byte(r.Kind))
	switch r.Kind {
	case KindRestart:
	case KindSlackDef:
		e.uvarint(uint64(r.Var))
		e.uvarint(uint64(len(r.Terms)))
		for _, t := range r.Terms {
			e.uvarint(uint64(t.Var))
			e.rat(t.Coeff)
		}
	case KindAtomDef:
		e.uvarint(uint64(r.Var))
		e.uvarint(uint64(r.Slack))
		e.delta(r.Pos)
		e.delta(r.Neg)
	case KindInput, KindDerived:
		e.uvarint(r.ID)
		e.uvarint(uint64(len(r.Lits)))
		for _, l := range r.Lits {
			e.lit(l)
		}
	case KindTheoryLemma:
		e.uvarint(r.ID)
		e.uvarint(uint64(len(r.Lits)))
		for _, l := range r.Lits {
			e.lit(l)
		}
		for _, q := range r.Coeffs {
			e.rat(q)
		}
	case KindDelete:
		e.uvarint(r.ID)
	case KindUnsat:
		e.uvarint(r.Check)
		e.uvarint(uint64(len(r.Lits)))
		for _, l := range r.Lits {
			e.lit(l)
		}
	case KindGateDef:
		e.uvarint(r.ID)
		e.byte(byte(r.Gate))
		e.uvarint(uint64(r.Var))
		e.uvarint(uint64(len(r.Lits)))
		for _, l := range r.Lits {
			e.lit(l)
		}
	case KindCardDef:
		e.uvarint(r.ID)
		e.byte(byte(r.Enc))
		e.varint(int64(r.K))
		e.uvarint(uint64(r.Var))
		e.lit(r.Guard)
		e.uvarint(uint64(len(r.Lits)))
		for _, l := range r.Lits {
			e.lit(l)
		}
	default:
		panic(fmt.Sprintf("proof: encoding unknown record kind %d", r.Kind))
	}
}

// Reader decodes a proof stream record by record.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r, checking the stream header. A stream written in a
// different format version yields an error wrapping ErrVersion.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("proof: reading header: %w", err)
	}
	if string(head) != magic {
		if string(head[:len(magicPrefix)]) == magicPrefix {
			return nil, fmt.Errorf("proof: stream has format header %q, this checker reads %q: %w",
				head[:len(magic)-1], magic[:len(magic)-1], ErrVersion)
		}
		return nil, errors.New("proof: not a segrid proof stream (bad magic)")
	}
	return &Reader{br: br}, nil
}

// Next decodes the next record, returning io.EOF at a clean end of stream.
// A truncated or malformed record yields a descriptive error.
func (r *Reader) Next() (*Record, error) {
	tag, err := r.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	rec := &Record{Kind: Kind(tag)}
	switch rec.Kind {
	case KindRestart:
	case KindSlackDef:
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > maxProofLen {
			return nil, fmt.Errorf("proof: slack definition with %d terms exceeds limit", n)
		}
		rec.Var = int(v)
		rec.Terms = make([]Term, n)
		for i := range rec.Terms {
			tv, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			c, err := r.rat()
			if err != nil {
				return nil, err
			}
			rec.Terms[i] = Term{Var: int(tv), Coeff: c}
		}
	case KindAtomDef:
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		slack, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		rec.Var, rec.Slack = int(v), int(slack)
		if rec.Pos, err = r.delta(); err != nil {
			return nil, err
		}
		if rec.Neg, err = r.delta(); err != nil {
			return nil, err
		}
	case KindInput, KindDerived:
		if rec.ID, err = r.uvarint(); err != nil {
			return nil, err
		}
		if rec.Lits, err = r.lits(); err != nil {
			return nil, err
		}
	case KindTheoryLemma:
		if rec.ID, err = r.uvarint(); err != nil {
			return nil, err
		}
		if rec.Lits, err = r.lits(); err != nil {
			return nil, err
		}
		rec.Coeffs = make([]numeric.Q, len(rec.Lits))
		for i := range rec.Coeffs {
			if rec.Coeffs[i], err = r.rat(); err != nil {
				return nil, err
			}
		}
	case KindDelete:
		if rec.ID, err = r.uvarint(); err != nil {
			return nil, err
		}
	case KindUnsat:
		if rec.Check, err = r.uvarint(); err != nil {
			return nil, err
		}
		if rec.Lits, err = r.lits(); err != nil {
			return nil, err
		}
	case KindGateDef:
		if rec.ID, err = r.uvarint(); err != nil {
			return nil, err
		}
		g, err := r.br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("proof: truncated record: %w", io.ErrUnexpectedEOF)
		}
		rec.Gate = cnf.Gate(g)
		if !rec.Gate.Valid() {
			return nil, fmt.Errorf("proof: unknown gate shape %d", g)
		}
		if rec.Var, err = r.varIndex(); err != nil {
			return nil, err
		}
		if rec.Lits, err = r.lits(); err != nil {
			return nil, err
		}
	case KindCardDef:
		if rec.ID, err = r.uvarint(); err != nil {
			return nil, err
		}
		en, err := r.br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("proof: truncated record: %w", io.ErrUnexpectedEOF)
		}
		rec.Enc = cnf.CardEncoding(en)
		if !rec.Enc.Valid() {
			return nil, fmt.Errorf("proof: unknown cardinality encoding %d", en)
		}
		k, err := binary.ReadVarint(r.br)
		if err != nil {
			return nil, fmt.Errorf("proof: truncated record: %w", io.ErrUnexpectedEOF)
		}
		if k > maxProofLen || k < -maxProofLen {
			return nil, fmt.Errorf("proof: cardinality bound %d out of range", k)
		}
		rec.K = int(k)
		if rec.Var, err = r.varIndex(); err != nil {
			return nil, err
		}
		if rec.Guard, err = r.guardLit(); err != nil {
			return nil, err
		}
		if rec.Lits, err = r.lits(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("proof: unknown record kind %d", tag)
	}
	return rec, nil
}

// maxProofLen caps per-record element counts so a corrupted length prefix
// cannot drive a multi-gigabyte allocation before the payload read fails.
const maxProofLen = 1 << 24

// maxProofVar caps SAT variable indices in a stream: the checker's
// assignment and watch arrays are indexed by variable, so an adversarial
// record naming variable 2³¹ must fail in the reader, not allocate
// gigabytes. Real certificates stay far below this (the largest tracked
// workloads use well under a million variables).
const maxProofVar = 1 << 22

func (r *Reader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return 0, fmt.Errorf("proof: truncated record: %w", io.ErrUnexpectedEOF)
	}
	return v, err
}

func (r *Reader) lits() ([]sat.Lit, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxProofLen {
		return nil, fmt.Errorf("proof: clause with %d literals exceeds limit", n)
	}
	out := make([]sat.Lit, n)
	for i := range out {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		l := sat.Lit(uint32(v))
		if l < 0 || int(l.Var()) > maxProofVar {
			return nil, fmt.Errorf("proof: literal %d out of range", v)
		}
		out[i] = l
	}
	return out, nil
}

// varIndex reads a SAT variable index, bounded like clause literals.
func (r *Reader) varIndex() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxProofVar {
		return 0, fmt.Errorf("proof: variable index %d out of range", v)
	}
	return int(v), nil
}

// guardLit reads a guard literal: a bounded literal or sat.LitUndef.
func (r *Reader) guardLit() (sat.Lit, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	l := sat.Lit(uint32(v))
	if l == sat.LitUndef {
		return l, nil
	}
	if l < 0 || int(l.Var()) > maxProofVar {
		return 0, fmt.Errorf("proof: guard literal %d out of range", v)
	}
	return l, nil
}

func (r *Reader) rat() (numeric.Q, error) {
	tag, err := r.br.ReadByte()
	if err != nil {
		return numeric.Q{}, fmt.Errorf("proof: truncated rational: %w", io.ErrUnexpectedEOF)
	}
	switch tag {
	case ratSmall:
		num, err := binary.ReadVarint(r.br)
		if err != nil {
			return numeric.Q{}, fmt.Errorf("proof: truncated rational: %w", io.ErrUnexpectedEOF)
		}
		den, err := binary.ReadUvarint(r.br)
		if err != nil {
			return numeric.Q{}, fmt.Errorf("proof: truncated rational: %w", io.ErrUnexpectedEOF)
		}
		if den == 0 || den > math.MaxInt64 {
			return numeric.Q{}, fmt.Errorf("proof: rational denominator %d out of range", den)
		}
		return numeric.QFromFrac(num, int64(den)), nil
	case ratBig:
		n, err := r.uvarint()
		if err != nil {
			return numeric.Q{}, err
		}
		if n > maxProofLen {
			return numeric.Q{}, fmt.Errorf("proof: rational literal of %d bytes exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return numeric.Q{}, fmt.Errorf("proof: truncated rational: %w", err)
		}
		rat, ok := new(big.Rat).SetString(string(buf))
		if !ok {
			return numeric.Q{}, fmt.Errorf("proof: malformed rational %q", buf)
		}
		return numeric.QFromRat(rat), nil
	default:
		return numeric.Q{}, fmt.Errorf("proof: unknown rational tag %d", tag)
	}
}

func (r *Reader) delta() (numeric.Delta, error) {
	std, err := r.rat()
	if err != nil {
		return numeric.Delta{}, err
	}
	inf, err := r.rat()
	if err != nil {
		return numeric.Delta{}, err
	}
	return numeric.NewDeltaQ(std, inf), nil
}

// ReadAll decodes an entire stream; tooling and mutation tests use it to
// inspect or rewrite proofs record by record.
func ReadAll(r io.Reader) ([]*Record, error) {
	pr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []*Record
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// WriteAll serializes records behind a fresh header — the inverse of
// ReadAll.
func WriteAll(w io.Writer, recs []*Record) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	var e encoder
	for _, rec := range recs {
		e.buf = e.buf[:0]
		e.record(rec)
		if _, err := w.Write(e.buf); err != nil {
			return err
		}
	}
	return nil
}
