package proof_test

import (
	"bytes"
	"testing"

	"segrid/internal/cnf"
	"segrid/internal/numeric"
	"segrid/internal/proof"
	"segrid/internal/sat"
)

func qi(n int64) numeric.Q { return numeric.QFromInt(n) }

func dl(std, inf int64) numeric.Delta {
	return numeric.NewDeltaQ(qi(std), qi(inf))
}

// fuzzSeed serializes a record stream built through the Writer the way the
// solver would, so the corpus starts from well-formed certificates the
// mutator can corrupt one byte at a time.
func fuzzSeed(f *testing.F, build func(w *proof.Writer)) {
	f.Helper()
	var buf bytes.Buffer
	w := proof.NewWriter(&buf)
	build(w)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
}

// FuzzProof throws arbitrary bytes at the certificate checker (and, when the
// stream verifies, at the trimmer). Certificates cross a trust boundary — the
// checker exists precisely because solver output is not taken on faith — so
// the property is absence of panics and runaway allocation: every malformed
// stream must come back as an error, never a crash.
func FuzzProof(f *testing.F) {
	fuzzSeed(f, func(w *proof.Writer) { // propositional pigeon proof
		x, y := sat.PosLit(0), sat.PosLit(1)
		w.LogInput([]sat.Lit{x, y})
		w.LogInput([]sat.Lit{x.Not(), y})
		w.LogInput([]sat.Lit{x, y.Not()})
		w.LogInput([]sat.Lit{x.Not(), y.Not()})
		w.LogLearnt([]sat.Lit{y})
		w.EndUnsat(nil)
	})
	fuzzSeed(f, func(w *proof.Writer) { // gate definition, swallowed clauses
		a, b, g := sat.PosLit(0), sat.PosLit(1), sat.PosLit(2)
		w.DefineGate(cnf.GateAnd, g.Var(), []sat.Lit{a, b})
		for _, cl := range cnf.GateClauses(nil, cnf.GateAnd, g, []sat.Lit{a, b}) {
			w.LogInput(cl)
		}
		w.LogInput([]sat.Lit{g})
		w.LogInput([]sat.Lit{a.Not(), b.Not()})
		w.EndUnsat(nil)
	})
	fuzzSeed(f, func(w *proof.Writer) { // guarded cardinality circuit
		lits := []sat.Lit{sat.PosLit(0), sat.PosLit(1), sat.PosLit(2)}
		guard := sat.NegLit(9)
		w.DefineCard(cnf.CardSeqCounter, lits, 1, 3, guard)
		for _, cl := range cnf.AtMostK(nil, lits, 1, cnf.CardSeqCounter, 3, guard) {
			w.LogInput(cl)
		}
		w.LogInput([]sat.Lit{lits[0]})
		w.LogInput([]sat.Lit{lits[1]})
		w.EndUnsat([]sat.Lit{sat.PosLit(9)})
	})
	fuzzSeed(f, func(w *proof.Writer) { // theory records, two segments
		w.DefineSlack(2, []proof.Term{{Var: 0, Coeff: qi(1)}, {Var: 1, Coeff: qi(1)}})
		w.DefineAtom(0, 0, dl(1, -1), dl(1, 0))
		w.DefineAtom(1, 1, dl(1, -1), dl(1, 0))
		w.DefineAtom(2, 2, dl(1, 0), dl(1, 1))
		w.LogInput([]sat.Lit{sat.NegLit(0)})
		w.LogInput([]sat.Lit{sat.NegLit(1)})
		w.LogInput([]sat.Lit{sat.PosLit(2)})
		w.StageFarkas([]numeric.Q{qi(1), qi(1), qi(1)})
		w.LogTheoryLemma([]sat.Lit{sat.PosLit(0), sat.PosLit(1), sat.NegLit(2)})
		w.EndUnsat(nil)
		w.Restart()
		w.LogInput([]sat.Lit{sat.PosLit(0)})
		w.LogInput([]sat.Lit{sat.NegLit(0)})
		w.EndUnsat(nil)
	})
	f.Add([]byte("SGPF2\n"))
	f.Add([]byte("SGPF1\nanything"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := proof.Check(bytes.NewReader(data)); err != nil {
			return
		}
		// A verifying stream must survive trimming, and the trimmed stream
		// must still verify (TrimTo does not re-check on its own).
		var out bytes.Buffer
		if _, err := proof.TrimTo(&out, bytes.NewReader(data)); err != nil {
			t.Fatalf("valid stream failed to trim: %v", err)
		}
		if _, err := proof.Check(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("trimmed stream no longer verifies: %v", err)
		}
	})
}
