package proof

import (
	"bytes"
	"strings"
	"testing"

	"segrid/internal/numeric"
	"segrid/internal/sat"
)

func q(n int64) numeric.Q { return numeric.QFromInt(n) }

func dlt(std, inf int64) numeric.Delta {
	return numeric.NewDeltaQ(q(std), q(inf))
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []*Record{
		{Kind: KindRestart},
		{Kind: KindSlackDef, Var: 2, Terms: []Term{{Var: 0, Coeff: q(1)}, {Var: 1, Coeff: numeric.QFromFrac(-7, 3)}}},
		{Kind: KindAtomDef, Var: 5, Slack: 2, Pos: dlt(3, 0), Neg: dlt(3, 1)},
		{Kind: KindInput, ID: 1, Lits: []sat.Lit{sat.PosLit(0), sat.NegLit(1)}},
		{Kind: KindDerived, ID: 2, Lits: []sat.Lit{sat.NegLit(0)}},
		{Kind: KindTheoryLemma, ID: 3, Lits: []sat.Lit{sat.PosLit(5), sat.NegLit(6)}, Coeffs: []numeric.Q{q(1), numeric.QFromFrac(5, 2)}},
		{Kind: KindDelete, ID: 2},
		{Kind: KindUnsat, Check: 1, Lits: []sat.Lit{sat.PosLit(9)}},
		{Kind: KindUnsat, Check: 2},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round-trip length: got %d, want %d", len(got), len(recs))
	}
	for i, g := range got {
		w := recs[i]
		if g.Kind != w.Kind || g.ID != w.ID || g.Var != w.Var || g.Slack != w.Slack || g.Check != w.Check {
			t.Errorf("record %d: got %+v, want %+v", i, g, w)
		}
		if len(g.Lits) != len(w.Lits) {
			t.Errorf("record %d: lits %v, want %v", i, g.Lits, w.Lits)
			continue
		}
		for j := range g.Lits {
			if g.Lits[j] != w.Lits[j] {
				t.Errorf("record %d lit %d: got %v, want %v", i, j, g.Lits[j], w.Lits[j])
			}
		}
		for j := range g.Coeffs {
			if g.Coeffs[j].Cmp(w.Coeffs[j]) != 0 {
				t.Errorf("record %d coeff %d: got %v, want %v", i, j, g.Coeffs[j], w.Coeffs[j])
			}
		}
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE!\n")); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestReaderRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []*Record{{Kind: KindInput, ID: 1, Lits: []sat.Lit{sat.PosLit(0), sat.PosLit(1)}}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadAll(bytes.NewReader(b[:len(b)-1])); err == nil {
		t.Fatal("expected truncation error")
	}
}

// pigeonProof writes the four binary clauses forcing x ↔ ¬y and y ↔ ¬x
// simultaneously — a minimal propositional UNSAT — through the Writer the
// way the solver would: inputs, a learnt unit, and a final check.
func pigeonProof(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	x, y := sat.PosLit(0), sat.PosLit(1)
	w.LogInput([]sat.Lit{x, y})
	w.LogInput([]sat.Lit{x.Not(), y})
	w.LogInput([]sat.Lit{x, y.Not()})
	w.LogInput([]sat.Lit{x.Not(), y.Not()})
	w.LogLearnt([]sat.Lit{y})
	if got := w.EndUnsat(nil); got != 1 {
		t.Fatalf("EndUnsat index: got %d, want 1", got)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return &buf
}

func TestCheckAcceptsPropositionalProof(t *testing.T) {
	buf := pigeonProof(t)
	rep, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.Inputs != 4 || rep.Derived != 1 || rep.UnsatChecks != 1 {
		t.Fatalf("unexpected report: %v", rep)
	}
}

func TestCheckRejectsCorruptedLiteral(t *testing.T) {
	buf := pigeonProof(t)
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Kind == KindDerived {
			// The learnt unit y becomes a unit over a fresh variable. The
			// step itself is blocked (vacuously RAT), but the final conflict
			// no longer propagates, so the proof as a whole must fail.
			rec.Lits[0] = sat.PosLit(7)
		}
	}
	var mutated bytes.Buffer
	if err := WriteAll(&mutated, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(mutated.Bytes())); err == nil {
		t.Fatal("checker accepted a corrupted derivation")
	}
}

func TestCheckRejectsNonRUPDerivation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	x, y := sat.PosLit(0), sat.PosLit(1)
	w.LogInput([]sat.Lit{x, y})
	// (¬y ∨ x) does not follow from (x ∨ y): it is neither RUP nor RAT.
	w.LogLearnt([]sat.Lit{y.Not(), x})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("checker accepted an underivable clause")
	}
}

func TestCheckRejectsDroppedInput(t *testing.T) {
	buf := pigeonProof(t)
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Dropping one input leaves the learnt unit underivable.
	out := recs[:0]
	dropped := false
	for _, rec := range recs {
		if !dropped && rec.Kind == KindInput {
			dropped = true
			continue
		}
		out = append(out, rec)
	}
	var mutated bytes.Buffer
	if err := WriteAll(&mutated, out); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(mutated.Bytes())); err == nil {
		t.Fatal("checker accepted a proof missing a premise")
	}
}

func TestCheckRejectsUnknownDelete(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.LogInput([]sat.Lit{sat.PosLit(0)})
	w.LogDelete(42)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("checker accepted a dangling delete")
	}
}

func TestCheckRejectsUnsupportedAssumptionConflict(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.LogInput([]sat.Lit{sat.PosLit(0), sat.PosLit(1)})
	w.EndUnsat([]sat.Lit{sat.PosLit(2)}) // assumption implies nothing
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("checker accepted an unjustified assumption conflict")
	}
}

// farkasLemmaRecords builds a theory proof: x₀ ≥ 1, x₁ ≥ 1 and x₀+x₁ ≤ 1
// are jointly infeasible, certified with unit Farkas coefficients.
func farkasLemmaRecords(coeffs []numeric.Q) []*Record {
	a0 := sat.PosLit(0) // negated: x₀ ≥ 1 (slack 0)
	a1 := sat.PosLit(1) // negated: x₁ ≥ 1 (slack 1)
	a2 := sat.PosLit(2) // positive: x₀+x₁ ≤ 1 (slack 2)
	return []*Record{
		{Kind: KindSlackDef, Var: 2, Terms: []Term{{Var: 0, Coeff: q(1)}, {Var: 1, Coeff: q(1)}}},
		{Kind: KindAtomDef, Var: 0, Slack: 0, Pos: dlt(1, -1), Neg: dlt(1, 0)},
		{Kind: KindAtomDef, Var: 1, Slack: 1, Pos: dlt(1, -1), Neg: dlt(1, 0)},
		{Kind: KindAtomDef, Var: 2, Slack: 2, Pos: dlt(1, 0), Neg: dlt(1, 1)},
		// Bounds asserted as units so the lemma closes the proof.
		{Kind: KindInput, ID: 1, Lits: []sat.Lit{a0.Not()}},
		{Kind: KindInput, ID: 2, Lits: []sat.Lit{a1.Not()}},
		{Kind: KindInput, ID: 3, Lits: []sat.Lit{a2}},
		{Kind: KindTheoryLemma, ID: 4, Lits: []sat.Lit{a0, a1, a2.Not()}, Coeffs: coeffs},
		{Kind: KindUnsat, Check: 1},
	}
}

func TestCheckAcceptsFarkasLemma(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, farkasLemmaRecords([]numeric.Q{q(1), q(1), q(1)})); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.TheoryLemmas != 1 || rep.UnsatChecks != 1 {
		t.Fatalf("unexpected report: %v", rep)
	}
}

func TestCheckRejectsBadFarkasCoefficients(t *testing.T) {
	cases := map[string][]numeric.Q{
		"wrong scale":  {q(2), q(1), q(1)}, // variables no longer cancel
		"zero":         {q(0), q(1), q(1)},
		"negative":     {q(-1), q(1), q(1)},
		"missing cert": make([]numeric.Q, 3), // what the writer emits unstaged
	}
	for name, coeffs := range cases {
		var buf bytes.Buffer
		if err := WriteAll(&buf, farkasLemmaRecords(coeffs)); err != nil {
			t.Fatal(err)
		}
		if _, err := Check(bytes.NewReader(buf.Bytes())); err == nil {
			t.Errorf("%s: checker accepted an invalid Farkas certificate", name)
		}
	}
}

func TestCheckRejectsNonContradictoryLemma(t *testing.T) {
	recs := farkasLemmaRecords([]numeric.Q{q(1), q(1), q(1)})
	// Relax the upper bound to x₀+x₁ ≤ 2: the combination is now satisfiable
	// (rhs 0, not negative), so the lemma proves nothing.
	recs[3].Pos = dlt(2, 0)
	recs[3].Neg = dlt(2, 1)
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("checker accepted a non-contradictory Farkas combination")
	}
}

func TestCheckRestartsIsolateSegments(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.LogInput([]sat.Lit{sat.PosLit(0)})
	w.LogInput([]sat.Lit{sat.NegLit(0)})
	w.EndUnsat(nil)
	w.Restart()
	// After the restart the contradiction is gone; an unsupported check must
	// be rejected even though the previous segment was unsat.
	w.LogInput([]sat.Lit{sat.PosLit(0)})
	w.EndUnsat(nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("checker leaked state across a restart")
	}
}

func TestCheckRejectsStrictBoundSatisfiableCombination(t *testing.T) {
	// x < 1 and x ≥ 1 conflict only through the delta order; x ≤ 1 and
	// x ≥ 1 do not conflict at all. The checker must tell them apart.
	strict := []*Record{
		{Kind: KindAtomDef, Var: 0, Slack: 0, Pos: dlt(1, -1), Neg: dlt(1, 0)}, // x ≤ 1−δ / x ≥ 1
		{Kind: KindInput, ID: 1, Lits: []sat.Lit{sat.PosLit(0)}},
		{Kind: KindAtomDef, Var: 1, Slack: 0, Pos: dlt(1, 0), Neg: dlt(1, 1)}, // x ≤ 1 / x ≥ 1+δ
		{Kind: KindInput, ID: 2, Lits: []sat.Lit{sat.NegLit(1)}},
		{Kind: KindTheoryLemma, ID: 3, Lits: []sat.Lit{sat.NegLit(0), sat.PosLit(1)}, Coeffs: []numeric.Q{q(1), q(1)}},
		{Kind: KindUnsat, Check: 1},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, strict); err != nil {
		t.Fatal(err)
	}
	// x ≤ 1−δ with x ≥ 1+δ: rhs = (1−δ) − (1+δ) = −2δ < 0 — valid.
	if _, err := Check(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("strict conflict rejected: %v", err)
	}
	// Weaken to the non-strict pair x ≤ 1, x ≥ 1: rhs = 0 — no conflict.
	strict[0].Pos = dlt(1, 0)
	strict[2].Neg = dlt(1, 0)
	buf.Reset()
	if err := WriteAll(&buf, strict); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("checker accepted a combination that is only tight, not contradictory")
	}
}
