package proof

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"segrid/internal/sat"
)

// trimTracer records, during a full checking replay, which earlier records
// each record's verification rested on: RUP conflicts are walked back
// through the propagation reasons to the clauses involved, install-time
// purges of root-false literals are charged to the records that made them
// false, Farkas lemmas to the atom and slack definitions they combine, and
// everything after a permanent root conflict to the records that established
// it. The backward pass then keeps exactly the records reachable from the
// Unsat answers — the DRAT-trim idea (Wetzler, Heule & Hunt, SAT 2014)
// adapted to this stream's definition and theory records.
type trimTracer struct {
	// recOfClause maps a clause id to the index of the record that installed
	// it (ids are unique across the stream, including re-derived
	// definitional clauses, which map to their provenance record).
	recOfClause map[uint64]int
	// deps[i] lists the record indices record i's verification depends on.
	deps [][]int
	// atomRec and slackRec map the current segment's atom/slack definitions
	// to their record index.
	atomRec  map[int]int
	slackRec map[int]int
	// rootDeps, once the segment hits a permanent root conflict, holds the
	// record indices that established it.
	rootDeps []int
	// usedRAT marks that some derivation needed the RAT fallback, whose
	// validity depends on clauses being *absent*; trimming then bails out
	// conservatively and returns the stream unchanged.
	usedRAT bool

	// varMark/markGen give addConflictDeps an O(1) visited set without
	// allocating one per conflict.
	varMark []uint32
	markGen uint32
	stack   []sat.Lit
}

func newTrimTracer() *trimTracer {
	return &trimTracer{
		recOfClause: make(map[uint64]int),
		atomRec:     make(map[int]int),
		slackRec:    make(map[int]int),
	}
}

// resetSegment clears per-segment definition maps at a Restart (clause ids
// are stream-global and stay).
func (t *trimTracer) resetSegment() {
	t.atomRec = make(map[int]int)
	t.slackRec = make(map[int]int)
	t.rootDeps = nil
}

func (t *trimTracer) noteInstall(c *checker, id uint64) {
	t.recOfClause[id] = c.recIdx
}

func (t *trimTracer) noteAtom(c *checker, v int) {
	if r, ok := t.atomRec[v]; ok {
		t.deps[c.recIdx] = append(t.deps[c.recIdx], r)
	}
}

func (t *trimTracer) noteSlack(c *checker, v int) {
	if r, ok := t.slackRec[v]; ok {
		t.deps[c.recIdx] = append(t.deps[c.recIdx], r)
	}
}

func (t *trimTracer) noteEntailedByRoot(c *checker) {
	t.deps[c.recIdx] = append(t.deps[c.recIdx], t.rootDeps...)
}

func (t *trimTracer) noteRootConflict(c *checker, conflict *ckClause, rootLit sat.Lit) {
	if t.rootDeps != nil {
		return
	}
	mark := len(t.deps[c.recIdx])
	t.addConflictDeps(c, conflict, rootLit)
	t.rootDeps = append([]int{c.recIdx}, t.deps[c.recIdx][mark:]...)
}

// addConflictDeps walks a conflict back through the propagation reasons: the
// conflicting clause (or a root-true literal) seeds the walk, every visited
// clause contributes its installing record, and every literal of a visited
// clause is chased through its reason. Literals assumed by the enclosing RUP
// check have no reason and terminate the walk.
func (t *trimTracer) addConflictDeps(c *checker, conflict *ckClause, rootLit sat.Lit) {
	t.markGen++
	for len(t.varMark) < len(c.assigns) {
		t.varMark = append(t.varMark, 0)
	}
	t.stack = t.stack[:0]
	addClause := func(cl *ckClause) {
		if r, ok := t.recOfClause[cl.id]; ok {
			t.deps[c.recIdx] = append(t.deps[c.recIdx], r)
		}
		t.stack = append(t.stack, cl.lits...)
	}
	if conflict != nil {
		addClause(conflict)
	}
	if rootLit != sat.LitUndef {
		t.stack = append(t.stack, rootLit)
	}
	for len(t.stack) > 0 {
		l := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		v := l.Var()
		if int(v) >= len(t.varMark) || t.varMark[v] == t.markGen {
			continue
		}
		t.varMark[v] = t.markGen
		if r := c.reasons[v]; r != nil {
			addClause(r)
		}
	}
}

// TrimStats reports the effect of a trimming pass.
type TrimStats struct {
	RecordsBefore, RecordsAfter int
	BytesBefore, BytesAfter     int64
}

// Ratio returns the size reduction factor (before/after), or 0 when the
// trimmed stream is empty.
func (s TrimStats) Ratio() float64 {
	if s.BytesAfter == 0 {
		return 0
	}
	return float64(s.BytesBefore) / float64(s.BytesAfter)
}

// Trim runs a full checking replay over the records with dependency
// tracking, then walks backward keeping only the records reachable from the
// Unsat answers (Restart markers always stay; a Delete stays only when the
// clause it removes does). The input must be a valid proof — Trim verifies
// it as it replays and fails on the first invalid record. When a derivation
// needed the RAT fallback the stream is returned unchanged, since RAT checks
// can be invalidated by removing clauses.
//
// The trimmed stream verifies on its own: every kept record's justification
// — RUP propagation chains, install-time purges, Farkas definitions, root
// conflicts — is closed under the kept set.
func Trim(recs []*Record) ([]*Record, *Report, error) {
	tr := newTrimTracer()
	c := newChecker()
	c.tr = tr
	c.reset() // rewire the tracer's segment state created before c.tr was set
	rep := &Report{}
	for i, rec := range recs {
		c.recIdx = i
		tr.deps = append(tr.deps, nil)
		rep.Records++
		if err := c.apply(rec, rep); err != nil {
			return nil, nil, fmt.Errorf("proof: record %d (%v): %w", i+1, rec.Kind, err)
		}
	}
	if tr.usedRAT {
		return recs, rep, nil
	}

	need := make([]bool, len(recs))
	for i := len(recs) - 1; i >= 0; i-- {
		switch recs[i].Kind {
		case KindUnsat, KindRestart:
			need[i] = true
		}
		if !need[i] {
			continue
		}
		for _, d := range tr.deps[i] {
			need[d] = true
		}
	}
	out := make([]*Record, 0, len(recs))
	for i, rec := range recs {
		if rec.Kind == KindDelete {
			// Keep the deletion only when the clause it removes survives.
			if r, ok := tr.recOfClause[rec.ID]; ok && need[r] {
				out = append(out, rec)
			}
			continue
		}
		if need[i] {
			out = append(out, rec)
		}
	}
	return out, rep, nil
}

// TrimFile trims the certificate at path in place (via a temporary file and
// rename) and reports the size change. The trimmed stream is re-verified
// before it replaces the original; a verification failure leaves the
// original untouched.
func TrimFile(path string) (*TrimStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("proof: %w", err)
	}
	recs, err := ReadAll(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	before, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("proof: %w", err)
	}
	trimmed, _, err := Trim(recs)
	if err != nil {
		return nil, err
	}
	// The temp file lives next to the certificate so the rename stays on one
	// filesystem.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".trim-*")
	if err != nil {
		return nil, fmt.Errorf("proof: %w", err)
	}
	tmpName := tmp.Name()
	if err := WriteAll(tmp, trimmed); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return nil, fmt.Errorf("proof: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return nil, fmt.Errorf("proof: %w", err)
	}
	// Independent re-verification of the trimmed stream before it replaces
	// the original: a trimming bug must never destroy a valid certificate.
	if _, err := CheckFile(tmpName); err != nil {
		os.Remove(tmpName)
		return nil, fmt.Errorf("proof: trimmed stream failed verification: %w", err)
	}
	after, err := os.Stat(tmpName)
	if err != nil {
		os.Remove(tmpName)
		return nil, fmt.Errorf("proof: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return nil, fmt.Errorf("proof: %w", err)
	}
	return &TrimStats{
		RecordsBefore: len(recs),
		RecordsAfter:  len(trimmed),
		BytesBefore:   before.Size(),
		BytesAfter:    after.Size(),
	}, nil
}

// TrimTo trims records read from r and writes the trimmed stream to w,
// returning the stats. Unlike TrimFile it does not re-verify (the caller
// typically checks the written stream next).
func TrimTo(w io.Writer, r io.Reader) (*TrimStats, error) {
	recs, err := ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed, _, err := Trim(recs)
	if err != nil {
		return nil, err
	}
	cw := &countWriter{w: w}
	if err := WriteAll(cw, trimmed); err != nil {
		return nil, err
	}
	var before int64
	var e encoder
	for _, rec := range recs {
		e.buf = e.buf[:0]
		e.record(rec)
		before += int64(len(e.buf))
	}
	before += int64(len(magic))
	return &TrimStats{
		RecordsBefore: len(recs),
		RecordsAfter:  len(trimmed),
		BytesBefore:   before,
		BytesAfter:    cw.n,
	}, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
