package proof

import (
	"errors"
	"fmt"
	"io"
	"os"

	"segrid/internal/cnf"
	"segrid/internal/numeric"
	"segrid/internal/sat"
)

// Report summarizes a successfully checked proof stream.
type Report struct {
	Records      int
	Restarts     int
	Inputs       int
	Derived      int
	TheoryLemmas int
	Deletes      int
	UnsatChecks  int
	GateDefs     int
	CardDefs     int
	// DefClauses counts definitional clauses the checker re-derived through
	// the cnf kernel from gate/cardinality provenance records (they are not
	// serialized in the stream).
	DefClauses int
}

// String renders the report for CLI output.
func (r *Report) String() string {
	return fmt.Sprintf("%d records: %d inputs, %d derived, %d theory lemmas, %d deletions, %d unsat checks, %d restarts, %d gate defs + %d card defs (%d clauses re-derived)",
		r.Records, r.Inputs, r.Derived, r.TheoryLemmas, r.Deletes, r.UnsatChecks, r.Restarts, r.GateDefs, r.CardDefs, r.DefClauses)
}

// Check verifies a proof stream: every derived clause must pass reverse unit
// propagation (with a RAT fallback on its first literal), every theory lemma
// must carry valid Farkas coefficients over the recorded atom and slack
// definitions, every gate/cardinality definitional clause is re-derived
// through the shared cnf kernel from its provenance record (with the output
// and register variables required fresh, so a definitional extension cannot
// constrain existing variables), and every Unsat record must close under
// unit propagation from its assumptions. The checker trusts only the
// genuinely asserted input clauses; it shares no search code with the solver
// and does arithmetic exclusively through internal/numeric.
func Check(r io.Reader) (*Report, error) {
	pr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	c := newChecker()
	rep := &Report{}
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			return rep, nil
		}
		if err != nil {
			return nil, err
		}
		rep.Records++
		if err := c.apply(rec, rep); err != nil {
			return nil, fmt.Errorf("proof: record %d (%v): %w", rep.Records, rec.Kind, err)
		}
	}
}

// CheckFile verifies the proof stream stored at path.
func CheckFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("proof: %w", err)
	}
	defer f.Close()
	return Check(f)
}

// vval is the checker's lifted boolean.
type vval int8

const (
	vUndef vval = 0
	vTrue  vval = 1
	vFalse vval = -1
)

// ckClause is a clause in the checker's database. lits is deduplicated and,
// for active clauses, purged of root-false literals at install time (root
// assignments are permanent, so the purge stays valid). Inactive clauses
// (tautologies, clauses satisfied at the root) take no part in propagation.
type ckClause struct {
	id       uint64
	lits     []sat.Lit
	deleted  bool
	inactive bool
}

// atomBound is the recorded theory meaning of a SAT variable.
type atomBound struct {
	slack    int
	pos, neg numeric.Delta
}

// checker replays a proof stream. Propagation uses its own two-watched-
// literal scheme over its own clause store — independent from package sat by
// construction, so solver and checker can only agree by both being right.
type checker struct {
	clauses map[uint64]*ckClause
	watches [][]*ckClause // indexed by int(Lit)
	assigns []vval        // indexed by int(Var)
	reasons []*ckClause   // indexed by int(Var): the clause that propagated it
	trail   []sat.Lit
	qhead   int

	// seen marks SAT variables referenced by any earlier record of the
	// current segment; gate outputs and cardinality registers must be
	// unseen, or a "definitional" record could constrain existing variables
	// and certify a wrong UNSAT.
	seen []bool

	rootConflict bool

	// arena backs the kernel re-derivation of definitional clauses; install
	// copies the literals it keeps, so views can be recycled per record.
	arena cnf.Arena

	slackDefs map[int][]Term
	atoms     map[int]atomBound

	unsatSeen uint64

	// tr, when non-nil, records the dependency structure of the replay for
	// the backward trimming pass; recIdx is the record being applied.
	tr     *trimTracer
	recIdx int
}

func newChecker() *checker {
	c := &checker{}
	c.reset()
	return c
}

// reset clears all per-segment state (everything except the running Unsat
// counter, which numbers checks across the whole stream).
func (c *checker) reset() {
	c.clauses = make(map[uint64]*ckClause)
	c.watches = nil
	c.assigns = nil
	c.reasons = nil
	c.trail = nil
	c.qhead = 0
	c.seen = nil
	c.rootConflict = false
	c.slackDefs = make(map[int][]Term)
	c.atoms = make(map[int]atomBound)
	if c.tr != nil {
		c.tr.resetSegment()
	}
}

func (c *checker) ensureVar(v sat.Var) {
	for int(v) >= len(c.assigns) {
		c.assigns = append(c.assigns, vUndef)
		c.reasons = append(c.reasons, nil)
		c.seen = append(c.seen, false)
		c.watches = append(c.watches, nil, nil)
	}
}

// markSeen records that v is referenced by the current record.
func (c *checker) markSeen(v sat.Var) {
	c.ensureVar(v)
	c.seen[v] = true
}

func (c *checker) isSeen(v sat.Var) bool {
	return int(v) < len(c.seen) && c.seen[v]
}

func (c *checker) value(l sat.Lit) vval {
	if int(l.Var()) >= len(c.assigns) {
		return vUndef
	}
	a := c.assigns[l.Var()]
	if a == vUndef {
		return vUndef
	}
	if l.IsNeg() {
		return -a
	}
	return a
}

// assign makes l true and pushes it on the trail, remembering the clause
// that forced it (nil for assumed literals). The caller guarantees l is
// currently unassigned.
func (c *checker) assign(l sat.Lit, reason *ckClause) {
	c.ensureVar(l.Var())
	if l.IsNeg() {
		c.assigns[l.Var()] = vFalse
	} else {
		c.assigns[l.Var()] = vTrue
	}
	c.reasons[l.Var()] = reason
	c.trail = append(c.trail, l)
}

// propagate runs unit propagation to fixpoint, returning the conflicting
// clause, or nil when none was found.
func (c *checker) propagate() *ckClause {
	for c.qhead < len(c.trail) {
		p := c.trail[c.qhead] // p is true; visit clauses watching ¬p
		c.qhead++
		ws := c.watches[p]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			cl := ws[i]
			if cl.deleted {
				continue
			}
			if cl.lits[0] == p.Not() {
				cl.lits[0], cl.lits[1] = cl.lits[1], cl.lits[0]
			}
			first := cl.lits[0]
			if c.value(first) == vTrue {
				kept = append(kept, cl)
				continue
			}
			found := false
			for k := 2; k < len(cl.lits); k++ {
				if c.value(cl.lits[k]) != vFalse {
					cl.lits[1], cl.lits[k] = cl.lits[k], cl.lits[1]
					w := cl.lits[1].Not()
					c.watches[w] = append(c.watches[w], cl)
					found = true
					break
				}
			}
			if found {
				continue
			}
			kept = append(kept, cl)
			if c.value(first) == vFalse {
				kept = append(kept, ws[i+1:]...)
				c.watches[p] = kept
				c.qhead = len(c.trail)
				return cl
			}
			c.assign(first, cl)
		}
		c.watches[p] = kept
	}
	return nil
}

// undo retracts every assignment above the trail mark.
func (c *checker) undo(mark int) {
	for i := len(c.trail) - 1; i >= mark; i-- {
		c.assigns[c.trail[i].Var()] = vUndef
		c.reasons[c.trail[i].Var()] = nil
	}
	c.trail = c.trail[:mark]
	c.qhead = mark
}

// rup checks the clause by reverse unit propagation: assuming the negation
// of every literal must propagate to a conflict. Temporary assignments are
// retracted before returning.
func (c *checker) rup(lits []sat.Lit) bool {
	mark := len(c.trail)
	conflict := false
	for _, l := range lits {
		c.ensureVar(l.Var())
		switch c.value(l) {
		case vTrue:
			// l already holds at the root, so assuming ¬l is an immediate
			// contradiction: the clause is implied.
			if !conflict {
				conflict = true
				c.noteConflict(nil, l)
			}
		case vUndef:
			c.assign(l.Not(), nil)
		}
	}
	if !conflict {
		if cl := c.propagate(); cl != nil {
			conflict = true
			c.noteConflict(cl, sat.LitUndef)
		}
	}
	c.undo(mark)
	return conflict
}

// noteConflict hands the trimming tracer the clauses a just-found conflict
// rests on: the conflicting clause (or a root-true literal) plus the reason
// chain behind every falsified literal. A plain Check pays one nil test.
func (c *checker) noteConflict(conflict *ckClause, rootLit sat.Lit) {
	if c.tr != nil {
		c.tr.addConflictDeps(c, conflict, rootLit)
	}
}

// rat checks the clause by resolution asymmetric tautology on its first
// literal: every resolvent with a clause containing its negation must be RUP
// (or a tautology). This is the DRAT fallback for clauses that are not
// themselves RUP; the solver's learnt clauses are RUP by construction, so
// this path exists for format generality.
func (c *checker) rat(lits []sat.Lit) bool {
	if len(lits) == 0 {
		return false
	}
	if c.tr != nil {
		// RAT justifications depend on the *absence* of resolution partners,
		// which trimming could invalidate; the trimmer bails out instead.
		c.tr.usedRAT = true
	}
	pivot := lits[0]
	neg := pivot.Not()
	for _, cl := range c.clauses {
		if cl.deleted {
			continue
		}
		hasNeg := false
		for _, l := range cl.lits {
			if l == neg {
				hasNeg = true
				break
			}
		}
		if !hasNeg {
			continue
		}
		resolvent, taut := resolve(lits, cl.lits, pivot)
		if taut {
			continue
		}
		if !c.rup(resolvent) {
			return false
		}
	}
	return true
}

// resolve builds the resolvent of a and b on pivot (pivot ∈ a, ¬pivot ∈ b),
// reporting whether it is a tautology.
func resolve(a, b []sat.Lit, pivot sat.Lit) ([]sat.Lit, bool) {
	seen := make(map[sat.Lit]bool, len(a)+len(b))
	out := make([]sat.Lit, 0, len(a)+len(b)-2)
	add := func(l sat.Lit) bool {
		if seen[l] {
			return false
		}
		if seen[l.Not()] {
			return true
		}
		seen[l] = true
		out = append(out, l)
		return false
	}
	for _, l := range a {
		if l == pivot {
			continue
		}
		if add(l) {
			return nil, true
		}
	}
	for _, l := range b {
		if l == pivot.Not() {
			continue
		}
		if add(l) {
			return nil, true
		}
	}
	return out, false
}

// install adds a verified clause to the database under the given id. The
// stored literal set is deduplicated; tautologies and root-satisfied clauses
// are kept only for id bookkeeping. Root units are propagated immediately,
// so the root assignment is always at fixpoint between records.
func (c *checker) install(id uint64, lits []sat.Lit) error {
	if _, dup := c.clauses[id]; dup {
		return fmt.Errorf("duplicate clause id %d", id)
	}
	cl := &ckClause{id: id}
	c.clauses[id] = cl
	if c.tr != nil {
		c.tr.noteInstall(c, id)
	}

	dedup := make(map[sat.Lit]bool, len(lits))
	out := make([]sat.Lit, 0, len(lits))
	satisfied := false
	taut := false
	for _, l := range lits {
		c.markSeen(l.Var())
		if dedup[l] {
			continue
		}
		if dedup[l.Not()] {
			taut = true
		}
		dedup[l] = true
		switch c.value(l) {
		case vTrue:
			satisfied = true
		case vFalse:
			// Permanently false at the root: dropping l is justified by the
			// records that made it false, which the trimmer must keep.
			c.noteConflict(nil, l.Not())
			continue
		}
		out = append(out, l)
	}
	cl.lits = out
	if taut || satisfied || c.rootConflict {
		cl.inactive = true
		return nil
	}
	switch len(out) {
	case 0:
		c.rootConflict = true
		cl.inactive = true
		c.noteRootConflict(cl, sat.LitUndef)
	case 1:
		cl.inactive = true // the unit lives in the root assignment instead
		c.assign(out[0], cl)
		if conf := c.propagate(); conf != nil {
			c.rootConflict = true
			c.noteRootConflict(conf, sat.LitUndef)
		}
	default:
		c.watches[out[0].Not()] = append(c.watches[out[0].Not()], cl)
		c.watches[out[1].Not()] = append(c.watches[out[1].Not()], cl)
	}
	return nil
}

// noteRootConflict records the dependency set of the segment's permanent
// root conflict: every later record is entailed by it, so the trimmer
// charges them to this set.
func (c *checker) noteRootConflict(conflict *ckClause, rootLit sat.Lit) {
	if c.tr != nil {
		c.tr.noteRootConflict(c, conflict, rootLit)
	}
}

// checkFarkas verifies a theory lemma: the Farkas combination of the bounds
// asserted by the negations of the clause literals must cancel every
// variable (after substituting slack definitions) and leave a negative
// right-hand side in the delta-rational order — an unsatisfiable constraint
// 0 ≤ rhs < 0.
func (c *checker) checkFarkas(rec *Record) error {
	if len(rec.Lits) == 0 {
		return errors.New("empty theory lemma")
	}
	if len(rec.Coeffs) != len(rec.Lits) {
		return errors.New("farkas coefficient count mismatch")
	}
	linear := make(map[int]numeric.Q, len(rec.Lits))
	addTerm := func(v int, q numeric.Q) {
		sum, ok := linear[v]
		if ok {
			sum = sum.Add(q)
		} else {
			sum = q
		}
		if sum.Sign() == 0 {
			delete(linear, v)
		} else {
			linear[v] = sum
		}
	}
	rhs := numeric.DeltaFromInt(0)
	for i, l := range rec.Lits {
		lam := rec.Coeffs[i]
		if lam.Sign() <= 0 {
			return fmt.Errorf("farkas coefficient %d is not positive", i)
		}
		bl := l.Not() // the asserted bound literal
		ab, ok := c.atoms[int(bl.Var())]
		if !ok {
			return fmt.Errorf("literal %v has no atom definition", bl)
		}
		if c.tr != nil {
			c.tr.noteAtom(c, int(bl.Var()))
		}
		if bl.IsNeg() {
			// slack ≥ neg, i.e. −slack ≤ −neg.
			addTerm(ab.slack, lam.Neg())
			rhs = rhs.Sub(ab.neg.MulQ(lam))
		} else {
			// slack ≤ pos.
			addTerm(ab.slack, lam)
			rhs = rhs.Add(ab.pos.MulQ(lam))
		}
	}
	// Eliminate defined slack variables, highest index first. Definitions
	// only reference lower-numbered variables (enforced at KindSlackDef), so
	// this terminates and needs no cycle detection.
	for {
		v := -1
		for x := range linear {
			if _, ok := c.slackDefs[x]; ok && x > v {
				v = x
			}
		}
		if v < 0 {
			break
		}
		coeff := linear[v]
		delete(linear, v)
		if c.tr != nil {
			c.tr.noteSlack(c, v)
		}
		for _, t := range c.slackDefs[v] {
			addTerm(t.Var, coeff.Mul(t.Coeff))
		}
	}
	if len(linear) != 0 {
		return errors.New("farkas combination does not cancel the variables")
	}
	if rhs.Cmp(numeric.DeltaFromInt(0)) >= 0 {
		return errors.New("farkas combination is not contradictory")
	}
	return nil
}

// noteEntailedByRoot charges a record whose check was skipped (the root
// assignment is already contradictory) to the records that established the
// root conflict, so trimming keeps its justification.
func (c *checker) noteEntailedByRoot() {
	if c.tr != nil {
		c.tr.noteEntailedByRoot(c)
	}
}

// applyGateDef re-derives a Tseitin definition through the cnf kernel and
// installs the derived clauses under the record's claimed id range. The
// output variable must be fresh — unseen by every earlier record of the
// segment — because the gate clauses constrain it as a pure definitional
// extension; a "definition" of an already-constrained variable could turn a
// satisfiable clause set contradictory and certify a wrong UNSAT.
func (c *checker) applyGateDef(rec *Record, rep *Report) error {
	if !rec.Gate.Valid() {
		return fmt.Errorf("unknown gate shape %d", rec.Gate)
	}
	if rec.Var < 0 || rec.Var > maxProofVar {
		return fmt.Errorf("gate output variable %d out of range", rec.Var)
	}
	// Inputs are referenced (hence seen) before the output freshness check,
	// so a self-referential gate is rejected too.
	for _, l := range rec.Lits {
		c.markSeen(l.Var())
	}
	out := sat.Var(rec.Var)
	if c.isSeen(out) {
		return fmt.Errorf("gate output variable %d is not fresh", rec.Var)
	}
	clauses := c.arena.GateClauses(rec.Gate, sat.PosLit(out), rec.Lits)
	for i, cl := range clauses {
		if err := c.install(rec.ID+uint64(i), cl); err != nil {
			return err
		}
	}
	rep.DefClauses += len(clauses)
	return nil
}

// applyCardDef re-derives a cardinality circuit through the cnf kernel and
// installs the derived clauses under the record's claimed id range. Every
// register variable must be fresh, for the same soundness reason as gate
// outputs; the counted literals and the guard are ordinary references.
func (c *checker) applyCardDef(rec *Record, rep *Report) error {
	if !rec.Enc.Valid() {
		return fmt.Errorf("unknown cardinality encoding %d", rec.Enc)
	}
	if rec.Var < 0 || rec.Var > maxProofVar {
		return fmt.Errorf("cardinality register variable %d out of range", rec.Var)
	}
	count, ok := cnf.CardClauseCount(len(rec.Lits), rec.K, rec.Enc, maxProofLen)
	if !ok {
		return fmt.Errorf("cardinality circuit over %d literals with bound %d derives too many clauses", len(rec.Lits), rec.K)
	}
	if count == 0 {
		return fmt.Errorf("cardinality circuit over %d literals with bound %d derives no clauses", len(rec.Lits), rec.K)
	}
	for _, l := range rec.Lits {
		c.markSeen(l.Var())
	}
	if rec.Guard != sat.LitUndef {
		c.markSeen(rec.Guard.Var())
	}
	nFresh := cnf.CardFreshVars(len(rec.Lits), rec.K, rec.Enc)
	if rec.Var+nFresh-1 > maxProofVar {
		return fmt.Errorf("cardinality circuit registers %d..%d out of range", rec.Var, rec.Var+nFresh-1)
	}
	for i := 0; i < nFresh; i++ {
		if c.isSeen(sat.Var(rec.Var + i)) {
			return fmt.Errorf("cardinality register variable %d is not fresh", rec.Var+i)
		}
	}
	clauses := c.arena.AtMostK(rec.Lits, rec.K, rec.Enc, sat.Var(rec.Var), rec.Guard)
	for i, cl := range clauses {
		if err := c.install(rec.ID+uint64(i), cl); err != nil {
			return err
		}
	}
	rep.DefClauses += len(clauses)
	return nil
}

// apply processes one record. Derivation checks are skipped once the root
// assignment is contradictory: the formula is proven unsatisfiable, so every
// later derived clause and Unsat answer is entailed.
func (c *checker) apply(rec *Record, rep *Report) error {
	switch rec.Kind {
	case KindRestart:
		rep.Restarts++
		c.reset()
	case KindSlackDef:
		if _, dup := c.slackDefs[rec.Var]; dup {
			return fmt.Errorf("slack variable %d redefined", rec.Var)
		}
		for _, t := range rec.Terms {
			if t.Var >= rec.Var {
				return fmt.Errorf("slack %d definition references variable %d (not earlier)", rec.Var, t.Var)
			}
			if t.Var < 0 {
				return fmt.Errorf("slack %d definition references negative variable", rec.Var)
			}
		}
		c.slackDefs[rec.Var] = rec.Terms
		if c.tr != nil {
			c.tr.slackRec[rec.Var] = c.recIdx
		}
	case KindAtomDef:
		if _, dup := c.atoms[rec.Var]; dup {
			return fmt.Errorf("atom variable %d redefined", rec.Var)
		}
		if rec.Var >= 0 {
			c.markSeen(sat.Var(rec.Var))
		}
		c.atoms[rec.Var] = atomBound{slack: rec.Slack, pos: rec.Pos, neg: rec.Neg}
		if c.tr != nil {
			c.tr.atomRec[rec.Var] = c.recIdx
		}
	case KindInput:
		rep.Inputs++
		return c.install(rec.ID, rec.Lits)
	case KindDerived:
		rep.Derived++
		if c.rootConflict {
			c.noteEntailedByRoot()
		} else if !c.rup(rec.Lits) && !c.rat(rec.Lits) {
			return fmt.Errorf("clause %d is neither RUP nor RAT", rec.ID)
		}
		return c.install(rec.ID, rec.Lits)
	case KindTheoryLemma:
		rep.TheoryLemmas++
		if c.rootConflict {
			c.noteEntailedByRoot()
		} else if err := c.checkFarkas(rec); err != nil {
			return fmt.Errorf("lemma %d: %w", rec.ID, err)
		}
		return c.install(rec.ID, rec.Lits)
	case KindGateDef:
		rep.GateDefs++
		return c.applyGateDef(rec, rep)
	case KindCardDef:
		rep.CardDefs++
		return c.applyCardDef(rec, rep)
	case KindDelete:
		rep.Deletes++
		cl, ok := c.clauses[rec.ID]
		if !ok {
			return fmt.Errorf("deleting unknown clause id %d", rec.ID)
		}
		cl.deleted = true
		delete(c.clauses, rec.ID)
	case KindUnsat:
		rep.UnsatChecks++
		c.unsatSeen++
		if rec.Check != c.unsatSeen {
			return fmt.Errorf("unsat check numbered %d, expected %d", rec.Check, c.unsatSeen)
		}
		for _, l := range rec.Lits {
			c.markSeen(l.Var())
		}
		if c.rootConflict {
			c.noteEntailedByRoot()
			return nil
		}
		// Assuming every selector true must propagate to a conflict — which
		// is exactly a RUP check of the clause of negated assumptions.
		negated := make([]sat.Lit, len(rec.Lits))
		for i, l := range rec.Lits {
			negated[i] = l.Not()
		}
		if !c.rup(negated) {
			return errors.New("assumptions do not propagate to a conflict")
		}
	default:
		return fmt.Errorf("unknown record kind %d", rec.Kind)
	}
	return nil
}
