package proof

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segrid/internal/sat"
)

// TestAtomicPublishOnClose checks the write-temp-then-rename contract: while
// the stream is open nothing exists at the publication path (only a hidden
// temp), and after Close the complete certificate is there and checks clean.
func TestAtomicPublishOnClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "req-1.proof")
	w, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Path() != path {
		t.Fatalf("Path() = %q, want %q", w.Path(), path)
	}
	// A unit clause and its negation: derived empty clause is RUP, giving a
	// minimal valid certificate.
	w.LogInput([]sat.Lit{sat.PosLit(0)})
	w.LogInput([]sat.Lit{sat.NegLit(0)})
	w.EndUnsat(nil)
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("certificate visible at %s before Close (err=%v)", path, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || !strings.HasPrefix(ents[0].Name(), ".req-1.proof.tmp-") {
		t.Fatalf("staging dir contents = %v, want one hidden temp", ents)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := CheckFile(path)
	if err != nil {
		t.Fatalf("published certificate invalid: %v", err)
	}
	if rep.UnsatChecks != 1 {
		t.Fatalf("UnsatChecks = %d, want 1", rep.UnsatChecks)
	}
	ents, _ = os.ReadDir(dir)
	if len(ents) != 1 || ents[0].Name() != "req-1.proof" {
		t.Fatalf("dir after Close = %v, want only the published certificate", ents)
	}
}

// TestAtomicWriteErrorPublishesNothing checks a poisoned stream neither
// publishes nor leaks its temp: the failure surfaces from Close and the
// directory is left clean.
func TestAtomicWriteErrorPublishesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "req-2.proof")
	w, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	w.LogInput([]sat.Lit{sat.PosLit(0)})
	injected := errors.New("injected proof-sink failure")
	w.err = injected
	if err := w.Close(); !errors.Is(err, injected) {
		t.Fatalf("Close error = %v, want the injected failure", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("dir after failed Close = %v, want empty", ents)
	}
}

// TestUniqueNameCollisionFree checks process-local uniqueness and shape.
func TestUniqueNameCollisionFree(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		n := UniqueName("verify-", ".proof")
		if !strings.HasPrefix(n, "verify-") || !strings.HasSuffix(n, ".proof") {
			t.Fatalf("UniqueName shape wrong: %q", n)
		}
		if seen[n] {
			t.Fatalf("UniqueName repeated %q", n)
		}
		seen[n] = true
	}
}
