package proof

import (
	"path/filepath"
	"testing"
)

// TestGoldenCertificate pins the on-disk format: testdata/golden.proof is a
// trimmed certificate from a real solver run (ieee14, any-state attacker,
// budgets 2 measurements / 1 bus — unsat) checked in so that format or
// checker changes that would orphan previously written certificates fail
// loudly instead of silently. Regenerate it only on a deliberate format bump:
//
//	go run ./cmd/ufdiverify -proof internal/proof/testdata/golden.proof -trim-proof \
//	    <(printf '{"case":"ieee14","anyState":true,"maxMeasurements":2,"maxBuses":1}')
//
// CI additionally runs cmd/proofcheck over the same file.
func TestGoldenCertificate(t *testing.T) {
	rep, err := CheckFile(filepath.Join("testdata", "golden.proof"))
	if err != nil {
		t.Fatalf("golden certificate rejected: %v", err)
	}
	want := Report{
		Records:      205,
		Inputs:       57,
		Derived:      23,
		TheoryLemmas: 22,
		UnsatChecks:  1,
		Restarts:     1,
		GateDefs:     41,
		CardDefs:     1,
		DefClauses:   187,
	}
	if *rep != want {
		t.Fatalf("golden report drifted:\n got %+v\nwant %+v", *rep, want)
	}
}
