package proof

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"segrid/internal/cnf"
	"segrid/internal/sat"
)

// paddedPigeonProof is the propositional pigeon proof with junk the trimmer
// should discard: two inputs over unrelated variables, a learnt clause the
// final conflict never touches, and a deletion of that learnt clause.
func paddedPigeonProof(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	x, y := sat.PosLit(0), sat.PosLit(1)
	u, v := sat.PosLit(5), sat.PosLit(6)
	w.LogInput([]sat.Lit{u, v})
	w.LogInput([]sat.Lit{u.Not(), v})
	w.LogInput([]sat.Lit{x, y})
	w.LogInput([]sat.Lit{x.Not(), y})
	w.LogInput([]sat.Lit{x, y.Not()})
	w.LogInput([]sat.Lit{x.Not(), y.Not()})
	id := w.LogLearnt([]sat.Lit{v}) // derivable from the junk, used by nothing
	w.LogLearnt([]sat.Lit{y})
	w.LogDelete(id)
	w.EndUnsat(nil)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return &buf
}

func TestTrimDropsUnreachableRecords(t *testing.T) {
	buf := paddedPigeonProof(t)
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	trimmed, _, err := Trim(recs)
	if err != nil {
		t.Fatalf("Trim: %v", err)
	}
	if len(trimmed) >= len(recs) {
		t.Fatalf("trim kept %d of %d records", len(trimmed), len(recs))
	}
	for _, rec := range trimmed {
		switch {
		case rec.Kind == KindDelete:
			t.Fatal("trim kept a deletion of a dropped clause")
		case len(rec.Lits) > 0 && rec.Lits[0].Var() >= 5:
			t.Fatalf("trim kept junk record %+v", rec)
		}
	}
	// The trimmed stream must verify on its own.
	var out bytes.Buffer
	if err := WriteAll(&out, trimmed); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("trimmed stream rejected: %v", err)
	}
	if rep.UnsatChecks != 1 {
		t.Fatalf("trimmed stream covers %d unsat checks, want 1", rep.UnsatChecks)
	}
}

// TestTrimKeepsLoadBearingDefinitions: the gate provenance record supplies
// the clauses the final conflict propagates through, so it must survive; an
// unrelated second gate over fresh variables must not.
func TestTrimKeepsLoadBearingDefinitions(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	a, b, g := sat.PosLit(0), sat.PosLit(1), sat.PosLit(2)
	w.DefineGate(cnf.GateAnd, g.Var(), []sat.Lit{a, b})
	for _, cl := range cnf.GateClauses(nil, cnf.GateAnd, g, []sat.Lit{a, b}) {
		w.LogInput(cl)
	}
	// A second gate nothing depends on.
	h := sat.PosLit(5)
	w.DefineGate(cnf.GateOr, h.Var(), []sat.Lit{sat.PosLit(3), sat.PosLit(4)})
	for _, cl := range cnf.GateClauses(nil, cnf.GateOr, h, []sat.Lit{sat.PosLit(3), sat.PosLit(4)}) {
		w.LogInput(cl)
	}
	w.LogInput([]sat.Lit{g})
	w.LogInput([]sat.Lit{a.Not(), b.Not()})
	w.EndUnsat(nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	trimmed, _, err := Trim(recs)
	if err != nil {
		t.Fatalf("Trim: %v", err)
	}
	var gates []cnf.Gate
	for _, rec := range trimmed {
		if rec.Kind == KindGateDef {
			gates = append(gates, rec.Gate)
		}
	}
	if len(gates) != 1 || gates[0] != cnf.GateAnd {
		t.Fatalf("trim kept gate defs %v, want just the And gate", gates)
	}
	var out bytes.Buffer
	if err := WriteAll(&out, trimmed); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("trimmed stream rejected: %v", err)
	}
}

// TestTrimMultiSegment: every segment's answer must stay self-contained —
// restarts survive, and each kept segment re-verifies.
func TestTrimMultiSegment(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	x := sat.PosLit(0)
	w.LogInput([]sat.Lit{x})
	w.LogInput([]sat.Lit{sat.PosLit(3), sat.PosLit(4)}) // junk
	w.LogInput([]sat.Lit{x.Not()})
	w.EndUnsat(nil)
	w.Restart()
	y := sat.PosLit(1)
	w.LogInput([]sat.Lit{sat.PosLit(5), sat.PosLit(6)}) // junk
	w.LogInput([]sat.Lit{y})
	w.LogInput([]sat.Lit{y.Not()})
	w.EndUnsat(nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	trimmed, _, err := Trim(recs)
	if err != nil {
		t.Fatalf("Trim: %v", err)
	}
	if len(trimmed) != len(recs)-2 {
		t.Fatalf("trim kept %d of %d records, want both junk inputs dropped", len(trimmed), len(recs))
	}
	var out bytes.Buffer
	if err := WriteAll(&out, trimmed); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("trimmed stream rejected: %v", err)
	}
	if rep.UnsatChecks != 2 || rep.Restarts != 1 {
		t.Fatalf("unexpected report: %v", rep)
	}
}

func TestTrimFileRoundTrip(t *testing.T) {
	buf := paddedPigeonProof(t)
	path := filepath.Join(t.TempDir(), "cert.proof")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := TrimFile(path)
	if err != nil {
		t.Fatalf("TrimFile: %v", err)
	}
	if st.RecordsAfter >= st.RecordsBefore || st.BytesAfter >= st.BytesBefore {
		t.Fatalf("trim did not shrink the certificate: %+v", st)
	}
	if st.Ratio() <= 1 {
		t.Fatalf("Ratio() = %v, want > 1", st.Ratio())
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != st.BytesAfter {
		t.Fatalf("file is %d bytes, stats claim %d", info.Size(), st.BytesAfter)
	}
	if _, err := CheckFile(path); err != nil {
		t.Fatalf("trimmed file rejected: %v", err)
	}
	// Trimming is idempotent: a second pass finds nothing else to remove.
	st2, err := TrimFile(path)
	if err != nil {
		t.Fatalf("second TrimFile: %v", err)
	}
	if st2.RecordsAfter != st2.RecordsBefore {
		t.Fatalf("second trim removed %d records", st2.RecordsBefore-st2.RecordsAfter)
	}
}

func TestTrimToMatchesTrimFile(t *testing.T) {
	buf := paddedPigeonProof(t)
	var out bytes.Buffer
	st, err := TrimTo(&out, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("TrimTo: %v", err)
	}
	if int64(buf.Len()) != st.BytesBefore {
		t.Fatalf("before-size %d, stream is %d bytes", st.BytesBefore, buf.Len())
	}
	if int64(out.Len()) != st.BytesAfter {
		t.Fatalf("after-size %d, stream is %d bytes", st.BytesAfter, out.Len())
	}
	if _, err := Check(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("trimmed stream rejected: %v", err)
	}
}

// TestTrimRejectsInvalidStream: trimming verifies as it replays; a stream
// that does not check must not come back "trimmed".
func TestTrimRejectsInvalidStream(t *testing.T) {
	recs := []*Record{
		{Kind: KindInput, ID: 1, Lits: []sat.Lit{sat.PosLit(0)}},
		{Kind: KindUnsat, Check: 1},
	}
	if _, _, err := Trim(recs); err == nil {
		t.Fatal("Trim accepted an unjustified unsat check")
	}
}
