package proof

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// CreateAtomic starts a proof stream that becomes visible at path only on a
// successful Close: records are written to a hidden temporary file in the
// same directory and renamed into place after the final flush. A crashed or
// killed writer leaves at most a ".tmp"-suffixed orphan, never a half-written
// certificate at path — so a concurrent or later proofcheck can trust that
// every file it finds at a published name is complete. A sticky write error
// removes the temporary and surfaces from Close; nothing appears at path.
//
// Path reports the publication path throughout the writer's lifetime, even
// though the file only exists there after Close.
func CreateAtomic(path string) (*Writer, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("proof: %w", err)
	}
	pw := NewWriter(f)
	pw.f = f
	pw.path = path
	pw.tmp = f.Name()
	return pw, nil
}

// finalize publishes or discards an atomic writer's temporary file after the
// backing file has been flushed and closed; called from Close.
func (w *Writer) finalize() {
	if w.tmp == "" {
		return
	}
	tmp := w.tmp
	w.tmp = ""
	if w.err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, w.path); err != nil {
		w.err = fmt.Errorf("proof: publish certificate: %w", err)
		os.Remove(tmp)
	}
}

// uniqueSeq backs UniqueName's process-wide counter.
var uniqueSeq atomic.Uint64

// UniqueName returns prefix-<pid>-<seq>suffix, a certificate file name that
// is collision-safe across the goroutines of this process (the atomic
// sequence) and across processes sharing a directory (the pid). Services use
// it to give every request or session its own certificate path.
func UniqueName(prefix, suffix string) string {
	return fmt.Sprintf("%s%d-%d%s", prefix, os.Getpid(), uniqueSeq.Add(1), suffix)
}
