package proof

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"segrid/internal/numeric"
	"segrid/internal/sat"
)

// Writer streams proof records as the solver runs. It implements the
// sat.ProofLogger hook for the clausal records and exposes the theory-side
// definitions to the SMT encoder. One Writer captures the lifetime of one
// solver: under FreshPerCheck every rebuilt encoder contributes its own
// Restart-delimited segment to the same stream.
//
// Write errors are sticky: the first one is remembered, later calls become
// no-ops, and the error surfaces from Flush/Close/Err. Solving is never
// aborted by a failing proof sink.
type Writer struct {
	w    *bufio.Writer
	f    *os.File
	path string
	err  error

	nextID uint64
	checks uint64

	// staged Farkas coefficients for the next theory lemma: the SMT theory
	// adapter stages them when the simplex reports a conflict, immediately
	// before the SAT core logs the lemma clause built from that conflict.
	staged []numeric.Q

	enc encoder
}

var _ sat.ProofLogger = (*Writer)(nil)

// NewWriter starts a proof stream on w.
func NewWriter(w io.Writer) *Writer {
	pw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	_, pw.err = pw.w.WriteString(magic)
	return pw
}

// Create starts a proof stream in a new file at path (truncating any
// previous content).
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("proof: %w", err)
	}
	pw := NewWriter(f)
	pw.f = f
	pw.path = path
	return pw, nil
}

// Path returns the file path backing the stream, or "" for an in-memory
// writer.
func (w *Writer) Path() string { return w.path }

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) emit(rec *Record) {
	if w.err != nil {
		return
	}
	w.enc.buf = w.enc.buf[:0]
	w.enc.record(rec)
	_, w.err = w.w.Write(w.enc.buf)
}

// Restart marks the start of a fresh solver instance.
func (w *Writer) Restart() {
	w.emit(&Record{Kind: KindRestart})
}

// DefineSlack records simplex variable v as the linear combination terms of
// earlier simplex variables.
func (w *Writer) DefineSlack(v int, terms []Term) {
	w.emit(&Record{Kind: KindSlackDef, Var: v, Terms: terms})
}

// DefineAtom records the theory meaning of SAT variable v: the positive
// literal asserts slack ≤ pos, the negative literal slack ≥ neg.
func (w *Writer) DefineAtom(v int, slack int, pos, neg numeric.Delta) {
	w.emit(&Record{Kind: KindAtomDef, Var: v, Slack: slack, Pos: pos, Neg: neg})
}

// StageFarkas supplies the Farkas coefficients justifying the next theory
// lemma; the slice is copied.
func (w *Writer) StageFarkas(coeffs []numeric.Q) {
	w.staged = append(w.staged[:0], coeffs...)
}

// LogInput records a problem clause exactly as handed to AddClause.
func (w *Writer) LogInput(lits []sat.Lit) {
	w.nextID++
	w.emit(&Record{Kind: KindInput, ID: w.nextID, Lits: lits})
}

// LogLearnt records a learnt clause and returns its id for later deletion.
func (w *Writer) LogLearnt(lits []sat.Lit) uint64 {
	w.nextID++
	w.emit(&Record{Kind: KindDerived, ID: w.nextID, Lits: lits})
	return w.nextID
}

// LogTheoryLemma records a theory-conflict clause together with the staged
// Farkas coefficients and returns its id. When no coefficients were staged
// (or the count mismatches), the lemma is written without a certificate and
// the checker will reject the proof — a missing justification must never
// pass silently.
func (w *Writer) LogTheoryLemma(lits []sat.Lit) uint64 {
	w.nextID++
	rec := &Record{Kind: KindTheoryLemma, ID: w.nextID, Lits: lits}
	if len(w.staged) == len(lits) {
		rec.Coeffs = append([]numeric.Q(nil), w.staged...)
	} else {
		rec.Coeffs = make([]numeric.Q, len(lits)) // zero coefficients: invalid
	}
	w.staged = w.staged[:0]
	w.emit(rec)
	return w.nextID
}

// LogDelete records the removal of a clause from the active set.
func (w *Writer) LogDelete(id uint64) {
	w.emit(&Record{Kind: KindDelete, ID: id})
}

// EndUnsat closes one UNSAT answer: the active clauses plus the given
// assumption literals (the live scope selectors; empty for an absolute
// UNSAT) are contradictory by unit propagation. It returns the 1-based
// index of this check within the stream.
func (w *Writer) EndUnsat(assumps []sat.Lit) uint64 {
	w.checks++
	w.emit(&Record{Kind: KindUnsat, Check: w.checks, Lits: append([]sat.Lit(nil), assumps...)})
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.checks
}

// Checks returns how many UNSAT answers have been certified so far.
func (w *Writer) Checks() uint64 { return w.checks }

// Flush forces buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.err
}

// Close flushes the stream and closes the backing file, if any. It returns
// the first error seen over the writer's lifetime.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if w.f != nil {
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = err
		}
		w.f = nil
	}
	return w.err
}

// Handle points a Result at its certificate: the proof stream (by path when
// file-backed) and the 1-based Unsat check index within it.
type Handle struct {
	// Path is the proof file, or "" when the stream is not file-backed.
	Path string
	// Check is the 1-based index of the Unsat record certifying this
	// answer.
	Check uint64
}
