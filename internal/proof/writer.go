package proof

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"

	"segrid/internal/cnf"
	"segrid/internal/numeric"
	"segrid/internal/sat"
)

// Writer streams proof records as the solver runs. It implements the
// sat.ProofLogger hook for the clausal records and exposes the theory-side
// definitions to the SMT encoder. One Writer captures the lifetime of one
// solver: under FreshPerCheck every rebuilt encoder contributes its own
// Restart-delimited segment to the same stream.
//
// Write errors are sticky: the first one is remembered, later calls become
// no-ops, and the error surfaces from Flush/Close/Err. Solving is never
// aborted by a failing proof sink.
type Writer struct {
	w    *bufio.Writer
	f    *os.File
	path string
	tmp  string // non-empty for CreateAtomic writers: the staging file
	err  error

	nextID uint64
	checks uint64

	// staged Farkas coefficients for the next theory lemma: the SMT theory
	// adapter stages them when the simplex reports a conflict, immediately
	// before the SAT core logs the lemma clause built from that conflict.
	staged []numeric.Q

	// pending are the kernel-derived definitional clauses a DefineGate or
	// DefineCard call promised; the next LogInput calls must match them in
	// order. Matching clauses are swallowed (the provenance record already
	// claims their ids, and the checker re-derives them); a divergent clause
	// is an encoder bug and poisons the stream — see LogInput.
	pending    [][]sat.Lit
	pendingOff int
	defClauses uint64
	mismatches uint64

	// arena backs the kernel derivations staged in pending, so matching the
	// encoder's clauses costs no per-clause allocation. Its views die on the
	// next derivation, which is safe exactly when pending has drained — the
	// normal flow, since the encoder adds every definitional clause right
	// after its Define call. Define calls arriving with clauses still pending
	// (an encoder bug, about to be flagged) fall back to allocating. The
	// arena is pooled across Writers (fetched lazily, returned on Close):
	// synthesis sweeps run one Writer per solve, and re-growing the buffers
	// to circuit size every solve is measurable GC load on small scenarios.
	arena *cnf.Arena

	enc encoder
}

var _ sat.ProofLogger = (*Writer)(nil)

// NewWriter starts a proof stream on w. The buffer is sized for the common
// certificate: a few records' slack above the kilobytes the fig4a-scale
// scenarios emit — a per-solve Writer with a much larger buffer shows up as
// allocation overhead on sub-millisecond workloads.
func NewWriter(w io.Writer) *Writer {
	pw := &Writer{w: bufio.NewWriterSize(w, 1<<14)}
	_, pw.err = pw.w.WriteString(magic)
	return pw
}

// Create starts a proof stream in a new file at path (truncating any
// previous content).
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("proof: %w", err)
	}
	pw := NewWriter(f)
	pw.f = f
	pw.path = path
	return pw, nil
}

// Path returns the file path backing the stream, or "" for an in-memory
// writer.
func (w *Writer) Path() string { return w.path }

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) emit(rec *Record) {
	if w.err != nil {
		return
	}
	w.enc.buf = w.enc.buf[:0]
	w.enc.record(rec)
	_, w.err = w.w.Write(w.enc.buf)
}

// Restart marks the start of a fresh solver instance.
func (w *Writer) Restart() {
	w.flushPending()
	w.emit(&Record{Kind: KindRestart})
}

// flushPending handles definitional clauses that were promised but never
// added: the id range the provenance record claimed is partly unused, so the
// stream is poisoned with a sticky error (and would also fail checking — a
// later clause would collide with a claimed id). The encoder adds every
// kernel clause immediately after its Define call, so this fires only on an
// encoder bug.
func (w *Writer) flushPending() {
	if w.pendingOff < len(w.pending) {
		w.mismatches += uint64(len(w.pending) - w.pendingOff)
		if w.err == nil {
			w.err = fmt.Errorf("proof: encoder added %d fewer clauses than its definitional records promised", len(w.pending)-w.pendingOff)
		}
	}
	w.pending = w.pending[:0]
	w.pendingOff = 0
}

// arenaPool recycles derivation arenas across Writers; see Writer.arena.
var arenaPool = sync.Pool{New: func() any { return new(cnf.Arena) }}

// kernelArena returns the Writer's derivation arena, fetching one from the
// pool on first use.
func (w *Writer) kernelArena() *cnf.Arena {
	if w.arena == nil {
		w.arena = arenaPool.Get().(*cnf.Arena)
	}
	return w.arena
}

// expect stages kernel-derived clauses for comparison against the encoder's
// upcoming AddClause calls. In the normal drained case pending aliases the
// derivation's view slice outright (clipped, so a later append cannot write
// through into it) — copying tens of thousands of clause headers per large
// cardinality circuit showed up as GC pressure in the proof-overhead column.
func (w *Writer) expect(clauses [][]sat.Lit) {
	clauses = clauses[:len(clauses):len(clauses)]
	if w.pendingOff == len(w.pending) {
		w.pending = clauses
		w.pendingOff = 0
		return
	}
	w.pending = append(w.pending, clauses...)
}

// DefineGate records the provenance of a Tseitin gate: out is the fresh
// output variable of shape gate over the input literals. The definitional
// clauses the cnf kernel derives are claimed (ids allocated, nothing
// serialized) and must be the next clauses handed to LogInput.
func (w *Writer) DefineGate(gate cnf.Gate, out sat.Var, inputs []sat.Lit) {
	w.emit(&Record{Kind: KindGateDef, ID: w.nextID + 1, Gate: gate, Var: int(out), Lits: inputs})
	if w.pendingOff == len(w.pending) {
		w.expect(w.kernelArena().GateClauses(gate, sat.PosLit(out), inputs))
	} else {
		w.expect(cnf.GateClauses(nil, gate, sat.PosLit(out), inputs))
	}
}

// DefineCard records the provenance of a cardinality circuit Σ lits ≤ k
// under enc, with firstFresh the first of its consecutive register variables
// and guard the scope guard (sat.LitUndef when unguarded). Bounds that emit
// no clauses (k ≥ len(lits)) are not recorded, mirroring the encoder.
func (w *Writer) DefineCard(enc cnf.CardEncoding, lits []sat.Lit, k int, firstFresh sat.Var, guard sat.Lit) {
	var clauses [][]sat.Lit
	if w.pendingOff == len(w.pending) {
		clauses = w.kernelArena().AtMostK(lits, k, enc, firstFresh, guard)
	} else {
		clauses = cnf.AtMostK(nil, lits, k, enc, firstFresh, guard)
	}
	if len(clauses) == 0 {
		return
	}
	w.emit(&Record{Kind: KindCardDef, ID: w.nextID + 1, Enc: enc, K: k, Var: int(firstFresh), Guard: guard, Lits: lits})
	w.expect(clauses)
}

// DefineSlack records simplex variable v as the linear combination terms of
// earlier simplex variables.
func (w *Writer) DefineSlack(v int, terms []Term) {
	w.emit(&Record{Kind: KindSlackDef, Var: v, Terms: terms})
}

// DefineAtom records the theory meaning of SAT variable v: the positive
// literal asserts slack ≤ pos, the negative literal slack ≥ neg.
func (w *Writer) DefineAtom(v int, slack int, pos, neg numeric.Delta) {
	w.emit(&Record{Kind: KindAtomDef, Var: v, Slack: slack, Pos: pos, Neg: neg})
}

// StageFarkas supplies the Farkas coefficients justifying the next theory
// lemma; the slice is copied.
func (w *Writer) StageFarkas(coeffs []numeric.Q) {
	w.staged = append(w.staged[:0], coeffs...)
}

// LogInput records a problem clause exactly as handed to AddClause. While
// definitional clauses from a DefineGate/DefineCard call are pending, the
// clause is compared against the kernel derivation instead: a match is
// swallowed (its id was claimed by the provenance record; the checker
// re-derives the clause), a mismatch is an encoder bug and is logged as a
// KindDerived record — a definitional clause over a fresh variable is never
// RUP, so the checker rejects the stream loudly rather than trusting a
// clause the kernel cannot reproduce.
func (w *Writer) LogInput(lits []sat.Lit) {
	w.nextID++
	if w.pendingOff < len(w.pending) {
		want := w.pending[w.pendingOff]
		w.pendingOff++
		if litsEqual(lits, want) {
			w.defClauses++
			return
		}
		w.mismatches++
		w.emit(&Record{Kind: KindDerived, ID: w.nextID, Lits: lits})
		return
	}
	w.emit(&Record{Kind: KindInput, ID: w.nextID, Lits: lits})
}

func litsEqual(a, b []sat.Lit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DefClauses returns how many definitional clauses were matched against the
// kernel and swallowed from the stream.
func (w *Writer) DefClauses() uint64 { return w.defClauses }

// DefMismatches returns how many clauses diverged from their kernel
// derivation (or were promised and never added). Nonzero means an encoder
// bug; the stream is poisoned so checking fails rather than silently
// trusting the divergent clauses.
func (w *Writer) DefMismatches() uint64 { return w.mismatches }

// LogLearnt records a learnt clause and returns its id for later deletion.
func (w *Writer) LogLearnt(lits []sat.Lit) uint64 {
	w.nextID++
	w.emit(&Record{Kind: KindDerived, ID: w.nextID, Lits: lits})
	return w.nextID
}

// LogTheoryLemma records a theory-conflict clause together with the staged
// Farkas coefficients and returns its id. When no coefficients were staged
// (or the count mismatches), the lemma is written without a certificate and
// the checker will reject the proof — a missing justification must never
// pass silently.
func (w *Writer) LogTheoryLemma(lits []sat.Lit) uint64 {
	w.nextID++
	rec := &Record{Kind: KindTheoryLemma, ID: w.nextID, Lits: lits}
	if len(w.staged) == len(lits) {
		rec.Coeffs = append([]numeric.Q(nil), w.staged...)
	} else {
		rec.Coeffs = make([]numeric.Q, len(lits)) // zero coefficients: invalid
	}
	w.staged = w.staged[:0]
	w.emit(rec)
	return w.nextID
}

// LogDelete records the removal of a clause from the active set.
func (w *Writer) LogDelete(id uint64) {
	w.emit(&Record{Kind: KindDelete, ID: id})
}

// EndUnsat closes one UNSAT answer: the active clauses plus the given
// assumption literals (the live scope selectors; empty for an absolute
// UNSAT) are contradictory by unit propagation. It returns the 1-based
// index of this check within the stream.
func (w *Writer) EndUnsat(assumps []sat.Lit) uint64 {
	w.flushPending()
	w.checks++
	w.emit(&Record{Kind: KindUnsat, Check: w.checks, Lits: append([]sat.Lit(nil), assumps...)})
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.checks
}

// Checks returns how many UNSAT answers have been certified so far.
func (w *Writer) Checks() uint64 { return w.checks }

// Flush forces buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.err
}

// Close flushes the stream and closes the backing file, if any. It returns
// the first error seen over the writer's lifetime.
func (w *Writer) Close() error {
	w.flushPending()
	if w.arena != nil {
		// pending aliases the arena's view slice; drop it before the arena
		// can be handed to another Writer.
		w.pending = nil
		w.pendingOff = 0
		arenaPool.Put(w.arena)
		w.arena = nil
	}
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if w.f != nil {
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = err
		}
		w.f = nil
	}
	w.finalize()
	return w.err
}

// Handle points a Result at its certificate: the proof stream (by path when
// file-backed) and the 1-based Unsat check index within it.
type Handle struct {
	// Path is the proof file, or "" when the stream is not file-backed.
	Path string
	// Check is the 1-based index of the Unsat record certifying this
	// answer.
	Check uint64
}
