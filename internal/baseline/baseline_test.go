package baseline

import (
	"math"
	"testing"

	"segrid/internal/dcflow"
	"segrid/internal/grid"
	"segrid/internal/se"
)

func TestAlgebraicAttackIsStealthy(t *testing.T) {
	sys := grid.IEEE14()
	meas := grid.NewMeasurementConfig(sys)
	est, err := se.NewEstimator(meas, se.Config{RefBus: 1, Sigma: 0.01})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	det, err := se.NewDetector(est, 0.05)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	angles := make([]float64, sys.Buses+1)
	for j := 2; j <= sys.Buses; j++ {
		angles[j] = 0.01 * float64(j)
	}
	z, err := dcflow.MeasureAll(sys, nil, angles)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	c := make([]float64, sys.Buses+1)
	c[9] = 0.2
	c[10] = 0.2
	a, err := AlgebraicAttack(sys, nil, c)
	if err != nil {
		t.Fatalf("AlgebraicAttack: %v", err)
	}
	for id := 1; id < len(z); id++ {
		z[id] += a[id]
	}
	sol, err := est.Estimate(z)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if det.BadDataDetected(sol) {
		t.Fatalf("algebraic attack detected, J=%v", sol.J)
	}
	if math.Abs(sol.Angles[9]-angles[9]-0.2) > 1e-7 {
		t.Fatalf("state 9 not corrupted by attack")
	}
}

func TestProtectsAllStates(t *testing.T) {
	sys := grid.IEEE14()
	// Nothing secured: not protected.
	meas := grid.NewMeasurementConfig(sys)
	ok, err := ProtectsAllStates(meas, 1)
	if err != nil {
		t.Fatalf("ProtectsAllStates: %v", err)
	}
	if ok {
		t.Fatalf("unprotected grid reported protected")
	}
	// Secure all forward flows: spans the network (spanning tree ⊂ lines).
	for i := 1; i <= sys.NumLines(); i++ {
		if err := meas.Secure(i); err != nil {
			t.Fatalf("Secure: %v", err)
		}
	}
	ok, err = ProtectsAllStates(meas, 1)
	if err != nil {
		t.Fatalf("ProtectsAllStates: %v", err)
	}
	if !ok {
		t.Fatalf("all line flows secured but not protected")
	}
	if _, err := ProtectsAllStates(meas, 0); err == nil {
		t.Fatalf("bad ref bus accepted")
	}
}

func TestSecuredButUntakenDoesNotProtect(t *testing.T) {
	sys := grid.IEEE14()
	meas := grid.NewMeasurementConfig(sys)
	for i := 1; i <= sys.NumLines(); i++ {
		if err := meas.Secure(i); err != nil {
			t.Fatalf("Secure: %v", err)
		}
	}
	// Untake them all: securing measurements the estimator never reads is
	// worthless.
	ids := make([]int, sys.NumLines())
	for i := range ids {
		ids[i] = i + 1
	}
	if err := meas.Untake(ids...); err != nil {
		t.Fatalf("Untake: %v", err)
	}
	ok, err := ProtectsAllStates(meas, 1)
	if err != nil {
		t.Fatalf("ProtectsAllStates: %v", err)
	}
	if ok {
		t.Fatalf("untaken secured measurements reported protective")
	}
}

func TestGreedyMeasurementProtection(t *testing.T) {
	for _, name := range []string{"ieee14", "ieee30", "ieee57"} {
		sys, err := grid.Case(name)
		if err != nil {
			t.Fatalf("Case: %v", err)
		}
		meas := grid.NewMeasurementConfig(sys)
		ids, err := GreedyMeasurementProtection(meas, 1)
		if err != nil {
			t.Fatalf("%s: GreedyMeasurementProtection: %v", name, err)
		}
		// A basic measurement set has exactly b−1 members.
		if len(ids) != sys.Buses-1 {
			t.Fatalf("%s: selected %d measurements, want %d", name, len(ids), sys.Buses-1)
		}
		for _, id := range ids {
			if err := meas.Secure(id); err != nil {
				t.Fatalf("Secure: %v", err)
			}
		}
		ok, err := ProtectsAllStates(meas, 1)
		if err != nil {
			t.Fatalf("ProtectsAllStates: %v", err)
		}
		if !ok {
			t.Fatalf("%s: greedy selection does not protect", name)
		}
	}
}

func TestGreedyMeasurementProtectionUnobservable(t *testing.T) {
	sys := grid.IEEE14()
	meas := grid.NewMeasurementConfig(sys)
	// Untake everything but one measurement.
	ids := meas.TakenIDs()
	if err := meas.Untake(ids[1:]...); err != nil {
		t.Fatalf("Untake: %v", err)
	}
	if _, err := GreedyMeasurementProtection(meas, 1); err == nil {
		t.Fatalf("unobservable set accepted")
	}
}

func TestGreedyBusProtection(t *testing.T) {
	sys := grid.IEEE14()
	meas := grid.NewMeasurementConfig(sys)
	buses, err := GreedyBusProtection(meas, 1, 0)
	if err != nil {
		t.Fatalf("GreedyBusProtection: %v", err)
	}
	if len(buses) == 0 || len(buses) > sys.Buses {
		t.Fatalf("selected %d buses", len(buses))
	}
	for _, j := range buses {
		if err := meas.SecureBus(j); err != nil {
			t.Fatalf("SecureBus: %v", err)
		}
	}
	ok, err := ProtectsAllStates(meas, 1)
	if err != nil {
		t.Fatalf("ProtectsAllStates: %v", err)
	}
	if !ok {
		t.Fatalf("greedy bus selection %v does not protect", buses)
	}
}

func TestGreedyBusProtectionBudget(t *testing.T) {
	sys := grid.IEEE14()
	meas := grid.NewMeasurementConfig(sys)
	if _, err := GreedyBusProtection(meas, 1, 1); err == nil {
		t.Fatalf("1-bus budget unexpectedly sufficient")
	}
	if _, err := GreedyBusProtection(meas, 99, 0); err == nil {
		t.Fatalf("bad ref bus accepted")
	}
}
