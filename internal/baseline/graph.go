package baseline

import (
	"errors"
	"fmt"

	"segrid/internal/grid"
)

// GraphProtectsAllStates implements the graphical sufficient condition of
// Bi & Zhang: if the lines carrying a secured (and taken) flow measurement —
// forward or backward — connect every bus, then the secured rows contain a
// spanning tree of the reduced incidence matrix and therefore span all b−1
// states; no UFDI attack can corrupt any state. The check is a single
// union-find pass over the lines, O(l·α(b)), against the O(m·b²) Gaussian
// elimination behind ProtectsAllStates.
//
// The condition is sufficient, not necessary: a true answer guarantees
// protection, while false says nothing — secured injection measurements can
// complete the span even when the secured flow graph is disconnected.
func GraphProtectsAllStates(meas *grid.MeasurementConfig) bool {
	sys := meas.System()
	uf := newUnionFind(sys.Buses)
	components := sys.Buses
	for _, ln := range sys.Lines {
		fwd := sys.ForwardFlowMeas(ln.ID)
		bwd := sys.BackwardFlowMeas(ln.ID)
		secured := (meas.Taken[fwd] && meas.Secured[fwd]) ||
			(meas.Taken[bwd] && meas.Secured[bwd])
		if !secured {
			continue
		}
		if uf.union(ln.From, ln.To) {
			components--
			if components == 1 {
				return true
			}
		}
	}
	return components == 1
}

// TreeDefense constructs the minimal graphical defense: the forward-flow
// measurement IDs of a spanning tree of the network, exactly b−1 meters.
// Securing them (when taken) satisfies GraphProtectsAllStates and hence
// defends every state — the cheapest certificate the graphical condition
// can issue. An error is returned when the network is disconnected, in
// which case no measurement set defends all states.
func TreeDefense(sys *grid.System) ([]int, error) {
	uf := newUnionFind(sys.Buses)
	ids := make([]int, 0, sys.Buses-1)
	for _, ln := range sys.Lines {
		if uf.union(ln.From, ln.To) {
			ids = append(ids, sys.ForwardFlowMeas(ln.ID))
			if len(ids) == sys.Buses-1 {
				return ids, nil
			}
		}
	}
	return nil, errors.New("baseline: network is disconnected; no spanning tree exists")
}

// unionFind is a plain disjoint-set forest over 1-based bus IDs with path
// halving and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n+1), size: make([]int, n+1)}
	for i := 1; i <= n; i++ {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether they were distinct.
func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	return true
}

// validRefBus factors the shared argument check of the rank-based entry
// points.
func validRefBus(sys *grid.System, refBus int) error {
	if refBus < 1 || refBus > sys.Buses {
		return fmt.Errorf("baseline: reference bus %d out of range 1..%d", refBus, sys.Buses)
	}
	return nil
}
