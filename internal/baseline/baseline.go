// Package baseline implements the comparison approaches the paper is
// positioned against: the classical algebraic attack construction a = H·c
// of Liu et al. [2], the observability-based protection condition of Bobba
// et al. [6] ("securing a basic measurement set defends all states"), and a
// greedy protection-selection heuristic in the spirit of Kim & Poor [7].
// They serve both as baselines for the benchmarks and as independent
// cross-checks of the SMT-based verification and synthesis results.
package baseline

import (
	"errors"
	"fmt"

	"segrid/internal/dcflow"
	"segrid/internal/grid"
	"segrid/internal/matrix"
)

// rankTol is the pivot tolerance for numerical rank decisions.
const rankTol = 1e-8

// AlgebraicAttack computes the classical false data injection vector
// a = H·c for a state change c (1-based per bus; the reference bus entry
// must be 0). The result is the 1-based full measurement delta vector. By
// construction the attack is stealthy against any WLS estimator using the
// same topology.
func AlgebraicAttack(sys *grid.System, mapped []bool, c []float64) ([]float64, error) {
	return dcflow.MeasureAll(sys, mapped, c)
}

// securedRows extracts the reference-reduced Jacobian rows of secured,
// taken measurements.
func securedRows(meas *grid.MeasurementConfig, refBus int, secured []bool) (*matrix.Dense, error) {
	sys := meas.System()
	full := dcflow.BuildH(sys, nil)
	ids := make([]int, 0, sys.NumMeasurements())
	for id := 1; id <= sys.NumMeasurements(); id++ {
		if meas.Taken[id] && secured[id] {
			ids = append(ids, id)
		}
	}
	out := matrix.NewDense(len(ids), sys.Buses-1)
	for r, id := range ids {
		col := 0
		for j := 1; j <= sys.Buses; j++ {
			if j == refBus {
				continue
			}
			out.Set(r, col, full.At(id-1, j-1))
			col++
		}
	}
	return out, nil
}

// ProtectsAllStates implements Bobba et al.'s condition: the secured (and
// taken) measurements defend state estimation against every UFDI attack iff
// their Jacobian rows have full column rank b−1 — then no nonzero state
// change can avoid touching a protected measurement.
//
// The graphical sufficient condition (GraphProtectsAllStates) is tried
// first: when the secured flow measurements already connect every bus the
// answer is yes without building or eliminating the Jacobian. Only sets the
// graph test cannot certify fall through to the rank computation.
func ProtectsAllStates(meas *grid.MeasurementConfig, refBus int) (bool, error) {
	sys := meas.System()
	if err := validRefBus(sys, refBus); err != nil {
		return false, err
	}
	if GraphProtectsAllStates(meas) {
		return true, nil
	}
	rows, err := securedRows(meas, refBus, meas.Secured)
	if err != nil {
		return false, err
	}
	return rows.Rank(rankTol) == sys.Buses-1, nil
}

// GreedyMeasurementProtection selects taken measurements to secure, one at
// a time, each step choosing the lowest-ID measurement that increases the
// rank of the secured row space, until the secured rows span all states
// (Kim & Poor's greedy selection specialized to the DC model). It returns
// the selected measurement IDs.
func GreedyMeasurementProtection(meas *grid.MeasurementConfig, refBus int) ([]int, error) {
	sys := meas.System()
	if err := validRefBus(sys, refBus); err != nil {
		return nil, err
	}
	full := dcflow.BuildH(sys, nil)
	n := sys.Buses - 1
	rowsData := make([][]float64, 0, n)
	var selected []int
	rank := 0
	for id := 1; id <= sys.NumMeasurements() && rank < n; id++ {
		if !meas.Taken[id] {
			continue
		}
		row := make([]float64, n)
		col := 0
		for j := 1; j <= sys.Buses; j++ {
			if j == refBus {
				continue
			}
			row[col] = full.At(id-1, j-1)
			col++
		}
		candidate := append(rowsData[:len(rowsData):len(rowsData)], row)
		cm, err := matrix.FromRows(candidate)
		if err != nil {
			return nil, err
		}
		if r := cm.Rank(rankTol); r > rank {
			rank = r
			rowsData = candidate
			selected = append(selected, id)
		}
	}
	if rank < n {
		return nil, errors.New("baseline: taken measurements cannot span the state space")
	}
	return selected, nil
}

// GreedyBusProtection selects buses to secure: each step adds the bus whose
// measurements increase the secured row rank the most (ties to the lowest
// bus ID), until all states are defended. It is the bus-granular analogue
// the paper's synthesis is compared against and returns the selected buses.
func GreedyBusProtection(meas *grid.MeasurementConfig, refBus int, maxBuses int) ([]int, error) {
	sys := meas.System()
	if err := validRefBus(sys, refBus); err != nil {
		return nil, err
	}
	full := dcflow.BuildH(sys, nil)
	n := sys.Buses - 1
	rowOf := func(id int) []float64 {
		row := make([]float64, n)
		col := 0
		for j := 1; j <= sys.Buses; j++ {
			if j == refBus {
				continue
			}
			row[col] = full.At(id-1, j-1)
			col++
		}
		return row
	}
	var chosen []int
	chosenSet := make(map[int]bool)
	var rowsData [][]float64
	rank := 0
	for rank < n {
		if maxBuses > 0 && len(chosen) >= maxBuses {
			return nil, fmt.Errorf("baseline: greedy needs more than %d buses", maxBuses)
		}
		bestBus, bestRank := -1, rank
		for j := 1; j <= sys.Buses; j++ {
			if chosenSet[j] {
				continue
			}
			candidate := rowsData[:len(rowsData):len(rowsData)]
			for _, id := range sys.MeasAtBus(j) {
				if meas.Taken[id] {
					candidate = append(candidate, rowOf(id))
				}
			}
			cm, err := matrix.FromRows(candidate)
			if err != nil {
				return nil, err
			}
			if r := cm.Rank(rankTol); r > bestRank {
				bestRank, bestBus = r, j
			}
		}
		if bestBus < 0 {
			return nil, errors.New("baseline: no bus increases coverage; states unprotectable")
		}
		chosen = append(chosen, bestBus)
		chosenSet[bestBus] = true
		for _, id := range sys.MeasAtBus(bestBus) {
			if meas.Taken[id] {
				rowsData = append(rowsData, rowOf(id))
			}
		}
		rank = bestRank
	}
	return chosen, nil
}
