package baseline

import (
	"math/rand"
	"testing"

	"segrid/internal/grid"
)

// rankProtects is the rank-based ground truth with no graphical fast path:
// the secured rows span the state space iff their rank is b−1.
func rankProtects(t *testing.T, meas *grid.MeasurementConfig, refBus int) bool {
	t.Helper()
	rows, err := securedRows(meas, refBus, meas.Secured)
	if err != nil {
		t.Fatalf("securedRows: %v", err)
	}
	return rows.Rank(rankTol) == meas.System().Buses-1
}

// TestTreeDefense: the spanning-tree constructor yields exactly b−1 forward
// flows on each benchmark case, and securing them passes the graphical
// check, the rank ground truth, and the public entry point alike.
func TestTreeDefense(t *testing.T) {
	for _, name := range []string{"ieee14", "ieee30", "ieee57"} {
		sys, err := grid.Case(name)
		if err != nil {
			t.Fatalf("Case: %v", err)
		}
		ids, err := TreeDefense(sys)
		if err != nil {
			t.Fatalf("%s: TreeDefense: %v", name, err)
		}
		if len(ids) != sys.Buses-1 {
			t.Fatalf("%s: %d meters, want %d", name, len(ids), sys.Buses-1)
		}
		for _, id := range ids {
			kind, _, err := sys.DecodeMeas(id)
			if err != nil {
				t.Fatalf("%s: DecodeMeas(%d): %v", name, id, err)
			}
			if kind != grid.MeasForwardFlow {
				t.Fatalf("%s: meter %d is not a forward flow", name, id)
			}
		}
		meas := grid.NewMeasurementConfig(sys)
		if err := meas.Secure(ids...); err != nil {
			t.Fatalf("Secure: %v", err)
		}
		if !GraphProtectsAllStates(meas) {
			t.Fatalf("%s: tree defense fails the graphical condition", name)
		}
		if !rankProtects(t, meas, 1) {
			t.Fatalf("%s: tree defense fails the rank condition", name)
		}
		ok, err := ProtectsAllStates(meas, 1)
		if err != nil {
			t.Fatalf("ProtectsAllStates: %v", err)
		}
		if !ok {
			t.Fatalf("%s: tree defense rejected by ProtectsAllStates", name)
		}
	}
}

// TestGraphConditionSufficientNotNecessary: securing every injection
// measurement spans the state space (the reduced weighted Laplacian has
// rank b−1) while the secured flow graph is empty — the graphical test must
// answer false, and ProtectsAllStates must still say yes via the rank path.
func TestGraphConditionSufficientNotNecessary(t *testing.T) {
	sys := grid.IEEE14()
	meas := grid.NewMeasurementConfig(sys)
	for j := 1; j <= sys.Buses; j++ {
		if err := meas.Secure(sys.InjectionMeas(j)); err != nil {
			t.Fatalf("Secure: %v", err)
		}
	}
	if GraphProtectsAllStates(meas) {
		t.Fatalf("injection-only defense passed the flow-graph condition")
	}
	ok, err := ProtectsAllStates(meas, 1)
	if err != nil {
		t.Fatalf("ProtectsAllStates: %v", err)
	}
	if !ok {
		t.Fatalf("injection-only defense rejected by the rank condition")
	}
}

// TestGraphUntakenFlowsIgnored: a secured meter the estimator does not read
// contributes nothing; dropping one tree edge must disconnect the check.
func TestGraphUntakenFlowsIgnored(t *testing.T) {
	sys := grid.IEEE14()
	ids, err := TreeDefense(sys)
	if err != nil {
		t.Fatalf("TreeDefense: %v", err)
	}
	meas := grid.NewMeasurementConfig(sys)
	if err := meas.Secure(ids...); err != nil {
		t.Fatalf("Secure: %v", err)
	}
	if err := meas.Untake(ids[0]); err != nil {
		t.Fatalf("Untake: %v", err)
	}
	if GraphProtectsAllStates(meas) {
		t.Fatalf("untaken tree edge still counted as connecting")
	}
}

// TestGraphBackwardFlowsConnect: the condition accepts either flow
// direction — replacing every tree meter with its backward twin must still
// connect the graph.
func TestGraphBackwardFlowsConnect(t *testing.T) {
	sys := grid.IEEE14()
	ids, err := TreeDefense(sys)
	if err != nil {
		t.Fatalf("TreeDefense: %v", err)
	}
	meas := grid.NewMeasurementConfig(sys)
	for _, id := range ids {
		if err := meas.Secure(sys.BackwardFlowMeas(id)); err != nil {
			t.Fatalf("Secure: %v", err)
		}
	}
	if !GraphProtectsAllStates(meas) {
		t.Fatalf("backward-flow tree defense fails the graphical condition")
	}
}

// TestTreeDefenseDisconnected: a network whose lines do not span the buses
// has no spanning tree, and no secured set can pass the graphical check.
func TestTreeDefenseDisconnected(t *testing.T) {
	sys, err := grid.NewSystem("split", 4, []grid.Line{
		{ID: 1, From: 1, To: 2, Admittance: 1},
		{ID: 2, From: 3, To: 4, Admittance: 1},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if _, err := TreeDefense(sys); err == nil {
		t.Fatalf("disconnected network yielded a spanning tree")
	}
	meas := grid.NewMeasurementConfig(sys)
	ids := make([]int, sys.NumMeasurements())
	for i := range ids {
		ids[i] = i + 1
	}
	if err := meas.Secure(ids...); err != nil {
		t.Fatalf("Secure: %v", err)
	}
	if GraphProtectsAllStates(meas) {
		t.Fatalf("disconnected network passed the graphical condition")
	}
}

// TestGraphDifferentialRank samples random secured subsets on the three
// benchmark cases and checks both halves of the contract: the graphical
// condition never contradicts the rank ground truth (sufficiency), and the
// fast-pathed ProtectsAllStates always agrees with the rank-only answer.
func TestGraphDifferentialRank(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, name := range []string{"ieee14", "ieee30", "ieee57"} {
		sys, err := grid.Case(name)
		if err != nil {
			t.Fatalf("Case: %v", err)
		}
		for trial := 0; trial < 40; trial++ {
			meas := grid.NewMeasurementConfig(sys)
			p := 0.1 + 0.8*rng.Float64()
			var secured []int
			for id := 1; id <= sys.NumMeasurements(); id++ {
				if rng.Float64() < p {
					secured = append(secured, id)
				}
			}
			if len(secured) > 0 {
				if err := meas.Secure(secured...); err != nil {
					t.Fatalf("Secure: %v", err)
				}
			}
			graph := GraphProtectsAllStates(meas)
			rank := rankProtects(t, meas, 1)
			if graph && !rank {
				t.Fatalf("%s trial %d: graphical condition true but rank condition false (secured %d meters)",
					name, trial, len(secured))
			}
			fast, err := ProtectsAllStates(meas, 1)
			if err != nil {
				t.Fatalf("ProtectsAllStates: %v", err)
			}
			if fast != rank {
				t.Fatalf("%s trial %d: fast-pathed ProtectsAllStates=%v, rank ground truth=%v",
					name, trial, fast, rank)
			}
		}
	}
}
