package scenariofile

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func TestLoadAttackFull(t *testing.T) {
	path := writeFile(t, `{
		"case": "ieee14",
		"untaken": [5, 10],
		"secured": [46],
		"inaccessible": [7],
		"unknownLines": [3, 7, 17],
		"outOfServiceLines": [13],
		"nonCoreLines": [5, 13],
		"securedStatusLines": [1],
		"allowExclusion": true,
		"allowInclusion": true,
		"maxMeasurements": 16,
		"maxBuses": 7,
		"refBus": 2,
		"targets": [9, 10],
		"distinctPairs": [[9, 10]],
		"strictKnowledge": true
	}`)
	spec, err := LoadAttack(path)
	if err != nil {
		t.Fatalf("LoadAttack: %v", err)
	}
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	if sc.System().Name != "ieee14" {
		t.Fatalf("system = %s", sc.System().Name)
	}
	if sc.Meas.Taken[5] || !sc.Meas.Taken[6] {
		t.Fatalf("untaken not applied")
	}
	if !sc.Meas.Secured[46] || sc.Meas.Accessible[7] {
		t.Fatalf("secured/inaccessible not applied")
	}
	if sc.Knowledge[3] || !sc.Knowledge[4] {
		t.Fatalf("knowledge not applied")
	}
	if sc.InService[13] || !sc.InService[12] {
		t.Fatalf("out-of-service not applied")
	}
	if sc.FixedLines[5] || sc.FixedLines[13] || !sc.FixedLines[1] {
		t.Fatalf("non-core lines not applied")
	}
	if !sc.SecuredStatus[1] || sc.SecuredStatus[2] {
		t.Fatalf("secured status not applied")
	}
	if !sc.AllowExclusion || !sc.AllowInclusion || !sc.StrictKnowledge {
		t.Fatalf("switches not applied")
	}
	if sc.MaxAlteredMeasurements != 16 || sc.MaxCompromisedBuses != 7 {
		t.Fatalf("limits not applied")
	}
	if sc.RefBus != 2 || len(sc.TargetStates) != 2 || len(sc.DistinctPairs) != 1 {
		t.Fatalf("goal not applied")
	}
}

func TestLoadAttackCustomSystem(t *testing.T) {
	path := writeFile(t, `{
		"buses": 3,
		"lines": [
			{"from": 1, "to": 2, "admittance": 5},
			{"from": 2, "to": 3, "admittance": 4}
		],
		"anyState": true
	}`)
	spec, err := LoadAttack(path)
	if err != nil {
		t.Fatalf("LoadAttack: %v", err)
	}
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	if sc.System().Buses != 3 || sc.System().NumLines() != 2 {
		t.Fatalf("custom system wrong: %+v", sc.System())
	}
}

func TestLoadAttackRejectsUnknownFields(t *testing.T) {
	path := writeFile(t, `{"case": "ieee14", "targgets": [9]}`)
	if _, err := LoadAttack(path); err == nil {
		t.Fatalf("typo field accepted")
	}
}

func TestLoadAttackRejectsBothSystemForms(t *testing.T) {
	path := writeFile(t, `{"case": "ieee14", "buses": 3}`)
	spec, err := LoadAttack(path)
	if err != nil {
		t.Fatalf("LoadAttack: %v", err)
	}
	if _, err := spec.Scenario(); err == nil {
		t.Fatalf("case+buses accepted")
	}
}

func TestLoadAttackBadLineID(t *testing.T) {
	path := writeFile(t, `{"case": "ieee14", "unknownLines": [99]}`)
	spec, err := LoadAttack(path)
	if err != nil {
		t.Fatalf("LoadAttack: %v", err)
	}
	if _, err := spec.Scenario(); err == nil {
		t.Fatalf("out-of-range line accepted")
	}
}

func TestLoadAttackMissingFile(t *testing.T) {
	if _, err := LoadAttack(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatalf("missing file accepted")
	}
}

func TestLoadSynthesis(t *testing.T) {
	path := writeFile(t, `{
		"attack": {"case": "ieee14", "anyState": true},
		"maxSecuredBuses": 5,
		"requiredBuses": [1],
		"excludedBuses": [2],
		"prune": true,
		"maxIterations": 50
	}`)
	spec, err := LoadSynthesis(path)
	if err != nil {
		t.Fatalf("LoadSynthesis: %v", err)
	}
	req, err := spec.Requirements()
	if err != nil {
		t.Fatalf("Requirements: %v", err)
	}
	if req.MaxSecuredBuses != 5 || !req.Prune || req.MaxIterations != 50 {
		t.Fatalf("requirements wrong: %+v", req)
	}
	if len(req.RequiredBuses) != 1 || len(req.ExcludedBuses) != 1 {
		t.Fatalf("bus lists wrong")
	}
	if !req.Attack.AnyState {
		t.Fatalf("attack goal wrong")
	}
}

func TestLoadSynthesisBadJSON(t *testing.T) {
	path := writeFile(t, `{not json`)
	if _, err := LoadSynthesis(path); err == nil {
		t.Fatalf("bad JSON accepted")
	}
}

// TestShippedScenarioFiles parses the example scenario files shipped in the
// repository and checks they produce the documented outcomes.
func TestShippedScenarioFiles(t *testing.T) {
	root := "../../examples/scenarios"
	spec, err := LoadAttack(filepath.Join(root, "objective2-topology.json"))
	if err != nil {
		t.Fatalf("LoadAttack: %v", err)
	}
	if _, err := spec.Scenario(); err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	sspec, err := LoadSynthesis(filepath.Join(root, "synthesis-scenario2.json"))
	if err != nil {
		t.Fatalf("LoadSynthesis: %v", err)
	}
	if _, err := sspec.Requirements(); err != nil {
		t.Fatalf("Requirements: %v", err)
	}
	aspec, err := LoadAttack(filepath.Join(root, "objective1.json"))
	if err != nil {
		t.Fatalf("LoadAttack: %v", err)
	}
	if _, err := aspec.Scenario(); err != nil {
		t.Fatalf("Scenario: %v", err)
	}
}
