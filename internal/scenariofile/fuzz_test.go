package scenariofile

import (
	"testing"
)

// fuzzConvertible bounds the systems the fuzz harness instantiates from a
// parsed spec: a custom system's allocation is proportional to its bus and
// line counts, so a fuzzer-invented {"buses": 1e9} input would spend the
// whole fuzz budget in make() without testing anything. Named cases are
// bounded by construction.
func fuzzConvertible(a *AttackSpec) bool {
	return a.Buses <= 64 && len(a.Lines) <= 128
}

// FuzzParse throws arbitrary bytes at both spec parsers and, when a spec
// parses, at the spec→model conversions. The property is absence of panics
// and runaway allocation: every malformed input must come back as an error,
// never a crash, because scenario files are the CLIs' untrusted input
// surface.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"case":"ieee14","anyState":true}`))
	f.Add([]byte(`{"case":"ieee14","maxMeasurements":3,"maxBuses":2,"targets":[9],"onlyTargets":true}`))
	f.Add([]byte(`{"buses":3,"lines":[{"from":1,"to":2,"admittance":1.5},{"from":2,"to":3,"admittance":0.5}],"refBus":2}`))
	f.Add([]byte(`{"case":"ieee14","untaken":[1,2],"secured":[3],"inaccessible":[54],"unknownLines":[5],"nonCoreLines":[5,13],"allowExclusion":true}`))
	f.Add([]byte(`{"attack":{"case":"ieee14","anyState":true},"maxSecuredBuses":5,"requiredBuses":[1],"prune":true}`))
	f.Add([]byte(`{"attack":{"case":"ieee14"},"maxSecuredMeasurements":9,"excludedMeasurements":[2]}`))
	f.Add([]byte(`{"case":"ieee14","distinctPairs":[[2,3]],"minChange":0.25,"strictKnowledge":true}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"buses":-1,"refBus":-7}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if spec, err := ParseAttack(data); err == nil && fuzzConvertible(spec) {
			_, _ = spec.Scenario()
		}
		if spec, err := ParseSynthesis(data); err == nil && fuzzConvertible(&spec.Attack) {
			_, _ = spec.Requirements()
			_, _ = spec.MeasurementRequirements()
		}
	})
}
