// Package scenariofile loads attack-verification and synthesis scenarios
// from JSON files, the input format of the ufdiverify and synthsec command
// line tools. The format mirrors the paper's Table II/III inputs: which
// measurements are taken/secured/accessible, the attacker's knowledge,
// topology attributes, resource limits and the attack goal.
package scenariofile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"segrid/internal/core"
	"segrid/internal/grid"
	"segrid/internal/synth"
)

// LineSpec describes a custom system line.
type LineSpec struct {
	From       int     `json:"from"`
	To         int     `json:"to"`
	Admittance float64 `json:"admittance"`
}

// AttackSpec is the JSON form of a core.Scenario.
type AttackSpec struct {
	// Case names a built-in test system (ieee14, ieee30, ieee57, ieee118,
	// ieee300). Alternatively give Buses and Lines for a custom system.
	Case  string     `json:"case,omitempty"`
	Buses int        `json:"buses,omitempty"`
	Lines []LineSpec `json:"lines,omitempty"`

	Untaken      []int `json:"untaken,omitempty"`
	Secured      []int `json:"secured,omitempty"`
	Inaccessible []int `json:"inaccessible,omitempty"`

	UnknownLines       []int `json:"unknownLines,omitempty"`
	OutOfServiceLines  []int `json:"outOfServiceLines,omitempty"`
	NonCoreLines       []int `json:"nonCoreLines,omitempty"`
	SecuredStatusLines []int `json:"securedStatusLines,omitempty"`

	AllowExclusion bool `json:"allowExclusion,omitempty"`
	AllowInclusion bool `json:"allowInclusion,omitempty"`

	MaxMeasurements int `json:"maxMeasurements,omitempty"`
	MaxBuses        int `json:"maxBuses,omitempty"`

	RefBus          int      `json:"refBus,omitempty"` // default 1
	Targets         []int    `json:"targets,omitempty"`
	OnlyTargets     bool     `json:"onlyTargets,omitempty"`
	UntouchedStates []int    `json:"untouchedStates,omitempty"`
	AnyState        bool     `json:"anyState,omitempty"`
	DistinctPairs   [][2]int `json:"distinctPairs,omitempty"`
	StrictKnowledge bool     `json:"strictKnowledge,omitempty"`
	MinChange       float64  `json:"minChange,omitempty"`
}

// SynthesisSpec is the JSON form of synth.Requirements. Setting
// maxSecuredMeasurements instead of maxSecuredBuses selects the
// measurement-granular mechanism.
type SynthesisSpec struct {
	Attack                 AttackSpec `json:"attack"`
	MaxSecuredBuses        int        `json:"maxSecuredBuses,omitempty"`
	ExcludedBuses          []int      `json:"excludedBuses,omitempty"`
	RequiredBuses          []int      `json:"requiredBuses,omitempty"`
	Prune                  bool       `json:"prune,omitempty"`
	MaxIterations          int        `json:"maxIterations,omitempty"`
	MaxSecuredMeasurements int        `json:"maxSecuredMeasurements,omitempty"`
	ExcludedMeasurements   []int      `json:"excludedMeasurements,omitempty"`
	RequiredMeasurements   []int      `json:"requiredMeasurements,omitempty"`
}

// MeasurementGranular reports whether the spec asks for measurement-level
// synthesis.
func (s *SynthesisSpec) MeasurementGranular() bool { return s.MaxSecuredMeasurements > 0 }

// MeasurementRequirements converts the spec for the measurement-granular
// mechanism.
func (s *SynthesisSpec) MeasurementRequirements() (*synth.MeasurementRequirements, error) {
	attack, err := s.Attack.Scenario()
	if err != nil {
		return nil, err
	}
	return &synth.MeasurementRequirements{
		Attack:                 attack,
		MaxSecuredMeasurements: s.MaxSecuredMeasurements,
		ExcludedMeasurements:   s.ExcludedMeasurements,
		RequiredMeasurements:   s.RequiredMeasurements,
		MaxIterations:          s.MaxIterations,
	}, nil
}

// system resolves the spec's network.
func (a *AttackSpec) system() (*grid.System, error) {
	if a.Case != "" {
		if a.Buses != 0 || len(a.Lines) != 0 {
			return nil, fmt.Errorf("scenariofile: give either case or buses+lines, not both")
		}
		return grid.Case(a.Case)
	}
	lines := make([]grid.Line, len(a.Lines))
	for i, l := range a.Lines {
		lines[i] = grid.Line{ID: i + 1, From: l.From, To: l.To, Admittance: l.Admittance}
	}
	return grid.NewSystem("custom", a.Buses, lines)
}

// lineFlagSlice builds a 1-based per-line flag slice from an ID list.
func lineFlagSlice(l int, ids []int, def bool) ([]bool, error) {
	out := make([]bool, l+1)
	for i := 1; i <= l; i++ {
		out[i] = def
	}
	for _, id := range ids {
		if id < 1 || id > l {
			return nil, fmt.Errorf("scenariofile: line %d out of range 1..%d", id, l)
		}
		out[id] = !def
	}
	return out, nil
}

// Scenario converts the spec to a core.Scenario.
func (a *AttackSpec) Scenario() (*core.Scenario, error) {
	sys, err := a.system()
	if err != nil {
		return nil, err
	}
	sc := core.NewScenario(sys)
	if len(a.Untaken) > 0 {
		if err := sc.Meas.Untake(a.Untaken...); err != nil {
			return nil, err
		}
	}
	if len(a.Secured) > 0 {
		if err := sc.Meas.Secure(a.Secured...); err != nil {
			return nil, err
		}
	}
	if len(a.Inaccessible) > 0 {
		if err := sc.Meas.Restrict(a.Inaccessible...); err != nil {
			return nil, err
		}
	}
	l := sys.NumLines()
	if len(a.UnknownLines) > 0 {
		if sc.Knowledge, err = lineFlagSlice(l, a.UnknownLines, true); err != nil {
			return nil, err
		}
	}
	if len(a.OutOfServiceLines) > 0 {
		if sc.InService, err = lineFlagSlice(l, a.OutOfServiceLines, true); err != nil {
			return nil, err
		}
	}
	if len(a.NonCoreLines) > 0 {
		// Non-core lines are the openable ones; everything else is fixed.
		if sc.FixedLines, err = lineFlagSlice(l, a.NonCoreLines, true); err != nil {
			return nil, err
		}
	}
	if len(a.SecuredStatusLines) > 0 {
		if sc.SecuredStatus, err = lineFlagSlice(l, a.SecuredStatusLines, false); err != nil {
			return nil, err
		}
	}
	sc.AllowExclusion = a.AllowExclusion
	sc.AllowInclusion = a.AllowInclusion
	sc.MaxAlteredMeasurements = a.MaxMeasurements
	sc.MaxCompromisedBuses = a.MaxBuses
	if a.RefBus != 0 {
		sc.RefBus = a.RefBus
	}
	sc.TargetStates = a.Targets
	sc.OnlyTargets = a.OnlyTargets
	sc.UntouchedStates = a.UntouchedStates
	sc.AnyState = a.AnyState
	sc.DistinctPairs = a.DistinctPairs
	sc.StrictKnowledge = a.StrictKnowledge
	sc.MinChange = a.MinChange
	return sc, nil
}

// Requirements converts the spec to synth.Requirements.
func (s *SynthesisSpec) Requirements() (*synth.Requirements, error) {
	attack, err := s.Attack.Scenario()
	if err != nil {
		return nil, err
	}
	return &synth.Requirements{
		Attack:          attack,
		MaxSecuredBuses: s.MaxSecuredBuses,
		ExcludedBuses:   s.ExcludedBuses,
		RequiredBuses:   s.RequiredBuses,
		Prune:           s.Prune,
		MaxIterations:   s.MaxIterations,
	}, nil
}

// ParseAttack decodes an AttackSpec from JSON bytes.
func ParseAttack(data []byte) (*AttackSpec, error) {
	var spec AttackSpec
	if err := unmarshalStrict(data, &spec); err != nil {
		return nil, fmt.Errorf("scenariofile: parse: %w", err)
	}
	return &spec, nil
}

// ParseSynthesis decodes a SynthesisSpec from JSON bytes.
func ParseSynthesis(data []byte) (*SynthesisSpec, error) {
	var spec SynthesisSpec
	if err := unmarshalStrict(data, &spec); err != nil {
		return nil, fmt.Errorf("scenariofile: parse: %w", err)
	}
	return &spec, nil
}

// LoadAttack reads an AttackSpec JSON file.
func LoadAttack(path string) (*AttackSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenariofile: %w", err)
	}
	spec, err := ParseAttack(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// LoadSynthesis reads a SynthesisSpec JSON file.
func LoadSynthesis(path string) (*SynthesisSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenariofile: %w", err)
	}
	spec, err := ParseSynthesis(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// unmarshalStrict rejects unknown fields so typos in scenario files surface
// as errors instead of silently weakening the attack model.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
