// Package dcopf solves DC optimal power flow — least-cost generator
// dispatch subject to power balance, generator limits and line flow limits
// — on the exact rational LP optimizer (internal/lra).
//
// Its role in this repository is attack impact analysis: the paper (and
// its companion work on optimal power flow) motivates UFDI attacks by
// their downstream effect on operations. A corrupted state estimate means
// corrupted load estimates, and the operator's redispatch against those
// phantom loads carries a real cost and can overload real lines.
package dcopf

import (
	"errors"
	"fmt"
	"math/big"

	"segrid/internal/grid"
	"segrid/internal/lpbuild"
	"segrid/internal/lra"
	"segrid/internal/numeric"
)

// ErrInfeasible is returned when no dispatch satisfies the constraints.
var ErrInfeasible = errors.New("dcopf: no feasible dispatch")

// Generator is a dispatchable source with a linear cost.
type Generator struct {
	Bus        int     // 1-based
	MinP, MaxP float64 // p.u. output limits, MinP ≤ MaxP
	Cost       float64 // $ per p.u.·h
}

// Case is a DC-OPF problem.
type Case struct {
	Sys  *grid.System
	Gens []Generator
	// Load is the 1-based per-bus consumption (positive).
	Load []float64
	// LineLimit is the 1-based per-line |flow| limit; 0 means unlimited.
	LineLimit []float64
	// RefBus is the 1-based slack/reference bus whose angle is pinned to
	// zero. DC angles are only determined up to a global shift, so the LP
	// needs one anchored bus to have a unique solution; RefBus also absorbs
	// the network's net imbalance in the underlying DC approximation, which
	// is why it is conventionally a generator bus. It must name a valid bus
	// — there is no default; Solve rejects 0 or out-of-range values.
	RefBus int
}

// Dispatch is an optimal solution.
type Dispatch struct {
	// Gen is the output per generator, aligned with Case.Gens.
	Gen []float64
	// Cost is the total generation cost.
	Cost float64
	// Flows is the 1-based per-line power flow (from → to positive).
	Flows []float64
	// Angles is the 1-based per-bus angle.
	Angles []float64
}

// rat quantizes a float to an exact rational; see lpbuild.Rat.
func rat(f float64) *big.Rat { return lpbuild.Rat(f) }

// Solve builds and optimizes the dispatch LP.
func (c *Case) Solve() (*Dispatch, error) {
	sys := c.Sys
	if sys == nil {
		return nil, errors.New("dcopf: case has no system")
	}
	if len(c.Load) != sys.Buses+1 {
		return nil, fmt.Errorf("dcopf: load vector length %d, want %d", len(c.Load), sys.Buses+1)
	}
	if c.LineLimit != nil && len(c.LineLimit) != sys.NumLines()+1 {
		return nil, fmt.Errorf("dcopf: line limit length %d, want %d", len(c.LineLimit), sys.NumLines()+1)
	}
	if c.RefBus < 1 || c.RefBus > sys.Buses {
		return nil, fmt.Errorf("dcopf: reference bus %d out of range", c.RefBus)
	}
	if len(c.Gens) == 0 {
		return nil, errors.New("dcopf: no generators")
	}
	for i, g := range c.Gens {
		if g.Bus < 1 || g.Bus > sys.Buses {
			return nil, fmt.Errorf("dcopf: generator %d at bus %d out of range", i, g.Bus)
		}
		if g.MinP > g.MaxP {
			return nil, fmt.Errorf("dcopf: generator %d has MinP > MaxP", i)
		}
	}

	s := lra.NewSimplex()
	// Angle variables (reference pinned to 0).
	theta := make([]int, sys.Buses+1)
	for j := 1; j <= sys.Buses; j++ {
		theta[j] = s.NewVar()
	}
	lpbuild.Fix(s, theta[c.RefBus], numeric.Delta{}, lra.NoTag)

	// Generator variables with box bounds.
	gen := make([]int, len(c.Gens))
	for i, g := range c.Gens {
		gen[i] = s.NewVar()
		lpbuild.Box(s, gen[i],
			numeric.DeltaFromRat(rat(g.MinP)), numeric.DeltaFromRat(rat(g.MaxP)),
			lra.NoTag, lra.NoTag)
	}

	// Line flows as slack definitions, optionally bounded.
	flow := make([]int, sys.NumLines()+1)
	for _, ln := range sys.Lines {
		sv, err := s.DefineSlack(lpbuild.LineFlowTerms(theta, ln, rat(ln.Admittance)))
		if err != nil {
			return nil, fmt.Errorf("dcopf: flow slack: %w", err)
		}
		flow[ln.ID] = sv
		if c.LineLimit != nil && c.LineLimit[ln.ID] > 0 {
			lpbuild.SymmetricBound(s, sv, rat(c.LineLimit[ln.ID]), lra.NoTag, lra.NoTag)
		}
	}

	// Bus balance: Σ gen_at_bus − load_j = Σ outflows − Σ inflows, i.e. the
	// net-inflow row plus the bus's generation terms is fixed to its load.
	for j := 1; j <= sys.Buses; j++ {
		terms := lpbuild.BusFlowTerms(sys, flow, j)
		for i, g := range c.Gens {
			if g.Bus == j {
				terms = append(terms, lra.Term{Var: gen[i], Coeff: big.NewRat(1, 1)})
			}
		}
		if len(terms) == 0 {
			// Isolated unloaded bus: balance trivially if load is zero.
			if c.Load[j] != 0 {
				return nil, ErrInfeasible
			}
			continue
		}
		sv, err := s.DefineSlack(terms)
		if err != nil {
			return nil, fmt.Errorf("dcopf: balance slack: %w", err)
		}
		if conflict := lpbuild.Fix(s, sv, numeric.DeltaFromRat(rat(c.Load[j])), lra.NoTag); conflict != nil {
			return nil, ErrInfeasible
		}
	}

	// Minimize total cost ⇔ maximize its negation.
	obj := make([]lra.Term, len(c.Gens))
	for i, g := range c.Gens {
		obj[i] = lra.Term{Var: gen[i], Coeff: new(big.Rat).Neg(rat(g.Cost))}
	}
	opt, err := s.Maximize(obj)
	switch {
	case errors.Is(err, lra.ErrInfeasible):
		return nil, ErrInfeasible
	case errors.Is(err, lra.ErrUnbounded):
		// Impossible with box-bounded generators; defend anyway.
		return nil, fmt.Errorf("dcopf: unbounded objective")
	case err != nil:
		return nil, err
	}

	model := s.Model()
	out := &Dispatch{
		Gen:    make([]float64, len(c.Gens)),
		Flows:  make([]float64, sys.NumLines()+1),
		Angles: make([]float64, sys.Buses+1),
	}
	for i := range c.Gens {
		out.Gen[i], _ = model[gen[i]].Float64()
	}
	for _, ln := range sys.Lines {
		out.Flows[ln.ID], _ = model[flow[ln.ID]].Float64()
	}
	for j := 1; j <= sys.Buses; j++ {
		out.Angles[j], _ = model[theta[j]].Float64()
	}
	cost, _ := new(big.Rat).Neg(opt.Rat()).Float64()
	out.Cost = cost
	return out, nil
}
