package dcopf

import (
	"errors"
	"math"
	"testing"

	"segrid/internal/grid"
)

// threeBusSystem: 1—2—3 chain plus 1—3, all admittance 10.
func threeBusSystem(t *testing.T) *grid.System {
	t.Helper()
	sys, err := grid.NewSystem("tri", 3, []grid.Line{
		{ID: 1, From: 1, To: 2, Admittance: 10},
		{ID: 2, From: 2, To: 3, Admittance: 10},
		{ID: 3, From: 1, To: 3, Admittance: 10},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestCheapGeneratorWins(t *testing.T) {
	sys := threeBusSystem(t)
	c := &Case{
		Sys: sys,
		Gens: []Generator{
			{Bus: 1, MinP: 0, MaxP: 2, Cost: 10},
			{Bus: 2, MinP: 0, MaxP: 2, Cost: 30},
		},
		Load:   []float64{0, 0, 0, 1.0},
		RefBus: 1,
	}
	d, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(d.Gen[0]-1.0) > 1e-7 || math.Abs(d.Gen[1]) > 1e-7 {
		t.Fatalf("dispatch %v, want cheap unit serving everything", d.Gen)
	}
	if math.Abs(d.Cost-10.0) > 1e-6 {
		t.Fatalf("cost %v, want 10", d.Cost)
	}
	// Flows balance the load at bus 3.
	into3 := d.Flows[2] + d.Flows[3]
	if math.Abs(into3-1.0) > 1e-7 {
		t.Fatalf("inflow to bus 3 = %v, want 1", into3)
	}
}

func TestLineLimitForcesExpensiveUnit(t *testing.T) {
	sys := threeBusSystem(t)
	limits := []float64{0, 0.3, 0.3, 0.3} // every line capped at 0.3
	c := &Case{
		Sys: sys,
		Gens: []Generator{
			{Bus: 1, MinP: 0, MaxP: 2, Cost: 10},
			{Bus: 3, MinP: 0, MaxP: 2, Cost: 50},
		},
		Load:      []float64{0, 0, 0, 1.0},
		LineLimit: limits,
		RefBus:    1,
	}
	d, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Bus 1 can deliver at most what the network carries into bus 3; the
	// local (expensive) unit covers the rest, so its output is positive.
	if d.Gen[1] <= 0.01 {
		t.Fatalf("expensive local unit idle (%v) despite congestion", d.Gen[1])
	}
	if d.Cost <= 10.0 {
		t.Fatalf("cost %v does not reflect congestion", d.Cost)
	}
	for id := 1; id <= sys.NumLines(); id++ {
		if math.Abs(d.Flows[id]) > 0.3+1e-7 {
			t.Fatalf("line %d flow %v exceeds limit", id, d.Flows[id])
		}
	}
}

func TestInfeasibleWhenLoadExceedsCapacity(t *testing.T) {
	sys := threeBusSystem(t)
	c := &Case{
		Sys:    sys,
		Gens:   []Generator{{Bus: 1, MinP: 0, MaxP: 0.5, Cost: 10}},
		Load:   []float64{0, 0, 0, 1.0},
		RefBus: 1,
	}
	if _, err := c.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestValidation(t *testing.T) {
	sys := threeBusSystem(t)
	good := func() *Case {
		return &Case{
			Sys:    sys,
			Gens:   []Generator{{Bus: 1, MinP: 0, MaxP: 1, Cost: 1}},
			Load:   []float64{0, 0, 0, 0.1},
			RefBus: 1,
		}
	}
	tests := []struct {
		name string
		mut  func(*Case)
	}{
		{"nil sys", func(c *Case) { c.Sys = nil }},
		{"bad load len", func(c *Case) { c.Load = []float64{0} }},
		{"bad limit len", func(c *Case) { c.LineLimit = []float64{0} }},
		{"bad ref", func(c *Case) { c.RefBus = 9 }},
		{"no gens", func(c *Case) { c.Gens = nil }},
		{"bad gen bus", func(c *Case) { c.Gens[0].Bus = 9 }},
		{"inverted limits", func(c *Case) { c.Gens[0].MinP = 2 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := good()
			tc.mut(c)
			if _, err := c.Solve(); err == nil {
				t.Fatalf("invalid case accepted")
			}
		})
	}
}

func TestIEEE14EconomicDispatch(t *testing.T) {
	sys := grid.IEEE14()
	load := make([]float64, sys.Buses+1)
	total := 0.0
	for j := 2; j <= sys.Buses; j++ {
		load[j] = 0.08
		total += load[j]
	}
	c := &Case{
		Sys: sys,
		Gens: []Generator{
			{Bus: 1, MinP: 0, MaxP: 1.0, Cost: 20},
			{Bus: 2, MinP: 0, MaxP: 0.6, Cost: 25},
			{Bus: 6, MinP: 0, MaxP: 0.6, Cost: 40},
		},
		Load:   load,
		RefBus: 1,
	}
	d, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	sum := d.Gen[0] + d.Gen[1] + d.Gen[2]
	if math.Abs(sum-total) > 1e-6 {
		t.Fatalf("generation %v, load %v", sum, total)
	}
	// Merit order: the cheapest unit is at its limit before the priciest
	// runs.
	if d.Gen[2] > 1e-7 && d.Gen[0] < 1.0-1e-7 {
		t.Fatalf("merit order violated: %v", d.Gen)
	}
}

// TestAttackImpactOnDispatch quantifies the paper's motivation: an
// undetected attack corrupts the load estimates the operator dispatches
// against, and the phantom loads carry a real cost delta.
func TestAttackImpactOnDispatch(t *testing.T) {
	sys := grid.IEEE14()
	load := make([]float64, sys.Buses+1)
	for j := 2; j <= sys.Buses; j++ {
		load[j] = 0.07
	}
	gens := []Generator{
		{Bus: 1, MinP: 0, MaxP: 1.2, Cost: 20},
		{Bus: 3, MinP: 0, MaxP: 0.8, Cost: 35},
	}
	base := &Case{Sys: sys, Gens: gens, Load: load, RefBus: 1}
	honest, err := base.Solve()
	if err != nil {
		t.Fatalf("Solve(honest): %v", err)
	}

	// The attacker shifts the load estimate: +0.2 p.u. at bus 12 appears,
	// −0.2 disappears at bus 2 (a load-redistribution attack consistent
	// with some stealthy state corruption).
	corrupted := append([]float64(nil), load...)
	corrupted[12] += 0.2
	corrupted[2] -= 0.2
	fooled := &Case{Sys: sys, Gens: gens, Load: corrupted, RefBus: 1}
	poisoned, err := fooled.Solve()
	if err != nil {
		t.Fatalf("Solve(poisoned): %v", err)
	}
	if math.Abs(poisoned.Cost-honest.Cost) < 1e-9 {
		t.Logf("costs equal (%v); acceptable when no congestion differentiates buses", honest.Cost)
	}
	// The dispatched flows differ: the operator now routes power toward
	// the phantom load.
	diff := 0.0
	for id := 1; id <= sys.NumLines(); id++ {
		diff += math.Abs(poisoned.Flows[id] - honest.Flows[id])
	}
	if diff < 0.05 {
		t.Fatalf("attack barely moved the dispatch (Σ|Δflow| = %v)", diff)
	}
}
