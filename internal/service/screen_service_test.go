package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"segrid/internal/grid"
	"segrid/internal/scenariofile"
)

// screenableSpec is an instance the LP screen decides definitively: one
// unrestricted target state on ieee14 (a fast-accept); securing every
// measurement turns it into a fast-reject.
func screenableSpec() scenariofile.AttackSpec {
	return scenariofile.AttackSpec{Case: "ieee14", Targets: []int{5}}
}

func allMeasurements(t *testing.T) []int {
	t.Helper()
	sys, err := grid.Case("ieee14")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, sys.NumMeasurements())
	for i := range ids {
		ids[i] = i + 1
	}
	return ids
}

func metricsOn(t *testing.T, srv *httptest.Server) *Metrics {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("decode metrics: %v (%s)", err, raw)
	}
	return &m
}

// TestScreenVerifyAnswersWithoutEncoder checks the screening fast path end
// to end: definitive verdicts in both directions, marked "screened", with
// zero encoder builds and the screening ledger advanced.
func TestScreenVerifyAnswersWithoutEncoder(t *testing.T) {
	svc, srv := newTestServer(t, Config{Screen: true})

	r := verifyOn(t, srv, VerifyRequest{Attack: screenableSpec()})
	if r.Status != "feasible" || !r.Screened {
		t.Fatalf("unrestricted target = %+v, want screened feasible", r)
	}
	if len(r.AlteredMeasurements) == 0 || len(r.StateChanges) == 0 {
		t.Fatalf("screened feasible verdict carries no witness: %+v", r)
	}

	r2 := verifyOn(t, srv, VerifyRequest{Attack: screenableSpec(), SecuredMeasurements: allMeasurements(t)})
	if r2.Status != "infeasible" || !r2.Screened {
		t.Fatalf("all-secured = %+v, want screened infeasible", r2)
	}

	if ps := svc.PoolStats(); ps.Misses != 0 || ps.Hits != 0 {
		t.Fatalf("screened answers touched the encoder pool: %+v", ps)
	}
	m := metricsOn(t, srv)
	if m.ScreenAccepts != 1 || m.ScreenRejects != 1 || m.ScreenInconclusive != 0 {
		t.Fatalf("screen ledger = accepts %d rejects %d inconclusive %d, want 1/1/0",
			m.ScreenAccepts, m.ScreenRejects, m.ScreenInconclusive)
	}
	if m.ScreenNanos == 0 {
		t.Fatal("screening latency not recorded")
	}
	if m.Feasible != 1 || m.Infeasible != 1 {
		t.Fatalf("verdict ledger = feasible %d infeasible %d, want 1/1", m.Feasible, m.Infeasible)
	}
}

// TestScreenPerRequestOverride checks the "screen" request field wins over
// the server default in both directions — the per-request ablation switch.
func TestScreenPerRequestOverride(t *testing.T) {
	off, on := false, true

	_, srv := newTestServer(t, Config{Screen: true})
	r := verifyOn(t, srv, VerifyRequest{Attack: screenableSpec(), Screen: &off})
	if r.Screened {
		t.Fatalf("screen:false request still screened: %+v", r)
	}
	if r.Status != "feasible" {
		t.Fatalf("unscreened pipeline says %s, want feasible", r.Status)
	}

	_, srv2 := newTestServer(t, Config{})
	r2 := verifyOn(t, srv2, VerifyRequest{Attack: screenableSpec(), Screen: &on})
	if !r2.Screened || r2.Status != "feasible" {
		t.Fatalf("screen:true on a screen-off server = %+v, want screened feasible", r2)
	}
}

// TestScreenProofRequestsBypass checks a proof-producing request is never
// screened: the client asked for the solver's certificate stream.
func TestScreenProofRequestsBypass(t *testing.T) {
	dir := t.TempDir()
	_, srv := newTestServer(t, Config{Screen: true, ProofDir: dir})
	r := verifyOn(t, srv, VerifyRequest{
		Attack:              screenableSpec(),
		SecuredMeasurements: allMeasurements(t),
		Proof:               true,
	})
	if r.Screened {
		t.Fatalf("proof request answered by the screen: %+v", r)
	}
	if r.Status != "infeasible" || r.ProofFile == "" {
		t.Fatalf("proof request = %+v, want infeasible with a certificate", r)
	}
}

// TestScreenSweepItemsSkipEncoders checks per-item sweep screening: a sweep
// whose items all screen definitively builds no encoder at all, and every
// item's verdict matches the unscreened run of the same sweep.
func TestScreenSweepItemsSkipEncoders(t *testing.T) {
	req := func() SweepRequest {
		return SweepRequest{
			Attack: screenableSpec(),
			Items: []SweepItem{
				{},                  // base goal, unrestricted: fast-accept
				{Targets: []int{7}}, // re-specced goal, still unrestricted
				{SecuredMeasurements: allMeasurements(t)}, // fast-reject
			},
		}
	}

	svc, srv := newTestServer(t, Config{Screen: true})
	resp, raw := post(t, srv, "/v1/sweep", req())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, raw)
	}
	var screened SweepResponse
	if err := json.Unmarshal(raw, &screened); err != nil {
		t.Fatal(err)
	}
	for i, item := range screened.Items {
		if !item.Screened {
			t.Fatalf("item %d not screened: %+v", i, item)
		}
	}
	if screened.EncoderBuilds != 0 {
		t.Fatalf("fully screened sweep built %d encoders", screened.EncoderBuilds)
	}
	if ps := svc.PoolStats(); ps.Misses != 0 {
		t.Fatalf("fully screened sweep touched the pool: %+v", ps)
	}

	_, srv2 := newTestServer(t, Config{})
	resp2, raw2 := post(t, srv2, "/v1/sweep", req())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("unscreened sweep status %d: %s", resp2.StatusCode, raw2)
	}
	var plain SweepResponse
	if err := json.Unmarshal(raw2, &plain); err != nil {
		t.Fatal(err)
	}
	for i := range plain.Items {
		if plain.Items[i].Status != screened.Items[i].Status {
			t.Fatalf("item %d: screened %s vs unscreened %s",
				i, screened.Items[i].Status, plain.Items[i].Status)
		}
		if plain.Items[i].Screened {
			t.Fatalf("item %d screened on a screen-off server", i)
		}
	}
}

// TestScreenMatchesUnscreenedObjective2 replays the suite's ground-truth
// case study through a screening server: whether each request is answered
// by the screen or falls through, the verdicts must be the known ones.
func TestScreenMatchesUnscreenedObjective2(t *testing.T) {
	_, srv := newTestServer(t, Config{Screen: true})
	r1 := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec()})
	if r1.Status != "feasible" {
		t.Fatalf("objective 2 bare = %+v, want feasible", r1)
	}
	r2 := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec(), SecuredMeasurements: []int{46}})
	if r2.Status != "infeasible" {
		t.Fatalf("objective 2 + secured 46 = %+v, want infeasible", r2)
	}
}
