package service

import (
	"sync/atomic"

	"segrid/internal/pool"
	"segrid/internal/sched"
)

// metrics are the service's monotonic counters. All fields are updated with
// atomics; snapshot renders them for GET /metrics.
type metrics struct {
	requests    atomic.Uint64 // every request that reached a handler
	badRequests atomic.Uint64 // rejected before/without a solve
	shed429     atomic.Uint64 // admission queue full
	shed503     atomic.Uint64 // no solve slot within the queue wait

	feasible     atomic.Uint64
	infeasible   atomic.Uint64
	inconclusive atomic.Uint64

	retries     atomic.Uint64 // warm→fresh fallbacks taken
	poisoned    atomic.Uint64 // encoders quarantined after a check
	panics      atomic.Uint64 // solver panics contained
	proofErrors atomic.Uint64 // certificate streams that failed

	sweeps         atomic.Uint64 // /v1/sweep requests answered
	sweepItems     atomic.Uint64 // per-item verdicts those sweeps produced
	encodersClosed atomic.Uint64 // encoders torn down via the pool drop hook

	portfolioChecks  atomic.Uint64 // verifications answered by a portfolio race
	cubeRuns         atomic.Uint64 // synthesis runs in cube-and-conquer mode
	sequentialSolves atomic.Uint64 // solves answered by one sequential instance
	inFlightWorkers  atomic.Int64  // solver workers currently running, all modes

	screenAccepts      atomic.Uint64 // LP screen answered feasible (witness replayed)
	screenRejects      atomic.Uint64 // LP screen answered infeasible (Farkas certified)
	screenInconclusive atomic.Uint64 // screens that fell through to the SMT tier
	screenNanos        atomic.Uint64 // total wall time spent screening, definitive or not

	screenCacheHits   atomic.Uint64 // screen instances answered from the verdict cache
	screenCacheMisses atomic.Uint64 // screen instances that had to run the LP tier
}

// trackWorkers bumps the in-flight-workers gauge for one solve and returns
// the matching decrement; callers defer it around the solver call.
func (m *metrics) trackWorkers(n int) func() {
	m.inFlightWorkers.Add(int64(n))
	return func() { m.inFlightWorkers.Add(-int64(n)) }
}

// Metrics is the GET /metrics body.
type Metrics struct {
	Requests     uint64 `json:"requests"`
	BadRequests  uint64 `json:"badRequests"`
	Shed429      uint64 `json:"shed429"`
	Shed503      uint64 `json:"shed503"`
	Feasible     uint64 `json:"feasible"`
	Infeasible   uint64 `json:"infeasible"`
	Inconclusive uint64 `json:"inconclusive"`
	Retries      uint64 `json:"retries"`
	Poisoned     uint64 `json:"poisoned"`
	Panics       uint64 `json:"panics"`
	ProofErrors  uint64 `json:"proofErrors"`
	Queued       int    `json:"queued"`

	PortfolioChecks  uint64 `json:"portfolioChecks"`
	CubeRuns         uint64 `json:"cubeRuns"`
	SequentialSolves uint64 `json:"sequentialSolves"`
	InFlightWorkers  int64  `json:"inFlightWorkers"`

	Sweeps         uint64 `json:"sweeps"`
	SweepItems     uint64 `json:"sweepItems"`
	EncodersClosed uint64 `json:"encodersClosed"`

	// Screening-tier figures: accepts/rejects are definitive answers the
	// SMT tier never saw; inconclusive screens fell through. ScreenNanos is
	// the total wall time spent screening — divide by the three counters'
	// sum for the mean screening latency.
	ScreenAccepts      uint64 `json:"screenAccepts"`
	ScreenRejects      uint64 `json:"screenRejects"`
	ScreenInconclusive uint64 `json:"screenInconclusive"`
	ScreenNanos        uint64 `json:"screenNanos"`

	// Verdict-cache figures for the screening tier: hits re-served a
	// memoized screen outcome (definitive or inconclusive) without touching
	// the LP; misses paid for a fresh screen.
	ScreenCacheHits   uint64 `json:"screenCacheHits"`
	ScreenCacheMisses uint64 `json:"screenCacheMisses"`

	// Sched reports the work-unit scheduler: units run by workers vs. inline
	// by helping flows, units discarded by admission aborts, and the current
	// queue depth and occupancy.
	Sched struct {
		FlowsOpened  uint64 `json:"flowsOpened"`
		UnitsRun     uint64 `json:"unitsRun"`
		UnitsInline  uint64 `json:"unitsInline"`
		UnitsAborted uint64 `json:"unitsAborted"`
		Queued       int    `json:"queued"`
		Running      int    `json:"running"`
	} `json:"sched"`

	// Supports reports the cross-request cube support-pool registry: hits
	// mean a synthesis run started with blocking clauses harvested by an
	// earlier request on the same attack model.
	Supports struct {
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Evictions uint64 `json:"evictions"`
		Entries   int    `json:"entries"`
	} `json:"supports"`

	Pool struct {
		Hits          uint64 `json:"hits"`
		Misses        uint64 `json:"misses"`
		BuildFailures uint64 `json:"buildFailures"`
		Returns       uint64 `json:"returns"`
		Discards      uint64 `json:"discards"`
		ResetFailures uint64 `json:"resetFailures"`
		Evictions     uint64 `json:"evictions"`
		EvictedBytes  uint64 `json:"evictedBytes"`
		Live          int    `json:"live"`
		Idle          int    `json:"idle"`
		IdleBytes     int64  `json:"idleBytes"`
	} `json:"pool"`
}

func (m *metrics) snapshot(ps pool.Stats, queued int, ss sched.Stats, rs pool.RegistryStats) *Metrics {
	out := &Metrics{
		Requests:     m.requests.Load(),
		BadRequests:  m.badRequests.Load(),
		Shed429:      m.shed429.Load(),
		Shed503:      m.shed503.Load(),
		Feasible:     m.feasible.Load(),
		Infeasible:   m.infeasible.Load(),
		Inconclusive: m.inconclusive.Load(),
		Retries:      m.retries.Load(),
		Poisoned:     m.poisoned.Load(),
		Panics:       m.panics.Load(),
		ProofErrors:  m.proofErrors.Load(),
		Queued:       queued,

		PortfolioChecks:  m.portfolioChecks.Load(),
		CubeRuns:         m.cubeRuns.Load(),
		SequentialSolves: m.sequentialSolves.Load(),
		InFlightWorkers:  m.inFlightWorkers.Load(),

		Sweeps:         m.sweeps.Load(),
		SweepItems:     m.sweepItems.Load(),
		EncodersClosed: m.encodersClosed.Load(),

		ScreenAccepts:      m.screenAccepts.Load(),
		ScreenRejects:      m.screenRejects.Load(),
		ScreenInconclusive: m.screenInconclusive.Load(),
		ScreenNanos:        m.screenNanos.Load(),

		ScreenCacheHits:   m.screenCacheHits.Load(),
		ScreenCacheMisses: m.screenCacheMisses.Load(),
	}
	out.Sched.FlowsOpened = ss.FlowsOpened
	out.Sched.UnitsRun = ss.UnitsRun
	out.Sched.UnitsInline = ss.UnitsInline
	out.Sched.UnitsAborted = ss.UnitsAborted
	out.Sched.Queued = ss.Queued
	out.Sched.Running = ss.Running
	out.Supports.Hits = rs.Hits
	out.Supports.Misses = rs.Misses
	out.Supports.Evictions = rs.Evictions
	out.Supports.Entries = rs.Entries
	out.Pool.Hits = ps.Hits
	out.Pool.Misses = ps.Misses
	out.Pool.BuildFailures = ps.BuildFailures
	out.Pool.Returns = ps.Returns
	out.Pool.Discards = ps.Discards
	out.Pool.ResetFailures = ps.ResetFailures
	out.Pool.Evictions = ps.Evictions
	out.Pool.EvictedBytes = ps.EvictedBytes
	out.Pool.Live = ps.Live
	out.Pool.Idle = ps.Idle
	out.Pool.IdleBytes = ps.IdleBytes
	return out
}
