// Package service is the fault-tolerant attack-analytics server behind
// cmd/segridd: verification, countermeasure synthesis and certificate
// re-checking as long-running HTTP endpoints over the paper's analysis
// stack.
//
// The robustness substrate, in one place:
//
//   - Warm encoders live in a pool (package pool) keyed by grid topology ×
//     attack-model shape. A healthy check returns its encoder; any check
//     that ends Unknown, panics, or trips a scope mismatch quarantines it —
//     a poisoned encoder is never reused.
//   - Every request decomposes into work units on the shared scheduler
//     (package sched): a verify is one unit, a sweep one unit per
//     encoder-compatibility group, a portfolio race one fork unit per
//     worker. A fixed worker set drains units with deficit-round-robin
//     fairness across requests, so a large sweep interleaves with small
//     verifies instead of blocking them, and portfolio forks from many
//     requests share one pool of workers instead of private fleets.
//   - Admission control bounds the waiting queue and how long a request
//     may wait for its first unit to start. Excess load is shed with
//     429/503 plus Retry-After — an overloaded server refuses work, it
//     never guesses an answer.
//   - Every request carries a deadline that propagates into the solver; an
//     expired check reports inconclusive with a machine-readable reason.
//   - A retry ladder falls back from the warm incremental encoder to a
//     fresh per-check encoding before reporting inconclusive, so transient
//     encoder trouble costs latency, not soundness.
//   - Certificate streams are per-request files staged in hidden
//     temporaries and renamed into place only when complete; a crash or a
//     failing sink never publishes a torn certificate.
//
// A faultinject.Schedule can be installed to drive all of the above
// deterministically in tests.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"segrid/internal/core"
	"segrid/internal/faultinject"
	"segrid/internal/pool"
	"segrid/internal/proof"
	"segrid/internal/scenariofile"
	"segrid/internal/sched"
	"segrid/internal/smt"
	"segrid/internal/synth"
)

// Config parameterizes a Service. The zero value is usable: defaults are
// applied by New.
type Config struct {
	// MaxConcurrent bounds simultaneously running solves (default 4). The
	// solver is CPU-bound; admitting more checks than cores buys latency,
	// not throughput. It is the default for SchedWorkers.
	MaxConcurrent int
	// SchedWorkers is the scheduler's worker count — the fixed set of
	// goroutines draining work units from every request with
	// deficit-round-robin fairness (default MaxConcurrent). Per-request
	// portfolio/cubeWorkers knobs are fairness weights on this shared set,
	// not private fleets.
	SchedWorkers int
	// MaxQueue bounds requests waiting for their first work unit to start
	// (default 16). A request arriving past it is shed immediately with 429.
	MaxQueue int
	// QueueWait bounds how long an admitted request waits for its first
	// unit to start (default 2s); past it the request is shed with 503.
	QueueWait time.Duration
	// DefaultTimeout and MaxTimeout bound per-request wall clock (defaults
	// 30s and 2m). A request's timeoutMs is clamped to MaxTimeout.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Budget bounds each solver check (zero: wall clock only). Exhaustion
	// is an inconclusive answer with the budget kind, never a guess.
	Budget smt.Budget
	// ProofDir enables certificate production and checking; empty disables
	// the proof features. The directory must exist.
	ProofDir string
	// PoolMaxLive / PoolMaxIdlePerKey / PoolMaxIdle / PoolMaxIdleBytes size
	// the warm-encoder pool and its cross-key LRU idle budgets (see
	// pool.Config). Zero: pool defaults (PoolMaxIdleBytes zero disables the
	// byte budget).
	PoolMaxLive       int
	PoolMaxIdlePerKey int
	PoolMaxIdle       int
	PoolMaxIdleBytes  int64
	// MaxSweepItems bounds the item count of one /v1/sweep request
	// (default 256): a sweep holds its solve slot for the whole batch, so
	// batch size is an operator decision, not a client one.
	MaxSweepItems int
	// Faults, when non-nil, installs the deterministic fault-injection
	// schedule: every check draws a Decision applied through the solver's
	// interruption points and the certificate sink. Test harness only.
	Faults *faultinject.Schedule
	// Portfolio is the default portfolio worker count for verification
	// requests: 0 or 1 answers sequentially, > 1 races that many diversified
	// solver instances, < 0 picks the GOMAXPROCS-aware default. Requests
	// override it with their "portfolio" field.
	Portfolio int
	// CubeWorkers is the default cube-and-conquer worker count for
	// bus-granular synthesis requests (same convention as Portfolio;
	// requests override it with "cubeWorkers").
	CubeWorkers int
	// MaxWorkersPerRequest clamps any per-request worker count (default 8):
	// a client cannot fan one request wider than the operator allows.
	MaxWorkersPerRequest int
	// Screen enables the LP-relaxation screening tier (internal/screen):
	// each verify request and sweep item is first screened under the
	// screen's default pivot budget, and a definitive screen verdict is
	// answered without leasing an encoder or running the SMT solver.
	// Inconclusive screens fall through unchanged. Requests override it
	// with their "screen" field.
	Screen bool
	// ScreenCacheSize bounds the screen-verdict LRU cache: screening
	// outcomes are memoized across requests keyed by (topology, goal,
	// bounds) and consulted before any work unit is scheduled. 0 selects
	// the default of 1024 entries; negative disables the cache.
	ScreenCacheSize int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.SchedWorkers <= 0 {
		c.SchedWorkers = c.MaxConcurrent
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxWorkersPerRequest <= 0 {
		c.MaxWorkersPerRequest = 8
	}
	if c.MaxSweepItems <= 0 {
		c.MaxSweepItems = 256
	}
	return c
}

// effectiveWorkers resolves a per-request worker override against the
// configured default and the per-request clamp: asked == 0 takes the server
// default, negative counts select smt.DefaultWorkers().
func (s *Service) effectiveWorkers(asked, def int) int {
	n := def
	if asked != 0 {
		n = asked
	}
	if n < 0 {
		n = smt.DefaultWorkers()
	}
	if n > s.cfg.MaxWorkersPerRequest {
		n = s.cfg.MaxWorkersPerRequest
	}
	return n
}

// warmModel is the pooled item: one encoded attack model plus the spec it
// was built from, kept to detect key-hash collisions on reuse.
type warmModel struct {
	model *core.Model
	spec  *scenariofile.AttackSpec
}

// Service is the analytics server. Construct with New; register its Handler
// on an http.Server.
type Service struct {
	cfg      Config
	pool     *pool.Pool[*warmModel]
	sched    *sched.Scheduler
	screens  *screenCache
	supports *pool.Registry[*synth.SupportPool] // cube supports keyed by attack model
	wait     atomic.Int64                       // requests admitted but not yet started
	specs    sync.Map                           // pool.Key → *scenariofile.AttackSpec
	m        metrics
	start    time.Time
}

// New constructs a Service.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		sched:    sched.New(sched.Config{Workers: cfg.SchedWorkers}),
		screens:  newScreenCache(cfg.ScreenCacheSize),
		supports: pool.NewRegistry[*synth.SupportPool](0),
		start:    time.Now(),
	}
	p, err := pool.New(pool.Config[*warmModel]{
		MaxLive:       cfg.PoolMaxLive,
		MaxIdlePerKey: cfg.PoolMaxIdlePerKey,
		MaxIdle:       cfg.PoolMaxIdle,
		MaxIdleBytes:  cfg.PoolMaxIdleBytes,
		New:           s.buildModel,
		Reset:         resetModel,
		Close:         s.closeModel,
		Size:          modelSize,
	})
	if err != nil {
		return nil, err
	}
	s.pool = p
	return s, nil
}

// buildModel is the pool's cold-build hook: it looks the key's spec up in
// the registry and encodes the attack model. The requesting check's context
// flows into the encoding stages, so a build queued behind a cancelled or
// deadline-expired request stops instead of completing dead work; callers
// map the resulting error to an inconclusive answer, not a client error.
func (s *Service) buildModel(ctx context.Context, key pool.Key) (*warmModel, error) {
	v, ok := s.specs.Load(key)
	if !ok {
		return nil, fmt.Errorf("service: no spec registered for pool key %+v", key)
	}
	spec := v.(*scenariofile.AttackSpec)
	sc, err := spec.Scenario()
	if err != nil {
		return nil, err
	}
	m, err := core.NewModelContext(ctx, sc)
	if err != nil {
		return nil, err
	}
	return &warmModel{model: m, spec: spec}, nil
}

// resetModel validates a returning encoder: the overlay scope must have
// unwound to base. A leftover scope means the request path tore — the
// encoder is quarantined by the pool.
func resetModel(wm *warmModel) error {
	if n := wm.model.Solver().NumScopes(); n != 1 {
		return fmt.Errorf("service: encoder scope stack not at base (%d scopes)", n)
	}
	return nil
}

// closeModel is the pool's drop hook: it tears down an encoder leaving the
// pool's accounting on any path (LRU eviction, Reset-failure quarantine,
// Discard, shutdown Drain). The model holds no OS resources — releasing the
// references and letting the GC reclaim the solver arenas is the teardown —
// but running it through the hook keeps teardown observable (the
// encodersClosed counter) and guards against a dropped encoder being reused
// through a stale reference.
func (s *Service) closeModel(wm *warmModel) {
	s.m.encodersClosed.Add(1)
	wm.model = nil
	wm.spec = nil
}

// modelSize is the pool's cost hook for the idle byte budget: heap bytes
// allocated by the encoder's last encode+solve, a deliberate over-estimate
// of retained size (allocation includes transient solve garbage) that scales
// with case size, which is what a relative eviction budget needs.
func modelSize(wm *warmModel) int64 {
	if wm.model == nil {
		return 0
	}
	return int64(wm.model.Solver().LastStats().AllocBytes)
}

// Handler returns the service's HTTP routes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	mux.HandleFunc("POST /v1/proofcheck", s.handleProofCheck)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Close stops the scheduler (queued units drain; new submissions are
// refused) and then drains the warm pool. Outstanding requests finish on
// their leased encoders; call after the HTTP server has shut down.
func (s *Service) Close() {
	s.sched.Close()
	s.pool.Drain()
}

// PoolStats exposes the warm-pool counters (tests and /metrics).
func (s *Service) PoolStats() pool.Stats { return s.pool.Stats() }

// SchedStats exposes the work-unit scheduler counters (tests and /metrics).
func (s *Service) SchedStats() sched.Stats { return s.sched.Stats() }

// Verify answers one verification request in-process, bypassing HTTP
// transport and admission shedding — the benchmark harness's entry point
// for measuring the solve path alone. The work still runs as scheduler
// units, so in-process calls share the worker set and fairness policy with
// HTTP traffic; verdict semantics are identical.
func (s *Service) Verify(ctx context.Context, req *VerifyRequest) (*VerifyResponse, error) {
	resp, herr := s.verify(ctx, req, nil)
	if herr != nil {
		return nil, fmt.Errorf("verify: %s (http %d)", herr.msg, herr.status)
	}
	return resp, nil
}

// Sweep answers one batched sweep in-process (see Verify).
func (s *Service) Sweep(ctx context.Context, req *SweepRequest) (*SweepResponse, error) {
	resp, herr := s.sweep(ctx, req, nil)
	if herr != nil {
		return nil, fmt.Errorf("sweep: %s (http %d)", herr.msg, herr.status)
	}
	return resp, nil
}

// shedDelay is the single clamped Retry-After computation every shed path
// shares: a shed client should come back after roughly one queue-drain
// interval, whichever status told it to go away. Clamped below at 50ms so a
// zero/absurd QueueWait never advertises an immediate hammer-retry.
func (s *Service) shedDelay() time.Duration {
	d := s.cfg.QueueWait
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// admit implements the bounded admission queue's front half: a request past
// the queue bound is shed immediately with 429. On success the caller owes
// one s.wait decrement, normally paid by the httpAdmit watcher.
func (s *Service) admit(w http.ResponseWriter) bool {
	if s.wait.Add(1) > int64(s.cfg.MaxQueue) {
		s.wait.Add(-1)
		s.m.shed429.Add(1)
		writeShed(w, http.StatusTooManyRequests, "admission queue full", s.shedDelay())
		return false
	}
	return true
}

// httpAdmit is the HTTP back half of admission: a watcher over the request's
// flow that sheds with 503 when no scheduler worker starts a unit within the
// queue wait, and with 499 when the client goes away first. An Abort that
// loses its race (a unit started concurrently) falls through to normal
// processing — the work is running; shedding now would waste it. Called with
// a nil flow (the screening tier answered without scheduling anything) it
// only settles the wait counter. The returned statuses are terminal: the
// caller writes them and must not Wait on the flow, whose queue the winning
// Abort emptied.
func (s *Service) httpAdmit(r *http.Request) func(fl *sched.Flow) *handlerError {
	return func(fl *sched.Flow) *handlerError {
		defer s.wait.Add(-1)
		if fl == nil {
			return nil
		}
		t := time.NewTimer(s.cfg.QueueWait)
		defer t.Stop()
		select {
		case <-fl.Started():
			return nil
		case <-t.C:
			if fl.Abort() {
				return &handlerError{http.StatusServiceUnavailable, "no solve slot within queue wait"}
			}
			<-fl.Started()
			return nil
		case <-r.Context().Done():
			if fl.Abort() {
				return &handlerError{499, "client went away while queued"}
			}
			<-fl.Started()
			return nil
		}
	}
}

// requestContext applies the clamped per-request deadline.
func (s *Service) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	var req VerifyRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad verify request: %v", err))
		return
	}
	if req.Proof && s.cfg.ProofDir == "" {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "proof requested but the server has no proof directory")
		return
	}
	if !s.admit(w) {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	start := time.Now()
	resp, herr := s.verify(ctx, &req, s.httpAdmit(r))
	if herr != nil {
		switch herr.status {
		case http.StatusServiceUnavailable:
			s.m.shed503.Add(1)
			writeShed(w, herr.status, herr.msg, s.shedDelay())
		case http.StatusBadRequest:
			s.m.badRequests.Add(1)
			writeError(w, herr.status, herr.msg)
		default:
			writeError(w, herr.status, herr.msg)
		}
		return
	}
	resp.ElapsedMs = time.Since(start).Milliseconds()
	s.countVerdict(resp.Status)
	writeJSON(w, http.StatusOK, resp)
}

// countVerdict folds one verification verdict into the service ledger.
func (s *Service) countVerdict(status string) {
	switch status {
	case "feasible":
		s.m.feasible.Add(1)
	case "infeasible":
		s.m.infeasible.Add(1)
	default:
		s.m.inconclusive.Add(1)
	}
}

// handleSweep answers one batched scenario sweep. The sweep schedules one
// work unit per encoder-compatibility group, costed by item count, so
// groups from a large sweep interleave with other requests' units under the
// scheduler's fairness policy; the ledger counts every per-item verdict.
func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	var req SweepRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad sweep request: %v", err))
		return
	}
	if !s.admit(w) {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	start := time.Now()
	resp, herr := s.sweep(ctx, &req, s.httpAdmit(r))
	if herr != nil {
		switch herr.status {
		case http.StatusServiceUnavailable:
			s.m.shed503.Add(1)
			writeShed(w, herr.status, herr.msg, s.shedDelay())
		case http.StatusBadRequest:
			s.m.badRequests.Add(1)
			writeError(w, herr.status, herr.msg)
		default:
			writeError(w, herr.status, herr.msg)
		}
		return
	}
	resp.ElapsedMs = time.Since(start).Milliseconds()
	s.m.sweeps.Add(1)
	s.m.sweepItems.Add(uint64(len(resp.Items)))
	for _, item := range resp.Items {
		s.countVerdict(item.Status)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	var req SynthesizeRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad synthesize request: %v", err))
		return
	}
	if req.Proof && s.cfg.ProofDir == "" {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "proof requested but the server has no proof directory")
		return
	}
	if !s.admit(w) {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	start := time.Now()
	resp, herr := s.synthesize(ctx, &req, s.httpAdmit(r))
	if herr != nil {
		switch herr.status {
		case http.StatusServiceUnavailable:
			s.m.shed503.Add(1)
			writeShed(w, herr.status, herr.msg, s.shedDelay())
		case 499:
			writeError(w, herr.status, herr.msg)
		default:
			s.m.badRequests.Add(1)
			writeError(w, herr.status, herr.msg)
		}
		return
	}
	resp.ElapsedMs = time.Since(start).Milliseconds()
	writeJSON(w, http.StatusOK, resp)
}

// synthesize runs one synthesis request. Synthesis manages its own solver
// lifecycle (a persistent selection model plus per-run verification
// models), so it does not use the warm pool; it runs as a single scheduler
// unit costed and weighted by its worker count (a cube fleet's workers run
// on the unit's goroutine plus its own fan-out — a documented
// oversubscription of the scheduler bound, priced into the unit's cost).
// admit follows the flow-admission contract described on Service.verify.
func (s *Service) synthesize(ctx context.Context, req *SynthesizeRequest, admit func(*sched.Flow) *handlerError) (*SynthesizeResponse, *handlerError) {
	if admit == nil {
		admit = func(*sched.Flow) *handlerError { return nil }
	}
	spec := req.Synthesis
	workers := s.effectiveWorkers(req.CubeWorkers, s.cfg.CubeWorkers)
	if spec.MeasurementGranular() {
		// The measurement-granular loop has no cube mode; it always runs
		// sequentially.
		workers = 1
	}
	fl := s.sched.NewFlow(workers)
	var (
		resp *SynthesizeResponse
		herr *handlerError
	)
	if err := fl.Submit(workers, func() { resp, herr = s.synthesizeUnit(ctx, req, workers) }); err != nil {
		_ = admit(nil)
		return nil, &handlerError{http.StatusServiceUnavailable, "scheduler shutting down"}
	}
	if aerr := admit(fl); aerr != nil {
		return nil, aerr
	}
	fl.Wait()
	return resp, herr
}

// synthesizeUnit is the body of a synthesis work unit.
func (s *Service) synthesizeUnit(ctx context.Context, req *SynthesizeRequest, workers int) (*SynthesizeResponse, *handlerError) {
	spec := req.Synthesis
	tag := proof.UniqueName("req", "")
	if workers > 1 {
		s.m.cubeRuns.Add(1)
	} else {
		s.m.sequentialSolves.Add(1)
	}
	defer s.m.trackWorkers(workers)()
	if spec.MeasurementGranular() {
		mreq, err := spec.MeasurementRequirements()
		if err != nil {
			return nil, &handlerError{http.StatusBadRequest, err.Error()}
		}
		if req.Proof {
			mreq.ProofDir = s.cfg.ProofDir
			mreq.ProofTag = tag
		}
		arch, err := synth.SynthesizeMeasurementsContext(ctx, mreq)
		if err != nil {
			return synthFailure(err)
		}
		return &SynthesizeResponse{
			Status:              "found",
			SecuredMeasurements: arch.SecuredMeasurements,
			Iterations:          arch.Iterations,
			ProofFiles:          arch.ProofFiles,
		}, nil
	}
	sreq, err := spec.Requirements()
	if err != nil {
		return nil, &handlerError{http.StatusBadRequest, err.Error()}
	}
	if req.Proof {
		sreq.ProofDir = s.cfg.ProofDir
		sreq.ProofTag = tag
	}
	if workers > 1 {
		sreq.CubeWorkers = workers
		// Cube runs on the same attack model share one persistent support
		// pool: blocking clauses harvested from verification counterexamples
		// are facts about the attack scenario alone (never about the
		// defender's budget or exclusions), so a later request with a
		// different budget starts from every support earlier requests paid
		// to discover. Keyed by the attack spec's fingerprint; a key error
		// just leaves the run on a private pool.
		if key, err := poolKey(&spec.Attack); err == nil {
			sreq.SupportPool = s.supports.GetOrCreate(key, synth.NewSupportPool)
		}
	}
	arch, err := synth.SynthesizeContext(ctx, sreq)
	if err != nil {
		return synthFailure(err)
	}
	return &SynthesizeResponse{
		Status:       "found",
		SecuredBuses: arch.SecuredBuses,
		Iterations:   arch.Iterations,
		ProofFiles:   arch.ProofFiles,
	}, nil
}

// synthFailure maps synthesis outcomes that are answers, not errors:
// impossibility is a proof, exhaustion is inconclusive.
func synthFailure(err error) (*SynthesizeResponse, *handlerError) {
	switch {
	case errors.Is(err, synth.ErrNoArchitecture):
		return &SynthesizeResponse{Status: "impossible", Why: err.Error()}, nil
	case errors.Is(err, synth.ErrBudgetExhausted),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return &SynthesizeResponse{Status: "inconclusive", Why: err.Error()}, nil
	default:
		return nil, &handlerError{http.StatusBadRequest, err.Error()}
	}
}

func (s *Service) handleProofCheck(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	if s.cfg.ProofDir == "" {
		writeError(w, http.StatusBadRequest, "the server has no proof directory")
		return
	}
	var req ProofCheckRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad proofcheck request: %v", err))
		return
	}
	// Resolve strictly inside the proof directory: certificate names only,
	// no traversal, no absolute paths.
	if req.Path == "" || filepath.IsAbs(req.Path) {
		writeError(w, http.StatusBadRequest, "path must be relative to the proof directory")
		return
	}
	clean := filepath.Clean(req.Path)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		writeError(w, http.StatusBadRequest, "path escapes the proof directory")
		return
	}
	rep, err := proof.CheckFile(filepath.Join(s.cfg.ProofDir, clean))
	if err != nil {
		writeJSON(w, http.StatusOK, &ProofCheckResponse{Valid: false, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, &ProofCheckResponse{
		Valid:        true,
		Records:      rep.Records,
		UnsatChecks:  rep.UnsatChecks,
		TheoryLemmas: rep.TheoryLemmas,
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": int64(time.Since(s.start) / time.Second),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.snapshot(
		s.pool.Stats(), int(s.wait.Load()), s.sched.Stats(), s.supports.Stats()))
}

// handlerError carries an HTTP status through the request pipeline.
type handlerError struct {
	status int
	msg    string
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, &errorResponse{Error: msg})
}

// writeShed answers a load-shed: the request was refused, not mis-answered.
// The Retry-After header (and the mirrored JSON field) is the wait rounded
// up to whole seconds as the header grammar requires — never truncated to 0,
// which would invite an immediate retry storm; retryAfterMs carries the
// exact wait for clients that honor sub-second precision.
func writeShed(w http.ResponseWriter, status int, msg string, wait time.Duration) {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, &errorResponse{
		Error:             msg,
		RetryAfterSeconds: secs,
		RetryAfterMs:      wait.Milliseconds(),
	})
}
