package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"segrid/internal/core"
	"segrid/internal/faultinject"
	"segrid/internal/pool"
	"segrid/internal/proof"
	"segrid/internal/scenariofile"
	"segrid/internal/sched"
	"segrid/internal/screen"
	"segrid/internal/smt"
)

// verify answers one verification request: the screening tier first (on the
// request goroutine, consulting the screen-verdict cache — a definitive
// screen never schedules anything), then one scheduler work unit running
// the retry ladder:
//
//  1. a warm pooled encoder, with the per-request overlay asserted in a
//     solver scope — the cheap path;
//  2. on a retryable failure (budget kind, injected interruption, panic,
//     scope mismatch), a fresh per-check encoder — the trustworthy path;
//  3. only then an inconclusive answer carrying the machine-readable
//     reason.
//
// A non-retryable failure (the request's own deadline or cancellation)
// short-circuits to inconclusive: retrying against an expired deadline
// cannot succeed. At no point does a failure turn into a guessed verdict.
//
// admit, when non-nil, is called exactly once after the request's units (if
// any) are submitted — with the flow, or with nil when screening answered
// without scheduling. A non-nil admit error means the flow was aborted
// before starting (queue-wait shed, client gone); verify returns it without
// waiting.
func (s *Service) verify(ctx context.Context, req *VerifyRequest, admit func(*sched.Flow) *handlerError) (*VerifyResponse, *handlerError) {
	if admit == nil {
		admit = func(*sched.Flow) *handlerError { return nil }
	}
	ov := &overlay{
		securedBuses:        req.SecuredBuses,
		securedMeasurements: req.SecuredMeasurements,
	}
	workers := s.effectiveWorkers(req.Portfolio, s.cfg.Portfolio)
	if s.screenEnabled(req.Screen) && !req.Proof && !req.FreshEncode {
		// The screening tier answers ahead of the whole encoder machinery:
		// no pool key, no lease, no SMT work, no scheduled unit. Proof
		// requests skip it (the client wants the solver's certificate
		// stream), as do differential freshEncode requests.
		if r := s.screenItem(ctx, &req.Attack, ov); r != nil {
			_ = admit(nil)
			return r, nil
		}
	}
	fl := s.sched.NewFlow(workers)
	var (
		resp *VerifyResponse
		herr *handlerError
	)
	if err := fl.Submit(1, func() { resp, herr = s.verifySolve(ctx, fl, req, ov, workers) }); err != nil {
		_ = admit(nil)
		return nil, &handlerError{http.StatusServiceUnavailable, "scheduler shutting down"}
	}
	if aerr := admit(fl); aerr != nil {
		return nil, aerr
	}
	fl.Wait()
	return resp, herr
}

// verifySolve is the body of a verification work unit: the warm-pool path
// with the warm→fresh retry ladder. fl is the unit's own flow, used to
// schedule portfolio fork units.
func (s *Service) verifySolve(ctx context.Context, fl *sched.Flow, req *VerifyRequest, ov *overlay, workers int) (*VerifyResponse, *handlerError) {
	if req.Proof || req.FreshEncode {
		// Certificate streams capture a solver lifetime; differential
		// requests want no shared state. Both bypass the pool.
		return s.verifyFresh(ctx, fl, &req.Attack, ov, workers, req.Proof, 0)
	}
	key, herr := s.keyFor(&req.Attack)
	if herr != nil {
		return nil, herr
	}
	if key == (pool.Key{}) {
		// A key-hash collision between distinct specs: never share an
		// encoder across models. Fall back to a fresh encoding.
		return s.verifyFresh(ctx, fl, &req.Attack, ov, workers, false, 0)
	}
	lease, err := s.pool.Checkout(ctx, key)
	if errors.Is(err, pool.ErrExhausted) {
		return nil, &handlerError{http.StatusServiceUnavailable, "encoder pool exhausted"}
	}
	if err != nil {
		if ctx.Err() != nil {
			// The cold build was abandoned because this request's deadline
			// expired or it was cancelled — an inconclusive answer, not a
			// client error.
			return ctxExpired(ctx.Err()), nil
		}
		return nil, &handlerError{http.StatusBadRequest, err.Error()}
	}
	res, herr, poisoned := s.checkWarm(ctx, fl, lease.Item.model, ov, workers)
	if poisoned {
		s.m.poisoned.Add(1)
		_ = lease.Discard()
	} else {
		_ = lease.Return()
	}
	if herr != nil {
		return nil, herr
	}
	if res != nil && !res.Inconclusive {
		return s.buildResponse(res, lease.Warm(), 0), nil
	}
	// Decide whether the failure is worth a fresh-encoder retry.
	retryable := res == nil // a panic is encoder trouble, not request trouble
	if res != nil {
		retryable = res.Stats.Unknown.Retryable()
	}
	if !retryable || ctx.Err() != nil {
		return s.buildResponse(res, lease.Warm(), 0), nil
	}
	s.m.retries.Add(1)
	return s.verifyFresh(ctx, fl, &req.Attack, ov, workers, false, 1)
}

// flowSpawn adapts a request's flow into smt.PortfolioOptions.Spawn: each
// racing fork becomes a cost-1 unit on the flow, so forks from concurrent
// portfolio requests share the scheduler's workers under the same fairness
// policy instead of spawning private goroutine fleets. The orchestrating
// unit's goroutine helps drain its own queue inline before blocking — the
// guarantee that fork units always progress even when every scheduler
// worker is busy orchestrating (the classic nested-fork-join deadlock
// cannot form: waiting orchestrators do the forks' work themselves). A
// Submit refused by a closing scheduler falls back to running the fork
// inline, preserving the exactly-once contract.
func flowSpawn(fl *sched.Flow) func(tasks []func()) {
	return func(tasks []func()) {
		var wg sync.WaitGroup
		for _, task := range tasks {
			task := task
			wg.Add(1)
			wrapped := func() { defer wg.Done(); task() }
			if err := fl.Submit(1, wrapped); err != nil {
				wrapped()
			}
		}
		for fl.TryRunQueued() {
		}
		wg.Wait()
	}
}

// keyFor fingerprints spec into its pool key and registers the spec for the
// pool's cold-build hook. A key-hash collision against a different
// registered spec returns the zero Key: the caller must not share an
// encoder and falls back to fresh encoding.
func (s *Service) keyFor(spec *scenariofile.AttackSpec) (pool.Key, *handlerError) {
	key, err := poolKey(spec)
	if err != nil {
		return pool.Key{}, &handlerError{http.StatusBadRequest, err.Error()}
	}
	if prev, loaded := s.specs.LoadOrStore(key, spec); loaded {
		if !specEqual(prev.(*scenariofile.AttackSpec), spec) {
			return pool.Key{}, nil
		}
	}
	return key, nil
}

// checkWarm runs one check on a leased warm encoder. The overlay is
// asserted inside a Push/Pop scope; the boolean result reports whether the
// encoder must be quarantined (Unknown result, panic, failed Pop — any
// ending after which its internal state cannot be trusted).
func (s *Service) checkWarm(ctx context.Context, fl *sched.Flow, m *core.Model, ov *overlay, workers int) (res *core.Result, herr *handlerError, poisoned bool) {
	sv := m.Solver()
	sv.SetBudget(s.cfg.Budget)
	var dec faultinject.Decision
	haveDec := s.cfg.Faults != nil
	if haveDec {
		dec = s.cfg.Faults.Next()
		sv.SetInterrupter(faultinject.NewInjector(dec))
		defer sv.SetInterrupter(nil)
	}
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Add(1)
			res, herr, poisoned = nil, nil, true
		}
	}()
	sv.Push()
	if err := applyOverlay(m, ov); err != nil {
		// Invalid overlay is the caller's error; the encoder is fine once
		// the scope unwinds.
		if perr := sv.Pop(); perr != nil {
			return nil, &handlerError{http.StatusBadRequest, err.Error()}, true
		}
		return nil, &handlerError{http.StatusBadRequest, err.Error()}, false
	}
	res, err := s.checkModel(ctx, fl, m, workers, dec, haveDec)
	if err != nil {
		return nil, &handlerError{http.StatusInternalServerError, err.Error()}, true
	}
	if res.Inconclusive {
		// The solve was torn mid-flight; skip the Pop and quarantine.
		return res, nil, true
	}
	if err := sv.Pop(); err != nil {
		// The verdict predates the failed Pop and stands; the encoder does
		// not go back to the pool.
		return res, nil, true
	}
	return res, nil, false
}

// checkModel answers one verification check in the resolved solve mode: a
// sequential check, or a portfolio race when the worker count is above one.
// With a flow, the race's forks run as that flow's scheduler units — the
// shared cross-query portfolio pool — rather than a private goroutine
// fleet; clause exchange stays per-query either way. The per-mode counters
// and the in-flight-workers gauge cover the exact solver lifetime.
func (s *Service) checkModel(ctx context.Context, fl *sched.Flow, m *core.Model, workers int, dec faultinject.Decision, haveDec bool) (*core.Result, error) {
	if workers <= 1 {
		s.m.sequentialSolves.Add(1)
		defer s.m.trackWorkers(1)()
		return m.CheckContext(ctx)
	}
	s.m.portfolioChecks.Add(1)
	defer s.m.trackWorkers(workers)()
	po := smt.PortfolioOptions{Workers: workers}
	if fl != nil {
		po.Spawn = flowSpawn(fl)
	}
	if haveDec {
		// Interrupter state is per solver instance; every racing worker gets
		// its own injector replaying the same drawn decision.
		po.Interrupters = func(int) smt.Interrupter { return faultinject.NewInjector(dec) }
	}
	return m.CheckPortfolioContext(ctx, po)
}

// verifyFresh is the ladder's trustworthy rung: a throwaway FreshPerCheck
// encoder for spec with ov asserted, optionally streaming an UNSAT
// certificate to a per-request atomic file.
func (s *Service) verifyFresh(ctx context.Context, fl *sched.Flow, spec *scenariofile.AttackSpec, ov *overlay, workers int, wantProof bool, retries int) (*VerifyResponse, *handlerError) {
	sc, err := spec.Scenario()
	if err != nil {
		return nil, &handlerError{http.StatusBadRequest, err.Error()}
	}
	opts := smt.DefaultOptions()
	opts.FreshPerCheck = true
	opts.Budget = s.cfg.Budget
	var dec faultinject.Decision
	if s.cfg.Faults != nil {
		dec = s.cfg.Faults.Next()
		opts.Interrupter = faultinject.NewInjector(dec)
	}

	var (
		pw        *proof.Writer
		tmp       *os.File
		finalName string
	)
	if wantProof {
		f, err := os.CreateTemp(s.cfg.ProofDir, ".verify-*.tmp")
		if err != nil {
			return nil, &handlerError{http.StatusInternalServerError, fmt.Sprintf("stage certificate: %v", err)}
		}
		tmp = f
		pw = proof.NewWriter(dec.Wrap(f))
		opts.Proof = pw
		finalName = proof.UniqueName("verify-", ".proof")
	}
	sc.Options = &opts

	resp, herr := func() (resp *VerifyResponse, herr *handlerError) {
		defer func() {
			if r := recover(); r != nil {
				s.m.panics.Add(1)
				resp, herr = nil, &handlerError{http.StatusInternalServerError, fmt.Sprintf("solver panic: %v", r)}
			}
		}()
		m, err := core.NewModelContext(ctx, sc)
		if err != nil {
			if ctx.Err() != nil {
				// The fresh encoding was abandoned by this request's own
				// deadline or cancellation: an inconclusive answer.
				return ctxExpired(ctx.Err()), nil
			}
			return nil, &handlerError{http.StatusBadRequest, err.Error()}
		}
		if err := applyOverlay(m, ov); err != nil {
			return nil, &handlerError{http.StatusBadRequest, err.Error()}
		}
		res, err := s.checkModel(ctx, fl, m, workers, dec, s.cfg.Faults != nil)
		if err != nil {
			return nil, &handlerError{http.StatusInternalServerError, err.Error()}
		}
		return s.buildResponse(res, false, retries), nil
	}()

	if pw != nil {
		werr := pw.Close()
		if cerr := tmp.Close(); werr == nil {
			werr = cerr
		}
		infeasible := herr == nil && resp != nil && resp.Status == "infeasible"
		if infeasible && werr == nil {
			// Publish: the certificate is complete and certifies this very
			// verdict. Rename is atomic; a crash before it leaves only a
			// hidden temp.
			final := filepath.Join(s.cfg.ProofDir, finalName)
			if err := os.Rename(tmp.Name(), final); err != nil {
				_ = os.Remove(tmp.Name())
				resp.ProofError = err.Error()
			} else {
				resp.ProofFile = finalName
			}
		} else {
			// Feasible/inconclusive runs have nothing to certify; a failed
			// stream must never publish. The verdict itself is unaffected —
			// the solver does not abort on a failing proof sink.
			_ = os.Remove(tmp.Name())
			if infeasible && werr != nil {
				s.m.proofErrors.Add(1)
				resp.ProofError = fmt.Sprintf("certificate stream failed: %v", werr)
			}
		}
	}
	return resp, herr
}

// screenEnabled resolves a per-request screening override against the
// server default: nil keeps the configuration, non-nil wins either way.
func (s *Service) screenEnabled(override *bool) bool {
	if override != nil {
		return *override
	}
	return s.cfg.Screen
}

// screenItem runs the LP-relaxation screening tier on one (spec, overlay)
// instance, consulting the cross-request screen-verdict cache first. A
// definitive verdict comes back as a complete response with Screened set —
// the caller returns it and never touches the encoder pool or the
// scheduler. Anything else (inconclusive screen, malformed spec or overlay,
// screening error) returns nil: the SMT path runs as if the screen did not
// exist and reports its own errors, so screening never changes what a
// request can observe beyond latency.
//
// Cache hits count into the regular screen verdict counters (plus the hit
// counter), so the accept/reject/inconclusive ledger stays the tier's
// complete answer record whether a verdict was computed or remembered.
func (s *Service) screenItem(ctx context.Context, spec *scenariofile.AttackSpec, ov *overlay) *VerifyResponse {
	key := screenCacheKey(spec, ov)
	if cached, ok := s.screens.get(key); ok {
		s.m.screenCacheHits.Add(1)
		if cached == nil {
			s.m.screenInconclusive.Add(1)
			return nil
		}
		if cached.Feasible {
			s.m.screenAccepts.Add(1)
		} else {
			s.m.screenRejects.Add(1)
		}
		r := s.buildResponse(cached, false, 0)
		r.Screened = true
		return r
	}
	s.m.screenCacheMisses.Add(1)
	start := time.Now()
	sc, err := spec.Scenario()
	if err != nil {
		return nil
	}
	if err := overlayScenario(sc, ov); err != nil {
		return nil
	}
	res, err := core.ScreenScenario(ctx, sc, screen.Options{MaxPivots: screen.DefaultMaxPivots})
	s.m.screenNanos.Add(uint64(time.Since(start).Nanoseconds()))
	if err != nil || !res.Verdict.Definitive() {
		s.m.screenInconclusive.Add(1)
		if err == nil && ctx.Err() == nil {
			// A clean inconclusive is deterministic (the pivot cap, not the
			// clock, gave up) and worth remembering: repeats skip straight
			// to the SMT tier.
			s.screens.put(key, nil)
		}
		return nil
	}
	cres := core.ResultFromScreen(res)
	s.screens.put(key, cres)
	if res.Verdict == screen.Infeasible {
		s.m.screenRejects.Add(1)
	} else {
		s.m.screenAccepts.Add(1)
	}
	r := s.buildResponse(cres, false, 0)
	r.Screened = true
	return r
}

// overlayScenario folds a per-request overlay into a freshly built scenario
// — the screening tier's equivalent of applyOverlay, which asserts the same
// delta on an encoded model. Securing a bus means securing every
// measurement homed at it, exactly the semantics of the model-level
// bus-compromise indicator being forced false.
func overlayScenario(sc *core.Scenario, ov *overlay) error {
	for _, j := range ov.securedBuses {
		if err := sc.Meas.SecureBus(j); err != nil {
			return err
		}
	}
	if len(ov.securedMeasurements) > 0 {
		if err := sc.Meas.Secure(ov.securedMeasurements...); err != nil {
			return err
		}
	}
	// Overlay bounds are only ever tightenings (planItem re-specs anything
	// else), so replacing the scenario bound is exact.
	if ov.maxAltered > 0 {
		sc.MaxAlteredMeasurements = ov.maxAltered
	}
	if ov.maxBuses > 0 {
		sc.MaxCompromisedBuses = ov.maxBuses
	}
	return nil
}

// overlay is a per-check scoped delta asserted on top of an encoded model:
// extra integrity protections and/or tightened resource bounds. Everything
// an overlay can express only shrinks the feasible set, which is what makes
// answering it inside a Push/Pop scope on a shared warm encoder sound.
type overlay struct {
	securedBuses        []int
	securedMeasurements []int
	// maxAltered / maxBuses, when positive, layer scoped Eq. 22 / Eq. 24
	// cardinality bounds tighter than (or absent from) the encoded base
	// spec. Loosening a base bound is not expressible here — it requires a
	// different encoder.
	maxAltered int
	maxBuses   int
}

// applyOverlay asserts the overlay in the solver's current scope.
func applyOverlay(m *core.Model, ov *overlay) error {
	if len(ov.securedBuses) > 0 {
		if err := m.AssertBusesSecured(ov.securedBuses); err != nil {
			return err
		}
	}
	if len(ov.securedMeasurements) > 0 {
		if err := m.AssertMeasurementsSecured(ov.securedMeasurements); err != nil {
			return err
		}
	}
	if ov.maxAltered > 0 {
		if err := m.AssertMaxAlteredMeasurements(ov.maxAltered); err != nil {
			return err
		}
	}
	if ov.maxBuses > 0 {
		if err := m.AssertMaxCompromisedBuses(ov.maxBuses); err != nil {
			return err
		}
	}
	return nil
}

// buildResponse maps a core.Result onto the wire. A nil result (panic on
// the warm rung with no fresh retry possible) reports inconclusive.
func (s *Service) buildResponse(res *core.Result, warm bool, retries int) *VerifyResponse {
	resp := &VerifyResponse{Warm: warm, Retries: retries}
	if res == nil {
		resp.Status = "inconclusive"
		resp.Why = "solver panic on warm encoder"
		resp.UnknownReason = unknownToken(smt.ReasonOther)
		return resp
	}
	switch {
	case res.Inconclusive:
		resp.Status = "inconclusive"
		if res.Why != nil {
			resp.Why = res.Why.Error()
		}
		resp.UnknownReason = unknownToken(res.Stats.Unknown)
	case res.Feasible:
		resp.Status = "feasible"
		resp.AlteredMeasurements = res.AlteredMeasurements
		resp.CompromisedBuses = res.CompromisedBuses
		resp.ExcludedLines = res.ExcludedLines
		resp.IncludedLines = res.IncludedLines
		resp.StateChanges = ratMap(res.StateChanges)
	default:
		resp.Status = "infeasible"
	}
	return resp
}
