package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"segrid/internal/faultinject"
	"segrid/internal/scenariofile"
)

// obj2Spec is the paper's objective-2 case study (ieee14, target state 12):
// feasible as-is, infeasible once measurement 46 is secured. The test
// suite's ground truth.
func obj2Spec() scenariofile.AttackSpec {
	return scenariofile.AttackSpec{
		Case:        "ieee14",
		Untaken:     []int{5, 10, 14, 19, 22, 27, 30, 35, 43, 52},
		Targets:     []int{12},
		OnlyTargets: true,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

func post(t *testing.T, srv *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func verifyOn(t *testing.T, srv *httptest.Server, req VerifyRequest) *VerifyResponse {
	t.Helper()
	resp, raw := post(t, srv, "/v1/verify", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status %d: %s", resp.StatusCode, raw)
	}
	var out VerifyResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode: %v (%s)", err, raw)
	}
	return &out
}

// TestVerifyWarmReuseAndScopedOverlay checks the core service contract in
// one flow: verdicts are correct, requests sharing a spec reuse the warm
// encoder, and a per-request overlay neither leaks into later requests nor
// poisons the encoder.
func TestVerifyWarmReuseAndScopedOverlay(t *testing.T) {
	_, srv := newTestServer(t, Config{})

	r1 := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec()})
	if r1.Status != "feasible" || r1.Warm {
		t.Fatalf("first request = %+v, want cold feasible", r1)
	}
	// Same spec, secured measurement 46 overlaid: infeasible, on the warm
	// encoder from request 1.
	r2 := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec(), SecuredMeasurements: []int{46}})
	if r2.Status != "infeasible" || !r2.Warm {
		t.Fatalf("overlay request = %+v, want warm infeasible", r2)
	}
	// The overlay must be gone: the bare spec is feasible again, still warm.
	r3 := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec()})
	if r3.Status != "feasible" || !r3.Warm {
		t.Fatalf("post-overlay request = %+v, want warm feasible", r3)
	}
	if len(r3.AlteredMeasurements) == 0 {
		t.Fatalf("feasible verdict carries no attack vector")
	}
}

// TestVerifyFreshEncodeMatchesWarm is the service-level differential check:
// the fresh-per-check path must agree with the warm incremental path.
func TestVerifyFreshEncodeMatchesWarm(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	warm := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec(), SecuredMeasurements: []int{46}})
	fresh := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec(), SecuredMeasurements: []int{46}, FreshEncode: true})
	if warm.Status != fresh.Status {
		t.Fatalf("warm says %s, fresh says %s", warm.Status, fresh.Status)
	}
	if fresh.Warm {
		t.Fatalf("freshEncode answered from the warm pool")
	}
}

// TestVerifyDeadlineInconclusive checks an expired per-request deadline
// yields a machine-readable inconclusive answer, never a guess. The
// deadline is already in the past when the request arrives: a small "1ms"
// deadline raced the solve on fast idle machines (ieee118 can legitimately
// answer within a millisecond, which is sound but not what this test is
// about), so the in-process API is driven with a pre-expired context
// instead.
func TestVerifyDeadlineInconclusive(t *testing.T) {
	svc, _ := newTestServer(t, Config{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	r, err := svc.Verify(ctx, &VerifyRequest{
		Attack: scenariofile.AttackSpec{Case: "ieee118", AnyState: true},
	})
	if err != nil {
		t.Fatalf("verify under expired deadline errored: %v", err)
	}
	if r.Status != "inconclusive" {
		t.Fatalf("status = %s, want inconclusive under an expired deadline", r.Status)
	}
	if r.UnknownReason != "deadline" && r.UnknownReason != "cancelled" {
		t.Fatalf("unknownReason = %q, want a deadline classification", r.UnknownReason)
	}
}

// TestVerifyRetryLadderRecovers drives the warm→fresh fallback: the first
// scheduled fault poisons the warm encoder mid-check, the retry runs clean
// on a fresh encoder, and the client sees the correct verdict with the
// retry made visible.
func TestVerifyRetryLadderRecovers(t *testing.T) {
	fcfg := faultinject.Config{PPoison: 0.5, MaxAfterPolls: 1}
	// Find a seed whose schedule poisons the first check and leaves the
	// next three clean: request 1 exercises warm-poison → fresh-retry, and
	// request 2 (warm attempt + possible retry) must run undisturbed.
	seed := uint64(0)
	for s := uint64(1); s < 65536; s++ {
		sched := faultinject.New(s, fcfg)
		if sched.Next().Kind != faultinject.Poison {
			continue
		}
		if sched.Next().Kind == faultinject.None &&
			sched.Next().Kind == faultinject.None &&
			sched.Next().Kind == faultinject.None {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no seed with a poison-then-clean prefix")
	}
	svc, srv := newTestServer(t, Config{Faults: faultinject.New(seed, fcfg)})

	r := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec()})
	if r.Status != "feasible" {
		t.Fatalf("status = %s (%s), want feasible after the retry", r.Status, r.Why)
	}
	if r.Retries != 1 || r.Warm {
		t.Fatalf("retries = %d, warm = %v; want one fallback onto a fresh encoder", r.Retries, r.Warm)
	}
	if ps := svc.PoolStats(); ps.Discards != 1 {
		t.Fatalf("pool discards = %d, want the poisoned encoder quarantined", ps.Discards)
	}
	// The quarantined encoder is gone: the next identical request must not
	// be served warm.
	r2 := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec()})
	if r2.Status != "feasible" || r2.Warm {
		t.Fatalf("post-quarantine request = %+v, want a cold rebuild", r2)
	}
}

// TestAdmissionControlSheds saturates a 1-slot server with stalled solves
// and checks overload is refused (429/503 with Retry-After) rather than
// mis-answered.
func TestAdmissionControlSheds(t *testing.T) {
	_, srv := newTestServer(t, Config{
		MaxConcurrent:  1,
		MaxQueue:       1,
		QueueWait:      50 * time.Millisecond,
		DefaultTimeout: 300 * time.Millisecond,
		Faults:         faultinject.New(11, faultinject.Config{PStall: 1, MaxAfterPolls: 1, StallFor: time.Millisecond}),
	})
	const n = 4
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		codes = map[int]int{}
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, raw := post(t, srv, "/v1/verify", VerifyRequest{Attack: obj2Spec()})
			mu.Lock()
			defer mu.Unlock()
			codes[resp.StatusCode]++
			switch resp.StatusCode {
			case http.StatusOK:
				var out VerifyResponse
				if err := json.Unmarshal(raw, &out); err != nil {
					t.Errorf("decode: %v", err)
					return
				}
				// Every check stalls to its deadline; a verdict of
				// "infeasible" here would be a silent wrong answer.
				if out.Status == "infeasible" {
					t.Errorf("stalled solve produced an unsound infeasible verdict")
				}
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("shed %d without Retry-After", resp.StatusCode)
				}
			default:
				t.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
			}
		}()
	}
	wg.Wait()
	if codes[http.StatusTooManyRequests]+codes[http.StatusServiceUnavailable] == 0 {
		t.Fatalf("no request was shed under saturation: %v", codes)
	}
}

// TestProofRoundTrip requests a certificate for an infeasible check and
// re-validates it through the proofcheck endpoint; the proof directory must
// hold exactly the published file, no staging temps.
func TestProofRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, srv := newTestServer(t, Config{ProofDir: dir})
	r := verifyOn(t, srv, VerifyRequest{
		Attack:              obj2Spec(),
		SecuredMeasurements: []int{46},
		Proof:               true,
	})
	if r.Status != "infeasible" {
		t.Fatalf("status = %s, want infeasible", r.Status)
	}
	if r.ProofFile == "" || r.ProofError != "" {
		t.Fatalf("proof = %q / %q, want a published certificate", r.ProofFile, r.ProofError)
	}
	resp, raw := post(t, srv, "/v1/proofcheck", ProofCheckRequest{Path: r.ProofFile})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proofcheck status %d: %s", resp.StatusCode, raw)
	}
	var chk ProofCheckResponse
	if err := json.Unmarshal(raw, &chk); err != nil {
		t.Fatal(err)
	}
	if !chk.Valid || chk.UnsatChecks == 0 {
		t.Fatalf("proofcheck = %+v, want a valid certificate with unsat checks", chk)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != r.ProofFile {
		t.Fatalf("proof dir = %v, want exactly the published %s", ents, r.ProofFile)
	}
}

// TestProofStreamFaultNeverPublishes injects a certificate-sink failure:
// the verdict must stand, the failure must be reported, and nothing may be
// published.
func TestProofStreamFaultNeverPublishes(t *testing.T) {
	dir := t.TempDir()
	_, srv := newTestServer(t, Config{
		ProofDir: dir,
		Faults:   faultinject.New(3, faultinject.Config{PProofErr: 1, MaxAfterBytes: 1}),
	})
	r := verifyOn(t, srv, VerifyRequest{
		Attack:              obj2Spec(),
		SecuredMeasurements: []int{46},
		Proof:               true,
	})
	if r.Status != "infeasible" {
		t.Fatalf("status = %s; a failing proof sink must not change the verdict", r.Status)
	}
	if r.ProofFile != "" || r.ProofError == "" {
		t.Fatalf("proof = %q / %q, want an unpublished stream with a reported error", r.ProofFile, r.ProofError)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("proof dir not empty after failed stream: %v", ents)
	}
}

// TestSynthesizeEndpoint runs the paper's synthesis scenario 2 through the
// service.
func TestSynthesizeEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, raw := post(t, srv, "/v1/synthesize", SynthesizeRequest{
		Synthesis: scenariofile.SynthesisSpec{
			Attack: scenariofile.AttackSpec{
				Case:     "ieee14",
				Untaken:  []int{5, 10, 14, 19, 22, 27, 30, 35, 43, 52},
				AnyState: true,
			},
			MaxSecuredBuses: 5,
			RequiredBuses:   []int{1},
			Prune:           true,
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize status %d: %s", resp.StatusCode, raw)
	}
	var out SynthesizeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "found" || len(out.SecuredBuses) == 0 || len(out.SecuredBuses) > 5 {
		t.Fatalf("synthesize = %+v, want an architecture of at most 5 buses", out)
	}
	if out.SecuredBuses[0] != 1 {
		t.Fatalf("architecture %v misses required bus 1", out.SecuredBuses)
	}
}

// TestRequestValidation pins the strict-input contract: unknown fields,
// traversal paths and proof requests without a proof dir are all refused.
func TestRequestValidation(t *testing.T) {
	_, srv := newTestServer(t, Config{ProofDir: t.TempDir()})

	resp, err := srv.Client().Post(srv.URL+"/v1/verify", "application/json",
		strings.NewReader(`{"attack": {"case": "ieee14"}, "bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", resp.StatusCode)
	}

	for _, path := range []string{"../outside.proof", "/etc/passwd", ""} {
		resp, raw := post(t, srv, "/v1/proofcheck", ProofCheckRequest{Path: path})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("path %q accepted: %d %s", path, resp.StatusCode, raw)
		}
	}

	resp2, raw := post(t, srv, "/v1/verify", VerifyRequest{
		Attack:       obj2Spec(),
		SecuredBuses: []int{99},
	})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range overlay bus accepted: %d %s", resp2.StatusCode, raw)
	}
}

// TestHealthAndMetrics smoke-checks the observability endpoints.
func TestHealthAndMetrics(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	verifyOn(t, srv, VerifyRequest{Attack: obj2Spec()})

	hr, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v %v", hr, err)
	}
	hr.Body.Close()

	mr, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mr.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 || m.Feasible == 0 || m.Pool.Misses == 0 {
		t.Fatalf("metrics = %+v, want the verify request counted", m)
	}
}

// TestOverlayErrorKeepsEncoderHealthy checks a bad overlay neither answers
// nor quarantines: the warm encoder survives the caller's mistake.
func TestOverlayErrorKeepsEncoderHealthy(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	verifyOn(t, srv, VerifyRequest{Attack: obj2Spec()}) // warm the pool
	resp, _ := post(t, srv, "/v1/verify", VerifyRequest{Attack: obj2Spec(), SecuredMeasurements: []int{0}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid overlay measurement accepted: %d", resp.StatusCode)
	}
	r := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec()})
	if !r.Warm || r.Status != "feasible" {
		t.Fatalf("encoder lost after overlay error: %+v", r)
	}
	if ps := svc.PoolStats(); ps.Discards != 0 {
		t.Fatalf("overlay error quarantined the encoder: %+v", ps)
	}
}
