package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"segrid/internal/core"
	"segrid/internal/faultinject"
	"segrid/internal/scenariofile"
)

// sweepOn posts one sweep and decodes the 200 body.
func sweepOn(t *testing.T, srv *httptest.Server, req SweepRequest) *SweepResponse {
	t.Helper()
	resp, raw := post(t, srv, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, raw)
	}
	var out SweepResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode: %v (%s)", err, raw)
	}
	return &out
}

// fig5aFamily is the sweep benchmark shape: the obj2 case study swept over
// candidate security architectures (per-item secured-measurement sets), the
// exact per-iteration workload of the paper's Fig. 5a trajectory.
func fig5aFamily() []SweepItem {
	items := []SweepItem{{}} // the unmodified base
	for _, id := range []int{1, 2, 3, 4, 6, 7, 8, 9, 11, 46} {
		items = append(items, SweepItem{SecuredMeasurements: []int{id}})
	}
	items = append(items, SweepItem{SecuredBuses: []int{1, 3, 6, 8}})
	return items
}

// TestSweepGroupsAndMatchesSequential is the tentpole's acceptance test: a
// fig5a-style family answered by one /v1/sweep must (a) collapse into one
// encoder group and build exactly one encoder where a batch-unaware client
// folding each delta into its spec builds N, and (b) produce per-item
// verdicts identical to those N sequential /v1/verify calls.
func TestSweepGroupsAndMatchesSequential(t *testing.T) {
	items := fig5aFamily()

	// The batch-unaware baseline: every delta folded into a self-contained
	// spec, so every request hashes to its own pool key and cold-builds.
	seqSvc, seqSrv := newTestServer(t, Config{})
	sequential := make([]*VerifyResponse, len(items))
	for i, it := range items {
		spec := obj2Spec()
		spec.Secured = append(spec.Secured, it.SecuredMeasurements...)
		req := VerifyRequest{Attack: spec}
		// Folding a secured bus into the spec needs the bus's measurement
		// set; a batch-unaware client passes it as the overlay instead —
		// still a per-request spec+overlay pair the sweep must reproduce.
		req.SecuredBuses = it.SecuredBuses
		sequential[i] = verifyOn(t, seqSrv, req)
	}
	seqBuilds := seqSvc.PoolStats().Misses

	swSvc, swSrv := newTestServer(t, Config{})
	out := sweepOn(t, swSrv, SweepRequest{Attack: obj2Spec(), Items: items})
	if len(out.Items) != len(items) {
		t.Fatalf("sweep answered %d items, want %d", len(out.Items), len(items))
	}
	if out.Groups != 1 || out.EncoderBuilds != 1 {
		t.Fatalf("sweep used %d groups / %d builds, want 1/1 (overlay-only family)", out.Groups, out.EncoderBuilds)
	}
	var feasible, infeasible int
	for i, got := range out.Items {
		want := sequential[i]
		if got.Status != want.Status {
			t.Fatalf("item %d: sweep says %s, sequential says %s", i, got.Status, want.Status)
		}
		switch got.Status {
		case "feasible":
			feasible++
		case "infeasible":
			infeasible++
		default:
			t.Fatalf("item %d inconclusive without faults: %+v", i, got)
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("family is degenerate (%d feasible, %d infeasible): the equivalence proves nothing", feasible, infeasible)
	}

	// The amortization claim, on the pool's own ledger. The sequential
	// baseline pays one cold build per distinct folded spec — everything
	// except the bus-overlay item, which shares the base item's key.
	swBuilds := swSvc.PoolStats().Misses
	if swBuilds >= seqBuilds {
		t.Fatalf("sweep built %d encoders, sequential %d — no amortization", swBuilds, seqBuilds)
	}
	if want := uint64(len(items) - 1); swBuilds != 1 || seqBuilds != want {
		t.Fatalf("builds = %d (sweep) / %d (sequential), want 1 / %d", swBuilds, seqBuilds, want)
	}
}

// TestSweepRegrouping checks the planning rules: tightened resource bounds
// stay in the base group as scoped overlays, while goal replacement and
// bound loosening re-spec into their own groups — and every verdict still
// matches its folded-spec sequential answer.
func TestSweepRegrouping(t *testing.T) {
	base := obj2Spec()
	base.MaxMeasurements = 4
	two, six, lift := 2, 6, 0
	items := []SweepItem{
		{},                               // base group
		{MaxAlteredMeasurements: &two},   // tighten 4→2: overlay, base group
		{MaxAlteredMeasurements: &six},   // loosen 4→6: respec
		{MaxAlteredMeasurements: &lift},  // lift to unbounded: respec
		{Targets: []int{9}},              // goal replacement: respec
		{SecuredMeasurements: []int{46}}, // overlay, base group
	}
	folded := func(it SweepItem) scenariofile.AttackSpec {
		spec := base
		if it.MaxAlteredMeasurements != nil {
			spec.MaxMeasurements = *it.MaxAlteredMeasurements
		}
		if it.Targets != nil {
			spec.Targets = it.Targets
		}
		spec.Secured = append(spec.Secured, it.SecuredMeasurements...)
		return spec
	}

	_, seqSrv := newTestServer(t, Config{})
	sequential := make([]*VerifyResponse, len(items))
	for i, it := range items {
		sequential[i] = verifyOn(t, seqSrv, VerifyRequest{Attack: folded(it)})
	}

	_, swSrv := newTestServer(t, Config{})
	out := sweepOn(t, swSrv, SweepRequest{Attack: base, Items: items})
	if out.Groups != 4 {
		t.Fatalf("planned %d groups, want 4 (base + loosened + lifted + retargeted)", out.Groups)
	}
	for i, got := range out.Items {
		if got.Status != sequential[i].Status {
			t.Fatalf("item %d: sweep says %s, folded sequential says %s", i, got.Status, sequential[i].Status)
		}
		if got.Status != "feasible" && got.Status != "infeasible" {
			t.Fatalf("item %d inconclusive without faults: %+v", i, got)
		}
	}
}

// TestSweepValidation checks malformed sweeps fail whole with 400 before any
// solving: planning validates every item up front.
func TestSweepValidation(t *testing.T) {
	svc, srv := newTestServer(t, Config{MaxSweepItems: 4})
	neg := -1
	cases := []struct {
		name string
		req  SweepRequest
	}{
		{"no items", SweepRequest{Attack: obj2Spec()}},
		{"too many items", SweepRequest{Attack: obj2Spec(), Items: make([]SweepItem, 5)}},
		{"negative bound", SweepRequest{Attack: obj2Spec(), Items: []SweepItem{{MaxAlteredMeasurements: &neg}}}},
		{"bus out of range", SweepRequest{Attack: obj2Spec(), Items: []SweepItem{{}, {SecuredBuses: []int{99}}}}},
		{"measurement out of range", SweepRequest{Attack: obj2Spec(), Items: []SweepItem{{}, {SecuredMeasurements: []int{999}}}}},
	}
	for _, tc := range cases {
		resp, raw := post(t, srv, "/v1/sweep", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, raw)
		}
	}
	// Nothing solved, nothing checked out.
	if ps := svc.PoolStats(); ps.Misses != 0 || ps.Hits != 0 {
		t.Fatalf("validation-rejected sweeps touched the pool: %+v", ps)
	}
}

// TestShedRetryAfter pins the shared Retry-After computation: the header is
// the ceiling of the advertised wait in whole seconds (never a hardcoded 1,
// never 0), and the JSON body carries the exact milliseconds.
func TestShedRetryAfter(t *testing.T) {
	cases := []struct {
		wait   time.Duration
		header string
		ms     int64
	}{
		{50 * time.Millisecond, "1", 50}, // sub-second: header rounds up, ms is exact
		{2 * time.Second, "2", 2000},     // the old 503 math said 3 here
		{2500 * time.Millisecond, "3", 2500},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeShed(rec, http.StatusTooManyRequests, "x", tc.wait)
		if got := rec.Header().Get("Retry-After"); got != tc.header {
			t.Fatalf("wait %v: Retry-After header %q, want %q", tc.wait, got, tc.header)
		}
		var body errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if body.RetryAfterMs != tc.ms {
			t.Fatalf("wait %v: retryAfterMs %d, want %d", tc.wait, body.RetryAfterMs, tc.ms)
		}
	}

	// Both shed paths derive from the same clamped computation.
	svc, err := New(Config{QueueWait: 1300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if d := svc.shedDelay(); d != 1300*time.Millisecond {
		t.Fatalf("shedDelay = %v, want the configured queue wait", d)
	}
	svc2, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := svc2.shedDelay(); d != svc2.cfg.QueueWait {
		t.Fatalf("default shedDelay = %v, want default queue wait %v", d, svc2.cfg.QueueWait)
	}
}

// TestSoakSweep is the sweep's fault-injection gate, the batched analogue of
// TestSoakVerifySweep: concurrent sweeps under injected cancellation,
// poisoning and stalls plus hopeless deadlines. The inviolable properties:
// every definite per-item verdict matches ground truth (a torn sweep must
// never publish a partial result as definitive), every lease settles exactly
// once (live == idle afterwards, pool drains clean), and the sweep ledger
// adds up. Runs under -race in CI.
func TestSoakSweep(t *testing.T) {
	// Ground truth straight through core, independent of the service.
	family := fig5aFamily()
	truth := make([]bool, len(family))
	for i, it := range family {
		spec := obj2Spec()
		sc, err := spec.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.NewModel(sc)
		if err != nil {
			t.Fatal(err)
		}
		ov := &overlay{securedBuses: it.SecuredBuses, securedMeasurements: it.SecuredMeasurements}
		if err := applyOverlay(m, ov); err != nil {
			t.Fatal(err)
		}
		res, err := m.Check()
		if err != nil || res.Inconclusive {
			t.Fatalf("ground truth item %d: %v / %+v", i, err, res)
		}
		truth[i] = res.Feasible
	}

	svc, srv := newTestServer(t, Config{
		MaxConcurrent:  4,
		MaxQueue:       32,
		QueueWait:      500 * time.Millisecond,
		DefaultTimeout: 5 * time.Second,
		Faults: faultinject.New(20260808, faultinject.Config{
			PCancel:       0.15,
			PPoison:       0.15,
			PStall:        0.05,
			MaxAfterPolls: 64,
			StallFor:      200 * time.Microsecond,
		}),
	})

	const (
		workers = 6
		iters   = 6
	)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		okSweeps int
		okItems  int
		definite int
		inconcl  int
		shed     int
		wrong    []string
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req := SweepRequest{Attack: obj2Spec(), Items: family}
				if (w+i)%5 == 3 {
					// A hopeless deadline: the sweep must freeze remaining
					// items at inconclusive, never guess.
					req.TimeoutMs = 1
				}
				resp, raw := post(t, srv, "/v1/sweep", req)
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					var out SweepResponse
					if err := json.Unmarshal(raw, &out); err != nil {
						wrong = append(wrong, "undecodable sweep body")
						break
					}
					okSweeps++
					okItems += len(out.Items)
					if len(out.Items) != len(family) {
						wrong = append(wrong, "sweep dropped items")
						break
					}
					for j, item := range out.Items {
						switch item.Status {
						case "feasible", "infeasible":
							definite++
							if (item.Status == "feasible") != truth[j] {
								wrong = append(wrong, "item "+item.Status+" against ground truth")
							}
						case "inconclusive":
							inconcl++
							if item.UnknownReason == "" {
								wrong = append(wrong, "inconclusive item without a reason")
							}
						default:
							wrong = append(wrong, "item status "+item.Status)
						}
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed++
					if resp.Header.Get("Retry-After") == "" {
						wrong = append(wrong, "shed without Retry-After")
					}
				default:
					wrong = append(wrong, "http "+resp.Status)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if len(wrong) > 0 {
		t.Fatalf("%d sweep soundness violations under fault injection:\n  %s",
			len(wrong), strings.Join(wrong, "\n  "))
	}
	if definite == 0 {
		t.Fatalf("soak produced no definite per-item answers (%d inconclusive, %d shed)", inconcl, shed)
	}
	t.Logf("sweep soak: %d sweeps ok, %d items (%d definite, %d inconclusive), %d shed",
		okSweeps, okItems, definite, inconcl, shed)

	// Every lease settled exactly once: nothing outstanding, pool drains
	// clean, and dropped encoders went through the close hook.
	ps := svc.PoolStats()
	if ps.Live != ps.Idle {
		t.Fatalf("leaked sweep leases: %+v", ps)
	}
	srv.Close()
	svc.Close()
	if ps := svc.PoolStats(); ps.Idle != 0 || ps.Live != 0 {
		t.Fatalf("pool not drained at shutdown: %+v", ps)
	}

	// The sweep ledger adds up: every accepted sweep's items produced
	// exactly one counted verdict each.
	m := svc.m.snapshot(svc.PoolStats(), 0, svc.SchedStats(), svc.supports.Stats())
	if m.Sweeps != uint64(okSweeps) || m.SweepItems != uint64(okItems) {
		t.Fatalf("sweep ledger: %d sweeps / %d items, want %d / %d", m.Sweeps, m.SweepItems, okSweeps, okItems)
	}
	if got := m.Feasible + m.Infeasible + m.Inconclusive; got != uint64(definite+inconcl) {
		t.Fatalf("verdict ledger: %d counted, want %d", got, definite+inconcl)
	}
	if m.Requests != uint64(workers*iters) {
		t.Fatalf("requests = %d, want %d", m.Requests, workers*iters)
	}
}
