package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"segrid/internal/scenariofile"
)

func getMetrics(t *testing.T, srv *httptest.Server) *Metrics {
	t.Helper()
	mr, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mr.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return &m
}

// TestPortfolioVerifyEndpoint is the service-level differential check for the
// portfolio race: a request answered by diversified racing workers must agree
// with the sequential answer on both polarities, the per-mode counters and the
// in-flight-workers gauge must reflect the mode, and a portfolio certificate
// must survive the proofcheck round trip.
func TestPortfolioVerifyEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, srv := newTestServer(t, Config{ProofDir: dir})

	seqFeas := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec()})
	seqInf := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec(), SecuredMeasurements: []int{46}})
	if seqFeas.Status != "feasible" || seqInf.Status != "infeasible" {
		t.Fatalf("sequential ground truth broken: %s / %s", seqFeas.Status, seqInf.Status)
	}

	porFeas := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec(), Portfolio: 3})
	if porFeas.Status != seqFeas.Status {
		t.Fatalf("portfolio says %s, sequential says %s", porFeas.Status, seqFeas.Status)
	}
	if len(porFeas.AlteredMeasurements) == 0 {
		t.Fatalf("portfolio feasible verdict carries no attack vector")
	}
	porInf := verifyOn(t, srv, VerifyRequest{
		Attack:              obj2Spec(),
		SecuredMeasurements: []int{46},
		Portfolio:           3,
	})
	if porInf.Status != seqInf.Status {
		t.Fatalf("portfolio says %s, sequential says %s", porInf.Status, seqInf.Status)
	}

	// Certificate-producing portfolio check: infeasible, published, and
	// accepted by the independent checker.
	porProof := verifyOn(t, srv, VerifyRequest{
		Attack:              obj2Spec(),
		SecuredMeasurements: []int{46},
		Proof:               true,
		Portfolio:           3,
	})
	if porProof.Status != "infeasible" {
		t.Fatalf("proof-producing portfolio check = %s, want infeasible", porProof.Status)
	}
	if porProof.ProofFile == "" || porProof.ProofError != "" {
		t.Fatalf("proof = %q / %q, want a published portfolio certificate", porProof.ProofFile, porProof.ProofError)
	}
	resp, raw := post(t, srv, "/v1/proofcheck", ProofCheckRequest{Path: porProof.ProofFile})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proofcheck status %d: %s", resp.StatusCode, raw)
	}
	var chk ProofCheckResponse
	if err := json.Unmarshal(raw, &chk); err != nil {
		t.Fatal(err)
	}
	if !chk.Valid || chk.UnsatChecks == 0 {
		t.Fatalf("portfolio certificate rejected: %+v", chk)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != porProof.ProofFile {
		t.Fatalf("proof dir = %v, want exactly %s (no worker temps)", ents, porProof.ProofFile)
	}

	m := getMetrics(t, srv)
	if m.PortfolioChecks < 3 {
		t.Fatalf("portfolioChecks = %d, want the three portfolio requests counted", m.PortfolioChecks)
	}
	if m.SequentialSolves < 2 {
		t.Fatalf("sequentialSolves = %d, want the two sequential requests counted", m.SequentialSolves)
	}
	if m.InFlightWorkers != 0 {
		t.Fatalf("inFlightWorkers = %d at rest, want 0", m.InFlightWorkers)
	}
}

// TestPortfolioVerifyWorkerClamp pins the server-side clamp: a per-request
// worker count above MaxWorkersPerRequest must still answer correctly (the
// clamp bounds resources, it does not refuse the request).
func TestPortfolioVerifyWorkerClamp(t *testing.T) {
	_, srv := newTestServer(t, Config{MaxWorkersPerRequest: 2})
	r := verifyOn(t, srv, VerifyRequest{Attack: obj2Spec(), Portfolio: 64})
	if r.Status != "feasible" {
		t.Fatalf("clamped portfolio request = %s, want feasible", r.Status)
	}
}

// TestCubeSynthesizeEndpoint runs bus-granular synthesis in cube-and-conquer
// mode through the service and checks verdict parity with the sequential
// endpoint contract plus the cube-mode counters.
func TestCubeSynthesizeEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, raw := post(t, srv, "/v1/synthesize", SynthesizeRequest{
		Synthesis: scenariofile.SynthesisSpec{
			Attack: scenariofile.AttackSpec{
				Case:     "ieee14",
				Untaken:  []int{5, 10, 14, 19, 22, 27, 30, 35, 43, 52},
				AnyState: true,
			},
			MaxSecuredBuses: 5,
			RequiredBuses:   []int{1},
			Prune:           true,
		},
		CubeWorkers: 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize status %d: %s", resp.StatusCode, raw)
	}
	var out SynthesizeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "found" || len(out.SecuredBuses) == 0 || len(out.SecuredBuses) > 5 {
		t.Fatalf("cube synthesize = %+v, want an architecture of at most 5 buses", out)
	}
	if out.SecuredBuses[0] != 1 {
		t.Fatalf("architecture %v misses required bus 1", out.SecuredBuses)
	}

	m := getMetrics(t, srv)
	if m.CubeRuns != 1 {
		t.Fatalf("cubeRuns = %d, want 1", m.CubeRuns)
	}
	if m.InFlightWorkers != 0 {
		t.Fatalf("inFlightWorkers = %d at rest, want 0", m.InFlightWorkers)
	}
}
