package service

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"segrid/internal/core"
	"segrid/internal/faultinject"
	"segrid/internal/proof"
	"segrid/internal/scenariofile"
)

// soakItem is one workload entry: a request template plus its fault-free
// ground truth.
type soakItem struct {
	name     string
	req      VerifyRequest
	feasible bool
}

// soakWorkload builds the sweep mix over the paper's ieee14 case study and
// computes each item's ground truth directly through the core verifier —
// independently of the service code under test.
func soakWorkload(t *testing.T) []soakItem {
	t.Helper()
	caseStudy := func() scenariofile.AttackSpec { return obj2Spec() }
	topo := scenariofile.AttackSpec{
		Case:           "ieee14",
		Untaken:        []int{5, 10, 14, 19, 22, 27, 30, 35, 43, 52},
		Secured:        []int{46},
		NonCoreLines:   []int{5, 13},
		AllowExclusion: true,
		AllowInclusion: true,
		Targets:        []int{12},
		OnlyTargets:    true,
	}
	anyState := scenariofile.AttackSpec{
		Case:     "ieee14",
		Untaken:  []int{5, 10, 14, 19, 22, 27, 30, 35, 43, 52},
		AnyState: true,
	}
	allBuses := make([]int, 14)
	for i := range allBuses {
		allBuses[i] = i + 1
	}
	items := []soakItem{
		{name: "obj2", req: VerifyRequest{Attack: caseStudy()}},
		{name: "obj2-secured46", req: VerifyRequest{Attack: caseStudy(), SecuredMeasurements: []int{46}}},
		{name: "obj2-topology", req: VerifyRequest{Attack: topo}},
		{name: "anystate", req: VerifyRequest{Attack: anyState}},
		{name: "anystate-all-secured", req: VerifyRequest{Attack: anyState, SecuredBuses: allBuses}},
	}
	for i := range items {
		it := &items[i]
		sc, err := it.req.Attack.Scenario()
		if err != nil {
			t.Fatalf("%s: %v", it.name, err)
		}
		m, err := core.NewModel(sc)
		if err != nil {
			t.Fatalf("%s: %v", it.name, err)
		}
		ov := &overlay{securedBuses: it.req.SecuredBuses, securedMeasurements: it.req.SecuredMeasurements}
		if err := applyOverlay(m, ov); err != nil {
			t.Fatalf("%s: %v", it.name, err)
		}
		res, err := m.Check()
		if err != nil || res.Inconclusive {
			t.Fatalf("%s: ground truth check failed: %v / %+v", it.name, err, res)
		}
		it.feasible = res.Feasible
	}
	return items
}

// TestSoakVerifySweep is the service's acceptance gate: a concurrent sweep
// with injected faults (cancellation, encoder poisoning, stalls, proof-sink
// failures) and aggressive deadlines, asserting the one inviolable
// property — every definite answer matches ground truth. Faults may cost
// latency, retries or inconclusive answers; they may never flip a verdict,
// publish a torn certificate or leak a poisoned encoder. Runs under -race
// in CI.
func TestSoakVerifySweep(t *testing.T) {
	items := soakWorkload(t)
	dir := t.TempDir()
	svc, srv := newTestServer(t, Config{
		MaxConcurrent:  4,
		MaxQueue:       32,
		QueueWait:      500 * time.Millisecond,
		DefaultTimeout: 2 * time.Second,
		ProofDir:       dir,
		Faults: faultinject.New(20260807, faultinject.Config{
			PCancel:       0.15,
			PPoison:       0.15,
			PStall:        0.05,
			PProofErr:     0.10,
			MaxAfterPolls: 64,
			StallFor:      200 * time.Microsecond,
		}),
	})

	const (
		workers = 8
		iters   = 15
	)
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		answered   int
		shed       int
		inconcl    int
		wrong      []string
		proofFiles []string
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				it := items[(w+i)%len(items)]
				req := it.req
				// Vary the robustness surface: some requests bypass the
				// pool, some want certificates, some carry hopeless
				// deadlines.
				switch (w*iters + i) % 7 {
				case 1:
					req.FreshEncode = true
				case 2:
					req.Proof = true
				case 3:
					req.TimeoutMs = 1
				}
				resp, raw := post(t, srv, "/v1/verify", req)
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					var out VerifyResponse
					if err := json.Unmarshal(raw, &out); err != nil {
						wrong = append(wrong, it.name+": undecodable body")
						break
					}
					switch out.Status {
					case "feasible", "infeasible":
						answered++
						if (out.Status == "feasible") != it.feasible {
							wrong = append(wrong, it.name+": answered "+out.Status)
						}
					case "inconclusive":
						inconcl++
						if out.UnknownReason == "" {
							wrong = append(wrong, it.name+": inconclusive without a reason")
						}
					default:
						wrong = append(wrong, it.name+": status "+out.Status)
					}
					if out.ProofFile != "" {
						proofFiles = append(proofFiles, out.ProofFile)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed++
					if resp.Header.Get("Retry-After") == "" {
						wrong = append(wrong, it.name+": shed without Retry-After")
					}
				default:
					wrong = append(wrong, it.name+": http "+resp.Status)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if len(wrong) > 0 {
		t.Fatalf("%d soundness violations under fault injection:\n  %s",
			len(wrong), strings.Join(wrong, "\n  "))
	}
	if answered == 0 {
		t.Fatalf("sweep produced no definite answers (%d inconclusive, %d shed) — nothing was actually verified", inconcl, shed)
	}
	t.Logf("soak: %d answered, %d inconclusive, %d shed, %d certificates", answered, inconcl, shed, len(proofFiles))

	// Every certificate the sweep published must be independently valid.
	for _, f := range proofFiles {
		rep, err := proof.CheckFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("published certificate %s invalid: %v", f, err)
		}
		if rep.UnsatChecks == 0 {
			t.Fatalf("published certificate %s certifies nothing", f)
		}
	}
	// No staging temps may survive the sweep, published or not.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".") {
			t.Fatalf("staging temp %s left in proof dir", e.Name())
		}
	}
	if len(ents) != len(proofFiles) {
		t.Fatalf("proof dir holds %d files, want the %d published certificates", len(ents), len(proofFiles))
	}

	// Clean shutdown: no leaked leases (live == idle), then a drained pool.
	ps := svc.PoolStats()
	if ps.Live != ps.Idle {
		t.Fatalf("leaked encoder leases after sweep: %+v", ps)
	}
	srv.Close()
	svc.Close()
	if ps := svc.PoolStats(); ps.Idle != 0 {
		t.Fatalf("pool not drained at shutdown: %+v", ps)
	}

	// The ledger adds up: every request was answered, shed or refused —
	// none vanished.
	m := svc.m.snapshot(svc.PoolStats(), 0, svc.SchedStats(), svc.supports.Stats())
	total := m.Feasible + m.Infeasible + m.Inconclusive + m.Shed429 + m.Shed503 + m.BadRequests
	if got := uint64(workers * iters); m.Requests != got || total != got {
		t.Fatalf("request ledger: %d requests, outcomes sum to %d, want %d (%+v)", m.Requests, total, got, m)
	}
}
