package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"segrid/internal/core"
	"segrid/internal/scenariofile"
)

// screenCache memoizes LP-screening outcomes across requests, keyed by the
// full screened instance: topology and goal (the canonical attack spec) plus
// the overlay's protections and tightened bounds. Screening is deterministic
// — same instance, same pivot budget, same three-valued verdict — so a
// cached verdict is exactly the verdict a fresh screen would certify, and an
// inconclusive screen is cached too (as a nil result) so repeat instances
// skip straight to the SMT tier instead of re-pivoting to the same cap.
//
// Only clean outcomes are cached: a screen that errored or ran under an
// already-expired context tells us nothing about the instance.
type screenCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

// screenCacheEntry is one memoized instance. res is the screen-derived
// core.Result for definitive verdicts and nil for a deterministic
// inconclusive screen; the hit bool in lookups distinguishes "cached
// inconclusive" from "never screened".
type screenCacheEntry struct {
	key string
	res *core.Result
}

// newScreenCache builds a cache bounded to capacity entries; 0 selects the
// default of 1024, negative disables caching (every lookup misses, stores
// are dropped).
func newScreenCache(capacity int) *screenCache {
	if capacity == 0 {
		capacity = 1024
	}
	if capacity < 0 {
		return &screenCache{}
	}
	return &screenCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// screenCacheKey canonicalizes one screened instance. The spec is
// re-marshaled exactly like poolKey does; the overlay rides along so that
// what-if variants over one spec cache independently. An empty key (marshal
// failure) disables caching for the instance.
func screenCacheKey(spec *scenariofile.AttackSpec, ov *overlay) string {
	canon, err := json.Marshal(struct {
		Spec *scenariofile.AttackSpec `json:"spec"`
		SB   []int                    `json:"sb,omitempty"`
		SM   []int                    `json:"sm,omitempty"`
		MA   int                      `json:"ma,omitempty"`
		MB   int                      `json:"mb,omitempty"`
	}{spec, ov.securedBuses, ov.securedMeasurements, ov.maxAltered, ov.maxBuses})
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:])
}

// get returns the cached result for key and whether the instance was cached
// at all (res may be nil on a hit: a remembered inconclusive screen).
func (c *screenCache) get(key string) (*core.Result, bool) {
	if c.entries == nil || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*screenCacheEntry).res, true
}

// put memoizes one clean screen outcome, evicting the least recently used
// entry past capacity.
func (c *screenCache) put(key string, res *core.Result) {
	if c.entries == nil || key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*screenCacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&screenCacheEntry{key: key, res: res})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*screenCacheEntry).key)
	}
}
