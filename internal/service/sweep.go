package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"segrid/internal/pool"
	"segrid/internal/scenariofile"
	"segrid/internal/sched"
	"segrid/internal/smt"
)

// This file implements the batched scenario sweep: one request, a base
// attack spec, N per-item deltas. Items are planned into groups sharing a
// warm-encoder compatibility key; each group checks out ONE pooled encoder
// and answers its items back-to-back through the same scoped-overlay
// machinery /v1/verify uses — the serving-side analogue of the incremental
// encoder amortizing encode cost inside a process.
//
// Soundness rules, enforced by planning:
//
//   - secured sets and tightened resource bounds are scoped overlays (they
//     only shrink the feasible set; Push/Pop retracts them exactly);
//   - goal replacement and bound loosening change the encoded model, so the
//     item is re-specced and lands in its own group;
//   - a poisoned lease (Unknown, panic, torn scope) is discarded mid-group
//     and the item retried on a fresh throwaway encoder — the remaining
//     items re-checkout; verdicts never come from a distrusted encoder;
//   - an expired sweep deadline freezes the remaining items at inconclusive
//     with the deadline reason: a partial result is never published as a
//     definitive per-item verdict.

// sweepGroup is one encoder-compatibility class of planned items.
type sweepGroup struct {
	key   pool.Key
	spec  *scenariofile.AttackSpec // effective spec the group's encoder is built from
	fresh bool                     // key-hash collision: run items on throwaway encoders
	items []plannedItem
}

// plannedItem is one sweep item resolved against its group: the original
// request index plus the scoped overlay to assert.
type plannedItem struct {
	index int
	ov    overlay
}

// planSweep validates the request and partitions its items into groups,
// preserving first-occurrence order. All validation happens here, before
// any solving: a malformed item fails the whole sweep with 400 instead of
// surfacing mid-batch.
func (s *Service) planSweep(req *SweepRequest) ([]*sweepGroup, *handlerError) {
	if len(req.Items) == 0 {
		return nil, &handlerError{http.StatusBadRequest, "sweep has no items"}
	}
	if len(req.Items) > s.cfg.MaxSweepItems {
		return nil, &handlerError{http.StatusBadRequest,
			fmt.Sprintf("sweep has %d items, server maximum is %d", len(req.Items), s.cfg.MaxSweepItems)}
	}
	var (
		order  []*sweepGroup
		byKey  = make(map[pool.Key]*sweepGroup)
		sysErr = func(i int, err error) *handlerError {
			return &handlerError{http.StatusBadRequest, fmt.Sprintf("sweep item %d: %v", i, err)}
		}
	)
	for i := range req.Items {
		item := &req.Items[i]
		eff, ov, err := planItem(&req.Attack, item)
		if err != nil {
			return nil, sysErr(i, err)
		}
		key, herr := s.keyFor(eff)
		if herr != nil {
			return nil, &handlerError{herr.status, fmt.Sprintf("sweep item %d: %s", i, herr.msg)}
		}
		fresh := key == (pool.Key{})
		g, ok := byKey[key]
		if !ok || fresh {
			// Collision groups are never merged: each collided item runs on
			// its own throwaway encoder.
			g = &sweepGroup{key: key, spec: eff, fresh: fresh}
			if !fresh {
				byKey[key] = g
			}
			order = append(order, g)
		}
		g.items = append(g.items, plannedItem{index: i, ov: ov})
	}
	// Validate every group's effective spec and overlay ranges up front, so
	// group execution cannot hit a caller error mid-batch.
	for _, g := range order {
		sc, err := g.spec.Scenario()
		if err != nil {
			return nil, sysErr(g.items[0].index, err)
		}
		sys := sc.System()
		for _, it := range g.items {
			for _, j := range it.ov.securedBuses {
				if j < 1 || j > sys.Buses {
					return nil, sysErr(it.index, fmt.Errorf("secured bus %d out of range 1..%d", j, sys.Buses))
				}
			}
			for _, id := range it.ov.securedMeasurements {
				if id < 1 || id > sys.NumMeasurements() {
					return nil, sysErr(it.index, fmt.Errorf("secured measurement %d out of range 1..%d", id, sys.NumMeasurements()))
				}
			}
		}
	}
	return order, nil
}

// planItem resolves one item delta against the base spec: deltas expressible
// as feasible-set-shrinking scoped constraints go into the overlay; deltas
// that change the encoded model (goal replacement, bound lifting/loosening)
// produce a derived spec. Returns the effective spec (the base itself when
// nothing re-specs — pointer identity is what groups items) and the overlay.
func planItem(base *scenariofile.AttackSpec, item *SweepItem) (*scenariofile.AttackSpec, overlay, error) {
	ov := overlay{
		securedBuses:        item.SecuredBuses,
		securedMeasurements: item.SecuredMeasurements,
	}
	eff := base
	respec := func() {
		if eff == base {
			c := *base
			eff = &c
		}
	}
	if item.Targets != nil {
		respec()
		eff.Targets = item.Targets
	}
	if item.MaxAlteredMeasurements != nil {
		switch v := *item.MaxAlteredMeasurements; {
		case v < 0:
			return nil, ov, fmt.Errorf("maxAlteredMeasurements must be >= 0, got %d", v)
		case v == 0 || (base.MaxMeasurements > 0 && v > base.MaxMeasurements):
			// Lifting or loosening the base bound: base constraints cannot
			// be retracted in a scope, so the item needs its own encoder.
			respec()
			eff.MaxMeasurements = v
		case v != base.MaxMeasurements:
			ov.maxAltered = v // tightening: sound as a scoped constraint
		}
	}
	if item.MaxCompromisedBuses != nil {
		switch v := *item.MaxCompromisedBuses; {
		case v < 0:
			return nil, ov, fmt.Errorf("maxCompromisedBuses must be >= 0, got %d", v)
		case v == 0 || (base.MaxBuses > 0 && v > base.MaxBuses):
			respec()
			eff.MaxBuses = v
		case v != base.MaxBuses:
			ov.maxBuses = v
		}
	}
	return eff, ov, nil
}

// sweep plans and executes one sweep request: planning and the screening
// tier run on the request goroutine (the screen-verdict cache is consulted
// before anything is scheduled), then each group with unscreened items
// becomes one scheduler work unit costed by its item count. Group units
// from one sweep run concurrently when workers are free and interleave with
// other requests' units under the fairness policy — a sweep no longer
// monopolizes one opaque solve slot for its whole batch. admit follows the
// flow-admission contract described on Service.verify.
func (s *Service) sweep(ctx context.Context, req *SweepRequest, admit func(*sched.Flow) *handlerError) (*SweepResponse, *handlerError) {
	if admit == nil {
		admit = func(*sched.Flow) *handlerError { return nil }
	}
	groups, herr := s.planSweep(req)
	if herr != nil {
		_ = admit(nil)
		return nil, herr
	}
	resp := &SweepResponse{
		Items:  make([]*VerifyResponse, len(req.Items)),
		Groups: len(groups),
	}
	if s.screenEnabled(req.Screen) {
		// Screen items up front; groups keep only what the screen could not
		// answer. A fully screened sweep schedules nothing at all.
		remaining := groups[:0]
		for _, g := range groups {
			unscreened := g.items[:0]
			for _, it := range g.items {
				start := time.Now()
				if r := s.screenItem(ctx, g.spec, &it.ov); r != nil {
					r.ElapsedMs = time.Since(start).Milliseconds()
					resp.Items[it.index] = r
					continue
				}
				unscreened = append(unscreened, it)
			}
			g.items = unscreened
			if len(g.items) > 0 {
				remaining = append(remaining, g)
			}
		}
		groups = remaining
	}
	if len(groups) == 0 {
		_ = admit(nil)
		return resp, nil
	}
	fl := s.sched.NewFlow(1)
	var builds atomic.Int64
	for _, g := range groups {
		g := g
		if err := fl.Submit(len(g.items), func() { s.runGroup(ctx, g, resp, &builds) }); err != nil {
			// Scheduler closing mid-request: drain whatever was already
			// submitted (units may be writing into resp), then shed rather
			// than publish a torn sweep.
			fl.Wait()
			_ = admit(nil)
			return nil, &handlerError{http.StatusServiceUnavailable, "scheduler shutting down"}
		}
	}
	if aerr := admit(fl); aerr != nil {
		return nil, aerr
	}
	fl.Wait()
	resp.EncoderBuilds = int(builds.Load())
	return resp, nil
}

// runGroup is the body of one sweep group's work unit: it answers the
// group's items on a single pooled lease, handling mid-group poisoning
// (discard + re-checkout), pool exhaustion (per-item fresh fallback) and
// deadline expiry (remaining items inconclusive). Groups of one sweep may
// run concurrently on different scheduler workers; they write disjoint
// resp.Items slots and count encoder builds through the shared atomic.
// Screening already happened at planning time, on the request goroutine.
func (s *Service) runGroup(ctx context.Context, g *sweepGroup, resp *SweepResponse, builds *atomic.Int64) {
	var lease *pool.Lease[*warmModel]
	settle := func(poisoned bool) {
		if lease == nil {
			return
		}
		if poisoned {
			s.m.poisoned.Add(1)
			_ = lease.Discard()
		} else {
			_ = lease.Return()
		}
		lease = nil
	}
	defer settle(false)

	for _, it := range g.items {
		if err := ctx.Err(); err != nil {
			resp.Items[it.index] = ctxExpired(err)
			continue
		}
		start := time.Now()
		if g.fresh {
			resp.Items[it.index] = s.sweepFresh(ctx, g, &it, 0, start, builds)
			continue
		}
		if lease == nil {
			var err error
			lease, err = s.pool.Checkout(ctx, g.key)
			if errors.Is(err, pool.ErrExhausted) {
				// The pool is full of other requests' encoders; this item
				// pays for a throwaway build instead of failing the sweep.
				resp.Items[it.index] = s.sweepFresh(ctx, g, &it, 0, start, builds)
				continue
			}
			if err != nil {
				if ctx.Err() != nil {
					// The cold build was abandoned by the sweep's own
					// deadline; the item is expired, not failed.
					resp.Items[it.index] = ctxExpired(ctx.Err())
					continue
				}
				resp.Items[it.index] = itemFailure(err.Error(), start)
				continue
			}
			if !lease.Warm() {
				builds.Add(1)
			}
		}
		warm := lease.Warm()
		res, herr, poisoned := s.checkWarm(ctx, nil, lease.Item.model, &it.ov, 1)
		if poisoned {
			// The lease is settled right here; a healthy lease stays out
			// for the group's remaining items.
			settle(true)
		}
		switch {
		case herr != nil:
			// Planning validated the overlay, so this is encoder/internal
			// trouble; the item reports it without a verdict.
			resp.Items[it.index] = itemFailure(herr.msg, start)
		case res != nil && !res.Inconclusive:
			r := s.buildResponse(res, warm, 0)
			r.ElapsedMs = time.Since(start).Milliseconds()
			resp.Items[it.index] = r
		default:
			retryable := res == nil || res.Stats.Unknown.Retryable()
			if retryable && ctx.Err() == nil {
				s.m.retries.Add(1)
				resp.Items[it.index] = s.sweepFresh(ctx, g, &it, 1, start, builds)
			} else {
				r := s.buildResponse(res, warm, 0)
				r.ElapsedMs = time.Since(start).Milliseconds()
				resp.Items[it.index] = r
			}
		}
	}
}

// sweepFresh answers one sweep item on a throwaway encoder (collision
// groups, pool exhaustion, or the retry ladder's second rung). Each call is
// a cold build, counted against the sweep's amortization. Sweep items run
// sequentially inside their group unit (workers=1), so no flow is passed.
func (s *Service) sweepFresh(ctx context.Context, g *sweepGroup, it *plannedItem, retries int, start time.Time, builds *atomic.Int64) *VerifyResponse {
	builds.Add(1)
	r, herr := s.verifyFresh(ctx, nil, g.spec, &it.ov, 1, false, retries)
	if herr != nil {
		return itemFailure(herr.msg, start)
	}
	r.ElapsedMs = time.Since(start).Milliseconds()
	return r
}

// ctxExpired is the verdict-free answer for checks the request deadline (or
// a client cancellation) ended before a verdict: inconclusive with the
// machine-readable reason. Sweeps use it for frozen items; verifies use it
// when the deadline lands during an encoder build.
func ctxExpired(err error) *VerifyResponse {
	reason := smt.ReasonCancelled
	if errors.Is(err, context.DeadlineExceeded) {
		reason = smt.ReasonDeadline
	}
	return &VerifyResponse{
		Status:        "inconclusive",
		Why:           fmt.Sprintf("deadline or cancellation ended this check before a verdict: %v", err),
		UnknownReason: unknownToken(reason),
	}
}

// itemFailure is the verdict-free answer for an item whose solve failed in a
// way that is not a scenario verdict (internal error, encoder trouble past
// the retry ladder). The sweep keeps going; the item is inconclusive.
func itemFailure(msg string, start time.Time) *VerifyResponse {
	return &VerifyResponse{
		Status:        "inconclusive",
		Why:           msg,
		UnknownReason: unknownToken(smt.ReasonOther),
		ElapsedMs:     time.Since(start).Milliseconds(),
	}
}
